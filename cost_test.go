package s3d

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/s3dgo/s3d/internal/cost"
)

// runCostDecomposed runs a 2x1x1 decomposed reacting lifted jet with the
// cost sampler enabled on every rank and the store subscribed on rank 0,
// returning the cost.jsonl path and rank 0's final cost_chem / cost_density
// maps.
func runCostDecomposed(t *testing.T, workers int) (string, []float64, []float64) {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(0) // restore the NumCPU default for other tests
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cost.jsonl")
	var (
		mu         sync.Mutex
		chem, dens []float64
	)
	err = RunDecomposed(p.Config, [3]int{2, 1, 1}, func(r *RankSim) {
		r.SetInitial(p.Initial, p.InitPressure)
		// Every rank enables the identical cadence: the reduction is
		// collective.
		if _, err := r.EnableCostMaps(CostSpec{Every: 2}); err != nil {
			panic(err)
		}
		if r.Rank == 0 {
			st, err := NewCostStore(path)
			if err != nil {
				panic(err)
			}
			defer st.Close()
			if err := r.SubscribeCost(st.Sink()); err != nil {
				panic(err)
			}
		}
		dt := 0.4 * r.StableDtGlobal()
		r.Advance(4, dt)
		if r.Rank == 0 {
			c, _, err := r.Field("cost_chem")
			if err != nil {
				panic(err)
			}
			d, _, err := r.Field("cost_density")
			if err != nil {
				panic(err)
			}
			mu.Lock()
			chem, dens = c, d
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return path, chem, dens
}

// TestCostBitwiseDeterministicAcrossWorkers pins the determinism contract:
// the record derives from the chemistry substep proxy (a pure function of
// the cell state) and the shape-only tile decomposition, merged in tile
// order and folded in ascending rank order — so cost.jsonl and the cost
// maps must be byte-identical no matter how many workers execute the tiles.
func TestCostBitwiseDeterministicAcrossWorkers(t *testing.T) {
	p1, chem1, dens1 := runCostDecomposed(t, 1)
	p4, chem4, dens4 := runCostDecomposed(t, 4)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(p4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 {
		t.Fatal("cost store is empty: the sampler never fired")
	}
	if !bytes.Equal(b1, b4) {
		t.Fatalf("cost.jsonl differs between 1 and 4 workers:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", b1, b4)
	}
	if !reflect.DeepEqual(chem1, chem4) {
		t.Fatal("cost_chem map differs between 1 and 4 workers")
	}
	if !reflect.DeepEqual(dens1, dens4) {
		t.Fatal("cost_density map differs between 1 and 4 workers")
	}

	// cost_density is the per-cell total: one unit per uniform kernel plus
	// the chemistry substep demand.
	base := float64(len(cost.Kernels) - 1)
	for i := range dens1 {
		if dens1[i] != base+chem1[i] {
			t.Fatalf("cost_density[%d] = %g, want base %g + chem %g", i, dens1[i], base, chem1[i])
		}
		if chem1[i] < 1 {
			t.Fatalf("cost_chem[%d] = %g < 1: every reacting cell demands at least one substep", i, chem1[i])
		}
	}

	recs, err := ReadCost(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // Every: 2 over 4 steps → steps 2 and 4
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for i, want := range []int{2, 4} {
		if recs[i].Step != want {
			t.Fatalf("record %d at step %d, want %d", i, recs[i].Step, want)
		}
	}
	last := recs[1]
	if len(last.RankTotals) != 2 {
		t.Fatalf("rank totals = %v, want 2 entries", last.RankTotals)
	}
	for _, ks := range last.Kernels {
		if ks.Tiles == 0 {
			t.Fatalf("kernel %s has no tiles", ks.Kernel)
		}
		if ks.Kernel == cost.ChemKernel {
			// The ignition kernel concentrates stiffness: the chemistry
			// tile costs must be visibly imbalanced and the what-if must
			// see real headroom on a deterministic fixture-free run.
			if ks.Imbalance <= 1 {
				t.Fatalf("chemistry imbalance = %g, want > 1 on an igniting jet", ks.Imbalance)
			}
			if ks.WhatIf.Reduction < 0 || ks.WhatIf.Reduction >= 1 {
				t.Fatalf("what-if reduction out of range: %+v", ks.WhatIf)
			}
		} else if ks.Imbalance != 1 {
			// Uniform kernels split into equal-cell plane tiles.
			t.Fatalf("uniform kernel %s imbalance = %g, want exactly 1", ks.Kernel, ks.Imbalance)
		}
	}
	if last.RankImbalance < 1 {
		t.Fatalf("rank imbalance = %g, want >= 1", last.RankImbalance)
	}
	if last.Straggler < 0 || last.Straggler > 1 {
		t.Fatalf("straggler rank = %d out of range", last.Straggler)
	}
}

// TestCostLiveEndpoints checks the monitor serves the latest cost document
// at GET /cost (with the measured wall-clock side channel), exports cost_*
// gauges, and lists the cost maps in the /fields inventory.
func TestCostLiveEndpoints(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.EnableCostMaps(CostSpec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	var rec CostRecord
	if err := sim.SubscribeCost(func(r CostRecord) { rec = r }); err != nil {
		t.Fatal(err)
	}
	probe, err := sim.StartTelemetry(TelemetryOptions{Case: "cost-live", MonitorAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close("")

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + probe.MonitorAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	// Before any step the endpoint answers with an empty object, not a 404.
	if code, body := get("/cost"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("GET /cost before first record = %d %q, want 200 {}", code, body)
	}

	probe.Advance(2, 0.4*sim.StableDt())
	if rec.Step != 2 {
		t.Fatalf("subscriber saw step %d, want 2", rec.Step)
	}

	code, body := get("/cost")
	if code != 200 {
		t.Fatalf("GET /cost = %d", code)
	}
	var doc cost.Document
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("GET /cost is not a document: %v\n%s", err, body)
	}
	if doc.Record == nil || doc.Record.Step != 2 {
		t.Fatalf("live record wrong: %+v", doc.Record)
	}
	if len(doc.Record.Kernels) != len(cost.Kernels) {
		t.Fatalf("live record has %d kernels, want %d", len(doc.Record.Kernels), len(cost.Kernels))
	}
	// The measured side channel must carry real wall-clock timings for the
	// step the record reduced: region-timer totals for every kernel (except
	// DIVERGENCE, which shares the DERIVATIVES timer) plus sampled per-tile
	// detail from the probe.
	if len(doc.Measured) == 0 {
		t.Fatal("no measured kernels in the live document")
	}
	for _, mk := range doc.Measured {
		if mk.Tiles == 0 || mk.SampledTiles == 0 || mk.SampledS <= 0 {
			t.Fatalf("measured kernel %s has no timings: %+v", mk.Kernel, mk)
		}
		if mk.Kernel == "DIVERGENCE" {
			if mk.RegionS != 0 {
				t.Fatalf("DIVERGENCE shares the DERIVATIVES timer, want RegionS 0: %+v", mk)
			}
		} else if mk.RegionS <= 0 {
			t.Fatalf("measured kernel %s has no region time: %+v", mk.Kernel, mk)
		}
	}

	if code, prom := get("/metrics.prom"); code != 200 || !strings.Contains(prom, "cost_") {
		t.Fatalf("GET /metrics.prom = %d, missing cost_* gauges:\n%s", code, prom)
	}

	// The cost maps resolve through the registry inventory like any field.
	code, fields := get("/fields")
	if code != 200 {
		t.Fatalf("GET /fields = %d", code)
	}
	for _, name := range []string{"cost_chem", "cost_density", "cost_owner"} {
		if !strings.Contains(fields, name) {
			t.Fatalf("GET /fields missing %s:\n%s", name, fields)
		}
	}
	var inv FieldsDocument
	if err := json.Unmarshal([]byte(fields), &inv); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, fi := range inv.Fields {
		if fi.Name == "cost_chem" || fi.Name == "cost_density" || fi.Name == "cost_owner" {
			seen++
			if fi.Role != "cost" {
				t.Fatalf("%s role = %q, want cost", fi.Name, fi.Role)
			}
			if fi.Checkpoint != "" {
				t.Fatalf("%s must not join the checkpoint ABI", fi.Name)
			}
		}
	}
	if seen != 3 {
		t.Fatalf("found %d cost fields in the inventory, want 3", seen)
	}
}

// TestSubscribeCostBeforeEnableErrors pins the root API failure mode.
func TestSubscribeCostBeforeEnableErrors(t *testing.T) {
	sim := inertBoxSim(t)
	if err := sim.SubscribeCost(func(CostRecord) {}); err == nil {
		t.Fatal("SubscribeCost before EnableCostMaps must fail")
	}
	if sim.Cost() != nil {
		t.Fatal("Cost() must be nil before EnableCostMaps")
	}
}
