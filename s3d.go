// Package s3d is a Go reproduction of S3D, the massively parallel direct
// numerical simulation (DNS) solver for turbulent combustion described in
// J H Chen et al., "Terascale direct numerical simulations of turbulent
// combustion using S3D" (the SC 2006 case study; archival version in
// Computational Science & Discovery 2, 2009).
//
// The package solves the fully compressible reacting Navier–Stokes
// equations with detailed chemistry and mixture-averaged transport on
// structured Cartesian meshes, using eighth-order central differences, a
// tenth-order filter, a six-stage fourth-order low-storage Runge–Kutta
// integrator and Navier–Stokes characteristic boundary conditions, over a
// three-dimensional domain decomposition with nearest-neighbour ghost
// exchange.
//
// This root package is the public API. The quickest path:
//
//	mech := s3d.HydrogenAir()
//	sim, err := s3d.New(s3d.Config{
//		Mechanism: mech,
//		Grid:      s3d.GridSpec{Nx: 64, Ny: 64, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
//		Pressure:  101325,
//	})
//	sim.SetInitial(func(x, y, z float64, s *s3d.State) { ... })
//	sim.Advance(100, sim.StableDt())
//	T, dims := sim.Field("T")
//
// The subsystems reproduced from the paper (performance modelling,
// parallel-I/O study, visualization, workflow automation) live in the
// internal packages and are exercised by the cmd/ tools and the benchmark
// harness; see DESIGN.md for the full inventory.
package s3d

import (
	"fmt"
	"io"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/flame1d"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/kernels"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/reactor"
	"github.com/s3dgo/s3d/internal/solver"
	"github.com/s3dgo/s3d/internal/stats"
	"github.com/s3dgo/s3d/internal/transport"
)

// SetWorkers sizes the process-wide worker pool that executes the tiled
// solver kernels (see DESIGN.md, "Node-level parallel execution"). n <= 0
// selects runtime.NumCPU(). The pool is shared by every simulation in the
// process — including all in-process ranks of RunDecomposed, which divide
// it fairly rather than oversubscribing the node. Call before New or
// RunDecomposed; resizing tears down the previous pool once its blocks are
// idle. Solutions are bitwise independent of the worker count.
func SetWorkers(n int) { par.SetDefaultWorkers(n) }

// Workers reports the size of the process-wide kernel worker pool.
func Workers() int { return par.DefaultWorkers() }

// Process-wide defaults for Config.Backend / Config.Precision, used when the
// corresponding Config field is empty.
var (
	defaultBackend   string
	defaultPrecision string
)

// SetBackend sets the process-default kernel backend spec used by
// simulations whose Config.Backend is empty: "generic" (reference loops,
// the default), "blocked" (hand-tiled, bounds-check-hoisted), "auto" (a
// startup microbenchmark picks the winner per kernel), or a per-kernel list
// such as "rk_update=blocked,diff=generic". Every backend produces bitwise
// identical solutions; the spec is validated here and an unknown name is an
// error.
func SetBackend(spec string) error {
	if _, err := kernels.Select(spec); err != nil {
		return err
	}
	defaultBackend = spec
	return nil
}

// Backend reports the process-default kernel backend spec.
func Backend() string {
	if defaultBackend == "" {
		return "generic"
	}
	return defaultBackend
}

// SetPrecision sets the process-default per-field storage policy used by
// simulations whose Config.Precision is empty: "strict" (every field
// float64, the default) or "mixed" (gradient and transport fields stored
// float32 with all arithmetic still performed in float64). The conserved
// state, RK registers and fluxes are float64 under every policy, so "mixed"
// changes storage-rounding only; solutions remain bitwise independent of
// the worker count within a policy.
func SetPrecision(policy string) error {
	if _, err := grid.ParsePolicy(policy); err != nil {
		return err
	}
	defaultPrecision = policy
	return nil
}

// Precision reports the process-default storage policy name.
func Precision() string {
	if defaultPrecision == "" {
		return "strict"
	}
	return defaultPrecision
}

// Mechanism bundles a chemical mechanism with its thermodynamic and
// transport data, playing the role of the CHEMKIN/TRANSPORT linkage of the
// original code.
type Mechanism struct {
	chem  *chem.Mechanism
	trans *transport.Model
}

// HydrogenAir returns the detailed H2/air mechanism (9 species, 21 steps)
// used for the lifted-flame study of paper §6.
func HydrogenAir() *Mechanism { return wrapMech(chem.H2Air()) }

// MethaneAirSkeletal returns the skeletal CH4/air mechanism (14 species)
// used for the premixed Bunsen study of paper §7.
func MethaneAirSkeletal() *Mechanism { return wrapMech(chem.CH4Skeletal()) }

// ParseMechanism loads a mechanism from CHEMKIN-like text; species must
// exist in the built-in thermodynamic database.
func ParseMechanism(name, text string) (*Mechanism, error) {
	m, err := chem.Parse(name, text)
	if err != nil {
		return nil, err
	}
	return wrapMech(m), nil
}

func wrapMech(m *chem.Mechanism) *Mechanism {
	return &Mechanism{chem: m, trans: transport.MustNew(m.Set)}
}

// Species returns the species names in state-vector order.
func (m *Mechanism) Species() []string {
	out := make([]string, m.chem.NumSpecies())
	for i, sp := range m.chem.Set.Species {
		out[i] = sp.Name
	}
	return out
}

// SpeciesIndex returns the index of a species name, or -1.
func (m *Mechanism) SpeciesIndex(name string) int { return m.chem.Set.Index(name) }

// NumSpecies returns the species count.
func (m *Mechanism) NumSpecies() int { return m.chem.NumSpecies() }

// PremixedMixture returns unburnt fuel/air mass fractions at equivalence
// ratio phi (fuel = CH4 or H2 depending on the mechanism).
func (m *Mechanism) PremixedMixture(phi float64) ([]float64, error) {
	return flame1d.PremixedMixture(m.chem, phi)
}

// IgnitionDelay integrates an adiabatic constant-pressure reactor and
// returns the time of maximum heating rate (NaN if the mixture does not
// ignite within tMax).
func (m *Mechanism) IgnitionDelay(T, p float64, Y []float64, tMax float64) (float64, error) {
	tau, _, err := reactor.IgnitionDelay(m.chem, T, p, Y, tMax)
	return tau, err
}

// Equilibrium returns the adiabatic complete-combustion product state
// (temperature and composition) of the mixture — the coflow composition of
// the Bunsen configuration.
func (m *Mechanism) Equilibrium(T, p float64, Y []float64) (Tb float64, Yb []float64, err error) {
	st, err := reactor.EquilibrateAdiabatic(m.chem, T, p, Y)
	if err != nil {
		return 0, nil, err
	}
	return st.T, st.Y, nil
}

// LaminarFlame solves the unstrained 1-D premixed flame (the PREMIX
// reference of paper §7.2) and returns its properties.
type LaminarFlame struct {
	SL, DeltaL, DeltaH, TauF, Tburnt float64
}

// LaminarFlame computes S_L, δ_L, δ_H and τ_f for the unburnt state.
func (m *Mechanism) LaminarFlame(Tu, p float64, Yu []float64) (LaminarFlame, error) {
	props, err := flame1d.Solve(flame1d.Config{Mech: m.chem, Tu: Tu, P: p, Yu: Yu})
	if err != nil {
		return LaminarFlame{}, err
	}
	return LaminarFlame{
		SL: props.SL, DeltaL: props.DeltaL, DeltaH: props.DeltaH,
		TauF: props.TauF, Tburnt: props.Tburnt,
	}, nil
}

// GridSpec describes the mesh (paper §2.6: uniform streamwise/spanwise,
// optionally algebraically stretched transverse direction).
type GridSpec struct {
	Nx, Ny, Nz int
	Lx, Ly, Lz float64
	StretchY   bool
	Beta       float64
}

// BC selects a boundary treatment for one face.
type BC int

// Boundary-condition kinds (see paper §2.6).
const (
	Periodic BC = iota
	Inflow      // non-reflecting characteristic inflow (needs Config.Inflow)
	Outflow     // non-reflecting characteristic outflow
)

// State is a primitive flow state at a point: velocity, temperature and
// composition.
type State = solver.InflowState

// Config assembles a simulation.
type Config struct {
	Mechanism *Mechanism
	Grid      GridSpec

	// BC[axis][side] with side 0 = low face; defaults to fully periodic.
	BC [3][2]BC
	// Inflow supplies the target state at characteristic inflow faces as a
	// function of transverse position and time.
	Inflow func(y, z, t float64, s *State)

	Pressure float64 // ambient/far-field pressure (Pa)

	FilterEvery    int     // apply the 10th-order filter every N steps (0: off)
	FilterStrength float64 // 0 selects full strength
	CFL            float64 // 0 selects 0.8

	// ChemistryOff runs inert (pressure-wave tests, kernel studies).
	ChemistryOff bool
	// OptimizedDiffFlux selects the LoopTool-transformed diffusive-flux
	// kernel (the figure 4/5 optimisation); the default is the naive
	// Fortran-90-style kernel.
	OptimizedDiffFlux bool
	// ConstLewis, when positive, replaces mixture-averaged diffusion by the
	// constant-Lewis-number model (an ablation of the paper's transport).
	ConstLewis float64

	// Backend selects the kernel backend for the hot loops: "generic",
	// "blocked", "auto", or a per-kernel "kernel=impl" list (see SetBackend).
	// Empty uses the process default. Backends are bitwise interchangeable.
	Backend string
	// Precision selects the per-field storage policy: "strict" or "mixed"
	// (see SetPrecision). Empty uses the process default.
	Precision string
}

func (c *Config) toSolver() (*solver.Config, error) {
	if c.Mechanism == nil {
		return nil, fmt.Errorf("s3d: config requires a Mechanism")
	}
	if c.Pressure <= 0 {
		return nil, fmt.Errorf("s3d: config requires a positive Pressure")
	}
	sc := &solver.Config{
		Mech:  c.Mechanism.chem,
		Trans: c.Mechanism.trans,
		Grid: grid.New(grid.Spec{
			Nx: c.Grid.Nx, Ny: c.Grid.Ny, Nz: c.Grid.Nz,
			Lx: c.Grid.Lx, Ly: c.Grid.Ly, Lz: c.Grid.Lz,
			StretchY: c.Grid.StretchY, Beta: c.Grid.Beta,
		}),
		PInf:           c.Pressure,
		FilterEvery:    c.FilterEvery,
		FilterStrength: c.FilterStrength,
		CFL:            c.CFL,
		ChemistryOff:   c.ChemistryOff,
		ConstLewis:     c.ConstLewis,
		Backend:        c.Backend,
		Precision:      c.Precision,
	}
	if sc.Backend == "" {
		sc.Backend = defaultBackend
	}
	if sc.Precision == "" {
		sc.Precision = defaultPrecision
	}
	if c.OptimizedDiffFlux {
		sc.DiffFlux = solver.DiffFluxOptimized
	}
	for a := 0; a < 3; a++ {
		for s := 0; s < 2; s++ {
			switch c.BC[a][s] {
			case Periodic:
				sc.BC[a][s] = solver.Periodic
			case Inflow:
				sc.BC[a][s] = solver.InflowNSCBC
			case Outflow:
				sc.BC[a][s] = solver.OutflowNSCBC
			}
		}
	}
	if c.Inflow != nil {
		sc.Inflow = solver.InflowFunc(c.Inflow)
	}
	return sc, nil
}

// Simulation is a running DNS (one block; use RunDecomposed for the
// MPI-style multi-rank execution).
type Simulation struct {
	blk       *solver.Block
	mech      *Mechanism
	cfg       *Config
	healthOpt *HealthOptions // set by EnableHealth (see health.go)
}

// New builds a serial simulation.
func New(cfg Config) (*Simulation, error) {
	sc, err := cfg.toSolver()
	if err != nil {
		return nil, err
	}
	blk, err := solver.NewSerial(sc)
	if err != nil {
		return nil, err
	}
	return &Simulation{blk: blk, mech: cfg.Mechanism, cfg: &cfg}, nil
}

// SetInitial initialises the field from a primitive-state profile at
// ambient pressure; pFn (optional) overrides the pressure pointwise.
func (s *Simulation) SetInitial(fn func(x, y, z float64, st *State), pFn func(x, y, z float64) float64) {
	s.blk.SetState(fn, pFn)
	s.blk.RefreshPrimitives()
}

// StableDt returns the acoustic-CFL stable time step for the current state.
func (s *Simulation) StableDt() float64 {
	s.blk.RefreshPrimitives()
	return s.blk.AcousticDt()
}

// Advance integrates n steps of size dt.
func (s *Simulation) Advance(n int, dt float64) {
	s.blk.Advance(n, dt)
	s.blk.RefreshPrimitives()
}

// Step returns the completed step count; Time the physical time (s).
func (s *Simulation) Step() int { return s.blk.Step }

// Time returns the simulated physical time in seconds.
func (s *Simulation) Time() float64 { return s.blk.Time }

// Dims returns the interior mesh extents.
func (s *Simulation) Dims() (nx, ny, nz int) {
	return s.blk.G.Nx, s.blk.G.Ny, s.blk.G.Nz
}

// Coords returns the physical coordinates of the mesh lines.
func (s *Simulation) Coords() (x, y, z []float64) {
	return s.blk.G.Xc, s.blk.G.Yc, s.blk.G.Zc
}

// Field extracts a named field over the interior, flattened x-fastest,
// together with its dims. Names resolve through the solver's field
// registry — "rho", "u", "v", "w", "T", "p", "Y_<species>" (e.g. "Y_OH")
// and every other registered field (see Fields for the inventory) — plus
// the derived "hrr" (heat release rate, W/m³).
func (s *Simulation) Field(name string) ([]float64, [3]int, error) {
	nx, ny, nz := s.Dims()
	dims := [3]int{nx, ny, nz}
	if name == "hrr" {
		return s.heatRelease(), dims, nil
	}
	f := s.blk.FieldByName(name)
	if f == nil {
		return nil, dims, fmt.Errorf("s3d: unknown field %q", name)
	}
	var buf []float64
	if f.Data32 != nil {
		// Narrow-storage field (mixed policy): widen row by row.
		buf = make([]float64, nx)
	}
	out := make([]float64, 0, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			out = append(out, f.RowInto(buf, j, k)...)
		}
	}
	return out, dims, nil
}

// heatRelease evaluates −Σ ω̇ᵢhᵢ pointwise.
func (s *Simulation) heatRelease() []float64 {
	nx, ny, nz := s.Dims()
	m := s.mech.chem.Clone()
	ns := m.NumSpecies()
	C := make([]float64, ns)
	wdot := make([]float64, ns)
	Y := make([]float64, ns)
	out := make([]float64, 0, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				for n := 0; n < ns; n++ {
					Y[n] = s.blk.Y[n].At(i, j, k)
				}
				T := s.blk.T.At(i, j, k)
				m.Concentrations(s.blk.Rho.At(i, j, k), Y, C)
				m.ProductionRates(T, C, wdot)
				out = append(out, m.HeatReleaseRate(T, wdot))
			}
		}
	}
	return out
}

// MinMax returns the interior extrema of a named field (the paper's
// min/max monitoring quantities).
func (s *Simulation) MinMax(name string) (lo, hi float64, err error) {
	data, _, err := s.Field(name)
	if err != nil {
		return 0, 0, err
	}
	lo, hi = data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// SaveCheckpoint writes a restart file: the full conserved state plus time
// bookkeeping, sufficient to continue the run bit-exactly (the restart
// files of paper §9).
func (s *Simulation) SaveCheckpoint(w io.Writer) error { return s.blk.SaveCheckpoint(w) }

// LoadCheckpoint restores a restart file into a simulation built with the
// same configuration.
func (s *Simulation) LoadCheckpoint(r io.Reader) error {
	if err := s.blk.LoadCheckpoint(r); err != nil {
		return err
	}
	s.blk.RefreshPrimitives()
	return nil
}

// MixtureFraction returns a Bilger mixture-fraction evaluator for the two
// stream compositions (figure 11's ξ axis).
func (s *Simulation) MixtureFraction(yFuel, yOx []float64) *stats.Bilger {
	return stats.NewBilger(s.mech.chem.Set, yFuel, yOx)
}

// RankSim is the per-rank view inside a decomposed run.
type RankSim struct {
	*Simulation
	Rank       int
	Offset     [3]int // global offset of this rank's block
	GlobalDims [3]int
}

// RunDecomposed executes the configuration over a dims[0]×dims[1]×dims[2]
// rank grid (the 3-D domain decomposition of paper §2.6), calling body on
// every rank concurrently. It returns the first rank error.
func RunDecomposed(cfg Config, dims [3]int, body func(r *RankSim)) error {
	sc, err := cfg.toSolver()
	if err != nil {
		return err
	}
	periodic := [3]bool{
		sc.BC[0][0] == solver.Periodic,
		sc.BC[1][0] == solver.Periodic,
		sc.BC[2][0] == solver.Periodic,
	}
	w := comm.NewWorld(dims[0] * dims[1] * dims[2])
	return w.Run(func(c *comm.Comm) {
		cart, err := comm.NewCart(c, dims, periodic)
		if err != nil {
			panic(err)
		}
		blk, err := solver.NewParallel(sc, cart)
		if err != nil {
			panic(err)
		}
		i0, j0, k0 := blk.GlobalOffset()
		body(&RankSim{
			Simulation: &Simulation{blk: blk, mech: cfg.Mechanism, cfg: &cfg},
			Rank:       c.Rank(),
			Offset:     [3]int{i0, j0, k0},
			GlobalDims: [3]int{cfg.Grid.Nx, cfg.Grid.Ny, cfg.Grid.Nz},
		})
	})
}
