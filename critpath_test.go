package s3d

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// runCritPathDecomposed runs a decomposed reacting lifted jet with the
// critpath analyzer enabled on every rank (Every: 2 over 4 steps),
// optionally slowing one rank's chemistry, and returns the analyzed
// records plus the shared analyzer for trace export.
func runCritPathDecomposed(t *testing.T, workers int, dims [3]int, straggler int, delay time.Duration) ([]CritPathRecord, *CritPathAnalyzer) {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(0) // restore the NumCPU default for other tests
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := NewCritPathAnalyzer(CritPathSpec{Every: 2})
	var (
		mu   sync.Mutex
		recs []CritPathRecord
	)
	err = RunDecomposed(p.Config, dims, func(r *RankSim) {
		r.SetInitial(p.Initial, p.InitPressure)
		// Every rank installs the same analyzer: the deposit barrier is
		// collective.
		if err := r.EnableCritPath(a); err != nil {
			panic(err)
		}
		if r.Rank == 0 {
			if err := r.SubscribeCritPath(func(rec CritPathRecord) {
				mu.Lock()
				recs = append(recs, rec)
				mu.Unlock()
			}); err != nil {
				panic(err)
			}
		}
		if delay > 0 && r.Rank == straggler {
			r.InjectStraggler(delay)
		}
		dt := 0.4 * r.StableDtGlobal()
		r.Advance(4, dt)
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, a
}

// TestCritPathStructureDeterministicAcrossWorkers pins the determinism
// contract: the record's structural fields — rank count, the operation
// census, matched edge count, match completeness — derive from the step's
// communication pattern alone, so they must agree across worker counts
// even though every timing-derived field (path, waits, blame) may differ.
func TestCritPathStructureDeterministicAcrossWorkers(t *testing.T) {
	r1, _ := runCritPathDecomposed(t, 1, [3]int{2, 1, 1}, -1, 0)
	r4, _ := runCritPathDecomposed(t, 4, [3]int{2, 1, 1}, -1, 0)
	if len(r1) != 2 || len(r4) != 2 {
		t.Fatalf("got %d and %d records, want 2 each (Every: 2 over 4 steps)", len(r1), len(r4))
	}
	for i := range r1 {
		a, b := r1[i], r4[i]
		if a.Step != []int{2, 4}[i] || a.Step != b.Step {
			t.Fatalf("record %d steps: %d vs %d, want %d", i, a.Step, b.Step, []int{2, 4}[i])
		}
		if a.Ranks != b.Ranks || a.Sends != b.Sends || a.Recvs != b.Recvs ||
			a.Collectives != b.Collectives || a.Edges != b.Edges ||
			a.MatchCompleteness != b.MatchCompleteness {
			t.Fatalf("structural fields differ between 1 and 4 workers:\n1: %+v\n4: %+v", a, b)
		}
		if len(a.RankOps) != len(b.RankOps) {
			t.Fatalf("rank ops length differs: %d vs %d", len(a.RankOps), len(b.RankOps))
		}
		for r := range a.RankOps {
			if a.RankOps[r] != b.RankOps[r] {
				t.Fatalf("rank %d ops differ: %+v vs %+v", r, a.RankOps[r], b.RankOps[r])
			}
		}
		// The in-process transport loses no messages: every receive edge
		// must match a traced send.
		if a.MatchCompleteness != 1 {
			t.Fatalf("match completeness %v, want 1", a.MatchCompleteness)
		}
		if a.Edges == 0 || a.Sends != a.Recvs {
			t.Fatalf("census implausible: %+v", a)
		}
	}
}

// TestCritPathStragglerE2E is the acceptance scenario: a 4-rank run with
// rank 2's chemistry artificially slowed must yield records whose critical
// path runs through rank 2, whose other ranks sit in late-sender waits
// blamed on rank 2, and whose blame points at the chemistry region — and
// the verdict must agree with the cost sampler's independent wall-clock
// view of the same run.
func TestCritPathStragglerE2E(t *testing.T) {
	const straggler = 2
	// The injected sleep must dominate the step's real compute even on a
	// single-CPU box where the four rank goroutines time-slice one core:
	// 25 ms × 6 RK stages = 150 ms per step, while the whole 32×24 step
	// computes in well under that. Sleeping releases the CPU, so the other
	// ranks finish their work and genuinely block on rank 2's late sends.
	const delay = 25 * time.Millisecond
	SetWorkers(1)
	defer SetWorkers(0)
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := NewCritPathAnalyzer(CritPathSpec{Every: 2})
	path := filepath.Join(t.TempDir(), "critpath.jsonl")
	var (
		mu        sync.Mutex
		chemWallS float64 // straggler's measured chemistry seconds (cost view)
	)
	err = RunDecomposed(p.Config, [3]int{4, 1, 1}, func(r *RankSim) {
		r.SetInitial(p.Initial, p.InitPressure)
		if err := r.EnableCritPath(a); err != nil {
			panic(err)
		}
		// The cost sampler rides along as the independent cross-check.
		if _, err := r.EnableCostMaps(CostSpec{Every: 2}); err != nil {
			panic(err)
		}
		if r.Rank == 0 {
			st, err := NewCritPathStore(path)
			if err != nil {
				panic(err)
			}
			defer st.Close()
			if err := r.SubscribeCritPath(st.Sink()); err != nil {
				panic(err)
			}
		}
		if r.Rank == straggler {
			r.InjectStraggler(delay)
		}
		dt := 0.4 * r.StableDtGlobal()
		r.Advance(4, dt)
		if r.Rank == straggler {
			doc := r.Cost().Latest()
			if doc == nil {
				panic("straggler's cost collector published nothing")
			}
			for _, mk := range doc.Measured {
				if mk.Kernel == "REACTION_RATE_BOUNDS" {
					mu.Lock()
					chemWallS = mk.RegionS
					mu.Unlock()
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	recs, err := ReadCritPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	var blamedChemNs int64
	for _, rec := range recs {
		if rec.CritRank != straggler {
			t.Fatalf("step %d: critical path through rank %d, want straggler %d\n%s",
				rec.Step, rec.CritRank, straggler, rec.Verdict)
		}
		if rec.DominantWait != "late_sender" {
			t.Fatalf("step %d: dominant wait %q, want late_sender", rec.Step, rec.DominantWait)
		}
		if rec.MatchCompleteness != 1 {
			t.Fatalf("step %d: match completeness %v, want 1", rec.Step, rec.MatchCompleteness)
		}
		// The straggler's neighbours block on its late sends. (Distant
		// ranks may idle indirectly, so only neighbours are asserted.)
		for _, w := range rec.Waits {
			if w.Rank == straggler-1 || w.Rank == straggler+1 {
				if w.LateSenderNs < int64(delay) || w.LateSenderPeer != straggler {
					t.Fatalf("step %d: neighbour rank %d wait %+v, want late-sender blame on rank %d",
						rec.Step, w.Rank, w, straggler)
				}
			}
		}
		if rec.LostFrac <= 0 {
			t.Fatalf("step %d: lost fraction %v, want > 0", rec.Step, rec.LostFrac)
		}
		// Blame must point at the slowed kernel.
		if len(rec.Blame) == 0 || !strings.Contains(rec.Blame[0].Path, "REACTION_RATE_BOUNDS") {
			t.Fatalf("step %d: top blame %+v, want the chemistry region", rec.Step, rec.Blame)
		}
		for _, bl := range rec.Blame {
			if strings.Contains(bl.Path, "REACTION_RATE_BOUNDS") {
				blamedChemNs += bl.Ns
			}
		}
		if !strings.Contains(rec.Verdict, "rank 2") {
			t.Fatalf("step %d: verdict %q does not name the straggler", rec.Step, rec.Verdict)
		}
	}

	// Cross-validation against internal/cost: the straggler's measured
	// chemistry wall clock for its last analyzed step must carry the
	// injected delay (≥ 6 stages × delay, minus scheduling slack), and the
	// critical path's chemistry blame must be of the same magnitude —
	// two independent clocks agreeing on where the time went.
	stepSleep := 6 * delay.Seconds()
	if chemWallS < 0.75*stepSleep {
		t.Fatalf("cost sampler measured %.3fs of chemistry on the straggler, want ≥ %.3fs", chemWallS, 0.75*stepSleep)
	}
	if got := time.Duration(blamedChemNs).Seconds(); got < 0.75*stepSleep {
		t.Fatalf("critpath blamed %.3fs on chemistry across 2 records, want ≥ %.3fs (cost measured %.3fs)",
			got, 0.75*stepSleep, chemWallS)
	}

	// The Chrome-trace export highlights the straggler's critical-path
	// spans in the dedicated overlay lane.
	var sb bytes.Buffer
	if err := a.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"critical-path", "crit:rank2", "REACTION_RATE_BOUNDS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q", want)
		}
	}
}

// TestCritPathLiveEndpoints checks the monitor serves the latest record at
// GET /critpath and exports critpath_* gauges; serial runs still analyze
// (single-rank path, region blame, no message edges).
func TestCritPathLiveEndpoints(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.EnableCritPath(NewCritPathAnalyzer(CritPathSpec{Every: 1})); err != nil {
		t.Fatal(err)
	}
	var last CritPathRecord
	if err := sim.SubscribeCritPath(func(r CritPathRecord) { last = r }); err != nil {
		t.Fatal(err)
	}
	probe, err := sim.StartTelemetry(TelemetryOptions{Case: "critpath-live", MonitorAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close("")

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + probe.MonitorAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	// Before any step the endpoint answers with an empty object, not a 404.
	if code, body := get("/critpath"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("GET /critpath before first record = %d %q, want 200 {}", code, body)
	}

	probe.Advance(2, 0.4*sim.StableDt())
	if last.Step != 2 || last.Ranks != 1 {
		t.Fatalf("subscriber saw %+v, want step 2 on 1 rank", last)
	}

	code, body := get("/critpath")
	if code != 200 {
		t.Fatalf("GET /critpath = %d", code)
	}
	var rec CritPathRecord
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatalf("GET /critpath is not a record: %v\n%s", err, body)
	}
	if rec.Step != 2 || rec.CritRank != 0 || len(rec.Path) == 0 {
		t.Fatalf("live record wrong: %+v", rec)
	}
	// Serial blame still lands on real call-path regions (the analyzer's
	// internal profiler records the rank track when no profiler is armed).
	if len(rec.Blame) == 0 || !strings.Contains(rec.Blame[0].Path, "STEP") {
		t.Fatalf("serial record carries no region blame: %+v", rec.Blame)
	}

	if code, prom := get("/metrics.prom"); code != 200 || !strings.Contains(prom, "critpath_") {
		t.Fatalf("GET /metrics.prom = %d, missing critpath_* gauges:\n%s", code, prom)
	}
}

// TestSubscribeCritPathBeforeEnableErrors pins the root API failure modes.
func TestSubscribeCritPathBeforeEnableErrors(t *testing.T) {
	sim := inertBoxSim(t)
	if err := sim.SubscribeCritPath(func(CritPathRecord) {}); err == nil {
		t.Fatal("SubscribeCritPath before EnableCritPath must fail")
	}
	if err := sim.WriteCritPathTrace(io.Discard); err == nil {
		t.Fatal("WriteCritPathTrace before EnableCritPath must fail")
	}
	if sim.CritPath() != nil {
		t.Fatal("CritPath() must be nil before EnableCritPath")
	}
	if err := sim.EnableCritPath(nil); err == nil {
		t.Fatal("EnableCritPath(nil) must fail")
	}
}
