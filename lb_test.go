package s3d

import (
	"bytes"
	"sync"
	"testing"
)

// runLBSerial runs a serial igniting lifted jet for six steps, returning
// the final checkpoint bytes (and, with balancing on, the exported/imported
// cell totals, which must stay zero in serial runs).
func runLBSerial(t *testing.T, workers int, lb bool) []byte {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(0)
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if lb {
		if err := sim.EnableLoadBalance(LoadBalanceSpec{Every: 2}); err != nil {
			t.Fatal(err)
		}
	}
	sim.Advance(6, 0.4*sim.StableDt())
	if lb {
		if exp, imp := sim.LoadBalanceStats(); exp != 0 || imp != 0 {
			t.Fatalf("serial run shared work: exported %d imported %d cells", exp, imp)
		}
	}
	var buf bytes.Buffer
	if err := sim.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runLBDecomposed runs the same jet 2x1x1-decomposed along x — the §6.2
// ignition kernel sits downstream (x > 0.55·Lx), so the two ranks carry a
// genuinely imbalanced chemistry load and the work-sharing assignment has
// real transfers to plan. Returns per-rank checkpoint bytes plus the
// summed exported/imported cell counts.
func runLBDecomposed(t *testing.T, workers int, lb bool) ([2][]byte, int64, int64) {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(0)
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu       sync.Mutex
		cps      [2][]byte
		exported int64
		imported int64
	)
	err = RunDecomposed(p.Config, [3]int{2, 1, 1}, func(r *RankSim) {
		r.SetInitial(p.Initial, p.InitPressure)
		if lb {
			// Tight slack so even moderate rank imbalance plans transfers;
			// every rank must install the identical spec.
			if err := r.EnableLoadBalance(LoadBalanceSpec{Every: 2, Slack: 0.01}); err != nil {
				panic(err)
			}
		}
		r.Advance(6, 0.4*r.StableDtGlobal())
		var buf bytes.Buffer
		if err := r.SaveCheckpoint(&buf); err != nil {
			panic(err)
		}
		exp, imp := r.LoadBalanceStats()
		mu.Lock()
		cps[r.Rank] = buf.Bytes()
		exported += exp
		imported += imp
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return cps, exported, imported
}

// TestLoadBalanceBitwiseParity pins the load balancer's determinism
// contract: balancing re-tiles sweeps and relocates work, but every
// balancing decision derives from the bitwise-reproducible cost record and
// the per-cell arithmetic and reduction orders are unchanged — so the
// solution is bitwise identical to the unbalanced run, at any worker
// count, including through the cross-rank bundle path.
func TestLoadBalanceBitwiseParity(t *testing.T) {
	// Serial: weighted re-tiling only.
	base := runLBSerial(t, 1, false)
	if lb1 := runLBSerial(t, 1, true); !bytes.Equal(base, lb1) {
		t.Fatal("serial checkpoint differs with balancing on (1 worker)")
	}
	if lb4 := runLBSerial(t, 4, true); !bytes.Equal(base, lb4) {
		t.Fatal("serial checkpoint differs with balancing on (4 workers)")
	}

	// Decomposed: the cross-rank bundle path must actually fire, and must
	// not change a single bit of either rank's solution.
	dBase, exp0, imp0 := runLBDecomposed(t, 2, false)
	if exp0 != 0 || imp0 != 0 {
		t.Fatalf("unbalanced run reported sharing stats: %d/%d", exp0, imp0)
	}
	dLB, exp, imp := runLBDecomposed(t, 2, true)
	if exp == 0 || imp == 0 {
		t.Fatalf("work-sharing never fired: exported %d imported %d cells", exp, imp)
	}
	if exp != imp {
		t.Fatalf("exported %d != imported %d cells: bundles lost", exp, imp)
	}
	for rank := range dBase {
		if len(dBase[rank]) == 0 {
			t.Fatalf("rank %d produced no checkpoint", rank)
		}
		if !bytes.Equal(dBase[rank], dLB[rank]) {
			t.Fatalf("rank %d checkpoint differs with balancing on", rank)
		}
	}
	// And the bundle path is itself worker-count invariant.
	dLB1, exp1, imp1 := runLBDecomposed(t, 1, true)
	if exp1 != exp || imp1 != imp {
		t.Fatalf("sharing stats differ across worker counts: %d/%d vs %d/%d", exp1, imp1, exp, imp)
	}
	for rank := range dLB {
		if !bytes.Equal(dLB[rank], dLB1[rank]) {
			t.Fatalf("rank %d checkpoint differs between 1 and 2 workers with balancing on", rank)
		}
	}
}

// TestLoadBalanceRequiresNothing pins the root API conveniences: enabling
// the balancer without cost maps installs them, and stats read zero before
// any sharing.
func TestLoadBalanceRequiresNothing(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 16, Ny: 12, Nz: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Cost() != nil {
		t.Fatal("cost sampler installed before EnableLoadBalance")
	}
	if err := sim.EnableLoadBalance(LoadBalanceSpec{}); err != nil {
		t.Fatal(err)
	}
	if sim.Cost() == nil {
		t.Fatal("EnableLoadBalance must install the cost sampler it depends on")
	}
	if exp, imp := sim.LoadBalanceStats(); exp != 0 || imp != 0 {
		t.Fatalf("fresh stats = %d/%d, want 0/0", exp, imp)
	}
}
