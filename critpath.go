package s3d

// Critical path: the public face of the cross-rank wait-state and
// critical-path analyzer (internal/critpath). EnableCritPath installs the
// run's shared analyzer, which per analyzed step matches message edges
// across ranks from the comm event trace, classifies waits (late-sender,
// late-receiver, wait-at-collective with a root-cause rank), extracts the
// cross-rank critical path and blames it on profiler call-path regions —
// "step 142: critical path ran through rank 2, mostly in RHS/CHEM; ranks
// 0,1,3 lost 38% of the step in late-sender waits on rank 2". Records
// stream to critpath.jsonl, the GET /critpath document, the critpath_*
// gauges and the workflow dashboard's critpath lane. See README.md,
// "Observability stack", and DESIGN.md, internal/critpath.

import (
	"fmt"
	"io"
	"time"

	"github.com/s3dgo/s3d/internal/critpath"
)

// CritPathRecord is one analyzed step's wait-state and critical-path
// document (re-exported from internal/critpath).
type CritPathRecord = critpath.Record

// CritPathAnalyzer is the shared cross-rank analyzer (re-exported).
type CritPathAnalyzer = critpath.Analyzer

// CritPathSpec configures NewCritPathAnalyzer. Every is the analysis
// cadence in steps (≤0 selects every step).
type CritPathSpec struct {
	Every int
}

// NewCritPathAnalyzer builds the analyzer for a run. Decomposed runs
// create ONE analyzer before RunDecomposed and pass the same instance to
// every rank's EnableCritPath — the analyzer is the cross-rank deposit
// barrier (like the shared profiler, unlike the per-rank cost collector).
func NewCritPathAnalyzer(spec CritPathSpec) *CritPathAnalyzer {
	return critpath.New(spec.Every)
}

// EnableCritPath installs and enables the analyzer on this simulation.
// Call before StartTelemetry so the probe mounts GET /critpath and the
// critpath_* gauges, and before the first step. In decomposed runs every
// rank must enable the same analyzer at the same point: a due step ends in
// a deposit barrier all ranks must reach.
func (s *Simulation) EnableCritPath(a *CritPathAnalyzer) error {
	if a == nil {
		return fmt.Errorf("s3d: EnableCritPath requires a non-nil analyzer (NewCritPathAnalyzer)")
	}
	if err := s.blk.InstallCritPath(a); err != nil {
		return err
	}
	a.Enable()
	return nil
}

// CritPath returns the installed analyzer (nil before EnableCritPath).
func (s *Simulation) CritPath() *CritPathAnalyzer { return s.blk.CritPath() }

// SubscribeCritPath registers fn to receive every analyzed record, on the
// goroutine that completed the step's deposit barrier (exactly one rank
// per record). EnableCritPath must have been called. Decomposed runs
// subscribe a single rank's simulation (conventionally rank 0) — the
// analyzer is shared, so one subscription sees every record.
func (s *Simulation) SubscribeCritPath(fn func(CritPathRecord)) error {
	a := s.blk.CritPath()
	if a == nil {
		return fmt.Errorf("s3d: SubscribeCritPath requires EnableCritPath first")
	}
	a.Subscribe(fn)
	return nil
}

// NewCritPathStore creates (truncating) an append-only critpath.jsonl
// store; wire its Sink into SubscribeCritPath to persist every record.
func NewCritPathStore(path string) (*critpath.Store, error) {
	return critpath.CreateStore(path)
}

// ReadCritPath loads every record of a critpath.jsonl store, tolerating a
// corrupt tail the way obs.ReadTrace does.
func ReadCritPath(path string) ([]CritPathRecord, error) {
	return critpath.ReadCritPath(path)
}

// WriteCritPathTrace exports the blame profiler's timeline with the
// critical-path overlay as a Chrome trace (chrome://tracing / Perfetto):
// every analyzed step's critical path renders as a lane of crit:rankN
// spans above the real call-path rows. EnableCritPath must have been
// called and at least one step analyzed for the overlay to be non-empty.
func (s *Simulation) WriteCritPathTrace(w io.Writer) error {
	a := s.blk.CritPath()
	if a == nil {
		return fmt.Errorf("s3d: WriteCritPathTrace requires EnableCritPath first")
	}
	return a.WriteChromeTrace(w)
}

// InjectStraggler artificially slows this rank's chemistry sweep by d per
// RK stage (zero disables) — a validation hook: the slowed rank must
// surface as the critical-path owner, with its peers in late-sender waits
// and the chemistry region blamed. Exposed publicly because straggler
// experiments are how wait-state analytics are calibrated against the
// cost imbalance model (see the e2e tests).
func (s *Simulation) InjectStraggler(d time.Duration) {
	s.blk.SetStragglerDelay(d)
}
