package s3d

// Profiling: the public face of the call-path profiler (internal/prof).
// A Profiler collects TAU/HPCToolkit-style spans from the solver's hot
// regions, the communication layer (so blocked time is attributed to the
// call path that blocked) and the worker pool, and exports a Chrome
// trace_event timeline, an inclusive/exclusive call-path report with
// cross-rank imbalance statistics, and a measured-vs-modelled roofline
// table (paper §4, figure 2). Enable it per simulation with
// EnableProfiling; export with ExportProfile or serve live with
// Probe.MountProfile.

import (
	"net/http"

	"github.com/s3dgo/s3d/internal/perf"
	"github.com/s3dgo/s3d/internal/prof"
)

// NewProfiler returns an enabled call-path profiler. One profiler serves
// all simulations (ranks) of a run; give each its own track name via
// EnableProfiling.
func NewProfiler() *prof.Profiler { return prof.New() }

// EnableProfiling attaches the simulation to the profiler: a new rank
// track named trackName (e.g. "rank0") records the solver's region spans
// and the communication layer's wait spans, and the shared worker pool
// gets per-worker tracks. Call before stepping; spans accumulate until
// the profiler is exported.
func (s *Simulation) EnableProfiling(p *prof.Profiler, trackName string) {
	s.blk.EnableProfiling(p.NewTrack(prof.GroupRank, trackName))
	s.blk.Plan().Pool().AttachProfiler(p)
}

// ProfTrack returns the rank track EnableProfiling created (nil before).
// Hand it to auxiliary clients driven by the same goroutine — e.g.
// pario.CacheClient.SetProfiler — so their spans join this rank's call
// paths instead of polluting the cross-rank statistics with an extra
// always-idle "rank".
func (s *Simulation) ProfTrack() *prof.Track { return s.blk.ProfTrack() }

// ProfileShape describes this simulation's per-rank workload for the
// roofline analysis (interior points per rank and species count), labelled
// with the run's precision policy and the backend serving each kernel so
// the roofline table states which implementation produced each rate.
func (s *Simulation) ProfileShape() prof.RunShape {
	nx, ny, nz := s.Dims()
	return prof.RunShape{
		PointsPerRank: nx * ny * nz,
		NumSpecies:    s.mech.NumSpecies(),
		Policy:        s.blk.PrecisionPolicy(),
		KernelImpl:    s.blk.KernelBackends(),
	}
}

// ProfileMachines returns the machine models the roofline compares
// attained kernel performance against: the paper's Cray XT3 and XT4
// nodes plus a model of this host calibrated with flop-rate and
// memory-bandwidth microbenchmarks (~tens of ms).
func ProfileMachines() []perf.Machine {
	return []perf.Machine{perf.XT3, perf.XT4, prof.CalibrateHost()}
}

// ExportProfile writes the profiler's artifacts into dir: trace.json
// (Chrome trace_event timeline for chrome://tracing or Perfetto),
// callpath.txt / callpath.csv (inclusive/exclusive call-path report with
// cross-rank imbalance) and roofline.txt (measured flops/bytes and the
// attained fraction of each machine model's roofline per kernel).
func (s *Simulation) ExportProfile(dir string, p *prof.Profiler, machines []perf.Machine) error {
	return prof.Export(dir, p, s.ProfileShape(), machines)
}

// MountProfile serves the profiler's artifacts live from the probe's
// HTTP monitor under /profile/ (trace.json, callpath.txt, callpath.csv,
// roofline.txt). No-op when the probe runs without a monitor.
func (p *Probe) MountProfile(pr *prof.Profiler, shape prof.RunShape, machines []perf.Machine) {
	if p.mon == nil {
		return
	}
	p.mon.Handle("/profile/", http.StripPrefix("/profile", prof.Handler(pr, shape, machines)))
}
