package s3d

// Cost maps: the public face of the spatial cost-attribution sampler
// (internal/cost). EnableCostMaps installs a per-block collector that
// attributes kernel cost to space — a deterministic chemistry work proxy
// written to the cost_chem / cost_density registry fields (visible through
// GET /fields and the viz pickers) plus wall-clock per-tile timings from
// the kernel plan's probe — and reduces per-step imbalance analytics
// cross-rank in ascending rank order. The deterministic record streams to
// cost.jsonl, the GET /cost document, the cost_* gauges and the workflow
// dashboard's balance lane; it is bitwise identical for any worker count.
// See README.md, "Cost maps & load balance".

import (
	"fmt"

	"github.com/s3dgo/s3d/internal/cost"
)

// CostRecord is one step's deterministic cost document (re-exported from
// internal/cost for subscribers and ReadCost consumers).
type CostRecord = cost.Record

// CostSpec configures EnableCostMaps. Every is the reduction cadence in
// steps (≤0 selects every step).
type CostSpec struct {
	Every int
}

// EnableCostMaps builds, installs and enables the cost-attribution sampler.
// Call before StartTelemetry so the probe mounts GET /cost and the cost_*
// gauges, and before the first step. In decomposed runs every rank must
// enable an identical spec at the same point: a due step adds one
// collective that must match across ranks. Returns the collector for
// Subscribe, Latest and Handler access.
func (s *Simulation) EnableCostMaps(spec CostSpec) (*cost.Collector, error) {
	c := cost.NewCollector(spec.Every)
	s.blk.InstallCost(c)
	c.Enable()
	return c, nil
}

// Cost returns the installed collector (nil before EnableCostMaps).
func (s *Simulation) Cost() *cost.Collector { return s.blk.Cost() }

// SubscribeCost registers fn to receive every deterministic cost record, on
// the goroutine driving the simulation. EnableCostMaps must have been
// called.
func (s *Simulation) SubscribeCost(fn func(CostRecord)) error {
	c := s.blk.Cost()
	if c == nil {
		return fmt.Errorf("s3d: SubscribeCost requires EnableCostMaps first")
	}
	c.Subscribe(fn)
	return nil
}

// NewCostStore creates (truncating) an append-only cost.jsonl store; wire
// its Sink into SubscribeCost to persist every record.
func NewCostStore(path string) (*cost.Store, error) { return cost.CreateStore(path) }

// ReadCost loads every record of a cost.jsonl store.
func ReadCost(path string) ([]CostRecord, error) { return cost.ReadCost(path) }
