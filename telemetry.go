package s3d

// Telemetry: the public face of the observability layer (internal/obs).
// A Probe attaches to a Simulation and, for every solver step, emits one
// structured StepEvent — step index, dt, CFL, per-RK-stage wall times,
// temperature/pressure extrema, total-mass drift, heat-release integral
// and the communication and parallel-I/O counters — to any combination of
// a JSONL trace, a live HTTP monitor and a human-readable status stream.
// The probe samples only what the solver already computed (see
// internal/solver/telemetry.go), so tracing stays within a few percent of
// an uninstrumented run.

import (
	"fmt"
	"io"
	"time"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/perf"
)

// TelemetryOptions configures a Probe. Every sink is optional; a Probe
// with no sinks still accumulates the metrics registry and the physics
// diagnostics, retrievable via Metrics and LastStep.
type TelemetryOptions struct {
	// Case names the run in the run_start record (default "s3d").
	Case string
	// Config is merged into the run_start manifest on top of the
	// simulation's own configuration summary.
	Config map[string]string

	// Trace receives one JSONL record per step plus run-lifecycle records.
	// The caller owns its lifetime; Probe.Close flushes but never closes it.
	Trace *obs.Trace
	// MonitorAddr, when non-empty, starts an HTTP monitor on the address
	// (":0" selects an ephemeral port; see Probe.MonitorAddr) serving
	// /metrics, /status and /healthz live.
	MonitorAddr string
	// Status, when non-nil, receives a human-readable line every
	// StatusEvery steps (default every 10).
	Status      io.Writer
	StatusEvery int

	// CFLRefreshEvery is the cadence, in steps, at which the acoustic
	// stability limit behind the reported CFL is re-evaluated (the sweep
	// costs a full sound-speed pass; default 20, minimum 1).
	CFLRefreshEvery int

	// Pario, when non-nil, is polled each step for parallel-I/O counters
	// (wire it to CacheClient.Stats or WriteBehindClient.Stats).
	Pario func() obs.ParioStats
}

// Probe threads per-step observability through a Simulation.
// It is owned by the goroutine driving the simulation; only the metrics
// registry and the monitor it exposes are safe for concurrent readers.
type Probe struct {
	sim *Simulation
	opt TelemetryOptions
	reg *obs.Registry
	mon *obs.Monitor

	mass0      float64 // interior mass at attach time (drift reference)
	acousticDt float64 // most recently evaluated stable dt
	cflNumber  float64
	start      time.Time
	last       obs.StepEvent
}

// StartTelemetry attaches a Probe to the simulation, emits the run_start
// record and (when configured) starts the live monitor. Call Close when
// the run finishes to emit run_done.
func (s *Simulation) StartTelemetry(opt TelemetryOptions) (*Probe, error) {
	if opt.Case == "" {
		opt.Case = "s3d"
	}
	if opt.StatusEvery <= 0 {
		opt.StatusEvery = 10
	}
	if opt.CFLRefreshEvery <= 0 {
		opt.CFLRefreshEvery = 20
	}
	p := &Probe{
		sim:       s,
		opt:       opt,
		reg:       obs.NewRegistry(),
		cflNumber: s.cfg.CFL,
		start:     time.Now(),
	}
	if p.cflNumber <= 0 {
		p.cflNumber = 0.8 // the solver's default acoustic CFL number
	}
	s.blk.EnableTelemetry(p.reg)
	p.mass0 = s.blk.TotalMass()
	p.acousticDt = s.blk.AcousticDt()

	manifest := s.configManifest()
	for k, v := range opt.Config {
		manifest[k] = v
	}
	info := obs.NewRunInfo(opt.Case, manifest)
	info.Workers = s.blk.Plan().Workers()
	if opt.Trace != nil {
		opt.Trace.RunStartInfo(info)
	}
	if opt.MonitorAddr != "" {
		mon, err := obs.StartMonitor(opt.MonitorAddr, p.reg)
		if err != nil {
			return nil, err
		}
		mon.SetRun(info)
		p.mon = mon
		// The registry-backed field inventory: names, roles, halo groups
		// and checkpoint membership of every solver field, live.
		p.mon.Handle("/fields", s.fieldsHandler())
	}
	// A watchdog installed before StartTelemetry joins the observability
	// surface: health gauges in /metrics(.prom) and the live /health
	// document on the monitor.
	if w := s.blk.Watchdog(); w != nil {
		w.AttachMetrics(p.reg)
		if p.mon != nil {
			p.mon.Handle("/health", w.Handler())
		}
	}
	// Likewise an analysis pipeline enabled before StartTelemetry: the
	// analysis_* gauges in /metrics(.prom) and the live /analysis document.
	if ap := s.blk.Analysis(); ap != nil {
		ap.AttachMetrics(p.reg)
		if p.mon != nil {
			p.mon.Handle("/analysis", ap.Handler())
		}
	}
	// And a cost collector enabled before StartTelemetry: the cost_* gauges
	// in /metrics(.prom) and the live /cost document.
	if cc := s.blk.Cost(); cc != nil {
		cc.AttachMetrics(p.reg)
		if p.mon != nil {
			p.mon.Handle("/cost", cc.Handler())
		}
	}
	// And the critpath analyzer: the critpath_* gauges and the live
	// /critpath document (the latest analyzed record).
	if cp := s.blk.CritPath(); cp != nil {
		cp.AttachMetrics(p.reg)
		if p.mon != nil {
			p.mon.Handle("/critpath", cp.Handler())
		}
	}
	return p, nil
}

// Metrics returns the probe's registry (live; safe for concurrent reads).
func (p *Probe) Metrics() *obs.Registry { return p.reg }

// MonitorAddr returns the bound monitor address, or "" when no monitor
// was requested.
func (p *Probe) MonitorAddr() string {
	if p.mon == nil {
		return ""
	}
	return p.mon.Addr()
}

// LastStep returns the most recently emitted step event.
func (p *Probe) LastStep() obs.StepEvent { return p.last }

// Advance integrates n steps of size dt, emitting one step record each.
func (p *Probe) Advance(n int, dt float64) {
	blk := p.sim.blk
	for i := 0; i < n; i++ {
		t0 := time.Now()
		blk.StepOnce(dt)
		p.observe(dt, time.Since(t0).Seconds())
	}
	blk.RefreshPrimitives()
}

// TryAdvance is Advance through the health watchdog: it returns the
// *health.Violation the moment a check trips FATAL, after emitting the
// fatal step's record (so the trace and monitor reflect the trip within
// one step) and writing the post-mortem bundle. Identical to Advance when
// no watchdog is armed.
func (p *Probe) TryAdvance(n int, dt float64) error {
	blk := p.sim.blk
	for i := 0; i < n; i++ {
		t0 := time.Now()
		err := blk.StepChecked(dt)
		p.observe(dt, time.Since(t0).Seconds())
		if err != nil {
			p.sim.dumpPostMortem()
			return err
		}
	}
	blk.RefreshPrimitives()
	return nil
}

// observe assembles and dispatches the record for the step just taken.
func (p *Probe) observe(dt, wall float64) {
	blk := p.sim.blk
	if (blk.Step-1)%p.opt.CFLRefreshEvery == 0 {
		p.acousticDt = blk.AcousticDt()
	}
	tMin, tMax := blk.MinMaxT()
	pMin, pMax := blk.MinMaxP()
	ev := obs.StepEvent{
		Step:         blk.Step,
		Time:         blk.Time,
		Dt:           dt,
		CFL:          p.cflNumber * dt / p.acousticDt,
		WallSec:      wall,
		StageWallSec: append([]float64(nil), blk.StageWall...),
		TMin:         tMin,
		TMax:         tMax,
		PMin:         pMin,
		PMax:         pMax,
		MassDrift:    (blk.TotalMass() - p.mass0) / p.mass0,
		HeatRelease:  blk.HeatRelease(),
		Comm:         commToObs(blk.CommStats()),
	}
	if p.opt.Pario != nil {
		ev.Pario = p.opt.Pario()
	}
	if w := blk.Watchdog(); w != nil && w.Armed() {
		hs := w.ObsStatus()
		ev.Health = &hs
	}
	p.last = ev

	p.reg.Gauge("solver.cfl").Set(ev.CFL)
	p.reg.Gauge("solver.mass_drift").Set(ev.MassDrift)
	p.reg.Gauge("comm.bytes_sent").Set(float64(ev.Comm.BytesSent))
	p.reg.Gauge("comm.wait_sec").Set(ev.Comm.WaitSec)
	// Per-neighbor blocked time, maintained by comm.Wait whether or not the
	// critpath analyzer is armed: who this rank habitually waits on.
	for peer, ns := range blk.CommWaitByPeer() {
		if ns > 0 {
			p.reg.Gauge(fmt.Sprintf("comm.wait_ns.%d", peer)).Set(float64(ns))
		}
	}
	p.reg.Gauge("pario.cache_hit_rate").Set(ev.Pario.CacheHitRate)

	if p.opt.Trace != nil {
		p.opt.Trace.Step(ev)
	}
	if p.mon != nil {
		p.mon.Observe(ev)
	}
	if p.opt.Status != nil && blk.Step%p.opt.StatusEvery == 0 {
		fmt.Fprintln(p.opt.Status, ev.StatusLine())
	}
}

// Checkpoint emits a checkpoint record for a restart file just written.
func (p *Probe) Checkpoint(path string) {
	if p.opt.Trace != nil {
		p.opt.Trace.Checkpoint(p.sim.blk.Step, path)
	}
}

// Close emits the run_done record (with the final metrics snapshot and a
// figure-2-style perf report) and shuts the monitor down. The trace writer
// is flushed but left open for the caller.
func (p *Probe) Close(exitMessage string) error {
	if p.opt.Trace != nil {
		p.opt.Trace.RunDone(obs.RunSummary{
			Steps:       p.sim.blk.Step,
			SimTime:     p.sim.blk.Time,
			WallSec:     time.Since(p.start).Seconds(),
			Metrics:     p.reg.Snapshot(),
			PerfReport:  p.sim.blk.Timers.Report(),
			ExitMessage: exitMessage,
		})
		if err := p.opt.Trace.Flush(); err != nil {
			return err
		}
	}
	if p.mon != nil {
		return p.mon.Close()
	}
	return nil
}

// commToObs converts the communication layer's counters to the trace
// schema.
func commToObs(s comm.RankStats) obs.CommStats {
	return obs.CommStats{
		BytesSent:  s.BytesSent,
		MsgsSent:   s.MsgsSent,
		BytesRecv:  s.BytesRecv,
		MsgsRecv:   s.MsgsRecv,
		WaitSec:    s.WaitSec,
		CollSec:    s.CollSec,
		Allreduces: s.Allreduces,
		Barriers:   s.Barriers,
	}
}

// StableDtGlobal returns the acoustic-CFL stable time step reduced across
// all ranks of a decomposed run (identical to StableDt for serial runs).
// Collective: every rank must call it at the same point.
func (s *Simulation) StableDtGlobal() float64 {
	s.blk.RefreshPrimitives()
	return s.blk.GlobalDt()
}

// PerfTimers returns the simulation's per-region timer set (the TAU-style
// breakdown of paper figure 2). For cross-rank aggregation take Snapshot
// on each rank and Merge into a fresh aggregator-owned Timers.
func (s *Simulation) PerfTimers() *perf.Timers { return s.blk.Timers }

// PoolPerfTimers returns the worker-pool side of the breakdown: per-kernel
// busy time summed across the pool workers executing this simulation's
// tiles. Comparing a kernel's pooled busy time with the wall time of the
// same region in PerfTimers gives its node-level parallel efficiency. The
// snapshot covers the whole (shared) pool, so in decomposed runs it
// aggregates every in-process rank.
func (s *Simulation) PoolPerfTimers() *perf.Timers { return s.blk.Plan().Pool().PerfSnapshot() }

// configManifest flattens the simulation configuration for run_start.
func (s *Simulation) configManifest() map[string]string {
	c := s.cfg
	m := map[string]string{
		"mechanism":    c.Mechanism.chem.Name,
		"grid":         fmt.Sprintf("%dx%dx%d", c.Grid.Nx, c.Grid.Ny, c.Grid.Nz),
		"extent_m":     fmt.Sprintf("%gx%gx%g", c.Grid.Lx, c.Grid.Ly, c.Grid.Lz),
		"pressure_pa":  fmt.Sprintf("%g", c.Pressure),
		"filter_every": fmt.Sprintf("%d", c.FilterEvery),
		"cfl":          fmt.Sprintf("%g", c.CFL),
	}
	if c.ChemistryOff {
		m["chemistry"] = "off"
	}
	if c.Grid.StretchY {
		m["stretch_y"] = "on"
	}
	return m
}
