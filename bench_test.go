package s3d

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Custom metrics carry
// the reproduced quantities so `go test -bench=. -benchmem` regenerates the
// numbers EXPERIMENTS.md records:
//
//	Fig. 1  — weak-scaling cost per grid point per step (µs)
//	Fig. 2  — region breakdown, XT3/XT4 diffusive-flux ratio
//	Fig. 3  — balanced-hybrid cost at the 2007 node mix (µs)
//	Figs. 4–5 — diffusive-flux kernel: naive vs optimised (real timing)
//	Fig. 9  — S3D-I/O write bandwidth per method (MB/s)
//	Fig. 10 — lifted-flame DNS step throughput
//	Fig. 11 — conditional T|ξ statistics construction
//	Table 1 — laminar flame + turbulence parameter evaluation
//	Fig. 12 — c-isosurface rendering
//	Fig. 13 — conditional |∇c| statistics
//	Figs. 14–15 — multivariate rendering + trispace views
//	Figs. 16–18 — workflow pipeline execution

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"syscall"
	"testing"
	"time"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/deriv"
	"github.com/s3dgo/s3d/internal/flame1d"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/health"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/pario"
	"github.com/s3dgo/s3d/internal/perf"
	"github.com/s3dgo/s3d/internal/prof"
	"github.com/s3dgo/s3d/internal/sdf"
	"github.com/s3dgo/s3d/internal/solver"
	"github.com/s3dgo/s3d/internal/stats"
	"github.com/s3dgo/s3d/internal/transport"
	"github.com/s3dgo/s3d/internal/turb"
	"github.com/s3dgo/s3d/internal/viz"
	"github.com/s3dgo/s3d/internal/workflow"
)

// --- Figure 1 ---

func BenchmarkFig1WeakScaling(b *testing.B) {
	cores := []int{2, 64, 2048, 8192, 12000, 22800}
	var hybridPlateau float64
	for i := 0; i < b.N; i++ {
		pts := perf.WeakScaling(cores, "hybrid")
		hybridPlateau = pts[len(pts)-1].CostPerGP
	}
	b.ReportMetric(perf.NodalCost(perf.XT4, perf.S3DKernels)*1e6, "xt4_us/gp")
	b.ReportMetric(perf.NodalCost(perf.XT3, perf.S3DKernels)*1e6, "xt3_us/gp")
	b.ReportMetric(hybridPlateau*1e6, "hybrid_us/gp")
}

// --- Figure 2 ---

func BenchmarkFig2Breakdown(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		b3 := perf.RegionBreakdown(perf.XT3, perf.XT3, perf.S3DKernels)
		b4 := perf.RegionBreakdown(perf.XT4, perf.XT3, perf.S3DKernels)
		ratio = b3["COMPUTESPECIESDIFFFLUX"] / b4["COMPUTESPECIESDIFFFLUX"]
	}
	b.ReportMetric(ratio, "diffflux_xt3/xt4")
}

// --- Figure 3 ---

func BenchmarkFig3HybridBalance(b *testing.B) {
	var at46 float64
	for i := 0; i < b.N; i++ {
		at46 = perf.HybridBalance([]float64{0.46})[0].CostPerGP
	}
	b.ReportMetric(at46*1e6, "balanced_us/gp") // paper: 61 µs
}

// --- Figures 4–5: the real kernel, both implementations ---

// diffFluxBlock builds a single-rank inert block with gradients prepared so
// only the diffusive-flux kernel is measured.
func diffFluxBlock(b *testing.B, n int, kernel solver.DiffFluxKernel) *solver.Block {
	b.Helper()
	mech := chem.H2Air()
	cfg := &solver.Config{
		Mech:         mech,
		Trans:        transport.MustNew(mech.Set),
		Grid:         grid.New(grid.Spec{Nx: n, Ny: n, Nz: n, Lx: 0.01, Ly: 0.01, Lz: 0.01}),
		PInf:         101325,
		ChemistryOff: true,
		DiffFlux:     kernel,
	}
	blk, err := solver.NewSerial(cfg)
	if err != nil {
		b.Fatal(err)
	}
	iH2 := mech.Set.Index("H2")
	iO2 := mech.Set.Index("O2")
	iN2 := mech.Set.Index("N2")
	iH2O := mech.Set.Index("H2O")
	blk.SetState(func(x, y, z float64, s *solver.InflowState) {
		f := 0.02 * (1 + math.Sin(600*x)*math.Cos(600*y))
		s.T = 400 + 60*math.Sin(600*y)
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[iH2] = f
		s.Y[iH2O] = 0.05
		s.Y[iO2] = 0.2
		s.Y[iN2] = 1 - f - 0.25
	}, nil)
	blk.PrepareDiffFluxInputs()
	return blk
}

func BenchmarkFig4DiffFluxNaive(b *testing.B) {
	blk := diffFluxBlock(b, 50, solver.DiffFluxNaive)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.DiffFluxKernelOnly()
	}
}

func BenchmarkFig4DiffFluxOptimized(b *testing.B) {
	blk := diffFluxBlock(b, 50, solver.DiffFluxOptimized)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.DiffFluxKernelOnly()
	}
}

func BenchmarkFig5ModelledSaving(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		_, _, saving = perf.DiffFluxModelSpeedup(perf.XD1, 2.94)
	}
	b.ReportMetric(saving*100, "xd1_saving_%") // paper: 6.8%
}

// --- Figure 9 ---

func BenchmarkFig9IOKernel(b *testing.B) {
	k := pario.Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 4, Pz: 2}
	net := pario.GigE()
	lustre := pario.Lustre()
	gpfs := pario.GPFS()
	var res [4]pario.Result
	for i := 0; i < b.N; i++ {
		for mi, m := range pario.AllMethods() {
			res[mi] = m.Simulate(k, lustre, net, 10)
		}
	}
	b.ReportMetric(res[0].BandwidthMBs, "lustre_fortran_MB/s")
	b.ReportMetric(res[1].BandwidthMBs, "lustre_collective_MB/s")
	b.ReportMetric(res[2].BandwidthMBs, "lustre_caching_MB/s")
	b.ReportMetric(res[3].BandwidthMBs, "lustre_writebehind_MB/s")
	g := pario.TwoStageWriteBehind{}.Simulate(k, gpfs, net, 10)
	b.ReportMetric(g.BandwidthMBs, "gpfs_writebehind_MB/s")
}

func BenchmarkFig9Alignment(b *testing.B) {
	// Ablation: aligned page flushes vs unaligned partitions on Lustre.
	fs := pario.Lustre()
	const np = 16
	pageB := fs.StripeBytes
	fileBytes := pageB * 128
	aligned := make([][]pario.Run, np)
	unaligned := make([][]pario.Run, np)
	for pg := int64(0); pg < 128; pg++ {
		p := int(pg) % np
		aligned[p] = append(aligned[p], pario.Run{Offset: pg * pageB, Bytes: pageB, Count: 1})
	}
	chunk := fileBytes / np
	for p := 0; p < np; p++ {
		off := int64(p)*chunk + pageB/3
		if p == 0 {
			off = 0
		}
		end := int64(p+1)*chunk + pageB/3
		if p == np-1 {
			end = fileBytes
		}
		unaligned[p] = []pario.Run{{Offset: off, Bytes: end - off, Count: 1}}
	}
	var ta, tu float64
	for i := 0; i < b.N; i++ {
		ta = fs.SharedWriteTime(aligned, fileBytes)
		tu = fs.SharedWriteTime(unaligned, fileBytes)
	}
	b.ReportMetric(tu/ta, "unaligned_slowdown_x")
}

// --- Figure 10 ---

func BenchmarkFig10LiftedFlame(b *testing.B) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 48, Ny: 40, Nz: 1, IgnitionKernel: true, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		b.Fatal(err)
	}
	dt := 0.4 * sim.StableDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Advance(1, dt)
	}
	nx, ny, nz := sim.Dims()
	perStep := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(perStep/float64(nx*ny*nz)*1e6, "us/gp/step")
}

// --- Figure 11 ---

func BenchmarkFig11ConditionalStats(b *testing.B) {
	// Conditional statistics over a synthetic T(ξ) cloud of the figure-11 size.
	n := 200000
	xi := make([]float64, n)
	temp := make([]float64, n)
	for i := range xi {
		xi[i] = float64(i%1000) / 1000
		temp[i] = 1100 + 1200*math.Exp(-(xi[i]-0.2)*(xi[i]-0.2)/0.02)
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		cond := stats.NewConditional(25, 0, 1)
		for i := range xi {
			cond.Add(xi[i], temp[i])
		}
		cond.Bins()
	}
}

// --- Table 1 ---

func BenchmarkTable1Parameters(b *testing.B) {
	m := chem.CH4Skeletal()
	yu, err := flame1d.PremixedMixture(m, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	var props flame1d.Properties
	for i := 0; i < b.N; i++ {
		// Coarser, shorter flame solve than production: the bench measures
		// the parameter pipeline, EXPERIMENTS.md records the full numbers.
		props, err = flame1d.Solve(flame1d.Config{
			Mech: m, Tu: 800, P: 101325, Yu: yu,
			Nx: 140, L: 7e-3, TEnd: 0.12e-3, TAvg: 0.05e-3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(props.SL, "SL_m/s")            // paper: 1.8
	b.ReportMetric(props.DeltaL*1e3, "deltaL_mm") // paper: 0.3
	field := turb.NewField(turb.Spectrum{Urms: 3 * props.SL, L0: 4 * 0.7 * props.DeltaL}, 100, 9)
	_, _, _ = field.At(0, 0, 0)
}

// --- Figure 12 ---

func BenchmarkFig12FlameSurface(b *testing.B) {
	g := grid.New(grid.Spec{Nx: 64, Ny: 48, Nz: 1, Lx: 1, Ly: 1, Lz: 1})
	c := grid.NewField3(g)
	c.Map(func(i, j, k int, _ float64) float64 {
		return 0.5 + 0.5*math.Tanh(float64(j-24)/3+2*math.Sin(float64(i)/5))
	})
	r := &viz.Renderer{
		Layers: []viz.Layer{{Field: c,
			TF:  viz.IsoTF(0.65, 0.06, viz.RGBA{R: 0.95, G: 0.75, B: 0.2, A: 0.9}),
			Min: 0, Max: 1, Shade: true}},
		Cam:   viz.Camera{Elevation: math.Pi / 2},
		Width: 240, Height: 180,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render()
	}
}

// --- Figure 13 ---

func BenchmarkFig13GradC(b *testing.B) {
	nx, ny := 128, 96
	c := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c[j*nx+i] = 0.5 + 0.5*math.Tanh(float64(j-ny/2)/4)
		}
	}
	h := 2e-5
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		cond := stats.NewConditional(20, 0.02, 0.98)
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				gx := (c[j*nx+i+1] - c[j*nx+i-1]) / (2 * h)
				gy := (c[(j+1)*nx+i] - c[(j-1)*nx+i]) / (2 * h)
				cond.Add(c[j*nx+i], math.Sqrt(gx*gx+gy*gy)*3e-4)
			}
		}
		cond.Bins()
	}
}

// --- Figures 14–15 ---

func BenchmarkFig14MultivariateRender(b *testing.B) {
	g := grid.New(grid.Spec{Nx: 48, Ny: 36, Nz: 1, Lx: 1, Ly: 1, Lz: 1})
	oh := grid.NewField3(g)
	ho2 := grid.NewField3(g)
	oh.Map(func(i, j, k int, _ float64) float64 {
		return math.Exp(-float64((i-30)*(i-30)+(j-18)*(j-18)) / 60)
	})
	ho2.Map(func(i, j, k int, _ float64) float64 {
		return math.Exp(-float64((i-16)*(i-16)+(j-18)*(j-18)) / 60)
	})
	r := &viz.Renderer{
		Layers: []viz.Layer{
			{Field: oh, TF: viz.HotTF(0.8), Min: 0, Max: 1},
			{Field: ho2, TF: viz.CoolTF(0.8), Min: 0, Max: 1},
		},
		Cam:   viz.Camera{Elevation: math.Pi / 2},
		Width: 240, Height: 180,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render()
	}
}

func BenchmarkFig15ParallelCoords(b *testing.B) {
	samples := make([][]float64, 2000)
	for i := range samples {
		f := float64(i) / 2000
		samples[i] = []float64{f, 1 - f, math.Abs(math.Sin(20 * f))}
	}
	pc := &viz.ParallelCoords{
		VarNames: []string{"chi", "OH", "mixfrac"},
		Samples:  samples,
		Brush:    func(s []float64) bool { return s[2] < 0.1 },
		Width:    320, Height: 200,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.Render(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 16–18 ---

func BenchmarkFig16Workflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		root := b.TempDir()
		cluster, err := workflow.NewCluster(filepath.Join(root, fmt.Sprint(i)))
		if err != nil {
			b.Fatal(err)
		}
		for s := 1; s <= 3; s++ {
			f := sdf.New()
			f.Attrs["step"] = fmt.Sprint(s)
			_ = f.AddVar("T.0", []int{64}, make([]float64, 64))
			_ = f.AddVar("T.1", []int{64}, make([]float64, 64))
			path := filepath.Join(cluster.JaguarRestart, fmt.Sprintf("restart-%04d.sdf", s))
			if err := f.WriteFile(path); err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(path+".done", nil, 0o644); err != nil {
				b.Fatal(err)
			}
		}
		if err := cluster.StopAll(); err != nil {
			b.Fatal(err)
		}
		wf, err := workflow.S3DMonitor(cluster)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := wf.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability overhead ---

// benchCPUOverhead is the shared harness behind the observability
// overhead gates (telemetry, watchdog, analysis, cost maps). Wall-clock
// window timings on shared single-CPU runners are ±5% noisy — an order
// of magnitude above the 2% budgets — so the gate is built on process
// CPU time (getrusage) instead: the baseline and the instrumented
// simulation advance in interleaved paired windows so scheduler drift
// hits both sides, each round yields an on/off CPU ratio, each
// repetition takes the median over its rounds, and the gate takes the
// best repetition — a real regression shifts every repetition, while a
// one-off noise spike cannot fail the build.
//
// newPair builds a fresh baseline simulation plus the instrumented
// side's step function and optional teardown (telemetry must close its
// probe; the watchdog routes through TryAdvance).
func benchCPUOverhead(b *testing.B, what string, newPair func() (off *Simulation, stepOn func(n int, dt float64), done func())) {
	const warm, window, rounds, reps = 2, 8, 8, 3
	cpuSeconds := func() float64 {
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			b.Fatal(err)
		}
		return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)/1e6 +
			float64(ru.Stime.Sec) + float64(ru.Stime.Usec)/1e6
	}
	for i := 0; i < b.N; i++ {
		best := math.Inf(1)
		for rep := 0; rep < reps; rep++ {
			off, stepOn, done := newPair()
			// Normalise heap state so a previous benchmark's garbage cannot
			// bias this repetition's GC-assist attribution.
			runtime.GC()
			warmDt := 0.4 * off.StableDt()
			off.Advance(warm, warmDt)
			stepOn(warm, warmDt)
			ratios := make([]float64, 0, rounds)
			for r := 0; r < rounds; r++ {
				// Refresh dt as the flame develops: both sims follow the
				// identical trajectory, so the baseline's stable dt is the
				// instrumented side's too, and a dt frozen at step 0 goes
				// unstable as ignition stiffens the acoustics.
				dt := 0.4 * off.StableDt()
				// ABBA window order: any linear load or frequency drift
				// across the round contributes equally to both sides of the
				// ratio and cancels.
				s := cpuSeconds()
				off.Advance(window, dt)
				offCPU := cpuSeconds() - s
				s = cpuSeconds()
				stepOn(window, dt)
				onCPU := cpuSeconds() - s
				s = cpuSeconds()
				stepOn(window, dt)
				onCPU += cpuSeconds() - s
				s = cpuSeconds()
				off.Advance(window, dt)
				offCPU += cpuSeconds() - s
				ratios = append(ratios, onCPU/offCPU)
			}
			if done != nil {
				done()
			}
			sort.Float64s(ratios)
			if med := ratios[len(ratios)/2]; med < best {
				best = med
			}
		}
		overhead := (best - 1) * 100
		b.ReportMetric(overhead, "overhead_%")
		if overhead > 2.0 {
			b.Errorf("%s overhead %.2f%% exceeds the 2%% budget (best median CPU ratio %.4f over %d reps)",
				what, overhead, best, reps)
		}
	}
}

// newLiftedBenchSim builds the small reacting lifted-jet case the
// overhead gates share.
func newLiftedBenchSim(b *testing.B) (*Simulation, *Problem) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		b.Fatal(err)
	}
	return sim, p
}

// BenchmarkObsOverhead measures the cost of full step telemetry (trace
// writer attached, every per-step monitor live) against an uninstrumented
// run of the same problem, and fails if the overhead exceeds the 2% budget
// the observability layer is designed to (methodology: benchCPUOverhead).
func BenchmarkObsOverhead(b *testing.B) {
	benchCPUOverhead(b, "telemetry", func() (*Simulation, func(int, float64), func()) {
		off, _ := newLiftedBenchSim(b)
		on, _ := newLiftedBenchSim(b)
		probe, err := on.StartTelemetry(TelemetryOptions{
			Case:  "bench",
			Trace: obs.NewTrace(io.Discard),
		})
		if err != nil {
			b.Fatal(err)
		}
		return off, probe.Advance, func() {
			if err := probe.Close("bench done"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProfOverhead measures the cost of the call-path profiler on the
// RHS evaluation three ways — no profiler attached (baseline), attached
// but disabled (the always-compiled-in cost: one atomic load per region),
// and attached and recording — and fails if the disabled overhead exceeds
// 1% or the enabled overhead exceeds 5%. Min-of-trials on every side keeps
// scheduler noise out of the comparison.
func BenchmarkProfOverhead(b *testing.B) {
	const warm, measure, trials = 1, 4, 4
	pool := par.NewPool(1)
	defer pool.Close()
	run := func(blk *solver.Block) float64 {
		for i := 0; i < warm; i++ {
			blk.EvalRHS(0)
		}
		start := time.Now()
		for i := 0; i < measure; i++ {
			blk.EvalRHS(0)
		}
		return time.Since(start).Seconds()
	}
	for i := 0; i < b.N; i++ {
		base, disabled, enabled := math.Inf(1), math.Inf(1), math.Inf(1)
		for t := 0; t < trials; t++ {
			blk := rhsBlock(b, pool)
			if w := run(blk); w < base {
				base = w
			}

			blk = rhsBlock(b, pool)
			pr := prof.New()
			pr.SetEnabled(false)
			blk.EnableProfiling(pr.NewTrack(prof.GroupRank, "rank0"))
			if w := run(blk); w < disabled {
				disabled = w
			}

			blk = rhsBlock(b, pool)
			pr = prof.New()
			blk.EnableProfiling(pr.NewTrack(prof.GroupRank, "rank0"))
			if w := run(blk); w < enabled {
				enabled = w
			}
		}
		dOver := (disabled - base) / base * 100
		eOver := (enabled - base) / base * 100
		b.ReportMetric(base/measure*1e3, "base_ms/rhs")
		b.ReportMetric(dOver, "disabled_overhead_%")
		b.ReportMetric(eOver, "enabled_overhead_%")
		if dOver > 1.0 {
			b.Errorf("disabled profiler overhead %.2f%% exceeds the 1%% budget", dOver)
		}
		if eOver > 5.0 {
			b.Errorf("enabled profiler overhead %.2f%% exceeds the 5%% budget", eOver)
		}
	}
}

// --- Node-level parallel execution (internal/par) ---

// rhsBlock builds a single-rank reacting 32³ H2/air box on a dedicated pool
// so BenchmarkRHSWorkers times one full right-hand-side evaluation — the
// unit of work an RK stage schedules across the worker pool.
func rhsBlock(b *testing.B, pool *par.Pool) *solver.Block {
	return rhsBlockBackend(b, pool, "")
}

// rhsBlockBackend is rhsBlock with an explicit kernel-backend spec, so the
// per-backend sub-benchmarks time the same problem through each set of
// tile kernels.
func rhsBlockBackend(b *testing.B, pool *par.Pool, backend string) *solver.Block {
	b.Helper()
	mech := chem.H2Air()
	cfg := &solver.Config{
		Mech:    mech,
		Trans:   transport.MustNew(mech.Set),
		Grid:    grid.New(grid.Spec{Nx: 32, Ny: 32, Nz: 32, Lx: 0.008, Ly: 0.008, Lz: 0.008}),
		PInf:    101325,
		Pool:    pool,
		Backend: backend,
	}
	blk, err := solver.NewSerial(cfg)
	if err != nil {
		b.Fatal(err)
	}
	iH2 := mech.Set.Index("H2")
	iO2 := mech.Set.Index("O2")
	iN2 := mech.Set.Index("N2")
	blk.SetState(func(x, y, z float64, s *solver.InflowState) {
		s.U = 3 * math.Sin(2*math.Pi*x/0.008)
		s.V = 2 * math.Cos(2*math.Pi*y/0.008)
		r2 := (x-0.004)*(x-0.004) + (y-0.004)*(y-0.004) + (z-0.004)*(z-0.004)
		s.T = 800 + 600*math.Exp(-r2/(0.001*0.001))
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[iH2] = 0.02
		s.Y[iO2] = 0.22
		s.Y[iN2] = 0.76
	}, nil)
	blk.RefreshPrimitives()
	return blk
}

// BenchmarkRHSWorkers measures the worker-pool scaling of a full RHS
// evaluation. Solutions are bitwise identical across the sub-benchmarks
// (the determinism contract of internal/par); only the wall time moves.
func BenchmarkRHSWorkers(b *testing.B) {
	counts := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() <= 2 {
		counts = counts[:2]
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			pool := par.NewPool(n)
			defer pool.Close()
			blk := rhsBlock(b, pool)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.EvalRHS(0)
			}
			nx, ny, nz := 32, 32, 32
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(nx*ny*nz)*1e6, "us/gp")
		})
	}
}

// BenchmarkRHSWorkersWeighted measures what cost-weighted tile planning
// buys the pool on a reacting case with concentrated stiffness (the 32³
// hot-sphere box): "uniform" runs the plain one-plane decomposition,
// "weighted" first advances through two cost records so the balancer
// installs weight profiles — hot planes split, cheap planes merge — then
// times the identical RHS evaluation over the re-tiled sweeps. Solutions
// are bitwise identical between the sub-benchmarks (the partition layer's
// determinism contract); only the tile shapes — and the us/gp — move.
func BenchmarkRHSWorkersWeighted(b *testing.B) {
	workers := runtime.NumCPU()
	if workers > 4 {
		workers = 4
	}
	for _, mode := range []string{"uniform", "weighted"} {
		b.Run(fmt.Sprintf("workers=%d/%s", workers, mode), func(b *testing.B) {
			pool := par.NewPool(workers)
			defer pool.Close()
			blk := rhsBlock(b, pool)
			c := cost.NewCollector(2)
			c.Enable()
			blk.InstallCost(c)
			if mode == "weighted" {
				if err := blk.InstallLoadBalance(2, 0.10, 0.05); err != nil {
					b.Fatal(err)
				}
			}
			// Two record cycles: the first installs the profile, the second
			// confirms it under hysteresis. The uniform side advances the
			// same steps so both benchmarks time the identical state.
			blk.Advance(4, 0.4*blk.AcousticDt())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.EvalRHS(0)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(32*32*32)*1e6, "us/gp")
		})
	}
}

// BenchmarkAssembleFluxesFused times the fused flux-assembly kernel alone:
// one pass per tile over all gradient fields with per-worker enthalpy
// scratch (the satellite optimisation riding on the tile refactor), once
// per kernel backend. Solutions are bitwise identical across sub-benchmarks
// (the kernels contract); only the addressing differs.
func BenchmarkAssembleFluxesFused(b *testing.B) {
	for _, backend := range []string{"generic", "blocked"} {
		b.Run(backend, func(b *testing.B) {
			pool := par.NewPool(1)
			defer pool.Close()
			blk := rhsBlockBackend(b, pool, backend)
			blk.PrepareAssembleInputs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.AssembleFluxesOnly()
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(32*32*32)*1e6, "us/gp")
		})
	}
}

// BenchmarkRHSBackends times one full right-hand-side evaluation per kernel
// backend on a single worker — the headline figure-2 hot path through every
// backend-selectable kernel at once.
func BenchmarkRHSBackends(b *testing.B) {
	for _, backend := range []string{"generic", "blocked"} {
		b.Run(backend, func(b *testing.B) {
			pool := par.NewPool(1)
			defer pool.Close()
			blk := rhsBlockBackend(b, pool, backend)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.EvalRHS(0)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(32*32*32)*1e6, "us/gp")
		})
	}
}

// --- Registry-backed field arena (DESIGN.md, "Field storage & registry") ---

// BenchmarkRKUpdateBank times one RK46NL stage update over the conserved
// bank: with Q, dQ and rhs carved as contiguous per-register runs of the
// FieldSet arena, the update is nvar stride-1 sweeps over full storage
// (ghosts included — rhs ghosts are identically zero, so dQ and Q ghosts
// never move; see step.go). One sub-benchmark per kernel backend.
func BenchmarkRKUpdateBank(b *testing.B) {
	for _, backend := range []string{"generic", "blocked"} {
		b.Run(backend, func(b *testing.B) {
			pool := par.NewPool(1)
			defer pool.Close()
			blk := rhsBlockBackend(b, pool, backend)
			blk.EvalRHS(0) // populate rhs so the sweep runs over live data
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk.RKUpdateBankOnly(1e-9)
			}
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(32*32*32)*1e6, "us/gp")
		})
	}
}

// BenchmarkHaloPackGroup times packing one ghost-depth face slab of a
// registry halo group into the reusable exchange buffer — the pack kernel
// behind each neighbour message, with the field list resolved through the
// registry groups instead of a hand-built slice.
func BenchmarkHaloPackGroup(b *testing.B) {
	pool := par.NewPool(1)
	defer pool.Close()
	blk := rhsBlock(b, pool)
	for _, group := range []string{"conserved", "flux"} {
		b.Run(group, func(b *testing.B) {
			floats := 0
			for i := 0; i < b.N; i++ {
				floats = blk.PackHaloGroupOnly(group, 0)
			}
			b.ReportMetric(float64(floats)*8/1024, "kB/msg")
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*floats)*1e9, "ns/float")
		})
	}
}

// --- §2.6 numerics order ---

func BenchmarkNumericsOrder(b *testing.B) {
	// Report the measured convergence order of the eighth-order derivative
	// as a custom metric (≈8, paper §2.6).
	var rate float64
	for i := 0; i < b.N; i++ {
		e1 := derivMaxErr(33)
		e2 := derivMaxErr(65)
		rate = math.Log2(e1 / e2)
	}
	b.ReportMetric(rate, "deriv_order")
}

func derivMaxErr(n int) float64 {
	g := grid.New(grid.Spec{Nx: n, Ny: 3, Nz: 3, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	h := 1.0 / float64(n-1)
	for k := -f.G; k < f.Nz+f.G; k++ {
		for j := -f.G; j < f.Ny+f.G; j++ {
			for i := -f.G; i < f.Nx+f.G; i++ {
				f.Set(i, j, k, math.Sin(4*math.Pi*float64(i)*h))
			}
		}
	}
	d := grid.NewField3(g)
	deriv.Diff(d, f, grid.X, g.MetX, deriv.UseGhosts, deriv.UseGhosts)
	var max float64
	for i := 0; i < n; i++ {
		want := 4 * math.Pi * math.Cos(4*math.Pi*float64(i)*h)
		if e := math.Abs(d.At(i, 1, 1) - want); e > max {
			max = e
		}
	}
	return max
}

// --- Run-health watchdog overhead ---

// BenchmarkHealthOverhead measures the cost of the armed watchdog — the
// fused end-of-step invariant sweep with every check on, plus the flight
// recorder — against an unwatched run of the same problem, and fails if
// the overhead exceeds the 2% budget the health layer is designed to
// (methodology: benchCPUOverhead). When disarmed the whole feature costs
// one nil check and at most one atomic load per step, which is below
// measurement resolution by construction.
func BenchmarkHealthOverhead(b *testing.B) {
	benchCPUOverhead(b, "watchdog", func() (*Simulation, func(int, float64), func()) {
		off, _ := newLiftedBenchSim(b)
		on, _ := newLiftedBenchSim(b)
		// Every check runs — the benchmark pays the full sweep — but the
		// deliberately under-resolved ignition case drifts past the default
		// 5% species-sum and species-bounds FATAL bands around step 65, so
		// only those trip thresholds are widened to keep the ~100-step
		// measurement alive.
		cfg := HealthDefaults()
		cfg.SpeciesSum = health.Above(0.1, 0.5)
		cfg.SpeciesBounds = health.Range(-0.1, 1.1, -0.5, 1.5)
		on.EnableHealth(HealthOptions{Config: &cfg})
		return off, func(n int, dt float64) {
			if err := on.TryAdvance(n, dt); err != nil {
				b.Fatal(err)
			}
		}, nil
	})
}

// --- In-situ analysis overhead ---

// BenchmarkAnalysisOverhead measures the cost of the in-situ science
// reduction — the fused end-of-step operator sweep with the full standard
// spec (moments, histogram, conditional means, flame surface, heat release)
// — against an unanalysed run of the same problem, and fails if the
// overhead exceeds the 2% budget the pipeline is designed to (methodology:
// benchCPUOverhead). When installed but disabled the whole feature costs
// one nil check and one atomic load per step, which is below measurement
// resolution by construction.
func BenchmarkAnalysisOverhead(b *testing.B) {
	benchCPUOverhead(b, "analysis", func() (*Simulation, func(int, float64), func()) {
		off, _ := newLiftedBenchSim(b)
		on, p := newLiftedBenchSim(b)
		if _, err := on.EnableAnalysis(p.StandardAnalysis()); err != nil {
			b.Fatal(err)
		}
		if err := on.Subscribe(func(AnalysisRecord) {}); err != nil {
			b.Fatal(err)
		}
		return off, on.Advance, nil
	})
}

// --- Spatial cost-map overhead ---

// BenchmarkCostOverhead measures the cost-attribution sampler against an
// uninstrumented run of the same problem at the default cadence (Every: 1,
// a reduction every step — the worst case): the chemistry substep proxy
// piggybacking on the final-stage reaction sweep, the probe's per-tile
// sample on the first runs of each kernel per window (later runs execute
// unwrapped; the measured totals come from the always-on region timers),
// and the end-of-step reduction. The budget is the same 2% every other
// observability layer holds to (methodology: benchCPUOverhead — this
// gate is why the harness exists: per-step wall clock on shared runners
// swings an order of magnitude more than the budget). Installed but
// disabled, the sampler costs one nil check plus one atomic load per
// step and one atomic load per plan run, below measurement resolution
// by construction.
func BenchmarkCostOverhead(b *testing.B) {
	benchCPUOverhead(b, "cost-map", func() (*Simulation, func(int, float64), func()) {
		off, _ := newLiftedBenchSim(b)
		on, _ := newLiftedBenchSim(b)
		if _, err := on.EnableCostMaps(CostSpec{Every: 1}); err != nil {
			b.Fatal(err)
		}
		if err := on.SubscribeCost(func(CostRecord) {}); err != nil {
			b.Fatal(err)
		}
		return off, on.Advance, nil
	})
}

// BenchmarkLBOverhead measures the dynamic load balancer — the cost
// sampler it rides on at a re-plan cadence of 4, the per-record profile
// fold and plan derivation, and the weighted-partition execution of the
// chemistry and flux-assembly sweeps — against an uninstrumented run of
// the same problem, held to the same 2% budget as the observability
// layers (methodology: benchCPUOverhead). The serial balancer is pure
// re-tiling: the bundle path never arms without a cartesian communicator.
// Between records the per-step cost is the sampler's nil check plus one
// atomic load, and a weighted sweep's partition is cached on (box,
// weights) — re-derived only when a re-plan actually changes the profile.
func BenchmarkLBOverhead(b *testing.B) {
	benchCPUOverhead(b, "load-balance", func() (*Simulation, func(int, float64), func()) {
		off, _ := newLiftedBenchSim(b)
		on, _ := newLiftedBenchSim(b)
		if err := on.EnableLoadBalance(LoadBalanceSpec{Every: 4}); err != nil {
			b.Fatal(err)
		}
		return off, on.Advance, nil
	})
}

// BenchmarkCritPathOverhead measures the wait-state and critical-path
// analyzer at the worst-case cadence (Every: 1 — the internal call-path
// profiler armed every step, a deposit, the per-step analysis, and the
// subscriber fan-out) against an uninstrumented run of the same problem,
// holding it to the same 2% budget as every other observability layer
// (methodology: benchCPUOverhead). Installed but disarmed, the per-step
// cost is one nil check plus one atomic load in Due — below measurement
// resolution by construction, the same contract the cost sampler keeps.
func BenchmarkCritPathOverhead(b *testing.B) {
	benchCPUOverhead(b, "critpath", func() (*Simulation, func(int, float64), func()) {
		off, _ := newLiftedBenchSim(b)
		on, _ := newLiftedBenchSim(b)
		if err := on.EnableCritPath(NewCritPathAnalyzer(CritPathSpec{Every: 1})); err != nil {
			b.Fatal(err)
		}
		if err := on.SubscribeCritPath(func(CritPathRecord) {}); err != nil {
			b.Fatal(err)
		}
		return off, on.Advance, nil
	})
}
