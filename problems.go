package s3d

import (
	"fmt"
	"math"

	"github.com/s3dgo/s3d/internal/reactor"
	"github.com/s3dgo/s3d/internal/turb"
)

// This file provides the paper's two science configurations as ready-made
// problems: the lifted H2/air jet flame in hot coflow (paper §6) and the
// slot-burner Bunsen premixed methane flame (paper §7). Both are built at
// configurable scale: the full terascale grids (up to 1600×1372×430 points)
// ran for 3.5 million CPU-hours on 10 000 Cray XT3 processors, so the
// defaults target laptop-scale grids that preserve the configuration and
// the governing parameter ratios (see DESIGN.md's substitution table).

// Problem packages a Config with its initial condition.
type Problem struct {
	Config  Config
	Initial func(x, y, z float64, s *State)
	// InitPressure (optional) perturbs the initial pressure field.
	InitPressure func(x, y, z float64) float64
	// Fuel/oxidiser stream compositions for mixture-fraction statistics.
	YFuel, YOx []float64
}

// NewSimulation constructs and initialises the simulation for the problem.
func (p *Problem) NewSimulation() (*Simulation, error) {
	sim, err := New(p.Config)
	if err != nil {
		return nil, err
	}
	sim.SetInitial(p.Initial, p.InitPressure)
	return sim, nil
}

// LiftedJetOptions scales the §6.2 configuration. Zero values select a
// laptop-scale quasi-2D default that preserves the physical setup: a
// central 65% H2 / 35% N2 (by volume) fuel jet at 400 K in coflowing heated
// air at 1100 K — above the H2/air crossover temperature, so the upstream
// mixture is autoignitable.
type LiftedJetOptions struct {
	Nx, Ny, Nz     int
	Lx, Ly, Lz     float64 // domain size (m); paper: 2.4 × 3.2 × 0.64 cm
	SlotWidth      float64 // paper: 1.92 mm
	UJet           float64 // paper: 347 m/s
	UCoflow        float64
	TFuel, TCo     float64 // paper: 400 K and 1100 K
	TurbIntensity  float64 // inflow u′ as a fraction of UJet
	Seed           int64
	IgnitionKernel bool // impose the §6.2 hot starter region in the jet
}

func (o *LiftedJetOptions) defaults() {
	if o.Nx == 0 {
		o.Nx, o.Ny, o.Nz = 120, 96, 1
	}
	if o.Lx == 0 {
		o.Lx, o.Ly, o.Lz = 12e-3, 16e-3, 3.2e-3
	}
	if o.SlotWidth == 0 {
		o.SlotWidth = 1.92e-3
	}
	if o.UJet == 0 {
		o.UJet = 160
	}
	if o.UCoflow == 0 {
		o.UCoflow = 6
	}
	if o.TFuel == 0 {
		o.TFuel = 400
	}
	if o.TCo == 0 {
		o.TCo = 1100
	}
	if o.TurbIntensity == 0 {
		o.TurbIntensity = 0.08
	}
}

// LiftedJetProblem builds the lifted hydrogen jet configuration.
func LiftedJetProblem(o LiftedJetOptions) (*Problem, error) {
	o.defaults()
	mech := HydrogenAir()
	ns := mech.NumSpecies()

	// Fuel stream: 65% H2, 35% N2 by volume (paper §6.2).
	yFuel := make([]float64, ns)
	{
		x := make([]float64, ns)
		x[mech.SpeciesIndex("H2")] = 0.65
		x[mech.SpeciesIndex("N2")] = 0.35
		mech.chem.Set.MassFractions(x, yFuel)
	}
	yOx := make([]float64, ns)
	yOx[mech.SpeciesIndex("O2")] = 0.233
	yOx[mech.SpeciesIndex("N2")] = 0.767

	h := o.SlotWidth
	shear := h / 6 // shear-layer thickness of the inflow profile
	inflow := turb.NewField(turb.Spectrum{Urms: o.TurbIntensity * o.UJet, L0: h}, 160, o.Seed+1)

	profile := func(y float64) float64 {
		// 1 inside the slot, 0 in the coflow, smooth tanh flanks.
		return 0.5 * (math.Tanh((y+h/2)/shear) - math.Tanh((y-h/2)/shear))
	}
	blendState := func(y, z, t float64, s *State) {
		f := profile(y)
		s.U = o.UCoflow + (o.UJet-o.UCoflow)*f
		s.V, s.W = 0, 0
		s.T = o.TCo + (o.TFuel-o.TCo)*f
		for i := 0; i < ns; i++ {
			s.Y[i] = yOx[i] + (yFuel[i]-yOx[i])*f
		}
		if f > 0.05 {
			du, dv, dw := inflow.Sweep(y, z, t, o.UJet)
			s.U += du * f
			s.V += dv * f
			s.W += dw * f
		}
	}

	cfg := Config{
		Mechanism:   mech,
		Grid:        GridSpec{Nx: o.Nx, Ny: o.Ny, Nz: o.Nz, Lx: o.Lx, Ly: o.Ly, Lz: o.Lz},
		Pressure:    101325,
		FilterEvery: 5,
		Inflow:      blendState,
	}
	cfg.BC[0][0] = Inflow
	cfg.BC[0][1] = Outflow
	cfg.BC[1][0] = Outflow
	cfg.BC[1][1] = Outflow
	// z periodic (default) — spanwise, as in the paper.

	// Burnt-product state for the downstream flame initialisation: the
	// adiabatic products of a near-stoichiometric fuel/coflow blend, giving
	// a realistic OH-bearing high-temperature flame zone.
	var tBurn float64
	var yBurn []float64
	if o.IgnitionKernel {
		yStoich := make([]float64, ns)
		const xiIgn = 0.18 // lean-shifted stoichiometric band of the diluted jet
		for i := 0; i < ns; i++ {
			yStoich[i] = xiIgn*yFuel[i] + (1-xiIgn)*yOx[i]
		}
		st, err := reactor.EquilibrateAdiabatic(mech.chem, o.TCo, 101325, yStoich)
		if err != nil {
			return nil, fmt.Errorf("s3d: lifted-jet ignition products: %v", err)
		}
		tBurn, yBurn = st.T, st.Y
	}

	initial := func(x, y, z float64, s *State) {
		// Domain starts filled with the inflow profile advected downstream;
		// the coordinate origin of y is the domain centre.
		blendState(y-o.Ly/2, z, 0, s)
		if o.IgnitionKernel {
			// §6.2 ignites the run by "artificially imposing a
			// high-temperature region in the central jet"; we seed the
			// developed analogue — hot OH-bearing products in the
			// downstream shear layers — so the lifted-base structure
			// (HO2 induction zone upstream of the OH flame) forms quickly.
			f := profile(y - o.Ly/2)
			shearW := 4 * f * (1 - f) // peaks in the mixing layers
			g := 0.5 * (1 + math.Tanh((x-0.55*o.Lx)/(0.08*o.Lx)))
			w := shearW * g
			if w > 0 {
				s.T += w * (tBurn - s.T)
				for i := 0; i < ns; i++ {
					s.Y[i] += w * (yBurn[i] - s.Y[i])
				}
			}
		}
	}

	return &Problem{
		Config:  cfg,
		Initial: initial,
		YFuel:   yFuel,
		YOx:     yOx,
	}, nil
}

// BunsenCase holds the table-1 parameters of one premixed case.
type BunsenCase struct {
	Name      string
	SlotWidth float64 // h
	DomainHx  float64 // streamwise extent in slot widths
	UJet      float64
	UCoflow   float64
	UPrimeSL  float64 // u′/S_L (3, 6, 10 in the paper)
	LtDeltaL  float64 // l_t/δ_L
	// Paper-reported targets for comparison in EXPERIMENTS.md.
	PaperReT, PaperKa, PaperDa float64
}

// BunsenCases returns the three table-1 cases.
func BunsenCases() map[byte]BunsenCase {
	return map[byte]BunsenCase{
		'A': {Name: "A", SlotWidth: 1.2e-3, DomainHx: 12, UJet: 60, UCoflow: 15,
			UPrimeSL: 3, LtDeltaL: 0.7, PaperReT: 40, PaperKa: 100, PaperDa: 0.23},
		'B': {Name: "B", SlotWidth: 1.2e-3, DomainHx: 20, UJet: 100, UCoflow: 25,
			UPrimeSL: 6, LtDeltaL: 1.0, PaperReT: 75, PaperKa: 100, PaperDa: 0.17},
		'C': {Name: "C", SlotWidth: 1.8e-3, DomainHx: 20, UJet: 100, UCoflow: 25,
			UPrimeSL: 10, LtDeltaL: 1.5, PaperReT: 250, PaperKa: 225, PaperDa: 0.15},
	}
}

// BunsenOptions scales the §7.2 configuration.
type BunsenOptions struct {
	Case          byte // 'A', 'B' or 'C'
	Nx, Ny, Nz    int
	Phi           float64 // equivalence ratio; paper: 0.7
	TReactants    float64 // paper: 800 K
	SL            float64 // laminar flame speed used to set u′ (0: paper's 1.8)
	DeltaL        float64 // laminar thickness for length scales (0: paper's 0.3 mm)
	Seed          int64
	VelocityScale float64 // scales jet/coflow speeds (default 1; reduce for coarse grids)
}

// BunsenProblem builds one of the premixed slot-Bunsen cases: a central
// premixed CH4/air jet at 800 K, φ = 0.7, surrounded by a laminar coflow of
// its own adiabatic combustion products (the pilot of §7.2).
func BunsenProblem(o BunsenOptions) (*Problem, error) {
	cs, ok := BunsenCases()[o.Case]
	if !ok {
		return nil, fmt.Errorf("s3d: unknown Bunsen case %q (want A, B or C)", o.Case)
	}
	if o.Phi == 0 {
		o.Phi = 0.7
	}
	if o.TReactants == 0 {
		o.TReactants = 800
	}
	if o.SL == 0 {
		o.SL = 1.8
	}
	if o.DeltaL == 0 {
		o.DeltaL = 0.3e-3
	}
	if o.Nx == 0 {
		o.Nx, o.Ny, o.Nz = 96, 72, 1
	}
	if o.VelocityScale == 0 {
		o.VelocityScale = 1
	}

	mech := MethaneAirSkeletal()
	ns := mech.NumSpecies()
	yU, err := mech.PremixedMixture(o.Phi)
	if err != nil {
		return nil, err
	}
	tb, yB, err := mech.Equilibrium(o.TReactants, 101325, yU)
	if err != nil {
		return nil, fmt.Errorf("s3d: coflow equilibrium: %v", err)
	}

	h := cs.SlotWidth
	lx := cs.DomainHx * h
	ly := 12 * h
	lz := 3 * h
	uJet := cs.UJet * o.VelocityScale
	uCo := cs.UCoflow * o.VelocityScale
	uPrime := cs.UPrimeSL * o.SL * o.VelocityScale
	lt := cs.LtDeltaL * o.DeltaL

	shear := h / 8
	tfield := turb.NewField(turb.Spectrum{Urms: uPrime, L0: lt * 4}, 200, o.Seed+7)
	profile := func(y float64) float64 {
		return 0.5 * (math.Tanh((y+h/2)/shear) - math.Tanh((y-h/2)/shear))
	}
	blendState := func(y, z, t float64, s *State) {
		f := profile(y)
		s.U = uCo + (uJet-uCo)*f
		s.V, s.W = 0, 0
		s.T = tb + (o.TReactants-tb)*f
		for i := 0; i < ns; i++ {
			s.Y[i] = yB[i] + (yU[i]-yB[i])*f
		}
		if f > 0.05 {
			du, dv, dw := tfield.Sweep(y, z, t, uJet)
			s.U += du * f
			s.V += dv * f
			s.W += dw * f
		}
	}

	cfg := Config{
		Mechanism:   mech,
		Grid:        GridSpec{Nx: o.Nx, Ny: o.Ny, Nz: o.Nz, Lx: lx, Ly: ly, Lz: lz},
		Pressure:    101325,
		FilterEvery: 5,
		Inflow:      blendState,
	}
	cfg.BC[0][0] = Inflow
	cfg.BC[0][1] = Outflow
	cfg.BC[1][0] = Outflow
	cfg.BC[1][1] = Outflow

	initial := func(x, y, z float64, s *State) {
		blendState(y-ly/2, z, 0, s)
		// Anchor the flame on the jet flanks (the Bunsen-cone flame sheets):
		// the shear layers blend toward products with downstream distance
		// while the reactant core survives, so a c-gradient flame surface
		// spans the whole domain from the start ("the flame is initially
		// planar at the inlet" and wrinkles downstream, §7.3).
		f := profile(y - ly/2)
		prog := 1 - math.Exp(-x/(2*h))
		w := 4 * f * (1 - f) * prog * 0.95
		if w > 0.95 {
			w = 0.95
		}
		s.T += w * (tb - s.T)
		for i := 0; i < ns; i++ {
			s.Y[i] += w * (yB[i] - s.Y[i])
		}
	}

	return &Problem{Config: cfg, Initial: initial, YFuel: yU, YOx: yB}, nil
}
