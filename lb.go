package s3d

// Dynamic load balancing: the public face of the cost-weighted tile
// planner and cross-rank chemistry work-sharing (internal/solver/lb.go).
// EnableLoadBalance folds the deterministic cost records into per-plane
// weight profiles that re-tile the chemistry and fused flux-assembly
// sweeps, and — in decomposed runs — into a deterministic assignment that
// ships reaction-sweep cell bundles from overloaded ranks to underloaded
// peers on the final RK stage. All balancing decisions derive from the
// bitwise-reproducible cost record, and the per-cell arithmetic and
// reduction order never change, so a balanced run's solution is bitwise
// identical to the unbalanced one at any worker and rank count. See
// README.md, "Dynamic load balancing".

// LoadBalanceSpec configures EnableLoadBalance.
type LoadBalanceSpec struct {
	// Every is the re-plan cadence in steps (≤0 selects 10). It doubles as
	// the cost-record cadence when EnableLoadBalance has to install the
	// cost sampler itself.
	Every int
	// Hysteresis is the fractional weight-profile change below which the
	// active plan is kept (≤0 selects 0.10): re-tiling churn costs cache
	// warmth, so near-identical profiles shouldn't move tile boundaries.
	Hysteresis float64
	// Slack is the fractional cross-rank chemistry imbalance tolerated
	// before work-sharing transfers are planned (≤0 selects 0.05).
	Slack float64
}

// EnableLoadBalance installs the dynamic load balancer. It requires the
// cost sampler and enables it with a matching cadence when absent. In
// decomposed runs every rank must enable an identical spec — the balancer
// makes collective-in-effect decisions from the shared record. Call before
// the first step.
func (s *Simulation) EnableLoadBalance(spec LoadBalanceSpec) error {
	if spec.Every <= 0 {
		spec.Every = 10
	}
	if s.blk.Cost() == nil {
		if _, err := s.EnableCostMaps(CostSpec{Every: spec.Every}); err != nil {
			return err
		}
	}
	return s.blk.InstallLoadBalance(spec.Every, spec.Hysteresis, spec.Slack)
}

// LoadBalanceStats returns the cells this rank has shipped to peers and
// computed on behalf of peers since EnableLoadBalance (both zero in serial
// runs, where balancing is purely local re-tiling).
func (s *Simulation) LoadBalanceStats() (exported, imported int64) {
	return s.blk.LoadBalanceStats()
}
