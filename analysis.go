package s3d

// In-situ analysis: the public face of the science-reduction pipeline
// (internal/insitu). EnableAnalysis registers a set of analysis operators
// — global moments, histograms, conditional means ⟨T|Z⟩ / ⟨Y_k|c⟩, the
// |∇c| flame-surface proxy, reaction-zone volume fraction, heat release —
// against solver registry field names plus the derived science variables
// "Z" (Bilger mixture fraction) and "c" (O2-based progress variable). The
// operators run fused into the solver's tiled step pass and reduce
// cross-rank in ascending rank order, so a step's statistics are bitwise
// identical for any worker or rank count, and no raw field data ever
// leaves the node — only the reduced products, streamed to the monitor's
// GET /analysis document, the analysis_* gauges, an analysis.jsonl store
// and any in-process subscribers. See README.md, "In-situ analysis".

import (
	"fmt"
	"math"

	"github.com/s3dgo/s3d/internal/insitu"
	"github.com/s3dgo/s3d/internal/stats"
)

// AnalysisRecord is one step's reduced analysis document (re-exported from
// internal/insitu for subscribers and ReadAnalysis consumers).
type AnalysisRecord = insitu.Record

// AnalysisProduct is one operator's finished statistics within a record.
type AnalysisProduct = insitu.Product

// MomentSpec requests volume-weighted mean/rms/extrema of a field; Favre
// selects density weighting for the mean and rms.
type MomentSpec struct {
	Field string
	Favre bool
}

// HistogramSpec requests a fixed-bin volume-weighted histogram. Bounds are
// explicit and frozen for the whole run so successive records share one
// axis. Bins of 0 selects 32.
type HistogramSpec struct {
	Field  string
	Bins   int
	Lo, Hi float64
}

// ConditionalSpec requests the conditional mean ⟨Of | On⟩ over Bins bins
// of the conditioning variable in [Lo, Hi]. On may be a registry field or
// a derived variable ("Z", "c"). Favre selects density weighting.
type ConditionalSpec struct {
	Of, On string
	Bins   int
	Lo, Hi float64
	Favre  bool
}

// StreamsSpec defines the fuel and oxidiser stream compositions behind the
// derived mixture-fraction variable "Z" (Bilger's coupling function,
// clipped to [0, 1]).
type StreamsSpec struct {
	YFuel, YOx []float64
}

// ProgressSpec defines the O2-based reaction progress variable "c"
// (paper §7.3): c = (YO2u − Y_O2)/(YO2u − YO2b), clipped to [0, 1].
type ProgressSpec struct {
	YO2u, YO2b float64
}

// ReactionZoneSpec requests the volume fraction where Field (default "T")
// exceeds Threshold — the reaction-zone conditioning of §7.
type ReactionZoneSpec struct {
	Field     string
	Threshold float64
}

// AnalysisSpec configures EnableAnalysis. Every is the reduction cadence
// in steps (≤0 selects every step); the operator groups compose freely.
type AnalysisSpec struct {
	Every int

	Moments      []MomentSpec
	Histograms   []HistogramSpec
	Conditionals []ConditionalSpec

	// MixtureFraction enables the derived variable "Z" for conditionals.
	MixtureFraction *StreamsSpec
	// Progress enables the derived variable "c" for conditionals, and is
	// required by FlameSurface.
	Progress *ProgressSpec

	// FlameSurface requests the flame-surface proxy ∫|∇c| dV, evaluated
	// from the registry's Y_O2 gradient fields scaled by the progress
	// normalisation (requires Progress).
	FlameSurface bool
	// ReactionZone requests the reaction-zone volume fraction.
	ReactionZone *ReactionZoneSpec
	// HeatRelease requests the global heat-release integral (W), collected
	// by piggybacking on the final RK stage's chemistry sweep.
	HeatRelease bool
}

// analysisBinder layers the derived science variables over the solver's
// registry-backed field sources.
type analysisBinder struct {
	base    insitu.Binder
	derived map[string]insitu.Source
}

// Source implements insitu.Binder.
func (ab analysisBinder) Source(name string) (insitu.Source, error) {
	if src, ok := ab.derived[name]; ok {
		return src, nil
	}
	return ab.base.Source(name)
}

// EnableAnalysis builds, installs and enables the in-situ pipeline
// described by spec. Call before StartTelemetry so the probe mounts
// GET /analysis and the analysis_* gauges, and before the first step. In
// decomposed runs every rank must enable an identical spec at the same
// point: a due step adds one collective that must match across ranks.
// Returns the pipeline for Subscribe, Latest and Handler access.
func (s *Simulation) EnableAnalysis(spec AnalysisSpec) (*insitu.Pipeline, error) {
	bnd, err := s.analysisBinder(spec)
	if err != nil {
		return nil, err
	}
	p := insitu.NewPipeline(spec.Every)
	for _, m := range spec.Moments {
		if err := p.Register(insitu.Moments{Field: m.Field, Favre: m.Favre}, bnd); err != nil {
			return nil, err
		}
	}
	for _, h := range spec.Histograms {
		if err := p.Register(insitu.Hist{Field: h.Field, Bins: h.Bins, Lo: h.Lo, Hi: h.Hi}, bnd); err != nil {
			return nil, err
		}
	}
	for _, c := range spec.Conditionals {
		op := insitu.Conditional{Of: c.Of, On: c.On, Bins: c.Bins, Lo: c.Lo, Hi: c.Hi, Favre: c.Favre}
		if err := p.Register(op, bnd); err != nil {
			return nil, err
		}
	}
	if spec.FlameSurface {
		pr := spec.Progress
		if pr == nil {
			return nil, fmt.Errorf("s3d: FlameSurface requires Progress (the |∇c| scale)")
		}
		op := insitu.GradMag{
			Label:  "flame_surface",
			Fields: [3]string{"dY_O2_dx", "dY_O2_dy", "dY_O2_dz"},
			Scale:  1 / math.Abs(pr.YO2u-pr.YO2b),
		}
		if err := p.Register(op, bnd); err != nil {
			return nil, err
		}
	}
	if rz := spec.ReactionZone; rz != nil {
		field := rz.Field
		if field == "" {
			field = "T"
		}
		op := insitu.VolumeFraction{Label: "reaction_zone", Field: field, Threshold: rz.Threshold}
		if err := p.Register(op, bnd); err != nil {
			return nil, err
		}
	}
	p.SetHeatRelease(spec.HeatRelease)
	s.blk.InstallAnalysis(p)
	p.Enable()
	return p, nil
}

// Analysis returns the installed pipeline (nil before EnableAnalysis).
func (s *Simulation) Analysis() *insitu.Pipeline { return s.blk.Analysis() }

// Subscribe registers fn to receive every finished analysis record, on the
// goroutine driving the simulation. EnableAnalysis must have been called.
func (s *Simulation) Subscribe(fn func(AnalysisRecord)) error {
	p := s.blk.Analysis()
	if p == nil {
		return fmt.Errorf("s3d: Subscribe requires EnableAnalysis first")
	}
	p.Subscribe(fn)
	return nil
}

// NewAnalysisStore creates (truncating) an append-only analysis.jsonl
// store; wire its Sink into Subscribe to persist every record.
func NewAnalysisStore(path string) (*insitu.Store, error) { return insitu.CreateStore(path) }

// ReadAnalysis loads every record of an analysis.jsonl store.
func ReadAnalysis(path string) ([]AnalysisRecord, error) { return insitu.ReadAnalysis(path) }

// analysisBinder assembles the binder resolving spec's field names: the
// solver registry plus the derived "Z" and "c".
func (s *Simulation) analysisBinder(spec AnalysisSpec) (insitu.Binder, error) {
	derived := map[string]insitu.Source{}
	ns := s.mech.NumSpecies()
	if mf := spec.MixtureFraction; mf != nil {
		if len(mf.YFuel) != ns || len(mf.YOx) != ns {
			return nil, fmt.Errorf("s3d: MixtureFraction streams need %d species mass fractions", ns)
		}
		bil := stats.NewBilger(s.mech.chem.Set, mf.YFuel, mf.YOx)
		w, w0 := bil.LinearWeights(ns)
		// ξ is linear in Y, so the per-cell evaluation is one dot product
		// over the species fields at the sweep's shared flat index.
		ys := make([][]float64, ns)
		for n := 0; n < ns; n++ {
			ys[n] = s.blk.Y[n].Data
		}
		derived["Z"] = func(idx int) float64 {
			z := w0
			for n := range ys {
				z += w[n] * ys[n][idx]
			}
			if z < 0 {
				return 0
			}
			if z > 1 {
				return 1
			}
			return z
		}
	}
	if pr := spec.Progress; pr != nil {
		if pr.YO2u == pr.YO2b {
			return nil, fmt.Errorf("s3d: Progress needs YO2u ≠ YO2b")
		}
		iO2 := s.mech.SpeciesIndex("O2")
		if iO2 < 0 {
			return nil, fmt.Errorf("s3d: Progress requires an O2 species in the mechanism")
		}
		yO2 := s.blk.Y[iO2].Data
		u, inv := pr.YO2u, 1/(pr.YO2u-pr.YO2b)
		derived["c"] = func(idx int) float64 {
			c := (u - yO2[idx]) * inv
			if c < 0 {
				return 0
			}
			if c > 1 {
				return 1
			}
			return c
		}
	}
	return analysisBinder{base: s.blk.NewBinder(), derived: derived}, nil
}

// StandardAnalysis returns the problem's default science-diagnostics set:
// Favre temperature and OH moments, a temperature histogram, ⟨T|Z⟩ against
// the problem's stream compositions, ⟨Y_OH|c⟩ with the flame-surface
// integral when the streams define a progress variable, the T > 1500 K
// reaction-zone volume fraction, and the heat-release integral for
// reacting runs.
func (p *Problem) StandardAnalysis() AnalysisSpec {
	spec := AnalysisSpec{
		Every: 1,
		Moments: []MomentSpec{
			{Field: "T", Favre: true},
		},
		Histograms: []HistogramSpec{
			{Field: "T", Bins: 32, Lo: 250, Hi: 3000},
		},
		ReactionZone: &ReactionZoneSpec{Field: "T", Threshold: 1500},
		HeatRelease:  !p.Config.ChemistryOff,
	}
	if p.Config.Mechanism != nil && p.Config.Mechanism.SpeciesIndex("OH") >= 0 {
		spec.Moments = append(spec.Moments, MomentSpec{Field: "Y_OH", Favre: true})
	}
	if len(p.YFuel) > 0 && len(p.YOx) > 0 {
		spec.MixtureFraction = &StreamsSpec{YFuel: p.YFuel, YOx: p.YOx}
		spec.Conditionals = append(spec.Conditionals, ConditionalSpec{
			Of: "T", On: "Z", Bins: 16, Lo: 0, Hi: 1, Favre: true,
		})
		if iO2 := p.Config.Mechanism.SpeciesIndex("O2"); iO2 >= 0 {
			u, b := p.YFuel[iO2], p.YOx[iO2]
			if math.Abs(u-b) > 1e-12 {
				spec.Progress = &ProgressSpec{YO2u: u, YO2b: b}
				spec.FlameSurface = true
				if p.Config.Mechanism.SpeciesIndex("OH") >= 0 {
					spec.Conditionals = append(spec.Conditionals, ConditionalSpec{
						Of: "Y_OH", On: "c", Bins: 16, Lo: 0, Hi: 1, Favre: true,
					})
				}
			}
		}
	}
	return spec
}
