package s3d

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analysisSpecForBox exercises every operator family over the inert-box
// configuration: moments (plain + Favre), a histogram, a conditional mean
// against the derived mixture fraction, and a reaction-zone fraction.
func analysisSpecForBox(mech *Mechanism) AnalysisSpec {
	yFuel := make([]float64, mech.NumSpecies())
	yFuel[mech.SpeciesIndex("H2")] = 1
	yOx := make([]float64, mech.NumSpecies())
	yOx[mech.SpeciesIndex("O2")] = 0.233
	yOx[mech.SpeciesIndex("N2")] = 0.767
	return AnalysisSpec{
		Every:           2,
		Moments:         []MomentSpec{{Field: "T", Favre: true}, {Field: "rho"}},
		Histograms:      []HistogramSpec{{Field: "T", Bins: 16, Lo: 250, Hi: 600}},
		MixtureFraction: &StreamsSpec{YFuel: yFuel, YOx: yOx},
		Conditionals:    []ConditionalSpec{{Of: "T", On: "Z", Bins: 8, Lo: 0, Hi: 1, Favre: true}},
		ReactionZone:    &ReactionZoneSpec{Field: "T", Threshold: 400},
	}
}

// runAnalysisDecomposed runs a 2x1x1 decomposed inert box with the analysis
// pipeline enabled on every rank and the store subscribed on rank 0, then
// returns the path of the produced analysis.jsonl.
func runAnalysisDecomposed(t *testing.T, workers int) string {
	t.Helper()
	SetWorkers(workers)
	defer SetWorkers(0) // restore the NumCPU default for other tests
	mech := HydrogenAir()
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	cfg := Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 8, Nz: 1, Lx: 0.01, Ly: 0.005, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	}
	path := filepath.Join(t.TempDir(), "analysis.jsonl")
	spec := analysisSpecForBox(mech)
	err := RunDecomposed(cfg, [3]int{2, 1, 1}, func(r *RankSim) {
		r.SetInitial(func(x, y, z float64, s *State) {
			s.U = 3 * math.Sin(2*math.Pi*x/0.01)
			s.T = 300 + 250*x/0.01
			copy(s.Y, yAir)
		}, nil)
		// Every rank enables the identical spec: the reduction is collective.
		if _, err := r.EnableAnalysis(spec); err != nil {
			panic(err)
		}
		if r.Rank == 0 {
			st, err := NewAnalysisStore(path)
			if err != nil {
				panic(err)
			}
			defer st.Close()
			if err := r.Subscribe(st.Sink()); err != nil {
				panic(err)
			}
			r.Advance(4, 1e-8)
			if err := st.Err(); err != nil {
				panic(err)
			}
		} else {
			r.Advance(4, 1e-8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAnalysisBitwiseDeterministicAcrossWorkers pins the determinism
// contract: the tile-fused accumulators merge in tile order and the
// cross-rank fold is ascending rank order, so the analysis stream must be
// byte-identical no matter how many workers execute the tiles.
func TestAnalysisBitwiseDeterministicAcrossWorkers(t *testing.T) {
	p1 := runAnalysisDecomposed(t, 1)
	p4 := runAnalysisDecomposed(t, 4)
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := os.ReadFile(p4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 {
		t.Fatal("analysis store is empty: pipeline never fired")
	}
	if !bytes.Equal(b1, b4) {
		t.Fatalf("analysis.jsonl differs between 1 and 4 workers:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s", b1, b4)
	}

	recs, err := ReadAnalysis(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // Every: 2 over 4 steps → steps 2 and 4
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for i, want := range []int{2, 4} {
		if recs[i].Step != want {
			t.Fatalf("record %d at step %d, want %d", i, recs[i].Step, want)
		}
	}
	byName := map[string]AnalysisProduct{}
	for _, pr := range recs[0].Products {
		byName[pr.Name] = pr
	}
	tm, ok := byName["T_favre"]
	if !ok {
		t.Fatalf("no Favre temperature moment in %v", recs[0].Products)
	}
	if m := tm.Scalars["mean"]; m < 300 || m > 550 {
		t.Fatalf("Favre mean T = %g, want inside the initial ramp [300, 550]", m)
	}
	if tm.Scalars["max"] <= tm.Scalars["min"] {
		t.Fatalf("degenerate extrema: %+v", tm.Scalars)
	}
	hist, ok := byName["T"]
	if !ok || hist.Op != "hist" {
		// The plain-moment product is named "rho"; the histogram owns "T".
		t.Fatalf("no temperature histogram: %+v", byName)
	}
	var sum float64
	for _, p := range hist.Bins {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("histogram not normalised: %g", sum)
	}
	if cond, ok := byName["T|Z"]; !ok || len(cond.Bins) != 8 {
		t.Fatalf("conditional mean missing or mis-sized: %+v", cond)
	}
	if rz, ok := byName["reaction_zone"]; !ok || rz.Scalars["fraction"] < 0 || rz.Scalars["fraction"] > 1 {
		t.Fatalf("reaction-zone fraction out of range: %+v", rz)
	}
}

// TestAnalysisSerialMatchesDecomposed checks the reduction is independent of
// the rank layout too: a serial run and a 2-rank run over the same state
// must publish identical products.
func TestAnalysisSerialMatchesDecomposed(t *testing.T) {
	decomposed := runAnalysisDecomposed(t, 2)

	mech := HydrogenAir()
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	sim, err := New(Config{
		Mechanism:    mech,
		Grid:         GridSpec{Nx: 16, Ny: 8, Nz: 1, Lx: 0.01, Ly: 0.005, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInitial(func(x, y, z float64, s *State) {
		s.U = 3 * math.Sin(2*math.Pi*x/0.01)
		s.T = 300 + 250*x/0.01
		copy(s.Y, yAir)
	}, nil)
	if _, err := sim.EnableAnalysis(analysisSpecForBox(mech)); err != nil {
		t.Fatal(err)
	}
	serial := filepath.Join(t.TempDir(), "analysis.jsonl")
	st, err := NewAnalysisStore(serial)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Subscribe(st.Sink()); err != nil {
		t.Fatal(err)
	}
	sim.Advance(4, 1e-8)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	sRecs, err := ReadAnalysis(serial)
	if err != nil {
		t.Fatal(err)
	}
	dRecs, err := ReadAnalysis(decomposed)
	if err != nil {
		t.Fatal(err)
	}
	if len(sRecs) != len(dRecs) {
		t.Fatalf("record counts differ: serial %d vs decomposed %d", len(sRecs), len(dRecs))
	}
	// Product streams must agree structurally, and the reductions must be
	// close. They are NOT bit-identical across layouts: the per-rank
	// trapezoid quadrature (lineWidths) half-weights each block's edge
	// cells, so internal rank interfaces carry half the serial weight —
	// the same layout dependence the telemetry heat-release integral has.
	// The determinism contract is per-layout (see the 1-vs-4-worker test).
	for i := range sRecs {
		sp, dp := sRecs[i].Products, dRecs[i].Products
		if len(sp) != len(dp) {
			t.Fatalf("record %d product counts differ: %d vs %d", i, len(sp), len(dp))
		}
		for j := range sp {
			if sp[j].Name != dp[j].Name {
				t.Fatalf("record %d product %d name: %q vs %q", i, j, sp[j].Name, dp[j].Name)
			}
			for k, v := range sp[j].Scalars {
				dv := dp[j].Scalars[k]
				scale := math.Max(math.Abs(v), math.Max(math.Abs(dv), 1))
				if math.Abs(v-dv)/scale > 0.1 {
					t.Fatalf("record %d %s.%s: serial %g vs decomposed %g", i, sp[j].Name, k, v, dv)
				}
			}
		}
	}
}

// TestAnalysisLiveEndpoints checks the monitor serves the latest record at
// GET /analysis and exports analysis_* gauges in Prometheus format.
func TestAnalysisLiveEndpoints(t *testing.T) {
	p, err := LiftedJetProblem(LiftedJetOptions{Nx: 32, Ny: 24, Nz: 1, IgnitionKernel: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		t.Fatal(err)
	}
	spec := p.StandardAnalysis()
	if !spec.HeatRelease || spec.MixtureFraction == nil || spec.Progress == nil {
		t.Fatalf("lifted jet should get the full standard spec, got %+v", spec)
	}
	if _, err := sim.EnableAnalysis(spec); err != nil {
		t.Fatal(err)
	}
	var rec AnalysisRecord
	if err := sim.Subscribe(func(r AnalysisRecord) { rec = r }); err != nil {
		t.Fatal(err)
	}
	probe, err := sim.StartTelemetry(TelemetryOptions{Case: "analysis-live", MonitorAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close("")

	// Before any step the endpoint answers with an empty object, not a 404.
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + probe.MonitorAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/analysis"); code != 200 || strings.TrimSpace(body) != "{}" {
		t.Fatalf("GET /analysis before first record = %d %q, want 200 {}", code, body)
	}

	probe.Advance(2, 0.4*sim.StableDt())
	if rec.Step != 2 {
		t.Fatalf("subscriber saw step %d, want 2", rec.Step)
	}

	code, body := get("/analysis")
	if code != 200 {
		t.Fatalf("GET /analysis = %d", code)
	}
	var live AnalysisRecord
	if err := json.Unmarshal([]byte(body), &live); err != nil {
		t.Fatalf("GET /analysis is not a record: %v\n%s", err, body)
	}
	if live.Step != 2 || len(live.Products) == 0 {
		t.Fatalf("live record wrong: %+v", live)
	}
	found := false
	for _, pr := range live.Products {
		if pr.Name == "heat_release" {
			found = true
			if pr.Scalars["watts"] == 0 {
				t.Fatal("heat release is zero with a burning ignition kernel")
			}
		}
	}
	if !found {
		t.Fatalf("no heat_release product in %+v", live.Products)
	}

	if code, prom := get("/metrics.prom"); code != 200 || !strings.Contains(prom, "analysis_") {
		t.Fatalf("GET /metrics.prom = %d, missing analysis_* gauges:\n%s", code, prom)
	}
}

// TestEnableAnalysisErrors pins the failure modes of the root API.
func TestEnableAnalysisErrors(t *testing.T) {
	sim := inertBoxSim(t)
	if _, err := sim.EnableAnalysis(AnalysisSpec{Moments: []MomentSpec{{Field: "bogus"}}}); err == nil {
		t.Fatal("unknown field must fail EnableAnalysis")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error does not name the field: %v", err)
	}
	if _, err := sim.EnableAnalysis(AnalysisSpec{FlameSurface: true}); err == nil {
		t.Fatal("FlameSurface without Progress must fail")
	}
	if _, err := sim.EnableAnalysis(AnalysisSpec{
		Conditionals: []ConditionalSpec{{Of: "T", On: "Z", Bins: 4, Lo: 0, Hi: 1}},
	}); err == nil {
		t.Fatal("conditioning on Z without MixtureFraction streams must fail")
	}
	if _, err := sim.EnableAnalysis(AnalysisSpec{
		Histograms: []HistogramSpec{{Field: "T", Bins: 8, Lo: 5, Hi: 5}},
	}); err == nil {
		t.Fatal("degenerate histogram bounds must fail")
	}

	fresh := inertBoxSim(t)
	if err := fresh.Subscribe(func(AnalysisRecord) {}); err == nil {
		t.Fatal("Subscribe before EnableAnalysis must fail")
	}
}
