package s3d

// Run health: the public face of the physics-aware watchdog
// (internal/health). EnableHealth arms per-step invariant checks —
// NaN/Inf scan, density/temperature/pressure bands, mass-fraction bounds
// and sum-to-one drift, acoustic and diffusive CFL numbers, global
// mass/energy conservation drift — with WARN/FATAL thresholds and
// hysteresis, plus a ring-buffer flight recorder. TryAdvance then returns
// a structured *health.Violation (naming rank, step, cell and quantity)
// instead of panicking when a run goes bad, after writing a post-mortem
// bundle (flight.jsonl + violation.json + emergency checkpoint). See
// README.md, "Run health & flight recorder".

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/s3dgo/s3d/internal/health"
)

// HealthOptions configures EnableHealth.
type HealthOptions struct {
	// Config is the rule engine: per-check WARN/FATAL bands and the
	// hysteresis counts. nil selects health.Defaults(). Runs with open
	// (NSCBC) boundaries exchange mass and energy with the far field, so
	// tighten the drift bands only for periodic problems.
	Config *health.Config

	// BundleDir receives the post-mortem bundle when a check trips
	// ("" disables the dump). Decomposed ranks write into per-rank
	// subdirectories rank0/, rank1/, ….
	BundleDir string

	// EmergencyCheckpoint also writes emergency-<step>.sdf (a regular
	// restart file, readable by LoadCheckpoint) into the bundle.
	EmergencyCheckpoint bool
}

// HealthDefaults returns the default rule set, for callers that want to
// adjust a band or two before EnableHealth.
func HealthDefaults() health.Config { return health.Defaults() }

// EnableHealth installs and arms the run-health watchdog. Call before
// StartTelemetry so the probe mounts /health and the health gauges, and
// before the first step. In decomposed runs every rank must enable health
// at the same point (the armed step loop adds two small collectives that
// must match across ranks). Returns the watchdog for direct inspection
// (Status, Recorder, Handler).
func (s *Simulation) EnableHealth(opt HealthOptions) *health.Watchdog {
	cfg := health.Defaults()
	if opt.Config != nil {
		cfg = *opt.Config
	}
	w := health.New(cfg, s.blk.Rank())
	s.blk.InstallWatchdog(w)
	s.healthOpt = &opt
	w.Arm()
	return w
}

// Watchdog returns the installed health watchdog (nil before EnableHealth).
func (s *Simulation) Watchdog() *health.Watchdog { return s.blk.Watchdog() }

// TryAdvance integrates n steps of size dt like Advance, but returns a
// *health.Violation (as error) the moment the armed watchdog trips FATAL,
// after writing the post-mortem bundle configured in HealthOptions. In
// decomposed runs every rank returns from the same step: the faulting
// rank's violation names the cell, the others return a "remote" violation
// naming the culprit rank. Without EnableHealth it behaves exactly like
// Advance (unrecoverable states panic).
func (s *Simulation) TryAdvance(n int, dt float64) error {
	for i := 0; i < n; i++ {
		if err := s.blk.StepChecked(dt); err != nil {
			s.dumpPostMortem()
			return err
		}
	}
	s.blk.RefreshPrimitives()
	return nil
}

// InjectNaN plants a NaN in the conserved energy at the center of this
// block at the start of the given step — the test hook behind the health
// smoke tests and the -inject-nan driver flag.
func (s *Simulation) InjectNaN(step int) {
	nx, ny, nz := s.Dims()
	s.blk.InjectNaNAt(step, nx/2, ny/2, nz/2)
}

// dumpPostMortem writes the flight-recorder bundle and the emergency
// checkpoint for this rank. Best-effort: a failing dump must not mask the
// violation, so I/O errors go to stderr.
func (s *Simulation) dumpPostMortem() {
	opt := s.healthOpt
	w := s.blk.Watchdog()
	if opt == nil || w == nil || opt.BundleDir == "" {
		return
	}
	dir := opt.BundleDir
	if s.blk.Ranks() > 1 {
		dir = filepath.Join(dir, fmt.Sprintf("rank%d", s.blk.Rank()))
	}
	if err := w.Dump(dir); err != nil {
		fmt.Fprintf(os.Stderr, "s3d: health bundle dump failed: %v\n", err)
		return
	}
	if !opt.EmergencyCheckpoint {
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("emergency-%06d.sdf", s.blk.Step))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "s3d: emergency checkpoint failed: %v\n", err)
		return
	}
	if err := s.blk.SaveCheckpoint(f); err != nil {
		fmt.Fprintf(os.Stderr, "s3d: emergency checkpoint failed: %v\n", err)
		f.Close()
		return
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "s3d: emergency checkpoint failed: %v\n", err)
	}
}
