module github.com/s3dgo/s3d

go 1.22
