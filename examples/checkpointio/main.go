// Checkpointio: exercises the S3D-I/O checkpoint kernel of paper §5
// through all four write paths, verifying that every shared-file method
// produces the byte-identical canonical global file image (figure 8), and
// printing the simulated figure-9 bandwidths for an 8-process run.
package main

import (
	"fmt"
	"log"

	"github.com/s3dgo/s3d/internal/pario"
)

func main() {
	// A small kernel for the byte-exact verification...
	small := pario.Kernel{NxP: 6, NyP: 5, NzP: 4, Px: 2, Py: 2, Pz: 2}
	if err := small.VerifyImages(256, 128); err != nil {
		log.Fatal(err)
	}
	fmt.Println("canonical-order verification: collective, caching and write-behind")
	fmt.Println("all reproduce the direct file image byte-for-byte ✓")

	// ...and the paper's 50³-per-process kernel for the bandwidth model.
	k := pario.Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 2, Py: 2, Pz: 2}
	fmt.Printf("\nS3D-I/O kernel: %d procs × %.2f MB per checkpoint, 10 checkpoints\n",
		k.NumProcs(), float64(k.BytesPerProc())/(1<<20))
	net := pario.GigE()
	for _, fs := range []*pario.FS{pario.Lustre(), pario.GPFS()} {
		fmt.Printf("\n%s:\n", fs.Name)
		for _, m := range pario.AllMethods() {
			r := m.Simulate(k, fs, net, 10)
			fmt.Printf("  %-12s %7.1f MB/s  (open %.2fs, comm %.2fs, write %.2fs)\n",
				m.Name(), r.BandwidthMBs, r.OpenTime, r.CommTime, r.WriteTime)
		}
	}
}
