// Laminarflame: computes unstrained laminar premixed CH4/air flame
// properties over a range of equivalence ratios with the built-in 1-D
// flame solver — the PREMIX reference calculation of paper §7.2, which
// reports S_L = 1.8 m/s, δ_L = 0.3 mm, δ_H = 0.14 mm and τ_f = 0.17 ms for
// φ = 0.7 at 800 K.
package main

import (
	"fmt"
	"log"

	"github.com/s3dgo/s3d"
)

func main() {
	mech := s3d.MethaneAirSkeletal()

	fmt.Println("CH4/air at 800 K, 1 atm (the paper's preheated reactants)")
	fmt.Println("phi    SL(m/s)  deltaL(mm)  deltaH(mm)  tauF(ms)  Tb(K)")
	for _, phi := range []float64{0.6, 0.7, 0.85, 1.0} {
		y, err := mech.PremixedMixture(phi)
		if err != nil {
			log.Fatal(err)
		}
		f, err := mech.LaminarFlame(800, 101325, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %6.2f   %8.3f   %9.3f   %7.3f   %5.0f\n",
			phi, f.SL, f.DeltaL*1e3, f.DeltaH*1e3, f.TauF*1e3, f.Tburnt)
	}
	fmt.Println("\nφ = 0.7 row is the table-1 normalisation flame (paper: 1.8 m/s, 0.3 mm).")
}
