// Quickstart: the smallest complete S3D-Go program. It builds a periodic
// box of air with a small temperature blob, advances the compressible
// reacting-flow solver a few hundred steps and prints monitoring output.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/s3dgo/s3d"
)

func main() {
	mech := s3d.HydrogenAir()

	sim, err := s3d.New(s3d.Config{
		Mechanism:   mech,
		Grid:        s3d.GridSpec{Nx: 32, Ny: 32, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
		Pressure:    101325,
		FilterEvery: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Air with a hot spot in the middle of the box.
	yAir := make([]float64, mech.NumSpecies())
	yAir[mech.SpeciesIndex("O2")] = 0.233
	yAir[mech.SpeciesIndex("N2")] = 0.767
	sim.SetInitial(func(x, y, z float64, s *s3d.State) {
		r2 := ((x-0.005)*(x-0.005) + (y-0.005)*(y-0.005)) / (0.0015 * 0.0015)
		s.T = 300 + 500*math.Exp(-r2)
		copy(s.Y, yAir)
	}, nil)

	dt := sim.StableDt()
	fmt.Printf("stable time step: %.3g s\n", dt)
	for i := 0; i < 10; i++ {
		sim.Advance(20, dt)
		lo, hi, _ := sim.MinMax("T")
		fmt.Printf("step %4d  t = %.3g s  T ∈ [%.1f, %.1f] K\n", sim.Step(), sim.Time(), lo, hi)
	}

	// Extract a field for downstream analysis.
	temp, dims, _ := sim.Field("T")
	fmt.Printf("temperature field: %v points, centre value %.1f K\n",
		dims, temp[(dims[1]/2)*dims[0]+dims[0]/2])
}
