// Liftedjet: runs a small 2-D version of the paper's §6 configuration — a
// cold H2/N2 jet issuing into hot coflowing air — and tracks the
// autoignition-stabilisation signature in-situ: the HO2 radical pool forms
// upstream of the OH flame base.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/s3dgo/s3d"
)

func main() {
	p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{
		Nx: 64, Ny: 48, Nz: 1,
		IgnitionKernel: true,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}
	dt := 0.4 * sim.StableDt()
	x, _, _ := sim.Coords()

	fmt.Println("step   t(µs)   T_max(K)   xlead_HO2(mm)   xlead_OH(mm)")
	for i := 0; i < 8; i++ {
		sim.Advance(25, dt)
		_, tMax, _ := sim.MinMax("T")
		fmt.Printf("%4d   %5.1f   %7.0f   %13.3f   %12.3f\n",
			sim.Step(), sim.Time()*1e6, tMax,
			leadingEdge(sim, x, "Y_HO2")*1e3, leadingEdge(sim, x, "Y_OH")*1e3)
	}
	xHO2 := leadingEdge(sim, x, "Y_HO2")
	xOH := leadingEdge(sim, x, "Y_OH")
	if xHO2 < xOH {
		fmt.Println("\nThe HO2 pool extends upstream of the OH flame base: the flame is")
		fmt.Println("stabilised by autoignition in the hot coflow, not by propagation (§6.3).")
	} else {
		fmt.Println("\nHO2/OH ordering not yet established — run more steps.")
	}
}

// leadingEdge returns the most upstream x where the species exceeds 20% of
// its peak — the flame-base marker used in §6.3's discussion.
func leadingEdge(sim *s3d.Simulation, x []float64, field string) float64 {
	data, dims, err := sim.Field(field)
	if err != nil {
		log.Fatal(err)
	}
	var peak float64
	for _, v := range data {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return math.NaN()
	}
	thresh := 0.2 * peak
	for i := 0; i < dims[0]; i++ {
		for k := 0; k < dims[2]; k++ {
			for j := 0; j < dims[1]; j++ {
				if data[(k*dims[1]+j)*dims[0]+i] > thresh {
					return x[i]
				}
			}
		}
	}
	return math.NaN()
}
