// Insitu: demonstrates paper §8.3 — visualization running *inside* the
// simulation loop, sharing the solver's live data structures. The run
// renders fused OH/HO2 frames and accumulates the OH time histogram without
// ever writing raw field data to disk; only the images leave the run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/s3dgo/s3d"
	"github.com/s3dgo/s3d/internal/viz"
)

func main() {
	p, err := s3d.LiftedJetProblem(s3d.LiftedJetOptions{
		Nx: 48, Ny: 40, Nz: 1, IgnitionKernel: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim, err := p.NewSimulation()
	if err != nil {
		log.Fatal(err)
	}

	outDir := "out_insitu"
	imager := &s3d.InSituImager{Dir: outDir, FieldA: "Y_OH", FieldB: "Y_HO2", Width: 240, Height: 180}
	frames, err := imager.Observer()
	if err != nil {
		log.Fatal(err)
	}
	hist := &s3d.InSituHistogram{Field: "T", Bins: 24, Lo: 300, Hi: 2900}

	dt := 0.4 * sim.StableDt()
	sim.AdvanceInSitu(60, dt, 12, s3d.Compose(frames, hist.Observer(),
		func(s *s3d.Simulation) {
			lo, hi, _ := s.MinMax("T")
			fmt.Printf("in-situ observation at step %3d: T ∈ [%.0f, %.0f] K\n", s.Step(), lo, hi)
		}))

	fmt.Printf("\nrendered %d frames into %s/\n", imager.Frames(), outDir)

	// The accumulated histograms feed the §8.2 time-histogram view.
	th := &viz.TimeHistogram{Hist: hist.Snapshots, Width: 256, Height: 128}
	img, err := th.Render()
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(outDir, "time_histogram.png")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WritePNG(f, img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
