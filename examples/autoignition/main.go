// Autoignition: sweeps the coflow temperature of a lean H2/air mixture and
// prints ignition delays — the zero-dimensional physics behind the lifted
// flame of paper §6: the 1100 K coflow sits above the crossover temperature
// of hydrogen chemistry, so the mixture upstream of the flame base ignites
// spontaneously, while the 400 K fuel stream cannot.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/s3dgo/s3d"
)

func main() {
	mech := s3d.HydrogenAir()
	y, err := mech.PremixedMixture(0.5) // lean, like the igniting mixtures of §6.3
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("H2/air φ=0.5 at 1 atm: ignition delay vs temperature")
	fmt.Println("T(K)   tau_ign(ms)")
	for _, T := range []float64{900, 1000, 1050, 1100, 1200, 1300, 1400} {
		tau, err := mech.IgnitionDelay(T, 101325, y, 5e-3)
		if err != nil {
			log.Fatal(err)
		}
		if math.IsNaN(tau) {
			fmt.Printf("%4.0f   no ignition within 5 ms\n", T)
			continue
		}
		fmt.Printf("%4.0f   %.4f\n", T, tau*1e3)
	}
	fmt.Println("\nThe steep cliff between ~1000 and 1100 K is the crossover: the")
	fmt.Println("paper's 1100 K coflow is autoignitive, its 400 K fuel jet is not.")
}
