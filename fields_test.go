package s3d

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

func inventorySim(t *testing.T) *Simulation {
	t.Helper()
	sim, err := New(Config{
		Mechanism:    HydrogenAir(),
		Grid:         GridSpec{Nx: 16, Ny: 12, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01},
		Pressure:     101325,
		ChemistryOff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestFieldsInventory checks the public registry view: the inventory
// carries the metadata the registry recorded, the derived entries Field
// accepts, and the role-selected analysis set.
func TestFieldsInventory(t *testing.T) {
	sim := inventorySim(t)
	byName := map[string]FieldInfo{}
	for _, fi := range sim.Fields() {
		if _, dup := byName[fi.Name]; dup {
			t.Fatalf("duplicate inventory name %q", fi.Name)
		}
		byName[fi.Name] = fi
	}
	for name, want := range map[string]FieldInfo{
		"rho":    {Name: "rho", Role: "primitive", Storage: "float64", Width: 8},
		"T":      {Name: "T", Role: "primitive", Checkpoint: "T_guess", Storage: "float64", Width: 8},
		"Y_OH":   {Name: "Y_OH", Role: "primitive", Species: "OH", Storage: "float64", Width: 8},
		"Q_rhoE": {Name: "Q_rhoE", Role: "conserved", HaloGroup: "conserved", Checkpoint: "rhoE", Storage: "float64", Width: 8},
		"hrr":    {Name: "hrr", Role: "derived", Derived: true},
	} {
		got, ok := byName[name]
		if !ok {
			t.Fatalf("inventory is missing %q", name)
		}
		if got != want {
			t.Fatalf("inventory[%q] = %+v, want %+v", name, got, want)
		}
	}
	// Every non-derived inventory name must resolve through Field.
	for _, fi := range sim.Fields() {
		if _, _, err := sim.Field(fi.Name); err != nil {
			t.Fatalf("inventory name %q does not resolve: %v", fi.Name, err)
		}
	}
	if _, _, err := sim.Field("no_such_field"); err == nil {
		t.Fatal("unknown name resolved")
	}

	want := []string{"rho", "u", "v", "w", "T", "p", "Wmix"}
	if got := sim.AnalysisFields(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AnalysisFields() = %v, want %v", got, want)
	}
}

// TestFieldsEndpoint serves /fields on a live monitor and decodes it.
func TestFieldsEndpoint(t *testing.T) {
	sim := inventorySim(t)
	probe, err := sim.StartTelemetry(TelemetryOptions{MonitorAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close("")
	resp, err := http.Get("http://" + probe.MonitorAddr() + "/fields")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fields: %s", resp.Status)
	}
	var doc FieldsDocument
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Grid != [3]int{16, 12, 1} {
		t.Fatalf("document grid %v", doc.Grid)
	}
	if doc.Count != len(doc.Fields) || doc.Count == 0 {
		t.Fatalf("document count %d, %d fields", doc.Count, len(doc.Fields))
	}
	if doc.Fields[0].Name != "Q_rho" || doc.Fields[0].Checkpoint != "rho" {
		t.Fatalf("first entry %+v: registration order must lead with the conserved bank", doc.Fields[0])
	}
}

// TestFieldRowsStreaming checks that the streaming row source delivers
// exactly the values Field materialises, in the same order.
func TestFieldRowsStreaming(t *testing.T) {
	sim := inventorySim(t)
	sim.SetInitial(func(x, y, z float64, s *State) {
		s.T = 300 + 1e4*x + 1e3*y
		s.Y[sim.mech.SpeciesIndex("N2")] = 1
	}, nil)
	want, dims, err := sim.Field("T")
	if err != nil {
		t.Fatal(err)
	}
	rows, rdims, err := sim.FieldRows("T")
	if err != nil {
		t.Fatal(err)
	}
	if rdims != dims {
		t.Fatalf("dims %v vs %v", rdims, dims)
	}
	var got []float64
	if err := rows(func(chunk []float64) error {
		got = append(got, chunk...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed rows differ from materialised field")
	}
	if _, _, err := sim.FieldRows("hrr"); err == nil {
		t.Fatal("derived field must not stream")
	}
}
