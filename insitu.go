package s3d

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/stats"
	"github.com/s3dgo/s3d/internal/viz"
)

// fieldRef is a zero-copy view of live solver storage.
type fieldRef = *grid.Field3

// In-situ visualization (paper §8.3): for extreme-scale runs the data
// cannot be staged to disk and post-processed, so "the visualization code
// must interact directly with the simulation code" and "share the same
// data structures". AdvanceInSitu threads an observer through the time
// loop, and InSituImager renders frames straight from the solver's live
// fields — no copies, no I/O of raw data, only the rendered images leave
// the run.

// Observer is called with the live simulation between step bursts.
type Observer func(s *Simulation)

// AdvanceInSitu integrates n steps of size dt, invoking the observer every
// `every` steps (and once at the end). Primitives are refreshed before each
// observation so observers read a consistent state.
func (s *Simulation) AdvanceInSitu(n int, dt float64, every int, obs Observer) {
	if every <= 0 {
		every = n
	}
	done := 0
	for done < n {
		burst := every
		if done+burst > n {
			burst = n - done
		}
		s.blk.Advance(burst, dt)
		done += burst
		s.blk.RefreshPrimitives()
		if obs != nil {
			obs(s)
		}
	}
}

// InSituImager renders a two-layer fused volume image of the named fields
// directly from solver storage at each observation, writing numbered PNGs.
// A nil second field name renders a single layer. Render failures never
// take the simulation down: they are counted in the insitu.render_errors
// metric (when Metrics is set) and the first one is retained for Err.
type InSituImager struct {
	Dir            string
	FieldA, FieldB string
	Width, Height  int

	// Metrics, when non-nil, counts render/write failures under
	// insitu.render_errors (insitu_render_errors in /metrics.prom).
	// Wire it to Probe.Metrics to surface drops on the live monitor.
	Metrics *obs.Registry

	frames int
	err    error
}

// Err returns the first frame-write failure, or nil while every frame has
// rendered cleanly.
func (im *InSituImager) Err() error { return im.err }

// fail records one dropped frame.
func (im *InSituImager) fail(err error) {
	im.Metrics.Counter("insitu.render_errors").Inc()
	if im.err == nil {
		im.err = err
	}
}

// Observer returns the Observer that renders one frame per call.
func (im *InSituImager) Observer() (Observer, error) {
	if err := os.MkdirAll(im.Dir, 0o755); err != nil {
		return nil, err
	}
	w, h := im.Width, im.Height
	if w == 0 {
		w = 320
	}
	if h == 0 {
		h = 240
	}
	return func(s *Simulation) {
		layers := make([]viz.Layer, 0, 2)
		add := func(name string, tf *viz.TransferFunc) {
			f := s.solverField(name)
			if f == nil {
				return
			}
			lo, hi := f.MinMax()
			if hi <= lo {
				hi = lo + 1
			}
			layers = append(layers, viz.Layer{Field: f, TF: tf, Min: lo, Max: hi})
		}
		add(im.FieldA, viz.HotTF(0.85))
		if im.FieldB != "" {
			add(im.FieldB, viz.CoolTF(0.85))
		}
		r := &viz.Renderer{
			Layers: layers,
			Cam:    frontCamera(s),
			Width:  w, Height: h,
			Background: viz.RGBA{R: 0.02, G: 0.02, B: 0.04, A: 1},
		}
		path := filepath.Join(im.Dir, fmt.Sprintf("frame-%05d.png", im.frames))
		im.frames++
		out, err := os.Create(path)
		if err != nil {
			// In-situ rendering must never take the simulation down — but a
			// dropped frame is counted and the first error kept for Err.
			im.fail(err)
			return
		}
		if err := viz.WritePNG(out, r.Render()); err != nil {
			out.Close()
			im.fail(err)
			return
		}
		if err := out.Close(); err != nil {
			im.fail(err)
		}
	}, nil
}

// Frames returns the number of frames written so far.
func (im *InSituImager) Frames() int { return im.frames }

// frontCamera picks a view axis that sees the largest face.
func frontCamera(s *Simulation) viz.Camera {
	nx, ny, nz := s.Dims()
	switch {
	case nz <= nx && nz <= ny:
		return viz.Camera{Elevation: 1.5707963267948966} // look along z
	case ny <= nx:
		return viz.Camera{Azimuth: 1.5707963267948966} // look along y
	default:
		return viz.Camera{}
	}
}

// solverField exposes the live solver field for zero-copy in-situ use; nil
// for unknown names. Names resolve through the block's field registry
// ("rho", "u", "T", "Y_OH", … — the /fields endpoint lists the inventory),
// so the in-situ path and the solver share one naming authority. (Interior
// values only are meaningful.)
func (s *Simulation) solverField(name string) fieldRef {
	return s.blk.FieldByName(name)
}

// InSituHistogram accumulates per-observation histograms of a field — the
// time-histogram feed of the §8.2 interface, built in-situ. When Lo/Hi do
// not describe a range (Hi ≤ Lo), the bounds are derived from the field's
// extrema at the FIRST observation and frozen for the rest of the run, so
// every snapshot shares one axis and the stack is mutually comparable.
type InSituHistogram struct {
	Field     string
	Bins      int
	Lo, Hi    float64
	Snapshots [][]float64
}

// Observer returns the accumulating Observer.
func (ih *InSituHistogram) Observer() Observer {
	if ih.Bins == 0 {
		ih.Bins = 32
	}
	return func(s *Simulation) {
		f := s.solverField(ih.Field)
		if f == nil {
			return
		}
		if ih.Hi <= ih.Lo {
			// Freeze auto-derived bounds into the struct at first sight so
			// later snapshots keep the same axis.
			ih.Lo, ih.Hi = f.MinMax()
			if ih.Hi <= ih.Lo {
				ih.Hi = ih.Lo + 1
			}
		}
		h := stats.NewHistogram(ih.Bins, ih.Lo, ih.Hi)
		f.Each(func(_, _, _ int, v float64) { h.Add(v) })
		ih.Snapshots = append(ih.Snapshots, h.Normalized())
	}
}

// Compose chains observers.
func Compose(obs ...Observer) Observer {
	return func(s *Simulation) {
		for _, o := range obs {
			if o != nil {
				o(s)
			}
		}
	}
}
