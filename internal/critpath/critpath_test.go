package critpath

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/prof"
)

const ms = int64(1e6)

// stragglerDeposits builds a synthetic 3-rank step in which rank 1 computes
// for 10 ms before sending to ranks 0 and 2, who posted their waits at 1 ms
// and block until the message lands: the textbook late-sender pattern.
func stragglerDeposits() []*Deposit {
	send := func(peer int, postNs int64) comm.PtPEvent {
		return comm.PtPEvent{Kind: comm.KindSend, Peer: peer, Tag: 7, Bytes: 800, Step: 4, PostNs: postNs}
	}
	recv := func(peer int, startNs, doneNs, sendPostNs int64) comm.PtPEvent {
		return comm.PtPEvent{
			Kind: comm.KindRecv, Peer: peer, Tag: 7, Bytes: 800, Step: 4,
			PostNs: startNs, StartNs: startNs, DoneNs: doneNs,
			SendPostNs: sendPostNs, SendStep: 4,
		}
	}
	return []*Deposit{
		{Rank: 0, Step: 4, Time: 1.5, StartNs: 0, EndNs: 12 * ms,
			PtP: []comm.PtPEvent{recv(1, 1*ms, 10*ms+100_000, 10*ms)}},
		{Rank: 1, Step: 4, Time: 1.5, StartNs: 0, EndNs: 11 * ms,
			PtP: []comm.PtPEvent{send(0, 10*ms), send(2, 10*ms)}},
		{Rank: 2, Step: 4, Time: 1.5, StartNs: 0, EndNs: 11*ms + 500_000,
			PtP: []comm.PtPEvent{recv(1, 1*ms, 10*ms+50_000, 10*ms)}},
	}
}

func TestAnalyzeLateSenderPath(t *testing.T) {
	rec := analyze(stragglerDeposits(), 0, nil)

	if rec.Sends != 2 || rec.Recvs != 2 || rec.Edges != 2 {
		t.Fatalf("census: sends=%d recvs=%d edges=%d, want 2/2/2", rec.Sends, rec.Recvs, rec.Edges)
	}
	if rec.MatchCompleteness != 1 {
		t.Fatalf("match completeness %v, want 1", rec.MatchCompleteness)
	}
	if rec.DominantWait != WaitLateSender {
		t.Fatalf("dominant wait %q, want late_sender", rec.DominantWait)
	}
	if rec.CritRank != 1 {
		t.Fatalf("crit rank %d, want straggler rank 1 (path %+v)", rec.CritRank, rec.Path)
	}
	for _, r := range []int{0, 2} {
		w := rec.Waits[r]
		if w.LateSenderNs < 9*ms || w.LateSenderPeer != 1 {
			t.Fatalf("rank %d wait %+v, want ≥9ms late-sender blame on rank 1", r, w)
		}
	}
	if rec.Waits[1].LateSenderNs != 0 {
		t.Fatalf("straggler charged with late-sender wait: %+v", rec.Waits[1])
	}
	// The path must spend its bulk on rank 1 and end on rank 0 (last to
	// finish), entering rank 0 only when rank 1's send released it.
	if len(rec.Path) < 2 {
		t.Fatalf("path too short: %+v", rec.Path)
	}
	last := rec.Path[len(rec.Path)-1]
	if last.Rank != 0 || last.StartNs < 10*ms {
		t.Fatalf("last segment %+v, want rank 0 starting after the 10ms release", last)
	}
	var onStraggler int64
	for _, s := range rec.Path {
		if s.Rank == 1 {
			onStraggler += s.EndNs - s.StartNs
		}
	}
	if onStraggler < 9*ms {
		t.Fatalf("critical path spends %dns on the straggler, want ≥9ms (path %+v)", onStraggler, rec.Path)
	}
	if rec.CritShare < 0.7 {
		t.Fatalf("crit share %v, want >0.7", rec.CritShare)
	}
	if rec.LostFrac < 0.4 || rec.LostFrac > 0.7 {
		t.Fatalf("lost frac %v, want ≈0.5", rec.LostFrac)
	}
	for _, want := range []string{"rank 1", "late-sender", "ranks 0,2"} {
		if !strings.Contains(rec.Verdict, want) {
			t.Fatalf("verdict %q missing %q", rec.Verdict, want)
		}
	}
}

func TestAnalyzeCollectiveRoot(t *testing.T) {
	coll := func(seq int, enter, exit int64) comm.CollEvent {
		return comm.CollEvent{Kind: comm.KindAllreduce, Seq: seq, Bytes: 8, Step: 2, EnterNs: enter, ExitNs: exit}
	}
	deps := []*Deposit{
		{Rank: 0, Step: 2, StartNs: 0, EndNs: 9*ms + 500_000,
			Coll: []comm.CollEvent{coll(0, 1*ms, 9*ms+200_000)}},
		{Rank: 1, Step: 2, StartNs: 0, EndNs: 9*ms + 300_000,
			Coll: []comm.CollEvent{coll(0, 9*ms, 9*ms+200_000)}},
	}
	rec := analyze(deps, 0, nil)

	if rec.Collectives != 2 {
		t.Fatalf("collectives %d, want 2", rec.Collectives)
	}
	if rec.DominantWait != WaitCollective {
		t.Fatalf("dominant wait %q, want collective", rec.DominantWait)
	}
	if w := rec.Waits[0]; w.CollNs != 8*ms || w.CollRoot != 1 {
		t.Fatalf("rank 0 wait %+v, want 8ms rooted at rank 1", w)
	}
	if w := rec.Waits[1]; w.CollNs != 0 {
		t.Fatalf("root rank charged with collective wait: %+v", w)
	}
	if rec.CritRank != 1 {
		t.Fatalf("crit rank %d, want root-cause rank 1 (path %+v)", rec.CritRank, rec.Path)
	}
	if !strings.Contains(rec.Verdict, "rooted at rank 1") {
		t.Fatalf("verdict %q missing collective root cause", rec.Verdict)
	}
}

func TestAnalyzeStructureDeterministic(t *testing.T) {
	// Same operations, jittered timings: the structural fields must agree.
	jitter := stragglerDeposits()
	for _, d := range jitter {
		d.EndNs += 3 * ms
		for i := range d.PtP {
			d.PtP[i].StartNs += 500_000
			d.PtP[i].DoneNs += 2 * ms
		}
	}
	a, b := analyze(stragglerDeposits(), 0, nil), analyze(jitter, 0, nil)
	if a.Sends != b.Sends || a.Recvs != b.Recvs || a.Collectives != b.Collectives ||
		a.Edges != b.Edges || a.MatchCompleteness != b.MatchCompleteness {
		t.Fatalf("structure drifted with timing: %+v vs %+v", a, b)
	}
	if len(a.RankOps) != len(b.RankOps) {
		t.Fatalf("rank ops length drifted")
	}
	for i := range a.RankOps {
		if a.RankOps[i] != b.RankOps[i] {
			t.Fatalf("rank ops[%d] drifted: %+v vs %+v", i, a.RankOps[i], b.RankOps[i])
		}
	}
}

func TestAnalyzeUnmatchedRecvLowersCompleteness(t *testing.T) {
	deps := stragglerDeposits()
	// A message from outside the traced window: no matching send event.
	deps[0].PtP = append(deps[0].PtP, comm.PtPEvent{
		Kind: comm.KindRecv, Peer: 2, Tag: 99, Step: 4,
		PostNs: 2 * ms, StartNs: 2 * ms, DoneNs: 2*ms + 10_000, SendPostNs: 1 * ms,
	})
	rec := analyze(deps, 0, nil)
	if rec.Recvs != 3 || rec.Edges != 2 {
		t.Fatalf("recvs=%d edges=%d, want 3 recvs with 2 matched", rec.Recvs, rec.Edges)
	}
	if rec.MatchCompleteness <= 0.6 || rec.MatchCompleteness >= 0.7 {
		t.Fatalf("match completeness %v, want 2/3", rec.MatchCompleteness)
	}
}

func TestAnalyzeBlameFromProfTrack(t *testing.T) {
	p := prof.New()
	p.SetEnabled(true)
	tr := p.NewTrack(prof.GroupRank, "rank0")

	start := time.Since(p.Epoch()).Nanoseconds()
	step := tr.Begin("STEP")
	chem := tr.Begin("CHEM")
	deadline := time.Now().Add(3 * time.Millisecond)
	for time.Now().Before(deadline) {
	}
	chem.End()
	step.End()
	end := time.Since(p.Epoch()).Nanoseconds()

	// Analyzer clock == prof clock here, so profOff is zero.
	rec := analyze([]*Deposit{{Rank: 0, Step: 1, StartNs: start, EndNs: end, Track: tr}}, 0, nil)
	var chemNs int64
	for _, bl := range rec.Blame {
		if bl.Path == "STEP/CHEM" {
			chemNs = bl.Ns
		}
	}
	if chemNs < 2*ms {
		t.Fatalf("STEP/CHEM blamed for %dns, want ≥2ms (blame %+v)", chemNs, rec.Blame)
	}
	if !strings.Contains(rec.Verdict, "STEP/CHEM") {
		t.Fatalf("verdict %q does not name the blamed region", rec.Verdict)
	}
}

func TestAnalyzerDepositBarrierAndPublish(t *testing.T) {
	a := New(2)
	if a.Due(2) {
		t.Fatal("disabled analyzer reported due")
	}
	a.Enable()
	if a.Due(3) || !a.Due(4) {
		t.Fatal("cadence: want due only on multiples of every")
	}
	if err := a.Register(3, time.Now(), true); err != nil {
		t.Fatal(err)
	}
	if err := a.Register(2, time.Now(), true); err == nil {
		t.Fatal("conflicting rank count accepted")
	}
	reg := obs.NewRegistry()
	a.AttachMetrics(reg)
	var mu sync.Mutex
	var got []Record
	a.Subscribe(func(r Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	deps := stragglerDeposits()
	var wg sync.WaitGroup
	for _, d := range deps {
		wg.Add(1)
		go func(d Deposit) {
			defer wg.Done()
			a.Deposit(d)
		}(*d)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("subscriber fired %d times, want once", len(got))
	}
	if got[0].Step != 4 || got[0].CritRank != 1 {
		t.Fatalf("published record %+v", got[0])
	}
	if lat := a.Latest(); lat == nil || lat.Step != 4 {
		t.Fatalf("Latest() = %+v", lat)
	}
	if v := reg.Gauge("critpath.crit_rank").Value(); v != 1 {
		t.Fatalf("critpath.crit_rank gauge %v, want 1", v)
	}
	if v := reg.Gauge("critpath.late_sender_ns").Value(); v < float64(18*ms) {
		t.Fatalf("critpath.late_sender_ns gauge %v, want ≥18ms", v)
	}
}

func TestAnalyzerAbortUnblocksDeposit(t *testing.T) {
	a := New(1)
	a.Enable()
	if err := a.Register(2, time.Now(), true); err != nil {
		t.Fatal(err)
	}
	var aborted sync.Once
	flag := make(chan struct{})
	var hook func()
	a.BindAbort(func(fn func()) { hook = fn }, func() bool {
		select {
		case <-flag:
			return true
		default:
			return false
		}
	})

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		a.Deposit(Deposit{Rank: 0, Step: 1, StartNs: 0, EndNs: ms})
	}()
	time.Sleep(20 * time.Millisecond) // let the deposit park in the barrier
	aborted.Do(func() { close(flag) })
	hook()
	select {
	case p := <-panicked:
		if p == nil {
			t.Fatal("deposit returned without the peer depositing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deposit still blocked after abort")
	}
}

func TestHandlerAndStoreRoundTrip(t *testing.T) {
	a := New(1)
	a.Enable()
	if err := a.Register(1, time.Now(), false); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/critpath", nil))
	if rr.Body.String() != "{}\n" {
		t.Fatalf("pre-record body %q, want empty object", rr.Body.String())
	}

	path := filepath.Join(t.TempDir(), "critpath.jsonl")
	st, err := CreateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Subscribe(st.Sink())

	a.Deposit(Deposit{Rank: 0, Step: 3, Time: 0.5, StartNs: 0, EndNs: 2 * ms})
	a.Deposit(Deposit{Rank: 0, Step: 6, Time: 1.0, StartNs: 2 * ms, EndNs: 5 * ms})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rr = httptest.NewRecorder()
	a.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/critpath", nil))
	var rec Record
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatalf("handler JSON: %v", err)
	}
	if rec.Step != 6 || rec.Ranks != 1 {
		t.Fatalf("handler served %+v", rec)
	}

	recs, err := ReadCritPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Step != 3 || recs[1].Step != 6 {
		t.Fatalf("store round trip: %+v", recs)
	}
}

func TestChromeTraceOverlay(t *testing.T) {
	p := prof.New()
	p.SetEnabled(true)
	tr := p.NewTrack(prof.GroupRank, "rank0")
	a := New(1)
	a.Enable()
	if err := a.Register(1, p.Epoch(), true); err != nil {
		t.Fatal(err)
	}
	start := time.Since(p.Epoch()).Nanoseconds()
	sp := tr.Begin("STEP")
	time.Sleep(time.Millisecond)
	sp.End()
	end := time.Since(p.Epoch()).Nanoseconds()
	a.Deposit(Deposit{Rank: 0, Step: 1, StartNs: start, EndNs: end, Track: tr})

	var sb strings.Builder
	if err := a.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"critical-path", "crit:rank0", "STEP"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %q", want)
		}
	}
}
