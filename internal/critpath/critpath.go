// Package critpath is the cross-rank wait-state and critical-path analyzer
// in the spirit of Scalasca/Vampir, layered on internal/comm's event trace
// and internal/prof's call-path spans. Per analyzed step it matches message
// edges across ranks, classifies waits (late-sender, late-receiver,
// wait-at-collective with a root-cause rank), extracts the step's
// cross-rank critical path by walking backward from the last-finishing
// rank, and attributes critical-path time to profiler call-path regions
// and pool worker tracks — answering "which rank made this step slow, and
// who waited on whom" (see DESIGN.md, internal/critpath).
//
// One Analyzer is shared by every rank of a run (the cmd layer creates it
// before RunDecomposed, like the shared profiler). Ranks deposit their
// drained traces at the end of a due step; the last depositor analyzes and
// publishes, the others wait — a barrier that also guarantees the
// subscribed store has appended before any rank proceeds.
package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/prof"
)

// Analyzer owns the analysis state shared across ranks.
type Analyzer struct {
	every int

	enabled atomic.Bool
	// usesInternal marks that at least one rank records blame spans on the
	// analyzer's own profiler (the run had none of its own); the internal
	// profiler is then enabled only for due steps so disarmed steps pay
	// two atomic loads per span, nothing more.
	usesInternal atomic.Bool

	internal *prof.Profiler

	mu        sync.Mutex
	cond      *sync.Cond
	ranks     int
	epoch     time.Time
	epochSet  bool
	deposits  map[int]*Deposit
	doneStep  int
	latest    *Record
	subs      []func(Record)
	reg       *obs.Registry
	extProf   *prof.Profiler // adopted from deposited tracks, for export
	profOff   int64          // analyzerNs - profOff = profNs
	overlayOK bool
	abortedFn func() bool // run-abort check for the deposit barrier

	// Chrome-trace overlay: one synthetic track accumulating the critical
	// path of every analyzed step, on the profiler clock.
	ovNodes  []prof.PathNode
	ovIdx    map[string]int32
	ovEvents []prof.Event
}

// New creates a disabled analyzer that reduces every `every` steps (min 1).
// Enable arms it; the per-step cost while disabled is one atomic load.
func New(every int) *Analyzer {
	if every < 1 {
		every = 1
	}
	a := &Analyzer{
		every:    every,
		ranks:    1,
		epoch:    time.Now(),
		deposits: map[int]*Deposit{},
		internal: prof.New(),
		ovNodes:  []prof.PathNode{{Name: "", Parent: -1}},
		ovIdx:    map[string]int32{},
	}
	a.internal.SetEnabled(false)
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Every returns the analysis cadence in steps.
func (a *Analyzer) Every() int { return a.every }

// Enable/Disable toggle the analyzer; Due gates on the enabled flag, the
// one atomic load the step loop pays when the analyzer is off.
func (a *Analyzer) Enable()       { a.enabled.Store(true) }
func (a *Analyzer) Disable()      { a.enabled.Store(false) }
func (a *Analyzer) Enabled() bool { return a.enabled.Load() }

// Due reports whether the analyzer collects the given (completed) step.
func (a *Analyzer) Due(step int) bool {
	return a.enabled.Load() && step > 0 && step%a.every == 0
}

// Register declares the number of ranks that will deposit and, on
// decomposed runs, adopts the comm world's clock as the analyzer clock so
// deposits and comm events share a timebase. Every rank calls it once at
// install; the first call wins, later calls must agree on the rank count.
func (a *Analyzer) Register(ranks int, commEpoch time.Time, hasComm bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.epochSet {
		if a.ranks != ranks {
			return fmt.Errorf("critpath: analyzer registered for %d ranks, rank count %d disagrees", a.ranks, ranks)
		}
		return nil
	}
	a.ranks = ranks
	if hasComm {
		a.epoch = commEpoch
	}
	a.epochSet = true
	return nil
}

// NowNs returns the current time on the analyzer clock (the comm world
// clock on decomposed runs).
func (a *Analyzer) NowNs() int64 {
	a.mu.Lock()
	epoch := a.epoch
	a.mu.Unlock()
	return time.Since(epoch).Nanoseconds()
}

// InternalRankTrack creates a rank track on the analyzer's internal
// profiler, for runs that carry no profiler of their own: blame needs
// call-path spans. The internal profiler is enabled only while a due step
// is in flight.
func (a *Analyzer) InternalRankTrack(rank int) *prof.Track {
	a.usesInternal.Store(true)
	return a.internal.NewTrack(prof.GroupRank, fmt.Sprintf("rank%d", rank))
}

// ArmStep opens a due step's collection window: when blame spans come from
// the internal profiler, recording turns on for the step.
func (a *Analyzer) ArmStep() {
	if a.usesInternal.Load() {
		a.internal.SetEnabled(true)
	}
}

// BindAbort hooks the deposit barrier into a run-abort mechanism (the
// comm world's): aborted reports whether the run has aborted, register
// arranges a wake-up call when it does. Without the binding, a rank parked
// in the barrier while a peer dies would sleep forever.
func (a *Analyzer) BindAbort(register func(func()), aborted func() bool) {
	a.mu.Lock()
	if a.abortedFn != nil {
		a.mu.Unlock()
		return
	}
	a.abortedFn = aborted
	a.mu.Unlock()
	register(func() {
		a.mu.Lock()
		a.cond.Broadcast()
		a.mu.Unlock()
	})
}

// Subscribe registers a callback invoked once per analyzed step, on the
// depositing goroutine that completed the step's barrier.
func (a *Analyzer) Subscribe(fn func(Record)) {
	a.mu.Lock()
	a.subs = append(a.subs, fn)
	a.mu.Unlock()
}

// AttachMetrics directs the critpath gauges at a registry; they appear in
// /metrics.prom as critpath_* gauges.
func (a *Analyzer) AttachMetrics(reg *obs.Registry) {
	a.mu.Lock()
	a.reg = reg
	a.mu.Unlock()
}

// Latest returns the most recent record (nil before the first analysis).
func (a *Analyzer) Latest() *Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.latest
}

// Deposit hands one rank's step trace to the analyzer and blocks until the
// step is analyzed and published: the last rank to deposit runs the
// analysis, so the call doubles as a step barrier and a happens-before
// edge on every subscriber (the rank-0 store has flushed before any rank
// resumes stepping).
func (a *Analyzer) Deposit(d Deposit) {
	a.mu.Lock()
	a.deposits[d.Rank] = &d
	if len(a.deposits) < a.ranks {
		for a.doneStep < d.Step {
			if a.abortedFn != nil && a.abortedFn() {
				a.mu.Unlock()
				panic("critpath: run aborted while rank waited for step analysis")
			}
			a.cond.Wait()
		}
		a.mu.Unlock()
		return
	}
	deps := make([]*Deposit, a.ranks)
	for r := range deps {
		deps[r] = a.deposits[r]
	}
	a.deposits = map[int]*Deposit{}

	// Adopt the profiler behind the deposited tracks (they all share one)
	// and compute the clock offset: analyzerNs - profOff = profNs.
	var p *prof.Profiler
	for _, dep := range deps {
		if p = dep.Track.Profiler(); p != nil {
			break
		}
	}
	if p != nil {
		a.extProf = p
		a.profOff = p.Epoch().Sub(a.epoch).Nanoseconds()
		a.overlayOK = true
	}
	rec := analyze(deps, a.profOff, a.workerTracks(p))
	if a.overlayOK {
		a.appendOverlay(deps, rec)
	}
	if a.usesInternal.Load() {
		a.internal.SetEnabled(false)
	}
	a.latest = &rec
	reg := a.reg
	subs := append(make([]func(Record), 0, len(a.subs)), a.subs...)
	a.mu.Unlock()

	if reg != nil {
		var ls, lr, cw int64
		for _, w := range rec.Waits {
			ls += w.LateSenderNs
			lr += w.LateRecvNs
			cw += w.CollNs
		}
		reg.Gauge("critpath.step").Set(float64(rec.Step))
		reg.Gauge("critpath.crit_rank").Set(float64(rec.CritRank))
		reg.Gauge("critpath.crit_share").Set(rec.CritShare)
		reg.Gauge("critpath.lost_frac").Set(rec.LostFrac)
		reg.Gauge("critpath.edges").Set(float64(rec.Edges))
		reg.Gauge("critpath.match_completeness").Set(rec.MatchCompleteness)
		reg.Gauge("critpath.late_sender_ns").Set(float64(ls))
		reg.Gauge("critpath.late_recv_ns").Set(float64(lr))
		reg.Gauge("critpath.coll_wait_ns").Set(float64(cw))
	}
	for _, fn := range subs {
		fn(rec)
	}

	a.mu.Lock()
	a.doneStep = rec.Step
	a.cond.Broadcast()
	a.mu.Unlock()
}

// workerTracks lists the adopted profiler's pool worker tracks (blame's
// worker-overlap column); nil when blame runs on the internal profiler,
// which never attaches pools (overhead).
func (a *Analyzer) workerTracks(p *prof.Profiler) []*prof.Track {
	if p == nil || p == a.internal {
		return nil
	}
	var out []*prof.Track
	for _, t := range p.Tracks() {
		if t.Group() == prof.GroupWorker {
			out = append(out, t)
		}
	}
	return out
}

// appendOverlay adds the record's critical-path segments to the synthetic
// Chrome-trace overlay track, on the profiler clock. Called under a.mu.
func (a *Analyzer) appendOverlay(deps []*Deposit, rec Record) {
	lo := deps[0].StartNs
	for _, d := range deps[1:] {
		if d.StartNs < lo {
			lo = d.StartNs
		}
	}
	for _, s := range rec.Path {
		name := fmt.Sprintf("crit:rank%d", s.Rank)
		id, ok := a.ovIdx[name]
		if !ok {
			id = int32(len(a.ovNodes))
			a.ovNodes = append(a.ovNodes, prof.PathNode{Name: name, Parent: 0})
			a.ovIdx[name] = id
		}
		// Path segments are rebased to the step window; undo that and shift
		// onto the profiler clock so the overlay aligns with real spans.
		start := s.StartNs + lo - a.profOff
		a.ovEvents = append(a.ovEvents, prof.Event{
			Path: id, Start: start, Dur: s.EndNs - s.StartNs,
			Args: map[string]string{
				"step": fmt.Sprint(rec.Step),
				"via":  s.Via,
			},
		})
	}
}

// WriteChromeTrace exports the blame profiler's timeline with the
// critical-path overlay as an extra process group, loadable in
// chrome://tracing or Perfetto — the critical path renders as a dedicated
// lane of crit:rankN spans above the real call-path rows.
func (a *Analyzer) WriteChromeTrace(w io.Writer) error {
	a.mu.Lock()
	p := a.extProf
	overlay := prof.TrackSnapshot{Group: "critpath", Name: "critical-path", ID: 1 << 20}
	overlay.Nodes = append(overlay.Nodes, a.ovNodes...)
	overlay.Events = append(overlay.Events, a.ovEvents...)
	a.mu.Unlock()
	var snaps []prof.TrackSnapshot
	if p != nil {
		snaps = p.Snapshot()
	}
	snaps = append(snaps, overlay)
	return prof.WriteChromeTraceFrom(w, snaps)
}

// Handler serves the latest record as JSON — the live GET /critpath
// endpoint. Before the first analysis it serves an empty object.
func (a *Analyzer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		rec := a.Latest()
		if rec == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rec)
	})
}
