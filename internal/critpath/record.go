package critpath

import (
	"fmt"
	"sort"
	"strings"
)

// Wait-state classes, following the Scalasca taxonomy adapted to buffered
// sends (see DESIGN.md): a late sender blocks the receiver's Wait; a late
// receiver leaves the message idling in the mailbox (the sender never
// blocks under buffered semantics, so the idle time is charged to the
// receiving rank as arrival lateness, not as blocked time); collective
// waits are charged against the root-cause rank, the last to arrive.
const (
	WaitLateSender   = "late_sender"
	WaitLateReceiver = "late_receiver"
	WaitCollective   = "collective"
	WaitNone         = "none"
)

// RankOps is the per-rank operation census of one analyzed step — part of
// the deterministic record structure (identical across worker counts).
type RankOps struct {
	Rank        int `json:"rank"`
	Sends       int `json:"sends"`
	Recvs       int `json:"recvs"`
	Collectives int `json:"collectives"`
}

// Segment is one hop of the cross-rank critical path: rank owned the
// global progress frontier from StartNs to EndNs (relative to the step
// window start). Via names the edge that led *into* the segment: "start"
// (the step began here), "recv" (control arrived with a message this rank
// had been late to send), or "collective" (this rank was the root cause of
// a collective wait).
type Segment struct {
	Rank    int    `json:"rank"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns"`
	Via     string `json:"via"`
}

// RankWait aggregates one rank's classified wait states for the step.
type RankWait struct {
	Rank int `json:"rank"`
	// LateSenderNs is time blocked in Wait because the matching message was
	// posted after the wait began; LateSenderPeer is the peer charged with
	// most of it (-1 when none).
	LateSenderNs   int64 `json:"late_sender_ns"`
	LateSenderPeer int   `json:"late_sender_peer"`
	// LateRecvNs is mailbox idle time: messages that arrived before this
	// rank posted its wait (this rank was the late party).
	LateRecvNs int64 `json:"late_recv_ns"`
	// CollNs is time blocked in collectives before the root-cause rank
	// arrived; CollRoot is the rank charged with most of it (-1 when none).
	CollNs   int64 `json:"coll_ns"`
	CollRoot int   `json:"coll_root"`
	// BlockedNs is the rank's total blocked time (late-sender + collective);
	// BlockedFrac is that relative to the rank's own step span.
	BlockedNs   int64   `json:"blocked_ns"`
	BlockedFrac float64 `json:"blocked_frac"`
}

// RegionBlame charges critical-path time to one prof call path.
type RegionBlame struct {
	Path string  `json:"path"`
	Ns   int64   `json:"ns"`
	Frac float64 `json:"frac"`
}

// WorkerShare is a pool worker track's busy overlap with the critical
// path, aggregated by track name across pools.
type WorkerShare struct {
	Track  string `json:"track"`
	BusyNs int64  `json:"busy_ns"`
}

// Record is one analyzed step. The structural fields (Ranks, the operation
// census, Edges, MatchCompleteness) are deterministic across worker counts
// and runs; everything timing-derived (the path, waits, blame) is not.
type Record struct {
	Step  int     `json:"step"`
	Time  float64 `json:"time"`
	Ranks int     `json:"ranks"`

	// Deterministic structure.
	Sends       int `json:"sends"`
	Recvs       int `json:"recvs"`
	Collectives int `json:"collectives"`
	Edges       int `json:"edges"` // matched send→recv message edges
	// MatchCompleteness is the fraction of receive edges whose posting send
	// event is present in the step's trace (messages from untraced server
	// threads or a previous step lower it below 1).
	MatchCompleteness float64   `json:"match_completeness"`
	RankOps           []RankOps `json:"rank_ops"`

	// Timing-derived analysis.
	StepSpanNs   int64         `json:"step_span_ns"`
	CritRank     int           `json:"crit_rank"`
	CritShare    float64       `json:"crit_share"`
	Path         []Segment     `json:"path"`
	Waits        []RankWait    `json:"waits"`
	DominantWait string        `json:"dominant_wait"`
	LostFrac     float64       `json:"lost_frac"`
	Blame        []RegionBlame `json:"blame,omitempty"`
	UntrackedNs  int64         `json:"untracked_ns"`
	Workers      []WorkerShare `json:"workers,omitempty"`
	Verdict      string        `json:"verdict"`
}

// verdict renders the one-line human summary ("step 142: critical path ran
// through rank 2's chemistry tiles; ranks 0,1,3 lost 38% of the step in
// late-sender waits on rank 2").
func (r *Record) verdict() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %d: critical path ran through rank %d (%.0f%% of %.2f ms)",
		r.Step, r.CritRank, 100*r.CritShare, float64(r.StepSpanNs)/1e6)
	if len(r.Blame) > 0 {
		fmt.Fprintf(&b, ", mostly in %s", r.Blame[0].Path)
	}
	if r.DominantWait != WaitNone && len(r.Waits) > 0 {
		var losers []string
		var blamed = -1
		switch r.DominantWait {
		case WaitLateSender:
			counts := map[int]int64{}
			for _, w := range r.Waits {
				if w.LateSenderNs > 0 {
					losers = append(losers, fmt.Sprint(w.Rank))
					if w.LateSenderPeer >= 0 {
						counts[w.LateSenderPeer] += w.LateSenderNs
					}
				}
			}
			for p, ns := range counts {
				if blamed < 0 || ns > counts[blamed] || (ns == counts[blamed] && p < blamed) {
					blamed = p
				}
			}
			if len(losers) > 0 {
				fmt.Fprintf(&b, "; ranks %s lost %.0f%% of the step in late-sender waits",
					strings.Join(losers, ","), 100*r.LostFrac)
				if blamed >= 0 {
					fmt.Fprintf(&b, " on rank %d", blamed)
				}
			}
		case WaitCollective:
			counts := map[int]int64{}
			for _, w := range r.Waits {
				if w.CollNs > 0 && w.CollRoot >= 0 {
					counts[w.CollRoot] += w.CollNs
				}
			}
			for p, ns := range counts {
				if blamed < 0 || ns > counts[blamed] || (ns == counts[blamed] && p < blamed) {
					blamed = p
				}
			}
			fmt.Fprintf(&b, "; %.0f%% of the step lost waiting at collectives", 100*r.LostFrac)
			if blamed >= 0 {
				fmt.Fprintf(&b, " rooted at rank %d", blamed)
			}
		case WaitLateReceiver:
			fmt.Fprintf(&b, "; messages idled in mailboxes waiting for late receivers")
		}
	}
	return b.String()
}

// sortBlame orders blame entries by descending time, ties by path.
func sortBlame(bl []RegionBlame) {
	sort.Slice(bl, func(i, j int) bool {
		if bl[i].Ns != bl[j].Ns {
			return bl[i].Ns > bl[j].Ns
		}
		return bl[i].Path < bl[j].Path
	})
}
