package critpath

import (
	"sort"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/prof"
)

// waitEps is the classification threshold: blocked intervals shorter than
// this are scheduling noise, not wait states, and never become critical-
// path jump edges.
const waitEps = int64(50_000) // 50 µs

// Deposit is one rank's view of an analyzed step: the step window on the
// analyzer clock, the drained comm event trace (same clock — the comm
// world clock is adopted as the analyzer clock on decomposed runs), and
// the rank's profiler track for blame attribution (nil without one).
type Deposit struct {
	Rank    int
	Step    int
	Time    float64
	StartNs int64
	EndNs   int64
	PtP     []comm.PtPEvent
	Coll    []comm.CollEvent
	Track   *prof.Track
}

// sendKey identifies a message edge: the sender's envelope as seen by both
// sides (the receiver learns PostNs through the piggybacked envelope).
type sendKey struct {
	src, dst, tag int
	postNs        int64
}

// jump is a candidate critical-path edge on one rank: the rank resumed
// progress at resumeNs after blocking since blockNs, because rank from
// released it (a late sender's post, or a collective root's arrival) at
// fromNs.
type jump struct {
	resumeNs int64
	blockNs  int64
	from     int
	fromNs   int64
	via      string
}

// collGroup is one collective matched across ranks by sequence number.
type collGroup struct {
	enter []int64 // by rank, -1 when the rank's event is missing
	exit  []int64
}

// analyze matches the step's message edges, classifies wait states,
// extracts the cross-rank critical path and attributes it to call-path
// regions. deps is indexed by rank and fully populated.
func analyze(deps []*Deposit, profOffNs int64, workerTracks []*prof.Track) Record {
	n := len(deps)
	rec := Record{
		Step:  deps[0].Step,
		Time:  deps[0].Time,
		Ranks: n,
	}

	// --- Deterministic structure: census and edge matching. ---
	sends := map[sendKey]bool{}
	for r, d := range deps {
		ops := RankOps{Rank: r, Collectives: len(d.Coll)}
		for _, ev := range d.PtP {
			switch ev.Kind {
			case comm.KindSend:
				ops.Sends++
				sends[sendKey{src: r, dst: ev.Peer, tag: ev.Tag, postNs: ev.PostNs}] = true
			case comm.KindRecv:
				ops.Recvs++
			}
		}
		rec.Sends += ops.Sends
		rec.Recvs += ops.Recvs
		rec.Collectives += ops.Collectives
		rec.RankOps = append(rec.RankOps, ops)
	}
	matched := 0
	for r, d := range deps {
		for _, ev := range d.PtP {
			if ev.Kind != comm.KindRecv {
				continue
			}
			if sends[sendKey{src: ev.Peer, dst: r, tag: ev.Tag, postNs: ev.SendPostNs}] {
				matched++
			}
		}
	}
	rec.Edges = matched
	if rec.Recvs > 0 {
		rec.MatchCompleteness = float64(matched) / float64(rec.Recvs)
	} else {
		rec.MatchCompleteness = 1
	}

	// --- Step window. ---
	lo, hi := deps[0].StartNs, deps[0].EndNs
	for _, d := range deps[1:] {
		if d.StartNs < lo {
			lo = d.StartNs
		}
		if d.EndNs > hi {
			hi = d.EndNs
		}
	}
	rec.StepSpanNs = hi - lo

	// --- Collective matching across ranks by sequence number. ---
	groups := map[int]*collGroup{}
	for r, d := range deps {
		for _, ev := range d.Coll {
			g := groups[ev.Seq]
			if g == nil {
				g = &collGroup{enter: make([]int64, n), exit: make([]int64, n)}
				for i := range g.enter {
					g.enter[i], g.exit[i] = -1, -1
				}
				groups[ev.Seq] = g
			}
			g.enter[r], g.exit[r] = ev.EnterNs, ev.ExitNs
		}
	}

	// --- Wait-state classification and jump-edge collection. ---
	waits := make([]RankWait, n)
	jumps := make([][]jump, n)
	lsPeer := make([]map[int]int64, n)
	collRoot := make([]map[int]int64, n)
	for r := range waits {
		waits[r] = RankWait{Rank: r, LateSenderPeer: -1, CollRoot: -1}
		lsPeer[r] = map[int]int64{}
		collRoot[r] = map[int]int64{}
	}
	for r, d := range deps {
		for _, ev := range d.PtP {
			if ev.Kind != comm.KindRecv {
				continue
			}
			if ev.SendPostNs > ev.StartNs {
				// Late sender: the receiver blocked until the message was
				// posted.
				blocked := ev.DoneNs - ev.StartNs
				waits[r].LateSenderNs += blocked
				lsPeer[r][ev.Peer] += blocked
				if blocked > waitEps {
					jumps[r] = append(jumps[r], jump{
						resumeNs: ev.DoneNs, blockNs: ev.StartNs,
						from: ev.Peer, fromNs: ev.SendPostNs, via: "recv",
					})
				}
			} else {
				// Late receiver: the message idled in the mailbox.
				waits[r].LateRecvNs += ev.StartNs - ev.SendPostNs
			}
		}
	}
	for _, g := range groups {
		root, rootEnter := -1, int64(-1)
		for r := 0; r < n; r++ {
			if g.enter[r] > rootEnter { // ties resolve to the lowest rank
				root, rootEnter = r, g.enter[r]
			}
		}
		if root < 0 {
			continue
		}
		for r := 0; r < n; r++ {
			if r == root || g.enter[r] < 0 {
				continue
			}
			blocked := rootEnter - g.enter[r]
			if blocked <= 0 {
				continue
			}
			waits[r].CollNs += blocked
			collRoot[r][root] += blocked
			if blocked > waitEps && g.exit[r] >= 0 {
				jumps[r] = append(jumps[r], jump{
					resumeNs: g.exit[r], blockNs: g.enter[r],
					from: root, fromNs: rootEnter, via: "collective",
				})
			}
		}
	}
	var totLS, totLR, totColl int64
	for r := range waits {
		waits[r].LateSenderPeer = argmaxBlame(lsPeer[r])
		waits[r].CollRoot = argmaxBlame(collRoot[r])
		waits[r].BlockedNs = waits[r].LateSenderNs + waits[r].CollNs
		if span := deps[r].EndNs - deps[r].StartNs; span > 0 {
			waits[r].BlockedFrac = float64(waits[r].BlockedNs) / float64(span)
		}
		totLS += waits[r].LateSenderNs
		totLR += waits[r].LateRecvNs
		totColl += waits[r].CollNs
	}
	rec.Waits = waits
	switch {
	case totLS == 0 && totLR == 0 && totColl == 0:
		rec.DominantWait = WaitNone
	case totLS >= totLR && totLS >= totColl:
		rec.DominantWait = WaitLateSender
	case totColl >= totLR:
		rec.DominantWait = WaitCollective
	default:
		rec.DominantWait = WaitLateReceiver
	}
	if rec.StepSpanNs > 0 {
		rec.LostFrac = float64(totLS+totColl) / float64(int64(n)*rec.StepSpanNs)
	}

	// --- Critical-path extraction: walk backward from the last-finishing
	// rank, hopping to the releasing rank at every blocking interval. The
	// wait interval itself is excluded from the path (it is lost time, not
	// progress). ---
	for r := range jumps {
		sort.Slice(jumps[r], func(i, j int) bool { return jumps[r][i].resumeNs < jumps[r][j].resumeNs })
	}
	cur, curT := 0, deps[0].EndNs
	for r := 1; r < n; r++ {
		if deps[r].EndNs > curT {
			cur, curT = r, deps[r].EndNs
		}
	}
	var rev []Segment
	via := "end"
	maxHops := rec.Recvs + rec.Collectives*n + n + 1
	for hop := 0; hop < maxHops; hop++ {
		// Latest jump on cur that resumed at or before curT.
		js := jumps[cur]
		idx := sort.Search(len(js), func(i int) bool { return js[i].resumeNs > curT }) - 1
		segStart := deps[cur].StartNs
		if idx >= 0 && js[idx].resumeNs > segStart {
			segStart = js[idx].resumeNs
		}
		if segStart > curT {
			segStart = curT
		}
		rev = append(rev, Segment{Rank: cur, StartNs: segStart, EndNs: curT, Via: via})
		if idx < 0 || js[idx].resumeNs <= deps[cur].StartNs {
			rev[len(rev)-1].Via = "start"
			break
		}
		j := js[idx]
		next := j.fromNs // hop to the releasing rank at its release time
		if next >= curT {
			break // clock anomaly: refuse to loop
		}
		cur, curT, via = j.from, next, j.via
		if curT < deps[cur].StartNs {
			curT = deps[cur].StartNs
		}
		if curT <= deps[cur].StartNs {
			rev = append(rev, Segment{Rank: cur, StartNs: deps[cur].StartNs, EndNs: curT, Via: "start"})
			break
		}
	}
	// Chronological order, merged over adjacent same-rank hops, rebased to
	// the step window start.
	path := make([]Segment, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		if k := len(path); k > 0 && path[k-1].Rank == s.Rank && s.StartNs <= path[k-1].EndNs {
			if s.EndNs > path[k-1].EndNs {
				path[k-1].EndNs = s.EndNs
			}
			continue
		}
		path = append(path, s)
	}
	perRank := make([]int64, n)
	var pathTotal int64
	for i := range path {
		d := path[i].EndNs - path[i].StartNs
		perRank[path[i].Rank] += d
		pathTotal += d
	}
	rec.CritRank = 0
	for r := 1; r < n; r++ {
		if perRank[r] > perRank[rec.CritRank] {
			rec.CritRank = r
		}
	}
	if pathTotal > 0 {
		rec.CritShare = float64(perRank[rec.CritRank]) / float64(pathTotal)
	}

	// --- Blame: sweep each path segment's window over the owning rank's
	// call-path spans; exclusive time per path node, untracked remainder.
	// Pool worker tracks contribute their busy overlap with the path. ---
	blame := map[string]int64{}
	workers := map[string]int64{}
	for _, s := range path {
		d := deps[s.Rank]
		if d.Track != nil {
			pl, ph := s.StartNs-profOffNs, s.EndNs-profOffNs
			snap := d.Track.SnapshotRange(pl, ph)
			covered := blameWindow(snap, pl, ph, blame)
			if un := (ph - pl) - covered; un > 0 {
				rec.UntrackedNs += un
			}
		} else {
			rec.UntrackedNs += s.EndNs - s.StartNs
		}
		for _, wt := range workerTracks {
			pl, ph := s.StartNs-profOffNs, s.EndNs-profOffNs
			snap := wt.SnapshotRange(pl, ph)
			var busy int64
			for _, ev := range snap.Events {
				busy += clip(ev.Start, ev.Start+ev.Dur, pl, ph)
			}
			if busy > 0 {
				workers[wt.Name()] += busy
			}
		}
	}
	for p, ns := range blame {
		fr := 0.0
		if pathTotal > 0 {
			fr = float64(ns) / float64(pathTotal)
		}
		rec.Blame = append(rec.Blame, RegionBlame{Path: p, Ns: ns, Frac: fr})
	}
	sortBlame(rec.Blame)
	if len(rec.Blame) > 12 {
		rec.Blame = rec.Blame[:12]
	}
	for name, ns := range workers {
		rec.Workers = append(rec.Workers, WorkerShare{Track: name, BusyNs: ns})
	}
	sort.Slice(rec.Workers, func(i, j int) bool { return rec.Workers[i].Track < rec.Workers[j].Track })

	// Rebase path times to the window start for readability.
	for i := range path {
		path[i].StartNs -= lo
		path[i].EndNs -= lo
	}
	rec.Path = path
	rec.Verdict = rec.verdict()
	return rec
}

// argmaxBlame picks the peer with the largest charged time, ties to the
// lowest rank; -1 when the map is empty.
func argmaxBlame(m map[int]int64) int {
	best, bestNs := -1, int64(-1)
	for p, ns := range m {
		if ns > bestNs || (ns == bestNs && p < best) {
			best, bestNs = p, ns
		}
	}
	return best
}

func clip(s, e, lo, hi int64) int64 {
	if s < lo {
		s = lo
	}
	if e > hi {
		e = hi
	}
	if e > s {
		return e - s
	}
	return 0
}

// blameWindow accumulates per-call-path exclusive time over [lo, hi) into
// acc and returns the covered time (the window's top-level span coverage).
func blameWindow(snap prof.TrackSnapshot, lo, hi int64, acc map[string]int64) int64 {
	if len(snap.Nodes) == 0 {
		return 0
	}
	incl := make([]int64, len(snap.Nodes))
	for _, ev := range snap.Events {
		incl[ev.Path] += clip(ev.Start, ev.Start+ev.Dur, lo, hi)
	}
	childSum := make([]int64, len(snap.Nodes))
	var covered int64
	for i := 1; i < len(snap.Nodes); i++ {
		p := snap.Nodes[i].Parent
		if p > 0 {
			childSum[p] += incl[i]
		} else {
			covered += incl[i] // top-level span, child of the root
		}
	}
	for i := 1; i < len(snap.Nodes); i++ {
		excl := incl[i] - childSum[i]
		if excl <= 0 {
			continue
		}
		acc[pathString(snap.Nodes, int32(i))] += excl
	}
	return covered
}

// pathString renders a node's full call path ("STEP/RHS/MPI_WAIT").
func pathString(nodes []prof.PathNode, id int32) string {
	var parts []string
	for id > 0 {
		parts = append(parts, nodes[id].Name)
		id = nodes[id].Parent
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	var b []byte
	for i, p := range parts {
		if i > 0 {
			b = append(b, '/')
		}
		b = append(b, p...)
	}
	return string(b)
}
