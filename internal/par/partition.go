package par

import "math"

// Partition is the deterministic tile decomposition of one sweep box: the
// unit of scheduling for Run/RunFrozen/RunReduce and the definition of the
// reduction-slot order. It is a pure function of (box, frozen axis, weight
// profile, budget) — never of the worker count or any wall-clock input — so
// the tile set, the tile order and with them every ordered reduction are
// bitwise reproducible across pool sizes and runs.
//
// Unweighted (nil profile) the partition is the historical one-plane split
// along the shape-chosen axis. A per-plane weight profile turns it into a
// cost-weighted decomposition: expensive planes are split along a secondary
// axis and cheap neighbouring planes are merged into one tile, targeting
// roughly equal planned work per tile.
type Partition struct {
	r  Range
	ax int // one-plane split axis (unweighted path); -1 = single tile
	n  int // tile count

	tiles []Tile    // explicit tiles (weighted path only)
	w     []float64 // planned per-tile weight (weighted path only)
}

// hotTol is the fractional overshoot tolerated before a plane is split or a
// merge run is flushed: budgets derive from floating-point means, so an
// exactly-uniform profile must not split (or refuse to merge) over a
// rounding ulp. 1/8 is far above any accumulated rounding error and far
// below a meaningful imbalance.
const hotTol = 1.125

// NewPartition computes the deterministic decomposition of r with one axis
// optionally frozen (-1 for none). weights, when non-nil, is the per-plane
// work profile along the split axis (length must equal the axis extent;
// profiles of the wrong length, with non-finite or negative entries, or
// summing to zero fall back to the unweighted split). budget, when positive,
// is an externally imposed target weight per tile — the solver passes the
// global mean plane weight so ranks with little work merge their cheap
// planes into few tiles instead of emitting many near-empty ones; the
// effective per-tile budget is never below the local mean, so a uniform
// profile always degrades to the one-plane split regardless of budget.
func NewPartition(r Range, frozen int, weights []float64, budget float64) *Partition {
	p := &Partition{r: r, ax: -1, n: 1}
	if r.Empty() {
		p.n = 0
		return p
	}
	p.ax = splitAxis(r, frozen)
	if p.ax >= 0 {
		p.n = r.Ext(p.ax)
	}
	ext := p.n
	if weights == nil || p.ax < 0 || len(weights) != ext {
		return p
	}
	var total float64
	for _, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return p
		}
		total += w
	}
	if total <= 0 {
		return p
	}
	mean := total / float64(ext)
	// The per-tile work target: at least the local mean plane weight (so a
	// uniform profile keeps its plane-per-tile split), raised to the caller's
	// global budget when that is larger.
	b := mean
	if budget > b {
		b = budget
	}
	// Secondary axis for splitting hot planes: the largest remaining
	// splittable extent.
	sax, sext := -1, 1
	for _, a := range [3]int{2, 1, 0} {
		if a == p.ax || a == frozen {
			continue
		}
		if e := r.Ext(a); e > sext {
			sax, sext = a, e
		}
	}
	hot := hotTol * b

	tiles := make([]Tile, 0, ext)
	tw := make([]float64, 0, ext)
	runLo := r.Lo[p.ax]
	var cum float64
	flush := func(hi int) {
		if hi <= runLo {
			return
		}
		t := Tile{Range: r, Index: len(tiles)}
		t.Lo[p.ax], t.Hi[p.ax] = runLo, hi
		tiles = append(tiles, t)
		tw = append(tw, cum)
		runLo, cum = hi, 0
	}
	for pi := 0; pi < ext; pi++ {
		plane := r.Lo[p.ax] + pi
		w := weights[pi]
		if w > hot && sax >= 0 {
			// Hot plane: close the pending merge run, then cut the plane
			// into roughly budget-sized spans along the secondary axis.
			flush(plane)
			m := int(math.Ceil(w / b))
			if m > sext {
				m = sext
			}
			slo := r.Lo[sax]
			for s := 0; s < m; s++ {
				a, bnd := slo+s*sext/m, slo+(s+1)*sext/m
				t := Tile{Range: r, Index: len(tiles)}
				t.Lo[p.ax], t.Hi[p.ax] = plane, plane+1
				t.Lo[sax], t.Hi[sax] = a, bnd
				tiles = append(tiles, t)
				tw = append(tw, w*float64(bnd-a)/float64(sext))
			}
			runLo = plane + 1
			continue
		}
		if cum > 0 && cum+w > hot {
			flush(plane)
		}
		cum += w
	}
	flush(r.Hi[p.ax])
	p.tiles, p.w, p.n = tiles, tw, len(tiles)
	return p
}

// Len returns the tile count — the length every ordered reduction over this
// partition uses.
func (p *Partition) Len() int { return p.n }

// Weighted reports whether a weight profile shaped the decomposition.
func (p *Partition) Weighted() bool { return p.tiles != nil }

// Tile returns tile i in deterministic index order (Tile(i).Index == i).
func (p *Partition) Tile(i int) Tile {
	if p.tiles != nil {
		return p.tiles[i]
	}
	return tileOf(p.r, p.ax, i)
}

// Tiles returns the explicit tile list in index order (materialising it on
// the unweighted path).
func (p *Partition) Tiles() []Tile {
	if p.tiles != nil {
		return p.tiles
	}
	out := make([]Tile, p.n)
	for i := range out {
		out[i] = tileOf(p.r, p.ax, i)
	}
	return out
}

// Weight returns tile i's planned weight: the profile mass it covers on the
// weighted path, its cell count otherwise.
func (p *Partition) Weight(i int) float64 {
	if p.w != nil {
		return p.w[i]
	}
	return float64(p.Cells(i))
}

// Cells returns tile i's cell count.
func (p *Partition) Cells(i int) int {
	t := p.Tile(i)
	return t.Ext(0) * t.Ext(1) * t.Ext(2)
}
