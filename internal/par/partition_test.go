package par

import (
	"math/rand"
	"sync"
	"testing"
)

// coverCheck asserts the partition's tiles cover r exactly: every cell in
// exactly one tile, Tile(i).Index == i, and weights non-negative.
func coverCheck(t *testing.T, r Range, p *Partition) {
	t.Helper()
	nx, ny, nz := r.Ext(0), r.Ext(1), r.Ext(2)
	seen := make([]int, nx*ny*nz)
	for i := 0; i < p.Len(); i++ {
		tl := p.Tile(i)
		if tl.Index != i {
			t.Fatalf("tile %d has Index %d", i, tl.Index)
		}
		if p.Weight(i) < 0 {
			t.Fatalf("tile %d has negative planned weight %g", i, p.Weight(i))
		}
		for k := tl.Lo[2]; k < tl.Hi[2]; k++ {
			for j := tl.Lo[1]; j < tl.Hi[1]; j++ {
				for ii := tl.Lo[0]; ii < tl.Hi[0]; ii++ {
					if ii < r.Lo[0] || ii >= r.Hi[0] || j < r.Lo[1] || j >= r.Hi[1] ||
						k < r.Lo[2] || k >= r.Hi[2] {
						t.Fatalf("tile %d cell (%d,%d,%d) outside box %v", i, ii, j, k, r)
					}
					idx := ((k-r.Lo[2])*ny+(j-r.Lo[1]))*nx + (ii - r.Lo[0])
					seen[idx]++
				}
			}
		}
	}
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("cell %d covered %d times", idx, c)
		}
	}
}

// TestPartitionExactCover fuzzes boxes, profiles and budgets: weighted
// decompositions must tile the box with no gaps and no overlaps.
func TestPartitionExactCover(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		r := Box(
			[3]int{rng.Intn(4), rng.Intn(4), rng.Intn(4)},
			[3]int{0, 0, 0},
		)
		for a := 0; a < 3; a++ {
			r.Hi[a] = r.Lo[a] + 1 + rng.Intn(24)
		}
		frozen := rng.Intn(4) - 1 // -1..2
		ax := splitAxis(r, frozen)
		if ax < 0 {
			continue
		}
		w := make([]float64, r.Ext(ax))
		for i := range w {
			switch rng.Intn(4) {
			case 0:
				w[i] = 0
			case 1:
				w[i] = rng.Float64()
			default:
				w[i] = rng.Float64() * float64(rng.Intn(200))
			}
		}
		budget := 0.0
		if rng.Intn(2) == 0 {
			budget = rng.Float64() * 300
		}
		p := NewPartition(r, frozen, w, budget)
		coverCheck(t, r, p)
		// Planned tile weights must conserve the profile mass.
		var total, planned float64
		for _, v := range w {
			total += v
		}
		for i := 0; i < p.Len(); i++ {
			planned += p.Weight(i)
		}
		if total > 0 {
			if rel := (planned - total) / total; rel > 1e-9 || rel < -1e-9 {
				t.Fatalf("trial %d: planned weight %g != profile total %g", trial, planned, total)
			}
		}
	}
}

// TestPartitionUniformDegradesToPlanes pins the compatibility contract: a
// uniform profile (any positive constant, any budget at or below the plane
// weight) reproduces the one-plane split exactly, so enabling weights with
// nothing learned changes nothing.
func TestPartitionUniformDegradesToPlanes(t *testing.T) {
	boxes := []Range{
		Interior(32, 24, 1),
		Interior(7, 5, 3),
		Interior(2, 2, 1),
		Interior(1, 1, 16),
		Box([3]int{3, 1, 2}, [3]int{19, 9, 4}),
	}
	consts := []float64{1, 16, 0.37, 1e6}
	for _, r := range boxes {
		ax := splitAxis(r, -1)
		if ax < 0 {
			continue
		}
		for _, c := range consts {
			w := make([]float64, r.Ext(ax))
			for i := range w {
				w[i] = c
			}
			for _, budget := range []float64{0, c / 2, c} {
				p := NewPartition(r, -1, w, budget)
				if p.Len() != r.Ext(ax) {
					t.Fatalf("box %v const %g budget %g: %d tiles, want %d planes",
						r, c, budget, p.Len(), r.Ext(ax))
				}
				for i := 0; i < p.Len(); i++ {
					if p.Tile(i) != tileOf(r, ax, i) {
						t.Fatalf("box %v const %g: tile %d = %+v, want plane %+v",
							r, c, i, p.Tile(i), tileOf(r, ax, i))
					}
				}
			}
		}
	}
}

// TestPartitionWorkerCountInvariance runs a weighted sweep on 1-worker and
// 4-worker plans: the executed tile sets, the reduction order and the
// reduced sum must be identical — the partition is a pure function of (box,
// weights), never of the pool.
func TestPartitionWorkerCountInvariance(t *testing.T) {
	r := Interior(24, 16, 1)
	w := make([]float64, 24)
	for i := range w {
		w[i] = float64(1 + (i*i)%37)
	}
	w[7] = 400 // hot plane: forces a secondary-axis split
	type run struct {
		tiles []Tile
		sum   float64
	}
	exec := func(workers int) run {
		pl := NewPlan(NewPool(workers))
		defer pl.Pool().Close()
		pl.SetWeights("K", w, 0)
		var mu sync.Mutex
		var out run
		out.sum = pl.RunReduce("K", r, func(tl Tile, _ int) float64 {
			mu.Lock()
			out.tiles = append(out.tiles, tl)
			mu.Unlock()
			return float64(tl.Index) * 1.25
		})
		return out
	}
	a, b := exec(1), exec(4)
	if len(a.tiles) != len(b.tiles) {
		t.Fatalf("tile count differs: %d vs %d", len(a.tiles), len(b.tiles))
	}
	sortTiles(a.tiles)
	sortTiles(b.tiles)
	for i := range a.tiles {
		if a.tiles[i] != b.tiles[i] {
			t.Fatalf("tile %d differs: %+v vs %+v", i, a.tiles[i], b.tiles[i])
		}
	}
	if a.sum != b.sum {
		t.Fatalf("reduced sum differs: %v vs %v", a.sum, b.sum)
	}
	// The hot plane must actually have been split.
	split := false
	for _, tl := range a.tiles {
		if tl.Lo[0] == 7 && tl.Hi[0] == 8 && tl.Ext(1) < 16 {
			split = true
		}
	}
	if !split {
		t.Fatalf("hot plane 7 was not split: %+v", a.tiles)
	}
}

// TestPartitionBudgetMergesCheapPlanes pins the cross-rank sizing rule: a
// rank whose profile is far below the global budget merges its planes into
// few tiles instead of emitting one tiny tile per plane.
func TestPartitionBudgetMergesCheapPlanes(t *testing.T) {
	r := Interior(24, 16, 1)
	w := make([]float64, 24)
	for i := range w {
		w[i] = 16 // cold rank: proxy floor only
	}
	p := NewPartition(r, -1, w, 1000)
	if p.Len() > 1 {
		t.Fatalf("cold rank under global budget: %d tiles, want 1", p.Len())
	}
	coverCheck(t, r, p)
}

// sortTiles orders tiles by Index (stable across pool schedules).
func sortTiles(ts []Tile) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Index < ts[j-1].Index; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
