// Package par is the node-level parallel execution layer: a process-wide
// worker pool plus per-block execution plans that decompose a kernel's
// index space into plane tiles and run kernel closures over them.
//
// It reproduces, in Go, the node-level half of the paper's §3 optimisation
// story: once the dominant S3D kernels (reaction rates, diffusive fluxes,
// derivative sweeps) are restructured for locality, the remaining wall is
// keeping every core of the node busy on them. The pool is shared by all
// in-process ranks of a decomposed run, so a fixed worker budget is divided
// fairly across ranks exactly as OpenMP threads were divided across MPI
// ranks in the hybrid experiments of figure 3.
//
// Determinism contract: a Plan's tile decomposition depends only on the
// index-space shape, never on the worker count, and reductions accumulate
// per-tile partial sums into ordered slots that are combined in tile order.
// Solutions are therefore bitwise identical for any pool size, which keeps
// restart files, regression baselines and the paper-reproduction numbers
// stable whatever hardware the run lands on.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/perf"
	"github.com/s3dgo/s3d/internal/prof"
)

// task is one tile (or item) of a parallel region, handed to a worker.
type task struct {
	label string
	fn    func(t Tile, worker int)
	tile  Tile
	wg    *sync.WaitGroup
}

// Pool is a fixed set of worker goroutines executing kernel tiles. One
// process-wide pool (see Default) is shared by every in-process rank; tests
// and benchmarks may build dedicated pools with NewPool and must Close them.
//
// A Pool with a single worker never schedules: plans execute tiles inline
// on the calling goroutine, preserving the serial fast path.
type Pool struct {
	n      int
	tasks  chan task
	wg     sync.WaitGroup
	busy   atomic.Int64
	closed atomic.Bool

	// Metric handles are attached after construction (AttachMetrics) and
	// read by workers, hence the atomic pointers. Nil handles are skipped.
	busyG  atomic.Pointer[obs.Gauge]
	pendG  atomic.Pointer[obs.Gauge]
	tilesC atomic.Pointer[obs.Counter]

	// Per-worker profiler tracks (AttachProfiler): each worker records one
	// busy span per tile, labelled by the kernel, on its own timeline —
	// gaps between spans are idle time. Attached once per profiler.
	profTracks atomic.Pointer[[]*prof.Track]
	profMu     sync.Mutex
	profOwner  *prof.Profiler

	// Per-worker TAU-style timers: each worker accumulates the busy time of
	// every kernel label it executes into its own perf.Timers (the
	// pool-aware path of the figure-2 instrumentation). The per-worker
	// mutex lets PerfSnapshot read a consistent copy without quiescing the
	// pool.
	timers []*workerTimer
}

type workerTimer struct {
	mu sync.Mutex
	t  *perf.Timers
}

// NewPool builds a dedicated pool with n workers (n < 1 selects one).
// Callers own its lifetime and should Close it when done; the process-wide
// pool from Default needs no Close.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{n: n}
	p.timers = make([]*workerTimer, n)
	for i := range p.timers {
		p.timers[i] = &workerTimer{t: perf.NewTimers()}
	}
	if n > 1 {
		// Buffered so submitters stream tiles without a rendezvous per tile.
		p.tasks = make(chan task, 4*n)
		p.wg.Add(n)
		for i := 0; i < n; i++ {
			go p.worker(i)
		}
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.n }

// Busy returns the number of workers currently executing a tile.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Close shuts the workers down after the queued tiles drain. Only dedicated
// pools need closing; closing twice is a no-op. Close must not race with
// in-flight plan executions.
func (p *Pool) Close() {
	if p.n <= 1 || !p.closed.CompareAndSwap(false, true) {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}

// AttachMetrics exports the pool's utilization to a registry:
//
//	par.workers        gauge    pool size
//	par.workers_busy   gauge    workers executing a tile right now
//	par.tiles_pending  gauge    tiles queued but not yet picked up
//	par.tiles_total    counter  tiles executed by pool workers
//
// workers_busy below par.workers while tiles_pending is zero is starvation
// (too few tiles, or a straggler holding the barrier); a persistent pending
// backlog is contention.
//
// Safe to call more than once (ranks sharing a pool attach the same
// registry); the last registry wins.
func (p *Pool) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("par.workers").Set(float64(p.n))
	p.busyG.Store(reg.Gauge("par.workers_busy"))
	p.pendG.Store(reg.Gauge("par.tiles_pending"))
	p.tilesC.Store(reg.Counter("par.tiles_total"))
}

// AttachProfiler gives every pool worker its own timeline track
// (prof.GroupWorker) on which the worker records one busy span per
// executed tile, labelled by the kernel. Safe to call more than once with
// the same profiler (ranks sharing a pool attach the same one): only the
// first call creates tracks. Single-worker pools execute tiles inline on
// the submitting rank's goroutine, so their work already appears inside
// the rank's own spans and no worker tracks are created.
func (p *Pool) AttachProfiler(pr *prof.Profiler) {
	if pr == nil || p.n <= 1 {
		return
	}
	p.profMu.Lock()
	defer p.profMu.Unlock()
	if p.profOwner == pr {
		return
	}
	tracks := make([]*prof.Track, p.n)
	for i := range tracks {
		tracks[i] = pr.NewTrack(prof.GroupWorker, fmt.Sprintf("worker%d", i))
	}
	p.profOwner = pr
	p.profTracks.Store(&tracks)
}

// PerfSnapshot merges the per-worker kernel timers into a fresh Timers
// owned by the caller: the per-kernel busy time accumulated across all
// workers (region names are the kernel labels passed to Plan runs).
// Comparing a region's busy time against the owner's wall-clock timer for
// the same kernel gives its parallel efficiency.
func (p *Pool) PerfSnapshot() *perf.Timers {
	merged := perf.NewTimers()
	for _, wt := range p.timers {
		wt.mu.Lock()
		merged.Merge(wt.t.Snapshot())
		wt.mu.Unlock()
	}
	return merged
}

func (p *Pool) worker(id int) {
	defer p.wg.Done()
	wt := p.timers[id]
	for t := range p.tasks {
		nb := p.busy.Add(1)
		if g := p.busyG.Load(); g != nil {
			g.Set(float64(nb))
		}
		if g := p.pendG.Load(); g != nil {
			g.Set(float64(len(p.tasks)))
		}
		var sp prof.Span
		if ts := p.profTracks.Load(); ts != nil {
			tr := (*ts)[id]
			if tr.Recording() {
				// Tag the span with the tile's coordinates so the timeline
				// cross-references the spatial cost maps.
				sp = tr.BeginArgs(t.label, map[string]string{
					"tile": fmt.Sprintf("%d", t.tile.Index),
					"lo":   fmt.Sprintf("%d,%d,%d", t.tile.Lo[0], t.tile.Lo[1], t.tile.Lo[2]),
					"hi":   fmt.Sprintf("%d,%d,%d", t.tile.Hi[0], t.tile.Hi[1], t.tile.Hi[2]),
				})
			}
		}
		start := time.Now()
		t.fn(t.tile, id)
		d := time.Since(start)
		sp.End()
		wt.mu.Lock()
		wt.t.Observe(t.label, d, 1)
		wt.mu.Unlock()
		nb = p.busy.Add(-1)
		if g := p.busyG.Load(); g != nil {
			g.Set(float64(nb))
		}
		if c := p.tilesC.Load(); c != nil {
			c.Inc()
		}
		t.wg.Done()
	}
}

// submit enqueues one tile; workers drain the channel concurrently.
func (p *Pool) submit(t task) {
	p.tasks <- t
	if g := p.pendG.Load(); g != nil {
		g.Set(float64(len(p.tasks)))
	}
}

// The process-wide default pool, built lazily on first use so drivers can
// size it (SetDefaultWorkers) before any simulation starts.
var (
	defMu   sync.Mutex
	defPool *Pool
	defSize int // 0 = runtime.NumCPU()
)

// Default returns the process-wide pool, creating it on first use with
// SetDefaultWorkers's size (default runtime.NumCPU()). All in-process ranks
// of a decomposed run share it, so the worker budget is divided fairly
// across ranks.
func Default() *Pool {
	defMu.Lock()
	defer defMu.Unlock()
	if defPool == nil {
		size := defSize
		if size == 0 {
			size = runtime.NumCPU()
		}
		defPool = NewPool(size)
	}
	return defPool
}

// SetDefaultWorkers sizes the process-wide pool (n < 1 restores the
// runtime.NumCPU() default). Call it before simulations start: an existing
// default pool is closed and replaced, which must not race with running
// plans.
func SetDefaultWorkers(n int) {
	defMu.Lock()
	defer defMu.Unlock()
	if n < 1 {
		n = runtime.NumCPU()
	}
	defSize = n
	if defPool != nil && defPool.n != n {
		defPool.Close()
		defPool = nil
	}
}

// DefaultWorkers returns the size the default pool has (or will have when
// first used).
func DefaultWorkers() int {
	defMu.Lock()
	defer defMu.Unlock()
	if defPool != nil {
		return defPool.n
	}
	if defSize > 0 {
		return defSize
	}
	return runtime.NumCPU()
}
