package par

import (
	"fmt"
	"sync"
	"time"

	"github.com/s3dgo/s3d/internal/obs"
)

// Range is a half-open 3-D index box [Lo, Hi) in (i, j, k) order, matching
// the solver's interior (or ghost-extended) loop bounds.
type Range struct {
	Lo, Hi [3]int
}

// Box builds a Range from loop bounds.
func Box(lo, hi [3]int) Range { return Range{Lo: lo, Hi: hi} }

// Interior is the Range covering [0,nx)×[0,ny)×[0,nz).
func Interior(nx, ny, nz int) Range { return Range{Hi: [3]int{nx, ny, nz}} }

// Ext returns the extent along axis a.
func (r Range) Ext(a int) int { return r.Hi[a] - r.Lo[a] }

// Empty reports whether the box contains no points.
func (r Range) Empty() bool {
	return r.Ext(0) <= 0 || r.Ext(1) <= 0 || r.Ext(2) <= 0
}

// Tile is one unit of scheduled work: a sub-box of the sweep's Range plus
// its position in the deterministic tile order (the reduction-slot index).
type Tile struct {
	Range
	Index int
}

// splitAxis picks the tiling axis for a box: the axis with the largest
// extent, preferring k over j over i on ties, never the frozen axis (pass
// -1 for none) and never a unit axis. The choice depends only on the box
// shape — never on the worker count — so tile decompositions, and with
// them reduction orders, are reproducible across pool sizes. Returns -1
// when no axis is splittable (single-tile sweep).
func splitAxis(r Range, frozen int) int {
	best, bestExt := -1, 1
	for _, a := range [3]int{2, 1, 0} {
		if a == frozen {
			continue
		}
		if e := r.Ext(a); e > bestExt {
			best, bestExt = a, e
		}
	}
	return best
}

// SweepAxis exposes the plan's tiling-axis choice for a box with no frozen
// axis: the axis unweighted sweeps split along and weighted partitions
// index their plane profiles by. Callers building per-plane weight
// profiles (the solver's load balancer) must aggregate along this axis.
func SweepAxis(r Range) int { return splitAxis(r, -1) }

// tileOf cuts plane idx (grain: one plane) along axis ax out of r.
func tileOf(r Range, ax, idx int) Tile {
	t := Tile{Range: r, Index: idx}
	if ax >= 0 {
		t.Lo[ax] = r.Lo[ax] + idx
		t.Hi[ax] = t.Lo[ax] + 1
	}
	return t
}

// RunRecorder receives the per-tile timings of one plan run. Tile is called
// concurrently from pool workers (tile indices within a run are distinct, so
// implementations may write disjoint slots without locking); EndRun is called
// on the owner goroutine after the run's barrier.
type RunRecorder interface {
	Tile(idx, worker int, seconds float64, cells int)
	EndRun()
}

// CostProbe attributes per-tile kernel cost (the hook the cost-map sampler
// installs via SetCost). Armed is the fast path — a single atomic load when
// the sampler is installed but idle; BeginRun opens a recorder for one run of
// n tiles under the kernel label, or returns nil to skip that run. Timing a
// tile costs ~three monotonic clock reads, so probes decline runs they do
// not need tile detail from (the cost sampler caps tile-timed runs per
// kernel per window): a declined run executes completely unwrapped.
type CostProbe interface {
	Armed() bool
	BeginRun(label string, tiles int) RunRecorder
}

// Plan schedules one block's kernels over a pool. A Plan has a single
// owner goroutine (the rank driving the block); only the pool behind it is
// shared. Reduction scratch and metric handles are therefore unguarded.
type Plan struct {
	pool *Pool
	red  []float64 // ordered per-tile reduction slots
	cost CostProbe

	// weights holds the per-kernel weight profiles installed by SetWeights;
	// a labelled sweep with a profile executes the weighted Partition
	// instead of the one-plane split. Owner-goroutine only.
	weights map[string]*weightedLabel

	reg      *obs.Registry
	counters map[string]*obs.Counter // per-kernel tile counters, lazy
}

// weightedLabel is one kernel's installed weight profile plus its cached
// partition (recomputed when the sweep box or frozen axis changes).
type weightedLabel struct {
	w      []float64
	budget float64
	part   *Partition
	r      Range
	frozen int
}

// NewPlan builds a plan over the given pool (nil selects Default()).
func NewPlan(pool *Pool) *Plan {
	if pool == nil {
		pool = Default()
	}
	return &Plan{pool: pool}
}

// Pool returns the pool the plan schedules onto.
func (pl *Plan) Pool() *Pool { return pl.pool }

// Workers returns the pool size; per-worker state (scratch arrays, cloned
// chemistry) must be dimensioned to it. Worker indices passed to kernel
// closures are always < Workers().
func (pl *Plan) Workers() int { return pl.pool.n }

// AttachMetrics directs the plan's per-kernel tile counters
// (par.tiles.<kernel>) at a registry. Owner-goroutine only, like every
// other Plan method.
func (pl *Plan) AttachMetrics(reg *obs.Registry) {
	pl.reg = reg
	pl.counters = nil
}

// SetCost installs (or, with nil, removes) the plan's cost probe. Owner-
// goroutine only; the probe's Armed gate keeps the disabled overhead to one
// atomic load per run.
func (pl *Plan) SetCost(p CostProbe) { pl.cost = p }

// SetWeights installs (or, with an empty profile, removes) a per-plane
// weight profile for the labelled kernel: its sweeps then execute the
// cost-weighted Partition instead of the one-plane split. budget, when
// positive, is the global target weight per tile (see NewPartition). The
// profile is copied; the decomposition it produces depends only on (box,
// frozen axis, profile, budget), so installing the same profile on every
// rank-local plan keeps reductions bitwise deterministic at any worker
// count. Owner-goroutine only.
func (pl *Plan) SetWeights(label string, w []float64, budget float64) {
	if len(w) == 0 {
		delete(pl.weights, label)
		return
	}
	if pl.weights == nil {
		pl.weights = map[string]*weightedLabel{}
	}
	pl.weights[label] = &weightedLabel{w: append([]float64(nil), w...), budget: budget}
}

// HasWeights reports whether the label has an installed weight profile.
func (pl *Plan) HasWeights(label string) bool {
	_, ok := pl.weights[label]
	return ok
}

// PartitionFor returns the tile decomposition Run/RunFrozen would execute
// for (label, r, frozen): the weighted partition when SetWeights installed
// a profile for the label, the one-plane split otherwise.
func (pl *Plan) PartitionFor(label string, r Range, frozen int) *Partition {
	if wl := pl.weights[label]; wl != nil {
		return pl.partitionOf(wl, r, frozen)
	}
	return NewPartition(r, frozen, nil, 0)
}

// partitionOf returns the label's cached weighted partition, recomputing it
// when the sweep geometry changed since the profile was installed.
func (pl *Plan) partitionOf(wl *weightedLabel, r Range, frozen int) *Partition {
	if wl.part == nil || wl.r != r || wl.frozen != frozen {
		wl.part = NewPartition(r, frozen, wl.w, wl.budget)
		wl.r, wl.frozen = r, frozen
	}
	return wl.part
}

// count bumps the kernel's tile counter (no-op without a registry).
func (pl *Plan) count(label string, tiles int) {
	if pl.reg == nil {
		return
	}
	c := pl.counters[label]
	if c == nil {
		if pl.counters == nil {
			pl.counters = map[string]*obs.Counter{}
		}
		c = pl.reg.Counter("par.tiles." + label)
		pl.counters[label] = c
	}
	c.Add(int64(tiles))
}

// Run decomposes r into plane tiles and executes fn over every tile,
// blocking until all complete. fn receives the tile and the executing
// worker's index; tiles write disjoint outputs, so no ordering is imposed
// between them. label names the kernel for the pool's per-worker timers
// and the tile counters.
func (pl *Plan) Run(label string, r Range, fn func(t Tile, worker int)) {
	pl.RunFrozen(label, r, -1, fn)
}

// RunFrozen is Run with one axis exempt from tiling — required when the
// kernel's stencil spans that axis (derivative sweeps along it) so every
// tile must hold the full extent.
func (pl *Plan) RunFrozen(label string, r Range, frozen int, fn func(t Tile, worker int)) {
	if r.Empty() {
		return
	}
	// Weighted labels execute their Partition; everything else keeps the
	// allocation-free one-plane split inline.
	var part *Partition
	ax, n := -1, 1
	if wl := pl.weights[label]; wl != nil {
		part = pl.partitionOf(wl, r, frozen)
		n = part.Len()
	} else if ax = splitAxis(r, frozen); ax >= 0 {
		n = r.Ext(ax)
	}
	pl.count(label, n)
	if pl.cost != nil && pl.cost.Armed() {
		if rec := pl.cost.BeginRun(label, n); rec != nil {
			inner := fn
			fn = func(t Tile, w int) {
				start := time.Now()
				inner(t, w)
				rec.Tile(t.Index, w, time.Since(start).Seconds(), t.Ext(0)*t.Ext(1)*t.Ext(2))
			}
			defer rec.EndRun()
		}
	}
	tileAt := func(idx int) Tile {
		if part != nil {
			return part.Tile(idx)
		}
		return tileOf(r, ax, idx)
	}
	if pl.pool.n == 1 || n == 1 {
		// Serial fast path: execute the same tile decomposition inline on
		// the owner, keeping results bitwise identical to the pooled path.
		for idx := 0; idx < n; idx++ {
			fn(tileAt(idx), 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for idx := 0; idx < n; idx++ {
		pl.pool.submit(task{label: label, fn: fn, tile: tileAt(idx), wg: &wg})
	}
	wg.Wait()
}

// RunTiles executes fn over an explicit tile list — the work-sharing donor's
// retained subset of a partition. Tiles keep their original Index (so
// reduction-slot writes stay aligned with the full partition); the probe
// sample records them positionally.
func (pl *Plan) RunTiles(label string, tiles []Tile, fn func(t Tile, worker int)) {
	n := len(tiles)
	if n == 0 {
		return
	}
	pl.count(label, n)
	var rec RunRecorder
	if pl.cost != nil && pl.cost.Armed() {
		rec = pl.cost.BeginRun(label, n)
	}
	if rec != nil {
		defer rec.EndRun()
	}
	run := func(pos, w int) {
		t := tiles[pos]
		if rec == nil {
			fn(t, w)
			return
		}
		start := time.Now()
		fn(t, w)
		rec.Tile(pos, w, time.Since(start).Seconds(), t.Ext(0)*t.Ext(1)*t.Ext(2))
	}
	if pl.pool.n == 1 || n == 1 {
		for pos := 0; pos < n; pos++ {
			run(pos, 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for pos := 0; pos < n; pos++ {
		pos := pos
		pl.pool.submit(task{label: label, fn: func(_ Tile, w int) { run(pos, w) }, wg: &wg})
	}
	wg.Wait()
}

// RunReduce runs fn over the tiles of r and returns the sum of the per-tile
// results, accumulated in ascending tile order through ordered slots. The
// tile decomposition and the combination order are independent of the pool
// size, so the reduction is bitwise deterministic for any worker count —
// the property the solver's heat-release integral and conservation
// diagnostics rely on.
func (pl *Plan) RunReduce(label string, r Range, fn func(t Tile, worker int) float64) float64 {
	if r.Empty() {
		return 0
	}
	n := 1
	if wl := pl.weights[label]; wl != nil {
		n = pl.partitionOf(wl, r, -1).Len()
	} else if ax := splitAxis(r, -1); ax >= 0 {
		n = r.Ext(ax)
	}
	if cap(pl.red) < n {
		pl.red = make([]float64, n)
	}
	slots := pl.red[:n]
	pl.RunFrozen(label, r, -1, func(t Tile, w int) {
		slots[t.Index] = fn(t, w)
	})
	var sum float64
	for i := 0; i < n; i++ {
		sum += slots[i]
	}
	return sum
}

// RunItems executes fn for every item index in [0, n) — the degenerate
// 1-D decomposition used for per-field work such as halo pack/unpack,
// where each item already writes a disjoint region. Item sweeps route
// through the cost probe like tiled runs do (items report zero cells), so
// halo pack/unpack and RK-update work shows up in the measured side channel
// of the cost document instead of being invisible to the sampler.
func (pl *Plan) RunItems(label string, n int, fn func(item, worker int)) {
	if n <= 0 {
		return
	}
	pl.count(label, n)
	if pl.cost != nil && pl.cost.Armed() {
		if rec := pl.cost.BeginRun(label, n); rec != nil {
			inner := fn
			fn = func(item, w int) {
				start := time.Now()
				inner(item, w)
				rec.Tile(item, w, time.Since(start).Seconds(), 0)
			}
			defer rec.EndRun()
		}
	}
	if pl.pool.n == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		item := i
		pl.pool.submit(task{
			label: label,
			fn:    func(_ Tile, w int) { fn(item, w) },
			wg:    &wg,
		})
	}
	wg.Wait()
}

// String describes the plan (diagnostics).
func (pl *Plan) String() string {
	return fmt.Sprintf("par.Plan{workers: %d}", pl.pool.n)
}
