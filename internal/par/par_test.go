package par

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"github.com/s3dgo/s3d/internal/obs"
)

// TestRunCoversBox checks every point of the range is visited exactly once,
// for a spread of shapes (3-D, quasi-2D, degenerate) and pool sizes.
func TestRunCoversBox(t *testing.T) {
	shapes := []Range{
		Interior(8, 6, 5),
		Interior(16, 1, 1),
		Interior(4, 9, 1),
		Box([3]int{-5, -5, -5}, [3]int{9, 7, 6}), // ghost-extended
		Interior(1, 1, 1),
	}
	for _, workers := range []int{1, 3, 8} {
		pool := NewPool(workers)
		pl := NewPlan(pool)
		for _, r := range shapes {
			nx, ny, nz := r.Ext(0), r.Ext(1), r.Ext(2)
			seen := make([]int32, nx*ny*nz)
			pl.Run("cover", r, func(tl Tile, w int) {
				if w < 0 || w >= workers {
					t.Errorf("worker index %d out of range [0,%d)", w, workers)
				}
				for k := tl.Lo[2]; k < tl.Hi[2]; k++ {
					for j := tl.Lo[1]; j < tl.Hi[1]; j++ {
						for i := tl.Lo[0]; i < tl.Hi[0]; i++ {
							idx := ((k-r.Lo[2])*ny+(j-r.Lo[1]))*nx + (i - r.Lo[0])
							atomic.AddInt32(&seen[idx], 1)
						}
					}
				}
			})
			for idx, n := range seen {
				if n != 1 {
					t.Fatalf("workers=%d shape=%v: point %d visited %d times", workers, r, idx, n)
				}
			}
		}
		pool.Close()
	}
}

// TestRunFrozenNeverSplitsAxis verifies tiles span the frozen axis fully.
func TestRunFrozenNeverSplitsAxis(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	pl := NewPlan(pool)
	r := Interior(6, 7, 8)
	for frozen := 0; frozen < 3; frozen++ {
		pl.RunFrozen("frozen", r, frozen, func(tl Tile, _ int) {
			if tl.Lo[frozen] != r.Lo[frozen] || tl.Hi[frozen] != r.Hi[frozen] {
				t.Errorf("frozen axis %d split: tile %v", frozen, tl.Range)
			}
		})
	}
}

// TestRunReduceDeterministic: the reduction over a fixed box must be
// bitwise identical for every pool size — the property the solver's
// heat-release integral depends on.
func TestRunReduceDeterministic(t *testing.T) {
	r := Interior(17, 13, 11)
	vals := make([]float64, 17*13*11)
	rng := rand.New(rand.NewSource(42))
	for i := range vals {
		// Wildly varying magnitudes make float addition order visible.
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
	}
	sum := func(workers int) float64 {
		pool := NewPool(workers)
		defer pool.Close()
		pl := NewPlan(pool)
		return pl.RunReduce("reduce", r, func(tl Tile, _ int) float64 {
			var s float64
			for k := tl.Lo[2]; k < tl.Hi[2]; k++ {
				for j := tl.Lo[1]; j < tl.Hi[1]; j++ {
					for i := tl.Lo[0]; i < tl.Hi[0]; i++ {
						s += vals[(k*13+j)*17+i]
					}
				}
			}
			return s
		})
	}
	want := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("workers=%d: sum %x != workers=1 sum %x", w, got, want)
		}
	}
}

// TestRunItems covers the per-field decomposition.
func TestRunItems(t *testing.T) {
	for _, workers := range []int{1, 4} {
		pool := NewPool(workers)
		seen := make([]int32, 23)
		NewPlan(pool).RunItems("items", len(seen), func(item, _ int) {
			atomic.AddInt32(&seen[item], 1)
		})
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, n)
			}
		}
		pool.Close()
	}
}

// TestConcurrentPlans: several ranks sharing one pool, as in a decomposed
// run. Each plan must see only its own tiles.
func TestConcurrentPlans(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	const ranks = 6
	done := make(chan [2]float64, ranks)
	for rk := 0; rk < ranks; rk++ {
		go func(rk int) {
			pl := NewPlan(pool)
			r := Interior(5, 5, 9)
			got := pl.RunReduce("rank", r, func(tl Tile, _ int) float64 {
				var s float64
				for k := tl.Lo[2]; k < tl.Hi[2]; k++ {
					s += float64(rk + 1)
				}
				return s * 25 // 5×5 plane worth per k
			})
			done <- [2]float64{float64(rk), got}
		}(rk)
	}
	for i := 0; i < ranks; i++ {
		res := <-done
		want := (res[0] + 1) * 9 * 25
		if res[1] != want {
			t.Errorf("rank %.0f: got %g want %g", res[0], res[1], want)
		}
	}
}

// TestPoolMetrics checks the utilization gauges and tile counters.
func TestPoolMetrics(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.AttachMetrics(reg)
	pl := NewPlan(pool)
	pl.AttachMetrics(reg)
	pl.Run("kern", Interior(4, 4, 16), func(Tile, int) {})
	pl.Run("kern", Interior(4, 4, 16), func(Tile, int) {})
	s := reg.Snapshot()
	if got := s.Gauges["par.workers"]; got != 3 {
		t.Errorf("par.workers = %g, want 3", got)
	}
	if got := s.Counters["par.tiles.kern"]; got != 32 {
		t.Errorf("par.tiles.kern = %d, want 32", got)
	}
	if got := s.Counters["par.tiles_total"]; got != 32 {
		t.Errorf("par.tiles_total = %d, want 32", got)
	}
}

// TestPerfSnapshot checks worker busy time lands under the kernel label.
func TestPerfSnapshot(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	pl := NewPlan(pool)
	var spin atomic.Int64
	pl.Run("busywork", Interior(2, 2, 12), func(Tile, int) {
		for i := 0; i < 1000; i++ {
			spin.Add(1)
		}
	})
	tm := pool.PerfSnapshot()
	r := tm.Region("busywork")
	if r == nil || r.Calls != 12 {
		t.Fatalf("busywork region = %+v, want 12 calls", r)
	}
}

// TestSplitAxisDeterministic pins the axis-selection rule.
func TestSplitAxisDeterministic(t *testing.T) {
	cases := []struct {
		r      Range
		frozen int
		want   int
	}{
		{Interior(32, 32, 32), -1, 2}, // ties prefer k
		{Interior(32, 32, 32), 2, 1},  // frozen k → j
		{Interior(64, 32, 1), -1, 0},  // quasi-2D, x largest
		{Interior(8, 32, 1), -1, 1},   // quasi-2D, j largest
		{Interior(1, 1, 1), -1, -1},   // degenerate
		{Interior(9, 1, 1), 0, -1},    // only splittable axis frozen
	}
	for _, c := range cases {
		if got := splitAxis(c.r, c.frozen); got != c.want {
			t.Errorf("splitAxis(%v, %d) = %d, want %d", c.r, c.frozen, got, c.want)
		}
	}
}

func TestDefaultPoolConfig(t *testing.T) {
	SetDefaultWorkers(2)
	if got := DefaultWorkers(); got != 2 {
		t.Fatalf("DefaultWorkers = %d after SetDefaultWorkers(2)", got)
	}
	p := Default()
	if p.Workers() != 2 {
		t.Fatalf("default pool size = %d, want 2", p.Workers())
	}
	if Default() != p {
		t.Fatal("Default() not stable")
	}
	SetDefaultWorkers(0) // restore NumCPU default for other tests
}
