// Package viz implements the visualization technology of paper §8: a
// software volume ray-caster with user-controlled transfer functions,
// simultaneous multivariate rendering by data fusion (figure 14's ξ-iso +
// HO2, ξ-iso + OH, and OH + HO2 composites), isosurface emphasis with
// gradient shading, and the trispace interface components — parallel
// coordinates and time histograms (figure 15) — rendered to PNG images.
package viz

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"github.com/s3dgo/s3d/internal/grid"
)

// RGBA is a float colour with opacity in [0, 1].
type RGBA struct{ R, G, B, A float64 }

// ControlPoint anchors a transfer function at a normalised scalar value.
type ControlPoint struct {
	V float64 // normalised [0,1]
	C RGBA
}

// TransferFunc maps a normalised scalar to colour and opacity by piecewise
// linear interpolation of its control points (which must be sorted by V).
type TransferFunc struct {
	Points []ControlPoint
}

// Lookup evaluates the transfer function.
func (t *TransferFunc) Lookup(v float64) RGBA {
	pts := t.Points
	if len(pts) == 0 {
		return RGBA{}
	}
	if v <= pts[0].V {
		return pts[0].C
	}
	for i := 1; i < len(pts); i++ {
		if v <= pts[i].V {
			f := (v - pts[i-1].V) / (pts[i].V - pts[i-1].V)
			a, b := pts[i-1].C, pts[i].C
			return RGBA{
				R: a.R + f*(b.R-a.R),
				G: a.G + f*(b.G-a.G),
				B: a.B + f*(b.B-a.B),
				A: a.A + f*(b.A-a.A),
			}
		}
	}
	return pts[len(pts)-1].C
}

// HotTF returns a "hot metal" emission-style transfer function peaking at
// the high end, suitable for radicals like OH.
func HotTF(maxOpacity float64) *TransferFunc {
	return &TransferFunc{Points: []ControlPoint{
		{0.0, RGBA{0, 0, 0, 0}},
		{0.25, RGBA{0.4, 0, 0, 0.02 * maxOpacity}},
		{0.5, RGBA{0.9, 0.2, 0, 0.2 * maxOpacity}},
		{0.75, RGBA{1, 0.7, 0, 0.6 * maxOpacity}},
		{1.0, RGBA{1, 1, 0.8, maxOpacity}},
	}}
}

// CoolTF returns a blue-green transfer function for a second variable in a
// fused rendering (the HO2 layer of figure 14).
func CoolTF(maxOpacity float64) *TransferFunc {
	return &TransferFunc{Points: []ControlPoint{
		{0.0, RGBA{0, 0, 0, 0}},
		{0.3, RGBA{0, 0.2, 0.5, 0.05 * maxOpacity}},
		{0.6, RGBA{0, 0.6, 0.9, 0.3 * maxOpacity}},
		{1.0, RGBA{0.5, 1, 1, maxOpacity}},
	}}
}

// IsoTF returns a transfer function that is transparent except near the
// normalised iso value — the "mixture fraction isosurface (gold)" device of
// figure 14.
func IsoTF(iso, width float64, c RGBA) *TransferFunc {
	return &TransferFunc{Points: []ControlPoint{
		{0, RGBA{}},
		{clamp01(iso - width), RGBA{}},
		{iso, c},
		{clamp01(iso + width), RGBA{}},
		{1, RGBA{}},
	}}
}

// Layer pairs a field with its transfer function and value range.
type Layer struct {
	Field    *grid.Field3
	TF       *TransferFunc
	Min, Max float64
	Shade    bool // gradient shading (for isosurface layers)
}

// normalized samples the layer at fractional grid coordinates with
// trilinear interpolation, returning the normalised value.
func (l *Layer) normalized(x, y, z float64) float64 {
	v := trilinear(l.Field, x, y, z)
	if l.Max <= l.Min {
		return 0
	}
	return clamp01((v - l.Min) / (l.Max - l.Min))
}

func trilinear(f *grid.Field3, x, y, z float64) float64 {
	i0, j0, k0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := x-float64(i0), y-float64(j0), z-float64(k0)
	at := func(i, j, k int) float64 {
		if i < 0 {
			i = 0
		}
		if j < 0 {
			j = 0
		}
		if k < 0 {
			k = 0
		}
		if i >= f.Nx {
			i = f.Nx - 1
		}
		if j >= f.Ny {
			j = f.Ny - 1
		}
		if k >= f.Nz {
			k = f.Nz - 1
		}
		return f.At(i, j, k)
	}
	c00 := at(i0, j0, k0)*(1-fx) + at(i0+1, j0, k0)*fx
	c10 := at(i0, j0+1, k0)*(1-fx) + at(i0+1, j0+1, k0)*fx
	c01 := at(i0, j0, k0+1)*(1-fx) + at(i0+1, j0, k0+1)*fx
	c11 := at(i0, j0+1, k0+1)*(1-fx) + at(i0+1, j0+1, k0+1)*fx
	c0 := c00*(1-fy) + c10*fy
	c1 := c01*(1-fy) + c11*fy
	return c0*(1-fz) + c1*fz
}

// Camera orients an orthographic view by azimuth/elevation (radians).
type Camera struct {
	Azimuth, Elevation float64
}

// Renderer ray-casts one or more fused layers over the same mesh.
type Renderer struct {
	Layers        []Layer
	Cam           Camera
	Width, Height int
	Background    RGBA
	StepScale     float64 // samples per cell along the ray (default 1)
}

// Render produces the composited image by front-to-back accumulation; at
// each ray sample every layer contributes its own colour and opacity (the
// user-controlled data-fusion scheme of §8.1).
func (r *Renderer) Render() *image.RGBA {
	if len(r.Layers) == 0 {
		return image.NewRGBA(image.Rect(0, 0, r.Width, r.Height))
	}
	f0 := r.Layers[0].Field
	nx, ny, nz := float64(f0.Nx), float64(f0.Ny), float64(f0.Nz)
	img := image.NewRGBA(image.Rect(0, 0, r.Width, r.Height))

	// View basis: ray direction d from azimuth/elevation; u, v span the
	// image plane.
	ca, sa := math.Cos(r.Cam.Azimuth), math.Sin(r.Cam.Azimuth)
	ce, se := math.Cos(r.Cam.Elevation), math.Sin(r.Cam.Elevation)
	d := [3]float64{ca * ce, sa * ce, se}
	up := [3]float64{0, 0, 1}
	if math.Abs(d[2]) > 0.99 {
		up = [3]float64{0, 1, 0}
	}
	u := cross(up, d)
	u = norm3(u)
	v := cross(d, u)

	centre := [3]float64{nx / 2, ny / 2, nz / 2}
	diag := math.Sqrt(nx*nx + ny*ny + nz*nz)
	scale := diag / float64(minInt(r.Width, r.Height)) * 1.05
	step := r.StepScale
	if step <= 0 {
		step = 1
	}

	for py := 0; py < r.Height; py++ {
		for px := 0; px < r.Width; px++ {
			su := (float64(px) - float64(r.Width)/2) * scale
			sv := (float64(py) - float64(r.Height)/2) * scale
			// Ray origin behind the volume.
			var o [3]float64
			for c := 0; c < 3; c++ {
				o[c] = centre[c] + su*u[c] + sv*v[c] - d[c]*diag/2
			}
			col := r.castRay(o, d, diag, step)
			// Composite over background.
			bg := r.Background
			col.R += (1 - col.A) * bg.R
			col.G += (1 - col.A) * bg.G
			col.B += (1 - col.A) * bg.B
			img.SetRGBA(px, r.Height-1-py, color.RGBA{
				R: uint8(255 * clamp01(col.R)),
				G: uint8(255 * clamp01(col.G)),
				B: uint8(255 * clamp01(col.B)),
				A: 255,
			})
		}
	}
	return img
}

func (r *Renderer) castRay(o, d [3]float64, length, step float64) RGBA {
	var acc RGBA
	f0 := r.Layers[0].Field
	n := int(length / step)
	// Degenerate (size-1) axes carry quasi-2D data: the volume is treated
	// as extruded along them, so rays always intersect (the jet runs of the
	// paper are rendered from such planes during scaled-down reproduction).
	degX, degY, degZ := f0.Nx == 1, f0.Ny == 1, f0.Nz == 1
	for s := 0; s < n && acc.A < 0.98; s++ {
		x := o[0] + d[0]*float64(s)*step
		y := o[1] + d[1]*float64(s)*step
		z := o[2] + d[2]*float64(s)*step
		if degX {
			x = 0
		}
		if degY {
			y = 0
		}
		if degZ {
			z = 0
		}
		if x < 0 || y < 0 || z < 0 || x > float64(f0.Nx-1) || y > float64(f0.Ny-1) || z > float64(f0.Nz-1) {
			continue
		}
		for li := range r.Layers {
			l := &r.Layers[li]
			val := l.normalized(x, y, z)
			c := l.TF.Lookup(val)
			if c.A <= 0 {
				continue
			}
			shade := 1.0
			if l.Shade {
				shade = l.gradientShade(x, y, z, d)
			}
			// Front-to-back "over" compositing.
			w := (1 - acc.A) * c.A
			acc.R += w * c.R * shade
			acc.G += w * c.G * shade
			acc.B += w * c.B * shade
			acc.A += w
		}
	}
	return acc
}

// gradientShade approximates diffuse shading from the field gradient.
func (l *Layer) gradientShade(x, y, z float64, light [3]float64) float64 {
	const h = 1.0
	gx := l.normalized(x+h, y, z) - l.normalized(x-h, y, z)
	gy := l.normalized(x, y+h, z) - l.normalized(x, y-h, z)
	gz := l.normalized(x, y, z+h) - l.normalized(x, y, z-h)
	m := math.Sqrt(gx*gx + gy*gy + gz*gz)
	if m == 0 {
		return 1
	}
	dot := math.Abs(gx*light[0]+gy*light[1]+gz*light[2]) / m
	return 0.35 + 0.65*dot
}

// WritePNG encodes the image.
func WritePNG(w io.Writer, img image.Image) error { return png.Encode(w, img) }

func cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

func norm3(a [3]float64) [3]float64 {
	m := math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
	if m == 0 {
		return a
	}
	return [3]float64{a[0] / m, a[1] / m, a[2] / m}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
