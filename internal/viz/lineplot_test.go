package viz

import (
	"image/color"
	"testing"
)

func TestLinePlotRenders(t *testing.T) {
	lp := &LinePlot{
		Title: "T",
		X:     []float64{0, 1, 2, 3},
		Series: map[string][]float64{
			"min": {300, 300, 301, 300},
			"max": {2000, 2100, 2200, 2300},
		},
		Width: 200, Height: 120,
	}
	img, err := lp.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Some series pixels present (non-background colours).
	bg := color.RGBA{250, 250, 248, 255}
	nonBg := 0
	for y := 0; y < 120; y++ {
		for x := 0; x < 200; x++ {
			if img.RGBAAt(x, y) != bg {
				nonBg++
			}
		}
	}
	if nonBg < 100 {
		t.Fatalf("plot nearly empty: %d non-background pixels", nonBg)
	}
}

func TestLinePlotErrors(t *testing.T) {
	if _, err := (&LinePlot{X: []float64{1}}).Render(); err == nil {
		t.Fatal("expected short-X error")
	}
	lp := &LinePlot{X: []float64{1, 2}, Series: map[string][]float64{"a": {1}}}
	if _, err := lp.Render(); err == nil {
		t.Fatal("expected ragged-series error")
	}
}

func TestLinePlotFlatSeries(t *testing.T) {
	// Degenerate y-range must not divide by zero.
	lp := &LinePlot{X: []float64{0, 1, 2}, Series: map[string][]float64{"c": {5, 5, 5}}}
	if _, err := lp.Render(); err != nil {
		t.Fatal(err)
	}
}
