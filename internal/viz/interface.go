package viz

import (
	"fmt"
	"image"
	"image/color"
	"math"
)

// The trispace visualization interface of §8.2 (figure 15): a parallel-
// coordinates view over selected variables, and a time-histogram view of a
// variable's temporal evolution.

// ParallelCoords renders samples[i][v] (one polyline per sample across the
// variable axes) with per-variable normalisation, highlighting brushed
// samples. It is the multivariate selection view of figure 15.
type ParallelCoords struct {
	VarNames []string
	Samples  [][]float64
	// Brush marks samples to highlight (nil highlights none).
	Brush         func(sample []float64) bool
	Width, Height int
}

// Render draws the plot.
func (p *ParallelCoords) Render() (*image.RGBA, error) {
	nv := len(p.VarNames)
	if nv < 2 {
		return nil, fmt.Errorf("viz: parallel coordinates needs ≥ 2 variables")
	}
	for _, s := range p.Samples {
		if len(s) != nv {
			return nil, fmt.Errorf("viz: sample arity %d != %d variables", len(s), nv)
		}
	}
	w, h := p.Width, p.Height
	if w == 0 {
		w = 640
	}
	if h == 0 {
		h = 400
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	fill(img, color.RGBA{20, 20, 28, 255})

	// Per-variable ranges.
	lo := make([]float64, nv)
	hi := make([]float64, nv)
	for v := 0; v < nv; v++ {
		lo[v], hi[v] = math.Inf(1), math.Inf(-1)
		for _, s := range p.Samples {
			lo[v] = math.Min(lo[v], s[v])
			hi[v] = math.Max(hi[v], s[v])
		}
		if !(hi[v] > lo[v]) {
			hi[v] = lo[v] + 1
		}
	}
	margin := 20
	axisX := func(v int) int { return margin + v*(w-2*margin)/(nv-1) }
	yOf := func(v int, val float64) int {
		f := (val - lo[v]) / (hi[v] - lo[v])
		return h - margin - int(f*float64(h-2*margin))
	}
	// Axes.
	for v := 0; v < nv; v++ {
		drawLine(img, axisX(v), margin, axisX(v), h-margin, color.RGBA{120, 120, 130, 255})
	}
	// Polylines: dim for all, bright for brushed.
	for _, s := range p.Samples {
		c := color.RGBA{70, 90, 140, 255}
		if p.Brush != nil && p.Brush(s) {
			c = color.RGBA{255, 210, 60, 255}
		}
		for v := 0; v < nv-1; v++ {
			drawLine(img, axisX(v), yOf(v, s[v]), axisX(v+1), yOf(v+1, s[v+1]), c)
		}
	}
	return img, nil
}

// TimeHistogram renders the per-timestep histograms of a variable as a 2-D
// intensity map (x: timestep, y: value bin) — the temporal view of §8.2
// that "displays each variable's temporal characteristic and helps users
// identify time steps of interest".
type TimeHistogram struct {
	// Hist[t][b] holds the (normalised or raw) count of bin b at step t.
	Hist          [][]float64
	Width, Height int
}

// Render draws the map with a log intensity scale.
func (th *TimeHistogram) Render() (*image.RGBA, error) {
	nt := len(th.Hist)
	if nt == 0 {
		return nil, fmt.Errorf("viz: empty time histogram")
	}
	nb := len(th.Hist[0])
	w, h := th.Width, th.Height
	if w == 0 {
		w = 512
	}
	if h == 0 {
		h = 256
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	var max float64
	for _, row := range th.Hist {
		for _, v := range row {
			max = math.Max(max, v)
		}
	}
	if max == 0 {
		max = 1
	}
	for px := 0; px < w; px++ {
		t := px * nt / w
		for py := 0; py < h; py++ {
			b := py * nb / h
			v := th.Hist[t][b]
			f := math.Log1p(v) / math.Log1p(max)
			img.SetRGBA(px, h-1-py, heat(f))
		}
	}
	return img, nil
}

func heat(f float64) color.RGBA {
	f = clamp01(f)
	return color.RGBA{
		R: uint8(255 * clamp01(2*f)),
		G: uint8(255 * clamp01(2*f-0.6)),
		B: uint8(255 * clamp01(4*f-3)),
		A: 255,
	}
}

func fill(img *image.RGBA, c color.RGBA) {
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			img.SetRGBA(x, y, c)
		}
	}
}

// drawLine is a Bresenham rasteriser with additive blending for polyline
// density.
func drawLine(img *image.RGBA, x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		blend(img, x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func blend(img *image.RGBA, x, y int, c color.RGBA) {
	if !(image.Point{x, y}).In(img.Bounds()) {
		return
	}
	old := img.RGBAAt(x, y)
	mix := func(a, b uint8) uint8 {
		v := int(a)/3 + int(b)
		if v > 255 {
			v = 255
		}
		return uint8(v)
	}
	img.SetRGBA(x, y, color.RGBA{mix(old.R, c.R), mix(old.G, c.G), mix(old.B, c.B), 255})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
