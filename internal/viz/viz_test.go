package viz

import (
	"bytes"
	"image/color"
	"image/png"
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/grid"
)

func blobField(nx, ny, nz int, cx, cy, cz, r float64) *grid.Field3 {
	g := grid.New(grid.Spec{Nx: nx, Ny: ny, Nz: nz, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	f.Map(func(i, j, k int, _ float64) float64 {
		dx, dy, dz := float64(i)-cx, float64(j)-cy, float64(k)-cz
		return math.Exp(-(dx*dx + dy*dy + dz*dz) / (r * r))
	})
	return f
}

func TestTransferFuncInterpolation(t *testing.T) {
	tf := &TransferFunc{Points: []ControlPoint{
		{0, RGBA{0, 0, 0, 0}},
		{1, RGBA{1, 0, 0, 1}},
	}}
	mid := tf.Lookup(0.5)
	if math.Abs(mid.R-0.5) > 1e-12 || math.Abs(mid.A-0.5) > 1e-12 {
		t.Fatalf("midpoint = %+v", mid)
	}
	if tf.Lookup(-1).A != 0 || tf.Lookup(2).A != 1 {
		t.Fatal("clamping broken")
	}
}

func TestIsoTFPeaksAtIso(t *testing.T) {
	tf := IsoTF(0.6, 0.05, RGBA{1, 0.8, 0, 0.9})
	if got := tf.Lookup(0.6).A; math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("opacity at iso = %g", got)
	}
	if tf.Lookup(0.4).A != 0 || tf.Lookup(0.8).A != 0 {
		t.Fatal("iso band leaks")
	}
}

func TestRenderBlobVisible(t *testing.T) {
	f := blobField(24, 24, 24, 12, 12, 12, 5)
	r := &Renderer{
		Layers: []Layer{{Field: f, TF: HotTF(0.8), Min: 0, Max: 1}},
		Width:  64, Height: 64,
	}
	img := r.Render()
	// Centre pixel bright, corner dark.
	c := img.RGBAAt(32, 32)
	corner := img.RGBAAt(2, 2)
	if int(c.R)+int(c.G)+int(c.B) <= int(corner.R)+int(corner.G)+int(corner.B) {
		t.Fatalf("blob not visible: centre %v corner %v", c, corner)
	}
}

func TestRenderEmptyVolumeIsBackground(t *testing.T) {
	g := grid.New(grid.Spec{Nx: 8, Ny: 8, Nz: 8, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	r := &Renderer{
		Layers: []Layer{{Field: f, TF: HotTF(1), Min: 0, Max: 1}},
		Width:  16, Height: 16,
		Background: RGBA{0.1, 0.2, 0.3, 1},
	}
	img := r.Render()
	c := img.RGBAAt(8, 8)
	if math.Abs(float64(c.R)-25.5) > 3 || math.Abs(float64(c.B)-76.5) > 3 {
		t.Fatalf("background wrong: %v", c)
	}
}

func TestMultivariateFusionShowsBothLayers(t *testing.T) {
	// Two displaced blobs with distinct transfer functions; both colours
	// must appear (the OH+HO2 panel of figure 14).
	a := blobField(32, 32, 32, 10, 16, 16, 4)
	b := blobField(32, 32, 32, 22, 16, 16, 4)
	r := &Renderer{
		Layers: []Layer{
			{Field: a, TF: HotTF(0.9), Min: 0, Max: 1},
			{Field: b, TF: CoolTF(0.9), Min: 0, Max: 1},
		},
		Width: 96, Height: 96,
		Cam: Camera{Azimuth: math.Pi / 2, Elevation: 0}, // look along +y
	}
	img := r.Render()
	var redScore, blueScore int
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			c := img.RGBAAt(x, y)
			if int(c.R) > int(c.B)+40 {
				redScore++
			}
			if int(c.B) > int(c.R)+40 {
				blueScore++
			}
		}
	}
	if redScore < 20 || blueScore < 20 {
		t.Fatalf("fusion missing a layer: red=%d blue=%d", redScore, blueScore)
	}
}

func TestPNGRoundTrip(t *testing.T) {
	f := blobField(8, 8, 8, 4, 4, 4, 2)
	r := &Renderer{Layers: []Layer{{Field: f, TF: HotTF(1), Min: 0, Max: 1}}, Width: 32, Height: 32}
	var buf bytes.Buffer
	if err := WritePNG(&buf, r.Render()); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 32 {
		t.Fatalf("bad decoded size %v", decoded.Bounds())
	}
}

func TestParallelCoordsBrushHighlights(t *testing.T) {
	p := &ParallelCoords{
		VarNames: []string{"chi", "OH", "mixfrac"},
		Samples: [][]float64{
			{0.1, 0.9, 0.3},
			{0.9, 0.1, 0.7},
			{0.5, 0.5, 0.5},
		},
		Brush: func(s []float64) bool { return s[0] > 0.8 },
		Width: 200, Height: 120,
	}
	img, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	// The brushed polyline uses the highlight colour: scan for a yellowish
	// pixel.
	found := false
	for y := 0; y < 120 && !found; y++ {
		for x := 0; x < 200; x++ {
			c := img.RGBAAt(x, y)
			if c.R > 150 && c.G > 120 && c.B < 110 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no highlighted polyline rendered")
	}
}

func TestParallelCoordsErrors(t *testing.T) {
	if _, err := (&ParallelCoords{VarNames: []string{"one"}}).Render(); err == nil {
		t.Fatal("expected arity error")
	}
	p := &ParallelCoords{VarNames: []string{"a", "b"}, Samples: [][]float64{{1, 2, 3}}}
	if _, err := p.Render(); err == nil {
		t.Fatal("expected sample arity error")
	}
}

func TestTimeHistogramRender(t *testing.T) {
	hist := make([][]float64, 20)
	for t0 := range hist {
		hist[t0] = make([]float64, 16)
		hist[t0][t0%16] = 100 // a moving ridge
	}
	th := &TimeHistogram{Hist: hist, Width: 80, Height: 64}
	img, err := th.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Ridge pixels should be hot; background black.
	var hot int
	for y := 0; y < 64; y++ {
		for x := 0; x < 80; x++ {
			if c := img.RGBAAt(x, y); c.R > 200 {
				hot++
			}
		}
	}
	if hot == 0 {
		t.Fatal("ridge invisible")
	}
	if _, err := (&TimeHistogram{}).Render(); err == nil {
		t.Fatal("expected empty error")
	}
}

func TestHeatColormapMonotone(t *testing.T) {
	prev := -1
	for f := 0.0; f <= 1.0; f += 0.05 {
		c := heat(f)
		lum := int(c.R) + int(c.G) + int(c.B)
		if lum < prev {
			t.Fatalf("heat colormap not monotone at %g", f)
		}
		prev = lum
	}
	_ = color.RGBA{}
}

func BenchmarkRender64(b *testing.B) {
	f := blobField(32, 32, 32, 16, 16, 16, 6)
	r := &Renderer{Layers: []Layer{{Field: f, TF: HotTF(0.8), Min: 0, Max: 1}}, Width: 64, Height: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Render()
	}
}

func TestRenderQuasi2DFieldVisible(t *testing.T) {
	// nz = 1 planes (the scaled-down jet runs) must render: the volume is
	// extruded along degenerate axes.
	g := grid.New(grid.Spec{Nx: 32, Ny: 24, Nz: 1, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	f.Map(func(i, j, k int, _ float64) float64 {
		dx, dy := float64(i)-16, float64(j)-12
		return math.Exp(-(dx*dx + dy*dy) / 30)
	})
	r := &Renderer{
		Layers: []Layer{{Field: f, TF: HotTF(0.9), Min: 0, Max: 1}},
		Cam:    Camera{Elevation: math.Pi / 2},
		Width:  64, Height: 48,
	}
	img := r.Render()
	var lit int
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			c := img.RGBAAt(x, y)
			if int(c.R)+int(c.G)+int(c.B) > 60 {
				lit++
			}
		}
	}
	if lit < 20 {
		t.Fatalf("quasi-2D render blank: %d lit pixels", lit)
	}
}
