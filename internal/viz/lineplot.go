package viz

import (
	"fmt"
	"image"
	"image/color"
	"math"
)

// LinePlot renders simple XY time traces — the gnuplot-generated min/max
// plots of the paper's dashboard (§9, figure 17: "we also run gnuplot at
// every instance, so that we can generate an XY plot of the min and max of
// each variable").
type LinePlot struct {
	Title         string
	X             []float64
	Series        map[string][]float64
	Width, Height int
}

// seriesColors cycles for successive series (sorted by name).
var seriesColors = []color.RGBA{
	{230, 80, 60, 255},
	{70, 140, 230, 255},
	{90, 200, 120, 255},
	{240, 200, 70, 255},
	{190, 110, 220, 255},
}

// Render draws the plot.
func (lp *LinePlot) Render() (*image.RGBA, error) {
	if len(lp.X) < 2 {
		return nil, fmt.Errorf("viz: line plot needs ≥ 2 points")
	}
	for name, s := range lp.Series {
		if len(s) != len(lp.X) {
			return nil, fmt.Errorf("viz: series %q length %d != %d", name, len(s), len(lp.X))
		}
	}
	w, h := lp.Width, lp.Height
	if w == 0 {
		w = 480
	}
	if h == 0 {
		h = 300
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	fill(img, color.RGBA{250, 250, 248, 255})

	xLo, xHi := lp.X[0], lp.X[0]
	for _, x := range lp.X {
		xLo = math.Min(xLo, x)
		xHi = math.Max(xHi, x)
	}
	yLo, yHi := math.Inf(1), math.Inf(-1)
	for _, s := range lp.Series {
		for _, v := range s {
			yLo = math.Min(yLo, v)
			yHi = math.Max(yHi, v)
		}
	}
	if !(yHi > yLo) {
		yHi = yLo + 1
	}
	if !(xHi > xLo) {
		xHi = xLo + 1
	}
	const margin = 24
	px := func(x float64) int {
		return margin + int((x-xLo)/(xHi-xLo)*float64(w-2*margin))
	}
	py := func(y float64) int {
		return h - margin - int((y-yLo)/(yHi-yLo)*float64(h-2*margin))
	}
	axis := color.RGBA{60, 60, 60, 255}
	drawLine(img, margin, h-margin, w-margin, h-margin, axis)
	drawLine(img, margin, margin, margin, h-margin, axis)

	names := make([]string, 0, len(lp.Series))
	for name := range lp.Series {
		names = append(names, name)
	}
	sortStringsInPlace(names)
	for si, name := range names {
		s := lp.Series[name]
		c := seriesColors[si%len(seriesColors)]
		for i := 1; i < len(s); i++ {
			drawLine(img, px(lp.X[i-1]), py(s[i-1]), px(lp.X[i]), py(s[i]), c)
		}
	}
	return img, nil
}

func sortStringsInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
