// Package perf provides the performance-analysis substrate of the paper:
// TAU-style per-region exclusive timers (§4, figure 2), a kernel catalogue
// with flop and byte counts, and an analytic Cray XT3/XT4 node model used to
// reproduce the weak-scaling and hybrid-balance results (figures 1 and 3).
package perf

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timers accumulates exclusive time per named region for one rank, in the
// style of the TAU instrumentation used on S3D (paper §4). Regions nest;
// time spent in an inner region is excluded from the enclosing one.
//
// Concurrency contract: a Timers value has exactly one owner goroutine —
// the rank that Start/Stop/Time it. It holds no locks, so concurrent
// mutation from multiple goroutines is a data race. For cross-rank
// aggregation, each rank calls Snapshot on its own timer set and hands the
// immutable copy to the aggregator, which Merges the snapshots into a fresh
// Timers it owns; the live per-rank timer sets are never shared.
type Timers struct {
	regions map[string]*Region
	stack   []*frame
	now     func() time.Time
	err     error // first Start/Stop misuse (sticky; see Err)
}

type frame struct {
	r     *Region
	start time.Time
	inner time.Duration
}

// Region is one instrumented code region.
type Region struct {
	Name      string
	Exclusive time.Duration
	Inclusive time.Duration
	Calls     int64
}

// NewTimers returns an empty timer set.
func NewTimers() *Timers {
	return &Timers{regions: map[string]*Region{}, now: time.Now}
}

// NewTimersClock returns a timer set with an injected clock, for tests.
func NewTimersClock(now func() time.Time) *Timers {
	return &Timers{regions: map[string]*Region{}, now: now}
}

// Start enters a region. Regions may nest but not interleave.
func (t *Timers) Start(name string) {
	r := t.regions[name]
	if r == nil {
		r = &Region{Name: name}
		t.regions[name] = r
	}
	t.stack = append(t.stack, &frame{r: r, start: t.now()})
}

// Stop leaves the innermost region, which must be the named one. A
// mismatched or unbalanced Stop does not panic: it records a descriptive
// sticky error (retrievable via Err) and leaves the accumulated timings
// untouched, so a monitoring bug cannot take a production run down.
func (t *Timers) Stop(name string) {
	if len(t.stack) == 0 {
		t.fail(fmt.Errorf("perf: Stop(%q) with empty region stack", name))
		return
	}
	f := t.stack[len(t.stack)-1]
	if f.r.Name != name {
		t.fail(fmt.Errorf("perf: Stop(%q) does not match open region %q", name, f.r.Name))
		return
	}
	t.stack = t.stack[:len(t.stack)-1]
	d := t.now().Sub(f.start)
	f.r.Inclusive += d
	f.r.Exclusive += d - f.inner
	f.r.Calls++
	if len(t.stack) > 0 {
		t.stack[len(t.stack)-1].inner += d
	}
}

// Observe folds an externally measured duration into a region without
// touching the nesting stack: d is added to both the exclusive and the
// inclusive time and calls to the call count. It is the pool-aware path of
// the per-kernel instrumentation — worker goroutines time each tile
// themselves and Observe the span into their own Timers, since Start/Stop
// pairs cannot nest across goroutines. The single-owner contract still
// applies: one goroutine per Timers value.
func (t *Timers) Observe(name string, d time.Duration, calls int64) {
	r := t.regions[name]
	if r == nil {
		r = &Region{Name: name}
		t.regions[name] = r
	}
	r.Exclusive += d
	r.Inclusive += d
	r.Calls += calls
}

// fail records the first misuse error.
func (t *Timers) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// Err returns the first Start/Stop misuse recorded, or nil. Timings
// accumulated before the misuse remain valid; timings after it may
// undercount the mishandled regions.
func (t *Timers) Err() error { return t.err }

// Time runs fn inside the named region.
func (t *Timers) Time(name string, fn func()) {
	t.Start(name)
	defer t.Stop(name)
	fn()
}

// Region returns the accumulated data for a region (nil if never entered).
func (t *Timers) Region(name string) *Region { return t.regions[name] }

// Regions returns all regions sorted by descending exclusive time.
func (t *Timers) Regions() []*Region {
	out := make([]*Region, 0, len(t.regions))
	for _, r := range t.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Exclusive > out[j].Exclusive })
	return out
}

// Total returns the sum of exclusive times (== total instrumented time).
func (t *Timers) Total() time.Duration {
	var d time.Duration
	for _, r := range t.regions {
		d += r.Exclusive
	}
	return d
}

// Report renders a figure-2-style exclusive-time breakdown.
func (t *Timers) Report() string {
	var b strings.Builder
	total := t.Total()
	fmt.Fprintf(&b, "%-32s %12s %8s %7s\n", "REGION", "EXCL", "CALLS", "%")
	for _, r := range t.Regions() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Exclusive) / float64(total)
		}
		fmt.Fprintf(&b, "%-32s %12s %8d %6.1f%%\n", r.Name, r.Exclusive.Round(time.Microsecond), r.Calls, pct)
	}
	return b.String()
}

// Snapshot returns an immutable copy of the accumulated regions, safe to
// hand to another goroutine for cross-rank merging. The copy carries no
// open-region stack: it is a pure accumulation record, usable only as a
// Merge source or for reporting.
func (t *Timers) Snapshot() *Timers {
	cp := &Timers{regions: make(map[string]*Region, len(t.regions)), now: t.now, err: t.err}
	for name, r := range t.regions {
		c := *r
		cp.regions[name] = &c
	}
	return cp
}

// Merge adds other's accumulations into t (for cross-rank averaging).
func (t *Timers) Merge(other *Timers) {
	for name, r := range other.regions {
		dst := t.regions[name]
		if dst == nil {
			dst = &Region{Name: name}
			t.regions[name] = dst
		}
		dst.Exclusive += r.Exclusive
		dst.Inclusive += r.Inclusive
		dst.Calls += r.Calls
	}
}
