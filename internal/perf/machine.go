package perf

import "math"

// Machine is an analytic node model: per-core peak flop rate, peak memory
// bandwidth per core, and NIC characteristics. Kernel times follow the
// roofline rule — a kernel runs at whichever of its compute or memory
// demand is slower — which is precisely the effect §4 measures: "CPU-bound
// computations take approximately the same time on both XT3 and XT4 nodes,
// whereas memory-intensive loops take longer on the XT3 nodes."
type Machine struct {
	Name     string
	FlopRate float64 // flops/s per core
	MemBW    float64 // bytes/s per core
	NICLat   float64 // s per message
	NICBW    float64 // bytes/s
}

// The Jaguar node types of §3: 2.6 GHz dual-core Opterons; XT3 nodes have
// 6.4 GB/s of memory bandwidth, XT4 nodes 10.6 GB/s (shared by two cores).
var (
	XT3 = Machine{Name: "XT3", FlopRate: 5.2e9, MemBW: 3.2e9, NICLat: 6e-6, NICBW: 2e9}
	XT4 = Machine{Name: "XT4", FlopRate: 5.2e9, MemBW: 5.3e9, NICLat: 6e-6, NICBW: 2e9}
	// XD1 is the Cray XD1 single-node testbed of §4.1 (2.2 GHz Opteron 275,
	// DDR 400 at 6.4 GB/s — "as on Jaguar's XT3 nodes").
	XD1 = Machine{Name: "XD1", FlopRate: 4.4e9, MemBW: 6.4e9, NICLat: 10e-6, NICBW: 1e9}
)

// Kernel describes one S3D kernel's per-grid-point per-time-step demand.
type Kernel struct {
	Name  string
	Flops float64 // flops per grid point per step
	Bytes float64 // memory traffic per grid point per step
}

// Time returns the kernel's per-grid-point time on a machine (roofline).
func (k Kernel) Time(m Machine) float64 {
	return math.Max(k.Flops/m.FlopRate, k.Bytes/m.MemBW)
}

// S3DKernels is the kernel mix of the 50³ model problem, calibrated so the
// total reproduces the paper's measured 55 µs per grid point per step on
// XT4 and ≈68 µs on XT3 (figure 1): chemistry (REACTION_RATE_BOUNDS) is
// compute-bound and machine-independent, while the derivative, diffusive
// flux, transport-property and integration loops are bandwidth-bound. The
// region names follow figure 2.
var S3DKernels = []Kernel{
	{Name: "REACTION_RATE_BOUNDS", Flops: 124e3, Bytes: 12e3},
	{Name: "COMPUTESPECIESDIFFFLUX", Flops: 12e3, Bytes: 48e3},
	{Name: "COMPUTEVECTORGRADIENT", Flops: 10e3, Bytes: 18e3},
	{Name: "COMPUTESCALARGRADIENT", Flops: 8e3, Bytes: 13e3},
	{Name: "COMPUTEHEATFLUX", Flops: 6e3, Bytes: 9e3},
	{Name: "GETPROPS_TRANSPORT", Flops: 52e3, Bytes: 11e3},
	{Name: "INTEGRATE_RK", Flops: 8e3, Bytes: 13.5e3},
	{Name: "FILTER", Flops: 9e3, Bytes: 10.2e3},
}

// NodalCost returns the modelled per-grid-point per-step cost (s) of the
// kernel mix on a machine.
func NodalCost(m Machine, kernels []Kernel) float64 {
	var t float64
	for _, k := range kernels {
		t += k.Time(m)
	}
	return t
}

// WeakScalingPoint is one sample of the figure-1 study.
type WeakScalingPoint struct {
	Cores       int
	CostPerGP   float64 // s per grid point per step
	XT3Fraction float64
}

// totalXT4Cores is Jaguar's 2007 XT4 complement (5294 nodes × 2 cores, §3).
const totalXT4Cores = 10588

// WeakScaling reproduces figure 1: the cost per grid point per step of the
// 50×50×50-per-core model problem as the core count grows, on pure XT3,
// pure XT4, and the hybrid allocation (XT4 first, spilling onto XT3 above
// 10588 cores; the paper plots hybrid points above 8192). Bulk-synchronous
// steps run at the slowest rank's pace, so any XT3 presence pins the hybrid
// cost at the XT3 rate — the plateau the paper observes from 12000 to
// 22800 cores.
func WeakScaling(cores []int, mode string) []WeakScalingPoint {
	const pointsPerCore = 50 * 50 * 50
	out := make([]WeakScalingPoint, 0, len(cores))
	c3 := NodalCost(XT3, S3DKernels)
	c4 := NodalCost(XT4, S3DKernels)
	for _, n := range cores {
		var cost, frac3 float64
		switch mode {
		case "xt3":
			cost, frac3 = c3, 1
		case "xt4":
			cost, frac3 = c4, 0
		default: // hybrid
			n3 := n - totalXT4Cores
			if n3 < 0 {
				n3 = 0
			}
			frac3 = float64(n3) / float64(n)
			if n3 > 0 {
				cost = c3
			} else {
				cost = c4
			}
		}
		// Nearest-neighbour ghost exchange: six ~80 kB messages per stage,
		// overlapped with computation; the visible cost is a small
		// synchronisation term that grows logarithmically with core count
		// (the paper's curves are flat to within a few per cent).
		comm := (XT4.NICLat*6 + 80e3/XT4.NICBW) * math.Log2(float64(n)+1) * 0.02
		out = append(out, WeakScalingPoint{
			Cores:       n,
			CostPerGP:   cost + comm/pointsPerCore,
			XT3Fraction: frac3,
		})
	}
	return out
}

// HybridBalancePoint is one sample of the figure-3 prediction.
type HybridBalancePoint struct {
	XT4Fraction float64
	CostPerGP   float64
}

// HybridBalance reproduces figure 3: the predicted average cost per grid
// point per time step when the XT3 nodes run a reduced 50×50×40 block
// (the paper's conservative one-dimension reduction compensating for their
// ≈24% lower performance) while XT4 nodes keep 50×50×50. The average cost
// is machine time divided by the mean per-core grid points.
func HybridBalance(fractions []float64) []HybridBalancePoint {
	const (
		gpXT4 = 50 * 50 * 50
		gpXT3 = 50 * 50 * 40
	)
	c3 := NodalCost(XT3, S3DKernels)
	c4 := NodalCost(XT4, S3DKernels)
	t3 := c3 * gpXT3
	t4 := c4 * gpXT4
	step := math.Max(t3, t4) // bulk-synchronous
	out := make([]HybridBalancePoint, 0, len(fractions))
	for _, f4 := range fractions {
		meanGP := f4*gpXT4 + (1-f4)*gpXT3
		out = append(out, HybridBalancePoint{XT4Fraction: f4, CostPerGP: step / meanGP})
	}
	return out
}

// RegionBreakdown models figure 2: the per-region exclusive times of one
// time step for a rank of the given machine inside a hybrid run. Faster
// (XT4) ranks arrive early at the ghost synchronisation and accumulate the
// difference in MPI_Wait.
func RegionBreakdown(m Machine, slowest Machine, kernels []Kernel) map[string]float64 {
	const pointsPerCore = 50 * 50 * 50
	out := make(map[string]float64, len(kernels)+1)
	var own float64
	for _, k := range kernels {
		t := k.Time(m) * pointsPerCore
		out[k.Name] = t
		own += t
	}
	slowTotal := NodalCost(slowest, kernels) * pointsPerCore
	wait := slowTotal - own
	if wait < 0 {
		wait = 0
	}
	out["MPI_WAIT"] = wait
	return out
}

// DiffFluxModelSpeedup returns the modelled whole-program saving of the
// figure-5 restructuring: the diffusive-flux kernel's memory traffic drops
// by the measured kernel speedup (2.94× on the XD1), shrinking its share of
// the total (11.3% before, §4.1 reports 6.8% total saving from this loop
// alone).
func DiffFluxModelSpeedup(m Machine, kernelSpeedup float64) (before, after, saving float64) {
	before = NodalCost(m, S3DKernels)
	mod := make([]Kernel, len(S3DKernels))
	copy(mod, S3DKernels)
	for i := range mod {
		if mod[i].Name == "COMPUTESPECIESDIFFFLUX" {
			mod[i].Bytes /= kernelSpeedup
			mod[i].Flops /= 1.2 // unswitched conditionals also drop some ops
		}
	}
	after = NodalCost(m, mod)
	saving = 1 - after/before
	return before, after, saving
}
