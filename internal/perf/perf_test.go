package perf

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimersExclusiveNesting(t *testing.T) {
	// Injected clock: each call advances 1 ms.
	now := time.Unix(0, 0)
	clk := func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
	tm := NewTimersClock(clk)
	tm.Start("outer") // t=1
	tm.Start("inner") // t=2
	tm.Stop("inner")  // t=3 → inner excl 1ms
	tm.Stop("outer")  // t=4 → outer incl 3ms, excl 3-1=2ms
	if got := tm.Region("inner").Exclusive; got != time.Millisecond {
		t.Fatalf("inner exclusive = %v", got)
	}
	if got := tm.Region("outer").Exclusive; got != 2*time.Millisecond {
		t.Fatalf("outer exclusive = %v", got)
	}
	if got := tm.Region("outer").Inclusive; got != 3*time.Millisecond {
		t.Fatalf("outer inclusive = %v", got)
	}
}

func TestTimersMismatchedStopRecordsError(t *testing.T) {
	tm := NewTimers()
	tm.Start("a")
	tm.Stop("b") // mismatched: must not panic, must record a descriptive error
	err := tm.Err()
	if err == nil {
		t.Fatal("expected sticky error after mismatched Stop")
	}
	if !strings.Contains(err.Error(), `Stop("b")`) || !strings.Contains(err.Error(), `"a"`) {
		t.Fatalf("error not descriptive: %v", err)
	}
	tm.Stop("a") // region a is still open and must close cleanly
	if tm.Region("a").Calls != 1 {
		t.Fatalf("region a calls = %d", tm.Region("a").Calls)
	}
	// The first error is sticky across later misuse.
	tm.Stop("a")
	if got := tm.Err(); got != err {
		t.Fatalf("sticky error replaced: %v", got)
	}
}

func TestTimersStopEmptyStackRecordsError(t *testing.T) {
	tm := NewTimers()
	tm.Stop("never-started")
	if err := tm.Err(); err == nil || !strings.Contains(err.Error(), "empty region stack") {
		t.Fatalf("err = %v", err)
	}
}

func TestTimersSnapshotIsImmutableCopy(t *testing.T) {
	now := time.Unix(0, 0)
	clk := func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}
	tm := NewTimersClock(clk)
	tm.Time("rhs", func() {})
	snap := tm.Snapshot()
	tm.Time("rhs", func() {})
	tm.Time("filter", func() {})
	if snap.Region("rhs").Calls != 1 {
		t.Fatalf("snapshot mutated by later accumulation: calls = %d", snap.Region("rhs").Calls)
	}
	if snap.Region("filter") != nil {
		t.Fatal("snapshot grew a region recorded after the copy")
	}
	// The per-rank merge pattern: snapshots from each rank fold into a fresh
	// aggregate owned by the merging goroutine.
	agg := NewTimers()
	agg.Merge(snap)
	agg.Merge(tm.Snapshot())
	if agg.Region("rhs").Calls != 3 {
		t.Fatalf("merged calls = %d", agg.Region("rhs").Calls)
	}
}

func TestTimersReportAndMerge(t *testing.T) {
	tm := NewTimers()
	tm.Time("work", func() { time.Sleep(time.Millisecond) })
	rep := tm.Report()
	if !strings.Contains(rep, "work") {
		t.Fatalf("report missing region: %s", rep)
	}
	other := NewTimers()
	other.Time("work", func() {})
	other.Time("extra", func() {})
	tm.Merge(other)
	if tm.Region("work").Calls != 2 || tm.Region("extra") == nil {
		t.Fatal("merge failed")
	}
}

func TestNodalCostMatchesPaper(t *testing.T) {
	// Figure 1: ≈55 µs/gp/step on XT4, ≈68 µs on XT3 (±10%).
	c4 := NodalCost(XT4, S3DKernels) * 1e6
	c3 := NodalCost(XT3, S3DKernels) * 1e6
	if math.Abs(c4-55)/55 > 0.10 {
		t.Fatalf("XT4 cost = %.1f µs, want ≈ 55", c4)
	}
	if math.Abs(c3-68)/68 > 0.10 {
		t.Fatalf("XT3 cost = %.1f µs, want ≈ 68", c3)
	}
	// The paper's ≈24% XT3 penalty.
	if r := c3 / c4; r < 1.15 || r > 1.35 {
		t.Fatalf("XT3/XT4 ratio = %.2f, want ≈ 1.24", r)
	}
}

func TestWeakScalingFlat(t *testing.T) {
	cores := []int{2, 64, 1024, 8192}
	for _, mode := range []string{"xt3", "xt4"} {
		pts := WeakScaling(cores, mode)
		first := pts[0].CostPerGP
		for _, p := range pts {
			if math.Abs(p.CostPerGP-first)/first > 0.03 {
				t.Fatalf("%s not flat: %.2f vs %.2f µs", mode, p.CostPerGP*1e6, first*1e6)
			}
		}
	}
}

func TestWeakScalingHybridPlateau(t *testing.T) {
	pts := WeakScaling([]int{2, 8192, 12000, 22800}, "hybrid")
	c3 := NodalCost(XT3, S3DKernels)
	c4 := NodalCost(XT4, S3DKernels)
	// Below the XT4 complement the hybrid runs at XT4 speed.
	if math.Abs(pts[0].CostPerGP-c4)/c4 > 0.03 {
		t.Fatalf("hybrid small = %.1f µs, want XT4 %.1f", pts[0].CostPerGP*1e6, c4*1e6)
	}
	// "the cost per grid point per time step from 12000 to 22800 cores is
	// approximately 68 ms [µs], matching the computation rate on the XT3
	// cores alone."
	for _, p := range pts[2:] {
		if math.Abs(p.CostPerGP-c3)/c3 > 0.03 {
			t.Fatalf("hybrid plateau = %.1f µs at %d cores, want XT3 %.1f",
				p.CostPerGP*1e6, p.Cores, c3*1e6)
		}
		if p.XT3Fraction <= 0 {
			t.Fatalf("no XT3 cores at %d", p.Cores)
		}
	}
}

func TestHybridBalanceMatchesPaper(t *testing.T) {
	// Figure 3 at the 2007 configuration: "46% of the nodes are XT4 nodes,
	// leading to a predicted performance of 61 µs per grid point".
	pts := HybridBalance([]float64{0, 0.46, 1})
	at46 := pts[1].CostPerGP * 1e6
	if math.Abs(at46-61)/61 > 0.08 {
		t.Fatalf("balanced hybrid at 46%% XT4 = %.1f µs, want ≈ 61", at46)
	}
	// Monotone decreasing in XT4 fraction.
	if !(pts[0].CostPerGP > pts[1].CostPerGP && pts[1].CostPerGP > pts[2].CostPerGP) {
		t.Fatalf("balance curve not decreasing: %v", pts)
	}
	// Pure XT4 recovers the 55 µs rate.
	if got := pts[2].CostPerGP * 1e6; math.Abs(got-55)/55 > 0.10 {
		t.Fatalf("pure XT4 balanced = %.1f µs", got)
	}
}

func TestRegionBreakdownXT4WaitsXT3Works(t *testing.T) {
	// Figure 2: XT4 ranks spend "substantially longer in MPI_Wait"; the
	// chemistry kernel takes "nearly identical time in both classes" while
	// COMPUTESPECIESDIFFFLUX is "noticeably longer" on XT3.
	b3 := RegionBreakdown(XT3, XT3, S3DKernels)
	b4 := RegionBreakdown(XT4, XT3, S3DKernels)
	if b4["MPI_WAIT"] <= b3["MPI_WAIT"] {
		t.Fatalf("XT4 wait %.3g not above XT3 wait %.3g", b4["MPI_WAIT"], b3["MPI_WAIT"])
	}
	chemRatio := b3["REACTION_RATE_BOUNDS"] / b4["REACTION_RATE_BOUNDS"]
	if math.Abs(chemRatio-1) > 0.02 {
		t.Fatalf("chemistry differs across node types: ratio %.3f", chemRatio)
	}
	diffRatio := b3["COMPUTESPECIESDIFFFLUX"] / b4["COMPUTESPECIESDIFFFLUX"]
	if diffRatio < 1.3 {
		t.Fatalf("diffusive flux not memory-bound: XT3/XT4 ratio %.2f", diffRatio)
	}
	// The diffusive flux kernel is a leading memory-bound consumer (§4.1
	// reports 11.3% of the total on the XD1).
	_, _, saving := DiffFluxModelSpeedup(XD1, 2.94)
	if saving < 0.04 || saving > 0.12 {
		t.Fatalf("modelled whole-code saving = %.1f%%, want ≈ 6.8%%", saving*100)
	}
}

func TestDiffFluxModelImproves(t *testing.T) {
	before, after, saving := DiffFluxModelSpeedup(XD1, 2.94)
	if !(after < before) || saving <= 0 {
		t.Fatalf("no modelled improvement: %g → %g", before, after)
	}
}

func TestObserveFoldsWithoutStack(t *testing.T) {
	tm := NewTimers()
	tm.Start("outer")
	tm.Observe("kernel", 3*time.Millisecond, 2)
	tm.Observe("kernel", 2*time.Millisecond, 1)
	tm.Stop("outer")
	r := tm.Region("kernel")
	if r == nil || r.Exclusive != 5*time.Millisecond || r.Inclusive != 5*time.Millisecond || r.Calls != 3 {
		t.Fatalf("kernel region = %+v, want 5ms/5ms/3 calls", r)
	}
	if err := tm.Err(); err != nil {
		t.Fatalf("Observe disturbed the region stack: %v", err)
	}
	// Observe must not subtract from the enclosing region's exclusive time:
	// the observed span was measured on another goroutine.
	if out := tm.Region("outer"); out.Calls != 1 {
		t.Fatalf("outer region = %+v", out)
	}
}
