// Package jsonl is the shared append-only JSONL store used by every
// observability subsystem that persists one record per line (insitu
// analysis.jsonl, cost cost.jsonl, critpath critpath.jsonl). It factors the
// previously copy-pasted store/reader pairs onto one generic helper and
// upgrades every reader to the obs.ReadTrace corrupt-tail contract: a run
// killed mid-write leaves a truncated final line, and the valid prefix must
// still load.
package jsonl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Store is an append-only JSONL sink: one record per line, flushed per
// append so the file stays live for the dashboard and for tail -f while the
// run is in flight. Methods are safe for concurrent use.
type Store[T any] struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error
}

// Create creates (truncating) a store at path.
func Create[T any](path string) (*Store[T], error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Store[T]{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one record as a JSON line and flushes.
func (s *Store[T]) Append(r T) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// Sink adapts the store to a collector/pipeline subscriber. Write failures
// never take the run down; the first one is retained for Err.
func (s *Store[T]) Sink() func(T) {
	return func(r T) {
		if err := s.Append(r); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
	}
}

// Err returns the first append failure seen by Sink, if any.
func (s *Store[T]) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and closes the store file.
func (s *Store[T]) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Read loads every record of a JSONL store, tolerating a corrupt tail the
// way obs.ReadTrace does: unparseable lines with no valid record after them
// (the truncated-tail case, including an over-long final fragment) are
// dropped silently and the prefix is returned with a nil error. An
// unparseable line *followed by* valid records means mid-stream corruption:
// the valid prefix before the damage is returned along with an error naming
// the line, prefixed with pkg (the owning package, for error attribution).
func Read[T any](pkg, path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []T
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var badErr error
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var r T
		if err := json.Unmarshal([]byte(text), &r); err != nil {
			if badErr == nil {
				badErr = fmt.Errorf("%s: %s:%d: %v", pkg, path, line, err)
			}
			continue
		}
		if badErr != nil {
			// Valid data after the damage: not a truncated tail.
			return recs, badErr
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return recs, err
	}
	return recs, nil
}
