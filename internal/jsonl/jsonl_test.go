package jsonl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	Step int    `json:"step"`
	Name string `json:"name"`
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jsonl")
	st, err := Create[rec](path)
	if err != nil {
		t.Fatal(err)
	}
	sink := st.Sink()
	sink(rec{Step: 1, Name: "a"})
	sink(rec{Step: 2, Name: "b"})
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read[rec]("test", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Step != 1 || recs[1].Name != "b" {
		t.Fatalf("round trip lost data: %+v", recs)
	}
}

// TestReadCorruptTail pins the obs.ReadTrace-style recovery contract: a
// truncated final line (run killed mid-append) is dropped silently; damage
// followed by valid records is a real error naming the line.
func TestReadCorruptTail(t *testing.T) {
	dir := t.TempDir()

	tail := filepath.Join(dir, "tail.jsonl")
	if err := os.WriteFile(tail, []byte("{\"step\":1}\n{\"step\":2}\n{\"ste"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Read[rec]("test", tail)
	if err != nil {
		t.Fatalf("truncated tail must be tolerated, got %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want the 2-record prefix", len(recs))
	}

	mid := filepath.Join(dir, "mid.jsonl")
	if err := os.WriteFile(mid, []byte("{\"step\":1}\n{garbage\n{\"step\":3}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = Read[rec]("test", mid)
	if err == nil {
		t.Fatal("mid-stream corruption must report an error")
	}
	if !strings.Contains(err.Error(), "test: ") || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("error must name the package and line: %v", err)
	}
	if len(recs) != 1 || recs[0].Step != 1 {
		t.Fatalf("got %+v, want the pre-damage prefix", recs)
	}

	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = Read[rec]("test", empty)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty store: recs=%v err=%v", recs, err)
	}

	if _, err := Read[rec]("test", filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file must error")
	}
}
