// Package stats provides the flame diagnostics of the paper's science
// sections: Bilger's mixture fraction (the ξ of the T–ξ scatter plots in
// figure 11), the reaction progress variable c and |∇c| flame-thickness
// measure (figure 13), conditional means and standard deviations over
// binned conditioning variables, scatter sampling, and histograms for the
// visualization interface (figure 15).
package stats

import (
	"math"

	"github.com/s3dgo/s3d/internal/thermo"
)

// Bilger computes Bilger's mixture fraction for a state Y given the pure
// fuel-stream and oxidiser-stream compositions. It uses the standard
// coupling function β = 2·Z_C/W_C + Z_H/(2·W_H) − Z_O/W_O:
//
//	ξ = (β − β_ox) / (β_fuel − β_ox)
//
// which is unity in the fuel stream, zero in the oxidiser stream, and
// conserved under chemical reaction.
type Bilger struct {
	set           *thermo.Set
	betaF, betaOx float64
}

// NewBilger prepares a mixture-fraction evaluator for the two streams.
func NewBilger(set *thermo.Set, yFuel, yOx []float64) *Bilger {
	b := &Bilger{set: set}
	b.betaF = b.beta(yFuel)
	b.betaOx = b.beta(yOx)
	return b
}

func (b *Bilger) beta(Y []float64) float64 {
	zc := b.set.ElementMassFraction("C", Y)
	zh := b.set.ElementMassFraction("H", Y)
	zo := b.set.ElementMassFraction("O", Y)
	const wc, wh, wo = 0.0120107, 0.0010079, 0.0159994
	return 2*zc/wc + zh/(2*wh) - zo/wo
}

// Xi returns the mixture fraction of state Y, clipped to [0, 1].
func (b *Bilger) Xi(Y []float64) float64 {
	xi := (b.beta(Y) - b.betaOx) / (b.betaF - b.betaOx)
	if xi < 0 {
		return 0
	}
	if xi > 1 {
		return 1
	}
	return xi
}

// XiStoich returns the stoichiometric mixture fraction: the ξ at which the
// coupling function of the unburnt blend crosses zero.
func (b *Bilger) XiStoich() float64 {
	// β varies linearly in ξ for a two-stream blend: β(ξ) = β_ox + ξ(β_F−β_ox).
	return -b.betaOx / (b.betaF - b.betaOx)
}

// LinearWeights expresses the (unclipped) mixture fraction as a linear
// form over the species mass fractions, ξ = w0 + Σ_n w[n]·Y[n] — possible
// because β is linear in Y. In-situ consumers evaluate ξ per cell as one
// dot product over the species fields without assembling a Y slice.
func (b *Bilger) LinearWeights(ns int) (w []float64, w0 float64) {
	den := b.betaF - b.betaOx
	w = make([]float64, ns)
	e := make([]float64, ns)
	for n := 0; n < ns; n++ {
		e[n] = 1
		w[n] = b.beta(e) / den
		e[n] = 0
	}
	return w, -b.betaOx / den
}

// Progress computes the reaction progress variable used in §7.3: a linear
// function of the O2 mass fraction with c = 0 in reactants and c = 1 in
// products.
type Progress struct {
	YO2u, YO2b float64
}

// C returns the progress variable at the given O2 mass fraction, clipped
// to [0, 1].
func (p Progress) C(yO2 float64) float64 {
	c := (p.YO2u - yO2) / (p.YO2u - p.YO2b)
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// Conditional accumulates the conditional mean and standard deviation of a
// quantity against a binned conditioning variable — the machinery behind
// the open circles and diamonds of figure 11 and the curves of figure 13.
type Conditional struct {
	Lo, Hi float64
	sum    []float64
	sum2   []float64
	count  []float64
}

// NewConditional creates an accumulator with n bins over [lo, hi].
func NewConditional(n int, lo, hi float64) *Conditional {
	return &Conditional{
		Lo: lo, Hi: hi,
		sum:   make([]float64, n),
		sum2:  make([]float64, n),
		count: make([]float64, n),
	}
}

// Add records one (condition, value) sample.
func (c *Conditional) Add(cond, value float64) {
	n := len(c.sum)
	f := (cond - c.Lo) / (c.Hi - c.Lo)
	bin := int(f * float64(n))
	if bin < 0 || bin >= n {
		return
	}
	c.sum[bin] += value
	c.sum2[bin] += value * value
	c.count[bin]++
}

// Bins returns per-bin centres, conditional means, standard deviations and
// sample counts. Bins with no samples report NaN mean/std.
func (c *Conditional) Bins() (centers, means, stds, counts []float64) {
	n := len(c.sum)
	centers = make([]float64, n)
	means = make([]float64, n)
	stds = make([]float64, n)
	counts = make([]float64, n)
	for i := 0; i < n; i++ {
		centers[i] = c.Lo + (float64(i)+0.5)*(c.Hi-c.Lo)/float64(n)
		counts[i] = c.count[i]
		if c.count[i] == 0 {
			means[i] = math.NaN()
			stds[i] = math.NaN()
			continue
		}
		m := c.sum[i] / c.count[i]
		means[i] = m
		v := c.sum2[i]/c.count[i] - m*m
		if v < 0 {
			v = 0
		}
		stds[i] = math.Sqrt(v)
	}
	return centers, means, stds, counts
}

// MeanAt interpolates the conditional mean at a condition value (NaN
// outside populated bins).
func (c *Conditional) MeanAt(cond float64) float64 {
	_, means, _, _ := c.Bins()
	n := len(means)
	f := (cond - c.Lo) / (c.Hi - c.Lo) * float64(n)
	bin := int(f)
	if bin < 0 || bin >= n {
		return math.NaN()
	}
	return means[bin]
}

// Scatter collects decimated (x, y) samples for scatter plots (figure 11
// plots every sampled grid point).
type Scatter struct {
	Every int // keep one sample in Every (0 keeps all)
	X, Y  []float64
	seen  int
}

// Add offers one sample to the scatter set.
func (s *Scatter) Add(x, y float64) {
	s.seen++
	if s.Every > 1 && s.seen%s.Every != 0 {
		return
	}
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Histogram is a fixed-range histogram; the paper's time-histogram
// interface (figure 15) stacks one per timestep.
type Histogram struct {
	Lo, Hi float64
	Counts []float64
	total  float64
}

// NewHistogram creates a histogram with n bins over [lo, hi].
func NewHistogram(n int, lo, hi float64) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, n)}
}

// Add records a sample; out-of-range samples clip to the end bins.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	f := (v - h.Lo) / (h.Hi - h.Lo)
	bin := int(f * float64(n))
	if bin < 0 {
		bin = 0
	}
	if bin >= n {
		bin = n - 1
	}
	h.Counts[bin]++
	h.total++
}

// Normalized returns bin probabilities.
func (h *Histogram) Normalized() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = c / h.total
	}
	return out
}

// Correlation returns the Pearson correlation of two equal-length series —
// used to verify the χ–OH anticorrelation finding of figure 15.
func Correlation(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 || len(x) != len(y) {
		return math.NaN()
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
