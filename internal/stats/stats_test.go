package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/s3dgo/s3d/internal/thermo"
)

func h2Streams() (*thermo.Set, []float64, []float64) {
	set := thermo.MustSet("H2", "O2", "N2", "H2O", "OH")
	// Fuel: 65% H2 / 35% N2 by volume (the paper's central jet).
	xF := []float64{0.65, 0, 0.35, 0, 0}
	yF := make([]float64, 5)
	set.MassFractions(xF, yF)
	yOx := []float64{0, 0.233, 0.767, 0, 0}
	return set, yF, yOx
}

func TestBilgerEndpoints(t *testing.T) {
	set, yF, yOx := h2Streams()
	b := NewBilger(set, yF, yOx)
	if xi := b.Xi(yF); math.Abs(xi-1) > 1e-12 {
		t.Fatalf("fuel-stream ξ = %g", xi)
	}
	if xi := b.Xi(yOx); math.Abs(xi) > 1e-12 {
		t.Fatalf("oxidiser-stream ξ = %g", xi)
	}
}

func TestBilgerLinearInBlending(t *testing.T) {
	set, yF, yOx := h2Streams()
	b := NewBilger(set, yF, yOx)
	prop := func(fRaw uint8) bool {
		f := float64(fRaw) / 255
		y := make([]float64, len(yF))
		for i := range y {
			y[i] = f*yF[i] + (1-f)*yOx[i]
		}
		return math.Abs(b.Xi(y)-f) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestBilgerConservedUnderReaction(t *testing.T) {
	// Converting H2+O2 into H2O must not change ξ (element-based).
	set, yF, yOx := h2Streams()
	b := NewBilger(set, yF, yOx)
	y := []float64{0.02, 0.20, 0.73, 0.05, 0.0}
	before := b.Xi(y)
	// React 2H2 + O2 → 2H2O with exact species-weight ratios so elements
	// are conserved to machine precision.
	wH2 := set.Species[set.Index("H2")].W
	wO2 := set.Species[set.Index("O2")].W
	wH2O := set.Species[set.Index("H2O")].W
	dH2 := -0.01
	dO2 := dH2 / (2 * wH2) * wO2
	dH2O := -dH2 / wH2 * wH2O
	y2 := []float64{y[0] + dH2, y[1] + dO2, y[2], y[3] + dH2O, y[4]}
	after := b.Xi(y2)
	if math.Abs(before-after) > 1e-9 {
		t.Fatalf("ξ changed under reaction: %g → %g", before, after)
	}
}

func TestXiStoichReasonable(t *testing.T) {
	set, yF, yOx := h2Streams()
	b := NewBilger(set, yF, yOx)
	xiSt := b.XiStoich()
	// For 65/35 H2/N2 vs air, stoichiometric ξ is lean-shifted, around
	// 0.1–0.4 (pure H2/air would be ≈ 0.028; dilution raises it).
	if xiSt < 0.02 || xiSt > 0.6 {
		t.Fatalf("ξ_st = %g out of plausible range", xiSt)
	}
	// Verify against the zero of the coupling function by blending.
	y := make([]float64, len(yF))
	for i := range y {
		y[i] = xiSt*yF[i] + (1-xiSt)*yOx[i]
	}
	if beta := b.beta(y); math.Abs(beta) > 1e-9 {
		t.Fatalf("β(ξ_st) = %g, want 0", beta)
	}
}

func TestProgressVariable(t *testing.T) {
	p := Progress{YO2u: 0.22, YO2b: 0.05}
	if c := p.C(0.22); c != 0 {
		t.Fatalf("c(unburnt) = %g", c)
	}
	if c := p.C(0.05); c != 1 {
		t.Fatalf("c(burnt) = %g", c)
	}
	if c := p.C(0.135); math.Abs(c-0.5) > 1e-12 {
		t.Fatalf("c(mid) = %g", c)
	}
	if c := p.C(0.30); c != 0 {
		t.Fatalf("clipping failed: %g", c)
	}
}

func TestConditionalMeanRecoversFunction(t *testing.T) {
	c := NewConditional(20, 0, 1)
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 100000; n++ {
		x := rng.Float64()
		y := 3*x + 1 + 0.1*rng.NormFloat64()
		c.Add(x, y)
	}
	centers, means, stds, counts := c.Bins()
	for i := range centers {
		if counts[i] < 100 {
			t.Fatalf("bin %d underpopulated", i)
		}
		want := 3*centers[i] + 1
		if math.Abs(means[i]-want) > 0.05 {
			t.Fatalf("bin %d mean = %g, want %g", i, means[i], want)
		}
		if math.Abs(stds[i]-0.1) > 0.03 {
			t.Fatalf("bin %d std = %g, want ≈ 0.1", i, stds[i])
		}
	}
}

func TestConditionalEmptyBinsNaN(t *testing.T) {
	c := NewConditional(4, 0, 1)
	c.Add(0.1, 5)
	_, means, _, counts := c.Bins()
	if counts[0] != 1 || math.IsNaN(means[0]) {
		t.Fatal("populated bin wrong")
	}
	if !math.IsNaN(means[3]) {
		t.Fatal("empty bin should be NaN")
	}
}

func TestConditionalIgnoresOutOfRange(t *testing.T) {
	c := NewConditional(4, 0, 1)
	c.Add(-0.5, 100)
	c.Add(1.5, 100)
	_, _, _, counts := c.Bins()
	for _, n := range counts {
		if n != 0 {
			t.Fatal("out-of-range sample binned")
		}
	}
}

func TestScatterDecimation(t *testing.T) {
	s := Scatter{Every: 10}
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(2*i))
	}
	if len(s.X) != 100 {
		t.Fatalf("kept %d samples, want 100", len(s.X))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 0, 1)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%10)/10 + 0.05)
	}
	p := h.Normalized()
	for i, v := range p {
		if math.Abs(v-0.1) > 1e-12 {
			t.Fatalf("bin %d probability %g", i, v)
		}
	}
	// Clipping.
	h.Add(-5)
	h.Add(5)
	if h.Counts[0] != 101 || h.Counts[9] != 101 {
		t.Fatalf("clipping failed: %v", h.Counts)
	}
}

func TestCorrelationSigns(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Correlation(x, y); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", c)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, yneg); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %g", c)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if c := Correlation(x, flat); c != 0 {
		t.Fatalf("degenerate correlation = %g", c)
	}
}
