package turb

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/grid"
)

func sampleField(f *Field, n int, l float64) (u, v, w *grid.Field3, h float64) {
	g := grid.New(grid.Spec{Nx: n, Ny: n, Nz: n, Lx: l, Ly: l, Lz: l})
	u, v, w = grid.NewField3(g), grid.NewField3(g), grid.NewField3(g)
	h = l / float64(n-1)
	fill := func(dst *grid.Field3, comp int) {
		dst.Map(func(i, j, k int, _ float64) float64 {
			uu, vv, ww := f.At(g.Xc[i], g.Yc[j], g.Zc[k])
			switch comp {
			case 0:
				return uu
			case 1:
				return vv
			default:
				return ww
			}
		})
	}
	fill(u, 0)
	fill(v, 1)
	fill(w, 2)
	return u, v, w, h
}

func TestFieldRMSMatchesSpec(t *testing.T) {
	// Sample over a box much larger than L0 so the energetic modes are
	// statistically represented.
	sp := Spectrum{Urms: 2.0, L0: 0.02}
	f := NewField(sp, 200, 1)
	var sum float64
	n := 0.0
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			for k := 0; k < 32; k++ {
				u, v, w := f.At(float64(i)*0.006, float64(j)*0.006, float64(k)*0.006)
				sum += u*u + v*v + w*w
				n++
			}
		}
	}
	rms := math.Sqrt(sum / n / 3)
	if math.Abs(rms-2.0)/2.0 > 0.15 {
		t.Fatalf("component RMS = %g, want ≈ 2.0", rms)
	}
}

func TestFieldNearlyDivergenceFree(t *testing.T) {
	sp := Spectrum{Urms: 1.0, L0: 0.02}
	f := NewField(sp, 150, 2)
	// Analytic divergence of the mode sum is exactly zero; check by finite
	// differences at a few points with small h.
	h := 1e-6
	for _, pt := range [][3]float64{{0.001, 0.002, 0.003}, {0.01, 0.015, 0.02}, {0.03, 0.01, 0.005}} {
		ux1, _, _ := f.At(pt[0]+h, pt[1], pt[2])
		ux0, _, _ := f.At(pt[0]-h, pt[1], pt[2])
		_, vy1, _ := f.At(pt[0], pt[1]+h, pt[2])
		_, vy0, _ := f.At(pt[0], pt[1]-h, pt[2])
		_, _, wz1 := f.At(pt[0], pt[1], pt[2]+h)
		_, _, wz0 := f.At(pt[0], pt[1], pt[2]-h)
		div := (ux1 - ux0 + vy1 - vy0 + wz1 - wz0) / (2 * h)
		// Scale by a typical gradient magnitude u'/L0.
		if math.Abs(div) > 0.05*(1.0/0.02) {
			t.Fatalf("divergence %g at %v", div, pt)
		}
	}
}

func TestFieldZeroMean(t *testing.T) {
	f := NewField(Spectrum{Urms: 1.5, L0: 0.01}, 100, 3)
	u, v, w, _ := sampleField(f, 20, 0.05)
	n := float64(20 * 20 * 20)
	for i, c := range []*grid.Field3{u, v, w} {
		if m := c.SumInterior() / n; math.Abs(m) > 0.3 {
			t.Fatalf("component %d mean = %g, want ≈ 0", i, m)
		}
	}
}

func TestSweepConsistentWithAt(t *testing.T) {
	f := NewField(Spectrum{Urms: 1, L0: 0.02}, 50, 4)
	u1, v1, w1 := f.Sweep(0.003, 0.004, 2e-4, 100)
	u2, v2, w2 := f.At(-100*2e-4, 0.003, 0.004)
	if u1 != u2 || v1 != v2 || w1 != w2 {
		t.Fatal("Sweep disagrees with At")
	}
}

func TestSeedsReproducible(t *testing.T) {
	a := NewField(Spectrum{Urms: 1, L0: 0.02}, 60, 9)
	b := NewField(Spectrum{Urms: 1, L0: 0.02}, 60, 9)
	ua, _, _ := a.At(0.01, 0.02, 0.03)
	ub, _, _ := b.At(0.01, 0.02, 0.03)
	if ua != ub {
		t.Fatal("same seed produced different fields")
	}
	c := NewField(Spectrum{Urms: 1, L0: 0.02}, 60, 10)
	uc, _, _ := c.At(0.01, 0.02, 0.03)
	if ua == uc {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestMeasureStatisticsScaleSensibly(t *testing.T) {
	sp := Spectrum{Urms: 3.0, L0: 0.01}
	f := NewField(sp, 200, 5)
	u, v, w, h := sampleField(f, 32, 0.04)
	nu := 1.5e-5
	st := Measure(u, v, w, h, h, h, nu)
	if math.Abs(st.Urms-3.0)/3.0 > 0.3 {
		t.Fatalf("measured u' = %g, want ≈ 3", st.Urms)
	}
	if st.Diss <= 0 || st.Lt <= 0 || st.EtaK <= 0 {
		t.Fatalf("non-positive scales: ε=%g lt=%g η=%g", st.Diss, st.Lt, st.EtaK)
	}
	// Integral scale should be within a factor of a few of L0.
	if st.L33 < 0.1*sp.L0 || st.L33 > 10*sp.L0 {
		t.Fatalf("l33 = %g, L0 = %g", st.L33, sp.L0)
	}
	if st.ReT <= 0 {
		t.Fatalf("ReT = %g", st.ReT)
	}
	// Kolmogorov scale below the energetic scale.
	if st.EtaK >= sp.L0 {
		t.Fatalf("η = %g not below L0 = %g", st.EtaK, sp.L0)
	}
}

func TestKarlovitzDamkohler(t *testing.T) {
	if ka := Karlovitz(3e-4, 3e-5); math.Abs(ka-100) > 1e-9 {
		t.Fatalf("Ka = %g, want 100", ka)
	}
	if da := Damkohler(1.8, 2.1e-4, 5.4, 3e-4); math.Abs(da-0.2333) > 0.01 {
		t.Fatalf("Da = %g, want ≈ 0.233", da)
	}
}

func TestHigherUrmsMoreDissipation(t *testing.T) {
	f1 := NewField(Spectrum{Urms: 1, L0: 0.01}, 150, 6)
	f2 := NewField(Spectrum{Urms: 4, L0: 0.01}, 150, 6)
	u1, v1, w1, h := sampleField(f1, 24, 0.03)
	u2, v2, w2, _ := sampleField(f2, 24, 0.03)
	s1 := Measure(u1, v1, w1, h, h, h, 1.5e-5)
	s2 := Measure(u2, v2, w2, h, h, h, 1.5e-5)
	if s2.Diss <= s1.Diss {
		t.Fatalf("dissipation not increasing with u': %g vs %g", s1.Diss, s2.Diss)
	}
}

func TestSweepTimeCorrelation(t *testing.T) {
	// Taylor-swept inflow turbulence must decorrelate over a time of order
	// L0/U0 and stay continuous in t.
	f := NewField(Spectrum{Urms: 1, L0: 0.01}, 150, 12)
	u0 := 50.0
	var same, short, long float64
	n := 0.0
	for i := 0; i < 200; i++ {
		y := float64(i%20) * 0.001
		z := float64(i/20) * 0.001
		a, _, _ := f.Sweep(y, z, 0, u0)
		b, _, _ := f.Sweep(y, z, 1e-6, u0)        // u0·dt = 5e-5 ≪ L0
		c, _, _ := f.Sweep(y, z, 100*0.01/u0, u0) // many integral times
		same += a * a
		short += a * b
		long += a * c
		n++
	}
	rShort := short / same
	rLong := long / same
	if rShort < 0.95 {
		t.Fatalf("short-lag correlation = %g, want ≈ 1", rShort)
	}
	if math.Abs(rLong) > 0.3 {
		t.Fatalf("long-lag correlation = %g, want ≈ 0", rLong)
	}
}

func TestMeasureDegenerateZ(t *testing.T) {
	// Quasi-2D fields (nz tiny) must not panic and must report l33 = 0.
	g := grid.New(grid.Spec{Nx: 16, Ny: 16, Nz: 2, Lx: 0.01, Ly: 0.01, Lz: 0.01})
	u, v, w := grid.NewField3(g), grid.NewField3(g), grid.NewField3(g)
	u.Map(func(i, j, k int, _ float64) float64 { return math.Sin(float64(i)) })
	st := Measure(u, v, w, 1e-3, 1e-3, 1e-3, 1.5e-5)
	if st.L33 != 0 {
		t.Fatalf("l33 = %g for nz=2, want 0", st.L33)
	}
	if math.IsNaN(st.Urms) {
		t.Fatal("NaN urms")
	}
}
