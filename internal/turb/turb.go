// Package turb generates the synthetic turbulence used to initialise and
// force the jet simulations (paper §6.2, §7.2: "turbulence scales evolve
// from the synthetic turbulence specified at the inflow") and measures the
// turbulence statistics reported in table 1: u′, the turbulence length
// scale l_t = u′³/ε̃, the integral scale l₃₃ (autocorrelation of the
// spanwise velocity component in the spanwise direction), and the derived
// Reynolds, Karlovitz and Damköhler numbers.
package turb

import (
	"math"
	"math/rand"

	"github.com/s3dgo/s3d/internal/grid"
)

// Spectrum parameterises the Passot–Pouquet energy spectrum
//
//	E(k) ∝ (k/k0)⁴·exp(−2(k/k0)²)
//
// with RMS velocity Urms and most-energetic wavenumber K0 = 2π/L0 set by
// the desired integral-scale proxy L0.
type Spectrum struct {
	Urms float64
	L0   float64 // length scale of the energy peak
}

// Field is a frozen synthetic isotropic turbulence field built from random
// Fourier modes: solenoidal by construction (every mode's velocity is
// perpendicular to its wavevector) and periodic over its box when the box
// is commensurate with L0.
type Field struct {
	modes []mode
}

type mode struct {
	k     [3]float64 // wavevector
	amp   [3]float64 // velocity direction × amplitude
	phase float64
}

// NewField samples nModes random modes of the spectrum with the given seed.
// Typical use: 100–400 modes give smooth, statistically isotropic fields.
func NewField(sp Spectrum, nModes int, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	k0 := 2 * math.Pi / sp.L0
	f := &Field{modes: make([]mode, 0, nModes)}

	// Sample wavenumber magnitudes from E(k) by rejection over [0, 4k0].
	eMax := pp(1.0) // maximum of (k/k0)⁴ exp(−2(k/k0)²) is at k = k0
	var sumA2 float64
	for len(f.modes) < nModes {
		kMag := rng.Float64() * 4 * k0
		if rng.Float64()*eMax > pp(kMag/k0) {
			continue
		}
		// Random direction for k.
		kv := randUnit(rng)
		// Velocity direction perpendicular to k.
		sigma := perpUnit(rng, kv)
		a := math.Sqrt(pp(kMag / k0)) // amplitude ∝ √E, normalised later
		m := mode{phase: rng.Float64() * 2 * math.Pi}
		for d := 0; d < 3; d++ {
			m.k[d] = kv[d] * kMag
			m.amp[d] = sigma[d] * a
		}
		f.modes = append(f.modes, m)
		sumA2 += a * a
	}
	// Normalise so that <u·u> = 3·Urms² (component RMS = Urms).
	// For u = Σ 2 aₘ σₘ cos(...), <u·u> = Σ 2 aₘ².
	scale := math.Sqrt(3 * sp.Urms * sp.Urms / (2 * sumA2))
	for i := range f.modes {
		for d := 0; d < 3; d++ {
			f.modes[i].amp[d] *= scale
		}
	}
	return f
}

func pp(x float64) float64 { return x * x * x * x * math.Exp(-2*x*x) }

func randUnit(rng *rand.Rand) [3]float64 {
	for {
		v := [3]float64{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
		n := v[0]*v[0] + v[1]*v[1] + v[2]*v[2]
		if n > 1e-4 && n <= 1 {
			inv := 1 / math.Sqrt(n)
			return [3]float64{v[0] * inv, v[1] * inv, v[2] * inv}
		}
	}
}

func perpUnit(rng *rand.Rand, k [3]float64) [3]float64 {
	for {
		r := randUnit(rng)
		// Gram-Schmidt against k.
		dot := r[0]*k[0] + r[1]*k[1] + r[2]*k[2]
		p := [3]float64{r[0] - dot*k[0], r[1] - dot*k[1], r[2] - dot*k[2]}
		n := p[0]*p[0] + p[1]*p[1] + p[2]*p[2]
		if n > 1e-4 {
			inv := 1 / math.Sqrt(n)
			return [3]float64{p[0] * inv, p[1] * inv, p[2] * inv}
		}
	}
}

// At evaluates the velocity perturbation at a physical point.
func (f *Field) At(x, y, z float64) (u, v, w float64) {
	for i := range f.modes {
		m := &f.modes[i]
		c := 2 * math.Cos(m.k[0]*x+m.k[1]*y+m.k[2]*z+m.phase)
		u += m.amp[0] * c
		v += m.amp[1] * c
		w += m.amp[2] * c
	}
	return u, v, w
}

// Sweep evaluates the frozen field swept past a fixed inflow plane at
// convection speed U0 (Taylor's hypothesis): the perturbation at time t is
// the field sampled at x = −U0·t.
func (f *Field) Sweep(y, z, t, u0 float64) (u, v, w float64) {
	return f.At(-u0*t, y, z)
}

// Stats holds measured one-point turbulence statistics of a velocity field.
type Stats struct {
	Urms    float64 // RMS of one velocity component (u′ of table 1)
	Diss    float64 // mean TKE dissipation rate estimate ε̃ (m²/s³)
	Lt      float64 // turbulence length scale u′³/ε̃
	L33     float64 // integral scale of w-autocorrelation in z
	EtaK    float64 // Kolmogorov length (ν³/ε̃)^¼
	ReT     float64 // turbulence Reynolds number u′·l₃₃/ν
	TauEddy float64 // eddy turnover l_t/u′
}

// Measure computes the table-1 statistics from velocity fields on a uniform
// grid with spacings (hx, hy, hz) and kinematic viscosity nu. The fields
// must have valid interiors; derivatives use second-order centred
// differences over the interior (a measurement, not a solver path).
func Measure(u, v, w *grid.Field3, hx, hy, hz, nu float64) Stats {
	nx, ny, nz := u.Nx, u.Ny, u.Nz
	var mean [3]float64
	n := float64(nx * ny * nz)
	comp := []*grid.Field3{u, v, w}
	for c, f := range comp {
		mean[c] = f.SumInterior() / n
	}
	var tke float64
	for c, f := range comp {
		var s float64
		f.Each(func(_, _, _ int, val float64) {
			d := val - mean[c]
			s += d * d
		})
		tke += s / n
	}
	urms := math.Sqrt(tke / 3)

	// Dissipation ε = 2ν<s_ij s_ij> ≈ ν Σ <(∂u_i/∂x_j)²> for homogeneous
	// turbulence (isotropic estimate).
	var gradSq float64
	var count float64
	h := [3]float64{hx, hy, hz}
	for _, f := range comp {
		for k := 1; k < nz-1; k++ {
			for j := 1; j < ny-1; j++ {
				for i := 1; i < nx-1; i++ {
					dx := (f.At(i+1, j, k) - f.At(i-1, j, k)) / (2 * h[0])
					dy := (f.At(i, j+1, k) - f.At(i, j-1, k)) / (2 * h[1])
					dz := 0.0
					if nz > 2 {
						dz = (f.At(i, j, k+1) - f.At(i, j, k-1)) / (2 * h[2])
					}
					gradSq += dx*dx + dy*dy + dz*dz
					count++
				}
			}
		}
	}
	diss := nu * gradSq / math.Max(count, 1)
	// For isotropic turbulence ε = 15ν<(∂u/∂x)²>; the sum over 9 gradient
	// components approximates 2·<s²>... keep the standard proxy ε ≈ ν·Σ<g²>.

	st := Stats{Urms: urms, Diss: diss}
	if diss > 0 {
		st.Lt = urms * urms * urms / diss
		st.EtaK = math.Pow(nu*nu*nu/diss, 0.25)
	}
	st.L33 = integralScaleZ(w, hz, mean[2])
	if nu > 0 {
		st.ReT = urms * st.L33 / nu
	}
	if urms > 0 {
		st.TauEddy = st.Lt / urms
	}
	return st
}

// integralScaleZ integrates the two-point autocorrelation of w′ along z
// (the l₃₃ definition of table 1), averaged over the (x, y) plane, up to
// the first zero crossing.
func integralScaleZ(w *grid.Field3, hz, mean float64) float64 {
	nz := w.Nz
	if nz < 4 {
		return 0
	}
	maxLag := nz / 2
	corr := make([]float64, maxLag)
	var norm float64
	for lag := 0; lag < maxLag; lag++ {
		var s float64
		var n float64
		for k := 0; k < nz; k++ {
			k2 := (k + lag) % nz // periodic spanwise direction
			for j := 0; j < w.Ny; j++ {
				for i := 0; i < w.Nx; i++ {
					s += (w.At(i, j, k) - mean) * (w.At(i, j, k2) - mean)
					n++
				}
			}
		}
		corr[lag] = s / n
		if lag == 0 {
			norm = corr[0]
		}
	}
	if norm <= 0 {
		return 0
	}
	l := 0.0
	for lag := 1; lag < maxLag; lag++ {
		r := corr[lag] / norm
		if r <= 0 {
			break
		}
		l += r * hz
	}
	return l + 0.5*hz // trapezoid offset for lag 0 (r=1 over half cell)
}

// Karlovitz returns Ka = (δ_L/l_k)² (table 1's definition).
func Karlovitz(deltaL, etaK float64) float64 {
	r := deltaL / etaK
	return r * r
}

// Damkohler returns Da = S_L·l_t/(u′·δ_L).
func Damkohler(sl, lt, uprime, deltaL float64) float64 {
	return sl * lt / (uprime * deltaL)
}
