package reactor

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
)

// h2AirMix returns mass fractions for an H2/air mixture at the given
// equivalence ratio on the H2/air mechanism species ordering.
func h2AirMix(m *chem.Mechanism, phi float64) []float64 {
	// Stoichiometric H2/air: Y_H2 ≈ 0.0285 per 0.233·phi... build from moles:
	// H2 + 0.5(O2 + 3.76 N2)/phi
	set := m.Set
	x := make([]float64, set.Len())
	x[set.Index("H2")] = phi
	x[set.Index("O2")] = 0.5
	x[set.Index("N2")] = 0.5 * 3.76
	y := make([]float64, set.Len())
	set.MassFractions(x, y)
	return y
}

func TestIgnitionDelayHotMixture(t *testing.T) {
	m := chem.H2Air()
	y := h2AirMix(m, 1.0)
	tau, tFinal, err := IgnitionDelay(m, 1200, 101325, y, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(tau) {
		t.Fatal("no ignition at 1200 K")
	}
	// H2/air at 1200 K, 1 atm ignites in tens of microseconds.
	if tau < 1e-6 || tau > 1e-3 {
		t.Fatalf("ignition delay = %g s, expected 1e-6..1e-3", tau)
	}
	// Adiabatic flame temperature of stoichiometric H2/air from 1200 K is
	// well above 2300 K.
	if tFinal < 2000 {
		t.Fatalf("final T = %g, expected hot products", tFinal)
	}
}

func TestIgnitionDelayDecreasesWithTemperature(t *testing.T) {
	m := chem.H2Air()
	y := h2AirMix(m, 1.0)
	tau1, _, err := IgnitionDelay(m, 1150, 101325, y, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	tau2, _, err := IgnitionDelay(m, 1350, 101325, y, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(tau1) || math.IsNaN(tau2) || tau2 >= tau1 {
		t.Fatalf("delays not decreasing: τ(1150)=%g τ(1350)=%g", tau1, tau2)
	}
}

func TestNoIgnitionCold(t *testing.T) {
	m := chem.H2Air()
	y := h2AirMix(m, 1.0)
	tau, _, err := IgnitionDelay(m, 700, 101325, y, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tau) {
		t.Fatalf("unexpected ignition at 700 K: τ=%g", tau)
	}
}

func TestCrossoverTemperature(t *testing.T) {
	// The crossover temperature of H2/air at 1 atm is ≈ 950–1100 K; the
	// paper's 1100 K coflow must be above it and the 400 K fuel far below.
	m := chem.H2Air()
	y := h2AirMix(m, 0.5)
	tc, err := CrossoverTemperature(m, 101325, y, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	if tc < 850 || tc > 1250 {
		t.Fatalf("crossover temperature = %g K, expected ≈ 950–1100", tc)
	}
}

func TestMassFractionsStayNormalised(t *testing.T) {
	m := chem.H2Air()
	y := h2AirMix(m, 1.0)
	_, err := ConstPressure(m, 1250, 101325, y, 3e-4, Options{}, func(s State) {
		var sum float64
		for _, v := range s.Y {
			if v < 0 || v > 1 {
				t.Fatalf("Y out of range: %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("ΣY = %g", sum)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEquilibrateProducesWater(t *testing.T) {
	m := chem.H2Air()
	y := h2AirMix(m, 1.0)
	st, err := EquilibrateAdiabatic(m, 300, 101325, y)
	if err != nil {
		t.Fatal(err)
	}
	ih2o := m.Set.Index("H2O")
	ih2 := m.Set.Index("H2")
	if st.Y[ih2o] < 0.15 {
		t.Fatalf("equilibrium H2O = %g, want > 0.15", st.Y[ih2o])
	}
	if st.Y[ih2] > 0.005 {
		t.Fatalf("unburnt H2 = %g", st.Y[ih2])
	}
	if st.T < 2000 {
		t.Fatalf("equilibrium T = %g", st.T)
	}
}

func TestCH4IgnitionHot(t *testing.T) {
	m := chem.CH4Skeletal()
	set := m.Set
	x := make([]float64, set.Len())
	x[set.Index("CH4")] = 1
	x[set.Index("O2")] = 2
	x[set.Index("N2")] = 2 * 3.76
	y := make([]float64, set.Len())
	set.MassFractions(x, y)
	tau, tFinal, err := IgnitionDelay(m, 1500, 101325, y, 20e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(tau) {
		t.Fatal("no CH4 ignition at 1500 K")
	}
	if tFinal < 2200 {
		t.Fatalf("CH4 flame temperature = %g, want > 2200", tFinal)
	}
}

func BenchmarkIgnitionH2(b *testing.B) {
	m := chem.H2Air()
	y := h2AirMix(m, 1.0)
	for i := 0; i < b.N; i++ {
		if _, _, err := IgnitionDelay(m, 1300, 101325, y, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
