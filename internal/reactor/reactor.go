// Package reactor provides zero-dimensional homogeneous reactors: the
// constant-pressure and constant-volume adiabatic ignition problems used to
// characterise the autoignition chemistry behind the lifted-flame study
// (paper §6 — the hot 1100 K coflow sits above the crossover temperature of
// hydrogen/air chemistry, so the upstream mixture is autoignitable).
package reactor

import (
	"fmt"
	"math"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/thermo"
)

// State is the instantaneous reactor state.
type State struct {
	Time float64
	T    float64
	P    float64
	Y    []float64
}

// Options control the adaptive explicit integration.
type Options struct {
	// MaxRelChange bounds the per-step relative change of T and the major
	// species; 0 selects 0.02.
	MaxRelChange float64
	// DtMax bounds the step size; 0 selects 1e-6 s.
	DtMax float64
	// DtMin aborts runaway stiffness; 0 selects 1e-13 s.
	DtMin float64
	// StopWhen, if non-nil, terminates the integration early when it
	// returns true (evaluated after every step).
	StopWhen func(State) bool
}

func (o Options) relChange() float64 {
	if o.MaxRelChange > 0 {
		return o.MaxRelChange
	}
	return 0.02
}

func (o Options) dtMax() float64 {
	if o.DtMax > 0 {
		return o.DtMax
	}
	return 1e-6
}

func (o Options) dtMin() float64 {
	if o.DtMin > 0 {
		return o.DtMin
	}
	return 1e-13
}

// ConstPressure integrates an adiabatic constant-pressure reactor from
// (T0, p, Y0) until tEnd, calling observe (if non-nil) after every step.
// The governing equations are dYᵢ/dt = Wᵢω̇ᵢ/ρ and
// dT/dt = −Σ hᵢWᵢω̇ᵢ/(ρ·cp), with ρ = pW/(RuT).
func ConstPressure(m *chem.Mechanism, T0, p float64, Y0 []float64, tEnd float64,
	opt Options, observe func(State)) (State, error) {
	ns := m.NumSpecies()
	set := m.Set
	y := append([]float64(nil), Y0...)
	T := T0
	t := 0.0
	c := make([]float64, ns)
	wdot := make([]float64, ns)
	dy := make([]float64, ns)
	k1 := make([]float64, ns+1) // [dY..., dT]
	k2 := make([]float64, ns+1)
	k3 := make([]float64, ns+1)
	k4 := make([]float64, ns+1)
	yTmp := make([]float64, ns)

	deriv := func(Tl float64, yl []float64, out []float64) {
		rho := set.Density(p, Tl, yl)
		for i, sp := range set.Species {
			c[i] = rho * yl[i] / sp.W
		}
		m.ProductionRates(Tl, c, wdot)
		cp := set.CpMass(Tl, yl)
		var q float64
		for i, sp := range set.Species {
			out[i] = sp.W * wdot[i] / rho
			q -= sp.HMolar(Tl) * wdot[i]
		}
		out[ns] = q / (rho * cp)
	}

	dt := 1e-10
	for t < tEnd {
		deriv(T, y, k1)
		// Rate-limited step size: cap the relative change of T and of any
		// species above a floor.
		limit := SubstepRate(T, y, k1[:ns], k1[ns], opt.relChange())
		if limit > 0 {
			dt = 1 / limit
		} else {
			dt = opt.dtMax()
		}
		if dt > opt.dtMax() {
			dt = opt.dtMax()
		}
		if dt < opt.dtMin() {
			return State{Time: t, T: T, P: p, Y: y},
				fmt.Errorf("reactor: step size underflow (dt=%g at t=%g, T=%g)", dt, t, T)
		}
		if t+dt > tEnd {
			dt = tEnd - t
		}

		// Classical RK4 on (Y, T).
		stage := func(src []float64, frac float64, out []float64) {
			for i := 0; i < ns; i++ {
				yTmp[i] = clamp01(y[i] + frac*dt*src[i])
			}
			deriv(T+frac*dt*src[ns], yTmp, out)
		}
		stage(k1, 0.5, k2)
		stage(k2, 0.5, k3)
		stage(k3, 1.0, k4)
		for i := 0; i <= ns; i++ {
			d := dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if i < ns {
				y[i] = clamp01(y[i] + d)
				dy[i] = d
			} else {
				T += d
			}
		}
		normalize(y)
		t += dt
		if observe != nil {
			observe(State{Time: t, T: T, P: p, Y: y})
		}
		if opt.StopWhen != nil && opt.StopWhen(State{Time: t, T: T, P: p, Y: y}) {
			return State{Time: t, T: T, P: p, Y: y}, nil
		}
		if math.IsNaN(T) || T > thermo.TMax {
			T = math.Min(T, thermo.TMax)
			if math.IsNaN(T) {
				return State{Time: t, T: T, P: p, Y: y}, fmt.Errorf("reactor: NaN temperature at t=%g", t)
			}
		}
	}
	return State{Time: t, T: T, P: p, Y: y}, nil
}

// SubstepRate is the reactor's step-size controller as a pure function: the
// reciprocal of the largest step (1/dt) that keeps the relative change of T
// and of every species above a 1e-6 floor below relChange, given the state
// (T, y) and its time derivatives dydt (= Wᵢω̇ᵢ/ρ) and dTdt (= q/(ρ·cp)).
// A relChange ≤ 0 selects the reactor default (0.02). Besides driving
// ConstPressure, it serves as the deterministic chemistry-stiffness proxy of
// the cost-attribution sampler: ceil(dt·rate) estimates how many reactor
// substeps a cell's state would demand, a pure function of the state that is
// reproducible across worker counts where wall-clock timings are not.
func SubstepRate(T float64, y, dydt []float64, dTdt, relChange float64) float64 {
	if relChange <= 0 {
		relChange = 0.02
	}
	limit := math.Abs(dTdt) / (relChange * T)
	for i := range y {
		ref := math.Max(y[i], 1e-6)
		if l := math.Abs(dydt[i]) / (relChange * ref); l > limit {
			limit = l
		}
	}
	return limit
}

// IgnitionDelay returns the ignition delay of an adiabatic constant-pressure
// reactor, defined as the time of maximum dT/dt (the standard DNS
// diagnostic). A second return reports the final temperature.
func IgnitionDelay(m *chem.Mechanism, T0, p float64, Y0 []float64, tMax float64) (tau, tFinal float64, err error) {
	var prevT, prevTime float64 = T0, 0
	bestRate := 0.0
	tau = math.NaN()
	opt := Options{
		// Once the temperature has risen far above the initial state and the
		// heat-release transient has passed its peak, the delay is decided;
		// integrating the stiff post-flame equilibrium further is wasted work.
		StopWhen: func(s State) bool {
			return s.T > T0+700 && !math.IsNaN(tau) && s.Time > 1.2*tau
		},
	}
	final, err := ConstPressure(m, T0, p, Y0, tMax, opt, func(s State) {
		if s.Time > prevTime {
			rate := (s.T - prevT) / (s.Time - prevTime)
			if rate > bestRate {
				bestRate = rate
				tau = s.Time
			}
		}
		prevT, prevTime = s.T, s.Time
	})
	if err != nil {
		return tau, final.T, err
	}
	if final.T < T0+200 {
		return math.NaN(), final.T, nil // no ignition within tMax
	}
	return tau, final.T, nil
}

// CrossoverTemperature scans for the temperature at which the ignition
// delay of a stoichiometric-ish H2/air mixture falls below tauRef — the
// "crossover" of chain branching vs termination that makes the paper's
// 1100 K coflow autoignitive while 400 K fuel is not.
func CrossoverTemperature(m *chem.Mechanism, p float64, Y0 []float64, tauRef float64) (float64, error) {
	lo, hi := 800.0, 1400.0
	ignites := func(T float64) bool {
		tau, _, err := IgnitionDelay(m, T, p, Y0, tauRef)
		return err == nil && !math.IsNaN(tau)
	}
	if ignites(lo) {
		return lo, nil
	}
	if !ignites(hi) {
		return 0, fmt.Errorf("reactor: no ignition up to %g K within %g s", hi, tauRef)
	}
	for iter := 0; iter < 12; iter++ {
		mid := 0.5 * (lo + hi)
		if ignites(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// EquilibrateAdiabatic integrates a constant-pressure reactor to a long
// horizon and returns the final (≈equilibrium) state — used to build the
// hot-coflow composition of the Bunsen configuration ("complete combustion
// products of the reactant jet", paper §7.2).
func EquilibrateAdiabatic(m *chem.Mechanism, T0, p float64, Y0 []float64) (State, error) {
	y := append([]float64(nil), Y0...)
	// Start hot enough to ignite promptly, then stop once the temperature
	// has plateaued (small relative change over a trailing window).
	var lastT float64
	var lastTime float64
	opt := Options{StopWhen: func(s State) bool {
		if s.Time-lastTime > 2e-4 {
			settled := math.Abs(s.T-lastT) < 0.5 && s.T > 1800
			lastT, lastTime = s.T, s.Time
			return settled
		}
		return false
	}}
	return ConstPressure(m, math.Max(T0, 1600), p, y, 20e-3, opt, nil)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func normalize(y []float64) {
	var s float64
	for _, v := range y {
		s += v
	}
	if s > 0 {
		inv := 1 / s
		for i := range y {
			y[i] *= inv
		}
	}
}
