// Package flame1d computes unstrained laminar premixed flame properties —
// the flame speed S_L, thermal thickness δ_L (maximum-temperature-gradient
// definition), heat-release FWHM thickness δ_H and flame time τ_f = δ_L/S_L
// that normalise table 1 and figure 13 of the paper. It plays the role of
// the PREMIX code the authors used (paper §7.2, ref. [38]).
//
// The solver marches the one-dimensional low-Mach (constant-pressure)
// premixed flame equations to a propagating quasi-steady state:
//
//	ρ·DY/Dt = −∂J/∂x + W·ω̇
//	ρcp·DT/Dt = ∂/∂x(λ·∂T/∂x) − Σ hᵢWᵢω̇ᵢ
//	∂u/∂x = (1/T)·DT/Dt − (1/W)·DW/Dt   (continuity + ideal gas)
//
// and measures the consumption speed S_c = −∫Wfω̇f dx/(ρᵤYf,ᵤ), which
// equals S_L for an unstrained steady flame.
package flame1d

import (
	"fmt"
	"math"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/reactor"
	"github.com/s3dgo/s3d/internal/transport"
)

// Properties are the laminar flame quantities of paper §7.2.
type Properties struct {
	SL     float64 // laminar flame speed (m/s)
	DeltaL float64 // thermal thickness (T_b−T_u)/max|dT/dx| (m)
	DeltaH float64 // FWHM of heat-release rate (m)
	TauF   float64 // flame time δ_L/S_L (s)
	Tburnt float64 // burnt-gas temperature (K)
	Tu     float64 // unburnt temperature (K)
}

// Config controls the 1-D solve.
type Config struct {
	Mech *chem.Mechanism
	Tu   float64   // unburnt temperature (K)
	P    float64   // pressure (Pa)
	Yu   []float64 // unburnt composition

	// Numerical controls; zeros select defaults tuned for CH4/H2 flames.
	Nx         int     // grid points (default 240)
	L          float64 // domain length (default 40 δ-estimates ≈ 8 mm)
	TEnd       float64 // integration horizon (default 0.35 ms)
	TAvg       float64 // trailing window for averaging S_c (default 0.1 ms)
	transEvery int     // steps between transport updates (default 10)
}

// Solve runs the flame to a propagating state and measures its properties.
func Solve(cfg Config) (Properties, error) {
	m := cfg.Mech
	set := m.Set
	ns := m.NumSpecies()
	tr, err := transport.New(set)
	if err != nil {
		return Properties{}, err
	}
	nx := cfg.Nx
	if nx == 0 {
		nx = 240
	}
	L := cfg.L
	if L == 0 {
		L = 8e-3
	}
	tEnd := cfg.TEnd
	if tEnd == 0 {
		tEnd = 0.35e-3
	}
	tAvg := cfg.TAvg
	if tAvg == 0 {
		tAvg = 0.1e-3
	}
	transEvery := cfg.transEvery
	if transEvery == 0 {
		transEvery = 10
	}
	h := L / float64(nx-1)

	// Burnt state from an adiabatic equilibrium calculation.
	burnt, err := reactor.EquilibrateAdiabatic(m, cfg.Tu, cfg.P, cfg.Yu)
	if err != nil {
		return Properties{}, fmt.Errorf("flame1d: equilibrium: %v", err)
	}

	// State arrays.
	T := make([]float64, nx)
	Y := make([][]float64, nx)
	for i := range Y {
		Y[i] = make([]float64, ns)
	}
	// Initial profile: burnt on the left, unburnt on the right, tanh blend
	// over ~10 cells centred at x = L/4.
	x0 := L / 4
	width := 8 * h
	for i := 0; i < nx; i++ {
		x := float64(i) * h
		f := 0.5 * (1 - math.Tanh((x-x0)/width)) // 1 burnt → 0 unburnt
		T[i] = f*burnt.T + (1-f)*cfg.Tu
		for n := 0; n < ns; n++ {
			Y[i][n] = f*burnt.Y[n] + (1-f)*cfg.Yu[n]
		}
	}

	// Work arrays.
	rho := make([]float64, nx)
	cp := make([]float64, nx)
	lam := make([]float64, nx)
	dmix := make([][]float64, nx)
	for i := range dmix {
		dmix[i] = make([]float64, ns)
	}
	dTdt := make([]float64, nx)
	dYdt := make([][]float64, nx)
	for i := range dYdt {
		dYdt[i] = make([]float64, ns)
	}
	u := make([]float64, nx)
	jfl := make([][]float64, nx) // diffusive fluxes at faces i+1/2
	for i := range jfl {
		jfl[i] = make([]float64, ns)
	}
	qface := make([]float64, nx)
	c := make([]float64, ns)
	wdot := make([]float64, nx*0+ns)
	hrr := make([]float64, nx)
	props := transport.Props{Dmix: make([]float64, ns)}

	iFuel := fuelIndex(m)
	if iFuel < 0 {
		return Properties{}, fmt.Errorf("flame1d: no fuel species (CH4 or H2) in mechanism")
	}
	rhoU := set.Density(cfg.P, cfg.Tu, cfg.Yu)
	yFu := cfg.Yu[iFuel]
	if yFu <= 0 {
		return Properties{}, fmt.Errorf("flame1d: unburnt fuel fraction is zero")
	}

	updateProps := func() {
		for i := 0; i < nx; i++ {
			rho[i] = set.Density(cfg.P, T[i], Y[i])
			cp[i] = set.CpMass(T[i], Y[i])
			tr.Mixture(T[i], cfg.P, Y[i], &props)
			lam[i] = props.Lambda
			copy(dmix[i], props.Dmix)
		}
	}
	updateProps()

	var t float64
	var scSum, scT float64
	step := 0
	for t < tEnd {
		if step%transEvery == 0 {
			updateProps()
		} else {
			for i := 0; i < nx; i++ {
				rho[i] = set.Density(cfg.P, T[i], Y[i])
				cp[i] = set.CpMass(T[i], Y[i])
			}
		}

		// Diffusive fluxes at faces (central) with zero-sum correction.
		for i := 0; i < nx-1; i++ {
			var sum float64
			rhoF := 0.5 * (rho[i] + rho[i+1])
			for n := 0; n < ns; n++ {
				dF := 0.5 * (dmix[i][n] + dmix[i+1][n])
				jfl[i][n] = -rhoF * dF * (Y[i+1][n] - Y[i][n]) / h
				sum += jfl[i][n]
			}
			yF := 0.0
			for n := 0; n < ns; n++ {
				yF = 0.5 * (Y[i][n] + Y[i+1][n])
				jfl[i][n] -= yF * sum
			}
			lamF := 0.5 * (lam[i] + lam[i+1])
			qface[i] = -lamF * (T[i+1] - T[i]) / h
		}

		// Reaction rates, material derivatives, velocity divergence.
		var sc float64
		maxRate := 0.0
		for i := 1; i < nx-1; i++ {
			for n := 0; n < ns; n++ {
				c[n] = rho[i] * Y[i][n] / set.Species[n].W
			}
			m.ProductionRates(T[i], c, wdot)
			var q float64
			for n := 0; n < ns; n++ {
				q -= set.Species[n].HMolar(T[i]) * wdot[n]
			}
			hrr[i] = q
			sc -= set.Species[iFuel].W * wdot[iFuel] * h

			invRho := 1 / rho[i]
			for n := 0; n < ns; n++ {
				dYdt[i][n] = (-(jfl[i][n]-jfl[i-1][n])/h + set.Species[n].W*wdot[n]) * invRho
			}
			dTdt[i] = (-(qface[i]-qface[i-1])/h + q) * invRho / cp[i]
			if r := math.Abs(dTdt[i]) / T[i]; r > maxRate {
				maxRate = r
			}
			for n := 0; n < ns; n++ {
				ref := math.Max(Y[i][n], 1e-4)
				if r := math.Abs(dYdt[i][n]) / ref; r > maxRate {
					maxRate = r
				}
			}
		}
		sc /= rhoU * yFu

		// Velocity from continuity with u(0)=0 on the burnt side.
		u[0] = 0
		for i := 1; i < nx-1; i++ {
			// ∂u/∂x at i from material derivatives.
			W := set.MeanW(Y[i])
			var dWdt float64
			for n := 0; n < ns; n++ {
				dWdt += dYdt[i][n] / set.Species[n].W
			}
			dWdt *= -W * W
			dudx := dTdt[i]/T[i] - dWdt/W
			u[i] = u[i-1] + dudx*h
		}
		u[nx-1] = u[nx-2]

		// Time step: diffusive + rate-limited.
		alphaMax := 0.0
		for i := 0; i < nx; i++ {
			if a := lam[i] / (rho[i] * cp[i]); a > alphaMax {
				alphaMax = a
			}
		}
		dt := 0.4 * h * h / (2 * alphaMax)
		if maxRate > 0 {
			if lim := 0.05 / maxRate; lim < dt {
				dt = lim
			}
		}
		if cflDt := 0.5 * h / (maxAbs(u) + 1e-10); cflDt < dt {
			dt = cflDt
		}
		if t+dt > tEnd {
			dt = tEnd - t
		}

		// Explicit update with first-order upwind convection.
		for i := 1; i < nx-1; i++ {
			var dTdx float64
			if u[i] >= 0 {
				dTdx = (T[i] - T[i-1]) / h
			} else {
				dTdx = (T[i+1] - T[i]) / h
			}
			T[i] += dt * (dTdt[i] - u[i]*dTdx)
			for n := 0; n < ns; n++ {
				var dYdx float64
				if u[i] >= 0 {
					dYdx = (Y[i][n] - Y[i-1][n]) / h
				} else {
					dYdx = (Y[i+1][n] - Y[i][n]) / h
				}
				Y[i][n] += dt * (dYdt[i][n] - u[i]*dYdx)
				if Y[i][n] < 0 {
					Y[i][n] = 0
				}
			}
			normalize(Y[i])
		}
		// Boundaries: zero-gradient burnt side, fixed unburnt side.
		T[0] = T[1]
		copy(Y[0], Y[1])
		T[nx-1] = cfg.Tu
		copy(Y[nx-1], cfg.Yu)

		t += dt
		step++
		if t > tEnd-tAvg {
			scSum += sc * dt
			scT += dt
		}
		if math.IsNaN(T[nx/2]) {
			return Properties{}, fmt.Errorf("flame1d: NaN at t=%g", t)
		}
	}

	// Measurements.
	p := Properties{Tu: cfg.Tu}
	if scT > 0 {
		p.SL = scSum / scT
	}
	maxGrad := 0.0
	tMax, tMin := T[0], T[0]
	for i := 1; i < nx-1; i++ {
		if g := math.Abs(T[i+1]-T[i-1]) / (2 * h); g > maxGrad {
			maxGrad = g
		}
		tMax = math.Max(tMax, T[i])
		tMin = math.Min(tMin, T[i])
	}
	p.Tburnt = tMax
	if maxGrad > 0 {
		p.DeltaL = (tMax - tMin) / maxGrad
	}
	p.DeltaH = fwhm(hrr, h)
	if p.SL > 0 {
		p.TauF = p.DeltaL / p.SL
	}
	return p, nil
}

// fuelIndex finds the fuel species (CH4 preferred, else H2).
func fuelIndex(m *chem.Mechanism) int {
	if i := m.Set.Index("CH4"); i >= 0 {
		return i
	}
	return m.Set.Index("H2")
}

// fwhm returns the full width at half maximum of a sampled profile.
func fwhm(v []float64, h float64) float64 {
	max := 0.0
	iMax := 0
	for i, x := range v {
		if x > max {
			max = x
			iMax = i
		}
	}
	if max <= 0 {
		return 0
	}
	half := max / 2
	lo, hi := iMax, iMax
	for lo > 0 && v[lo] > half {
		lo--
	}
	for hi < len(v)-1 && v[hi] > half {
		hi++
	}
	return float64(hi-lo) * h
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func normalize(y []float64) {
	var s float64
	for _, v := range y {
		s += v
	}
	if s > 0 {
		inv := 1 / s
		for i := range y {
			y[i] *= inv
		}
	}
}

// PremixedMixture builds the unburnt mass fractions of a fuel/air mixture
// at equivalence ratio phi for a mechanism whose fuel is CH4 or H2.
func PremixedMixture(m *chem.Mechanism, phi float64) ([]float64, error) {
	set := m.Set
	x := make([]float64, set.Len())
	iO2 := set.Index("O2")
	iN2 := set.Index("N2")
	if iO2 < 0 || iN2 < 0 {
		return nil, fmt.Errorf("flame1d: mechanism lacks O2/N2")
	}
	switch {
	case set.Index("CH4") >= 0:
		x[set.Index("CH4")] = phi
		x[iO2] = 2
		x[iN2] = 2 * 3.76
	case set.Index("H2") >= 0:
		x[set.Index("H2")] = phi
		x[iO2] = 0.5
		x[iN2] = 0.5 * 3.76
	default:
		return nil, fmt.Errorf("flame1d: no known fuel species")
	}
	y := make([]float64, set.Len())
	set.MassFractions(x, y)
	return y, nil
}
