package flame1d

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
)

func TestPremixedMixtureStoichiometry(t *testing.T) {
	m := chem.CH4Skeletal()
	y, err := PremixedMixture(m, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Stoichiometric CH4/air: Y_CH4 ≈ 0.055.
	if got := y[m.Set.Index("CH4")]; math.Abs(got-0.055) > 0.003 {
		t.Fatalf("Y_CH4 = %g, want ≈ 0.055", got)
	}
	var sum float64
	for _, v := range y {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("ΣY = %g", sum)
	}
}

func TestPremixedMixtureLean(t *testing.T) {
	m := chem.CH4Skeletal()
	y07, _ := PremixedMixture(m, 0.7)
	y10, _ := PremixedMixture(m, 1.0)
	if y07[m.Set.Index("CH4")] >= y10[m.Set.Index("CH4")] {
		t.Fatal("lean mixture has more fuel")
	}
}

// TestBunsenReferenceFlame solves the paper's laminar reference: CH4/air at
// φ = 0.7 preheated to 800 K (paper §7.2 reports S_L = 1.8 m/s,
// δ_L = 0.3 mm, δ_H = 0.14 mm, δ_L/δ_H = 2, τ_f = 0.17 ms with PREMIX and
// its methane mechanism). With the skeletal mechanism and fitted
// thermodynamics we require order-of-magnitude agreement and the right
// structural ratios.
func TestBunsenReferenceFlame(t *testing.T) {
	if testing.Short() {
		t.Skip("laminar flame solve is expensive")
	}
	m := chem.CH4Skeletal()
	y, err := PremixedMixture(m, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Solve(Config{Mech: m, Tu: 800, P: 101325, Yu: y})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SL=%.3g m/s δL=%.3g mm δH=%.3g mm τf=%.3g ms Tb=%.0f K",
		p.SL, p.DeltaL*1e3, p.DeltaH*1e3, p.TauF*1e3, p.Tburnt)
	if p.SL < 0.3 || p.SL > 8 {
		t.Fatalf("S_L = %g m/s, expected O(1.8)", p.SL)
	}
	if p.DeltaL < 0.05e-3 || p.DeltaL > 2e-3 {
		t.Fatalf("δ_L = %g m, expected O(0.3 mm)", p.DeltaL)
	}
	// Preheated flames have δ_L/δ_H ≈ 2 (paper §7.2); allow 1–5.
	if p.DeltaH <= 0 {
		t.Fatal("δ_H = 0")
	}
	ratio := p.DeltaL / p.DeltaH
	if ratio < 0.8 || ratio > 6 {
		t.Fatalf("δ_L/δ_H = %g, expected ≈ 2", ratio)
	}
	if p.Tburnt < 1900 {
		t.Fatalf("burnt temperature %g too low", p.Tburnt)
	}
}

func TestH2FlameFasterThanCH4(t *testing.T) {
	if testing.Short() {
		t.Skip("laminar flame solve is expensive")
	}
	mh := chem.H2Air()
	yh, err := PremixedMixture(mh, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Solve(Config{Mech: mh, Tu: 300, P: 101325, Yu: yh, TEnd: 0.25e-3, TAvg: 0.08e-3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("H2 flame: SL=%.3g m/s δL=%.3g mm", ph.SL, ph.DeltaL*1e3)
	// Stoichiometric H2/air burns at ≈ 2–3 m/s at 300 K; far faster than
	// ambient methane (≈ 0.4 m/s).
	if ph.SL < 0.8 || ph.SL > 10 {
		t.Fatalf("H2 S_L = %g m/s, expected O(2)", ph.SL)
	}
}
