package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// fillRand fills s with a reproducible mix of magnitudes, including exact
// zeros (the signed-zero cases the bitwise contract must survive).
func fillRand(s []float64, rng *rand.Rand) {
	for i := range s {
		switch rng.Intn(8) {
		case 0:
			s[i] = 0
		case 1:
			s[i] = math.Copysign(0, -1)
		default:
			s[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(8)-4))
		}
	}
}

func bitsEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x (%v vs %v)",
				name, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

func bitsEqual32(t *testing.T, name string, a, b []float32) {
	t.Helper()
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: bit mismatch at %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestRKUpdateParity pins the bitwise contract between backends for the
// bank update, across lengths that exercise the unrolled and tail paths.
func TestRKUpdateParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 7, 64, 1001} {
		q := make([]float64, n)
		dq := make([]float64, n)
		r := make([]float64, n)
		fillRand(q, rng)
		fillRand(dq, rng)
		fillRand(r, rng)
		q2 := append([]float64(nil), q...)
		dq2 := append([]float64(nil), dq...)
		Generic().RKUpdateBank(q, dq, r, -0.697, 0.51, 4e-9)
		Blocked().RKUpdateBank(q2, dq2, r, -0.697, 0.51, 4e-9)
		bitsEqual(t, "q", q, q2)
		bitsEqual(t, "dq", dq, dq2)
	}
}

func TestZeroBankParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 777)
	fillRand(a, rng)
	b := append([]float64(nil), a...)
	Generic().ZeroBank(a)
	Blocked().ZeroBank(b)
	bitsEqual(t, "zero", a, b)
}

// TestDiffInteriorParity sweeps strides (unit and transverse) and both ops.
func TestDiffInteriorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 40
	for _, stride := range []int{1, 7, 50} {
		need := 10 + (n+10)*stride
		src := make([]float64, need)
		fillRand(src, rng)
		met := make([]float64, n)
		fillRand(met, rng)
		base := 5 * stride
		for _, add := range []bool{false, true} {
			for _, span := range [][2]int{{0, n}, {4, n - 4}, {3, 5}, {10, 10}} {
				d1 := make([]float64, need)
				d2 := make([]float64, need)
				fillRand(d1, rng)
				copy(d2, d1)
				Generic().DiffInterior(d1, src, base, stride, span[0], span[1], met, add)
				Blocked().DiffInterior(d2, src, base, stride, span[0], span[1], met, add)
				bitsEqual(t, "diff", d1, d2)

				f1 := make([]float32, need)
				f2 := make([]float32, need)
				for i := range f1 {
					f1[i] = float32(d1[i])
				}
				copy(f2, f1)
				Generic().DiffInterior32(f1, src, base, stride, span[0], span[1], met, add)
				Blocked().DiffInterior32(f2, src, base, stride, span[0], span[1], met, add)
				bitsEqual32(t, "diff32", f1, f2)
			}
		}
	}
}

func TestFilterInteriorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 40
	for _, stride := range []int{1, 9} {
		need := 12 + (n+12)*stride
		src := make([]float64, need)
		fillRand(src, rng)
		base := 6 * stride
		for _, add := range []bool{false, true} {
			d1 := make([]float64, need)
			d2 := make([]float64, need)
			fillRand(d1, rng)
			copy(d2, d1)
			Generic().FilterInterior(d1, src, base, stride, 0, n, 0.5/1024, add)
			Blocked().FilterInterior(d2, src, base, stride, 0, n, 0.5/1024, add)
			bitsEqual(t, "filter", d1, d2)
		}
	}
}

func TestSelectSpecs(t *testing.T) {
	for _, spec := range []string{"", "generic", "blocked", "auto",
		"diff=blocked", "rk_update=blocked, filter=generic"} {
		s, err := Select(spec)
		if err != nil {
			t.Fatalf("Select(%q): %v", spec, err)
		}
		for k := 0; k < NumKernels; k++ {
			if s.Impl(Kernel(k)) == nil {
				t.Fatalf("Select(%q): kernel %v unset", spec, Kernel(k))
			}
		}
	}
	s := MustSelect("diff=blocked")
	if !s.Blocked(Diff) || s.Blocked(RKUpdate) {
		t.Fatalf("per-kernel spec not honoured: %s", s.String())
	}
	if _, err := Select("bogus=blocked"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := Select("diff=bogus"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := Select("justbogus"); err == nil {
		t.Fatal("malformed spec accepted")
	}
}

func TestSelectionString(t *testing.T) {
	if got := MustSelect("blocked").String(); got != "blocked" {
		t.Fatalf("uniform selection renders %q", got)
	}
	mixed := MustSelect("diff=blocked").String()
	if mixed == "generic" || mixed == "blocked" {
		t.Fatalf("mixed selection renders uniform %q", mixed)
	}
}

// TestAutoSelectStable: auto returns a usable, cached selection.
func TestAutoSelectStable(t *testing.T) {
	a := AutoSelect()
	bsel := AutoSelect()
	if a != bsel {
		t.Fatal("AutoSelect not cached")
	}
	for k := 0; k < NumKernels; k++ {
		if a.Impl(Kernel(k)) == nil {
			t.Fatalf("auto left kernel %v unset", Kernel(k))
		}
	}
}

func BenchmarkRKUpdateImpl(b *testing.B) {
	const n = 1 << 16
	q := make([]float64, n)
	dq := make([]float64, n)
	r := make([]float64, n)
	for i := range q {
		q[i], dq[i], r[i] = float64(i), float64(i%7), float64(i%5)
	}
	for _, im := range []Impl{Generic(), Blocked()} {
		b.Run(im.Name(), func(b *testing.B) {
			b.SetBytes(n * 8 * 3)
			for i := 0; i < b.N; i++ {
				im.RKUpdateBank(q, dq, r, -0.7, 0.5, 1e-9)
			}
		})
	}
}

func BenchmarkDiffInteriorImpl(b *testing.B) {
	const n = 4096
	src := make([]float64, n+16)
	dst := make([]float64, n+16)
	met := make([]float64, n)
	for i := range src {
		src[i] = float64(i % 31)
	}
	for i := range met {
		met[i] = 1
	}
	for _, im := range []Impl{Generic(), Blocked()} {
		b.Run(im.Name(), func(b *testing.B) {
			b.SetBytes(n * 8 * 2)
			for i := 0; i < b.N; i++ {
				im.DiffInterior(dst, src, 8, 1, 0, n, met, false)
			}
		})
	}
}
