package kernels

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Selection maps every selectable kernel to a backend implementation.
// The zero Selection is invalid; build one with Select.
type Selection struct {
	impls [numKernels]Impl
}

// Impl returns the selected implementation of a kernel.
func (s *Selection) Impl(k Kernel) Impl { return s.impls[k] }

// Name returns the selected backend name of a kernel.
func (s *Selection) Name(k Kernel) string { return s.impls[k].Name() }

// Blocked reports whether the kernel's selected backend is "blocked" —
// the switch solver-resident tile bodies (flux assembly, primitives) key on.
func (s *Selection) Blocked(k Kernel) bool { return s.Name(k) == "blocked" }

// String renders the selection as a flag-spec ("generic", "blocked", or a
// per-kernel comma list when mixed).
func (s *Selection) String() string {
	first := s.impls[0].Name()
	uniform := true
	for k := 1; k < NumKernels; k++ {
		if s.impls[k].Name() != first {
			uniform = false
			break
		}
	}
	if uniform {
		return first
	}
	parts := make([]string, NumKernels)
	for k := 0; k < NumKernels; k++ {
		parts[k] = Kernel(k).String() + "=" + s.impls[k].Name()
	}
	return strings.Join(parts, ",")
}

// uniform builds a selection with one impl for every kernel.
func uniform(im Impl) *Selection {
	var s Selection
	for k := range s.impls {
		s.impls[k] = im
	}
	return &s
}

// Select parses a backend spec into a Selection:
//
//	""          — default: generic everywhere
//	"generic"   — reference implementation everywhere
//	"blocked"   — hand-tiled implementation everywhere
//	"auto"      — per-kernel winners of a one-off startup microbenchmark
//	"diff=blocked,rk_update=blocked,..." — explicit per-kernel choices;
//	              unnamed kernels default to generic
//
// Because every backend is bitwise-equal by contract, the spec changes
// performance, never results.
func Select(spec string) (*Selection, error) {
	switch spec {
	case "", "generic":
		return uniform(Generic()), nil
	case "blocked":
		return uniform(Blocked()), nil
	case "auto":
		return AutoSelect(), nil
	}
	s := uniform(Generic())
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("kernels: bad backend spec %q (want kernel=impl, e.g. diff=blocked)", part)
		}
		k, ok := KernelByName(strings.TrimSpace(kv[0]))
		if !ok {
			return nil, fmt.Errorf("kernels: unknown kernel %q in backend spec (valid: %s)",
				kv[0], strings.Join(kernelNames[:], ", "))
		}
		im, ok := Get(strings.TrimSpace(kv[1]))
		if !ok {
			return nil, fmt.Errorf("kernels: unknown backend %q in spec (registered: %s)",
				kv[1], strings.Join(Names(), ", "))
		}
		s.impls[k] = im
	}
	return s, nil
}

// MustSelect is Select for specs known valid at compile time.
func MustSelect(spec string) *Selection {
	s, err := Select(spec)
	if err != nil {
		panic(err)
	}
	return s
}

var (
	autoOnce sync.Once
	autoSel  *Selection
)

// AutoSelect times each registered backend on synthetic banks and grid
// lines sized like the solver's hot loops and returns the per-kernel
// winners. The measurement runs once per process (~a few ms) and is cached;
// because backends are bitwise-equal, auto mode affects speed only and the
// choice cannot perturb results. FluxAssembly and Primitives live in the
// solver, so their winner is taken from a fused row-sweep proxy with the
// same addressing contrast (indexed flat rows vs re-sliced windows).
func AutoSelect() *Selection {
	autoOnce.Do(func() { autoSel = measureAuto() })
	return autoSel
}

func measureAuto() *Selection {
	g, b := Generic(), Blocked()
	s := uniform(g)

	const bankN = 1 << 15
	q := make([]float64, bankN)
	dq := make([]float64, bankN)
	r := make([]float64, bankN)
	for i := range q {
		q[i] = float64(i%17) * 0.1
		dq[i] = float64(i%13) * 0.01
		r[i] = float64(i%11) * 0.001
	}

	pick := func(k Kernel, tg, tb time.Duration) {
		if tb < tg {
			s.impls[k] = b
		}
	}

	pick(RKUpdate,
		bestOf(func() { g.RKUpdateBank(q, dq, r, -0.7, 0.5, 1e-9) }),
		bestOf(func() { b.RKUpdateBank(q, dq, r, -0.7, 0.5, 1e-9) }))
	pick(Reset,
		bestOf(func() { g.ZeroBank(dq) }),
		bestOf(func() { b.ZeroBank(dq) }))

	// One unit-stride grid line with ghost margins, metric attached.
	const lineN = 4096
	const gpad = 8
	src := make([]float64, lineN+2*gpad)
	dst := make([]float64, lineN+2*gpad)
	met := make([]float64, lineN)
	for i := range src {
		src[i] = float64(i%29) * 0.05
	}
	for i := range met {
		met[i] = 1.0 + float64(i%7)*0.01
	}
	pick(Diff,
		bestOf(func() { g.DiffInterior(dst, src, gpad, 1, 0, lineN, met, false) }),
		bestOf(func() { b.DiffInterior(dst, src, gpad, 1, 0, lineN, met, false) }))
	pick(Divergence,
		bestOf(func() { g.DiffInterior(dst, src, gpad, 1, 0, lineN, met, true) }),
		bestOf(func() { b.DiffInterior(dst, src, gpad, 1, 0, lineN, met, true) }))
	pick(Filter,
		bestOf(func() { g.FilterInterior(dst, src, gpad, 1, 0, lineN, 1.0/1024, false) }),
		bestOf(func() { b.FilterInterior(dst, src, gpad, 1, 0, lineN, 1.0/1024, false) }))

	// Fused row-sweep proxy for the solver-resident kernels: several
	// same-shape operand streams combined per point, indexed (generic
	// style) vs re-sliced check-free (blocked style).
	fused := func(k Kernel) {
		pick(k,
			bestOf(func() { rowProxyIndexed(dst, src, met) }),
			bestOf(func() { rowProxyBlocked(dst, src, met) }))
	}
	fused(FluxAssembly)
	fused(Primitives)
	return s
}

// bestOf returns the fastest of a few timed runs of fn (min-of-N damps
// scheduler noise without needing a long measurement).
func bestOf(fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// rowProxySink keeps the proxy sweeps observable.
var rowProxySink float64

// rowProxyIndexed mimics the generic fused tile bodies: flat indices into
// full-length operand slices, bounds-checked per access.
func rowProxyIndexed(a, bb, c []float64) {
	n := len(c)
	var acc float64
	for i := 0; i < n; i++ {
		acc += a[i]*bb[i] + c[i]*a[i] - bb[i]
	}
	rowProxySink = acc
}

// rowProxyBlocked mimics the blocked tile bodies: operands re-sliced to a
// proven common length so the loop runs check-free.
func rowProxyBlocked(a, bb, c []float64) {
	n := len(c)
	a, bb = a[:n], bb[:n]
	var acc float64
	for i := 0; i < n; i++ {
		acc += a[i]*bb[i] + c[i]*a[i] - bb[i]
	}
	rowProxySink = acc
}
