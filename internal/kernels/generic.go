package kernels

// genericImpl is the reference backend: the solver's original loop bodies,
// verbatim. It defines the bitwise contract every other backend must match.
type genericImpl struct{}

func (genericImpl) Name() string { return "generic" }

func (genericImpl) RKUpdateBank(q, dq, r []float64, a, b, dt float64) {
	for i := range dq {
		dq[i] = a*dq[i] + dt*r[i]
		q[i] += b * dq[i]
	}
}

func (genericImpl) ZeroBank(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

func (genericImpl) DiffInterior(dst, src []float64, base, stride, c0, c1 int, met []float64, add bool) {
	for i := c0; i < c1; i++ {
		p := base + i*stride
		d := c8[0]*(src[p+stride]-src[p-stride]) +
			c8[1]*(src[p+2*stride]-src[p-2*stride]) +
			c8[2]*(src[p+3*stride]-src[p-3*stride]) +
			c8[3]*(src[p+4*stride]-src[p-4*stride])
		if add {
			dst[p] += d * met[i]
		} else {
			dst[p] = d * met[i]
		}
	}
}

func (genericImpl) DiffInterior32(dst []float32, src []float64, base, stride, c0, c1 int, met []float64, add bool) {
	for i := c0; i < c1; i++ {
		p := base + i*stride
		d := c8[0]*(src[p+stride]-src[p-stride]) +
			c8[1]*(src[p+2*stride]-src[p-2*stride]) +
			c8[2]*(src[p+3*stride]-src[p-3*stride]) +
			c8[3]*(src[p+4*stride]-src[p-4*stride])
		storeNarrow(dst, p, d*met[i], add)
	}
}

func (genericImpl) FilterInterior(dst, src []float64, base, stride, c0, c1 int, scale float64, add bool) {
	for i := c0; i < c1; i++ {
		p := base + i*stride
		var acc float64
		for l := -5; l <= 5; l++ {
			acc += filter10[l+5] * src[p+l*stride]
		}
		if add {
			dst[p] += src[p] - scale*acc
		} else {
			dst[p] = src[p] - scale*acc
		}
	}
}

// storeNarrow writes a float64 result into float32 storage: computed and
// (under add) accumulated at full width, rounded exactly once on store.
func storeNarrow(dst []float32, p int, v float64, add bool) {
	if add {
		dst[p] = float32(float64(dst[p]) + v)
	} else {
		dst[p] = float32(v)
	}
}
