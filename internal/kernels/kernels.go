// Package kernels is the backend layer for the solver's figure-2 hot
// kernels. Each hot loop — the RK46NL 2N register update, the dQ register
// reset, the interior spans of the 8th-order derivative and 10th-order
// filter stencils, the flux divergence accumulation, the fused flux
// assembly and the primitives recovery — is dispatched through a named
// Impl selected at runtime, so implementation strategy becomes a measurable
// policy rather than a hard-coded choice (the ComputeBackend split of XLB).
//
// Two implementations register themselves at init:
//
//   - "generic": the reference code, exactly the arithmetic the solver has
//     always used, in the form the compiler sees it today;
//   - "blocked": hand-tiled variants with bounds checks hoisted by slice
//     re-slicing and the inner loops unrolled for auto-vectorisation.
//
// Contract: every Impl must produce BITWISE-IDENTICAL results for identical
// inputs. Blocked variants may change addressing (re-slicing, hoisting,
// unrolling) but never the per-output floating-point expression or its
// association order. The solver's backend-parity gate (check.sh) enforces
// this by demanding equal solution hashes between backends, which is what
// lets the "auto" mode pick winners per kernel without perturbing the
// bitwise worker-count determinism contract.
//
// The fused flux-assembly and primitives-recovery kernels need chemistry
// and thermodynamics state and therefore live in the solver; for those two
// the Selection acts as a tag (Blocked reports which tile body to run)
// while the slice-level operations below are implemented here.
package kernels

import (
	"fmt"
	"sort"
	"sync"
)

// Kernel enumerates the backend-selectable hot kernels.
type Kernel int

const (
	// RKUpdate is the RK46NL 2N register update: dq = a·dq + dt·r; q += b·dq.
	RKUpdate Kernel = iota
	// Reset is the start-of-step dQ bank zeroing.
	Reset
	// Diff is the interior span of the 8th-order first-derivative stencil.
	Diff
	// Filter is the interior span of the 10th-order low-pass filter.
	Filter
	// FluxAssembly is the fused convective+viscous+diffusive flux kernel
	// (tile body implemented in the solver; selected here).
	FluxAssembly
	// Divergence is the flux-divergence accumulation (derivative spans with
	// OpAdd fused in).
	Divergence
	// Primitives is the conserved→primitive recovery sweep (tile body
	// implemented in the solver; selected here).
	Primitives

	numKernels
)

// NumKernels is the number of selectable kernels.
const NumKernels = int(numKernels)

var kernelNames = [numKernels]string{
	"rk_update", "reset", "diff", "filter", "flux_assembly", "divergence", "primitives",
}

// String returns the kernel's stable flag-spec name.
func (k Kernel) String() string {
	if k >= 0 && k < numKernels {
		return kernelNames[k]
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// KernelByName resolves a flag-spec kernel name.
func KernelByName(name string) (Kernel, bool) {
	for k, n := range kernelNames {
		if n == name {
			return Kernel(k), true
		}
	}
	return 0, false
}

// Impl is one backend implementation of the slice-level hot operations.
// All methods must be safe for concurrent use (they are pure functions of
// their arguments) and bitwise-equal across implementations.
type Impl interface {
	// Name is the registry name ("generic", "blocked").
	Name() string

	// RKUpdateBank advances one register: dq[i] = a·dq[i] + dt·r[i];
	// q[i] += b·dq[i], for i over the full bank. q, dq, r have equal length.
	RKUpdateBank(q, dq, r []float64, a, b, dt float64)

	// ZeroBank zeroes a register bank.
	ZeroBank(dst []float64)

	// DiffInterior applies the 8th-order interior stencil along one grid
	// line for indices i in [c0, c1): p = base + i·stride,
	// d = Σ c8[m-1]·(src[p+m·stride] − src[p−m·stride]), writing d·met[i]
	// (add=false) or accumulating it (add=true) into dst[p].
	DiffInterior(dst, src []float64, base, stride, c0, c1 int, met []float64, add bool)

	// DiffInterior32 is DiffInterior with float32 destination storage: the
	// stencil and metric scaling are evaluated in float64 and rounded once
	// on store (accumulation, when add is set, also promotes to float64).
	DiffInterior32(dst []float32, src []float64, base, stride, c0, c1 int, met []float64, add bool)

	// FilterInterior applies the 10th-order interior filter along one grid
	// line for i in [c0, c1): dst[p] = src[p] − scale·Σ filter10[l+5]·src[p+l·stride].
	FilterInterior(dst, src []float64, base, stride, c0, c1 int, scale float64, add bool)
}

// Eighth-order centred first-derivative weights for offsets ±1..±4
// (antisymmetric; the weight of offset −m is −c8[m−1]). These are the
// kernel contract shared by every Impl; deriv's boundary closures keep
// their own reduced-order weights.
var c8 = [4]float64{4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0}

// filter10 holds (−1)^l·C(10,5+l) for offsets l = −5..5.
var filter10 = [11]float64{-1, 10, -45, 120, -210, 252, -210, 120, -45, 10, -1}

var (
	regMu    sync.RWMutex
	registry = map[string]Impl{}
)

// Register records an implementation under its Name. Later registrations
// replace earlier ones (tests may shadow).
func Register(im Impl) {
	regMu.Lock()
	registry[im.Name()] = im
	regMu.Unlock()
}

// Get resolves a registered implementation by name.
func Get(name string) (Impl, bool) {
	regMu.RLock()
	im, ok := registry[name]
	regMu.RUnlock()
	return im, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// Generic returns the reference implementation (always registered).
func Generic() Impl { return genericImpl{} }

// Blocked returns the hand-tiled implementation (always registered).
func Blocked() Impl { return blockedImpl{} }

func init() {
	Register(genericImpl{})
	Register(blockedImpl{})
}
