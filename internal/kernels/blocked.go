package kernels

// blockedImpl is the hand-tiled backend: bounds checks are hoisted by
// re-slicing every operand to a proven common length, unit-stride stencils
// read through pre-shifted slice windows, and the bank update is unrolled
// four-wide. Only the addressing changes — each output value is produced by
// exactly the expression genericImpl uses, in the same association order,
// so results are bitwise identical (the property the backend-parity gate
// and the "auto" mode both rely on).
type blockedImpl struct{}

func (blockedImpl) Name() string { return "blocked" }

func (blockedImpl) RKUpdateBank(q, dq, r []float64, a, b, dt float64) {
	n := len(dq)
	if len(q) < n || len(r) < n {
		panic("kernels: RKUpdateBank register length mismatch")
	}
	// Re-slice to the common length: every index below is provably in
	// bounds, so the three streams run check-free and unrolled.
	q, r = q[:n], r[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a*dq[i] + dt*r[i]
		d1 := a*dq[i+1] + dt*r[i+1]
		d2 := a*dq[i+2] + dt*r[i+2]
		d3 := a*dq[i+3] + dt*r[i+3]
		dq[i], dq[i+1], dq[i+2], dq[i+3] = d0, d1, d2, d3
		q[i] += b * d0
		q[i+1] += b * d1
		q[i+2] += b * d2
		q[i+3] += b * d3
	}
	for ; i < n; i++ {
		d := a*dq[i] + dt*r[i]
		dq[i] = d
		q[i] += b * d
	}
}

func (blockedImpl) ZeroBank(dst []float64) {
	clear(dst) // the runtime memclr: the fastest zeroing Go can emit
}

func (blockedImpl) DiffInterior(dst, src []float64, base, stride, c0, c1 int, met []float64, add bool) {
	n := c1 - c0
	if n <= 0 {
		return
	}
	if stride != 1 {
		diffStrided(dst, src, base, stride, c0, c1, met, add)
		return
	}
	o := base + c0
	// Pre-shifted unit-stride windows: one bounds check per window at slice
	// time, none in the loop.
	d := dst[o : o+n]
	sm4, sm3, sm2, sm1 := src[o-4:o-4+n], src[o-3:o-3+n], src[o-2:o-2+n], src[o-1:o-1+n]
	sp1, sp2, sp3, sp4 := src[o+1:o+1+n], src[o+2:o+2+n], src[o+3:o+3+n], src[o+4:o+4+n]
	mw := met[c0 : c0+n]
	if add {
		for x := range d {
			v := c8[0]*(sp1[x]-sm1[x]) +
				c8[1]*(sp2[x]-sm2[x]) +
				c8[2]*(sp3[x]-sm3[x]) +
				c8[3]*(sp4[x]-sm4[x])
			d[x] += v * mw[x]
		}
	} else {
		for x := range d {
			v := c8[0]*(sp1[x]-sm1[x]) +
				c8[1]*(sp2[x]-sm2[x]) +
				c8[2]*(sp3[x]-sm3[x]) +
				c8[3]*(sp4[x]-sm4[x])
			d[x] = v * mw[x]
		}
	}
}

// diffStrided is the non-unit-stride fall-back: same expression, with the
// flat index carried incrementally instead of recomputed per point.
func diffStrided(dst, src []float64, base, stride, c0, c1 int, met []float64, add bool) {
	p := base + c0*stride
	s1, s2, s3, s4 := stride, 2*stride, 3*stride, 4*stride
	for i := c0; i < c1; i++ {
		v := c8[0]*(src[p+s1]-src[p-s1]) +
			c8[1]*(src[p+s2]-src[p-s2]) +
			c8[2]*(src[p+s3]-src[p-s3]) +
			c8[3]*(src[p+s4]-src[p-s4])
		if add {
			dst[p] += v * met[i]
		} else {
			dst[p] = v * met[i]
		}
		p += stride
	}
}

func (blockedImpl) DiffInterior32(dst []float32, src []float64, base, stride, c0, c1 int, met []float64, add bool) {
	n := c1 - c0
	if n <= 0 {
		return
	}
	if stride != 1 {
		p := base + c0*stride
		s1, s2, s3, s4 := stride, 2*stride, 3*stride, 4*stride
		for i := c0; i < c1; i++ {
			v := c8[0]*(src[p+s1]-src[p-s1]) +
				c8[1]*(src[p+s2]-src[p-s2]) +
				c8[2]*(src[p+s3]-src[p-s3]) +
				c8[3]*(src[p+s4]-src[p-s4])
			storeNarrow(dst, p, v*met[i], add)
			p += stride
		}
		return
	}
	o := base + c0
	d := dst[o : o+n]
	sm4, sm3, sm2, sm1 := src[o-4:o-4+n], src[o-3:o-3+n], src[o-2:o-2+n], src[o-1:o-1+n]
	sp1, sp2, sp3, sp4 := src[o+1:o+1+n], src[o+2:o+2+n], src[o+3:o+3+n], src[o+4:o+4+n]
	mw := met[c0 : c0+n]
	if add {
		for x := range d {
			v := c8[0]*(sp1[x]-sm1[x]) +
				c8[1]*(sp2[x]-sm2[x]) +
				c8[2]*(sp3[x]-sm3[x]) +
				c8[3]*(sp4[x]-sm4[x])
			d[x] = float32(float64(d[x]) + v*mw[x])
		}
	} else {
		for x := range d {
			v := c8[0]*(sp1[x]-sm1[x]) +
				c8[1]*(sp2[x]-sm2[x]) +
				c8[2]*(sp3[x]-sm3[x]) +
				c8[3]*(sp4[x]-sm4[x])
			d[x] = float32(v * mw[x])
		}
	}
}

func (blockedImpl) FilterInterior(dst, src []float64, base, stride, c0, c1 int, scale float64, add bool) {
	n := c1 - c0
	if n <= 0 {
		return
	}
	if stride != 1 {
		p := base + c0*stride
		for i := c0; i < c1; i++ {
			var acc float64
			for l := -5; l <= 5; l++ {
				acc += filter10[l+5] * src[p+l*stride]
			}
			if add {
				dst[p] += src[p] - scale*acc
			} else {
				dst[p] = src[p] - scale*acc
			}
			p += stride
		}
		return
	}
	o := base + c0
	d := dst[o : o+n]
	s0 := src[o : o+n]
	sm5, sm4, sm3 := src[o-5:o-5+n], src[o-4:o-4+n], src[o-3:o-3+n]
	sm2, sm1 := src[o-2:o-2+n], src[o-1:o-1+n]
	sp1, sp2, sp3 := src[o+1:o+1+n], src[o+2:o+2+n], src[o+3:o+3+n]
	sp4, sp5 := src[o+4:o+4+n], src[o+5:o+5+n]
	// The accumulation below mirrors the generic l = −5..5 loop: acc starts
	// at zero (preserving signed-zero semantics) and folds the terms in
	// ascending-offset order, so the association order — and therefore every
	// rounded bit — is unchanged.
	if add {
		for x := range d {
			acc := 0.0
			acc += filter10[0] * sm5[x]
			acc += filter10[1] * sm4[x]
			acc += filter10[2] * sm3[x]
			acc += filter10[3] * sm2[x]
			acc += filter10[4] * sm1[x]
			acc += filter10[5] * s0[x]
			acc += filter10[6] * sp1[x]
			acc += filter10[7] * sp2[x]
			acc += filter10[8] * sp3[x]
			acc += filter10[9] * sp4[x]
			acc += filter10[10] * sp5[x]
			d[x] += s0[x] - scale*acc
		}
	} else {
		for x := range d {
			acc := 0.0
			acc += filter10[0] * sm5[x]
			acc += filter10[1] * sm4[x]
			acc += filter10[2] * sm3[x]
			acc += filter10[3] * sm2[x]
			acc += filter10[4] * sm1[x]
			acc += filter10[5] * s0[x]
			acc += filter10[6] * sp1[x]
			acc += filter10[7] * sp2[x]
			acc += filter10[8] * sp3[x]
			acc += filter10[9] * sp4[x]
			acc += filter10[10] * sp5[x]
			d[x] = s0[x] - scale*acc
		}
	}
}
