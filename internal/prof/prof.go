// Package prof is an always-compilable, opt-in call-path profiler in the
// spirit of TAU/HPCToolkit — the tooling that drove the paper's §4
// node-level optimisation campaign. Hot regions open nestable spans on a
// per-rank (or per-pool-worker) Track; each completed span records one
// timeline event attributed to an interned call path ("STEP/RHS/MPI_WAIT"),
// so blocked communication time is charged to the call path that blocked,
// exactly as TAU attributed S3D's MPI_WAIT to the ghost-zone exchange.
//
// The profiler aggregates per-rank inclusive/exclusive call-path trees with
// cross-rank imbalance statistics (aggregate.go), exports Chrome
// trace_event timelines loadable in chrome://tracing or Perfetto
// (chrometrace.go), renders text/CSV call-path reports (report.go), and
// compares measured kernel rates against the internal/perf analytic
// roofline (roofline.go).
//
// Cost contract: with no profiler attached a Begin/End pair is two nil
// checks; with a profiler attached but disabled it is two atomic loads.
// Spans are region-grained (dozens per time step), so the enabled path's
// mutex-guarded event append stays far below the ≤5% overhead budget
// guarded by BenchmarkProfOverhead.
package prof

import (
	"sync"
	"sync/atomic"
	"time"
)

// Track group names used by the exporters to lay out timelines: one process
// row for the ranks, one for the pool workers.
const (
	GroupRank   = "rank"
	GroupWorker = "worker"
)

// Profiler owns a set of tracks sharing one time epoch. Creating a Profiler
// is the opt-in; a nil *Track (no profiler attached) records nothing.
type Profiler struct {
	epoch  time.Time
	on     atomic.Bool
	mu     sync.Mutex
	tracks []*Track
}

// New creates an enabled profiler whose epoch is "now"; all span timestamps
// are nanoseconds since this epoch.
func New() *Profiler {
	p := &Profiler{epoch: time.Now()}
	p.on.Store(true)
	return p
}

// SetEnabled toggles span recording globally. Spans begun while disabled
// record nothing; spans already open when the state flips still record.
func (p *Profiler) SetEnabled(on bool) { p.on.Store(on) }

// Enabled reports whether spans are being recorded.
func (p *Profiler) Enabled() bool { return p.on.Load() }

// now returns nanoseconds since the profiler epoch.
func (p *Profiler) now() int64 { return time.Since(p.epoch).Nanoseconds() }

// Epoch returns the wall-clock origin of the profiler clock, so consumers
// holding timestamps on another in-process clock (the comm world clock, the
// critpath analyzer clock) can align the two with Epoch().Sub(other).
func (p *Profiler) Epoch() time.Time { return p.epoch }

// NewTrack registers a timeline track. Group selects the exporter layout
// row (GroupRank or GroupWorker); name labels the track ("rank0",
// "worker3"). The returned track's span methods must be called from a
// single owning goroutine at a time (the rank or worker the track belongs
// to); snapshotting for export is safe concurrently.
func (p *Profiler) NewTrack(group, name string) *Track {
	t := &Track{
		p:        p,
		group:    group,
		name:     name,
		nodes:    []pathNode{{name: "", parent: -1}},
		children: make(map[childKey]int32),
	}
	p.mu.Lock()
	t.id = len(p.tracks)
	p.tracks = append(p.tracks, t)
	p.mu.Unlock()
	return t
}

// Tracks returns the registered tracks in creation order.
func (p *Profiler) Tracks() []*Track {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Track, len(p.tracks))
	copy(out, p.tracks)
	return out
}

// childKey locates a call-path node by its parent and region name.
type childKey struct {
	parent int32
	name   string
}

// pathNode is one interned call-path node; node 0 is the synthetic root.
type pathNode struct {
	name   string
	parent int32
}

// Event is one completed span on a track's timeline. Start is nanoseconds
// since the profiler epoch; Path indexes the track's node table. Args are
// optional key/value annotations (tile coordinates on worker spans) carried
// through to the Chrome trace exporter; nil for plain spans.
type Event struct {
	Path  int32
	Start int64
	Dur   int64
	Args  map[string]string
}

// Track is one timeline: a call-path node table, the owner goroutine's open
// span stack, and the recorded events.
type Track struct {
	p     *Profiler
	group string
	name  string
	id    int

	// stack holds the open call-path, touched only by the owning goroutine.
	stack []int32

	// mu guards nodes/children/events against concurrent Snapshot readers
	// (the live monitor exports profiles mid-run).
	mu       sync.Mutex
	nodes    []pathNode
	children map[childKey]int32
	events   []Event
}

// Name returns the track label ("rank0").
func (t *Track) Name() string { return t.name }

// Profiler returns the profiler the track records on, or nil for a nil
// track — so a subsystem handed only a track (solver blocks hold one) can
// reach the shared epoch and snapshot machinery.
func (t *Track) Profiler() *Profiler {
	if t == nil {
		return nil
	}
	return t.p
}

// Group returns the track's layout group (GroupRank or GroupWorker).
func (t *Track) Group() string { return t.group }

// Recording reports whether spans begun now would record: the track is
// attached to an enabled profiler. Callers building span annotations
// (BeginArgs) should gate the allocation on it.
func (t *Track) Recording() bool {
	return t != nil && t.p.on.Load()
}

// Begin opens a nested span named after a region. It is safe (and free) on
// a nil track; with a disabled profiler it costs one atomic load. The
// returned Span must be closed with End on the same goroutine.
func (t *Track) Begin(name string) Span {
	return t.BeginArgs(name, nil)
}

// BeginArgs is Begin with key/value annotations attached to the recorded
// event (rendered as the args field of the Chrome trace span).
func (t *Track) BeginArgs(name string, args map[string]string) Span {
	if t == nil || !t.p.on.Load() {
		return Span{}
	}
	parent := int32(0)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.mu.Lock()
	id, ok := t.children[childKey{parent, name}]
	if !ok {
		id = int32(len(t.nodes))
		t.nodes = append(t.nodes, pathNode{name: name, parent: parent})
		t.children[childKey{parent, name}] = id
	}
	t.mu.Unlock()
	t.stack = append(t.stack, id)
	return Span{t: t, path: id, start: t.p.now(), args: args}
}

// Span is one open region on a track. The zero Span (from a nil or disabled
// track) is valid and End is a no-op on it.
type Span struct {
	t     *Track
	path  int32
	start int64
	args  map[string]string
}

// End closes the span and records its timeline event. Unbalanced inner
// spans (a missed End below this frame) are discarded rather than left to
// corrupt the stack.
func (s Span) End() {
	if s.t == nil {
		return
	}
	t := s.t
	end := t.p.now()
	for n := len(t.stack); n > 0; n-- {
		if t.stack[n-1] == s.path {
			t.stack = t.stack[:n-1]
			break
		}
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Path: s.path, Start: s.start, Dur: end - s.start, Args: s.args})
	t.mu.Unlock()
}

// PathNode is the exported form of one call-path node.
type PathNode struct {
	Name   string
	Parent int32 // -1 for the root node
}

// TrackSnapshot is a consistent copy of one track for export; safe to read
// while the owning goroutine keeps recording.
type TrackSnapshot struct {
	Group  string
	Name   string
	ID     int
	Nodes  []PathNode
	Events []Event
}

// Snapshot copies the track's node table and events.
func (t *Track) Snapshot() TrackSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TrackSnapshot{Group: t.group, Name: t.name, ID: t.id}
	s.Nodes = make([]PathNode, len(t.nodes))
	for i, n := range t.nodes {
		s.Nodes[i] = PathNode{Name: n.name, Parent: n.parent}
	}
	s.Events = make([]Event, len(t.events))
	copy(s.Events, t.events)
	return s
}

// SnapshotRange copies the track's node table and only the events whose
// span overlaps [loNs, hiNs) on the profiler clock. Because events append
// at span End, end times (Start+Dur) are monotone non-decreasing per
// track, so the scan walks backward from the tail and stops at the first
// event that ended before loNs — a windowed snapshot stays cheap on long
// runs (the critpath analyzer takes one per analyzed step).
func (t *Track) SnapshotRange(loNs, hiNs int64) TrackSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TrackSnapshot{Group: t.group, Name: t.name, ID: t.id}
	s.Nodes = make([]PathNode, len(t.nodes))
	for i, n := range t.nodes {
		s.Nodes[i] = PathNode{Name: n.name, Parent: n.parent}
	}
	lo := len(t.events)
	for lo > 0 && t.events[lo-1].Start+t.events[lo-1].Dur >= loNs {
		lo--
	}
	for _, ev := range t.events[lo:] {
		if ev.Start < hiNs && ev.Start+ev.Dur >= loNs {
			s.Events = append(s.Events, ev)
		}
	}
	return s
}

// Snapshot copies every track, in creation order.
func (p *Profiler) Snapshot() []TrackSnapshot {
	tracks := p.Tracks()
	out := make([]TrackSnapshot, len(tracks))
	for i, t := range tracks {
		out[i] = t.Snapshot()
	}
	return out
}
