package prof

import (
	"math"
	"sort"
)

// PathStats is one merged call-path node across every rank track: inclusive
// and exclusive wall time, call counts, and the cross-rank spread of the
// exclusive time (the load-imbalance statistic TAU-style profiles lead
// with — the straggler rank is the one the whole allocation waits for).
type PathStats struct {
	Path  string // "/"-joined region names from the root, e.g. "STEP/RHS/MPI_WAIT"
	Name  string // leaf region name
	Depth int

	Calls int64   // total calls across ranks
	Incl  float64 // inclusive seconds summed across ranks
	Excl  float64 // exclusive seconds summed across ranks

	// Cross-rank spread of the exclusive seconds (ranks that never entered
	// the path count as zero — a hard imbalance, not a missing sample).
	MinSec, MeanSec, MaxSec, StdSec float64
	MinRank, MaxRank                string // straggler = MaxRank
}

// KernelStat is one kernel label's share of a pool worker's busy time.
type KernelStat struct {
	Name  string
	Calls int64
	Sec   float64
}

// WorkerStat summarises one pool worker track: total busy time (the rest of
// the wall is idle) and the per-kernel breakdown.
type WorkerStat struct {
	Name    string
	BusySec float64
	Kernels []KernelStat // sorted by descending busy time
}

// Report is the aggregated profile: the merged rank call-path tree in
// depth-first order plus the pool-worker busy/idle view.
type Report struct {
	WallSec   float64 // latest event end across all tracks
	RankNames []string
	Paths     []*PathStats // depth-first over the merged tree
	Workers   []WorkerStat
}

// gnode is one node of the merged cross-rank tree during aggregation.
type gnode struct {
	name     string
	parent   int
	depth    int
	children []int
	calls    int64
	incl     []float64 // per rank, seconds
	excl     []float64 // per rank, seconds
}

// Build aggregates a snapshot of every track into a Report. Tracks in
// GroupWorker feed the worker view; every other track is treated as a rank.
func Build(p *Profiler) *Report { return BuildFrom(p.Snapshot()) }

// BuildFrom aggregates already-snapshotted tracks (the exporters snapshot
// once and reuse it).
func BuildFrom(snaps []TrackSnapshot) *Report {
	rep := &Report{}
	var ranks, workers []TrackSnapshot
	for _, s := range snaps {
		for _, e := range s.Events {
			if end := float64(e.Start+e.Dur) / 1e9; end > rep.WallSec {
				rep.WallSec = end
			}
		}
		if s.Group == GroupWorker {
			workers = append(workers, s)
		} else {
			ranks = append(ranks, s)
		}
	}
	rep.buildPaths(ranks)
	rep.buildWorkers(workers)
	return rep
}

func (r *Report) buildPaths(ranks []TrackSnapshot) {
	nr := len(ranks)
	for _, s := range ranks {
		r.RankNames = append(r.RankNames, s.Name)
	}
	nodes := []*gnode{{parent: -1, depth: -1, incl: make([]float64, nr), excl: make([]float64, nr)}}
	index := map[childKey]int{}
	for ri, s := range ranks {
		// Local nodes are created parents-first, so a single in-order pass
		// can map them onto the merged tree.
		l2g := make([]int, len(s.Nodes))
		for li := 1; li < len(s.Nodes); li++ {
			ln := s.Nodes[li]
			gp := l2g[ln.Parent]
			key := childKey{parent: int32(gp), name: ln.Name}
			gi, ok := index[key]
			if !ok {
				gi = len(nodes)
				nodes = append(nodes, &gnode{
					name: ln.Name, parent: gp, depth: nodes[gp].depth + 1,
					incl: make([]float64, nr), excl: make([]float64, nr),
				})
				nodes[gp].children = append(nodes[gp].children, gi)
				index[key] = gi
			}
			l2g[li] = gi
		}
		for _, e := range s.Events {
			g := nodes[l2g[e.Path]]
			g.calls++
			g.incl[ri] += float64(e.Dur) / 1e9
		}
	}
	// Exclusive = inclusive minus the children's inclusive, per rank.
	for _, g := range nodes {
		copy(g.excl, g.incl)
	}
	for _, g := range nodes[1:] {
		p := nodes[g.parent]
		for ri := range p.excl {
			p.excl[ri] -= g.incl[ri]
		}
	}
	// Emit depth-first in creation order (stable across runs).
	var walk func(gi int, prefix string)
	walk = func(gi int, prefix string) {
		g := nodes[gi]
		path := prefix
		if gi != 0 {
			if prefix == "" {
				path = g.name
			} else {
				path = prefix + "/" + g.name
			}
			ps := &PathStats{Path: path, Name: g.name, Depth: g.depth, Calls: g.calls}
			for ri := 0; ri < len(g.incl); ri++ {
				ps.Incl += g.incl[ri]
				ps.Excl += g.excl[ri]
			}
			ps.MinSec, ps.MeanSec, ps.MaxSec, ps.StdSec, ps.MinRank, ps.MaxRank =
				spread(g.excl, r.RankNames)
			r.Paths = append(r.Paths, ps)
		}
		for _, c := range g.children {
			walk(c, path)
		}
	}
	walk(0, "")
}

// spread computes min/mean/max/stddev over per-rank values plus the
// extremal rank names.
func spread(vals []float64, names []string) (min, mean, max, std float64, minName, maxName string) {
	if len(vals) == 0 {
		return
	}
	min, max = vals[0], vals[0]
	minName, maxName = names[0], names[0]
	var sum, sumSq float64
	for i, v := range vals {
		sum += v
		sumSq += v * v
		if v < min {
			min, minName = v, names[i]
		}
		if v > max {
			max, maxName = v, names[i]
		}
	}
	mean = sum / float64(len(vals))
	variance := sumSq/float64(len(vals)) - mean*mean
	if variance > 0 {
		std = math.Sqrt(variance)
	}
	return
}

func (r *Report) buildWorkers(workers []TrackSnapshot) {
	for _, s := range workers {
		ws := WorkerStat{Name: s.Name}
		type acc struct {
			calls int64
			sec   float64
		}
		byName := map[string]*acc{}
		for _, e := range s.Events {
			sec := float64(e.Dur) / 1e9
			ws.BusySec += sec
			name := s.Nodes[e.Path].Name
			a := byName[name]
			if a == nil {
				a = &acc{}
				byName[name] = a
			}
			a.calls++
			a.sec += sec
		}
		for name, a := range byName {
			ws.Kernels = append(ws.Kernels, KernelStat{Name: name, Calls: a.calls, Sec: a.sec})
		}
		sort.Slice(ws.Kernels, func(i, j int) bool {
			if ws.Kernels[i].Sec != ws.Kernels[j].Sec {
				return ws.Kernels[i].Sec > ws.Kernels[j].Sec
			}
			return ws.Kernels[i].Name < ws.Kernels[j].Name
		})
		r.Workers = append(r.Workers, ws)
	}
}

// RegionTotals sums calls and exclusive seconds by leaf region name across
// all paths and ranks (the roofline module's measured input: a kernel's
// cost wherever it appears in the tree).
func (r *Report) RegionTotals() map[string]KernelStat {
	out := map[string]KernelStat{}
	for _, ps := range r.Paths {
		ks := out[ps.Name]
		ks.Name = ps.Name
		ks.Calls += ps.Calls
		ks.Sec += ps.Excl
		out[ps.Name] = ks
	}
	return out
}

// NumRanks returns the number of rank tracks in the report.
func (r *Report) NumRanks() int { return len(r.RankNames) }
