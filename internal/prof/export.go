package prof

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"github.com/s3dgo/s3d/internal/perf"
)

// Export writes the complete profile artifact set into dir (created if
// missing):
//
//	trace.json    Chrome trace_event timeline (chrome://tracing, Perfetto)
//	callpath.txt  inclusive/exclusive call-path tree + cross-rank imbalance
//	callpath.csv  the same tree in CSV
//	roofline.txt  measured-vs-modelled roofline per kernel
//
// A zero shape skips the roofline report (no grid information available).
func Export(dir string, p *Profiler, shape RunShape, machines []perf.Machine) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("prof: export dir: %w", err)
	}
	snaps := p.Snapshot()
	var buf bytes.Buffer
	if err := WriteChromeTraceFrom(&buf, snaps); err != nil {
		return fmt.Errorf("prof: trace export: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), buf.Bytes(), 0o644); err != nil {
		return err
	}
	rep := BuildFrom(snaps)
	if err := os.WriteFile(filepath.Join(dir, "callpath.txt"), []byte(rep.Text()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "callpath.csv"), []byte(rep.CSV()), 0o644); err != nil {
		return err
	}
	if shape.PointsPerRank > 0 {
		rows := Roofline(rep, shape, machines)
		txt := FormatRoofline(rows, shape, machines)
		if err := os.WriteFile(filepath.Join(dir, "roofline.txt"), []byte(txt), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the live profile of a running simulation:
//
//	<prefix>/trace.json    Chrome trace_event timeline so far
//	<prefix>/callpath.txt  call-path report so far
//	<prefix>/callpath.csv  CSV call-path report
//	<prefix>/roofline.txt  roofline report (when shape is known)
//
// Mount it on the obs monitor under a stripped prefix.
func Handler(p *Profiler, shape RunShape, machines []perf.Machine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, p)
	})
	mux.HandleFunc("/callpath.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(Build(p).Text()))
	})
	mux.HandleFunc("/callpath.csv", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		_, _ = w.Write([]byte(Build(p).CSV()))
	})
	mux.HandleFunc("/roofline.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if shape.PointsPerRank <= 0 {
			http.Error(w, "roofline unavailable: run shape unknown", http.StatusNotFound)
			return
		}
		rows := Roofline(Build(p), shape, machines)
		_, _ = w.Write([]byte(FormatRoofline(rows, shape, machines)))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "profile endpoints: trace.json callpath.txt callpath.csv roofline.txt")
	})
	return mux
}
