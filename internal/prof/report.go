package prof

import (
	"fmt"
	"strings"
)

// Text renders the call-path report: the merged inclusive/exclusive tree
// with cross-rank imbalance per path, followed by the pool-worker busy/idle
// view — the TAU-style flat view the paper's figure 2 is drawn from.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "call-path profile: %d rank track(s), %d worker track(s), wall %.3f s\n\n",
		len(r.RankNames), len(r.Workers), r.WallSec)
	fmt.Fprintf(&sb, "%12s %12s %10s  %-32s %7s  %-10s %s\n",
		"incl(s)", "excl(s)", "calls", "excl min/mean/max (s)", "imb%", "straggler", "call path")
	for _, p := range r.Paths {
		imb := 0.0
		if p.MeanSec > 0 {
			imb = 100 * (p.MaxSec - p.MeanSec) / p.MeanSec
		}
		spreadCol := fmt.Sprintf("%.4g/%.4g/%.4g", p.MinSec, p.MeanSec, p.MaxSec)
		fmt.Fprintf(&sb, "%12.4f %12.4f %10d  %-32s %7.1f  %-10s %s%s\n",
			p.Incl, p.Excl, p.Calls, spreadCol, imb, p.MaxRank,
			strings.Repeat("  ", p.Depth), p.Name)
	}
	if len(r.Workers) > 0 {
		fmt.Fprintf(&sb, "\npool workers (wall %.3f s):\n", r.WallSec)
		for _, w := range r.Workers {
			util := 0.0
			if r.WallSec > 0 {
				util = 100 * w.BusySec / r.WallSec
			}
			fmt.Fprintf(&sb, "  %-10s busy %8.3f s (%5.1f%%)", w.Name, w.BusySec, util)
			for i, k := range w.Kernels {
				if i == 3 {
					fmt.Fprintf(&sb, ", ...")
					break
				}
				sep := "  top:"
				if i > 0 {
					sep = ","
				}
				fmt.Fprintf(&sb, "%s %s %.3f s", sep, k.Name, k.Sec)
			}
			fmt.Fprintln(&sb)
		}
	}
	return sb.String()
}

// CSV renders the merged call-path tree as comma-separated rows with a
// header, one row per path (times in seconds).
func (r *Report) CSV() string {
	var sb strings.Builder
	sb.WriteString("path,name,depth,calls,incl_s,excl_s,excl_min_s,excl_mean_s,excl_max_s,excl_std_s,straggler\n")
	for _, p := range r.Paths {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%.9f,%.9f,%.9f,%.9f,%.9f,%.9f,%s\n",
			p.Path, p.Name, p.Depth, p.Calls, p.Incl, p.Excl,
			p.MinSec, p.MeanSec, p.MaxSec, p.StdSec, p.MaxRank)
	}
	return sb.String()
}
