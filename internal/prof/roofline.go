package prof

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/s3dgo/s3d/internal/perf"
)

// RunShape carries the grid parameters the kernel demand model needs — the
// per-rank interior point count and the mechanism's species count — plus the
// run's kernel-backend and precision-policy labels, so a roofline table
// states which implementation produced each measured rate.
type RunShape struct {
	PointsPerRank int
	NumSpecies    int
	// Policy is the storage policy the run was built under ("strict",
	// "mixed"); empty when the caller predates the policy layer.
	Policy string
	// KernelImpl maps a profiled region name to the backend implementation
	// serving it ("generic", "blocked"); regions absent from the map show
	// "-" in the table.
	KernelImpl map[string]string
}

// Demand is the analytic per-grid-point cost of one call of a kernel.
type Demand struct {
	Flops float64 // floating-point operations per grid point per call
	Bytes float64 // memory traffic per grid point per call
}

// KernelDemand returns the analytic flop/byte demand of one named solver
// region per grid point per call, parameterised by the species count ns
// (nvar = ns+4 conserved fields). The counts are operation-level estimates
// read off the kernel loop bodies — the same style of static counting the
// paper's §4 roofline reasoning used — not hardware counter measurements:
//
//   - derivative sweeps charge 17 flops per 9-point stencil (8 multiplies,
//     8 adds, one metric scale) and ~2.2 streamed doubles per derivative
//     (stencil reads mostly hit cache; one miss-ish read plus one write);
//   - pointwise thermochemistry charges the dominant polynomial and
//     mixture-rule terms (cp/h evaluations ≈ 12 flops per species, mixture
//     transport combination rules ≈ O(ns²)).
//
// Regions that do not sweep the volume (ghost exchange, waits, NSCBC faces)
// have no per-point demand and are absent.
func KernelDemand(name string, ns int) (Demand, bool) {
	nvar := float64(ns + 4)
	nsf := float64(ns)
	const dFlops = 17.0 // flops per 9-point derivative
	const dBytes = 17.6 // 2.2 doubles streamed per derivative
	switch name {
	case "COMPUTE_PRIMITIVES":
		// Velocity/KE recovery (~12), species unpacking (2ns), Newton
		// temperature inversion (~4 iterations of a 12ns-flop cp/e
		// polynomial sweep), mixture weight and pressure (~2ns+8).
		return Demand{Flops: 20 + 52*nsf, Bytes: 8 * (nvar + 7 + 2*nsf)}, true
	case "COMPUTE_TRANSPORT":
		// Wilke-style mixture rules for mu/lambda and mixture-averaged D:
		// pairwise species combinations dominate.
		return Demand{Flops: 20*nsf + 12*nsf*nsf, Bytes: 8 * (2*nsf + 6)}, true
	case "DERIVATIVES":
		// Gradient sweep: 3 directions x (3 velocity + T + W + ns species).
		n := 3 * (5 + nsf)
		return Demand{Flops: dFlops * n, Bytes: dBytes * n}, true
	case "DIVERGENCE":
		// 3 flux derivatives per conserved field plus the accumulate/negate.
		n := 3 * nvar
		return Demand{Flops: dFlops*n + 2*nvar, Bytes: dBytes*n + 8*nvar}, true
	case "COMPUTESPECIESDIFFFLUX":
		// Per species and direction: J* = -rho D (dY + (Y/W) dW) then the
		// correction flux (paper eq. 15/19) — ~20 flops and ~4 streamed
		// doubles per (species, direction) pair.
		return Demand{Flops: 60 * nsf, Bytes: 8 * 12 * nsf}, true
	case "ASSEMBLE_FLUXES":
		// Stress tensor (~40), heat flux 3x(2+2ns), convective fluxes
		// 3x(~20), species fluxes 9ns, enthalpy polynomials 12ns.
		return Demand{Flops: 110 + 27*nsf, Bytes: 8 * (32 + 7*nsf)}, true
	case "REACTION_RATE_BOUNDS":
		// Arrhenius rates with exponentials; compute-bound by design (the
		// paper's figure-2 chemistry kernel runs at the same speed on XT3
		// and XT4). ~250 flops per species covers the H2/air mechanism's
		// rate evaluations amortised over its 9 species.
		return Demand{Flops: 250 * nsf, Bytes: 8 * 4 * nsf}, true
	case "RK_UPDATE":
		// dq = a*dq + dt*r; q += b*dq: 4 flops, 5 streamed doubles per field.
		return Demand{Flops: 4 * nvar, Bytes: 8 * 5 * nvar}, true
	case "FILTER":
		// 3 axes x nvar fields x (11-point filter ~23 flops, ~4.5 streamed
		// doubles including the copy-back pass).
		return Demand{Flops: 3 * nvar * 23, Bytes: 3 * nvar * 8 * 4.5}, true
	}
	return Demand{}, false
}

// MachineFrac is one kernel's attained fraction of one machine's roofline.
type MachineFrac struct {
	Machine string
	// Frac is t_roofline / t_measured: 1.0 means the kernel runs exactly at
	// the machine model's roofline, lower means headroom (or a model that
	// does not describe this host).
	Frac  float64
	Bound string // "compute" or "memory": which roofline arm binds
}

// RooflineRow compares one kernel's measured rate against the analytic
// machine models.
type RooflineRow struct {
	Kernel    string
	Impl      string  // backend implementation serving the kernel ("-" if n/a)
	Calls     int64   // per rank (mean)
	Sec       float64 // exclusive seconds per rank (mean)
	TimePerPt float64 // measured seconds per grid point per call
	Flops     float64 // modelled flops per grid point per call
	Bytes     float64 // modelled bytes per grid point per call
	GFlopS    float64 // attained Gflop/s implied by the model counts
	GBS       float64 // attained GB/s implied by the model counts
	Machines  []MachineFrac
}

// Roofline builds the figure-2-style measured table: for every profiled
// kernel with an analytic demand model, the measured per-point time, the
// implied attained flop and byte rates, and the attained fraction of each
// machine's roofline (perf.Kernel.Time gives the roofline bound).
func Roofline(rep *Report, shape RunShape, machines []perf.Machine) []RooflineRow {
	if shape.PointsPerRank <= 0 || rep.NumRanks() == 0 {
		return nil
	}
	nRanks := float64(rep.NumRanks())
	var rows []RooflineRow
	for name, ks := range rep.RegionTotals() {
		d, ok := KernelDemand(name, shape.NumSpecies)
		if !ok || ks.Calls == 0 || ks.Sec <= 0 {
			continue
		}
		callsPerRank := float64(ks.Calls) / nRanks
		secPerRank := ks.Sec / nRanks
		tpp := secPerRank / (callsPerRank * float64(shape.PointsPerRank))
		impl := shape.KernelImpl[name]
		if impl == "" {
			impl = "-"
		}
		row := RooflineRow{
			Kernel: name, Impl: impl, Calls: int64(callsPerRank + 0.5), Sec: secPerRank,
			TimePerPt: tpp, Flops: d.Flops, Bytes: d.Bytes,
			GFlopS: d.Flops / tpp / 1e9, GBS: d.Bytes / tpp / 1e9,
		}
		for _, m := range machines {
			k := perf.Kernel{Name: name, Flops: d.Flops, Bytes: d.Bytes}
			bound := "memory"
			if d.Flops/m.FlopRate >= d.Bytes/m.MemBW {
				bound = "compute"
			}
			row.Machines = append(row.Machines, MachineFrac{
				Machine: m.Name, Frac: k.Time(m) / tpp, Bound: bound,
			})
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Sec > rows[j].Sec })
	return rows
}

// FormatRoofline renders the rows as the figure-2-style text table, headed
// by the run's precision policy and with each kernel's serving backend.
func FormatRoofline(rows []RooflineRow, shape RunShape, machines []perf.Machine) string {
	var sb strings.Builder
	sb.WriteString("measured-vs-modelled roofline (per kernel, per grid point per call)\n")
	sb.WriteString("attained% = roofline-model time / measured time on that machine model\n")
	pol := shape.Policy
	if pol == "" {
		pol = "strict"
	}
	fmt.Fprintf(&sb, "precision policy: %s\n\n", pol)
	fmt.Fprintf(&sb, "%-24s %-8s %8s %10s %10s %9s %9s %9s",
		"kernel", "impl", "calls/rk", "excl s/rk", "ns/pt", "flops/pt", "bytes/pt", "Gflop/s")
	for _, m := range machines {
		fmt.Fprintf(&sb, "  %13s", m.Name+" att%")
	}
	sb.WriteString("\n")
	for _, r := range rows {
		impl := r.Impl
		if impl == "" {
			impl = "-"
		}
		fmt.Fprintf(&sb, "%-24s %-8s %8d %10.4f %10.1f %9.0f %9.0f %9.2f",
			r.Kernel, impl, r.Calls, r.Sec, r.TimePerPt*1e9, r.Flops, r.Bytes, r.GFlopS)
		for _, mf := range r.Machines {
			fmt.Fprintf(&sb, "  %6.1f (%s)", 100*mf.Frac, mf.Bound[:3])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// calibration sinks keep the compiler from eliding the measurement loops.
var calibSinkF float64
var calibSink []float64

// CalibrateHost measures this host's single-core attained peak: a short
// FMA-chain loop for the flop rate and a STREAM-triad pass for the memory
// bandwidth (~10 ms each). The result slots into the machine list next to
// the paper's XT3/XT4 models so the roofline report can state attained
// fractions against the hardware the run actually used.
func CalibrateHost() perf.Machine {
	// Flop rate: 8 independent multiply-add chains, the per-core ILP a
	// scalar FPU sustains.
	var a0, a1, a2, a3, a4, a5, a6, a7 = 1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7
	const c0, c1 = 0.999999, 1e-9
	iters := 0
	start := time.Now()
	for time.Since(start) < 5*time.Millisecond {
		for i := 0; i < 100_000; i++ {
			a0 = a0*c0 + c1
			a1 = a1*c0 + c1
			a2 = a2*c0 + c1
			a3 = a3*c0 + c1
			a4 = a4*c0 + c1
			a5 = a5*c0 + c1
			a6 = a6*c0 + c1
			a7 = a7*c0 + c1
		}
		iters += 100_000
	}
	flopSec := time.Since(start).Seconds()
	calibSinkF = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
	flopRate := float64(16*iters) / flopSec

	// Memory bandwidth: triad a = b + s*c over arrays far beyond cache;
	// 3 doubles of traffic per element.
	const n = 1 << 21 // 2M doubles x 3 arrays = 48 MB
	if len(calibSink) < 3*n {
		calibSink = make([]float64, 3*n)
	}
	av, bv, cv := calibSink[:n], calibSink[n:2*n], calibSink[2*n:3*n]
	for i := range bv {
		bv[i], cv[i] = float64(i), float64(n-i)
	}
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		t0 := time.Now()
		for i := 0; i < n; i++ {
			av[i] = bv[i] + 1.000001*cv[i]
		}
		if bw := float64(24*n) / time.Since(t0).Seconds(); bw > best {
			best = bw
		}
	}
	return perf.Machine{Name: "host", FlopRate: flopRate, MemBW: best,
		NICLat: 1e-6, NICBW: 10e9}
}
