package prof

import (
	"strings"
	"testing"

	"github.com/s3dgo/s3d/internal/perf"
)

func TestKernelDemandCoversFigure2Regions(t *testing.T) {
	const ns = 9 // H2/air
	for _, name := range []string{
		"COMPUTE_PRIMITIVES", "COMPUTE_TRANSPORT", "DERIVATIVES", "DIVERGENCE",
		"COMPUTESPECIESDIFFFLUX", "ASSEMBLE_FLUXES", "REACTION_RATE_BOUNDS",
		"RK_UPDATE", "FILTER",
	} {
		d, ok := KernelDemand(name, ns)
		if !ok {
			t.Fatalf("no demand model for %s", name)
		}
		if d.Flops <= 0 || d.Bytes <= 0 {
			t.Fatalf("%s demand = %+v", name, d)
		}
	}
	if _, ok := KernelDemand("GHOST_EXCHANGE", ns); ok {
		t.Fatal("comm region must have no per-point demand model")
	}
	// Chemistry must be modelled compute-bound, diff-flux memory-bound on
	// the XT3 model (the paper's central figure-2 observation).
	chem, _ := KernelDemand("REACTION_RATE_BOUNDS", ns)
	diff, _ := KernelDemand("COMPUTESPECIESDIFFFLUX", ns)
	m := perf.XT3
	if chem.Flops/m.FlopRate <= chem.Bytes/m.MemBW {
		t.Fatal("chemistry modelled memory-bound")
	}
	if diff.Bytes/m.MemBW <= diff.Flops/m.FlopRate {
		t.Fatal("diff-flux modelled compute-bound")
	}
}

func TestRooflineFromSyntheticRun(t *testing.T) {
	p := New()
	tr := p.NewTrack(GroupRank, "rank0")
	// Two kernel calls with real (short) durations.
	for i := 0; i < 2; i++ {
		s := tr.Begin("REACTION_RATE_BOUNDS")
		busyWait()
		s.End()
		s = tr.Begin("RK_UPDATE")
		busyWait()
		s.End()
	}
	rep := Build(p)
	shape := RunShape{
		PointsPerRank: 16 * 16 * 16, NumSpecies: 9,
		Policy:     "mixed",
		KernelImpl: map[string]string{"RK_UPDATE": "blocked"},
	}
	machines := []perf.Machine{perf.XT3, perf.XT4}
	rows := Roofline(rep, shape, machines)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Calls != 2 {
			t.Fatalf("%s calls = %d", r.Kernel, r.Calls)
		}
		switch r.Kernel {
		case "RK_UPDATE":
			if r.Impl != "blocked" {
				t.Fatalf("RK_UPDATE impl = %q, want blocked", r.Impl)
			}
		default:
			if r.Impl != "-" {
				t.Fatalf("%s impl = %q, want -", r.Kernel, r.Impl)
			}
		}
		if r.TimePerPt <= 0 || r.GFlopS <= 0 || r.GBS <= 0 {
			t.Fatalf("%s rates: %+v", r.Kernel, r)
		}
		if len(r.Machines) != 2 {
			t.Fatalf("%s machine fracs = %d", r.Kernel, len(r.Machines))
		}
		for _, mf := range r.Machines {
			if mf.Frac <= 0 {
				t.Fatalf("%s on %s frac = %g", r.Kernel, mf.Machine, mf.Frac)
			}
			if mf.Bound != "compute" && mf.Bound != "memory" {
				t.Fatalf("bound = %q", mf.Bound)
			}
		}
	}
	txt := FormatRoofline(rows, shape, machines)
	for _, want := range []string{
		"REACTION_RATE_BOUNDS", "RK_UPDATE", "XT3", "XT4", "flops/pt",
		"precision policy: mixed", "blocked", "impl",
	} {
		if !strings.Contains(txt, want) {
			t.Fatalf("roofline table missing %q:\n%s", want, txt)
		}
	}
}

// busyWait burns a little real time so durations are strictly positive.
func busyWait() {
	x := 1.0
	for i := 0; i < 20000; i++ {
		x = x*0.9999999 + 1e-12
	}
	calibSinkF = x
}

func TestCalibrateHost(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration loop in -short mode")
	}
	m := CalibrateHost()
	if m.FlopRate < 1e8 || m.MemBW < 1e8 {
		t.Fatalf("implausible host calibration: %+v", m)
	}
}
