package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndAggregation(t *testing.T) {
	p := New()
	tr := p.NewTrack(GroupRank, "rank0")

	outer := tr.Begin("STEP")
	inner := tr.Begin("RHS")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	time.Sleep(time.Millisecond)
	outer.End()

	rep := Build(p)
	if len(rep.Paths) != 2 {
		t.Fatalf("paths = %d, want 2: %+v", len(rep.Paths), rep.Paths)
	}
	var step, rhs *PathStats
	for _, ps := range rep.Paths {
		switch ps.Path {
		case "STEP":
			step = ps
		case "STEP/RHS":
			rhs = ps
		default:
			t.Fatalf("unexpected path %q", ps.Path)
		}
	}
	if step == nil || rhs == nil {
		t.Fatalf("missing paths: %+v", rep.Paths)
	}
	if step.Depth != 0 || rhs.Depth != 1 {
		t.Fatalf("depths = %d, %d", step.Depth, rhs.Depth)
	}
	if step.Incl < rhs.Incl {
		t.Fatalf("inclusive STEP %.6f < RHS %.6f", step.Incl, rhs.Incl)
	}
	// Exclusive STEP excludes the nested RHS time.
	if got := step.Incl - rhs.Incl; abs(got-step.Excl) > 1e-9 {
		t.Fatalf("exclusive STEP = %.9f, want %.9f", step.Excl, got)
	}
	if rhs.Excl != rhs.Incl {
		t.Fatalf("leaf exclusive %.9f != inclusive %.9f", rhs.Excl, rhs.Incl)
	}
	if step.Calls != 1 || rhs.Calls != 1 {
		t.Fatalf("calls = %d, %d", step.Calls, rhs.Calls)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSameNameDifferentParentsStayDistinct(t *testing.T) {
	p := New()
	tr := p.NewTrack(GroupRank, "rank0")
	a := tr.Begin("A")
	tr.Begin("DERIV").End()
	a.End()
	b := tr.Begin("B")
	tr.Begin("DERIV").End()
	b.End()

	rep := Build(p)
	var paths []string
	for _, ps := range rep.Paths {
		paths = append(paths, ps.Path)
	}
	joined := strings.Join(paths, " ")
	for _, want := range []string{"A/DERIV", "B/DERIV"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing path %q in %q", want, joined)
		}
	}
}

func TestNilAndDisabledTracksRecordNothing(t *testing.T) {
	var nilTrack *Track
	sp := nilTrack.Begin("X")
	sp.End() // must not panic

	p := New()
	p.SetEnabled(false)
	tr := p.NewTrack(GroupRank, "rank0")
	tr.Begin("X").End()
	if rep := Build(p); len(rep.Paths) != 0 {
		t.Fatalf("disabled profiler recorded %d paths", len(rep.Paths))
	}
	p.SetEnabled(true)
	tr.Begin("X").End()
	if rep := Build(p); len(rep.Paths) != 1 {
		t.Fatalf("re-enabled profiler recorded %d paths, want 1", len(Build(p).Paths))
	}
}

func TestCrossRankImbalance(t *testing.T) {
	p := New()
	fast := p.NewTrack(GroupRank, "rank0")
	slow := p.NewTrack(GroupRank, "rank1")

	s := fast.Begin("KERNEL")
	time.Sleep(time.Millisecond)
	s.End()
	s = slow.Begin("KERNEL")
	time.Sleep(5 * time.Millisecond)
	s.End()

	rep := Build(p)
	if len(rep.Paths) != 1 {
		t.Fatalf("paths = %d", len(rep.Paths))
	}
	ps := rep.Paths[0]
	if ps.MaxRank != "rank1" {
		t.Fatalf("straggler = %q, want rank1", ps.MaxRank)
	}
	if ps.MinRank != "rank0" {
		t.Fatalf("min rank = %q", ps.MinRank)
	}
	if !(ps.MinSec < ps.MeanSec && ps.MeanSec < ps.MaxSec) {
		t.Fatalf("spread not ordered: %.6f/%.6f/%.6f", ps.MinSec, ps.MeanSec, ps.MaxSec)
	}
	if ps.StdSec <= 0 {
		t.Fatalf("stddev = %.9f, want > 0", ps.StdSec)
	}
	if ps.Calls != 2 {
		t.Fatalf("calls = %d, want 2", ps.Calls)
	}
	// A rank that never enters a path must count as zero, not be skipped.
	s = fast.Begin("ONLY_RANK0")
	s.End()
	rep = Build(p)
	for _, q := range rep.Paths {
		if q.Path == "ONLY_RANK0" && q.MinSec != 0 {
			t.Fatalf("absent rank min = %.9f, want 0", q.MinSec)
		}
	}
}

func TestConcurrentTracksWithSnapshots(t *testing.T) {
	p := New()
	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tr := p.NewTrack(GroupWorker, "worker")
		wg.Add(1)
		go func(tr *Track) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := tr.Begin("TILE")
				tr.Begin("INNER").End()
				s.End()
			}
		}(tr)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = Build(p) // concurrent snapshot while tracks record
		}
	}()
	wg.Wait()
	<-done
	rep := Build(p)
	if len(rep.Workers) != n {
		t.Fatalf("workers = %d", len(rep.Workers))
	}
	var busyEvents int64
	for _, w := range rep.Workers {
		for _, k := range w.Kernels {
			busyEvents += k.Calls
		}
	}
	if busyEvents != n*400 {
		t.Fatalf("worker events = %d, want %d", busyEvents, n*400)
	}
}

func TestChromeTraceExport(t *testing.T) {
	p := New()
	r0 := p.NewTrack(GroupRank, "rank0")
	w0 := p.NewTrack(GroupWorker, "worker0")
	s := r0.Begin("STEP")
	r0.Begin("RHS").End()
	s.End()
	w0.Begin("TILE").End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	var xEvents, meta int
	pids := map[float64]bool{}
	for _, e := range tr.TraceEvents {
		switch e["ph"] {
		case "X":
			xEvents++
			for _, k := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := e[k]; !ok {
					t.Fatalf("event missing %q: %v", k, e)
				}
			}
			pids[e["pid"].(float64)] = true
		case "M":
			meta++
		}
	}
	if xEvents != 3 {
		t.Fatalf("complete events = %d, want 3", xEvents)
	}
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2 (ranks + workers)", len(pids))
	}
	if meta < 4 { // 2 process_name + 2 thread_name
		t.Fatalf("metadata events = %d", meta)
	}
}

func TestReportRenderings(t *testing.T) {
	p := New()
	tr := p.NewTrack(GroupRank, "rank0")
	s := tr.Begin("STEP")
	tr.Begin("REACTION_RATE_BOUNDS").End()
	s.End()
	rep := Build(p)
	txt := rep.Text()
	for _, want := range []string{"call-path profile", "STEP", "REACTION_RATE_BOUNDS", "straggler"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text report missing %q:\n%s", want, txt)
		}
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 { // header + 2 paths
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "path,name,depth,calls") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestUnbalancedInnerSpanRecovers(t *testing.T) {
	p := New()
	tr := p.NewTrack(GroupRank, "rank0")
	outer := tr.Begin("OUTER")
	_ = tr.Begin("LEAKED") // End never called
	outer.End()
	// The stack must be clean again: a new top-level span lands at depth 0.
	tr.Begin("NEXT").End()
	rep := Build(p)
	for _, ps := range rep.Paths {
		if ps.Path == "NEXT" && ps.Depth != 0 {
			t.Fatalf("NEXT depth = %d, want 0", ps.Depth)
		}
	}
}
