package prof

import (
	"encoding/json"
	"io"
	"sort"
)

// traceEvent is one entry of the Chrome trace_event JSON format ("X"
// complete events plus "M" metadata events), the interchange format both
// chrome://tracing and Perfetto load. Timestamps and durations are
// microseconds.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope (Perfetto also accepts a bare
// array, but the object form carries the display unit).
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every track as a Chrome trace_event timeline:
// one process row per track group (ranks, pool workers), one thread per
// track, one complete event per span. Load the output in chrome://tracing
// or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, p *Profiler) error {
	return WriteChromeTraceFrom(w, p.Snapshot())
}

// WriteChromeTraceFrom exports already-snapshotted tracks.
func WriteChromeTraceFrom(w io.Writer, snaps []TrackSnapshot) error {
	// Stable pid per group in first-seen order; stable tid per track within
	// its group.
	pidOf := map[string]int{}
	var groups []string
	tidOf := make([]int, len(snaps))
	nextTid := map[string]int{}
	for i, s := range snaps {
		if _, ok := pidOf[s.Group]; !ok {
			pidOf[s.Group] = len(pidOf) + 1
			groups = append(groups, s.Group)
		}
		tidOf[i] = nextTid[s.Group]
		nextTid[s.Group]++
	}

	var events []traceEvent
	for _, g := range groups {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pidOf[g],
			Args: map[string]string{"name": "s3d " + g + "s"},
		})
	}
	for i, s := range snaps {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf[s.Group], Tid: tidOf[i],
			Args: map[string]string{"name": s.Name},
		})
	}
	for i, s := range snaps {
		pid, tid := pidOf[s.Group], tidOf[i]
		for _, e := range s.Events {
			events = append(events, traceEvent{
				Name: s.Nodes[e.Path].Name,
				Cat:  s.Group,
				Ph:   "X",
				Ts:   float64(e.Start) / 1e3,
				Dur:  float64(e.Dur) / 1e3,
				Pid:  pid,
				Tid:  tid,
				Args: e.Args,
			})
		}
	}
	// Sorted timestamps keep chrome://tracing's legacy importer happy.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
