package thermo

import "math"

// The species database. Raw data per species: enthalpy of formation and
// standard entropy at 298.15 K, elemental composition, and a cp/R table at
// the fit temperatures. The NASA-7-style coefficients are produced by
// buildSpecies at init. Molecular weights are computed from element weights
// so that elemental balance implies exact mass balance, Σᵢ ω̇ᵢ·Wᵢ = 0 —
// the invariant the species equations (paper eq. 4–6) rely on.

// fitTemps are the temperatures (K) at which cp/R is tabulated.
var fitTemps = []float64{300, 600, 1000, 1500, 2000, 2500, 3000}

type rawSpecies struct {
	hf   float64 // J/mol at 298.15 K
	s0   float64 // J/(mol·K) at 298.15 K
	elem map[string]int
	cpR  []float64 // cp/R at fitTemps
}

var rawDatabase = map[string]rawSpecies{
	"H2": {0, 130.68, map[string]int{"H": 2},
		[]float64{3.47, 3.47, 3.54, 3.72, 3.95, 4.13, 4.28}},
	"O2": {0, 205.15, map[string]int{"O": 2},
		[]float64{3.53, 3.85, 4.04, 4.23, 4.37, 4.45, 4.52}},
	"N2": {0, 191.61, map[string]int{"N": 2},
		[]float64{3.50, 3.62, 3.90, 4.12, 4.29, 4.38, 4.45}},
	"H": {217999, 114.72, map[string]int{"H": 1},
		[]float64{2.50, 2.50, 2.50, 2.50, 2.50, 2.50, 2.50}},
	"O": {249180, 161.06, map[string]int{"O": 1},
		[]float64{2.63, 2.56, 2.54, 2.52, 2.51, 2.51, 2.50}},
	"OH": {37280, 183.74, map[string]int{"H": 1, "O": 1},
		[]float64{3.59, 3.52, 3.62, 3.83, 4.02, 4.17, 4.28}},
	"H2O": {-241826, 188.84, map[string]int{"H": 2, "O": 1},
		[]float64{4.04, 4.35, 4.97, 5.64, 6.19, 6.60, 6.92}},
	"HO2": {12300, 229.10, map[string]int{"H": 1, "O": 2},
		[]float64{4.20, 4.90, 5.50, 6.00, 6.30, 6.50, 6.60}},
	"H2O2": {-136110, 232.95, map[string]int{"H": 2, "O": 2},
		[]float64{5.20, 6.30, 7.30, 8.10, 8.60, 8.90, 9.10}},
	"CH4": {-74870, 186.25, map[string]int{"C": 1, "H": 4},
		[]float64{4.30, 5.70, 7.60, 9.50, 10.90, 11.80, 12.40}},
	"CO": {-110530, 197.66, map[string]int{"C": 1, "O": 1},
		[]float64{3.50, 3.63, 3.92, 4.14, 4.30, 4.39, 4.45}},
	"CO2": {-393520, 213.79, map[string]int{"C": 1, "O": 2},
		[]float64{4.47, 5.61, 6.55, 7.25, 7.66, 7.90, 8.06}},
	"CH3": {146500, 194.20, map[string]int{"C": 1, "H": 3},
		[]float64{4.60, 5.40, 6.40, 7.40, 8.20, 8.70, 9.10}},
	"CH2O": {-108600, 218.95, map[string]int{"C": 1, "H": 2, "O": 1},
		[]float64{4.25, 5.50, 6.90, 8.10, 8.90, 9.40, 9.75}},
	"HCO": {43500, 224.70, map[string]int{"C": 1, "H": 1, "O": 1},
		[]float64{4.15, 4.80, 5.60, 6.30, 6.80, 7.10, 7.30}},
}

var database = map[string]*Species{}

func init() {
	for name, raw := range rawDatabase {
		database[name] = buildSpecies(name, raw)
	}
}

func buildSpecies(name string, raw rawSpecies) *Species {
	var w float64
	for el, n := range raw.elem {
		w += float64(n) * elementWeight(el)
	}
	sp := &Species{Name: name, W: w, Hf: raw.hf, S0: raw.s0, Elem: raw.elem}
	a := fitQuartic(fitTemps, raw.cpR)
	copy(sp.a[:5], a[:])
	// a6 pins h(T0) to the enthalpy of formation:
	// h/R = a1·T + a2/2·T² + a3/3·T³ + a4/4·T⁴ + a5/5·T⁵ + a6.
	T := T0
	hSensR := a[0]*T + a[1]/2*T*T + a[2]/3*T*T*T + a[3]/4*T*T*T*T + a[4]/5*T*T*T*T*T
	sp.a[5] = raw.hf/R - hSensR
	// a7 pins s(T0) to the standard entropy.
	sR := a[0]*math.Log(T) + a[1]*T + a[2]/2*T*T + a[3]/3*T*T*T + a[4]/4*T*T*T*T
	sp.a[6] = raw.s0/R - sR
	return sp
}

// fitQuartic solves the least-squares quartic fit cp/R(T) ≈ Σ aₘ·Tᵐ via the
// normal equations (the 5×5 system is tiny and well conditioned once T is
// scaled by 10⁻³).
func fitQuartic(ts, ys []float64) [5]float64 {
	const scale = 1e-3 // condition the Vandermonde system
	var ata [5][5]float64
	var atb [5]float64
	for p, t := range ts {
		var row [5]float64
		v := 1.0
		for m := 0; m < 5; m++ {
			row[m] = v
			v *= t * scale
		}
		for i := 0; i < 5; i++ {
			atb[i] += row[i] * ys[p]
			for j := 0; j < 5; j++ {
				ata[i][j] += row[i] * row[j]
			}
		}
	}
	x := solve5(ata, atb)
	// Undo the temperature scaling: coefficient of Tᵐ is x[m]·scaleᵐ.
	var out [5]float64
	s := 1.0
	for m := 0; m < 5; m++ {
		out[m] = x[m] * s
		s *= scale
	}
	return out
}

// solve5 performs Gaussian elimination with partial pivoting on a 5×5 system.
func solve5(a [5][5]float64, b [5]float64) [5]float64 {
	const n = 5
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if abs(a[r][col]) > abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [5]float64
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
