package thermo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func air() (*Set, []float64) {
	s := MustSet("O2", "N2")
	return s, []float64{0.233, 0.767}
}

func TestCpFitReproducesTable(t *testing.T) {
	for name, raw := range rawDatabase {
		sp := database[name]
		for i, T := range fitTemps {
			got := sp.CpR(T)
			want := raw.cpR[i]
			if rel := math.Abs(got-want) / want; rel > 0.02 {
				t.Errorf("%s: cp/R(%g) = %.4f, table %.4f (rel %.3f)", name, T, got, want, rel)
			}
		}
	}
}

func TestEnthalpyOfFormationPinned(t *testing.T) {
	for name, raw := range rawDatabase {
		sp := database[name]
		if got := sp.HMolar(T0); math.Abs(got-raw.hf) > 1 { // J/mol
			t.Errorf("%s: h(T0) = %g, want %g", name, got, raw.hf)
		}
	}
}

func TestStandardEntropyPinned(t *testing.T) {
	for name, raw := range rawDatabase {
		sp := database[name]
		if got := sp.SR(T0) * R; math.Abs(got-raw.s0) > 0.01 {
			t.Errorf("%s: s(T0) = %g, want %g", name, got, raw.s0)
		}
	}
}

func TestEnthalpyCpConsistency(t *testing.T) {
	// dh/dT must equal cp — the fundamental consistency the solver's energy
	// equation relies on.
	for name, sp := range database {
		for _, T := range []float64{350, 800, 1400, 2200, 2900} {
			dT := 0.01
			dhdT := (sp.H(T+dT) - sp.H(T-dT)) / (2 * dT)
			cp := sp.Cp(T)
			if rel := math.Abs(dhdT-cp) / cp; rel > 1e-5 {
				t.Errorf("%s: dh/dT(%g) = %g vs cp = %g", name, T, dhdT, cp)
			}
		}
	}
}

func TestGibbsConsistency(t *testing.T) {
	// g = h − T·s by construction; check the three accessors agree.
	sp := database["H2O"]
	for _, T := range []float64{400, 1200, 2500} {
		g := sp.GRT(T)
		want := sp.HRT(T) - sp.SR(T)
		if math.Abs(g-want) > 1e-12 {
			t.Fatalf("GRT inconsistent at %g: %g vs %g", T, g, want)
		}
	}
}

func TestWaterFormationEnthalpy(t *testing.T) {
	// H2 + ½O2 → H2O releases ≈ 241.8 kJ/mol at 298 K.
	h2 := database["H2"]
	o2 := database["O2"]
	h2o := database["H2O"]
	dH := h2o.HMolar(T0) - h2.HMolar(T0) - 0.5*o2.HMolar(T0)
	if math.Abs(dH+241826) > 100 {
		t.Fatalf("water formation enthalpy = %g J/mol, want ≈ -241826", dH)
	}
}

func TestAirProperties(t *testing.T) {
	s, Y := air()
	W := s.MeanW(Y)
	if math.Abs(W-0.02885) > 3e-4 {
		t.Fatalf("air W = %g kg/mol, want ≈ 0.02885", W)
	}
	cp := s.CpMass(300, Y)
	if math.Abs(cp-1005) > 25 {
		t.Fatalf("air cp(300K) = %g J/kg/K, want ≈ 1005", cp)
	}
	gamma := s.Gamma(300, Y)
	if math.Abs(gamma-1.4) > 0.01 {
		t.Fatalf("air gamma(300K) = %g, want ≈ 1.40", gamma)
	}
	c := s.SoundSpeed(300, Y)
	if math.Abs(c-347) > 5 {
		t.Fatalf("air sound speed(300K) = %g m/s, want ≈ 347", c)
	}
}

func TestIdealGasLaw(t *testing.T) {
	s, Y := air()
	p := 101325.0
	T := 300.0
	rho := s.Density(p, T, Y)
	if math.Abs(rho-1.17) > 0.02 {
		t.Fatalf("air density = %g, want ≈ 1.17", rho)
	}
	if got := s.Pressure(rho, T, Y); math.Abs(got-p) > 1e-6*p {
		t.Fatalf("pressure round trip = %g, want %g", got, p)
	}
}

func TestMoleMassFractionRoundTrip(t *testing.T) {
	s := MustSet("H2", "O2", "N2", "H2O")
	prop := func(a, b, c, d uint8) bool {
		Y := normalize([]float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1})
		X := make([]float64, 4)
		Y2 := make([]float64, 4)
		s.MoleFractions(Y, X)
		s.MassFractions(X, Y2)
		for i := range Y {
			if math.Abs(Y[i]-Y2[i]) > 1e-12 {
				return false
			}
		}
		// Mole fractions sum to one.
		var sum float64
		for _, x := range X {
			sum += x
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTFromERoundTrip(t *testing.T) {
	s := MustSet("CH4", "O2", "N2", "CO2", "H2O")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		Y := normalize([]float64{
			rng.Float64(), rng.Float64(), rng.Float64() + 1, rng.Float64(), rng.Float64(),
		})
		T := 300 + 2500*rng.Float64()
		e := s.EMass(T, Y)
		// Start Newton far from the answer.
		got, ok := s.TFromE(e, Y, 1000)
		if !ok {
			t.Fatalf("TFromE did not converge for T=%g", T)
		}
		if math.Abs(got-T) > 1e-6*T {
			t.Fatalf("TFromE = %g, want %g", got, T)
		}
	}
}

func TestCvLessThanCp(t *testing.T) {
	s, Y := air()
	for _, T := range []float64{300, 1000, 3000} {
		cp, cv := s.CpMass(T, Y), s.CvMass(T, Y)
		if cv <= 0 || cv >= cp {
			t.Fatalf("cv=%g cp=%g at T=%g", cv, cp, T)
		}
	}
}

func TestElementMassFractions(t *testing.T) {
	s := MustSet("CH4", "O2", "N2")
	Y := []float64{0.055, 0.22, 0.725} // roughly φ=1 methane-air
	zc := s.ElementMassFraction("C", Y)
	zh := s.ElementMassFraction("H", Y)
	zo := s.ElementMassFraction("O", Y)
	zn := s.ElementMassFraction("N", Y)
	// C and H come only from CH4: zc = Y_CH4·W_C/W_CH4, zh = Y_CH4·4W_H/W_CH4.
	wCH4 := database["CH4"].W
	if math.Abs(zc-0.055*0.0120107/wCH4) > 1e-9 {
		t.Fatalf("zc = %g", zc)
	}
	if math.Abs(zh-0.055*4*0.0010079/wCH4) > 1e-9 {
		t.Fatalf("zh = %g", zh)
	}
	if math.Abs(zo-0.22) > 1e-9 || math.Abs(zn-0.725) > 1e-9 {
		t.Fatalf("zo = %g, zn = %g", zo, zn)
	}
	// Elements sum to unity exactly: species weights are built from the
	// same element weights.
	if math.Abs(zc+zh+zo+zn-1) > 1e-12 {
		t.Fatalf("element sum = %g", zc+zh+zo+zn)
	}
}

func TestUnknownSpeciesError(t *testing.T) {
	if _, err := NewSet("H2", "XYZZY"); err == nil {
		t.Fatal("expected error for unknown species")
	}
}

func TestSetIndex(t *testing.T) {
	s := MustSet("H2", "O2", "N2")
	if s.Index("O2") != 1 || s.Index("N2") != 2 || s.Index("AR") != -1 {
		t.Fatalf("Index lookup broken: %d %d %d", s.Index("O2"), s.Index("N2"), s.Index("AR"))
	}
}

func normalize(v []float64) []float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	for i := range v {
		v[i] /= s
	}
	return v
}

func BenchmarkCpMass(b *testing.B) {
	s := MustSet("H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2")
	Y := normalize([]float64{1, 2, 0.1, 0.1, 3, 0.05, 0.02, 0.01, 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CpMass(1500, Y)
	}
}

func BenchmarkTFromE(b *testing.B) {
	s := MustSet("H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2")
	Y := normalize([]float64{1, 2, 0.1, 0.1, 3, 0.05, 0.02, 0.01, 10})
	e := s.EMass(1500, Y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TFromE(e, Y, 1400)
	}
}
