// Package thermo provides ideal-gas mixture thermodynamics for the S3D
// solver: NASA-polynomial-style species properties (cp, h, s, g), mixture
// molecular weight, enthalpy and heat capacities, and the Newton inversion
// of temperature from internal energy (paper §2.1).
//
// The original S3D links the CHEMKIN thermodynamic database. That database
// is unavailable offline, so the coefficients here are generated at package
// init by least-squares fitting JANAF-derived cp/R tables over 300–3000 K
// together with standard-state enthalpies of formation and entropies. The
// resulting polynomials have exactly the NASA-7 functional form
//
//	cp/R  = a1 + a2·T + a3·T² + a4·T³ + a5·T⁴
//	h/RT  = a1 + a2/2·T + a3/3·T² + a4/4·T³ + a5/5·T⁴ + a6/T
//	s/R   = a1·ln T + a2·T + a3/2·T² + a4/3·T³ + a5/4·T⁴ + a7
//
// so equilibrium constants derived from them are thermodynamically
// consistent by construction. See DESIGN.md for the substitution rationale.
package thermo

import (
	"fmt"
	"math"
)

// R is the universal gas constant in J/(mol·K).
const R = 8.31446261815324

// T0 is the thermodynamic reference temperature in K.
const T0 = 298.15

// TMin and TMax bound polynomial evaluation; outside this range properties
// are evaluated at the clamped temperature (the solver never legitimately
// leaves it, but transients during Newton iteration may overshoot).
const (
	TMin = 200.0
	TMax = 3500.0
)

// Species holds one species' constant data.
type Species struct {
	Name string
	W    float64        // molecular weight, kg/mol
	Hf   float64        // enthalpy of formation at T0, J/mol
	S0   float64        // standard entropy at T0, J/(mol·K)
	Elem map[string]int // elemental composition

	a [7]float64 // NASA-7-style coefficients (single range)
}

// CpR returns cp/R at temperature T.
func (s *Species) CpR(T float64) float64 {
	T = clampT(T)
	return s.a[0] + T*(s.a[1]+T*(s.a[2]+T*(s.a[3]+T*s.a[4])))
}

// Cp returns the specific heat at constant pressure in J/(kg·K).
func (s *Species) Cp(T float64) float64 { return s.CpR(T) * R / s.W }

// HRT returns h/(R·T) at temperature T (molar enthalpy including formation).
func (s *Species) HRT(T float64) float64 {
	T = clampT(T)
	return s.a[0] + T*(s.a[1]/2+T*(s.a[2]/3+T*(s.a[3]/4+T*s.a[4]/5))) + s.a[5]/T
}

// H returns the specific enthalpy (sensible + chemical) in J/kg.
func (s *Species) H(T float64) float64 { return s.HRT(T) * R * T / s.W }

// HMolar returns the molar enthalpy in J/mol.
func (s *Species) HMolar(T float64) float64 { return s.HRT(T) * R * T }

// SR returns s/R at temperature T and standard pressure.
func (s *Species) SR(T float64) float64 {
	T = clampT(T)
	return s.a[0]*math.Log(T) + T*(s.a[1]+T*(s.a[2]/2+T*(s.a[3]/3+T*s.a[4]/4))) + s.a[6]
}

// GRT returns g/(R·T) = h/(R·T) − s/R, used for equilibrium constants.
func (s *Species) GRT(T float64) float64 { return s.HRT(T) - s.SR(T) }

func clampT(T float64) float64 {
	if T < TMin {
		return TMin
	}
	if T > TMax {
		return TMax
	}
	return T
}

// Set is an ordered collection of species forming the thermodynamic state
// space of a mechanism. Mass-fraction slices are indexed consistently with
// Set.Species.
type Set struct {
	Species []*Species
	index   map[string]int
}

// NewSet builds a Set from the named species in the package database,
// in the given order. Unknown names are an error.
func NewSet(names ...string) (*Set, error) {
	s := &Set{index: make(map[string]int, len(names))}
	for _, n := range names {
		sp, ok := database[n]
		if !ok {
			return nil, fmt.Errorf("thermo: unknown species %q", n)
		}
		s.index[n] = len(s.Species)
		s.Species = append(s.Species, sp)
	}
	return s, nil
}

// MustSet is NewSet that panics on error; for statically known species lists.
func MustSet(names ...string) *Set {
	s, err := NewSet(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of species.
func (s *Set) Len() int { return len(s.Species) }

// Index returns the index of the named species, or -1.
func (s *Set) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MeanW returns the mixture molecular weight W = (Σ Yᵢ/Wᵢ)⁻¹ (paper eq. 8)
// in kg/mol.
func (s *Set) MeanW(Y []float64) float64 {
	var inv float64
	for i, sp := range s.Species {
		inv += Y[i] / sp.W
	}
	return 1 / inv
}

// MoleFractions converts mass fractions to mole fractions (paper eq. 9),
// writing into X.
func (s *Set) MoleFractions(Y, X []float64) {
	W := s.MeanW(Y)
	for i, sp := range s.Species {
		X[i] = Y[i] * W / sp.W
	}
}

// MassFractions converts mole fractions to mass fractions, writing into Y.
func (s *Set) MassFractions(X, Y []float64) {
	var W float64
	for i, sp := range s.Species {
		W += X[i] * sp.W
	}
	for i, sp := range s.Species {
		Y[i] = X[i] * sp.W / W
	}
}

// CpMass returns the mixture isobaric heat capacity in J/(kg·K).
func (s *Set) CpMass(T float64, Y []float64) float64 {
	var cp float64
	for i, sp := range s.Species {
		cp += Y[i] * sp.Cp(T)
	}
	return cp
}

// CvMass returns the mixture isochoric heat capacity in J/(kg·K), using
// cp − cv = R/W (paper §2.1).
func (s *Set) CvMass(T float64, Y []float64) float64 {
	return s.CpMass(T, Y) - R/s.MeanW(Y)
}

// HMass returns the mixture specific enthalpy (sensible + chemical) in J/kg.
func (s *Set) HMass(T float64, Y []float64) float64 {
	var h float64
	for i, sp := range s.Species {
		h += Y[i] * sp.H(T)
	}
	return h
}

// EMass returns the mixture specific internal energy in J/kg:
// e = h − p/ρ = h − R·T/W.
func (s *Set) EMass(T float64, Y []float64) float64 {
	return s.HMass(T, Y) - R*T/s.MeanW(Y)
}

// Gamma returns the mixture ratio of specific heats.
func (s *Set) Gamma(T float64, Y []float64) float64 {
	cp := s.CpMass(T, Y)
	return cp / (cp - R/s.MeanW(Y))
}

// SoundSpeed returns the frozen sound speed in m/s.
func (s *Set) SoundSpeed(T float64, Y []float64) float64 {
	return math.Sqrt(s.Gamma(T, Y) * R * T / s.MeanW(Y))
}

// Pressure returns p = ρ·Ru·T/W (paper eq. 7) in Pa.
func (s *Set) Pressure(rho, T float64, Y []float64) float64 {
	return rho * R * T / s.MeanW(Y)
}

// Density returns ρ = p·W/(Ru·T) in kg/m³.
func (s *Set) Density(p, T float64, Y []float64) float64 {
	return p * s.MeanW(Y) / (R * T)
}

// TFromE inverts e(T) = e for the mixture by Newton iteration starting from
// guess Tg (cv is smooth and positive, so convergence is quadratic and
// robust). It returns the temperature and whether the iteration converged.
// Energies outside the polynomial range saturate at TMin/TMax (still
// reported as converged): transient over/undershoots at marginal resolution
// are clipped rather than fatal, and the solution filter removes them on
// subsequent steps.
func (s *Set) TFromE(e float64, Y []float64, Tg float64) (float64, bool) {
	if e >= s.EMass(TMax, Y) {
		return TMax, true
	}
	if e <= s.EMass(TMin, Y) {
		return TMin, true
	}
	T := Tg
	if T < TMin || T > TMax || math.IsNaN(T) {
		T = 1000
	}
	for iter := 0; iter < 50; iter++ {
		f := s.EMass(T, Y) - e
		cv := s.CvMass(T, Y)
		dT := f / cv
		T -= dT
		if T < TMin {
			T = TMin
		}
		if T > TMax {
			T = TMax
		}
		if math.Abs(dT) < 1e-9*T {
			return T, true
		}
	}
	return T, false
}

// ElementMassFraction returns the mass fraction of element el in the
// mixture, the quantity Bilger's mixture fraction is built from.
func (s *Set) ElementMassFraction(el string, Y []float64) float64 {
	var z float64
	w := elementWeight(el)
	for i, sp := range s.Species {
		if n := sp.Elem[el]; n > 0 {
			z += Y[i] * float64(n) * w / sp.W
		}
	}
	return z
}

func elementWeight(el string) float64 {
	switch el {
	case "H":
		return 0.0010079
	case "O":
		return 0.0159994
	case "C":
		return 0.0120107
	case "N":
		return 0.0140067
	default:
		panic("thermo: unknown element " + el)
	}
}
