package comm

import "fmt"

// Cart is a three-dimensional Cartesian process topology, the decomposition
// S3D uses: every MPI process owns an equal block of the 3-D domain and
// communicates only with its nearest neighbours (paper §2.6).
type Cart struct {
	Comm     *Comm
	Dims     [3]int
	Periodic [3]bool
	coords   [3]int
}

// NewCart embeds the communicator in a dims[0]×dims[1]×dims[2] grid.
// Rank order is x-fastest: rank = i + dims0·(j + dims1·k).
func NewCart(c *Comm, dims [3]int, periodic [3]bool) (*Cart, error) {
	if dims[0]*dims[1]*dims[2] != c.Size() {
		return nil, fmt.Errorf("comm: cart dims %v do not match world size %d", dims, c.Size())
	}
	ct := &Cart{Comm: c, Dims: dims, Periodic: periodic}
	r := c.Rank()
	ct.coords[0] = r % dims[0]
	ct.coords[1] = (r / dims[0]) % dims[1]
	ct.coords[2] = r / (dims[0] * dims[1])
	return ct, nil
}

// Coords returns this rank's grid coordinates.
func (ct *Cart) Coords() [3]int { return ct.coords }

// RankOf returns the rank at the given coordinates, applying periodic
// wrapping where enabled; it returns -1 for out-of-range coordinates on
// non-periodic axes.
func (ct *Cart) RankOf(coords [3]int) int {
	for a := 0; a < 3; a++ {
		if coords[a] < 0 || coords[a] >= ct.Dims[a] {
			if !ct.Periodic[a] {
				return -1
			}
			coords[a] = ((coords[a] % ct.Dims[a]) + ct.Dims[a]) % ct.Dims[a]
		}
	}
	return coords[0] + ct.Dims[0]*(coords[1]+ct.Dims[1]*coords[2])
}

// Neighbor returns the rank one step along axis in direction dir (±1), or
// -1 at a non-periodic boundary — the MPI_PROC_NULL of this runtime.
func (ct *Cart) Neighbor(axis, dir int) int {
	c := ct.coords
	c[axis] += dir
	return ct.RankOf(c)
}

// OnLowBoundary reports whether this rank touches the low domain face of
// the axis (no neighbour in the -1 direction).
func (ct *Cart) OnLowBoundary(axis int) bool { return ct.Neighbor(axis, -1) < 0 }

// OnHighBoundary reports whether this rank touches the high domain face.
func (ct *Cart) OnHighBoundary(axis int) bool { return ct.Neighbor(axis, +1) < 0 }

// Decompose1D splits n points across parts, returning the offset and count
// for index p. The remainder is spread over the leading parts, keeping the
// per-rank load within one point of equal — S3D requires exactly equal
// loads, which callers get by choosing divisible grids; uneven splits are
// supported for the heterogeneous XT3/XT4 experiments (paper §4).
func Decompose1D(n, parts, p int) (offset, count int) {
	base := n / parts
	rem := n % parts
	count = base
	if p < rem {
		count++
		offset = p * (base + 1)
	} else {
		offset = rem*(base+1) + (p-rem)*base
	}
	return offset, count
}
