package comm

import (
	"math"
	"sync"
	"testing"
)

// TestAllreduceOrderedSum checks the ordered reduction agrees with the
// plain sum and returns the identical result on every rank.
func TestAllreduceOrderedSum(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	results := make([][]float64, n)
	w := NewWorld(n)
	err := w.Run(func(c *Comm) {
		vals := []float64{float64(c.Rank() + 1), 10 * float64(c.Rank()+1)}
		c.AllreduceOrdered(vals, func(dst, src []float64) {
			for i := range dst {
				dst[i] += src[i]
			}
		})
		mu.Lock()
		results[c.Rank()] = append([]float64(nil), vals...)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 100} // 1+2+3+4 and 10+20+30+40
	for r, got := range results {
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("rank %d: got %v, want %v", r, got, want)
		}
	}
}

// TestAllreduceOrderedDeterministic checks the fold order is rank order:
// with a non-commutative-in-floating-point sum, repeated runs must produce
// bitwise-identical results regardless of goroutine scheduling.
func TestAllreduceOrderedDeterministic(t *testing.T) {
	const n = 4
	// Magnitudes chosen so (a+b)+c differs in the last ulp from permuted
	// orders: catastrophic cancellation against rank order.
	contrib := []float64{1e16, 3.14159, -1e16, 2.71828}
	run := func() float64 {
		var out float64
		var mu sync.Mutex
		w := NewWorld(n)
		err := w.Run(func(c *Comm) {
			vals := []float64{contrib[c.Rank()]}
			c.AllreduceOrdered(vals, func(dst, src []float64) { dst[0] += src[0] })
			if c.Rank() == 0 {
				mu.Lock()
				out = vals[0]
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	// The reference: explicit ascending-rank fold.
	want := contrib[0]
	for r := 1; r < n; r++ {
		want += contrib[r]
	}
	for trial := 0; trial < 20; trial++ {
		if got := run(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: got %x, want %x (fold must be ascending rank order)",
				trial, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// TestAllreduceOrderedCountsCollective checks the call charges the
// allreduce counter like its unordered sibling.
func TestAllreduceOrderedCountsCollective(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		vals := []float64{1}
		c.AllreduceOrdered(vals, func(dst, src []float64) { dst[0] += src[0] })
		if got := c.Stats().Allreduces; got != 1 {
			panic("allreduce counter not charged")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
