// Package comm is an in-process message-passing runtime with MPI semantics,
// the substrate under the S3D domain decomposition (paper §2.6). Ranks are
// goroutines; point-to-point messages are non-blocking sends and receives
// matched on (source, tag) in arrival order, exactly the subset of MPI that
// S3D uses: nearest-neighbour Isend/Irecv/Wait for ghost-zone construction,
// plus all-to-all reductions "only for monitoring and synchronization ahead
// of I/O".
//
// The runtime counts bytes and messages per rank so the performance model
// (internal/perf) and the parallel-I/O model (internal/pario) can charge
// communication costs without wall-clock timing noise.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3dgo/s3d/internal/prof"
)

// World owns the communication state for a fixed number of ranks.
type World struct {
	n     int
	boxes []*mailbox
	coll  *collective

	// Per-rank telemetry, updated with single atomic adds so the accounting
	// stays off the critical path (the "counts bytes and messages per rank"
	// contract in the package comment, extended with blocked-time tracking
	// for the observability layer).
	bytesSent  []atomic.Int64
	msgsSent   []atomic.Int64
	bytesRecv  []atomic.Int64
	msgsRecv   []atomic.Int64
	waitNs     []atomic.Int64 // time blocked in point-to-point Wait
	collNs     []atomic.Int64 // time blocked in collectives
	allreduces []atomic.Int64
	barriers   []atomic.Int64
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("comm: non-positive world size %d", n))
	}
	w := &World{
		n:          n,
		boxes:      make([]*mailbox, n),
		coll:       newCollective(n),
		bytesSent:  make([]atomic.Int64, n),
		msgsSent:   make([]atomic.Int64, n),
		bytesRecv:  make([]atomic.Int64, n),
		msgsRecv:   make([]atomic.Int64, n),
		waitNs:     make([]atomic.Int64, n),
		collNs:     make([]atomic.Int64, n),
		allreduces: make([]atomic.Int64, n),
		barriers:   make([]atomic.Int64, n),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// BytesSent returns the total bytes sent by rank r so far.
func (w *World) BytesSent(r int) int64 { return w.bytesSent[r].Load() }

// MessagesSent returns the total message count sent by rank r so far.
func (w *World) MessagesSent(r int) int64 { return w.msgsSent[r].Load() }

// TotalBytes returns the bytes sent by all ranks.
func (w *World) TotalBytes() int64 {
	var t int64
	for i := range w.bytesSent {
		t += w.bytesSent[i].Load()
	}
	return t
}

// RankStats is the cumulative communication telemetry of one rank.
type RankStats struct {
	BytesSent, MsgsSent int64
	BytesRecv, MsgsRecv int64
	// WaitSec is time blocked in point-to-point Wait; CollSec is time
	// blocked in Allreduce/Barrier/Allgather (a Barrier's time is charged to
	// CollSec once — it is an Allreduce internally — but counted under both
	// Barriers and Allreduces).
	WaitSec, CollSec     float64
	Allreduces, Barriers int64
}

// RankStats returns rank r's cumulative telemetry.
func (w *World) RankStats(r int) RankStats {
	return RankStats{
		BytesSent:  w.bytesSent[r].Load(),
		MsgsSent:   w.msgsSent[r].Load(),
		BytesRecv:  w.bytesRecv[r].Load(),
		MsgsRecv:   w.msgsRecv[r].Load(),
		WaitSec:    float64(w.waitNs[r].Load()) / 1e9,
		CollSec:    float64(w.collNs[r].Load()) / 1e9,
		Allreduces: w.allreduces[r].Load(),
		Barriers:   w.barriers[r].Load(),
	}
}

// TotalStats sums RankStats over all ranks.
func (w *World) TotalStats() RankStats {
	var t RankStats
	for r := 0; r < w.n; r++ {
		s := w.RankStats(r)
		t.BytesSent += s.BytesSent
		t.MsgsSent += s.MsgsSent
		t.BytesRecv += s.BytesRecv
		t.MsgsRecv += s.MsgsRecv
		t.WaitSec += s.WaitSec
		t.CollSec += s.CollSec
		t.Allreduces += s.Allreduces
		t.Barriers += s.Barriers
	}
	return t
}

// Run spawns one goroutine per rank executing body and waits for all of
// them. A panic in any rank is recovered and returned as an error naming
// the rank (so a failed parallel test reports cleanly instead of killing
// the process).
func (w *World) Run(body func(c *Comm)) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for r := 0; r < w.n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("comm: rank %d panicked: %v", rank, p)
				}
			}()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int

	// prof, when attached, records MPI_* spans on the rank's profiler
	// track, so blocked time is charged to the call path that blocked
	// (nil-track Begin is free).
	prof *prof.Track
}

// AttachProfiler records this rank's communication calls (MPI_ISEND,
// MPI_WAIT, MPI_ALLREDUCE, MPI_BARRIER, MPI_ALLGATHER) as spans on tr. The
// track must be the calling rank's: spans land on whatever call path the
// rank currently has open.
func (c *Comm) AttachProfiler(tr *prof.Track) { c.prof = tr }

// WithoutProfiler returns a handle on the same world and rank that records
// no spans — for server goroutines (the pario I/O threads) that share a
// rank's communicator but run concurrently with the rank's own call stack.
func (c *Comm) WithoutProfiler() *Comm { return &Comm{world: c.world, rank: c.rank} }

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// World returns the underlying world (for accounting queries).
func (c *Comm) World() *World { return c.world }

// Stats returns this rank's cumulative communication telemetry.
func (c *Comm) Stats() RankStats { return c.world.RankStats(c.rank) }

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	data     []float64
}

// mailbox holds unmatched arrived messages for one rank.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Request is a pending non-blocking operation. Wait blocks until complete.
type Request struct {
	done bool
	// receive state; nil box means the request is an already-complete send.
	box      *mailbox
	src, tag int
	buf      []float64
	// telemetry attribution: the posting rank's world (nil for sends, which
	// complete at post time) and the posting rank's profiler track, so the
	// blocked time inside Wait lands on the call path that posted the
	// receive.
	w    *World
	rank int
	prof *prof.Track
}

// Isend posts a non-blocking send of data to rank dst with a tag. The data
// is copied at post time, so the caller may reuse its buffer immediately
// (buffered-send semantics, matching how S3D uses MPI_Isend on ghost
// buffers that are not touched until the matching wait anyway).
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("comm: rank %d Isend to invalid rank %d", c.rank, dst))
	}
	sp := c.prof.Begin("MPI_ISEND")
	defer sp.End()
	cp := make([]float64, len(data))
	copy(cp, data)
	box := c.world.boxes[dst]
	box.mu.Lock()
	box.msgs = append(box.msgs, message{src: c.rank, tag: tag, data: cp})
	box.mu.Unlock()
	box.cond.Broadcast()
	c.world.bytesSent[c.rank].Add(int64(8 * len(data)))
	c.world.msgsSent[c.rank].Add(1)
	return &Request{done: true}
}

// Irecv posts a non-blocking receive into buf for a message from rank src
// with the given tag. Completion happens inside Wait.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	if src < 0 || src >= c.world.n {
		panic(fmt.Sprintf("comm: rank %d Irecv from invalid rank %d", c.rank, src))
	}
	return &Request{box: c.world.boxes[c.rank], src: src, tag: tag, buf: buf,
		w: c.world, rank: c.rank, prof: c.prof}
}

// Wait blocks until the request completes. For receives it matches the
// earliest-arrived message from (src, tag) and copies it into the posted
// buffer; a length mismatch panics, as MPI would raise a truncation error.
// Time spent blocked is charged to the posting rank's wait counter.
func (r *Request) Wait() {
	if r.done {
		return
	}
	sp := r.prof.Begin("MPI_WAIT")
	defer sp.End()
	start := time.Now()
	box := r.box
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		for i := range box.msgs {
			m := &box.msgs[i]
			if m.src == r.src && m.tag == r.tag {
				if len(m.data) != len(r.buf) {
					panic(fmt.Sprintf("comm: message truncation: got %d, posted %d (src %d tag %d)",
						len(m.data), len(r.buf), r.src, r.tag))
				}
				copy(r.buf, m.data)
				box.msgs = append(box.msgs[:i], box.msgs[i+1:]...)
				r.done = true
				r.w.bytesRecv[r.rank].Add(int64(8 * len(r.buf)))
				r.w.msgsRecv[r.rank].Add(1)
				r.w.waitNs[r.rank].Add(time.Since(start).Nanoseconds())
				return
			}
		}
		box.cond.Wait()
	}
}

// WaitAll completes every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// RecvAny blocks until a message with any of the given tags arrives from
// any rank, returning its source, tag and payload. It serves the
// server-thread pattern of the MPI-I/O caching layer (an I/O thread
// handling "both local and remote requests", paper §5.1) — the analogue of
// MPI_ANY_SOURCE receives.
func (c *Comm) RecvAny(tags []int) (src, tag int, data []float64) {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		for i := range box.msgs {
			m := &box.msgs[i]
			for _, t := range tags {
				if m.tag == t {
					src, tag, data = m.src, m.tag, m.data
					box.msgs = append(box.msgs[:i], box.msgs[i+1:]...)
					// Counted as received; idle time in the server loop is
					// deliberately not charged as wait time.
					c.world.bytesRecv[c.rank].Add(int64(8 * len(data)))
					c.world.msgsRecv[c.rank].Add(1)
					return src, tag, data
				}
			}
		}
		box.cond.Wait()
	}
}

// Send is a blocking send (completes immediately under buffered semantics).
func (c *Comm) Send(dst, tag int, data []float64) { c.Isend(dst, tag, data).Wait() }

// Recv is a blocking receive.
func (c *Comm) Recv(src, tag int, buf []float64) { c.Irecv(src, tag, buf).Wait() }

// Op is a reduction operator.
type Op int

// Reduction operators supported by Allreduce.
const (
	Sum Op = iota
	Min
	Max
)

func (o Op) combine(dst, src []float64) {
	switch o {
	case Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// collective implements reusable barrier-style collectives with an
// entry/exit two-phase protocol so back-to-back collectives cannot race.
type collective struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	entered int
	exited  int
	phase   int // 0: gathering, 1: draining
	acc     []float64
	slots   [][]float64
}

func newCollective(n int) *collective {
	c := &collective{n: n, slots: make([][]float64, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Allreduce combines vals across all ranks with op; on return vals holds
// the reduced result on every rank. All ranks must call with equal lengths.
// The call's duration is charged to the rank's collective-time counter.
func (c *Comm) Allreduce(op Op, vals []float64) {
	sp := c.prof.Begin("MPI_ALLREDUCE")
	defer sp.End()
	start := time.Now()
	defer func() {
		c.world.collNs[c.rank].Add(time.Since(start).Nanoseconds())
		c.world.allreduces[c.rank].Add(1)
	}()
	col := c.world.coll
	col.mu.Lock()
	for col.phase == 1 { // previous collective still draining
		col.cond.Wait()
	}
	if col.entered == 0 {
		col.acc = append(col.acc[:0], vals...)
	} else {
		if len(col.acc) != len(vals) {
			col.mu.Unlock()
			panic("comm: Allreduce length mismatch across ranks")
		}
		op.combine(col.acc, vals)
	}
	col.entered++
	if col.entered == col.n {
		col.phase = 1
		col.cond.Broadcast()
	} else {
		for col.phase == 0 {
			col.cond.Wait()
		}
	}
	copy(vals, col.acc)
	col.exited++
	if col.exited == col.n {
		col.entered, col.exited, col.phase = 0, 0, 0
		col.cond.Broadcast()
	}
	col.mu.Unlock()
	// Account the communication: a tree allreduce moves O(2·len) per rank.
	c.world.bytesSent[c.rank].Add(int64(16 * len(vals)))
}

// Barrier blocks until all ranks arrive.
func (c *Comm) Barrier() {
	sp := c.prof.Begin("MPI_BARRIER")
	defer sp.End()
	c.world.barriers[c.rank].Add(1)
	v := []float64{0}
	c.Allreduce(Sum, v)
}

// Allgather collects each rank's slice; the result indexed by rank is
// returned on every rank. All ranks must call with non-nil slices.
func (c *Comm) Allgather(vals []float64) [][]float64 {
	sp := c.prof.Begin("MPI_ALLGATHER")
	defer sp.End()
	start := time.Now()
	defer func() {
		c.world.collNs[c.rank].Add(time.Since(start).Nanoseconds())
	}()
	col := c.world.coll
	col.mu.Lock()
	for col.phase == 1 {
		col.cond.Wait()
	}
	cp := make([]float64, len(vals))
	copy(cp, vals)
	col.slots[c.rank] = cp
	col.entered++
	if col.entered == col.n {
		col.phase = 1
		col.cond.Broadcast()
	} else {
		for col.phase == 0 {
			col.cond.Wait()
		}
	}
	out := make([][]float64, col.n)
	copy(out, col.slots)
	col.exited++
	if col.exited == col.n {
		col.entered, col.exited, col.phase = 0, 0, 0
		col.cond.Broadcast()
	}
	col.mu.Unlock()
	c.world.bytesSent[c.rank].Add(int64(8 * len(vals)))
	return out
}

// AllreduceOrdered reduces vals across all ranks with a caller-supplied
// combiner, folding rank contributions in ascending rank order — unlike
// Allreduce, whose arrival-order fold makes floating-point sums
// run-to-run nondeterministic. Every rank gets the bitwise-identical
// result. Built on Allgather; counted as one allreduce. All ranks must
// call with equal lengths.
func (c *Comm) AllreduceOrdered(vals []float64, combine func(dst, src []float64)) {
	slots := c.Allgather(vals)
	c.world.allreduces[c.rank].Add(1)
	copy(vals, slots[0])
	for r := 1; r < len(slots); r++ {
		if len(slots[r]) != len(vals) {
			panic("comm: AllreduceOrdered length mismatch across ranks")
		}
		combine(vals, slots[r])
	}
}
