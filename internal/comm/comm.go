// Package comm is an in-process message-passing runtime with MPI semantics,
// the substrate under the S3D domain decomposition (paper §2.6). Ranks are
// goroutines; point-to-point messages are non-blocking sends and receives
// matched on (source, tag) in arrival order, exactly the subset of MPI that
// S3D uses: nearest-neighbour Isend/Irecv/Wait for ghost-zone construction,
// plus all-to-all reductions "only for monitoring and synchronization ahead
// of I/O".
//
// The runtime counts bytes and messages per rank so the performance model
// (internal/perf) and the parallel-I/O model (internal/pario) can charge
// communication costs without wall-clock timing noise. Every message also
// carries a matchable envelope (sender rank, tag, step, RK stage, byte
// count, post time on the world clock), and each rank can arm a per-step
// event trace — the substrate for the wait-state and critical-path analyzer
// in internal/critpath.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3dgo/s3d/internal/prof"
)

// World owns the communication state for a fixed number of ranks.
type World struct {
	n     int
	epoch time.Time
	boxes []*mailbox
	coll  *collective

	// Abort state: a failing rank (or the health layer) marks the world
	// aborted and wakes every blocked peer, which panics with an abort
	// sentinel that Run folds into its error report — so one dead rank can
	// never leak a neighbour's goroutine in a pending Wait forever.
	aborted    atomic.Bool
	abortMu    sync.Mutex
	abortCause string
	abortHooks []func()

	// Per-rank telemetry, updated with single atomic adds so the accounting
	// stays off the critical path (the "counts bytes and messages per rank"
	// contract in the package comment, extended with blocked-time tracking
	// for the observability layer).
	bytesSent  []atomic.Int64
	msgsSent   []atomic.Int64
	bytesRecv  []atomic.Int64
	msgsRecv   []atomic.Int64
	waitNs     []atomic.Int64 // time blocked in point-to-point Wait
	waitPeerNs []atomic.Int64 // waitNs split by peer, indexed rank*n + peer
	collNs     []atomic.Int64 // time blocked in collectives
	allreduces []atomic.Int64
	barriers   []atomic.Int64
}

// NewWorld creates a world with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("comm: non-positive world size %d", n))
	}
	w := &World{
		n:          n,
		epoch:      time.Now(),
		boxes:      make([]*mailbox, n),
		coll:       newCollective(n),
		bytesSent:  make([]atomic.Int64, n),
		msgsSent:   make([]atomic.Int64, n),
		bytesRecv:  make([]atomic.Int64, n),
		msgsRecv:   make([]atomic.Int64, n),
		waitNs:     make([]atomic.Int64, n),
		waitPeerNs: make([]atomic.Int64, n*n),
		collNs:     make([]atomic.Int64, n),
		allreduces: make([]atomic.Int64, n),
		barriers:   make([]atomic.Int64, n),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Epoch returns the wall-clock origin of the world's event clock: every
// envelope and trace timestamp is nanoseconds since Epoch, measured on the
// monotonic clock so cross-rank timestamps are directly comparable.
func (w *World) Epoch() time.Time { return w.epoch }

// NowNs returns the current time on the world's event clock.
func (w *World) NowNs() int64 { return w.nowNs() }

func (w *World) nowNs() int64 { return time.Since(w.epoch).Nanoseconds() }

// BytesSent returns the total bytes sent by rank r so far.
func (w *World) BytesSent(r int) int64 { return w.bytesSent[r].Load() }

// MessagesSent returns the total message count sent by rank r so far.
func (w *World) MessagesSent(r int) int64 { return w.msgsSent[r].Load() }

// TotalBytes returns the bytes sent by all ranks.
func (w *World) TotalBytes() int64 {
	var t int64
	for i := range w.bytesSent {
		t += w.bytesSent[i].Load()
	}
	return t
}

// WaitByPeer returns rank r's cumulative point-to-point blocked time in
// nanoseconds, split by the peer rank the wait was matched against. The
// counters accumulate whether or not an event trace is armed.
func (w *World) WaitByPeer(r int) []int64 {
	out := make([]int64, w.n)
	for p := 0; p < w.n; p++ {
		out[p] = w.waitPeerNs[r*w.n+p].Load()
	}
	return out
}

// RankStats is the cumulative communication telemetry of one rank.
type RankStats struct {
	BytesSent, MsgsSent int64
	BytesRecv, MsgsRecv int64
	// WaitSec is time blocked in point-to-point Wait; CollSec is time
	// blocked in Allreduce/Barrier/Allgather (a Barrier's time is charged to
	// CollSec once — it is an Allreduce internally — but counted under both
	// Barriers and Allreduces).
	WaitSec, CollSec     float64
	Allreduces, Barriers int64
}

// RankStats returns rank r's cumulative telemetry.
func (w *World) RankStats(r int) RankStats {
	return RankStats{
		BytesSent:  w.bytesSent[r].Load(),
		MsgsSent:   w.msgsSent[r].Load(),
		BytesRecv:  w.bytesRecv[r].Load(),
		MsgsRecv:   w.msgsRecv[r].Load(),
		WaitSec:    float64(w.waitNs[r].Load()) / 1e9,
		CollSec:    float64(w.collNs[r].Load()) / 1e9,
		Allreduces: w.allreduces[r].Load(),
		Barriers:   w.barriers[r].Load(),
	}
}

// TotalStats sums RankStats over all ranks.
func (w *World) TotalStats() RankStats {
	var t RankStats
	for r := 0; r < w.n; r++ {
		s := w.RankStats(r)
		t.BytesSent += s.BytesSent
		t.MsgsSent += s.MsgsSent
		t.BytesRecv += s.BytesRecv
		t.MsgsRecv += s.MsgsRecv
		t.WaitSec += s.WaitSec
		t.CollSec += s.CollSec
		t.Allreduces += s.Allreduces
		t.Barriers += s.Barriers
	}
	return t
}

// abortPanic is the sentinel thrown by blocked operations when the world
// aborts. Run recognises it and prefers the root cause over the echoes.
type abortPanic struct{ cause string }

// Abort marks the world aborted and wakes every rank blocked in a receive
// or collective; woken ranks panic with an abort sentinel that Run converts
// into per-rank errors. The first cause wins; later calls are no-ops.
func (w *World) Abort(cause string) {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	w.abortMu.Lock()
	w.abortCause = cause
	w.abortMu.Unlock()
	// Broadcast under each lock so a waiter is either woken here or sees
	// the flag before it can park (it re-checks while holding the lock).
	for _, box := range w.boxes {
		box.mu.Lock()
		box.cond.Broadcast()
		box.mu.Unlock()
	}
	w.coll.mu.Lock()
	w.coll.cond.Broadcast()
	w.coll.mu.Unlock()
	w.abortMu.Lock()
	hooks := w.abortHooks
	w.abortHooks = nil
	w.abortMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// OnAbort registers fn to run when the world aborts — the hook for layers
// with their own condition variables (the critpath deposit barrier) that
// Abort's mailbox/collective broadcasts cannot wake. If the world has
// already aborted, fn runs immediately.
func (w *World) OnAbort(fn func()) {
	w.abortMu.Lock()
	if w.aborted.Load() {
		w.abortMu.Unlock()
		fn()
		return
	}
	w.abortHooks = append(w.abortHooks, fn)
	w.abortMu.Unlock()
}

// Aborted reports whether the world has been aborted.
func (w *World) Aborted() bool { return w.aborted.Load() }

func (w *World) abortCauseLocked() string {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortCause
}

// checkAborted panics with the abort sentinel if the world is aborted.
// Callers hold the mailbox or collective mutex, so the check pairs with
// Abort's under-lock broadcast.
func (w *World) checkAborted() {
	if w.aborted.Load() {
		panic(abortPanic{w.abortCauseLocked()})
	}
}

// Run spawns one goroutine per rank executing body and waits for all of
// them. A panic in any rank is recovered and returned as an error naming
// the rank (so a failed parallel test reports cleanly instead of killing
// the process); the panic also aborts the world so peers blocked on the
// dead rank unwind instead of leaking. Abort echoes are reported only when
// no root-cause error exists.
func (w *World) Run(body func(c *Comm)) error {
	errs := make([]error, w.n)
	echo := make([]bool, w.n)
	var wg sync.WaitGroup
	wg.Add(w.n)
	for r := 0; r < w.n; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if ab, ok := p.(abortPanic); ok {
						errs[rank] = fmt.Errorf("comm: rank %d aborted: %s", rank, ab.cause)
						echo[rank] = true
						return
					}
					errs[rank] = fmt.Errorf("comm: rank %d panicked: %v", rank, p)
					w.Abort(fmt.Sprintf("rank %d panicked: %v", rank, p))
				}
			}()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil && !echo[r] {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int

	// prof, when attached, records MPI_* spans on the rank's profiler
	// track, so blocked time is charged to the call path that blocked
	// (nil-track Begin is free).
	prof *prof.Track

	// Step context, stamped onto message envelopes and trace events. Owned
	// by the rank's own goroutine — the solver sets it at step and RK-stage
	// boundaries; no locking.
	step, stage int

	// Per-step event trace for the wait-state analyzer (internal/critpath).
	// Armed and drained by the rank's own goroutine at step boundaries;
	// WithoutProfiler copies (pario server threads) never arm it.
	traceOn bool
	ptp     []PtPEvent
	colls   []CollEvent
	collSeq int
}

// AttachProfiler records this rank's communication calls (MPI_ISEND,
// MPI_WAIT, MPI_ALLREDUCE, MPI_BARRIER, MPI_ALLGATHER) as spans on tr. The
// track must be the calling rank's: spans land on whatever call path the
// rank currently has open.
func (c *Comm) AttachProfiler(tr *prof.Track) { c.prof = tr }

// WithoutProfiler returns a handle on the same world and rank that records
// no spans and no trace events — for server goroutines (the pario I/O
// threads) that share a rank's communicator but run concurrently with the
// rank's own call stack.
func (c *Comm) WithoutProfiler() *Comm { return &Comm{world: c.world, rank: c.rank} }

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// World returns the underlying world (for accounting queries).
func (c *Comm) World() *World { return c.world }

// Stats returns this rank's cumulative communication telemetry.
func (c *Comm) Stats() RankStats { return c.world.RankStats(c.rank) }

// SetStepContext stamps subsequent messages and trace events with the
// solver's step number and RK stage. Call from the rank's own goroutine.
func (c *Comm) SetStepContext(step, stage int) { c.step, c.stage = step, stage }

// ArmTrace turns per-operation event recording on or off, dropping any
// buffered events. While armed, every completed Isend/Wait and every
// collective appends one event; DrainTrace collects them. Collective
// sequence numbers restart at every arm so they match across ranks that
// arm at the same program point (a step boundary).
func (c *Comm) ArmTrace(on bool) {
	c.traceOn = on
	c.ptp = c.ptp[:0]
	c.colls = c.colls[:0]
	c.collSeq = 0
}

// DrainTrace returns the events recorded since ArmTrace and resets the
// buffers; the returned slices belong to the caller.
func (c *Comm) DrainTrace() ([]PtPEvent, []CollEvent) {
	p, cl := c.ptp, c.colls
	c.ptp, c.colls = nil, nil
	return p, cl
}

// PtP event kinds.
const (
	KindSend = "send"
	KindRecv = "recv"
)

// PtPEvent is one traced point-to-point operation (a completed send or
// receive). All timestamps are on the world clock (ns since World.Epoch).
type PtPEvent struct {
	Kind    string // "send" | "recv"
	Peer    int    // destination (send) or source (recv)
	Tag     int
	Bytes   int   // payload bytes
	Step    int   // poster's step context
	Stage   int   // poster's RK-stage context
	PostNs  int64 // when the operation was posted
	StartNs int64 // recv: when Wait began blocking; send: == PostNs
	DoneNs  int64 // when the operation completed
	// Receive side only: the matched sender's envelope — when the message
	// was posted (== when it arrived, under buffered-send semantics) and
	// the sender's step context at post time.
	SendPostNs int64
	SendStep   int
	SendStage  int
}

// Collective event kinds.
const (
	KindAllreduce        = "allreduce"
	KindAllreduceOrdered = "allreduce_ordered"
	KindAllgather        = "allgather"
	KindBarrier          = "barrier"
)

// CollEvent is one traced collective call. Seq is the rank's collective
// sequence number since ArmTrace; because every rank executes the same
// collective program, equal Seq identifies the same collective across
// ranks (nested helper collectives — Barrier's inner allreduce,
// AllreduceOrdered's inner allgather — record one event, not two).
type CollEvent struct {
	Kind    string
	Seq     int
	Bytes   int
	Step    int
	Stage   int
	EnterNs int64
	ExitNs  int64
}

// recordColl appends a collective trace event; kind "" marks a nested
// helper call whose enclosing collective records instead.
func (c *Comm) recordColl(kind string, bytes int, enterNs int64) {
	if kind == "" || !c.traceOn {
		return
	}
	c.colls = append(c.colls, CollEvent{
		Kind: kind, Seq: c.collSeq, Bytes: bytes,
		Step: c.step, Stage: c.stage,
		EnterNs: enterNs, ExitNs: c.world.nowNs(),
	})
	c.collSeq++
}

// message is an in-flight point-to-point message with its envelope.
type message struct {
	src, tag int
	data     []float64
	postNs   int64 // world-clock time the send was posted (== arrival time)
	step     int   // sender's step context at post time
	stage    int
}

// mailbox holds unmatched arrived messages for one rank.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msgs []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Request is a pending non-blocking operation. Wait blocks until complete.
type Request struct {
	done bool
	// receive state; nil box means the request is an already-complete send.
	box      *mailbox
	src, tag int
	buf      []float64
	// telemetry attribution: the posting rank's world (nil for sends, which
	// complete at post time), the posting rank's profiler track — so the
	// blocked time inside Wait lands on the call path that posted the
	// receive — and the posting communicator for trace recording.
	w    *World
	rank int
	prof *prof.Track
	c    *Comm

	// Operation timestamps on the world clock, persisted on the request so
	// they survive the profiler span's end: per-neighbour wait accounting
	// and the critpath analyzer need exact post/complete times.
	postNs     int64
	completeNs int64
	bytes      int
}

// PostNs returns when the operation was posted (ns since World.Epoch).
func (r *Request) PostNs() int64 { return r.postNs }

// CompleteNs returns when the operation completed (ns since World.Epoch);
// zero while the request is still pending.
func (r *Request) CompleteNs() int64 { return r.completeNs }

// Isend posts a non-blocking send of data to rank dst with a tag. The data
// is copied at post time, so the caller may reuse its buffer immediately
// (buffered-send semantics, matching how S3D uses MPI_Isend on ghost
// buffers that are not touched until the matching wait anyway).
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	if dst < 0 || dst >= c.world.n {
		panic(fmt.Sprintf("comm: rank %d Isend to invalid rank %d", c.rank, dst))
	}
	sp := c.prof.Begin("MPI_ISEND")
	defer sp.End()
	now := c.world.nowNs()
	cp := make([]float64, len(data))
	copy(cp, data)
	box := c.world.boxes[dst]
	box.mu.Lock()
	box.msgs = append(box.msgs, message{src: c.rank, tag: tag, data: cp,
		postNs: now, step: c.step, stage: c.stage})
	box.mu.Unlock()
	box.cond.Broadcast()
	bytes := 8 * len(data)
	c.world.bytesSent[c.rank].Add(int64(bytes))
	c.world.msgsSent[c.rank].Add(1)
	if c.traceOn {
		c.ptp = append(c.ptp, PtPEvent{Kind: KindSend, Peer: dst, Tag: tag,
			Bytes: bytes, Step: c.step, Stage: c.stage,
			PostNs: now, StartNs: now, DoneNs: now})
	}
	return &Request{done: true, postNs: now, completeNs: now, bytes: bytes}
}

// Irecv posts a non-blocking receive into buf for a message from rank src
// with the given tag. Completion happens inside Wait.
func (c *Comm) Irecv(src, tag int, buf []float64) *Request {
	if src < 0 || src >= c.world.n {
		panic(fmt.Sprintf("comm: rank %d Irecv from invalid rank %d", c.rank, src))
	}
	return &Request{box: c.world.boxes[c.rank], src: src, tag: tag, buf: buf,
		w: c.world, rank: c.rank, prof: c.prof, c: c, postNs: c.world.nowNs()}
}

// Wait blocks until the request completes. For receives it matches the
// earliest-arrived message from (src, tag) and copies it into the posted
// buffer; a length mismatch panics, as MPI would raise a truncation error.
// Time spent blocked is charged to the posting rank's wait counter and to
// its per-peer wait counter. If the world aborts while blocked, Wait
// unwinds with the abort sentinel instead of parking forever.
func (r *Request) Wait() {
	if r.done {
		return
	}
	sp := r.prof.Begin("MPI_WAIT")
	defer sp.End()
	start := time.Now()
	startNs := r.w.nowNs()
	box := r.box
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		r.w.checkAborted()
		for i := range box.msgs {
			m := &box.msgs[i]
			if m.src == r.src && m.tag == r.tag {
				if len(m.data) != len(r.buf) {
					panic(fmt.Sprintf("comm: message truncation: got %d, posted %d (src %d tag %d)",
						len(m.data), len(r.buf), r.src, r.tag))
				}
				copy(r.buf, m.data)
				sendPostNs, sendStep, sendStage := m.postNs, m.step, m.stage
				box.msgs = append(box.msgs[:i], box.msgs[i+1:]...)
				r.done = true
				r.completeNs = r.w.nowNs()
				r.bytes = 8 * len(r.buf)
				waited := time.Since(start).Nanoseconds()
				r.w.bytesRecv[r.rank].Add(int64(r.bytes))
				r.w.msgsRecv[r.rank].Add(1)
				r.w.waitNs[r.rank].Add(waited)
				r.w.waitPeerNs[r.rank*r.w.n+r.src].Add(waited)
				if r.c != nil && r.c.traceOn {
					r.c.ptp = append(r.c.ptp, PtPEvent{Kind: KindRecv,
						Peer: r.src, Tag: r.tag, Bytes: r.bytes,
						Step: r.c.step, Stage: r.c.stage,
						PostNs: r.postNs, StartNs: startNs, DoneNs: r.completeNs,
						SendPostNs: sendPostNs, SendStep: sendStep, SendStage: sendStage})
				}
				return
			}
		}
		box.cond.Wait()
	}
}

// WaitAll completes every request.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// RecvAny blocks until a message with any of the given tags arrives from
// any rank, returning its source, tag and payload. It serves the
// server-thread pattern of the MPI-I/O caching layer (an I/O thread
// handling "both local and remote requests", paper §5.1) — the analogue of
// MPI_ANY_SOURCE receives.
func (c *Comm) RecvAny(tags []int) (src, tag int, data []float64) {
	box := c.world.boxes[c.rank]
	box.mu.Lock()
	defer box.mu.Unlock()
	for {
		c.world.checkAborted()
		for i := range box.msgs {
			m := &box.msgs[i]
			for _, t := range tags {
				if m.tag == t {
					src, tag, data = m.src, m.tag, m.data
					box.msgs = append(box.msgs[:i], box.msgs[i+1:]...)
					// Counted as received; idle time in the server loop is
					// deliberately not charged as wait time.
					c.world.bytesRecv[c.rank].Add(int64(8 * len(data)))
					c.world.msgsRecv[c.rank].Add(1)
					return src, tag, data
				}
			}
		}
		box.cond.Wait()
	}
}

// Send is a blocking send (completes immediately under buffered semantics).
func (c *Comm) Send(dst, tag int, data []float64) { c.Isend(dst, tag, data).Wait() }

// Recv is a blocking receive.
func (c *Comm) Recv(src, tag int, buf []float64) { c.Irecv(src, tag, buf).Wait() }

// Op is a reduction operator.
type Op int

// Reduction operators supported by Allreduce.
const (
	Sum Op = iota
	Min
	Max
)

func (o Op) combine(dst, src []float64) {
	switch o {
	case Sum:
		for i := range dst {
			dst[i] += src[i]
		}
	case Min:
		for i := range dst {
			if src[i] < dst[i] {
				dst[i] = src[i]
			}
		}
	case Max:
		for i := range dst {
			if src[i] > dst[i] {
				dst[i] = src[i]
			}
		}
	}
}

// collective implements reusable barrier-style collectives with an
// entry/exit two-phase protocol so back-to-back collectives cannot race.
type collective struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	entered int
	exited  int
	phase   int // 0: gathering, 1: draining
	acc     []float64
	slots   [][]float64
}

func newCollective(n int) *collective {
	c := &collective{n: n, slots: make([][]float64, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Allreduce combines vals across all ranks with op; on return vals holds
// the reduced result on every rank. All ranks must call with equal lengths.
// The call's duration is charged to the rank's collective-time counter.
func (c *Comm) Allreduce(op Op, vals []float64) {
	c.allreduce(op, vals, KindAllreduce)
}

func (c *Comm) allreduce(op Op, vals []float64, kind string) {
	sp := c.prof.Begin("MPI_ALLREDUCE")
	defer sp.End()
	enterNs := c.world.nowNs()
	start := time.Now()
	defer func() {
		c.world.collNs[c.rank].Add(time.Since(start).Nanoseconds())
		c.world.allreduces[c.rank].Add(1)
	}()
	col := c.world.coll
	// The deferred unlock keeps the collective mutex panic-safe: an abort
	// unwinds every waiter through checkAborted, and a leaked lock here
	// would park the remaining ranks inside cond.Wait forever.
	func() {
		col.mu.Lock()
		defer col.mu.Unlock()
		for col.phase == 1 { // previous collective still draining
			c.world.checkAborted()
			col.cond.Wait()
		}
		if col.entered == 0 {
			col.acc = append(col.acc[:0], vals...)
		} else {
			if len(col.acc) != len(vals) {
				panic("comm: Allreduce length mismatch across ranks")
			}
			op.combine(col.acc, vals)
		}
		col.entered++
		if col.entered == col.n {
			col.phase = 1
			col.cond.Broadcast()
		} else {
			for col.phase == 0 {
				c.world.checkAborted()
				col.cond.Wait()
			}
		}
		copy(vals, col.acc)
		col.exited++
		if col.exited == col.n {
			col.entered, col.exited, col.phase = 0, 0, 0
			col.cond.Broadcast()
		}
	}()
	// Account the communication: a tree allreduce moves O(2·len) per rank.
	c.world.bytesSent[c.rank].Add(int64(16 * len(vals)))
	c.recordColl(kind, 16*len(vals), enterNs)
}

// Barrier blocks until all ranks arrive.
func (c *Comm) Barrier() {
	sp := c.prof.Begin("MPI_BARRIER")
	defer sp.End()
	enterNs := c.world.nowNs()
	c.world.barriers[c.rank].Add(1)
	v := []float64{0}
	c.allreduce(Sum, v, "")
	c.recordColl(KindBarrier, 16, enterNs)
}

// Allgather collects each rank's slice; the result indexed by rank is
// returned on every rank. All ranks must call with non-nil slices.
func (c *Comm) Allgather(vals []float64) [][]float64 {
	return c.allgather(vals, KindAllgather)
}

func (c *Comm) allgather(vals []float64, kind string) [][]float64 {
	sp := c.prof.Begin("MPI_ALLGATHER")
	defer sp.End()
	enterNs := c.world.nowNs()
	start := time.Now()
	defer func() {
		c.world.collNs[c.rank].Add(time.Since(start).Nanoseconds())
	}()
	col := c.world.coll
	var out [][]float64
	// Deferred unlock for abort-safety, as in allreduce: checkAborted
	// panics out of the loops with the mutex held.
	func() {
		col.mu.Lock()
		defer col.mu.Unlock()
		for col.phase == 1 {
			c.world.checkAborted()
			col.cond.Wait()
		}
		cp := make([]float64, len(vals))
		copy(cp, vals)
		col.slots[c.rank] = cp
		col.entered++
		if col.entered == col.n {
			col.phase = 1
			col.cond.Broadcast()
		} else {
			for col.phase == 0 {
				c.world.checkAborted()
				col.cond.Wait()
			}
		}
		out = make([][]float64, col.n)
		copy(out, col.slots)
		col.exited++
		if col.exited == col.n {
			col.entered, col.exited, col.phase = 0, 0, 0
			col.cond.Broadcast()
		}
	}()
	c.world.bytesSent[c.rank].Add(int64(8 * len(vals)))
	c.recordColl(kind, 8*len(vals), enterNs)
	return out
}

// AllreduceOrdered reduces vals across all ranks with a caller-supplied
// combiner, folding rank contributions in ascending rank order — unlike
// Allreduce, whose arrival-order fold makes floating-point sums
// run-to-run nondeterministic. Every rank gets the bitwise-identical
// result. Built on Allgather; counted as one allreduce. All ranks must
// call with equal lengths: a mismatch is reported as an error on every
// rank (not a panic — the caller decides whether it is fatal). A
// zero-length payload is a pure synchronization point and succeeds.
func (c *Comm) AllreduceOrdered(vals []float64, combine func(dst, src []float64)) error {
	enterNs := c.world.nowNs()
	slots := c.allgather(vals, "")
	c.world.allreduces[c.rank].Add(1)
	for r := range slots {
		if len(slots[r]) != len(vals) {
			return fmt.Errorf("comm: AllreduceOrdered length mismatch across ranks: rank %d contributed %d values, rank %d posted %d",
				r, len(slots[r]), c.rank, len(vals))
		}
	}
	if len(vals) > 0 { // zero-length is a pure synchronization point
		copy(vals, slots[0])
		for r := 1; r < len(slots); r++ {
			combine(vals, slots[r])
		}
	}
	c.recordColl(KindAllreduceOrdered, 8*len(vals), enterNs)
	return nil
}
