package comm

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			buf := make([]float64, 3)
			c.Recv(1, 8, buf)
			if buf[0] != 2 || buf[2] != 6 {
				panic("bad echo")
			}
		} else {
			buf := make([]float64, 3)
			c.Recv(0, 7, buf)
			for i := range buf {
				buf[i] *= 2
			}
			c.Send(0, 8, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingOverlap(t *testing.T) {
	// Post all receives, then all sends, then wait — the S3D ghost-exchange
	// pattern. Must not deadlock.
	const n = 8
	w := NewWorld(n)
	err := w.Run(func(c *Comm) {
		left := (c.Rank() + n - 1) % n
		right := (c.Rank() + 1) % n
		rbufL := make([]float64, 4)
		rbufR := make([]float64, 4)
		r1 := c.Irecv(left, 1, rbufL)
		r2 := c.Irecv(right, 2, rbufR)
		s1 := c.Isend(right, 1, []float64{float64(c.Rank()), 0, 0, 0})
		s2 := c.Isend(left, 2, []float64{float64(c.Rank()), 1, 1, 1})
		WaitAll(r1, r2, s1, s2)
		if int(rbufL[0]) != left || int(rbufR[0]) != right {
			panic("wrong neighbour data")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Send tag 5 then tag 4; receiver asks for 4 first.
			c.Send(1, 5, []float64{5})
			c.Send(1, 4, []float64{4})
		} else {
			b := make([]float64, 1)
			c.Recv(0, 4, b)
			if b[0] != 4 {
				panic("tag matching failed")
			}
			c.Recv(0, 5, b)
			if b[0] != 5 {
				panic("tag matching failed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	// Messages with the same (src, tag) must match in send order.
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		const k = 50
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 3, []float64{float64(i)})
			}
		} else {
			b := make([]float64, 1)
			for i := 0; i < k; i++ {
				c.Recv(0, 3, b)
				if int(b[0]) != i {
					panic("out-of-order delivery")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBufferReusable(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Isend(1, 0, buf)
			buf[0] = -1 // must not corrupt the in-flight message
			c.Barrier()
		} else {
			b := make([]float64, 1)
			c.Recv(0, 0, b)
			if b[0] != 42 {
				panic("send buffer not copied")
			}
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSumMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		w := NewWorld(n)
		err := w.Run(func(c *Comm) {
			v := []float64{float64(c.Rank() + 1), 1}
			c.Allreduce(Sum, v)
			want := float64(n*(n+1)) / 2
			if v[0] != want || v[1] != float64(n) {
				panic("bad sum")
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreduceMinMax(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) {
		v := []float64{float64(c.Rank())}
		c.Allreduce(Min, v)
		if v[0] != 0 {
			panic("bad min")
		}
		v[0] = float64(c.Rank())
		c.Allreduce(Max, v)
		if v[0] != 4 {
			panic("bad max")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackCollectives(t *testing.T) {
	// Hammer consecutive collectives to exercise the two-phase reset.
	w := NewWorld(7)
	err := w.Run(func(c *Comm) {
		for iter := 0; iter < 200; iter++ {
			v := []float64{1}
			c.Allreduce(Sum, v)
			if v[0] != 7 {
				panic("collective raced")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		out := c.Allgather([]float64{float64(c.Rank() * 10)})
		for r := 0; r < 4; r++ {
			if out[r][0] != float64(r*10) {
				panic("bad gather")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReturnsPanicAsError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// Rank 0 must not hang on a collective with a dead partner in this
		// test; it does plain work only.
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestByteAccounting(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 100)) // 800 bytes
		} else {
			c.Recv(0, 0, make([]float64, 100))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.BytesSent(0); got != 800 {
		t.Fatalf("BytesSent(0) = %d, want 800", got)
	}
	if got := w.MessagesSent(0); got != 1 {
		t.Fatalf("MessagesSent(0) = %d, want 1", got)
	}
	if w.TotalBytes() < 800 {
		t.Fatalf("TotalBytes = %d", w.TotalBytes())
	}
}

func TestCounters2x2Exchange(t *testing.T) {
	// Telemetry counters across a realistic exchange on a 2×2×1 topology:
	// every rank swaps one fixed-size message with its x and y neighbours
	// (periodic, so every rank has exactly two distinct neighbours), then
	// joins one Allreduce. Byte and message counts must come out exact.
	const msgLen = 250 // 2000 bytes per message
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		ct, err := NewCart(c, [3]int{2, 2, 1}, [3]bool{true, true, false})
		if err != nil {
			panic(err)
		}
		var reqs []*Request
		for axis := 0; axis < 2; axis++ {
			nb := ct.Neighbor(axis, +1) // with dims 2, +1 and -1 coincide
			buf := make([]float64, msgLen)
			reqs = append(reqs, c.Irecv(nb, axis, make([]float64, msgLen)))
			reqs = append(reqs, c.Isend(nb, axis, buf))
		}
		WaitAll(reqs...)
		v := []float64{float64(c.Rank())}
		c.Allreduce(Sum, v)
		if v[0] != 6 { // 0+1+2+3
			panic("bad allreduce")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		s := w.RankStats(r)
		// Two point-to-point sends of 2000 bytes plus one Allreduce charged
		// at 16 bytes per element (2·8·len, the tree-allreduce model).
		if s.MsgsSent != 2 || s.BytesSent != 2*8*msgLen+16 {
			t.Fatalf("rank %d sent: msgs=%d bytes=%d", r, s.MsgsSent, s.BytesSent)
		}
		if s.MsgsRecv != 2 || s.BytesRecv != 2*8*msgLen {
			t.Fatalf("rank %d recv: msgs=%d bytes=%d", r, s.MsgsRecv, s.BytesRecv)
		}
		if s.Allreduces != 1 || s.Barriers != 0 {
			t.Fatalf("rank %d collectives: %+v", r, s)
		}
		if s.WaitSec < 0 || s.CollSec <= 0 {
			t.Fatalf("rank %d blocked-time: wait=%g coll=%g", r, s.WaitSec, s.CollSec)
		}
	}
	tot := w.TotalStats()
	if tot.BytesSent != 4*(2*8*msgLen+16) || tot.MsgsRecv != 8 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestBarrierCountsOnce(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) { c.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		s := w.RankStats(r)
		if s.Barriers != 1 || s.Allreduces != 1 {
			t.Fatalf("rank %d: barriers=%d allreduces=%d", r, s.Barriers, s.Allreduces)
		}
	}
}

func TestCartTopology(t *testing.T) {
	w := NewWorld(24)
	var bad atomic.Int64
	err := w.Run(func(c *Comm) {
		ct, err := NewCart(c, [3]int{4, 3, 2}, [3]bool{false, true, false})
		if err != nil {
			panic(err)
		}
		co := ct.Coords()
		// Round trip.
		if ct.RankOf(co) != c.Rank() {
			bad.Add(1)
		}
		// Periodic wrap in y.
		if co[1] == 0 {
			want := ct.RankOf([3]int{co[0], 2, co[2]})
			if ct.Neighbor(1, -1) != want {
				bad.Add(1)
			}
		}
		// Non-periodic edge in x.
		if co[0] == 0 && ct.Neighbor(0, -1) != -1 {
			bad.Add(1)
		}
		if co[0] == 0 != ct.OnLowBoundary(0) {
			bad.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d topology inconsistencies", bad.Load())
	}
}

func TestCartDimsMismatch(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) {
		if _, err := NewCart(c, [3]int{3, 1, 1}, [3]bool{}); err == nil {
			panic("expected dims mismatch error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecompose1DProperty(t *testing.T) {
	prop := func(nRaw, partsRaw uint8) bool {
		n := int(nRaw)%200 + 1
		parts := int(partsRaw)%16 + 1
		if parts > n {
			parts = n
		}
		total := 0
		prevEnd := 0
		for p := 0; p < parts; p++ {
			off, cnt := Decompose1D(n, parts, p)
			if off != prevEnd || cnt < n/parts || cnt > n/parts+1 {
				return false
			}
			prevEnd = off + cnt
			total += cnt
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloatAccuracy(t *testing.T) {
	// Reduction result must equal a serial sum of the same values exactly
	// (same association order is not guaranteed; accept tiny tolerance).
	n := 16
	w := NewWorld(n)
	var result atomic.Value
	err := w.Run(func(c *Comm) {
		v := []float64{math.Sqrt(float64(c.Rank() + 1))}
		c.Allreduce(Sum, v)
		result.Store(v[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 1; i <= n; i++ {
		want += math.Sqrt(float64(i))
	}
	if math.Abs(result.Load().(float64)-want) > 1e-12 {
		t.Fatalf("allreduce = %v, want %v", result.Load(), want)
	}
}

func BenchmarkGhostExchange8Ranks(b *testing.B) {
	// The characteristic S3D message: ~80 kB (paper §2.6) to each of up to
	// six neighbours.
	const msg = 10000 // 80 kB of float64
	w := NewWorld(8)
	b.ResetTimer()
	for iter := 0; iter < b.N; iter++ {
		err := w.Run(func(c *Comm) {
			ct, _ := NewCart(c, [3]int{2, 2, 2}, [3]bool{true, true, true})
			buf := make([]float64, msg)
			recv := make([]float64, msg)
			var reqs []*Request
			for axis := 0; axis < 3; axis++ {
				for _, dir := range []int{-1, 1} {
					nb := ct.Neighbor(axis, dir)
					// Receive tag encodes my side; the sender targets the
					// receiver's opposite side.
					reqs = append(reqs, c.Irecv(nb, axis*2+(dir+1)/2, recv))
					reqs = append(reqs, c.Isend(nb, axis*2+(1-dir)/2, buf))
				}
			}
			WaitAll(reqs...)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
