package comm

import "testing"

func TestRecvAnyMatchesTagSet(t *testing.T) {
	w2 := NewWorld(3)
	err := w2.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			got := map[int]int{}
			for i := 0; i < 2; i++ {
				src, tag, data := c.RecvAny([]int{10, 20})
				got[tag] = src
				if len(data) != 1 {
					panic("bad payload")
				}
			}
			if got[10] != 1 || got[20] != 2 {
				panic("wrong src/tag matching")
			}
			// The decoy (tag 30) is still in the mailbox.
			buf := make([]float64, 1)
			c.Recv(1, 30, buf)
			if buf[0] != 7 {
				panic("decoy lost")
			}
		case 1:
			c.Send(0, 30, []float64{7}) // decoy first
			c.Send(0, 10, []float64{1})
		case 2:
			c.Send(0, 20, []float64{2})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyConcurrentWithRecv(t *testing.T) {
	// A server goroutine draining RecvAny must coexist with the main
	// goroutine's tagged Recv on the same rank (the cache-layer pattern).
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 3; i++ {
					_, tag, _ := c.RecvAny([]int{5})
					if tag != 5 {
						panic("server got wrong tag")
					}
				}
			}()
			buf := make([]float64, 1)
			c.Recv(1, 6, buf) // client-path receive
			if buf[0] != 42 {
				panic("client recv corrupted")
			}
			<-done
		} else {
			c.Send(0, 5, []float64{1})
			c.Send(0, 6, []float64{42})
			c.Send(0, 5, []float64{2})
			c.Send(0, 5, []float64{3})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
