package comm

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base, failing the test after a generous deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), base)
}

// TestAbortUnblocksPendingIrecv pins the leak fix: a rank blocked in Wait
// on a message that will never arrive must unwind when the world aborts,
// not park its goroutine forever.
func TestAbortUnblocksPendingIrecv(t *testing.T) {
	base := runtime.NumGoroutine()
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			// Give rank 1 time to park inside Wait, then abort.
			time.Sleep(20 * time.Millisecond)
			c.World().Abort("test straggler gave up")
			return
		}
		buf := make([]float64, 4)
		c.Irecv(0, 7, buf).Wait() // never satisfied
		t.Error("Wait returned without a matching send")
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("want an abort error naming the cause, got %v", err)
	}
	if !strings.Contains(err.Error(), "test straggler gave up") {
		t.Fatalf("abort error lost the cause: %v", err)
	}
	waitGoroutines(t, base)
}

// TestPanicAbortsBlockedPeers pins Run's root-cause preference: when one
// rank panics while a peer is blocked in a collective, Run must report the
// panic, not the peer's abort echo — and no goroutine may leak.
func TestPanicAbortsBlockedPeers(t *testing.T) {
	base := runtime.NumGoroutine()
	w := NewWorld(3)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			time.Sleep(10 * time.Millisecond)
			panic("rank 1 exploded")
		}
		v := []float64{1}
		c.Allreduce(Sum, v) // rank 1 never arrives
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1 panicked: rank 1 exploded") {
		t.Fatalf("want the root-cause panic, got %v", err)
	}
	waitGoroutines(t, base)
}

// TestAbortUnblocksRecvAny covers the server-thread receive path.
func TestAbortUnblocksRecvAny(t *testing.T) {
	base := runtime.NumGoroutine()
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			time.Sleep(10 * time.Millisecond)
			c.World().Abort("shutdown")
			return
		}
		c.RecvAny([]int{99})
		t.Error("RecvAny returned without a message")
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("want abort error, got %v", err)
	}
	if !w.Aborted() {
		t.Fatal("world must report Aborted after Abort")
	}
	waitGoroutines(t, base)
}
