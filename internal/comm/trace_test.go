package comm

import (
	"strings"
	"testing"
	"time"
)

// TestAllreduceOrderedEdgePaths covers the failure/edge paths: zero-length
// payload (a pure synchronization point), a single-rank world, and
// mismatched lengths — which must surface as an error on every rank, not a
// panic, and must not deadlock the collective.
func TestAllreduceOrderedEdgePaths(t *testing.T) {
	t.Run("zero-length", func(t *testing.T) {
		w := NewWorld(2)
		if err := w.Run(func(c *Comm) {
			if err := c.AllreduceOrdered(nil, func(dst, src []float64) {
				t.Error("combine called on empty payload")
			}); err != nil {
				t.Errorf("rank %d: %v", c.Rank(), err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("single-rank", func(t *testing.T) {
		w := NewWorld(1)
		if err := w.Run(func(c *Comm) {
			vals := []float64{3, 4}
			if err := c.AllreduceOrdered(vals, func(dst, src []float64) {
				t.Error("combine must not run with one rank")
			}); err != nil {
				t.Error(err)
			}
			if vals[0] != 3 || vals[1] != 4 {
				t.Errorf("single-rank reduce changed the payload: %v", vals)
			}
		}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("mismatched-lengths", func(t *testing.T) {
		w := NewWorld(2)
		errs := make([]error, 2)
		if err := w.Run(func(c *Comm) {
			vals := make([]float64, 1+c.Rank()) // rank 0: len 1, rank 1: len 2
			errs[c.Rank()] = c.AllreduceOrdered(vals, func(dst, src []float64) {})
		}); err != nil {
			t.Fatalf("mismatch must not panic the world: %v", err)
		}
		for r, err := range errs {
			if err == nil {
				t.Fatalf("rank %d got no error on mismatched lengths", r)
			}
			if !strings.Contains(err.Error(), "length mismatch") {
				t.Fatalf("rank %d error = %v", r, err)
			}
		}
	})
}

// TestRequestTimestampsPersist pins the satellite fix: post/complete times
// survive on the Request after the operation (and its profiler span) ends.
func TestRequestTimestampsPersist(t *testing.T) {
	w := NewWorld(2)
	if err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			req := c.Isend(1, 5, []float64{1, 2, 3})
			if req.PostNs() <= 0 || req.CompleteNs() != req.PostNs() {
				t.Errorf("send timestamps: post=%d complete=%d", req.PostNs(), req.CompleteNs())
			}
			return
		}
		buf := make([]float64, 3)
		req := c.Irecv(0, 5, buf)
		if req.PostNs() <= 0 {
			t.Error("Irecv did not stamp a post time")
		}
		if req.CompleteNs() != 0 {
			t.Error("pending request must report zero complete time")
		}
		req.Wait()
		if req.CompleteNs() < req.PostNs() {
			t.Errorf("complete %d before post %d", req.CompleteNs(), req.PostNs())
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestWaitByPeerAccumulates checks the always-on per-neighbour wait
// counters: a receiver blocked on a slow sender charges that peer's slot
// even with no trace armed.
func TestWaitByPeerAccumulates(t *testing.T) {
	w := NewWorld(2)
	if err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			c.Send(1, 3, []float64{1})
			return
		}
		buf := make([]float64, 1)
		c.Recv(0, 3, buf)
	}); err != nil {
		t.Fatal(err)
	}
	byPeer := w.WaitByPeer(1)
	if len(byPeer) != 2 {
		t.Fatalf("WaitByPeer length %d, want world size", len(byPeer))
	}
	if byPeer[0] < int64(10*time.Millisecond) {
		t.Fatalf("rank 1 waited %d ns on rank 0, want >= 10ms", byPeer[0])
	}
	if byPeer[1] != 0 {
		t.Fatalf("rank 1 charged %d ns against itself", byPeer[1])
	}
}

// TestTraceEnvelopes exercises the armed event trace end to end: send and
// receive events carry the step/stage context of both sides, a blocked
// receive exposes the late sender through SendPostNs, and nested helper
// collectives (Barrier, AllreduceOrdered) record exactly one event with
// matching sequence numbers across ranks.
func TestTraceEnvelopes(t *testing.T) {
	w := NewWorld(2)
	ptps := make([][]PtPEvent, 2)
	colls := make([][]CollEvent, 2)
	if err := w.Run(func(c *Comm) {
		c.SetStepContext(7, 0)
		c.ArmTrace(true)
		if c.Rank() == 0 {
			c.SetStepContext(7, 2)
			time.Sleep(15 * time.Millisecond)
			c.Send(1, 11, []float64{1, 2})
		} else {
			buf := make([]float64, 2)
			c.Recv(0, 11, buf)
		}
		c.Allreduce(Sum, []float64{1})
		c.Barrier()
		if err := c.AllreduceOrdered([]float64{1}, func(dst, src []float64) { dst[0] += src[0] }); err != nil {
			t.Error(err)
		}
		c.Allgather([]float64{float64(c.Rank())})
		p, cl := c.DrainTrace()
		ptps[c.Rank()], colls[c.Rank()] = p, cl
	}); err != nil {
		t.Fatal(err)
	}

	// Rank 0: one send event with its own stage context.
	if len(ptps[0]) != 1 || ptps[0][0].Kind != KindSend {
		t.Fatalf("rank 0 events = %+v, want one send", ptps[0])
	}
	send := ptps[0][0]
	if send.Peer != 1 || send.Tag != 11 || send.Bytes != 16 || send.Step != 7 || send.Stage != 2 {
		t.Fatalf("send envelope wrong: %+v", send)
	}

	// Rank 1: one recv event that saw the sender arrive late.
	if len(ptps[1]) != 1 || ptps[1][0].Kind != KindRecv {
		t.Fatalf("rank 1 events = %+v, want one recv", ptps[1])
	}
	recv := ptps[1][0]
	if recv.Peer != 0 || recv.Tag != 11 || recv.Bytes != 16 || recv.Step != 7 || recv.Stage != 0 {
		t.Fatalf("recv envelope wrong: %+v", recv)
	}
	if recv.SendStep != 7 || recv.SendStage != 2 {
		t.Fatalf("recv lost the sender's context: %+v", recv)
	}
	if recv.SendPostNs != send.PostNs {
		t.Fatalf("send post mismatch: recv saw %d, sender recorded %d", recv.SendPostNs, send.PostNs)
	}
	// Late sender: the message was posted after the receiver began waiting.
	if recv.SendPostNs <= recv.StartNs {
		t.Fatalf("want a late-sender pattern: sendPost=%d waitStart=%d", recv.SendPostNs, recv.StartNs)
	}
	if recv.DoneNs < recv.SendPostNs || recv.StartNs < recv.PostNs {
		t.Fatalf("recv timestamps out of order: %+v", recv)
	}

	// Collectives: 4 top-level calls → 4 events, nested helpers suppressed,
	// sequence numbers aligned across ranks.
	wantKinds := []string{KindAllreduce, KindBarrier, KindAllreduceOrdered, KindAllgather}
	for r := 0; r < 2; r++ {
		if len(colls[r]) != len(wantKinds) {
			t.Fatalf("rank %d collective events = %+v, want %d", r, colls[r], len(wantKinds))
		}
		for i, ev := range colls[r] {
			if ev.Kind != wantKinds[i] || ev.Seq != i {
				t.Fatalf("rank %d event %d = %+v, want kind %s seq %d", r, i, ev, wantKinds[i], i)
			}
			if ev.ExitNs < ev.EnterNs || ev.Step != 7 {
				t.Fatalf("rank %d event %d timestamps/context wrong: %+v", r, i, ev)
			}
		}
	}

	// Draining again returns nothing.
	if p, cl := func() ([]PtPEvent, []CollEvent) {
		var c2 Comm
		return c2.DrainTrace()
	}(); len(p) != 0 || len(cl) != 0 {
		t.Fatal("drained trace must be empty")
	}
}
