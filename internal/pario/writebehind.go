package pario

// This file implements the two-stage write-behind buffering of paper §5.2
// as a live message-passing protocol (the performance model lives in
// methods.go): write data accumulate in first-stage local sub-buffers, one
// per remote process, "along with the requesting file offset and length";
// when a sub-buffer fills it is flushed to the second stage — global file
// pages statically bound round-robin to the MPI processes — whose owners
// apply the records and eventually write whole aligned pages. The file must
// be opened write-only and no coherence control is needed.

import (
	"fmt"
	"sync"
	"time"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/prof"
)

// Write-behind message tags (distinct from the cache-layer tags).
const (
	tagWBFlush    = 9100 // [count, (page, inPage, n, payload...)×count]
	tagWBFlushAck = 9101
	tagWBShutdown = 9102
)

// WriteBehindClient is one rank's handle on the write-behind layer.
type WriteBehindClient struct {
	c    *comm.Comm
	sc   *comm.Comm // the server goroutine's handle: same rank, no profiler
	file *SharedFile

	// prof records PARIO_WB_* spans for the client-side operations on the
	// owning rank's track (SetProfiler); nil records nothing.
	prof *prof.Track

	pageBytes int64
	subBytes  int64

	// First stage: one sub-buffer per destination rank, holding flattened
	// (page, inPage, n, payload) records.
	pending      [][]float64
	pendingBytes []int64

	// Second stage: pages this rank owns (page % size == rank).
	pageMu sync.Mutex
	pages  map[int64][]byte
	dirty  map[int64]int64 // high-water marks

	serverDone chan struct{}
	// Stats (owned by the client goroutine, like Write/Close).
	Flushes, LocalAppends int
	flushNs               int64 // cumulative first-stage flush latency
}

// QueueBytes returns the current first-stage queue depth: bytes buffered
// locally that have not yet been shipped to their page owners.
func (cl *WriteBehindClient) QueueBytes() int64 {
	var total int64
	for _, b := range cl.pendingBytes {
		total += b
	}
	return total
}

// Stats snapshots the write-behind telemetry in the observability layer's
// schema. Like Write it must be called by the owning rank's goroutine.
func (cl *WriteBehindClient) Stats() obs.ParioStats {
	return obs.ParioStats{
		WBQueueBytes:  cl.QueueBytes(),
		WBFlushes:     int64(cl.Flushes),
		WBFlushSec:    float64(cl.flushNs) / 1e9,
		WBLocalWrites: int64(cl.LocalAppends),
	}
}

// NewWriteBehindClient opens the layer collectively over file. The §5.2
// defaults are a 64 kB sub-buffer and stripe-sized pages; zeros select
// pageBytes = 512 kB and subBytes = 64 kB.
func NewWriteBehindClient(c *comm.Comm, file *SharedFile, pageBytes, subBytes int64) *WriteBehindClient {
	if pageBytes <= 0 {
		pageBytes = 512 << 10
	}
	if subBytes <= 0 {
		subBytes = 64 << 10
	}
	cl := &WriteBehindClient{
		c:            c,
		sc:           c.WithoutProfiler(),
		file:         file,
		pageBytes:    pageBytes,
		subBytes:     subBytes,
		pending:      make([][]float64, c.Size()),
		pendingBytes: make([]int64, c.Size()),
		pages:        map[int64][]byte{},
		dirty:        map[int64]int64{},
		serverDone:   make(chan struct{}),
	}
	go cl.serve()
	c.Barrier()
	return cl
}

// SetProfiler records the client-side write-behind operations
// (PARIO_WB_WRITE, PARIO_WB_FLUSH) as spans on the owning rank's track;
// the I/O thread keeps using an unprofiled communicator handle.
func (cl *WriteBehindClient) SetProfiler(tr *prof.Track) { cl.prof = tr }

// owner returns the rank owning a page ("page i resides on the process of
// rank (i mod nproc)", §5.2).
func (cl *WriteBehindClient) owner(page int64) int { return int(page) % cl.c.Size() }

// Write appends data at the canonical offset to the first-stage buffers.
func (cl *WriteBehindClient) Write(off int64, data []byte) error {
	sp := cl.prof.Begin("PARIO_WB_WRITE")
	defer sp.End()
	if off < 0 || off+int64(len(data)) > cl.file.Size() {
		return fmt.Errorf("pario: write-behind write [%d, %d) outside file",
			off, off+int64(len(data)))
	}
	pos := int64(0)
	for pos < int64(len(data)) {
		page := (off + pos) / cl.pageBytes
		inPage := (off + pos) % cl.pageBytes
		n := min64(int64(len(data))-pos, cl.pageBytes-inPage)
		d := cl.owner(page)
		if d == cl.c.Rank() {
			// Local second-stage page: apply directly (a memcpy).
			cl.apply(page, inPage, data[pos:pos+n])
			cl.LocalAppends++
		} else {
			rec := make([]float64, 3+n)
			rec[0], rec[1], rec[2] = float64(page), float64(inPage), float64(n)
			for i := int64(0); i < n; i++ {
				rec[3+i] = float64(data[pos+i])
			}
			cl.pending[d] = append(cl.pending[d], rec...)
			cl.pendingBytes[d] += n
			if cl.pendingBytes[d] >= cl.subBytes {
				cl.flush(d)
			}
		}
		pos += n
	}
	return nil
}

// flush ships one destination's sub-buffer to its owner, recording the
// round-trip latency (send until the owner's ack).
func (cl *WriteBehindClient) flush(d int) {
	if len(cl.pending[d]) == 0 {
		return
	}
	start := time.Now()
	cl.c.Send(d, tagWBFlush, cl.pending[d])
	ack := make([]float64, 1)
	cl.c.Recv(d, tagWBFlushAck, ack)
	cl.flushNs += time.Since(start).Nanoseconds()
	cl.pending[d] = nil
	cl.pendingBytes[d] = 0
	cl.Flushes++
}

// apply copies a record into an owned second-stage page.
func (cl *WriteBehindClient) apply(page, inPage int64, data []byte) {
	cl.pageMu.Lock()
	defer cl.pageMu.Unlock()
	p := cl.pages[page]
	if p == nil {
		size := min64(cl.pageBytes, cl.file.Size()-page*cl.pageBytes)
		p = make([]byte, size)
		cl.pages[page] = p
	}
	copy(p[inPage:], data)
	if hw := inPage + int64(len(data)); hw > cl.dirty[page] {
		cl.dirty[page] = hw
	}
}

// Close drains the first stage, flushes owned pages and stops the server.
// Collective.
func (cl *WriteBehindClient) Close() {
	sp := cl.prof.Begin("PARIO_WB_FLUSH")
	defer sp.End()
	// Drain our first-stage buffers ("at file close, all dirty buffers are
	// flushed").
	for d := range cl.pending {
		cl.flush(d)
	}
	// All ranks must have drained before owners flush pages.
	cl.c.Barrier()
	cl.pageMu.Lock()
	for page, data := range cl.pages {
		if hw := cl.dirty[page]; hw > 0 {
			cl.file.writeAt(page*cl.pageBytes, data[:hw])
		}
	}
	cl.pageMu.Unlock()
	cl.c.Barrier()
	cl.c.Send(cl.c.Rank(), tagWBShutdown, []float64{0})
	<-cl.serverDone
	cl.c.Barrier()
}

// serve is the I/O thread handling incoming sub-buffer flushes: "once an
// I/O thread is created, it enters an infinite loop to serve both local and
// remote write requests until it is signaled to terminate" (§5.2).
func (cl *WriteBehindClient) serve() {
	defer close(cl.serverDone)
	buf := make([]byte, 0, cl.subBytes)
	for {
		src, tag, msg := cl.sc.RecvAny([]int{tagWBFlush, tagWBShutdown})
		if tag == tagWBShutdown {
			return
		}
		// Parse the flattened records and apply each to its page.
		pos := 0
		for pos < len(msg) {
			page := int64(msg[pos])
			inPage := int64(msg[pos+1])
			n := int64(msg[pos+2])
			pos += 3
			buf = buf[:0]
			for i := int64(0); i < n; i++ {
				buf = append(buf, byte(msg[pos]))
				pos++
			}
			cl.apply(page, inPage, buf)
		}
		cl.sc.Send(src, tagWBFlushAck, []float64{1})
	}
}
