package pario

import (
	"testing"
)

// testKernel is a small but non-trivial pattern: 3-D process grid, rows
// that do not align with pages.
func testKernel() Kernel { return Kernel{NxP: 6, NyP: 5, NzP: 4, Px: 2, Py: 2, Pz: 2} }

func TestKernelSizes(t *testing.T) {
	k := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 2, Py: 2, Pz: 2}
	// §5.3: "about 15.26 MB of write data per process per checkpoint".
	got := float64(k.BytesPerProc()) / (1 << 20)
	if got < 15.2 || got > 15.3 {
		t.Fatalf("bytes per proc = %.3f MiB, want ≈ 15.26", got)
	}
	if k.FileBytes() != k.BytesPerProc()*8 {
		t.Fatalf("file size inconsistent")
	}
}

func TestRunsCoverFileExactlyOnce(t *testing.T) {
	k := testKernel()
	covered := make([]int, k.FileBytes()/wordBytes)
	for p := 0; p < k.NumProcs(); p++ {
		for _, r := range k.Runs(p) {
			if r.Offset%wordBytes != 0 || r.Bytes%wordBytes != 0 {
				t.Fatalf("unaligned run %+v", r)
			}
			for c := 0; c < r.Count; c++ {
				off := (r.Offset + int64(c)*r.Stride) / wordBytes
				for w := int64(0); w < r.Bytes/wordBytes; w++ {
					covered[off+w]++
				}
			}
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Fatalf("word %d covered %d times", i, n)
		}
	}
}

func TestRequestCount(t *testing.T) {
	k := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 2, Py: 2, Pz: 2}
	// Rows per proc: (11+3+1+1)·50·50 = 40000 — the §5.3 request blow-up.
	if got := k.RequestCount(0); got != 40000 {
		t.Fatalf("requests = %d, want 40000", got)
	}
}

func TestCanonicalImageIdenticalAcrossMethods(t *testing.T) {
	k := testKernel()
	// Page smaller than a z-plane so pages are genuinely shared; sub-buffer
	// small enough to force multiple flushes.
	if err := k.VerifyImages(256, 128); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalImageLargerPages(t *testing.T) {
	k := Kernel{NxP: 10, NyP: 6, NzP: 3, Px: 2, Py: 1, Pz: 2}
	if err := k.VerifyImages(4096, 1024); err != nil {
		t.Fatal(err)
	}
}

func TestFillPatternMatchesDirect(t *testing.T) {
	k := testKernel()
	img := make([]byte, k.FileBytes())
	var total int64
	for p := 0; p < k.NumProcs(); p++ {
		total += k.FillPattern(p, img)
	}
	if total != k.FileBytes() {
		t.Fatalf("filled %d bytes, want %d", total, k.FileBytes())
	}
	ref := k.MaterializeDirect()
	for i := range img {
		if img[i] != ref[i] {
			t.Fatalf("FillPattern diverges at %d", i)
		}
	}
}

func TestAlignedPagesHaveNoConflicts(t *testing.T) {
	// The §5.3 claim: aligning writes with lock boundaries removes false
	// sharing. Aligned whole-page writes from distinct owners must beat the
	// same bytes written as unaligned overlapping-stripe ranges.
	fs := Lustre()
	const np = 8
	pageB := fs.StripeBytes
	fileBytes := pageB * 64
	aligned := make([][]Run, np)
	for pg := int64(0); pg < 64; pg++ {
		p := int(pg) % np
		aligned[p] = append(aligned[p], Run{Offset: pg * pageB, Bytes: pageB, Count: 1})
	}
	tAligned := fs.SharedWriteTime(aligned, fileBytes)

	unaligned := make([][]Run, np)
	chunk := fileBytes / np
	for p := 0; p < np; p++ {
		// Shift by half a stripe so every boundary stripe is shared.
		off := int64(p)*chunk + pageB/2
		if p == 0 {
			off = 0
		}
		end := int64(p+1)*chunk + pageB/2
		if p == np-1 {
			end = fileBytes
		}
		unaligned[p] = []Run{{Offset: off, Bytes: end - off, Count: 1}}
	}
	tUnaligned := fs.SharedWriteTime(unaligned, fileBytes)
	if tAligned >= tUnaligned {
		t.Fatalf("aligned %g s not faster than unaligned %g s", tAligned, tUnaligned)
	}
}

func TestFig9Orderings(t *testing.T) {
	// The qualitative results of figure 9 and §5.3, per file system.
	k := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 4, Pz: 2} // 32 procs
	net := GigE()
	const ckpts = 10
	run := func(fs *FS, m Method) Result { return m.Simulate(k, fs, net, ckpts) }

	lustre := Lustre()
	gpfs := GPFS()

	lFortran := run(lustre, FortranIO{})
	lColl := run(lustre, NativeCollective{})
	lCache := run(lustre, MPIIOCaching{})
	lWB := run(lustre, TwoStageWriteBehind{})
	lInd := run(lustre, NativeIndependent{})

	// "Fortran I/O has significantly better performance than the others
	// cases on Lustre."
	if !(lFortran.BandwidthMBs > lColl.BandwidthMBs &&
		lFortran.BandwidthMBs > lCache.BandwidthMBs &&
		lFortran.BandwidthMBs > lWB.BandwidthMBs) {
		t.Fatalf("Lustre: Fortran not fastest: F=%.0f C=%.0f Ca=%.0f WB=%.0f",
			lFortran.BandwidthMBs, lColl.BandwidthMBs, lCache.BandwidthMBs, lWB.BandwidthMBs)
	}
	// "MPI-I/O caching outperforms the native collective I/O on both."
	if lCache.BandwidthMBs <= lColl.BandwidthMBs {
		t.Fatalf("Lustre: caching %.0f not above native collective %.0f",
			lCache.BandwidthMBs, lColl.BandwidthMBs)
	}
	// "[write-behind] outperforms the MPI-I/O caching on Lustre."
	if lWB.BandwidthMBs <= lCache.BandwidthMBs {
		t.Fatalf("Lustre: write-behind %.0f not above caching %.0f",
			lWB.BandwidthMBs, lCache.BandwidthMBs)
	}
	// "using independent I/O natively ... less than 5 MB per second."
	if lInd.BandwidthMBs >= 8 {
		t.Fatalf("Lustre: independent I/O too fast: %.1f MB/s", lInd.BandwidthMBs)
	}

	gColl := run(gpfs, NativeCollective{})
	gCache := run(gpfs, MPIIOCaching{})
	gWB := run(gpfs, TwoStageWriteBehind{})
	// Caching beats native collective on GPFS too.
	if gCache.BandwidthMBs <= gColl.BandwidthMBs {
		t.Fatalf("GPFS: caching %.0f not above native collective %.0f",
			gCache.BandwidthMBs, gColl.BandwidthMBs)
	}
	// "[write-behind] is worse than the native collective I/O on GPFS."
	if gWB.BandwidthMBs >= gColl.BandwidthMBs {
		t.Fatalf("GPFS: write-behind %.0f not below native collective %.0f",
			gWB.BandwidthMBs, gColl.BandwidthMBs)
	}
}

func TestGPFSOpenCostsDominateAtScale(t *testing.T) {
	// Figure 9 right panel: Fortran file-per-process opens grow dramatically
	// on GPFS with process count, much less on Lustre.
	net := GigE()
	small := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 2, Py: 2, Pz: 2} // 8
	large := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 8, Py: 4, Pz: 4} // 128
	gSmall := FortranIO{}.Simulate(small, GPFS(), net, 10)
	gLarge := FortranIO{}.Simulate(large, GPFS(), net, 10)
	lSmall := FortranIO{}.Simulate(small, Lustre(), net, 10)
	lLarge := FortranIO{}.Simulate(large, Lustre(), net, 10)
	gGrowth := gLarge.OpenTime / gSmall.OpenTime
	lGrowth := lLarge.OpenTime / lSmall.OpenTime
	if gGrowth <= lGrowth {
		t.Fatalf("GPFS open growth %.1f not above Lustre %.1f", gGrowth, lGrowth)
	}
	// At 128 processes GPFS opens are a visible fraction of the run.
	if gLarge.OpenTime < 10*lLarge.OpenTime {
		t.Fatalf("GPFS opens %.2fs vs Lustre %.2fs — expected ≫", gLarge.OpenTime, lLarge.OpenTime)
	}
}

func TestBandwidthScalesWithProcs(t *testing.T) {
	// Aggregate I/O grows with process count for the scalable paths
	// (figure 9 shows rising curves for write-behind on Lustre).
	net := GigE()
	k8 := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 2, Py: 2, Pz: 2}
	k64 := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 4, Pz: 4}
	b8 := TwoStageWriteBehind{}.Simulate(k8, Lustre(), net, 10)
	b64 := TwoStageWriteBehind{}.Simulate(k64, Lustre(), net, 10)
	if b64.BandwidthMBs <= b8.BandwidthMBs {
		t.Fatalf("write-behind bandwidth not scaling: %.0f → %.0f MB/s",
			b8.BandwidthMBs, b64.BandwidthMBs)
	}
}

func BenchmarkSimulateFig9Point(b *testing.B) {
	k := Kernel{NxP: 50, NyP: 50, NzP: 50, Px: 4, Py: 4, Pz: 2}
	net := GigE()
	fs := Lustre()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MPIIOCaching{}.Simulate(k, fs, net, 10)
	}
}
