package pario

// This file implements the MPI-I/O caching layer of paper §5.1 as a real
// concurrent protocol (not just the analytic performance model): every MPI
// process runs an I/O thread; a file is divided into equally sized pages;
// cache metadata is statically distributed round-robin over the processes;
// metadata locks are acquired by message exchange with the metadata owner;
// a page is cached by the first process that touches it; remote requests
// are forwarded to the page owner; eviction is local-LRU under a byte
// bound; and closing the file flushes dirty pages up to their high-water
// marks. Figure 6's read flow (metadata lookup → cache locally on miss /
// forward to owner on hit) is implemented literally.

import (
	"fmt"
	"sync"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/prof"
)

// SharedFile is the in-memory stand-in for the parallel file system file
// that the caching layer sits in front of. Reads and writes lock per call,
// modelling the sector-atomicity the file system enforces.
type SharedFile struct {
	mu   sync.Mutex
	data []byte
	// reads/writes count file-system accesses (the quantity caching is
	// meant to reduce).
	reads, writes int
}

// NewSharedFile creates a zero-filled file of the given size.
func NewSharedFile(size int64) *SharedFile {
	return &SharedFile{data: make([]byte, size)}
}

// Size returns the file size.
func (f *SharedFile) Size() int64 { return int64(len(f.data)) }

// Bytes returns the file image (call after all clients closed).
func (f *SharedFile) Bytes() []byte { return f.data }

// Accesses reports the number of read and write calls that reached the
// file system.
func (f *SharedFile) Accesses() (reads, writes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.writes
}

func (f *SharedFile) readAt(off int64, buf []byte) {
	f.mu.Lock()
	copy(buf, f.data[off:])
	f.reads++
	f.mu.Unlock()
}

func (f *SharedFile) writeAt(off int64, buf []byte) {
	f.mu.Lock()
	copy(f.data[off:], buf)
	f.writes++
	f.mu.Unlock()
}

// Cache message tags. Each rank's I/O "thread" serves requests with tagged
// request/response exchanges over the comm runtime.
const (
	tagMetaLock  = 9000 // request metadata: returns owner (or claims it)
	tagMetaReply = 9001
	tagPageWrite = 9002 // forward data to the page owner
	tagPageAck   = 9003
	tagPageRead  = 9004 // fetch data from the page owner
	tagPageData  = 9005
	tagShutdown  = 9006
)

// CacheConfig tunes the layer; zero values select the §5.1 defaults.
type CacheConfig struct {
	PageBytes int64 // default: 512 kB ("the file system block size")
	MaxBytes  int64 // local cache bound; default 32 MB ("by default 32 MB")
}

func (c CacheConfig) pageBytes() int64 {
	if c.PageBytes > 0 {
		return c.PageBytes
	}
	return 512 << 10
}

func (c CacheConfig) maxBytes() int64 {
	if c.MaxBytes > 0 {
		return c.MaxBytes
	}
	return 32 << 20
}

// cachedPage is one locally cached page with its dirty high-water mark.
type cachedPage struct {
	data  []byte
	dirty int64 // bytes [0, dirty) are dirty (§5.1's high water mark)
	// LRU bookkeeping.
	prev, next int64
	resident   bool
}

// CacheClient is one rank's view of the caching layer. It must be used by
// that rank's goroutine only; the embedded I/O thread (server goroutine)
// handles remote requests concurrently, as in the paper's design.
type CacheClient struct {
	cfg  CacheConfig
	c    *comm.Comm
	sc   *comm.Comm // the server goroutine's handle: same rank, no profiler
	file *SharedFile

	// prof records PARIO_* spans for the client-side operations on the
	// owning rank's track (SetProfiler); nil records nothing.
	prof *prof.Track

	// Metadata shard owned by this rank: pageIndex → owner rank (-1 if the
	// page is not cached anywhere yet). Guarded by metaMu because both the
	// local client path and the server goroutine touch it.
	metaMu sync.Mutex
	meta   map[int64]int

	// Local page cache (client-side only; the server goroutine accesses it
	// under pageMu when serving remote reads/writes).
	pageMu    sync.Mutex
	pages     map[int64]*cachedPage
	residency int64 // bytes currently cached
	lruHead   int64 // most recent
	lruTail   int64 // least recent
	hasLRU    bool

	serverDone chan struct{}
	// Stats. LocalHits/RemoteForwards count client-side operations (owned by
	// the client goroutine); accesses/Misses/Evictions are updated under
	// pageMu because the server goroutine also touches pages.
	LocalHits, RemoteForwards, Evictions int
	Misses                               int // page loads from the file system
	accesses                             int // page-cache accesses (local + served)
}

// Stats snapshots the cache telemetry in the observability layer's schema.
// Like Read/Write it must be called by the owning rank's goroutine.
func (cl *CacheClient) Stats() obs.ParioStats {
	cl.pageMu.Lock()
	s := obs.ParioStats{
		CacheAccesses:  int64(cl.accesses),
		CacheMisses:    int64(cl.Misses),
		CacheEvictions: int64(cl.Evictions),
		RemoteForwards: int64(cl.RemoteForwards),
	}
	cl.pageMu.Unlock()
	s.CacheHitRate = s.HitRate()
	return s
}

// NewCacheClient attaches a rank to the caching layer over file. All ranks
// of the communicator must create their client before any does I/O
// (mirroring the collective MPI_File_open).
func NewCacheClient(c *comm.Comm, file *SharedFile, cfg CacheConfig) *CacheClient {
	cl := &CacheClient{
		cfg:        cfg,
		c:          c,
		sc:         c.WithoutProfiler(),
		file:       file,
		meta:       map[int64]int{},
		pages:      map[int64]*cachedPage{},
		serverDone: make(chan struct{}),
	}
	go cl.serve()
	c.Barrier()
	return cl
}

// SetProfiler records the client-side cache operations (PARIO_READ,
// PARIO_WRITE, PARIO_FLUSH) as spans on the owning rank's track. The
// embedded I/O thread keeps using an unprofiled communicator handle: it
// runs concurrently with the rank's call stack and must not touch it.
func (cl *CacheClient) SetProfiler(tr *prof.Track) { cl.prof = tr }

// metaOwner returns the rank holding the metadata of a page (round-robin,
// "statically distributed ... among the MPI processes", §5.1).
func (cl *CacheClient) metaOwner(page int64) int {
	return int(page) % cl.c.Size()
}

// pageOf returns the page index and offset-within-page.
func (cl *CacheClient) pageOf(off int64) (int64, int64) {
	pb := cl.cfg.pageBytes()
	return off / pb, off % pb
}

// lookupOwner queries (and atomically claims, if unowned) the page's owner
// through its metadata owner. Claiming implements "the requesting process
// will try to cache the page locally" for first touch.
func (cl *CacheClient) lookupOwner(page int64) int {
	mo := cl.metaOwner(page)
	if mo == cl.c.Rank() {
		cl.metaMu.Lock()
		owner, ok := cl.meta[page]
		if !ok {
			owner = cl.c.Rank()
			cl.meta[page] = owner
		}
		cl.metaMu.Unlock()
		return owner
	}
	// Remote metadata: request [page, claimant]; reply [owner].
	cl.c.Send(mo, tagMetaLock, []float64{float64(page), float64(cl.c.Rank())})
	reply := make([]float64, 1)
	cl.c.Recv(mo, tagMetaReply, reply)
	return int(reply[0])
}

// Write writes buf at the canonical offset through the cache.
func (cl *CacheClient) Write(off int64, buf []byte) error {
	sp := cl.prof.Begin("PARIO_WRITE")
	defer sp.End()
	if off < 0 || off+int64(len(buf)) > cl.file.Size() {
		return fmt.Errorf("pario: cache write [%d, %d) outside file of %d bytes",
			off, off+int64(len(buf)), cl.file.Size())
	}
	pb := cl.cfg.pageBytes()
	pos := int64(0)
	for pos < int64(len(buf)) {
		page, inPage := cl.pageOf(off + pos)
		n := min64(int64(len(buf))-pos, pb-inPage)
		owner := cl.lookupOwner(page)
		if owner == cl.c.Rank() {
			cl.writeLocal(page, inPage, buf[pos:pos+n])
			cl.LocalHits++
		} else {
			// Forward to the owner: [page, inPage, n, payload...].
			msg := make([]float64, 3+n)
			msg[0], msg[1], msg[2] = float64(page), float64(inPage), float64(n)
			for i := int64(0); i < n; i++ {
				msg[3+i] = float64(buf[pos+i])
			}
			cl.c.Send(owner, tagPageWrite, msg)
			ack := make([]float64, 1)
			cl.c.Recv(owner, tagPageAck, ack)
			cl.RemoteForwards++
		}
		pos += n
	}
	return nil
}

// Read reads into buf from the canonical offset through the cache
// (figure 6's flow: metadata lookup, then local caching or forward to the
// remote owner).
func (cl *CacheClient) Read(off int64, buf []byte) error {
	sp := cl.prof.Begin("PARIO_READ")
	defer sp.End()
	if off < 0 || off+int64(len(buf)) > cl.file.Size() {
		return fmt.Errorf("pario: cache read [%d, %d) outside file", off, off+int64(len(buf)))
	}
	pb := cl.cfg.pageBytes()
	pos := int64(0)
	for pos < int64(len(buf)) {
		page, inPage := cl.pageOf(off + pos)
		n := min64(int64(len(buf))-pos, pb-inPage)
		owner := cl.lookupOwner(page)
		if owner == cl.c.Rank() {
			cl.readLocal(page, inPage, buf[pos:pos+n])
			cl.LocalHits++
		} else {
			cl.c.Send(owner, tagPageRead, []float64{float64(page), float64(inPage), float64(n)})
			data := make([]float64, n)
			cl.c.Recv(owner, tagPageData, data)
			for i := int64(0); i < n; i++ {
				buf[pos+i] = byte(data[i])
			}
			cl.RemoteForwards++
		}
		pos += n
	}
	return nil
}

// writeLocal stores into the locally owned page, loading it on first touch
// ("by reading the necessary part of the page if it is a write operation" —
// we load the prefix so the high-water flush is correct).
func (cl *CacheClient) writeLocal(page, inPage int64, data []byte) {
	cl.pageMu.Lock()
	defer cl.pageMu.Unlock()
	p := cl.ensurePageLocked(page)
	copy(p.data[inPage:], data)
	if hw := inPage + int64(len(data)); hw > p.dirty {
		p.dirty = hw
	}
	cl.touchLocked(page)
}

func (cl *CacheClient) readLocal(page, inPage int64, buf []byte) {
	cl.pageMu.Lock()
	defer cl.pageMu.Unlock()
	p := cl.ensurePageLocked(page)
	copy(buf, p.data[inPage:inPage+int64(len(buf))])
	cl.touchLocked(page)
}

// ensurePageLocked returns the resident page, loading from the file system
// (and evicting LRU pages past the bound) as needed. pageMu must be held.
func (cl *CacheClient) ensurePageLocked(page int64) *cachedPage {
	cl.accesses++
	if p, ok := cl.pages[page]; ok {
		return p
	}
	cl.Misses++
	pb := cl.cfg.pageBytes()
	size := min64(pb, cl.file.Size()-page*pb)
	// Under memory pressure, evict least-recently-used local pages first
	// ("Eviction is solely based on only local references and a
	// least-recent-used policy", §5.1).
	for cl.residency+size > cl.cfg.maxBytes() && cl.hasLRU {
		cl.evictLocked(cl.lruTail)
	}
	p := &cachedPage{data: make([]byte, size)}
	cl.file.readAt(page*pb, p.data)
	cl.pages[page] = p
	cl.residency += size
	cl.lruInsertLocked(page)
	return p
}

// evictLocked flushes a dirty page and drops it.
func (cl *CacheClient) evictLocked(page int64) {
	p := cl.pages[page]
	if p == nil {
		return
	}
	if p.dirty > 0 {
		cl.file.writeAt(page*cl.cfg.pageBytes(), p.data[:p.dirty])
	}
	cl.lruRemoveLocked(page)
	cl.residency -= int64(len(p.data))
	delete(cl.pages, page)
	cl.Evictions++
}

// Close flushes all dirty pages and stops the I/O thread. All ranks must
// call Close collectively; the file image is complete afterwards.
func (cl *CacheClient) Close() {
	sp := cl.prof.Begin("PARIO_FLUSH")
	defer sp.End()
	// Quiesce first: once every client has entered Close, no further remote
	// writes can be in flight (each Write completed its ack), so the local
	// flush below cannot lose late-arriving dirty data.
	cl.c.Barrier()
	cl.pageMu.Lock()
	for page, p := range cl.pages {
		if p.dirty > 0 {
			cl.file.writeAt(page*cl.cfg.pageBytes(), p.data[:p.dirty])
			p.dirty = 0
		}
	}
	cl.pageMu.Unlock()
	// Wait for every rank to flush before tearing down servers.
	cl.c.Barrier()
	// Unblock our own server with a shutdown message.
	cl.c.Send(cl.c.Rank(), tagShutdown, []float64{0})
	<-cl.serverDone
	cl.c.Barrier()
}

// serve is the I/O thread: it handles metadata lookups and remote page
// reads/writes "running in the background [so] the program main thread can
// continue without interruption" (§5.1).
func (cl *CacheClient) serve() {
	defer close(cl.serverDone)
	for {
		src, tag, msg := cl.recvAny()
		switch tag {
		case tagShutdown:
			return
		case tagMetaLock:
			page := int64(msg[0])
			claimant := int(msg[1])
			cl.metaMu.Lock()
			owner, ok := cl.meta[page]
			if !ok {
				owner = claimant
				cl.meta[page] = owner
			}
			cl.metaMu.Unlock()
			cl.sc.Send(src, tagMetaReply, []float64{float64(owner)})
		case tagPageWrite:
			page, inPage, n := int64(msg[0]), int64(msg[1]), int64(msg[2])
			data := make([]byte, n)
			for i := int64(0); i < n; i++ {
				data[i] = byte(msg[3+i])
			}
			cl.writeLocal(page, inPage, data)
			cl.sc.Send(src, tagPageAck, []float64{1})
		case tagPageRead:
			page, inPage, n := int64(msg[0]), int64(msg[1]), int64(msg[2])
			buf := make([]byte, n)
			cl.readLocal(page, inPage, buf)
			out := make([]float64, n)
			for i := int64(0); i < n; i++ {
				out[i] = float64(buf[i])
			}
			cl.sc.Send(src, tagPageData, out)
		}
	}
}

// recvAny blocks for the next server-bound message of any known tag from
// any rank. The comm runtime matches on explicit (src, tag), so the server
// polls a wildcard receive implemented via TryRecv semantics.
func (cl *CacheClient) recvAny() (src, tag int, msg []float64) {
	return cl.sc.RecvAny([]int{tagMetaLock, tagPageWrite, tagPageRead, tagShutdown})
}

// --- LRU list (intrusive on page indices) ---

func (cl *CacheClient) lruInsertLocked(page int64) {
	p := cl.pages[page]
	p.resident = true
	if !cl.hasLRU {
		cl.lruHead, cl.lruTail = page, page
		p.prev, p.next = -1, -1
		cl.hasLRU = true
		return
	}
	head := cl.pages[cl.lruHead]
	head.prev = page
	p.next = cl.lruHead
	p.prev = -1
	cl.lruHead = page
}

func (cl *CacheClient) lruRemoveLocked(page int64) {
	p := cl.pages[page]
	if p.prev >= 0 {
		cl.pages[p.prev].next = p.next
	} else {
		cl.lruHead = p.next
	}
	if p.next >= 0 {
		cl.pages[p.next].prev = p.prev
	} else {
		cl.lruTail = p.prev
	}
	if cl.lruHead < 0 {
		cl.hasLRU = false
	}
	p.resident = false
}

func (cl *CacheClient) touchLocked(page int64) {
	if cl.lruHead == page {
		return
	}
	cl.lruRemoveLocked(page)
	if !cl.hasLRU {
		cl.lruHead, cl.lruTail = page, page
		p := cl.pages[page]
		p.prev, p.next = -1, -1
		p.resident = true
		cl.hasLRU = true
		return
	}
	cl.lruInsertLocked(page)
}
