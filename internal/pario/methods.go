package pario

import "math"

// Net models the inter-process message network. The paper's experiments ran
// thread-safe MPICH2 over its default sock channel, "restricting
// inter-process communication ... to the slower Gigabit Ethernet" (§5.3) —
// the reason data redistribution shows up at all in figure 9.
type Net struct {
	Latency float64 // per message (s)
	BW      float64 // bytes/s per process
}

// GigE returns the Gigabit Ethernet model of §5.3.
func GigE() Net { return Net{Latency: 80e-6, BW: 110e6} }

// msgTime returns the cost of moving n messages totalling b bytes.
func (n Net) msgTime(msgs int, b int64) float64 {
	return float64(msgs)*n.Latency + float64(b)/n.BW
}

// Result is one method's simulated S3D-I/O benchmark outcome.
type Result struct {
	Method       string
	FS           string
	Procs        int
	OpenTime     float64 // total over all checkpoints (s)
	CommTime     float64
	WriteTime    float64
	TotalBytes   int64
	BandwidthMBs float64 // figure 9 left panels
}

func (r *Result) finalize() {
	t := r.OpenTime + r.CommTime + r.WriteTime
	if t > 0 {
		r.BandwidthMBs = float64(r.TotalBytes) / t / 1e6
	}
}

// Method is one of the figure-9 write paths.
type Method interface {
	Name() string
	Simulate(k Kernel, fs *FS, net Net, checkpoints int) Result
}

// FortranIO is the original S3D path: "each process writes its sub-arrays
// to a new, separate file at each checkpoint" using Fortran I/O.
type FortranIO struct{}

// Name implements Method.
func (FortranIO) Name() string { return "fortran" }

// Simulate implements Method.
func (FortranIO) Simulate(k Kernel, fs *FS, net Net, checkpoints int) Result {
	np := k.NumProcs()
	r := Result{Method: "fortran", FS: fs.Name, Procs: np}
	r.TotalBytes = k.FileBytes() * int64(checkpoints)
	// One new file per process per checkpoint.
	r.OpenTime = float64(checkpoints) * fs.OpenTime(np, np)
	// Local data is contiguous per array: four sequential writes.
	r.WriteTime = float64(checkpoints) * fs.PerProcessWriteTime(np, k.BytesPerProc(), len(arrayComps))
	r.finalize()
	return r
}

// NativeCollective is MPI_File_write_all through two-phase I/O: data is
// redistributed so each process writes one contiguous, but generally
// unaligned, partition of the shared file.
type NativeCollective struct{}

// Name implements Method.
func (NativeCollective) Name() string { return "collective" }

// Simulate implements Method.
func (NativeCollective) Simulate(k Kernel, fs *FS, net Net, checkpoints int) Result {
	np := k.NumProcs()
	r := Result{Method: "collective", FS: fs.Name, Procs: np}
	fileBytes := k.FileBytes()
	r.TotalBytes = fileBytes * int64(checkpoints)
	r.OpenTime = float64(checkpoints) * fs.OpenTime(1, np)

	// Two-phase exchange: each rank keeps ~1/np of its data and ships the
	// rest; messages go to every aggregator whose range it intersects.
	bytesOut := k.BytesPerProc() * int64(np-1) / int64(np)
	msgs := np - 1
	if msgs > 64 {
		msgs = 64 // ROMIO batches aggregator traffic
	}
	r.CommTime = float64(checkpoints) * net.msgTime(msgs, bytesOut)

	// File-domain partitioning: contiguous equal ranges, unaligned to the
	// 512 kB stripes, so neighbouring aggregators falsely share boundary
	// stripes.
	chunk := fileBytes / int64(np)
	perProc := make([][]Run, np)
	for p := 0; p < np; p++ {
		perProc[p] = []Run{{Offset: int64(p) * chunk, Bytes: chunk, Stride: 0, Count: 1}}
	}
	r.WriteTime = float64(checkpoints) * fs.SharedWriteTime(perProc, fileBytes)
	r.finalize()
	return r
}

// NativeIndependent issues every request of the canonical pattern directly
// (the path §5.3 reports at under 5 MB/s).
type NativeIndependent struct{}

// Name implements Method.
func (NativeIndependent) Name() string { return "independent" }

// Simulate implements Method.
func (NativeIndependent) Simulate(k Kernel, fs *FS, net Net, checkpoints int) Result {
	np := k.NumProcs()
	r := Result{Method: "independent", FS: fs.Name, Procs: np}
	r.TotalBytes = k.FileBytes() * int64(checkpoints)
	r.OpenTime = float64(checkpoints) * fs.OpenTime(1, np)
	perProc := make([][]Run, np)
	for p := 0; p < np; p++ {
		perProc[p] = k.Runs(p)
	}
	// Every request goes through an independent write call.
	r.WriteTime = float64(checkpoints) * (fs.SharedWriteTime(perProc, k.FileBytes()) +
		float64(k.RequestCount(0))*fs.IndepReqCost)
	r.finalize()
	return r
}

// pageInfo aggregates per-page activity of the canonical pattern.
type pageInfo struct {
	bytesByProc map[int]int64
	firstProc   int   // process with the lowest offset into the page
	firstOffset int64 // that offset
}

// pageMap distributes the pattern over aligned pages of the given size.
func pageMap(k Kernel, pageBytes int64) []pageInfo {
	np := k.NumProcs()
	n := int((k.FileBytes() + pageBytes - 1) / pageBytes)
	pages := make([]pageInfo, n)
	for i := range pages {
		pages[i].firstProc = -1
	}
	for p := 0; p < np; p++ {
		for _, r := range k.Runs(p) {
			for c := 0; c < r.Count; c++ {
				off := r.Offset + int64(c)*r.Stride
				end := off + r.Bytes
				for pg := off / pageBytes; pg <= (end-1)/pageBytes; pg++ {
					lo := max64(off, pg*pageBytes)
					hi := min64(end, (pg+1)*pageBytes)
					info := &pages[pg]
					if info.bytesByProc == nil {
						info.bytesByProc = map[int]int64{}
					}
					info.bytesByProc[p] += hi - lo
					if info.firstProc < 0 || lo < info.firstOffset {
						info.firstProc = p
						info.firstOffset = lo
					}
				}
			}
		}
	}
	return pages
}

// MPIIOCaching is collective I/O through the MPI-I/O caching layer of §5.1:
// the file is divided into pages (default: the stripe size, aligning all
// flushes with lock boundaries); a page is cached by the first process that
// touches it; distributed metadata locks guard every page access; remote
// touches ship data to the page owner.
type MPIIOCaching struct{}

// Name implements Method.
func (MPIIOCaching) Name() string { return "caching" }

// Simulate implements Method.
func (MPIIOCaching) Simulate(k Kernel, fs *FS, net Net, checkpoints int) Result {
	np := k.NumProcs()
	r := Result{Method: "caching", FS: fs.Name, Procs: np}
	r.TotalBytes = k.FileBytes() * int64(checkpoints)
	r.OpenTime = float64(checkpoints) * fs.OpenTime(1, np)

	pages := pageMap(k, fs.StripeBytes)
	// Per-process communication: metadata lock round trips for every page
	// the process touches (two small messages to the round-robin metadata
	// owner), plus data shipped to pages owned elsewhere.
	commPerProc := make([]float64, np)
	ownedPages := make([]int64, np)
	for _, pg := range pages {
		if pg.firstProc < 0 {
			continue
		}
		ownedPages[pg.firstProc]++
		for p, b := range pg.bytesByProc {
			commPerProc[p] += net.msgTime(2, 0) // metadata lock/release
			if p != pg.firstProc {
				commPerProc[p] += net.msgTime(1, b)
			}
		}
	}
	r.CommTime = float64(checkpoints) * maxf(commPerProc)

	// Flushes: whole aligned pages by their owners — no false sharing.
	perProc := make([][]Run, np)
	for pgIdx, pg := range pages {
		if pg.firstProc < 0 {
			continue
		}
		perProc[pg.firstProc] = append(perProc[pg.firstProc],
			Run{Offset: int64(pgIdx) * fs.StripeBytes, Bytes: fs.StripeBytes, Count: 1})
	}
	r.WriteTime = float64(checkpoints) * fs.SharedWriteTime(perProc, k.FileBytes())
	r.finalize()
	return r
}

// TwoStageWriteBehind is the §5.2 scheme: write-only data accumulates in
// 64 kB first-stage sub-buffers (one per remote process) and is flushed to
// round-robin-assigned global page owners; owners write whole aligned
// pages. No coherence metadata is needed, but "the data written by a
// process in the first-stage buffers will most likely need to be flushed to
// remote processes".
type TwoStageWriteBehind struct {
	SubBufBytes int64 // 0 selects the 64 kB default of §5.2
}

// Name implements Method.
func (TwoStageWriteBehind) Name() string { return "writebehind" }

// Simulate implements Method.
func (w TwoStageWriteBehind) Simulate(k Kernel, fs *FS, net Net, checkpoints int) Result {
	np := k.NumProcs()
	sub := w.SubBufBytes
	if sub == 0 {
		sub = 64 << 10
	}
	r := Result{Method: "writebehind", FS: fs.Name, Procs: np}
	r.TotalBytes = k.FileBytes() * int64(checkpoints)
	r.OpenTime = float64(checkpoints) * fs.OpenTime(1, np)

	pageBytes := fs.StripeBytes
	nPages := (k.FileBytes() + pageBytes - 1) / pageBytes
	// Bytes each process sends to each destination (page i owned by rank
	// i mod np). Offset-length records add ~16 B per request row.
	commPerProc := make([]float64, np)
	perProc := make([][]Run, np)
	for p := 0; p < np; p++ {
		toDest := make([]int64, np)
		for _, run := range k.Runs(p) {
			for c := 0; c < run.Count; c++ {
				off := run.Offset + int64(c)*run.Stride
				end := off + run.Bytes
				for pg := off / pageBytes; pg <= (end-1)/pageBytes; pg++ {
					lo := max64(off, pg*pageBytes)
					hi := min64(end, (pg+1)*pageBytes)
					toDest[int(pg)%np] += hi - lo + 16
				}
			}
		}
		var t float64
		for d, b := range toDest {
			if d == p || b == 0 {
				continue // local second-stage buffer: a memcpy
			}
			msgs := int((b + sub - 1) / sub)
			t += net.msgTime(msgs, b)
		}
		commPerProc[p] = t
	}
	r.CommTime = float64(checkpoints) * maxf(commPerProc)

	maxOwned := 0
	for pg := int64(0); pg < nPages; pg++ {
		owner := int(pg) % np
		perProc[owner] = append(perProc[owner],
			Run{Offset: pg * pageBytes, Bytes: pageBytes, Count: 1})
		if len(perProc[owner]) > maxOwned {
			maxOwned = len(perProc[owner])
		}
	}
	// §5.3: "the write-behind method uses independent I/O functions" — each
	// page flush is an independent write call.
	r.WriteTime = float64(checkpoints) * (fs.SharedWriteTime(perProc, k.FileBytes()) +
		float64(maxOwned)*fs.IndepReqCost)
	r.finalize()
	return r
}

// AllMethods returns the four figure-9 paths (independent native I/O is
// reported separately in the text).
func AllMethods() []Method {
	return []Method{FortranIO{}, NativeCollective{}, MPIIOCaching{}, TwoStageWriteBehind{}}
}

func maxf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		m = math.Max(m, x)
	}
	return m
}
