package pario

import (
	"bytes"
	"testing"

	"github.com/s3dgo/s3d/internal/comm"
)

func runWriteBehind(t *testing.T, k Kernel, pageBytes, subBytes int64) (*SharedFile, []int) {
	t.Helper()
	np := k.NumProcs()
	file := NewSharedFile(k.FileBytes())
	flushes := make([]int, np)
	w := comm.NewWorld(np)
	err := w.Run(func(c *comm.Comm) {
		cl := NewWriteBehindClient(c, file, pageBytes, subBytes)
		k.eachRequest(c.Rank(), func(off int64, data []byte) {
			if err := cl.Write(off, data); err != nil {
				panic(err)
			}
		})
		cl.Close()
		flushes[c.Rank()] = cl.Flushes
	})
	if err != nil {
		t.Fatal(err)
	}
	return file, flushes
}

func TestWriteBehindProtocolCanonicalImage(t *testing.T) {
	k := Kernel{NxP: 6, NyP: 5, NzP: 4, Px: 2, Py: 2, Pz: 2}
	file, _ := runWriteBehind(t, k, 256, 128)
	if !bytes.Equal(file.Bytes(), k.MaterializeDirect()) {
		t.Fatal("write-behind protocol diverges from canonical image")
	}
}

func TestWriteBehindSmallSubBuffersForceMidRunFlushes(t *testing.T) {
	k := Kernel{NxP: 8, NyP: 4, NzP: 3, Px: 2, Py: 1, Pz: 2}
	file, flushes := runWriteBehind(t, k, 512, 64)
	if !bytes.Equal(file.Bytes(), k.MaterializeDirect()) {
		t.Fatal("image wrong under small sub-buffers")
	}
	total := 0
	for _, f := range flushes {
		total += f
	}
	// Remote data ≫ 64 B sub-buffers → many flushes.
	if total < 10 {
		t.Fatalf("flushes = %d, expected many with 64-byte sub-buffers", total)
	}
}

func TestWriteBehindRoundRobinOwnership(t *testing.T) {
	// A rank writing only into pages it owns must never message anyone.
	const pageB = 256
	file := NewSharedFile(4 * pageB)
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) {
		cl := NewWriteBehindClient(c, file, pageB, 128)
		payload := bytes.Repeat([]byte{byte(10 + c.Rank())}, pageB)
		// Rank r owns pages r and r+2 (page % 2 == r).
		for _, pg := range []int64{int64(c.Rank()), int64(c.Rank()) + 2} {
			if err := cl.Write(pg*pageB, payload); err != nil {
				panic(err)
			}
		}
		if cl.Flushes != 0 {
			panic("owner-local writes flushed remotely")
		}
		if cl.LocalAppends != 2 {
			panic("local appends miscounted")
		}
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	img := file.Bytes()
	for pg := 0; pg < 4; pg++ {
		want := byte(10 + pg%2)
		if img[pg*pageB] != want || img[(pg+1)*pageB-1] != want {
			t.Fatalf("page %d owner content wrong: %d", pg, img[pg*pageB])
		}
	}
}

func TestWriteBehindPartialFinalPage(t *testing.T) {
	// File not a multiple of the page size: the tail page must flush only
	// its high-water range.
	file := NewSharedFile(300)
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) {
		cl := NewWriteBehindClient(c, file, 256, 64)
		if c.Rank() == 0 {
			if err := cl.Write(0, bytes.Repeat([]byte{1}, 256)); err != nil {
				panic(err)
			}
		} else {
			if err := cl.Write(256, bytes.Repeat([]byte{2}, 44)); err != nil {
				panic(err)
			}
		}
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	img := file.Bytes()
	if img[0] != 1 || img[255] != 1 || img[256] != 2 || img[299] != 2 {
		t.Fatalf("partial page content wrong: %d %d %d %d", img[0], img[255], img[256], img[299])
	}
}

func TestWriteBehindBoundsChecked(t *testing.T) {
	file := NewSharedFile(128)
	w := comm.NewWorld(1)
	err := w.Run(func(c *comm.Comm) {
		cl := NewWriteBehindClient(c, file, 64, 32)
		if err := cl.Write(120, make([]byte, 16)); err == nil {
			panic("expected out-of-range error")
		}
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheAndWriteBehindAgree(t *testing.T) {
	// Both live §5 protocols must produce the identical canonical image for
	// the same pattern (the cross-method invariant of figure 8).
	k := Kernel{NxP: 5, NyP: 4, NzP: 3, Px: 2, Py: 2, Pz: 1}
	fWB, _ := runWriteBehind(t, k, 200, 96)
	fCache, _ := runCachedForCompare(t, k)
	if !bytes.Equal(fWB.Bytes(), fCache.Bytes()) {
		t.Fatal("write-behind and caching images differ")
	}
}

func runCachedForCompare(t *testing.T, k Kernel) (*SharedFile, []cacheStats) {
	return runCached(t, k, CacheConfig{PageBytes: 200})
}
