package pario

// FS is an analytic parallel-file-system model. It captures the properties
// §5 turns on: stripe-granular lock atomicity (concurrent writes that touch
// the same stripe serialise and pay lock-conflict overhead, even when they
// do not overlap in bytes — false sharing), per-request software overhead,
// per-server bandwidth with a per-shared-file stripe count, and a file-open
// cost model (GPFS's open cost grows much faster with file and process
// counts than Lustre's, the effect visible in figure 9's right panel).
type FS struct {
	Name string

	StripeBytes int64   // stripe size == lock granularity (512 kB in §5.3)
	StripeCount int     // servers serving one shared file
	NumServers  int     // total I/O servers (per-process files spread over all)
	ServerBW    float64 // bytes/s per server

	ReqOverhead  float64 // software cost per individual write request (s)
	LockConflict float64 // cost per additional process contending a stripe (s)

	// WaveWeight scales the extent-lock wave serialisation: when k
	// processes contend the same stripe lock their writes "must be carried
	// out in sequence" (§5), stretching the whole operation by a factor
	// 1 + WaveWeight·(k−1). Lustre's server extent locks serialise fully
	// (weight 1); GPFS's byte-range tokens degrade more gently.
	WaveWeight float64

	// IndepReqCost is the extra software cost per request issued through
	// *independent* (non-collective) I/O calls, which on GPFS trigger
	// per-call token negotiation that coordinated collective flushes avoid.
	IndepReqCost float64

	// Open cost model: OpenBase + OpenPerFile·files + OpenPerProcFile·files·procs.
	OpenBase        float64
	OpenPerFile     float64
	OpenPerProcFile float64
}

// Lustre models the Tungsten Lustre 1.4 configuration of §5.3: 16-way
// striping at 512 kB, efficient opens even for many files, but expensive
// lock conflicts on shared files.
func Lustre() *FS {
	return &FS{
		Name:            "lustre",
		StripeBytes:     512 << 10,
		StripeCount:     16,
		NumServers:      32,
		ServerBW:        25e6,
		ReqOverhead:     60e-6,
		LockConflict:    4e-3,
		WaveWeight:      1.0,
		IndepReqCost:    1e-4,
		OpenBase:        5e-3,
		OpenPerFile:     1.2e-3,
		OpenPerProcFile: 2e-6,
	}
}

// GPFS models the Mercury GPFS 3.1 configuration: 54 NSD servers at 512 kB
// blocks, cheaper byte-range token conflicts, but file opens that grow
// steeply with the number of files and processes ("file open costs increase
// more dramatically on GPFS than Lustre", §5.3).
func GPFS() *FS {
	return &FS{
		Name:            "gpfs",
		StripeBytes:     512 << 10,
		StripeCount:     54,
		NumServers:      54,
		ServerBW:        11e6,
		ReqOverhead:     90e-6,
		LockConflict:    1.2e-3,
		WaveWeight:      0.3,
		IndepReqCost:    40e-3,
		OpenBase:        10e-3,
		OpenPerFile:     18e-3,
		OpenPerProcFile: 2.4e-4,
	}
}

// OpenTime returns the cost of opening nFiles files from nProcs processes
// (per checkpoint).
func (fs *FS) OpenTime(nFiles, nProcs int) float64 {
	return fs.OpenBase + fs.OpenPerFile*float64(nFiles) +
		fs.OpenPerProcFile*float64(nFiles)*float64(nProcs)
}

// stripeStat accumulates per-stripe activity.
type stripeStat struct {
	bytes    int64
	reqs     int
	procs    int // distinct writing processes
	lastProc int
}

// SharedWriteTime returns the time to complete one checkpoint's writes to a
// single shared file given each process's request runs. Stripes are
// assigned round-robin to the file's StripeCount servers; each stripe's
// work (transfer + request overhead + lock-conflict serialisation) is
// serial, servers run in parallel, and the checkpoint completes when the
// slowest server drains.
func (fs *FS) SharedWriteTime(perProc [][]Run, fileBytes int64) float64 {
	nStripes := int((fileBytes + fs.StripeBytes - 1) / fs.StripeBytes)
	if nStripes == 0 {
		return 0
	}
	stats := make([]stripeStat, nStripes)
	for i := range stats {
		stats[i].lastProc = -1
	}
	for p, runs := range perProc {
		for _, r := range runs {
			for c := 0; c < r.Count; c++ {
				off := r.Offset + int64(c)*r.Stride
				end := off + r.Bytes
				s0 := off / fs.StripeBytes
				s1 := (end - 1) / fs.StripeBytes
				for s := s0; s <= s1; s++ {
					st := &stats[s]
					lo := max64(off, s*fs.StripeBytes)
					hi := min64(end, (s+1)*fs.StripeBytes)
					st.bytes += hi - lo
					st.reqs++
					if st.lastProc != p {
						st.procs++
						st.lastProc = p
					}
				}
			}
		}
	}
	servers := make([]float64, fs.StripeCount)
	maxWave := 1
	for s := range stats {
		st := &stats[s]
		if st.reqs == 0 {
			continue
		}
		t := float64(st.bytes)/fs.ServerBW + float64(st.reqs)*fs.ReqOverhead
		if st.procs > 1 {
			t += float64(st.procs-1) * fs.LockConflict
			if st.procs > maxWave {
				maxWave = st.procs
			}
		}
		servers[s%fs.StripeCount] += t
	}
	var worst float64
	for _, t := range servers {
		if t > worst {
			worst = t
		}
	}
	// Extent-lock wave serialisation: contended stripe locks force the
	// conflicting clients to take turns.
	return worst * (1 + fs.WaveWeight*float64(maxWave-1))
}

// PerProcessWriteTime returns the time for every process to write its own
// file contiguously (the Fortran I/O path): no sharing, one large request
// per array per process, files spread over all servers.
func (fs *FS) PerProcessWriteTime(nProcs int, bytesPerProc int64, reqsPerProc int) float64 {
	total := float64(bytesPerProc) * float64(nProcs)
	agg := fs.ServerBW * float64(min(fs.NumServers, nProcs*fs.StripeCount))
	transfer := total / agg
	// Each process's requests are serial for that process; processes overlap.
	perProc := float64(reqsPerProc)*fs.ReqOverhead + float64(bytesPerProc)/(fs.ServerBW*float64(min(fs.StripeCount, fs.NumServers)))
	if perProc > transfer {
		transfer = perProc
	}
	return transfer
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
