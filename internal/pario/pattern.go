// Package pario reproduces the parallel-I/O study of paper §5: the S3D-I/O
// checkpoint kernel (figure 8's block-block-block partitioning of four
// global arrays), a parallel file system model with stripe-granular locking
// (Lustre- and GPFS-like configurations), and the four write paths of
// figure 9 — Fortran file-per-process I/O, native collective (two-phase)
// MPI-I/O, collective I/O with MPI-I/O caching, and independent I/O with
// two-stage write-behind buffering — together with a byte-exact data path
// that materialises the canonical global file image for verification.
package pario

// Doubles are 8 bytes everywhere, as in the paper's checkpoint ("8 B 3D
// arrays").
const wordBytes = 8

// Kernel describes the S3D-I/O checkpoint of §5.3: four global arrays
// (mass ×11, velocity ×3, pressure ×1, temperature ×1 in the fourth
// dimension) over an NX×NY×NZ mesh partitioned block-block-block over a
// Px×Py×Pz process grid. The per-process block is 50×50×50 in the paper,
// producing ≈15.26 MB per process per checkpoint.
type Kernel struct {
	NxP, NyP, NzP int // per-process block
	Px, Py, Pz    int // process grid
}

// arrayComps lists the fourth-dimension lengths of the four checkpoint
// arrays: mass, velocity, pressure, temperature (paper §5.3).
var arrayComps = [4]int{11, 3, 1, 1}

// NumProcs returns the process count.
func (k Kernel) NumProcs() int { return k.Px * k.Py * k.Pz }

// GlobalDims returns the global mesh extents.
func (k Kernel) GlobalDims() (nx, ny, nz int) {
	return k.NxP * k.Px, k.NyP * k.Py, k.NzP * k.Pz
}

// ProcCoords returns the block coordinates of a rank (x-fastest ordering).
func (k Kernel) ProcCoords(p int) (px, py, pz int) {
	return p % k.Px, (p / k.Px) % k.Py, p / (k.Px * k.Py)
}

// BytesPerProc returns the checkpoint bytes one process writes
// (≈ 15.26 MB for the 50³ block).
func (k Kernel) BytesPerProc() int64 {
	cells := int64(k.NxP) * int64(k.NyP) * int64(k.NzP)
	var comps int64
	for _, c := range arrayComps {
		comps += int64(c)
	}
	return cells * comps * wordBytes
}

// FileBytes returns the shared checkpoint file size.
func (k Kernel) FileBytes() int64 { return k.BytesPerProc() * int64(k.NumProcs()) }

// Run is a strided group of contiguous write requests: Count requests of
// Bytes each, the first at Offset, subsequent ones Stride apart. The S3D
// pattern produces one run group per (array component, z-plane): within it,
// each y-row of the process block is one contiguous request of NxP values.
type Run struct {
	Offset int64
	Bytes  int64
	Stride int64
	Count  int
}

// TotalBytes returns the bytes covered by the run group.
func (r Run) TotalBytes() int64 { return r.Bytes * int64(r.Count) }

// Runs enumerates rank p's write requests into the shared checkpoint file
// in canonical order (figure 8: the lowest X–Y–Z dimensions partitioned
// block-block-block; the fourth dimension not partitioned). Arrays are
// laid out consecutively: mass, velocity, pressure, temperature.
func (k Kernel) Runs(p int) []Run {
	nx, ny, nz := k.GlobalDims()
	px, py, pz := k.ProcCoords(p)
	x0 := int64(px * k.NxP)
	y0 := int64(py * k.NyP)
	z0 := int64(pz * k.NzP)
	rowBytes := int64(k.NxP) * wordBytes
	strideY := int64(nx) * wordBytes

	var runs []Run
	var arrayBase int64
	for _, comps := range arrayComps {
		for m := 0; m < comps; m++ {
			for dz := 0; dz < k.NzP; dz++ {
				gz := z0 + int64(dz)
				off := arrayBase +
					((int64(m)*int64(nz)+gz)*int64(ny)+y0)*int64(nx)*wordBytes +
					x0*wordBytes
				runs = append(runs, Run{Offset: off, Bytes: rowBytes, Stride: strideY, Count: k.NyP})
			}
		}
		arrayBase += int64(comps) * int64(nx) * int64(ny) * int64(nz) * wordBytes
	}
	return runs
}

// RequestCount returns the number of individual contiguous requests rank p
// issues (the quantity that kills native independent I/O in §5.3).
func (k Kernel) RequestCount(p int) int {
	n := 0
	for _, r := range k.Runs(p) {
		n += r.Count
	}
	return n
}

// FillPattern writes rank p's data for one checkpoint into the shared-file
// image buf using the canonical layout, with each value encoding
// (rank, sequence) so cross-method verification can detect any misplaced
// byte. It returns the number of bytes written.
func (k Kernel) FillPattern(p int, buf []byte) int64 {
	var written int64
	seq := uint32(0)
	for _, r := range k.Runs(p) {
		for c := 0; c < r.Count; c++ {
			off := r.Offset + int64(c)*r.Stride
			for b := int64(0); b < r.Bytes; b += wordBytes {
				v := patternWord(p, seq)
				for i := 0; i < wordBytes; i++ {
					buf[off+b+int64(i)] = byte(v >> (8 * uint(i)))
				}
				seq++
			}
			written += r.Bytes
		}
	}
	return written
}

// patternWord builds a deterministic 64-bit test value for (rank, seq).
func patternWord(p int, seq uint32) uint64 {
	return uint64(p)<<40 | uint64(seq) | 0xA5<<56
}
