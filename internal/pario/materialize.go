package pario

import "fmt"

// The materialisation path runs real bytes through each write method's
// staging logic and produces the shared-file image, verifying the global
// canonical-order invariant of figure 8: whatever the transport (two-phase
// exchange, cache pages, write-behind buffers), the resulting file must be
// byte-identical to writing every request directly at its canonical offset.

// eachRequest invokes fn for every contiguous request of rank p with the
// request's canonical file offset and payload.
func (k Kernel) eachRequest(p int, fn func(off int64, data []byte)) {
	seq := uint32(0)
	for _, r := range k.Runs(p) {
		buf := make([]byte, r.Bytes)
		for c := 0; c < r.Count; c++ {
			for b := int64(0); b < r.Bytes; b += wordBytes {
				v := patternWord(p, seq)
				for i := 0; i < wordBytes; i++ {
					buf[b+int64(i)] = byte(v >> (8 * uint(i)))
				}
				seq++
			}
			fn(r.Offset+int64(c)*r.Stride, buf)
			// fn may retain nothing; reuse buf for the next request.
		}
	}
}

// MaterializeDirect writes every rank's requests straight into the image.
func (k Kernel) MaterializeDirect() []byte {
	img := make([]byte, k.FileBytes())
	for p := 0; p < k.NumProcs(); p++ {
		k.eachRequest(p, func(off int64, data []byte) {
			copy(img[off:], data)
		})
	}
	return img
}

// MaterializeCollective routes the data through two-phase aggregation:
// aggregator a owns the contiguous file range [a·chunk, (a+1)·chunk);
// every rank ships the intersecting pieces, then aggregators write their
// ranges contiguously.
func (k Kernel) MaterializeCollective() []byte {
	np := k.NumProcs()
	fileBytes := k.FileBytes()
	chunk := fileBytes / int64(np)
	// Aggregator buffers (the last takes the remainder).
	bufs := make([][]byte, np)
	starts := make([]int64, np)
	for a := 0; a < np; a++ {
		starts[a] = int64(a) * chunk
		end := starts[a] + chunk
		if a == np-1 {
			end = fileBytes
		}
		bufs[a] = make([]byte, end-starts[a])
	}
	for p := 0; p < np; p++ {
		k.eachRequest(p, func(off int64, data []byte) {
			// Split the request across aggregator domains.
			pos := int64(0)
			for pos < int64(len(data)) {
				a := int((off + pos) / chunk)
				if a >= np {
					a = np - 1
				}
				domEnd := starts[a] + int64(len(bufs[a]))
				n := min64(int64(len(data))-pos, domEnd-(off+pos))
				copy(bufs[a][off+pos-starts[a]:], data[pos:pos+n])
				pos += n
			}
		})
	}
	img := make([]byte, fileBytes)
	for a := 0; a < np; a++ {
		copy(img[starts[a]:], bufs[a])
	}
	return img
}

// MaterializeCaching routes the data through the §5.1 cache-page layer:
// aligned pages owned by their first toucher, remote touches shipped to the
// owner, dirty pages flushed with a high-water mark.
func (k Kernel) MaterializeCaching(pageBytes int64) []byte {
	fileBytes := k.FileBytes()
	nPages := (fileBytes + pageBytes - 1) / pageBytes
	type page struct {
		data  []byte
		dirty int64 // high-water mark of dirty bytes (§5.1)
		used  bool
	}
	pages := make([]page, nPages)
	for p := 0; p < k.NumProcs(); p++ {
		k.eachRequest(p, func(off int64, data []byte) {
			pos := int64(0)
			for pos < int64(len(data)) {
				pg := (off + pos) / pageBytes
				pp := &pages[pg]
				if !pp.used {
					pp.used = true
					pp.data = make([]byte, min64(pageBytes, fileBytes-pg*pageBytes))
				}
				inPage := off + pos - pg*pageBytes
				n := min64(int64(len(data))-pos, int64(len(pp.data))-inPage)
				copy(pp.data[inPage:], data[pos:pos+n])
				if hw := inPage + n; hw > pp.dirty {
					pp.dirty = hw
				}
				pos += n
			}
		})
	}
	img := make([]byte, fileBytes)
	for i := range pages {
		if pages[i].used {
			copy(img[int64(i)*pageBytes:], pages[i].data[:pages[i].dirty])
		}
	}
	return img
}

// whRecord is a first-stage write-behind record: file offset + payload,
// exactly what §5.2 accumulates "along with the requesting file offset and
// length".
type whRecord struct {
	off  int64
	data []byte
}

// MaterializeWriteBehind routes the data through the §5.2 two-stage scheme:
// first-stage per-destination sub-buffers of the given size, flushed to the
// round-robin page owners, who apply the offset-length records to their
// second-stage pages and finally write them.
func (k Kernel) MaterializeWriteBehind(pageBytes, subBufBytes int64) []byte {
	np := k.NumProcs()
	fileBytes := k.FileBytes()
	nPages := (fileBytes + pageBytes - 1) / pageBytes
	pages := make([][]byte, nPages)

	apply := func(rec whRecord) {
		pos := int64(0)
		for pos < int64(len(rec.data)) {
			pg := (rec.off + pos) / pageBytes
			if pages[pg] == nil {
				pages[pg] = make([]byte, min64(pageBytes, fileBytes-pg*pageBytes))
			}
			inPage := rec.off + pos - pg*pageBytes
			n := min64(int64(len(rec.data))-pos, int64(len(pages[pg]))-inPage)
			copy(pages[pg][inPage:], rec.data[pos:pos+n])
			pos += n
		}
	}

	for p := 0; p < np; p++ {
		// One sub-buffer per destination; flush when the accumulated payload
		// exceeds the sub-buffer size.
		pending := make([][]whRecord, np)
		pendingBytes := make([]int64, np)
		flush := func(d int) {
			for _, rec := range pending[d] {
				apply(rec)
			}
			pending[d] = pending[d][:0]
			pendingBytes[d] = 0
		}
		k.eachRequest(p, func(off int64, data []byte) {
			pos := int64(0)
			for pos < int64(len(data)) {
				pg := (off + pos) / pageBytes
				d := int(pg) % np
				n := min64(int64(len(data))-pos, (pg+1)*pageBytes-(off+pos))
				cp := make([]byte, n)
				copy(cp, data[pos:pos+n])
				pending[d] = append(pending[d], whRecord{off + pos, cp})
				pendingBytes[d] += n
				if pendingBytes[d] >= subBufBytes {
					flush(d)
				}
				pos += n
			}
		})
		for d := 0; d < np; d++ {
			flush(d) // file close flushes all dirty buffers
		}
	}
	img := make([]byte, fileBytes)
	for i, pg := range pages {
		if pg != nil {
			copy(img[int64(i)*pageBytes:], pg)
		}
	}
	return img
}

// VerifyImages compares the staged images of every shared-file method
// against the direct canonical image, returning an error naming the first
// divergent method and offset.
func (k Kernel) VerifyImages(pageBytes, subBufBytes int64) error {
	ref := k.MaterializeDirect()
	check := func(name string, img []byte) error {
		if len(img) != len(ref) {
			return fmt.Errorf("pario: %s image size %d, want %d", name, len(img), len(ref))
		}
		for i := range img {
			if img[i] != ref[i] {
				return fmt.Errorf("pario: %s image diverges at offset %d", name, i)
			}
		}
		return nil
	}
	if err := check("collective", k.MaterializeCollective()); err != nil {
		return err
	}
	if err := check("caching", k.MaterializeCaching(pageBytes)); err != nil {
		return err
	}
	return check("writebehind", k.MaterializeWriteBehind(pageBytes, subBufBytes))
}
