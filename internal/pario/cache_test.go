package pario

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/s3dgo/s3d/internal/comm"
)

// runCached executes the S3D-I/O checkpoint pattern through the live
// caching protocol with np ranks and returns the resulting file image plus
// aggregate stats.
type cacheStats struct{ LocalHits, RemoteForwards, Evictions int }

func runCached(t *testing.T, k Kernel, cfg CacheConfig) (*SharedFile, []cacheStats) {
	t.Helper()
	np := k.NumProcs()
	file := NewSharedFile(k.FileBytes())
	statsOut := make([]cacheStats, np)
	w := comm.NewWorld(np)
	err := w.Run(func(c *comm.Comm) {
		cl := NewCacheClient(c, file, cfg)
		buf := make([]byte, 4096)
		k.eachRequest(c.Rank(), func(off int64, data []byte) {
			_ = buf
			if err := cl.Write(off, data); err != nil {
				panic(err)
			}
		})
		cl.Close()
		statsOut[c.Rank()] = cacheStats{cl.LocalHits, cl.RemoteForwards, cl.Evictions}
	})
	if err != nil {
		t.Fatal(err)
	}
	return file, statsOut
}

func TestCacheStatsTelemetry(t *testing.T) {
	// Stats() must report accesses, misses and a consistent hit rate for the
	// observability layer. Single rank: every page access is local, the
	// first touch of each page is a miss, re-reads are hits.
	const pageB = 512
	file := NewSharedFile(4 * pageB)
	w := comm.NewWorld(1)
	err := w.Run(func(c *comm.Comm) {
		cl := NewCacheClient(c, file, CacheConfig{PageBytes: pageB})
		buf := make([]byte, pageB)
		for pass := 0; pass < 3; pass++ {
			for pg := int64(0); pg < 4; pg++ {
				if err := cl.Read(pg*pageB, buf); err != nil {
					panic(err)
				}
			}
		}
		s := cl.Stats()
		if s.CacheAccesses != 12 || s.CacheMisses != 4 {
			panic(fmt.Sprintf("accesses=%d misses=%d", s.CacheAccesses, s.CacheMisses))
		}
		if s.CacheHitRate != 8.0/12.0 {
			panic(fmt.Sprintf("hit rate = %g", s.CacheHitRate))
		}
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheProtocolProducesCanonicalImage(t *testing.T) {
	k := Kernel{NxP: 6, NyP: 5, NzP: 4, Px: 2, Py: 2, Pz: 2}
	file, _ := runCached(t, k, CacheConfig{PageBytes: 256})
	want := k.MaterializeDirect()
	if !bytes.Equal(file.Bytes(), want) {
		t.Fatal("cached write path diverges from canonical image")
	}
}

func TestCacheProtocolWithEviction(t *testing.T) {
	// A tiny cache bound forces LRU evictions mid-run; the image must still
	// come out exact.
	k := Kernel{NxP: 8, NyP: 4, NzP: 3, Px: 2, Py: 1, Pz: 2}
	file, stats := runCached(t, k, CacheConfig{PageBytes: 512, MaxBytes: 1024})
	want := k.MaterializeDirect()
	if !bytes.Equal(file.Bytes(), want) {
		t.Fatal("eviction corrupted the image")
	}
	var evictions int
	for _, s := range stats {
		evictions += s.Evictions
	}
	if evictions == 0 {
		t.Fatal("expected evictions under a 1 kB bound")
	}
}

func TestCacheSingleOwnerPerPage(t *testing.T) {
	// Two ranks writing the same page must route through one owner: the
	// §5.1 invariant "at most a single cached copy of file data".
	const pageB = 1024
	file := NewSharedFile(4 * pageB)
	w := comm.NewWorld(2)
	forwards := make([]int, 2)
	err := w.Run(func(c *comm.Comm) {
		cl := NewCacheClient(c, file, CacheConfig{PageBytes: pageB})
		// Both ranks write disjoint halves of every page.
		half := int64(pageB / 2)
		buf := bytes.Repeat([]byte{byte(c.Rank() + 1)}, int(half))
		for pg := int64(0); pg < 4; pg++ {
			off := pg*pageB + int64(c.Rank())*half
			if err := cl.Write(off, buf); err != nil {
				panic(err)
			}
		}
		cl.Close()
		forwards[c.Rank()] = cl.RemoteForwards
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every page has exactly one owner, so exactly one of each pair of
	// half-writes was remote: 4 pages → 4 total forwards.
	if got := forwards[0] + forwards[1]; got != 4 {
		t.Fatalf("remote forwards = %d, want 4", got)
	}
	// File correctness.
	img := file.Bytes()
	for pg := 0; pg < 4; pg++ {
		if img[pg*pageB] != 1 || img[pg*pageB+pageB/2] != 2 {
			t.Fatalf("page %d content wrong: %d %d", pg, img[pg*pageB], img[pg*pageB+pageB/2])
		}
	}
}

func TestCacheReadAfterWrite(t *testing.T) {
	// Figure 6's read flow: a rank reading data cached on another rank gets
	// it via owner forwarding, without touching the file system again.
	const pageB = 512
	file := NewSharedFile(2 * pageB)
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) {
		cl := NewCacheClient(c, file, CacheConfig{PageBytes: pageB})
		if c.Rank() == 0 {
			payload := bytes.Repeat([]byte{0xAB}, 100)
			if err := cl.Write(50, payload); err != nil {
				panic(err)
			}
		}
		c.Barrier()
		if c.Rank() == 1 {
			got := make([]byte, 100)
			if err := cl.Read(50, got); err != nil {
				panic(err)
			}
			for _, b := range got {
				if b != 0xAB {
					panic("read-after-write returned stale data")
				}
			}
			if cl.RemoteForwards == 0 {
				panic("read did not forward to the page owner")
			}
		}
		c.Barrier()
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheReducesFileSystemAccesses(t *testing.T) {
	// Many small writes through the cache must reach the file system as few
	// page-sized flushes (the point of §5.1).
	const pageB = 1024
	file := NewSharedFile(4 * pageB)
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) {
		cl := NewCacheClient(c, file, CacheConfig{PageBytes: pageB})
		one := []byte{byte(c.Rank())}
		for i := 0; i < 200; i++ {
			off := int64((i*17 + c.Rank()) % int(file.Size()))
			if err := cl.Write(off, one); err != nil {
				panic(err)
			}
		}
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	_, writes := file.Accesses()
	if writes > 8 { // ≤ 4 pages, flushed once per owner (+ slack)
		t.Fatalf("file system writes = %d, want page-granular flushes", writes)
	}
}

func TestCacheBoundsChecked(t *testing.T) {
	file := NewSharedFile(100)
	w := comm.NewWorld(1)
	err := w.Run(func(c *comm.Comm) {
		cl := NewCacheClient(c, file, CacheConfig{PageBytes: 64})
		if err := cl.Write(90, make([]byte, 20)); err == nil {
			panic("expected out-of-range write error")
		}
		if err := cl.Read(-1, make([]byte, 2)); err == nil {
			panic("expected out-of-range read error")
		}
		cl.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCacheS3DPatternManyRanks(t *testing.T) {
	// The full checkpoint pattern with 8 concurrent ranks and small pages.
	k := Kernel{NxP: 5, NyP: 4, NzP: 3, Px: 2, Py: 2, Pz: 2}
	file, stats := runCached(t, k, CacheConfig{PageBytes: 200})
	if !bytes.Equal(file.Bytes(), k.MaterializeDirect()) {
		t.Fatal("8-rank cached image diverges")
	}
	var localHits int
	for _, s := range stats {
		localHits += s.LocalHits
	}
	if localHits == 0 {
		t.Fatal("no local cache hits — first-toucher ownership broken")
	}
}
