package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Monitor is the opt-in live view of a running case: an expvar-style HTTP
// endpoint serving the metrics registry and the latest step event as JSON.
// It replaces "watch the stdout scroll" for long runs — the same role the
// paper's web dashboard plays for production S3D jobs (§9), but attached
// directly to the process.
//
// Endpoints:
//
//	GET /metrics       — Snapshot of the registry (counters, gauges, histograms)
//	GET /metrics.prom  — the same snapshot in Prometheus text exposition format
//	GET /status        — the most recent StepEvent plus run metadata
//	GET /healthz       — 200 "ok" liveness probe
//	GET /debug/pprof/  — the standard Go runtime profiles (CPU, heap, goroutine,
//	                     block, mutex), so `go tool pprof` works against a live run
type Monitor struct {
	reg *Registry
	srv *http.Server
	ln  net.Listener
	mux *http.ServeMux

	mu    sync.Mutex
	last  *StepEvent
	run   *RunInfo
	start time.Time

	done chan struct{}
}

// StartMonitor listens on addr (host:port; use ":0" for an ephemeral port)
// and serves until Close. The registry may be nil (serves step events only).
func StartMonitor(addr string, reg *Registry) (*Monitor, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: monitor listen %s: %w", addr, err)
	}
	m := &Monitor{reg: reg, ln: ln, start: time.Now(), done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/metrics.prom", m.handlePrometheus)
	mux.HandleFunc("/status", m.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	// Runtime profiling rides on the monitor port: enabling -monitor is the
	// opt-in for /debug/pprof/ too (the default ServeMux is deliberately not
	// used, so these are the only pprof routes the process exposes).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.mux = mux
	m.srv = &http.Server{Handler: mux}
	go func() {
		defer close(m.done)
		// Serve returns ErrServerClosed on Close; other errors are terminal
		// for the monitor but must not take the simulation down.
		_ = m.srv.Serve(ln)
	}()
	return m, nil
}

// Addr returns the bound address (resolves ":0" to the actual port).
func (m *Monitor) Addr() string { return m.ln.Addr().String() }

// SetRun records the run metadata served under /status.
func (m *Monitor) SetRun(info *RunInfo) {
	m.mu.Lock()
	m.run = info
	m.mu.Unlock()
}

// Observe publishes the latest step event.
func (m *Monitor) Observe(ev StepEvent) {
	m.mu.Lock()
	m.last = &ev
	m.mu.Unlock()
}

// Close shuts the listener down and waits for the serve loop to exit.
func (m *Monitor) Close() error {
	err := m.srv.Close()
	<-m.done
	return err
}

// Handle registers an additional handler on the monitor's mux (the
// profiler's live endpoints mount here). http.ServeMux registration is
// safe while the server runs.
func (m *Monitor) Handle(pattern string, h http.Handler) { m.mux.Handle(pattern, h) }

func (m *Monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, m.reg.Snapshot())
}

func (m *Monitor) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = m.reg.Snapshot().WritePrometheus(w)
}

// statusDoc is the /status response body.
type statusDoc struct {
	UptimeSec float64    `json:"uptime_sec"`
	Run       *RunInfo   `json:"run,omitempty"`
	LastStep  *StepEvent `json:"last_step,omitempty"`
}

func (m *Monitor) handleStatus(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	doc := statusDoc{
		UptimeSec: time.Since(m.start).Seconds(),
		Run:       m.run,
		LastStep:  m.last,
	}
	m.mu.Unlock()
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
