package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// --- ReadTrace corruption handling (a run killed mid-write must still
// summarise its valid prefix) ---

func TestReadTraceEmptyInput(t *testing.T) {
	recs, err := ReadTrace(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: recs=%d err=%v", len(recs), err)
	}
	recs, err = ReadTrace(strings.NewReader("\n\n   \n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank lines: recs=%d err=%v", len(recs), err)
	}
}

func TestReadTraceTruncatedTail(t *testing.T) {
	// A JSON object cut off mid-write, exactly as a killed run leaves it.
	var sb strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&sb, "{\"kind\":\"step\",\"step\":{\"step\":%d}}\n", i)
	}
	sb.WriteString(`{"kind":"step","step":{"st`)
	recs, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("truncated tail: %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("recs = %d, want the 5 valid prefix records", len(recs))
	}
	if recs[4].StepData == nil || recs[4].StepData.Step != 4 {
		t.Fatalf("last record = %+v", recs[4])
	}
	// The prefix must still summarise.
	if s := Summarize(recs); s.Steps != 5 {
		t.Fatalf("summary steps = %d", s.Steps)
	}
}

func TestReadTraceAllGarbage(t *testing.T) {
	recs, err := ReadTrace(strings.NewReader("complete nonsense\n<also not json>\n"))
	if err != nil {
		t.Fatalf("all-garbage input must yield an empty valid prefix: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("recs = %d", len(recs))
	}
}

func TestReadTraceMidStreamGarbageNamesLine(t *testing.T) {
	in := "{\"kind\":\"run_start\"}\ngarbage here\n{\"kind\":\"step\"}\n"
	recs, err := ReadTrace(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected an error for mid-stream corruption")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error must name the damaged line: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("valid prefix = %d records, want 1", len(recs))
	}
}

func TestReadTraceOverlongTailLine(t *testing.T) {
	// A tail line beyond the scanner's 16 MB cap acts like a truncated tail.
	in := "{\"kind\":\"run_start\"}\n" + strings.Repeat("x", 17<<20)
	recs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatalf("over-long tail: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("recs = %d, want 1", len(recs))
	}
}

// --- Snapshot.Merge edge cases ---

func TestMergeDisjointNames(t *testing.T) {
	a := NewRegistry()
	a.Counter("only.a").Add(3)
	a.Gauge("gauge.a").Set(1.5)
	a.Histogram("hist.a", []float64{1, 2}).Observe(0.5)
	b := NewRegistry()
	b.Counter("only.b").Add(7)
	b.Gauge("gauge.b").Set(-2)
	b.Histogram("hist.b", []float64{10}).Observe(4)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["only.a"] != 3 || s.Counters["only.b"] != 7 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["gauge.a"] != 1.5 || s.Gauges["gauge.b"] != -2 {
		t.Fatalf("gauges = %v", s.Gauges)
	}
	ha, hb := s.Histograms["hist.a"], s.Histograms["hist.b"]
	if ha.Count != 1 || hb.Count != 1 || hb.Sum != 4 {
		t.Fatalf("histograms = %+v / %+v", ha, hb)
	}
	if len(hb.Bounds) != 1 || hb.Bounds[0] != 10 {
		t.Fatalf("adopted bounds = %v", hb.Bounds)
	}
	// The adopted histogram must be a copy, not an alias of b's snapshot.
	other := b.Snapshot()
	s2 := a.Snapshot()
	s2.Merge(other)
	s2.Histograms["hist.b"].Counts[0] = 99
	if other.Histograms["hist.b"].Counts[0] == 99 {
		t.Fatal("merge aliased the source snapshot's counts")
	}
}

func TestMergeOverlappingNames(t *testing.T) {
	a := NewRegistry()
	a.Counter("steps").Add(10)
	a.Gauge("tmax").Set(900)
	h := a.Histogram("wall", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	b := NewRegistry()
	b.Counter("steps").Add(32)
	b.Gauge("tmax").Set(1800)
	h2 := b.Histogram("wall", []float64{0.01, 0.1})
	h2.Observe(0.5)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["steps"] != 42 {
		t.Fatalf("summed counter = %d", s.Counters["steps"])
	}
	if s.Gauges["tmax"] != 1800 {
		t.Fatalf("gauge max = %g", s.Gauges["tmax"])
	}
	hw := s.Histograms["wall"]
	if hw.Count != 3 || hw.Sum != 0.555 {
		t.Fatalf("merged histogram = %+v", hw)
	}
	want := []int64{1, 1, 1} // one per bucket incl. overflow
	for i, c := range hw.Counts {
		if c != want[i] {
			t.Fatalf("bucket counts = %v, want %v", hw.Counts, want)
		}
	}
	// Merging the other direction must give the same totals.
	s2 := b.Snapshot()
	s2.Merge(a.Snapshot())
	if s2.Counters["steps"] != 42 || s2.Histograms["wall"].Count != 3 {
		t.Fatalf("reverse merge = %+v", s2)
	}
}

func TestMergeMismatchedHistogramBounds(t *testing.T) {
	a := NewRegistry()
	a.Histogram("wall", []float64{1, 2, 3}).Observe(1.5)
	b := NewRegistry()
	b.Histogram("wall", []float64{10}).Observe(5)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	hw := s.Histograms["wall"]
	// Bucket vectors of different shapes cannot be summed; Sum/Count must
	// still aggregate so rates stay correct.
	if hw.Count != 2 || hw.Sum != 6.5 {
		t.Fatalf("mismatched-bounds merge: %+v", hw)
	}
	if len(hw.Counts) != 4 {
		t.Fatalf("bucket vector changed shape: %v", hw.Counts)
	}
	var bucketSum int64
	for _, c := range hw.Counts {
		bucketSum += c
	}
	if bucketSum != 1 {
		t.Fatalf("mismatched buckets were summed anyway: %v", hw.Counts)
	}
}

// --- Prometheus text exposition ---

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("comm.bytes_sent").Add(1024)
	r.Gauge("par.workers").Set(8)
	h := r.Histogram("step.wall_sec", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE comm_bytes_sent counter\ncomm_bytes_sent 1024\n",
		"# TYPE par_workers gauge\npar_workers 8\n",
		"# TYPE step_wall_sec histogram\n",
		`step_wall_sec_bucket{le="0.01"} 1`,
		`step_wall_sec_bucket{le="0.1"} 2`,
		`step_wall_sec_bucket{le="+Inf"} 3`,
		"step_wall_sec_sum 5.055\n",
		"step_wall_sec_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"comm.bytes_sent": "comm_bytes_sent",
		"9lives":          "_lives",
		"a-b c/d":         "a_b_c_d",
		"ok_name:x9":      "ok_name:x9",
	} {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// --- Monitor endpoints added in this PR ---

func TestMonitorPrometheusAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("comm.bytes_sent").Add(777)
	reg.Histogram("step.wall_sec", []float64{0.01}).Observe(0.5)
	m, err := StartMonitor("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + m.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics.prom")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ctype)
	}
	for _, want := range []string{
		"comm_bytes_sent 777",
		`step_wall_sec_bucket{le="+Inf"} 1`,
		"step_wall_sec_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics.prom missing %q:\n%s", want, body)
		}
	}

	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index looks wrong:\n%.200s", body)
	}
	if body, _ := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Fatal("goroutine profile not served")
	}

	// Handle must mount extra handlers on the live mux.
	m.Handle("/extra", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "mounted")
	}))
	if body, _ := get("/extra"); body != "mounted" {
		t.Fatalf("Handle: got %q", body)
	}
}
