// Package obs is the unified telemetry layer of the reproduction: a
// metrics registry (counters, gauges, fixed-bucket histograms) cheap enough
// for solver inner loops, a structured JSONL run-trace writer, and a live
// HTTP monitor. It plays the role the TAU/HPCToolkit instrumentation and
// the SDM dashboard feeds play in the paper (§4, §9): every performance
// claim downstream of this PR is measured through this layer rather than
// ad-hoc prints.
//
// The package sits at the bottom of the dependency graph: it imports no
// other internal package, so comm, pario, solver and workflow can all feed
// it without cycles. Cross-layer stat structs (CommStats, ParioStats) live
// here for the same reason — producers fill them, the trace writer and the
// monitor consume them.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; Add is a single atomic add, cheap enough for inner loops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins metric (e.g. current step, queue depth).
// Set/Value are single atomic word operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// v <= Bounds[i]; one implicit overflow bucket counts the rest. Observe is
// a branch-light linear scan plus two atomic adds — the bucket count is
// expected to be small (O(10)), as for latency histograms.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomicFloat
	n      atomic.Int64
}

// atomicFloat accumulates float64 sums with a CAS loop.
type atomicFloat struct {
	bits atomic.Uint64
}

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) Value() float64 { return math.Float64frombits(a.bits.Load()) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.n.Load(); n > 0 {
		return h.sum.Value() / float64(n)
	}
	return 0
}

// Registry holds named metrics. Metric creation takes the registry lock;
// use of a returned metric is lock-free, so hot paths should look up their
// metrics once (or hold *Counter fields) and then only Add/Set/Observe.
// A nil *Registry is valid and inert: every method returns a usable dummy
// metric, so instrumented code needs no nil checks.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (bounds are ignored if it already exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// HistSnapshot is an immutable histogram state.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last bucket is overflow
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot is an immutable copy of a registry's state, suitable for
// cross-rank merging (the analogue of perf.Timers.Snapshot + Merge) and for
// JSON export by the monitor.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the current state. It is safe to call concurrently with
// metric updates; individual metric reads are atomic, the set as a whole is
// not a consistent cut (fine for monitoring).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge adds another snapshot into s: counters and histogram buckets sum,
// gauges take the other's value when s lacks the key and the maximum
// otherwise (a defensible cross-rank reduction for monitoring extrema).
func (s *Snapshot) Merge(other Snapshot) {
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, oh := range other.Histograms {
		h, ok := s.Histograms[name]
		if !ok {
			s.Histograms[name] = HistSnapshot{
				Bounds: append([]float64(nil), oh.Bounds...),
				Counts: append([]int64(nil), oh.Counts...),
				Sum:    oh.Sum, Count: oh.Count,
			}
			continue
		}
		if len(h.Counts) == len(oh.Counts) {
			for i := range h.Counts {
				h.Counts[i] += oh.Counts[i]
			}
		}
		h.Sum += oh.Sum
		h.Count += oh.Count
		s.Histograms[name] = h
	}
}

// String renders a sorted human-readable dump (for debugging and tests).
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-40s %g\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%g\n", n, h.Count, safeDiv(h.Sum, float64(h.Count)))
	}
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
