package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// The structured run trace: one JSON object per line (JSONL). Every record
// carries a "kind" discriminator; exactly one of the kind-specific payload
// fields is populated. The schema is documented field-by-field in README.md
// ("Observability") and round-tripped by the obs tests.

// Record kinds.
const (
	KindRunStart   = "run_start"
	KindStep       = "step"
	KindCheckpoint = "checkpoint"
	KindRunDone    = "run_done"
)

// CommStats is the communication-layer slice of a step record: cumulative
// per-rank message counts and blocked time, as accounted by internal/comm.
type CommStats struct {
	BytesSent int64 `json:"bytes_sent"`
	MsgsSent  int64 `json:"msgs_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	MsgsRecv  int64 `json:"msgs_recv"`
	// WaitSec is time blocked in point-to-point Wait; CollSec is time
	// blocked in collectives (Allreduce/Barrier/Allgather).
	WaitSec    float64 `json:"wait_sec"`
	CollSec    float64 `json:"coll_sec"`
	Allreduces int64   `json:"allreduces"`
	Barriers   int64   `json:"barriers"`
}

// ParioStats is the parallel-I/O slice of a step record: cache behaviour of
// the §5.1 caching layer and queue state of the §5.2 write-behind layer.
type ParioStats struct {
	CacheAccesses  int64 `json:"cache_accesses"` // local page accesses
	CacheMisses    int64 `json:"cache_misses"`   // page loads from the file system
	CacheEvictions int64 `json:"cache_evictions"`
	RemoteForwards int64 `json:"remote_forwards"`
	// CacheHitRate = (accesses − misses) / accesses, 0 when no accesses.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Write-behind: current first-stage queue depth and cumulative flushes.
	WBQueueBytes  int64   `json:"wb_queue_bytes"`
	WBFlushes     int64   `json:"wb_flushes"`
	WBFlushSec    float64 `json:"wb_flush_sec"` // cumulative flush latency
	WBLocalWrites int64   `json:"wb_local_writes"`
}

// HitRate computes the cache hit rate from accesses and misses.
func (p *ParioStats) HitRate() float64 {
	if p.CacheAccesses == 0 {
		return 0
	}
	return float64(p.CacheAccesses-p.CacheMisses) / float64(p.CacheAccesses)
}

// StepEvent is the per-solver-step record (one per StepOnce).
type StepEvent struct {
	Step int     `json:"step"`
	Time float64 `json:"time"` // physical time after the step (s)
	Dt   float64 `json:"dt"`   // step size (s)
	// CFL is dt relative to the most recently evaluated acoustic limit
	// (dt·CFLnumber/acousticDt); the limit is refreshed at the driver's
	// cadence, not every step, to keep tracing off the hot path.
	CFL float64 `json:"cfl"`
	// WallSec is the wall time of the whole step; StageWallSec is the wall
	// time of each RK stage (RHS evaluation + 2N update), len = 6 for the
	// production RK46-NL integrator.
	WallSec      float64   `json:"wall_sec"`
	StageWallSec []float64 `json:"stage_wall_sec"`
	// Physics monitors, sampled at the final RK stage evaluation.
	TMin float64 `json:"t_min"`
	TMax float64 `json:"t_max"`
	PMin float64 `json:"p_min"`
	PMax float64 `json:"p_max"`
	// MassDrift is (M(t) − M(0)) / M(0) over the block interior.
	MassDrift float64 `json:"mass_drift"`
	// HeatRelease is the volume integral of −Σ ω̇ᵢhᵢ over the interior (W),
	// accumulated during the final RK stage's chemistry evaluation.
	HeatRelease float64 `json:"heat_release"`

	Comm  CommStats  `json:"comm"`
	Pario ParioStats `json:"pario"`

	// Health is the watchdog's verdict for the step (nil when no watchdog
	// is armed). obs defines only the wire type; the rule engine lives in
	// internal/health, which imports obs (not the other way round).
	Health *HealthStatus `json:"health,omitempty"`
}

// HealthStatus is the per-step health slice of a step record: the overall
// level ("ok" | "warn" | "fatal") and the names of any tripped checks.
type HealthStatus struct {
	Level   string   `json:"level"`
	Tripped []string `json:"tripped,omitempty"`
}

// RunInfo is the run_start payload: enough to identify what ran and how.
type RunInfo struct {
	Case      string            `json:"case"`
	GoVersion string            `json:"go_version"`
	Revision  string            `json:"revision,omitempty"`
	Modified  bool              `json:"modified,omitempty"` // VCS tree had local edits
	NumCPU    int               `json:"num_cpu"`
	Workers   int               `json:"workers,omitempty"` // kernel worker-pool size
	Config    map[string]string `json:"config"`            // flattened config manifest
}

// CheckpointEvent is the checkpoint payload.
type CheckpointEvent struct {
	Step int    `json:"step"`
	Path string `json:"path"`
}

// RunSummary is the run_done payload.
type RunSummary struct {
	Steps       int      `json:"steps"`
	SimTime     float64  `json:"sim_time"`
	WallSec     float64  `json:"wall_sec"`
	Metrics     Snapshot `json:"metrics"`
	PerfReport  string   `json:"perf_report,omitempty"`
	ExitMessage string   `json:"exit_message,omitempty"`
}

// Record is the JSONL envelope.
type Record struct {
	Kind       string           `json:"kind"`
	Run        *RunInfo         `json:"run,omitempty"`
	StepData   *StepEvent       `json:"step,omitempty"`
	Checkpoint *CheckpointEvent `json:"checkpoint,omitempty"`
	Done       *RunSummary      `json:"done,omitempty"`
}

// Trace writes the JSONL stream. Methods are safe for concurrent use.
type Trace struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer // non-nil when Trace owns the sink
	err error
}

// NewTrace wraps a writer. The caller owns w's lifetime.
func NewTrace(w io.Writer) *Trace {
	return &Trace{w: bufio.NewWriter(w)}
}

// CreateTrace creates (truncates) a trace file; Close flushes and closes it.
func CreateTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Trace{w: bufio.NewWriter(f), c: f}, nil
}

func (t *Trace) emit(rec Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.err = err
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// RunStart emits the run_start record.
func (t *Trace) RunStart(caseName string, config map[string]string) {
	t.emit(Record{Kind: KindRunStart, Run: NewRunInfo(caseName, config)})
}

// RunStartInfo emits the run_start record from a caller-built RunInfo (for
// callers that stamp fields NewRunInfo cannot know, like the worker-pool
// size — obs cannot import the execution layer, which imports obs).
func (t *Trace) RunStartInfo(info *RunInfo) {
	t.emit(Record{Kind: KindRunStart, Run: info})
}

// Step emits one step record.
func (t *Trace) Step(ev StepEvent) { t.emit(Record{Kind: KindStep, StepData: &ev}) }

// Checkpoint emits a checkpoint record.
func (t *Trace) Checkpoint(step int, path string) {
	t.emit(Record{Kind: KindCheckpoint, Checkpoint: &CheckpointEvent{Step: step, Path: path}})
}

// RunDone emits the run_done record.
func (t *Trace) RunDone(sum RunSummary) { t.emit(Record{Kind: KindRunDone, Done: &sum}) }

// Flush drains buffered records to the sink.
func (t *Trace) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes and, when Trace owns the sink, closes it. It returns the
// first error encountered over the trace's lifetime.
func (t *Trace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.c != nil {
		if cerr := t.c.Close(); t.err == nil {
			t.err = cerr
		}
		t.c = nil
	}
	return t.err
}

// NewRunInfo fills a RunInfo from the build environment.
func NewRunInfo(caseName string, config map[string]string) *RunInfo {
	info := &RunInfo{
		Case:      caseName,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Config:    config,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.modified":
				info.Modified = s.Value == "true"
			}
		}
	}
	return info
}

// ReadTrace parses a JSONL trace stream, tolerating a corrupt tail: a run
// killed mid-write leaves a truncated final line, and the valid prefix must
// still summarise. Unparseable lines with no valid record after them (the
// truncated-tail case, including an over-long final fragment) are dropped
// silently and the prefix is returned with a nil error. An unparseable line
// *followed by* valid records means mid-stream corruption: the valid prefix
// before the damage is returned along with an error naming the line.
func ReadTrace(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	var badErr error
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			if badErr == nil {
				badErr = fmt.Errorf("obs: trace line %d: %w", line, err)
			}
			continue
		}
		if badErr != nil {
			// Valid data after the damage: not a truncated tail.
			return recs, badErr
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		return recs, err
	}
	return recs, nil
}

// ReadTraceFile parses a trace.jsonl from disk.
func ReadTraceFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// TraceSummary condenses a trace for dashboards: the aggregate the
// workflow layer surfaces next to the min/max plots.
type TraceSummary struct {
	Case        string  `json:"case"`
	Steps       int     `json:"steps"`
	SimTime     float64 `json:"sim_time"`
	WallSec     float64 `json:"wall_sec"`
	MeanStepSec float64 `json:"mean_step_sec"`
	TMax        float64 `json:"t_max"`
	CommBytes   int64   `json:"comm_bytes"`
	CacheHits   float64 `json:"cache_hit_rate"`
	Checkpoints int     `json:"checkpoints"`
	Done        bool    `json:"done"`
	// Health is the final step's watchdog level ("" when the run carried
	// no watchdog); HealthTripped lists every check that was warn/fatal on
	// any step — the dashboard's health lane.
	Health        string   `json:"health,omitempty"`
	HealthTripped []string `json:"health_tripped,omitempty"`
}

// Summarize reduces parsed records to a TraceSummary.
func Summarize(recs []Record) TraceSummary {
	var s TraceSummary
	var stepWall float64
	tripped := map[string]bool{}
	for _, r := range recs {
		switch r.Kind {
		case KindRunStart:
			if r.Run != nil {
				s.Case = r.Run.Case
			}
		case KindStep:
			if ev := r.StepData; ev != nil {
				s.Steps++
				s.SimTime = ev.Time
				stepWall += ev.WallSec
				if ev.TMax > s.TMax {
					s.TMax = ev.TMax
				}
				// Comm/pario counters in step records are cumulative; the
				// last record carries the totals.
				s.CommBytes = ev.Comm.BytesSent
				s.CacheHits = ev.Pario.CacheHitRate
				if ev.Health != nil {
					s.Health = ev.Health.Level
					for _, name := range ev.Health.Tripped {
						if !tripped[name] {
							tripped[name] = true
							s.HealthTripped = append(s.HealthTripped, name)
						}
					}
				}
			}
		case KindCheckpoint:
			s.Checkpoints++
		case KindRunDone:
			s.Done = true
			if r.Done != nil {
				s.WallSec = r.Done.WallSec
			}
		}
	}
	if s.WallSec == 0 {
		s.WallSec = stepWall
	}
	if s.Steps > 0 {
		s.MeanStepSec = stepWall / float64(s.Steps)
	}
	return s
}

// SummarizeFile reads and summarises a trace file in one call.
func SummarizeFile(path string) (TraceSummary, error) {
	recs, err := ReadTraceFile(path)
	if err != nil {
		return TraceSummary{}, err
	}
	return Summarize(recs), nil
}

// StatusLine renders the human-readable periodic status line for a step
// event — the text exporter next to the JSONL one.
func (ev StepEvent) StatusLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "step %6d  t=%.4g s  dt=%.3g  CFL=%.2f  T=[%.0f,%.0f] K  wall=%.1f ms",
		ev.Step, ev.Time, ev.Dt, ev.CFL, ev.TMin, ev.TMax, ev.WallSec*1e3)
	if ev.Comm.BytesSent > 0 {
		fmt.Fprintf(&b, "  comm=%.1f MB", float64(ev.Comm.BytesSent)/1e6)
	}
	if ev.Pario.CacheAccesses > 0 {
		fmt.Fprintf(&b, "  cache=%.0f%%", ev.Pario.CacheHitRate*100)
	}
	return b.String()
}
