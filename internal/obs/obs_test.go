package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"reflect"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("comm.bytes")
	c.Add(100)
	c.Inc()
	if c.Value() != 101 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("comm.bytes") != c {
		t.Fatal("counter not memoised")
	}
	g := r.Gauge("solver.t")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
	h := r.Histogram("flush.sec", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-55.55/4) > 1e-12 {
		t.Fatalf("hist mean = %g", got)
	}
	s := r.Snapshot()
	hs := s.Histograms["flush.sec"]
	if !reflect.DeepEqual(hs.Counts, []int64{1, 1, 1, 1}) {
		t.Fatalf("bucket counts = %v", hs.Counts)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", []float64{500}).Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Fatalf("counter = %d", s.Counters["n"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("hist count = %d", s.Histograms["h"].Count)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("nil registry should snapshot empty")
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("bytes").Add(10)
	a.Gauge("tmax").Set(1500)
	b := NewRegistry()
	b.Counter("bytes").Add(5)
	b.Gauge("tmax").Set(1800)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters["bytes"] != 15 {
		t.Fatalf("merged counter = %d", s.Counters["bytes"])
	}
	if s.Gauges["tmax"] != 1800 {
		t.Fatalf("merged gauge = %g", s.Gauges["tmax"])
	}
}

// sampleStep returns a fully populated step event for round-trip tests.
func sampleStep(step int) StepEvent {
	return StepEvent{
		Step: step, Time: 1.25e-6 * float64(step), Dt: 1.25e-6, CFL: 0.41,
		WallSec:      0.013,
		StageWallSec: []float64{0.002, 0.002, 0.002, 0.002, 0.002, 0.003},
		TMin:         298.2, TMax: 1712.9, PMin: 100900, PMax: 101800,
		MassDrift: -3.1e-13, HeatRelease: 4.2e3,
		Comm: CommStats{
			BytesSent: 81920, MsgsSent: 12, BytesRecv: 81920, MsgsRecv: 12,
			WaitSec: 0.0004, CollSec: 0.0001, Allreduces: 2, Barriers: 1,
		},
		Pario: ParioStats{
			CacheAccesses: 64, CacheMisses: 8, CacheEvictions: 2,
			RemoteForwards: 16, CacheHitRate: 0.875,
			WBQueueBytes: 4096, WBFlushes: 3, WBFlushSec: 0.002, WBLocalWrites: 40,
		},
	}
}

// TestTraceSchemaRoundTrip asserts the acceptance-criterion schema: per-step
// records carry dt, CFL, per-stage wall time, comm bytes and the pario cache
// hit rate, and survive an encode/decode cycle exactly.
func TestTraceSchemaRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.RunStart("liftedjet", map[string]string{"nx": "96", "ny": "72"})
	want := []StepEvent{sampleStep(1), sampleStep(2)}
	for _, ev := range want {
		tr.Step(ev)
	}
	tr.Checkpoint(2, "out/restart-000002.sdf")
	tr.RunDone(RunSummary{Steps: 2, SimTime: 2.5e-6, WallSec: 0.031})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	if recs[0].Kind != KindRunStart || recs[0].Run == nil || recs[0].Run.Case != "liftedjet" {
		t.Fatalf("bad run_start: %+v", recs[0])
	}
	if recs[0].Run.GoVersion == "" || recs[0].Run.Config["nx"] != "96" {
		t.Fatalf("run_start missing build/config info: %+v", recs[0].Run)
	}
	for i, ev := range want {
		got := recs[1+i]
		if got.Kind != KindStep || got.StepData == nil {
			t.Fatalf("record %d not a step: %+v", 1+i, got)
		}
		if !reflect.DeepEqual(*got.StepData, ev) {
			t.Fatalf("step %d round-trip mismatch:\n got %+v\nwant %+v", i, *got.StepData, ev)
		}
	}
	if recs[3].Kind != KindCheckpoint || recs[3].Checkpoint.Step != 2 {
		t.Fatalf("bad checkpoint: %+v", recs[3])
	}
	if recs[4].Kind != KindRunDone || recs[4].Done.Steps != 2 {
		t.Fatalf("bad run_done: %+v", recs[4])
	}

	// The JSON keys the acceptance criterion names must be literally present.
	line := bytes.Split(buf.Bytes(), []byte("\n"))[1]
	for _, key := range []string{`"dt"`, `"cfl"`, `"stage_wall_sec"`, `"bytes_sent"`, `"cache_hit_rate"`} {
		if !bytes.Contains(line, []byte(key)) {
			t.Fatalf("step record missing %s: %s", key, line)
		}
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.RunStart("bunsen-a", nil)
	for i := 1; i <= 3; i++ {
		ev := sampleStep(i)
		ev.Comm.BytesSent = int64(i) * 1000 // cumulative
		tr.Step(ev)
	}
	tr.Checkpoint(3, "x.sdf")
	tr.RunDone(RunSummary{Steps: 3, SimTime: 3.75e-6, WallSec: 0.05})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(recs)
	if s.Case != "bunsen-a" || s.Steps != 3 || !s.Done || s.Checkpoints != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.CommBytes != 3000 {
		t.Fatalf("comm bytes = %d (want last cumulative value)", s.CommBytes)
	}
	if s.TMax != 1712.9 || s.WallSec != 0.05 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestReadTraceBadLine(t *testing.T) {
	// A garbage tail (run killed mid-write) must not lose the valid prefix
	// or fail; mid-stream garbage with valid records after it must error.
	recs, err := ReadTrace(bytes.NewReader([]byte("{\"kind\":\"step\"}\nnot json\n")))
	if err != nil {
		t.Fatalf("corrupt tail must recover the prefix: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("prefix records = %d, want 1", len(recs))
	}
	_, err = ReadTrace(bytes.NewReader([]byte("{\"kind\":\"step\"}\nnot json\n{\"kind\":\"step\"}\n")))
	if err == nil {
		t.Fatal("mid-stream corruption must surface an error")
	}
}

func TestStatusLine(t *testing.T) {
	line := sampleStep(7).StatusLine()
	for _, want := range []string{"step", "dt=", "CFL=", "T=[", "cache=88%"} {
		if !bytes.Contains([]byte(line), []byte(want)) {
			t.Fatalf("status line missing %q: %s", want, line)
		}
	}
}

func TestMonitorServesLiveMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("comm.bytes_sent").Add(12345)
	m, err := StartMonitor("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetRun(NewRunInfo("test-case", map[string]string{"steps": "10"}))
	m.Observe(sampleStep(9))

	get := func(path string) []byte {
		resp, err := http.Get("http://" + m.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["comm.bytes_sent"] != 12345 {
		t.Fatalf("metrics = %+v", snap.Counters)
	}

	var doc struct {
		Run      *RunInfo   `json:"run"`
		LastStep *StepEvent `json:"last_step"`
	}
	if err := json.Unmarshal(get("/status"), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Run == nil || doc.Run.Case != "test-case" {
		t.Fatalf("status run = %+v", doc.Run)
	}
	if doc.LastStep == nil || doc.LastStep.Step != 9 || doc.LastStep.Dt != 1.25e-6 {
		t.Fatalf("status last_step = %+v", doc.LastStep)
	}
	if string(get("/healthz")) != "ok\n" {
		t.Fatal("bad healthz")
	}

	// Live update: a later observation must be visible immediately.
	reg.Counter("comm.bytes_sent").Add(1)
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["comm.bytes_sent"] != 12346 {
		t.Fatalf("metrics not live: %+v", snap.Counters)
	}
}

func TestParioHitRate(t *testing.T) {
	p := ParioStats{CacheAccesses: 8, CacheMisses: 2}
	if got := p.HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %g", got)
	}
	if (&ParioStats{}).HitRate() != 0 {
		t.Fatal("empty hit rate should be 0")
	}
}
