package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), so standard scrapers can pull the monitor's
// /metrics.prom endpoint. Metric names are sanitised to the Prometheus
// charset (dots and other separators become underscores); histogram
// buckets are emitted cumulatively with the conventional
// name_bucket{le="..."} / name_sum / name_count triple.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trippable form).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
