package deriv

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/kernels"
)

// stretchedMetric returns the metric line of a genuinely stretched grid
// direction (the algebraic transverse stretching of paper §2.6), so the
// parity tests run the per-point metric multiply with non-trivial values.
func stretchedMetric(n int) []float64 {
	g := grid.New(grid.Spec{Nx: 4, Ny: n, Nz: 1, Lx: 1, Ly: 1, Lz: 1,
		StretchY: true, Beta: 1.8})
	return g.Metric(grid.Y)
}

// straddlingTilings returns tile decompositions of the axis-aligned box
// whose cuts land inside the one-sided closure regions (width 4 for the
// derivative, 5 for the filter), so individual tiles straddle the
// closure/interior seam at both BC ends.
func straddlingTilings(dims [3]int, ax int) [][2][3]int {
	n := dims[ax]
	var out [][2][3]int
	add := func(lo, hi int) {
		l, h := [3]int{0, 0, 0}, dims
		l[ax], h[ax] = lo, hi
		out = append(out, [2][3]int{l, h})
	}
	// One tile covering everything (both ends at once), then a split with
	// both cut points inside the closure regions: [0,2), [2,n-3), [n-3,n).
	add(0, n)
	add(0, 2)
	add(2, n-3)
	add(n-3, n)
	return out
}

// TestDiffRangeOnBackendsBitwise: for every backend, axis and closure
// combination, tiles that straddle both BC ends must reproduce the
// whole-field Diff bitwise on a stretched metric — the kernels contract
// (backends change addressing, never arithmetic).
func TestDiffRangeOnBackendsBitwise(t *testing.T) {
	nx, ny, nz := 14, 12, 11
	f := randomField(nx, ny, nz, 21)
	dims := [3]int{nx, ny, nz}
	for _, a := range []grid.Axis{grid.X, grid.Y, grid.Z} {
		met := stretchedMetric(dims[int(a)])
		for _, bc := range [][2]BC{{UseGhosts, UseGhosts}, {OneSided, OneSided}, {OneSided, UseGhosts}} {
			want := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
			Diff(want, f, a, met, bc[0], bc[1])
			for _, name := range kernels.Names() {
				im, _ := kernels.Get(name)
				got := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
				for _, box := range straddlingTilings(dims, int(a)) {
					DiffRangeOn(im, got, f, a, met, bc[0], bc[1], box[0], box[1], OpSet)
				}
				for i := range want.Data {
					if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
						t.Fatalf("backend %s axis %v bc %v: flat %d = %x want %x",
							name, a, bc, i, math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
					}
				}
			}
		}
	}
}

// TestFilterRangeOnBackendsBitwise mirrors the Diff test for the filter.
func TestFilterRangeOnBackendsBitwise(t *testing.T) {
	nx, ny, nz := 15, 13, 12
	f := randomField(nx, ny, nz, 22)
	dims := [3]int{nx, ny, nz}
	for _, a := range []grid.Axis{grid.X, grid.Y, grid.Z} {
		for _, bc := range [][2]BC{{UseGhosts, UseGhosts}, {OneSided, OneSided}} {
			want := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
			Filter(want, f, a, 0.7, bc[0], bc[1])
			for _, name := range kernels.Names() {
				im, _ := kernels.Get(name)
				got := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
				for _, box := range straddlingTilings(dims, int(a)) {
					FilterRangeOn(im, got, f, a, 0.7, bc[0], bc[1], box[0], box[1], OpSet)
				}
				for i := range want.Data {
					if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
						t.Fatalf("backend %s axis %v bc %v: flat %d differs", name, a, bc, i)
					}
				}
			}
		}
	}
}

// TestDiffRangeOnNarrowDst: a float32 destination (a demoted gradient under
// the mixed policy) must receive the float64 stencil result rounded once on
// store, identically for every backend — i.e. float32(full-width result).
func TestDiffRangeOnNarrowDst(t *testing.T) {
	nx, ny, nz := 12, 10, 9
	f := randomField(nx, ny, nz, 23)
	met := stretchedMetric(ny)
	dims := [3]int{nx, ny, nz}

	narrow := func() *grid.Field3 {
		fs := grid.NewFieldSetPolicy(nx, ny, nz, grid.Ghost, grid.PolicyMixed)
		id := fs.Register(grid.FieldMeta{Name: "g", Role: grid.RoleGradient, Species: -1})
		fs.Build()
		return fs.Field(id)
	}

	wide := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
	Diff(wide, f, grid.Y, met, OneSided, OneSided)

	for _, name := range kernels.Names() {
		im, _ := kernels.Get(name)
		got := narrow()
		if got.Data32 == nil {
			t.Fatal("mixed-policy gradient must be float32 storage")
		}
		for _, box := range straddlingTilings(dims, 1) {
			DiffRangeOn(im, got, f, grid.Y, met, OneSided, OneSided, box[0], box[1], OpSet)
		}
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					w := float32(wide.At(i, j, k))
					g := float32(got.At(i, j, k))
					if math.Float32bits(w) != math.Float32bits(g) {
						t.Fatalf("backend %s: (%d,%d,%d) = %x want %x (round-once contract)",
							name, i, j, k, math.Float32bits(g), math.Float32bits(w))
					}
				}
			}
		}
	}
}
