package deriv

import "github.com/s3dgo/s3d/internal/grid"

// Op selects how a ranged operator writes its result into dst.
type Op int

const (
	OpSet Op = iota // dst = result
	OpAdd           // dst += result
)

// DiffRange is Diff restricted to the interior index box [boxLo, boxHi)
// (half-open, interior coordinates): only points inside the box are written,
// with exactly the arithmetic Diff would use for them, so a set of tiles
// covering the interior reproduces a full Diff bitwise regardless of the
// tiling. src values are only read, never written, which is what lets tiles
// that cut across the derivative axis run concurrently.
//
// With op == OpAdd the derivative is accumulated into dst instead of stored,
// fusing the AXPY that a divergence would otherwise need into the sweep.
func DiffRange(dst, f *grid.Field3, a grid.Axis, met []float64, lo, hi BC, boxLo, boxHi [3]int, op Op) {
	n := dimOf(f, a)
	ax := int(a)
	s0, s1 := boxLo[ax], boxHi[ax]
	if n == 1 {
		rangeFill(dst, boxLo, boxHi, op)
		return
	}
	stride := strideOf(f, a)
	eachLineRange(f, a, boxLo, boxHi, func(base int) {
		diffLineRange(dst.Data, f.Data, base, stride, n, met, lo, hi, s0, s1, op)
	})
}

// diffLineRange is diffLine clamped to the span [s0, s1) along the line.
func diffLineRange(dst, src []float64, base, stride, n int, met []float64, lo, hi BC, s0, s1 int, op Op) {
	i0, i1 := 0, n
	if lo == OneSided {
		i0 = 4
	}
	if hi == OneSided {
		i1 = n - 4
	}
	if i1 < i0 {
		i0, i1 = 0, 0
	}
	c0, c1 := max(i0, s0), min(i1, s1)
	for i := c0; i < c1; i++ {
		p := base + i*stride
		d := c8[0]*(src[p+stride]-src[p-stride]) +
			c8[1]*(src[p+2*stride]-src[p-2*stride]) +
			c8[2]*(src[p+3*stride]-src[p-3*stride]) +
			c8[3]*(src[p+4*stride]-src[p-4*stride])
		store(dst, p, d*met[i], op)
	}
	if lo == OneSided {
		closeLowRange(dst, src, base, stride, n, met, min(i0, s1), s0, op)
	}
	if hi == OneSided {
		closeHighRange(dst, src, base, stride, n, met, max(i1, s0), s1, op)
	}
}

// closeLowRange is closeLow over [from, upto) — the low-boundary closure
// points clamped into the span.
func closeLowRange(dst, src []float64, base, stride, n int, met []float64, upto, from int, op Op) {
	for i := max(from, 0); i < upto && i < n; i++ {
		p := base + i*stride
		var d float64
		switch {
		case i == 0:
			for m, w := range b0 {
				d += w * src[p+m*stride]
			}
		case i == 1:
			for m, w := range b1 {
				d += w * src[p+(m-1)*stride]
			}
		case i == 2:
			d = c4[0]*(src[p+stride]-src[p-stride]) + c4[1]*(src[p+2*stride]-src[p-2*stride])
		default: // i == 3
			d = c6[0]*(src[p+stride]-src[p-stride]) +
				c6[1]*(src[p+2*stride]-src[p-2*stride]) +
				c6[2]*(src[p+3*stride]-src[p-3*stride])
		}
		store(dst, p, d*met[i], op)
	}
}

// closeHighRange is closeHigh over [from, upto) at the high end.
func closeHighRange(dst, src []float64, base, stride, n int, met []float64, from, upto int, op Op) {
	for i := max(from, 0); i < n && i < upto; i++ {
		r := n - 1 - i
		p := base + i*stride
		var d float64
		switch {
		case r == 0:
			for m, w := range b0 {
				d -= w * src[p-m*stride]
			}
		case r == 1:
			for m, w := range b1 {
				d -= w * src[p-(m-1)*stride]
			}
		case r == 2:
			d = c4[0]*(src[p+stride]-src[p-stride]) + c4[1]*(src[p+2*stride]-src[p-2*stride])
		default: // r == 3
			d = c6[0]*(src[p+stride]-src[p-stride]) +
				c6[1]*(src[p+2*stride]-src[p-2*stride]) +
				c6[2]*(src[p+3*stride]-src[p-3*stride])
		}
		store(dst, p, d*met[i], op)
	}
}

// FilterRange is Filter restricted to the interior index box [boxLo, boxHi),
// with the same tiling-invariance guarantee as DiffRange. Only OpSet makes
// physical sense for a filter, but the op parameter is kept for symmetry.
func FilterRange(dst, f *grid.Field3, a grid.Axis, sigma float64, lo, hi BC, boxLo, boxHi [3]int, op Op) {
	n := dimOf(f, a)
	ax := int(a)
	s0, s1 := boxLo[ax], boxHi[ax]
	if n == 1 {
		copyRangeOp(dst, f, boxLo, boxHi, op)
		return
	}
	stride := strideOf(f, a)
	eachLineRange(f, a, boxLo, boxHi, func(base int) {
		filterLineRange(dst.Data, f.Data, base, stride, n, sigma, lo, hi, s0, s1, op)
	})
}

func filterLineRange(dst, src []float64, base, stride, n int, sigma float64, lo, hi BC, s0, s1 int, op Op) {
	i0, i1 := 0, n
	if lo == OneSided {
		i0 = 5
	}
	if hi == OneSided {
		i1 = n - 5
	}
	if i1 < i0 {
		i0, i1 = 0, 0
	}
	scale := sigma / 1024.0
	for i := max(i0, s0); i < i1 && i < s1; i++ {
		p := base + i*stride
		var acc float64
		for l := -5; l <= 5; l++ {
			acc += filter10[l+5] * src[p+l*stride]
		}
		store(dst, p, src[p]-scale*acc, op)
	}
	if lo == OneSided {
		for i := max(0, s0); i < i0 && i < n && i < s1; i++ {
			filterBoundaryPointOp(dst, src, base, stride, i, i, sigma, op)
		}
	}
	if hi == OneSided {
		for i := max(i1, s0); i < n && i < s1; i++ {
			if i < 0 {
				continue
			}
			filterBoundaryPointOp(dst, src, base, stride, i, n-1-i, sigma, op)
		}
	}
}

func filterBoundaryPointOp(dst, src []float64, base, stride, i, d int, sigma float64, op Op) {
	p := base + i*stride
	if d == 0 {
		store(dst, p, src[p], op)
		return
	}
	scale := sigma / float64(int(1)<<uint(2*d))
	var acc float64
	for l := -d; l <= d; l++ {
		w := binom(2*d, d+l)
		if ((l%2)+2)%2 == 1 {
			w = -w
		}
		acc += w * src[p+l*stride]
	}
	store(dst, p, src[p]-scale*acc, op)
}

// store writes v into dst[p] under op.
func store(dst []float64, p int, v float64, op Op) {
	if op == OpAdd {
		dst[p] += v
	} else {
		dst[p] = v
	}
}

// rangeFill writes the unit-extent derivative (zero) into the box under op
// (OpAdd leaves dst unchanged, matching d/da ≡ 0 on a collapsed axis).
func rangeFill(dst *grid.Field3, boxLo, boxHi [3]int, op Op) {
	if op == OpAdd {
		return
	}
	n := boxHi[0] - boxLo[0]
	for k := boxLo[2]; k < boxHi[2]; k++ {
		for j := boxLo[1]; j < boxHi[1]; j++ {
			row := dst.Idx(boxLo[0], j, k)
			for i := 0; i < n; i++ {
				dst.Data[row+i] = 0
			}
		}
	}
}

// copyRangeOp is the unit-extent filter (identity) over the box.
func copyRangeOp(dst, src *grid.Field3, boxLo, boxHi [3]int, op Op) {
	n := boxHi[0] - boxLo[0]
	for k := boxLo[2]; k < boxHi[2]; k++ {
		for j := boxLo[1]; j < boxHi[1]; j++ {
			rs := src.Idx(boxLo[0], j, k)
			rd := dst.Idx(boxLo[0], j, k)
			if op == OpAdd {
				for i := 0; i < n; i++ {
					dst.Data[rd+i] += src.Data[rs+i]
				}
			} else {
				copy(dst.Data[rd:rd+n], src.Data[rs:rs+n])
			}
		}
	}
}

// eachLineRange invokes fn for every grid line along a whose transverse
// coordinates lie inside the box, passing the line's interior-origin flat
// index (the span along a is clamped separately by the line kernels).
func eachLineRange(f *grid.Field3, a grid.Axis, boxLo, boxHi [3]int, fn func(base int)) {
	switch a {
	case grid.X:
		for k := boxLo[2]; k < boxHi[2]; k++ {
			for j := boxLo[1]; j < boxHi[1]; j++ {
				fn(f.Idx(0, j, k))
			}
		}
	case grid.Y:
		for k := boxLo[2]; k < boxHi[2]; k++ {
			for i := boxLo[0]; i < boxHi[0]; i++ {
				fn(f.Idx(i, 0, k))
			}
		}
	default:
		for j := boxLo[1]; j < boxHi[1]; j++ {
			for i := boxLo[0]; i < boxHi[0]; i++ {
				fn(f.Idx(i, j, 0))
			}
		}
	}
}
