package deriv

import (
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/kernels"
)

// Op selects how a ranged operator writes its result into dst.
type Op int

const (
	OpSet Op = iota // dst = result
	OpAdd           // dst += result
)

// DiffRange is Diff restricted to the interior index box [boxLo, boxHi)
// (half-open, interior coordinates): only points inside the box are written,
// with exactly the arithmetic Diff would use for them, so a set of tiles
// covering the interior reproduces a full Diff bitwise regardless of the
// tiling. src values are only read, never written, which is what lets tiles
// that cut across the derivative axis run concurrently.
//
// With op == OpAdd the derivative is accumulated into dst instead of stored,
// fusing the AXPY that a divergence would otherwise need into the sweep.
//
// DiffRange runs on the generic backend; DiffRangeOn selects one explicitly.
func DiffRange(dst, f *grid.Field3, a grid.Axis, met []float64, lo, hi BC, boxLo, boxHi [3]int, op Op) {
	DiffRangeOn(kernels.Generic(), dst, f, a, met, lo, hi, boxLo, boxHi, op)
}

// DiffRangeOn is DiffRange with the interior-span stencil executed by an
// explicit kernel backend. The backend only changes addressing, never
// arithmetic, so every backend yields bitwise-identical results; the choice
// is a performance policy. dst may have float32 storage (a demoted gradient
// under the mixed precision policy): the stencil is still evaluated in
// float64 and rounded once on store.
func DiffRangeOn(im kernels.Impl, dst, f *grid.Field3, a grid.Axis, met []float64, lo, hi BC, boxLo, boxHi [3]int, op Op) {
	n := dimOf(f, a)
	ax := int(a)
	s0, s1 := boxLo[ax], boxHi[ax]
	if n == 1 {
		rangeFill(dst, boxLo, boxHi, op)
		return
	}
	stride := strideOf(f, a)
	src := f.Data
	eachLineRange(f, a, boxLo, boxHi, func(base int) {
		diffLineRangeOn(im, dst, src, base, stride, n, met, lo, hi, s0, s1, op)
	})
}

// diffLineRangeOn differentiates the span [s0, s1) of one grid line: the
// full-stencil interior through the backend, the reduced-order ends through
// the closures below.
func diffLineRangeOn(im kernels.Impl, dst *grid.Field3, src []float64, base, stride, n int, met []float64, lo, hi BC, s0, s1 int, op Op) {
	i0, i1 := 0, n
	if lo == OneSided {
		i0 = 4
	}
	if hi == OneSided {
		i1 = n - 4
	}
	if i1 < i0 {
		i0, i1 = 0, 0 // tiny line: handled fully by closures below
	}
	c0, c1 := max(i0, s0), min(i1, s1)
	if c1 > c0 {
		if dst.Data32 != nil {
			im.DiffInterior32(dst.Data32, src, base, stride, c0, c1, met, op == OpAdd)
		} else {
			im.DiffInterior(dst.Data, src, base, stride, c0, c1, met, op == OpAdd)
		}
	}
	if lo == OneSided {
		if dst.Data32 != nil {
			closeLowRange(dst.Data32, src, base, stride, n, met, min(i0, s1), s0, op)
		} else {
			closeLowRange(dst.Data, src, base, stride, n, met, min(i0, s1), s0, op)
		}
	}
	if hi == OneSided {
		if dst.Data32 != nil {
			closeHighRange(dst.Data32, src, base, stride, n, met, max(i1, s0), s1, op)
		} else {
			closeHighRange(dst.Data, src, base, stride, n, met, max(i1, s0), s1, op)
		}
	}
}

// closeLowRange applies the low-boundary closure over [from, upto) — the
// closure points clamped into the span. The stencil is evaluated in float64
// for either destination width.
func closeLowRange[F grid.Float](dst []F, src []float64, base, stride, n int, met []float64, upto, from int, op Op) {
	for i := max(from, 0); i < upto && i < n; i++ {
		p := base + i*stride
		var d float64
		switch {
		case i == 0:
			for m, w := range b0 {
				d += w * src[p+m*stride]
			}
		case i == 1:
			for m, w := range b1 {
				d += w * src[p+(m-1)*stride]
			}
		case i == 2:
			d = c4[0]*(src[p+stride]-src[p-stride]) + c4[1]*(src[p+2*stride]-src[p-2*stride])
		default: // i == 3
			d = c6[0]*(src[p+stride]-src[p-stride]) +
				c6[1]*(src[p+2*stride]-src[p-2*stride]) +
				c6[2]*(src[p+3*stride]-src[p-3*stride])
		}
		store(dst, p, d*met[i], op)
	}
}

// closeHighRange mirrors closeLowRange at the high end, for [from, upto).
func closeHighRange[F grid.Float](dst []F, src []float64, base, stride, n int, met []float64, from, upto int, op Op) {
	for i := max(from, 0); i < n && i < upto; i++ {
		r := n - 1 - i // distance from the high boundary
		p := base + i*stride
		var d float64
		switch {
		case r == 0:
			for m, w := range b0 {
				d -= w * src[p-m*stride]
			}
		case r == 1:
			for m, w := range b1 {
				d -= w * src[p-(m-1)*stride]
			}
		case r == 2:
			d = c4[0]*(src[p+stride]-src[p-stride]) + c4[1]*(src[p+2*stride]-src[p-2*stride])
		default: // r == 3
			d = c6[0]*(src[p+stride]-src[p-stride]) +
				c6[1]*(src[p+2*stride]-src[p-2*stride]) +
				c6[2]*(src[p+3*stride]-src[p-3*stride])
		}
		store(dst, p, d*met[i], op)
	}
}

// FilterRange is Filter restricted to the interior index box [boxLo, boxHi),
// with the same tiling-invariance guarantee as DiffRange. Only OpSet makes
// physical sense for a filter, but the op parameter is kept for symmetry.
// The filter round-trips conserved state, so dst must be float64 storage.
func FilterRange(dst, f *grid.Field3, a grid.Axis, sigma float64, lo, hi BC, boxLo, boxHi [3]int, op Op) {
	FilterRangeOn(kernels.Generic(), dst, f, a, sigma, lo, hi, boxLo, boxHi, op)
}

// FilterRangeOn is FilterRange with the interior span executed by an
// explicit kernel backend (same bitwise guarantee as DiffRangeOn).
func FilterRangeOn(im kernels.Impl, dst, f *grid.Field3, a grid.Axis, sigma float64, lo, hi BC, boxLo, boxHi [3]int, op Op) {
	n := dimOf(f, a)
	ax := int(a)
	s0, s1 := boxLo[ax], boxHi[ax]
	if n == 1 {
		copyRangeOp(dst, f, boxLo, boxHi, op)
		return
	}
	stride := strideOf(f, a)
	dd, src := dst.Data, f.Data
	eachLineRange(f, a, boxLo, boxHi, func(base int) {
		filterLineRangeOn(im, dd, src, base, stride, n, sigma, lo, hi, s0, s1, op)
	})
}

func filterLineRangeOn(im kernels.Impl, dst, src []float64, base, stride, n int, sigma float64, lo, hi BC, s0, s1 int, op Op) {
	i0, i1 := 0, n
	if lo == OneSided {
		i0 = 5
	}
	if hi == OneSided {
		i1 = n - 5
	}
	if i1 < i0 {
		i0, i1 = 0, 0
	}
	c0, c1 := max(i0, s0), min(i1, s1)
	if c1 > c0 {
		im.FilterInterior(dst, src, base, stride, c0, c1, sigma/1024.0, op == OpAdd)
	}
	if lo == OneSided {
		for i := max(0, s0); i < i0 && i < n && i < s1; i++ {
			filterBoundaryPointOp(dst, src, base, stride, i, i, sigma, op)
		}
	}
	if hi == OneSided {
		for i := max(i1, s0); i < n && i < s1; i++ {
			if i < 0 {
				continue
			}
			filterBoundaryPointOp(dst, src, base, stride, i, n-1-i, sigma, op)
		}
	}
}

// filterBoundaryPointOp applies the order-2d symmetric filter at a point d
// away from the boundary (identity when d == 0).
func filterBoundaryPointOp(dst, src []float64, base, stride, i, d int, sigma float64, op Op) {
	p := base + i*stride
	if d == 0 {
		store(dst, p, src[p], op)
		return
	}
	// Weights (−1)^l·C(2d, d+l): an order-2d analogue of the interior filter.
	scale := sigma / float64(int(1)<<uint(2*d))
	var acc float64
	for l := -d; l <= d; l++ {
		w := binom(2*d, d+l)
		if ((l%2)+2)%2 == 1 {
			w = -w
		}
		acc += w * src[p+l*stride]
	}
	store(dst, p, src[p]-scale*acc, op)
}

// store writes v into dst[p] under op, widening any existing narrow value
// for the accumulation and rounding once on store. For float64 destinations
// the conversions are identities and the code is the original dst[p] += v.
func store[F grid.Float](dst []F, p int, v float64, op Op) {
	if op == OpAdd {
		dst[p] = F(float64(dst[p]) + v)
	} else {
		dst[p] = F(v)
	}
}

// rangeFill writes the unit-extent derivative (zero) into the box under op
// (OpAdd leaves dst unchanged, matching d/da ≡ 0 on a collapsed axis).
func rangeFill(dst *grid.Field3, boxLo, boxHi [3]int, op Op) {
	if op == OpAdd {
		return
	}
	n := boxHi[0] - boxLo[0]
	for k := boxLo[2]; k < boxHi[2]; k++ {
		for j := boxLo[1]; j < boxHi[1]; j++ {
			row := dst.Idx(boxLo[0], j, k)
			if dst.Data32 != nil {
				for i := 0; i < n; i++ {
					dst.Data32[row+i] = 0
				}
			} else {
				for i := 0; i < n; i++ {
					dst.Data[row+i] = 0
				}
			}
		}
	}
}

// copyRangeOp is the unit-extent filter (identity) over the box.
func copyRangeOp(dst, src *grid.Field3, boxLo, boxHi [3]int, op Op) {
	n := boxHi[0] - boxLo[0]
	for k := boxLo[2]; k < boxHi[2]; k++ {
		for j := boxLo[1]; j < boxHi[1]; j++ {
			rs := src.Idx(boxLo[0], j, k)
			rd := dst.Idx(boxLo[0], j, k)
			if op == OpAdd {
				for i := 0; i < n; i++ {
					dst.Data[rd+i] += src.Data[rs+i]
				}
			} else {
				copy(dst.Data[rd:rd+n], src.Data[rs:rs+n])
			}
		}
	}
}

// eachLineRange invokes fn for every grid line along a whose transverse
// coordinates lie inside the box, passing the line's interior-origin flat
// index (the span along a is clamped separately by the line kernels).
func eachLineRange(f *grid.Field3, a grid.Axis, boxLo, boxHi [3]int, fn func(base int)) {
	switch a {
	case grid.X:
		for k := boxLo[2]; k < boxHi[2]; k++ {
			for j := boxLo[1]; j < boxHi[1]; j++ {
				fn(f.Idx(0, j, k))
			}
		}
	case grid.Y:
		for k := boxLo[2]; k < boxHi[2]; k++ {
			for i := boxLo[0]; i < boxHi[0]; i++ {
				fn(f.Idx(i, 0, k))
			}
		}
	default:
		for j := boxLo[1]; j < boxHi[1]; j++ {
			for i := boxLo[0]; i < boxHi[0]; i++ {
				fn(f.Idx(i, j, 0))
			}
		}
	}
}
