package deriv

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/grid"
)

// sineField fills a field with sin(2πx/L)·cos(2πy/L)·sin(4πz/L) on a
// periodic box including ghosts by periodic extension.
func sineField(g *grid.Grid) *grid.Field3 {
	f := grid.NewField3(g)
	f.Map(func(i, j, k int, _ float64) float64 {
		x := g.Xc[i]
		y := g.Yc[j]
		z := g.Zc[k]
		return math.Sin(2*math.Pi*x/g.Lx) * math.Cos(2*math.Pi*y/g.Ly) * math.Sin(4*math.Pi*z/g.Lz)
	})
	return f
}

// analyticGhosts fills a field, ghosts included, from an analytic profile in
// the x index so convergence tests control boundary data exactly.
func analyticGhosts(g *grid.Grid, f *grid.Field3, fn func(x float64) float64, h float64) {
	for k := -f.G; k < f.Nz+f.G; k++ {
		for j := -f.G; j < f.Ny+f.G; j++ {
			for i := -f.G; i < f.Nx+f.G; i++ {
				f.Set(i, j, k, fn(float64(i)*h))
			}
		}
	}
}

// maxErrX returns the max-norm error of the x-derivative of fn against dfn.
func maxErrX(n int, fn, dfn func(float64) float64, lo, hi BC) float64 {
	h := 1.0 / float64(n-1)
	g := grid.New(grid.Spec{Nx: n, Ny: 3, Nz: 3, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	analyticGhosts(g, f, fn, h)
	d := grid.NewField3(g)
	Diff(d, f, grid.X, g.MetX, lo, hi)
	var max float64
	for i := 0; i < n; i++ {
		err := math.Abs(d.At(i, 1, 1) - dfn(float64(i)*h))
		if err > max {
			max = err
		}
	}
	return max
}

func TestDiffExactOnPolynomials(t *testing.T) {
	// The centred 8th-order stencil differentiates degree-8 polynomials
	// exactly (up to roundoff).
	fn := func(x float64) float64 {
		return 1 + x + x*x - 3*math.Pow(x, 5) + 0.5*math.Pow(x, 8)
	}
	dfn := func(x float64) float64 {
		return 1 + 2*x - 15*math.Pow(x, 4) + 4*math.Pow(x, 7)
	}
	if err := maxErrX(21, fn, dfn, UseGhosts, UseGhosts); err > 1e-9 {
		t.Fatalf("interior stencil not exact on degree-8 polynomial: err=%g", err)
	}
}

func TestDiffEighthOrderConvergence(t *testing.T) {
	fn := func(x float64) float64 { return math.Sin(4 * math.Pi * x) }
	dfn := func(x float64) float64 { return 4 * math.Pi * math.Cos(4*math.Pi*x) }
	e1 := maxErrX(33, fn, dfn, UseGhosts, UseGhosts)
	e2 := maxErrX(65, fn, dfn, UseGhosts, UseGhosts)
	rate := math.Log2(e1 / e2)
	if rate < 7.5 {
		t.Fatalf("interior convergence rate = %.2f, want ≈ 8", rate)
	}
}

func TestDiffOneSidedConvergence(t *testing.T) {
	fn := func(x float64) float64 { return math.Sin(3 * x) }
	dfn := func(x float64) float64 { return 3 * math.Cos(3*x) }
	e1 := maxErrX(33, fn, dfn, OneSided, OneSided)
	e2 := maxErrX(65, fn, dfn, OneSided, OneSided)
	rate := math.Log2(e1 / e2)
	// Boundary closures are 4th order; the global max-norm rate must be ≥ 4.
	if rate < 3.7 {
		t.Fatalf("one-sided convergence rate = %.2f, want ≥ 4", rate)
	}
}

func TestDiffOneSidedExactOnCubics(t *testing.T) {
	fn := func(x float64) float64 { return 1 - 2*x + 3*x*x - 4*x*x*x }
	dfn := func(x float64) float64 { return -2 + 6*x - 12*x*x }
	if err := maxErrX(17, fn, dfn, OneSided, OneSided); err > 1e-10 {
		t.Fatalf("one-sided closure not exact on cubic: err=%g", err)
	}
}

func TestDiffYAndZAxes(t *testing.T) {
	n := 33
	g := grid.New(grid.Spec{Nx: 3, Ny: n, Nz: n, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	hy := 1.0 / float64(n-1)
	for k := -f.G; k < f.Nz+f.G; k++ {
		for j := -f.G; j < f.Ny+f.G; j++ {
			for i := -f.G; i < f.Nx+f.G; i++ {
				f.Set(i, j, k, math.Sin(2*float64(j)*hy)+math.Cos(3*float64(k)*hy))
			}
		}
	}
	dy := grid.NewField3(g)
	dz := grid.NewField3(g)
	Diff(dy, f, grid.Y, g.MetY, UseGhosts, UseGhosts)
	Diff(dz, f, grid.Z, g.MetZ, UseGhosts, UseGhosts)
	for idx := 5; idx < n-5; idx++ {
		wantY := 2 * math.Cos(2*float64(idx)*hy)
		if err := math.Abs(dy.At(1, idx, 1) - wantY); err > 1e-6 {
			t.Fatalf("y-derivative error %g at %d", err, idx)
		}
		wantZ := -3 * math.Sin(3*float64(idx)*hy)
		if err := math.Abs(dz.At(1, 1, idx) - wantZ); err > 1e-6 {
			t.Fatalf("z-derivative error %g at %d", err, idx)
		}
	}
}

func TestDiffDegenerateAxisIsZero(t *testing.T) {
	g := grid.New(grid.Spec{Nx: 8, Ny: 8, Nz: 1, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	f.Fill(3.7)
	d := grid.NewField3(g)
	d.Fill(42)
	Diff(d, f, grid.Z, g.MetZ, UseGhosts, UseGhosts)
	d.Each(func(i, j, k int, v float64) {
		if v != 0 {
			t.Fatalf("derivative along degenerate axis = %g, want 0", v)
		}
	})
}

func TestStretchedMetricDerivative(t *testing.T) {
	// d/dy of sin(y) on a stretched line through the metric formulation.
	n := 81
	g := grid.New(grid.Spec{Nx: 3, Ny: n, Nz: 3, Lx: 1, Ly: 2, Lz: 1, StretchY: true, Beta: 1.8})
	f := grid.NewField3(g)
	f.Map(func(i, j, k int, _ float64) float64 { return math.Sin(g.Yc[j]) })
	d := grid.NewField3(g)
	Diff(d, f, grid.Y, g.MetY, OneSided, OneSided)
	for j := 4; j < n-4; j++ {
		want := math.Cos(g.Yc[j])
		if err := math.Abs(d.At(1, j, 1) - want); err > 5e-5 {
			t.Fatalf("stretched derivative error %g at j=%d", err, j)
		}
	}
}

func TestFilterRemovesNyquistExactly(t *testing.T) {
	n := 32
	g := grid.New(grid.Spec{Nx: n, Ny: 3, Nz: 3, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	for k := -f.G; k < f.Nz+f.G; k++ {
		for j := -f.G; j < f.Ny+f.G; j++ {
			for i := -f.G; i < f.Nx+f.G; i++ {
				v := 1.0
				if ((i%2)+2)%2 == 1 {
					v = -1.0
				}
				f.Set(i, j, k, v)
			}
		}
	}
	out := grid.NewField3(g)
	Filter(out, f, grid.X, 1.0, UseGhosts, UseGhosts)
	for i := 0; i < n; i++ {
		if v := out.At(i, 1, 1); math.Abs(v) > 1e-12 {
			t.Fatalf("Nyquist survives filter at %d: %g", i, v)
		}
	}
}

func TestFilterPreservesConstants(t *testing.T) {
	g := grid.New(grid.Spec{Nx: 16, Ny: 16, Nz: 3, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	f.Fill(2.5)
	out := grid.NewField3(g)
	Filter(out, f, grid.X, 1.0, OneSided, OneSided)
	out2 := grid.NewField3(g)
	Filter(out2, out, grid.Y, 1.0, OneSided, OneSided)
	out2.Each(func(i, j, k int, v float64) {
		if math.Abs(v-2.5) > 1e-12 {
			t.Fatalf("filter distorts constant: %g at (%d,%d,%d)", v, i, j, k)
		}
	})
}

func TestFilterTenthOrderOnSmooth(t *testing.T) {
	errAt := func(n int) float64 {
		h := 1.0 / float64(n-1)
		g := grid.New(grid.Spec{Nx: n, Ny: 3, Nz: 3, Lx: 1, Ly: 1, Lz: 1})
		f := grid.NewField3(g)
		analyticGhosts(g, f, func(x float64) float64 { return math.Sin(2 * math.Pi * x) }, h)
		out := grid.NewField3(g)
		Filter(out, f, grid.X, 1.0, UseGhosts, UseGhosts)
		var max float64
		for i := 0; i < n; i++ {
			if e := math.Abs(out.At(i, 1, 1) - f.At(i, 1, 1)); e > max {
				max = e
			}
		}
		return max
	}
	e1 := errAt(17)
	e2 := errAt(33)
	rate := math.Log2(e1 / e2)
	if rate < 9.0 {
		t.Fatalf("filter convergence rate = %.2f, want ≈ 10", rate)
	}
}

func TestFilterBoundaryClosureDamps(t *testing.T) {
	// With OneSided closures the boundary point is untouched and near-boundary
	// points are filtered at reduced order; a noisy signal must lose energy.
	n := 24
	g := grid.New(grid.Spec{Nx: n, Ny: 3, Nz: 3, Lx: 1, Ly: 1, Lz: 1})
	f := grid.NewField3(g)
	f.Map(func(i, j, k int, _ float64) float64 {
		if ((i%2)+2)%2 == 1 {
			return -1
		}
		return 1
	})
	out := grid.NewField3(g)
	Filter(out, f, grid.X, 1.0, OneSided, OneSided)
	if got := out.At(0, 1, 1); got != 1 {
		t.Fatalf("boundary point modified by filter: %g", got)
	}
	var before, after float64
	for i := 1; i < n-1; i++ {
		before += f.At(i, 1, 1) * f.At(i, 1, 1)
		after += out.At(i, 1, 1) * out.At(i, 1, 1)
	}
	if after >= 0.05*before {
		t.Fatalf("filter with closures insufficiently dissipative: %g -> %g", before, after)
	}
}

func BenchmarkDiffX50Cubed(b *testing.B) {
	g := grid.New(grid.Spec{Nx: 50, Ny: 50, Nz: 50, Lx: 1, Ly: 1, Lz: 1})
	f := sineField(g)
	d := grid.NewField3(g)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		Diff(d, f, grid.X, g.MetX, UseGhosts, UseGhosts)
	}
}

func BenchmarkFilterX50Cubed(b *testing.B) {
	g := grid.New(grid.Spec{Nx: 50, Ny: 50, Nz: 50, Lx: 1, Ly: 1, Lz: 1})
	f := sineField(g)
	d := grid.NewField3(g)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		Filter(d, f, grid.X, 1.0, UseGhosts, UseGhosts)
	}
}
