package deriv

import (
	"math"
	"math/rand"
	"testing"

	"github.com/s3dgo/s3d/internal/grid"
)

// randomField fills interior and ghosts with reproducible noise.
func randomField(nx, ny, nz int, seed int64) *grid.Field3 {
	f := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	return f
}

func metric(n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = 1.7 + 0.01*float64(i)
	}
	return m
}

// TestDiffRangeTilesMatchDiff: covering the interior with tiles along every
// axis — including the derivative axis itself — must reproduce a full Diff
// bitwise, for every axis and boundary-closure combination.
func TestDiffRangeTilesMatchDiff(t *testing.T) {
	nx, ny, nz := 12, 10, 9
	f := randomField(nx, ny, nz, 1)
	dims := [3]int{nx, ny, nz}
	for _, a := range []grid.Axis{grid.X, grid.Y, grid.Z} {
		met := metric(dims[int(a)])
		for _, bc := range [][2]BC{{UseGhosts, UseGhosts}, {OneSided, OneSided}, {UseGhosts, OneSided}} {
			want := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
			Diff(want, f, a, met, bc[0], bc[1])
			for tileAx := 0; tileAx < 3; tileAx++ {
				got := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
				for c := 0; c < dims[tileAx]; c++ {
					lo, hi := [3]int{0, 0, 0}, dims
					lo[tileAx], hi[tileAx] = c, c+1
					DiffRange(got, f, a, met, bc[0], bc[1], lo, hi, OpSet)
				}
				for k := 0; k < nz; k++ {
					for j := 0; j < ny; j++ {
						for i := 0; i < nx; i++ {
							w, g := want.At(i, j, k), got.At(i, j, k)
							if math.Float64bits(w) != math.Float64bits(g) {
								t.Fatalf("axis %v bc %v tileAx %d: (%d,%d,%d) = %x want %x",
									a, bc, tileAx, i, j, k, g, w)
							}
						}
					}
				}
			}
		}
	}
}

// TestDiffRangeAddMatchesSetPlusAXPY: OpAdd must equal an OpSet into scratch
// followed by dst += scratch, bitwise.
func TestDiffRangeAddMatchesSetPlusAXPY(t *testing.T) {
	nx, ny, nz := 8, 7, 6
	f := randomField(nx, ny, nz, 2)
	met := metric(nx)
	box := [2][3]int{{0, 0, 0}, {nx, ny, nz}}

	acc := randomField(nx, ny, nz, 3)
	ref := acc.Clone()

	DiffRange(acc, f, grid.X, met, UseGhosts, UseGhosts, box[0], box[1], OpAdd)

	scratch := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
	DiffRange(scratch, f, grid.X, met, UseGhosts, UseGhosts, box[0], box[1], OpSet)
	ref.AXPYRange(1, scratch, box[0], box[1])

	for i := range acc.Data {
		if math.Float64bits(acc.Data[i]) != math.Float64bits(ref.Data[i]) {
			t.Fatalf("OpAdd diverges from Set+AXPY at flat %d", i)
		}
	}
}

// TestDiffRangeDegenerateAxis: derivative along a unit axis is zero under
// OpSet and a no-op under OpAdd.
func TestDiffRangeDegenerateAxis(t *testing.T) {
	f := randomField(6, 5, 1, 4)
	box := [2][3]int{{0, 0, 0}, {6, 5, 1}}
	dst := randomField(6, 5, 1, 5)
	DiffRange(dst, f, grid.Z, []float64{1}, UseGhosts, UseGhosts, box[0], box[1], OpSet)
	for k := 0; k < 1; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 6; i++ {
				if dst.At(i, j, k) != 0 {
					t.Fatal("OpSet on unit axis must zero the box")
				}
			}
		}
	}
	dst2 := randomField(6, 5, 1, 6)
	ref := dst2.Clone()
	DiffRange(dst2, f, grid.Z, []float64{1}, UseGhosts, UseGhosts, box[0], box[1], OpAdd)
	for i := range dst2.Data {
		if dst2.Data[i] != ref.Data[i] {
			t.Fatal("OpAdd on unit axis must leave dst unchanged")
		}
	}
}

// TestFilterRangeTilesMatchFilter mirrors the Diff test for the filter.
func TestFilterRangeTilesMatchFilter(t *testing.T) {
	nx, ny, nz := 13, 11, 12
	f := randomField(nx, ny, nz, 7)
	dims := [3]int{nx, ny, nz}
	for _, a := range []grid.Axis{grid.X, grid.Y, grid.Z} {
		for _, bc := range [][2]BC{{UseGhosts, UseGhosts}, {OneSided, OneSided}} {
			want := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
			Filter(want, f, a, 0.5, bc[0], bc[1])
			for tileAx := 0; tileAx < 3; tileAx++ {
				got := grid.NewField3Ghost(nx, ny, nz, grid.Ghost)
				for c := 0; c < dims[tileAx]; c++ {
					lo, hi := [3]int{0, 0, 0}, dims
					lo[tileAx], hi[tileAx] = c, c+1
					FilterRange(got, f, a, 0.5, bc[0], bc[1], lo, hi, OpSet)
				}
				for k := 0; k < nz; k++ {
					for j := 0; j < ny; j++ {
						for i := 0; i < nx; i++ {
							w, g := want.At(i, j, k), got.At(i, j, k)
							if math.Float64bits(w) != math.Float64bits(g) {
								t.Fatalf("axis %v bc %v tileAx %d: (%d,%d,%d) differ", a, bc, tileAx, i, j, k)
							}
						}
					}
				}
			}
		}
	}
}

// TestFilterRangeDegenerateAxisCopies: unit axis filter is the identity.
func TestFilterRangeDegenerateAxisCopies(t *testing.T) {
	f := randomField(5, 4, 1, 8)
	dst := grid.NewField3Ghost(5, 4, 1, grid.Ghost)
	FilterRange(dst, f, grid.Z, 1, UseGhosts, UseGhosts, [3]int{0, 0, 0}, [3]int{5, 4, 1}, OpSet)
	for j := 0; j < 4; j++ {
		for i := 0; i < 5; i++ {
			if dst.At(i, j, 0) != f.At(i, j, 0) {
				t.Fatal("unit-axis filter must copy")
			}
		}
	}
}
