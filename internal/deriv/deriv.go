// Package deriv implements the spatial discretisation of S3D (paper §2.6):
// an explicit eighth-order central finite-difference first derivative on a
// nine-point stencil, with reduced-order one-sided closures at non-periodic
// boundaries, and a tenth-order low-pass filter on an eleven-point stencil
// that removes spurious high-frequency fluctuations from the solution.
//
// Derivatives are computed on the uniform computational index and mapped to
// physical space through the per-line metric dξ/dx provided by the grid, so
// the same operators serve uniform and algebraically stretched directions.
//
// The interior stencil spans — the hot loops — are executed by a
// kernels.Impl backend (generic or blocked, see internal/kernels); the
// reduced-order boundary closures, which touch at most four or five points
// per line end, stay here. Diff and Filter are the whole-field forms; they
// delegate to DiffRange/FilterRange over the full interior box, which the
// tiling-invariance guarantee makes bitwise-identical to a dedicated
// whole-field sweep.
package deriv

import "github.com/s3dgo/s3d/internal/grid"

// BC selects how an operator treats one end of a grid line.
type BC int

const (
	// UseGhosts applies the full centred stencil straight through the
	// boundary, reading ghost values. Use it for periodic directions (after
	// a periodic wrap) and at interior subdomain boundaries (after a halo
	// exchange).
	UseGhosts BC = iota
	// OneSided switches to biased stencils of reduced order near the
	// boundary, reading interior points only. S3D uses this closure at
	// physical (NSCBC) boundaries.
	OneSided
)

// Sixth- and fourth-order centred weights used by the boundary closures.
// The interior 8th-order and filter weights live in internal/kernels, which
// owns the interior-span contract.
var (
	c6 = [3]float64{3.0 / 4.0, -3.0 / 20.0, 1.0 / 60.0}
	c4 = [2]float64{2.0 / 3.0, -1.0 / 12.0}
)

// Fourth-order fully one-sided (point 0) and once-shifted (point 1) weights.
var (
	b0 = [5]float64{-25.0 / 12.0, 4.0, -3.0, 4.0 / 3.0, -1.0 / 4.0}            // offsets 0..4
	b1 = [5]float64{-1.0 / 4.0, -5.0 / 6.0, 3.0 / 2.0, -1.0 / 2.0, 1.0 / 12.0} // offsets -1..3
)

// Diff computes the physical first derivative of f along axis a into dst,
// multiplying by the metric line met (dξ/dx per interior index along a).
// lo and hi select the closure at each end. dst and f must have identical
// shape and must not alias.
//
// When the axis has a single point (quasi-2D runs) the derivative is zero.
func Diff(dst, f *grid.Field3, a grid.Axis, met []float64, lo, hi BC) {
	DiffRange(dst, f, a, met, lo, hi, [3]int{}, [3]int{f.Nx, f.Ny, f.Nz}, OpSet)
}

// Filter applies the tenth-order low-pass filter along axis a:
//
//	f̂ᵢ = fᵢ − (σ/1024)·Σₗ (−1)ˡ C(10,5+l) fᵢ₊ₗ
//
// sigma in (0,1] controls the strength (S3D applies the full-strength filter
// periodically). With OneSided closures the filter order reduces near the
// boundary (order 2d at distance d, unfiltered at the boundary point), the
// standard treatment for explicit filters at non-periodic boundaries.
func Filter(dst, f *grid.Field3, a grid.Axis, sigma float64, lo, hi BC) {
	FilterRange(dst, f, a, sigma, lo, hi, [3]int{}, [3]int{f.Nx, f.Ny, f.Nz}, OpSet)
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// dimOf returns the interior extent of f along a.
func dimOf(f *grid.Field3, a grid.Axis) int {
	switch a {
	case grid.X:
		return f.Nx
	case grid.Y:
		return f.Ny
	default:
		return f.Nz
	}
}

// strideOf returns the flat-index stride of f along a.
func strideOf(f *grid.Field3, a grid.Axis) int {
	di, dj, dk := f.Strides()
	switch a {
	case grid.X:
		return di
	case grid.Y:
		return dj
	default:
		return dk
	}
}
