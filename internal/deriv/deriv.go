// Package deriv implements the spatial discretisation of S3D (paper §2.6):
// an explicit eighth-order central finite-difference first derivative on a
// nine-point stencil, with reduced-order one-sided closures at non-periodic
// boundaries, and a tenth-order low-pass filter on an eleven-point stencil
// that removes spurious high-frequency fluctuations from the solution.
//
// Derivatives are computed on the uniform computational index and mapped to
// physical space through the per-line metric dξ/dx provided by the grid, so
// the same operators serve uniform and algebraically stretched directions.
package deriv

import "github.com/s3dgo/s3d/internal/grid"

// BC selects how an operator treats one end of a grid line.
type BC int

const (
	// UseGhosts applies the full centred stencil straight through the
	// boundary, reading ghost values. Use it for periodic directions (after
	// a periodic wrap) and at interior subdomain boundaries (after a halo
	// exchange).
	UseGhosts BC = iota
	// OneSided switches to biased stencils of reduced order near the
	// boundary, reading interior points only. S3D uses this closure at
	// physical (NSCBC) boundaries.
	OneSided
)

// Eighth-order centred first-derivative weights for offsets ±1..±4
// (antisymmetric; the weight of offset -m is -c8[m-1]).
var c8 = [4]float64{4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0}

// Sixth- and fourth-order centred weights used by the boundary closures.
var (
	c6 = [3]float64{3.0 / 4.0, -3.0 / 20.0, 1.0 / 60.0}
	c4 = [2]float64{2.0 / 3.0, -1.0 / 12.0}
)

// Fourth-order fully one-sided (point 0) and once-shifted (point 1) weights.
var (
	b0 = [5]float64{-25.0 / 12.0, 4.0, -3.0, 4.0 / 3.0, -1.0 / 4.0}            // offsets 0..4
	b1 = [5]float64{-1.0 / 4.0, -5.0 / 6.0, 3.0 / 2.0, -1.0 / 2.0, 1.0 / 12.0} // offsets -1..3
)

// Diff computes the physical first derivative of f along axis a into dst,
// multiplying by the metric line met (dξ/dx per interior index along a).
// lo and hi select the closure at each end. dst and f must have identical
// shape and must not alias.
//
// When the axis has a single point (quasi-2D runs) the derivative is zero.
func Diff(dst, f *grid.Field3, a grid.Axis, met []float64, lo, hi BC) {
	n := dimOf(f, a)
	if n == 1 {
		zeroInterior(dst)
		return
	}
	stride := strideOf(f, a)
	eachLine(f, a, func(base int) {
		diffLine(dst.Data, f.Data, base, stride, n, met, lo, hi)
	})
}

// diffLine differentiates one grid line starting at flat index base with the
// given stride.
func diffLine(dst, src []float64, base, stride, n int, met []float64, lo, hi BC) {
	// Interior span where the full 8th-order stencil applies.
	i0, i1 := 0, n
	if lo == OneSided {
		i0 = 4
	}
	if hi == OneSided {
		i1 = n - 4
	}
	if i1 < i0 {
		i0, i1 = 0, 0 // tiny line: handled fully by closures below
	}
	for i := i0; i < i1; i++ {
		p := base + i*stride
		d := c8[0]*(src[p+stride]-src[p-stride]) +
			c8[1]*(src[p+2*stride]-src[p-2*stride]) +
			c8[2]*(src[p+3*stride]-src[p-3*stride]) +
			c8[3]*(src[p+4*stride]-src[p-4*stride])
		dst[p] = d * met[i]
	}
	if lo == OneSided {
		closeLow(dst, src, base, stride, n, met, i0)
	}
	if hi == OneSided {
		closeHigh(dst, src, base, stride, n, met, i1)
	}
}

// closeLow applies the boundary closure for indices [0, upto) at the low end.
func closeLow(dst, src []float64, base, stride, n int, met []float64, upto int) {
	for i := 0; i < upto && i < n; i++ {
		p := base + i*stride
		var d float64
		switch {
		case i == 0:
			for m, w := range b0 {
				d += w * src[p+m*stride]
			}
		case i == 1:
			for m, w := range b1 {
				d += w * src[p+(m-1)*stride]
			}
		case i == 2:
			d = c4[0]*(src[p+stride]-src[p-stride]) + c4[1]*(src[p+2*stride]-src[p-2*stride])
		default: // i == 3
			d = c6[0]*(src[p+stride]-src[p-stride]) +
				c6[1]*(src[p+2*stride]-src[p-2*stride]) +
				c6[2]*(src[p+3*stride]-src[p-3*stride])
		}
		dst[p] = d * met[i]
	}
}

// closeHigh mirrors closeLow at the high end, for indices [from, n).
func closeHigh(dst, src []float64, base, stride, n int, met []float64, from int) {
	for i := from; i < n; i++ {
		if i < 0 {
			continue
		}
		r := n - 1 - i // distance from the high boundary
		p := base + i*stride
		var d float64
		switch {
		case r == 0:
			for m, w := range b0 {
				d -= w * src[p-m*stride]
			}
		case r == 1:
			for m, w := range b1 {
				d -= w * src[p-(m-1)*stride]
			}
		case r == 2:
			d = c4[0]*(src[p+stride]-src[p-stride]) + c4[1]*(src[p+2*stride]-src[p-2*stride])
		default: // r == 3
			d = c6[0]*(src[p+stride]-src[p-stride]) +
				c6[1]*(src[p+2*stride]-src[p-2*stride]) +
				c6[2]*(src[p+3*stride]-src[p-3*stride])
		}
		dst[p] = d * met[i]
	}
}

// filter10 holds (−1)^l·C(10,5+l) for offsets l = −5..5; dividing the
// convolution by 2¹⁰ yields an operator that is exactly the identity at the
// Nyquist wavenumber and O(Δ¹⁰) on smooth fields.
var filter10 = [11]float64{-1, 10, -45, 120, -210, 252, -210, 120, -45, 10, -1}

// Filter applies the tenth-order low-pass filter along axis a:
//
//	f̂ᵢ = fᵢ − (σ/1024)·Σₗ (−1)ˡ C(10,5+l) fᵢ₊ₗ
//
// sigma in (0,1] controls the strength (S3D applies the full-strength filter
// periodically). With OneSided closures the filter order reduces near the
// boundary (order 2d at distance d, unfiltered at the boundary point), the
// standard treatment for explicit filters at non-periodic boundaries.
func Filter(dst, f *grid.Field3, a grid.Axis, sigma float64, lo, hi BC) {
	n := dimOf(f, a)
	if n == 1 {
		copyInterior(dst, f)
		return
	}
	stride := strideOf(f, a)
	eachLine(f, a, func(base int) {
		filterLine(dst.Data, f.Data, base, stride, n, sigma, lo, hi)
	})
}

func filterLine(dst, src []float64, base, stride, n int, sigma float64, lo, hi BC) {
	i0, i1 := 0, n
	if lo == OneSided {
		i0 = 5
	}
	if hi == OneSided {
		i1 = n - 5
	}
	if i1 < i0 {
		i0, i1 = 0, 0
	}
	scale := sigma / 1024.0
	for i := i0; i < i1; i++ {
		p := base + i*stride
		var acc float64
		for l := -5; l <= 5; l++ {
			acc += filter10[l+5] * src[p+l*stride]
		}
		dst[p] = src[p] - scale*acc
	}
	if lo == OneSided {
		for i := 0; i < i0 && i < n; i++ {
			filterBoundaryPoint(dst, src, base, stride, i, i, sigma)
		}
	}
	if hi == OneSided {
		for i := i1; i < n; i++ {
			if i < 0 {
				continue
			}
			filterBoundaryPoint(dst, src, base, stride, i, n-1-i, sigma)
		}
	}
}

// filterBoundaryPoint applies the order-2d symmetric filter at a point d
// away from the boundary (identity when d == 0).
func filterBoundaryPoint(dst, src []float64, base, stride, i, d int, sigma float64) {
	p := base + i*stride
	if d == 0 {
		dst[p] = src[p]
		return
	}
	// Weights (−1)^l·C(2d, d+l): an order-2d analogue of the interior filter.
	scale := sigma / float64(int(1)<<uint(2*d))
	var acc float64
	for l := -d; l <= d; l++ {
		w := binom(2*d, d+l)
		if ((l%2)+2)%2 == 1 {
			w = -w
		}
		acc += w * src[p+l*stride]
	}
	dst[p] = src[p] - scale*acc
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// dimOf returns the interior extent of f along a.
func dimOf(f *grid.Field3, a grid.Axis) int {
	switch a {
	case grid.X:
		return f.Nx
	case grid.Y:
		return f.Ny
	default:
		return f.Nz
	}
}

// strideOf returns the flat-index stride of f along a.
func strideOf(f *grid.Field3, a grid.Axis) int {
	di, dj, dk := f.Strides()
	switch a {
	case grid.X:
		return di
	case grid.Y:
		return dj
	default:
		return dk
	}
}

// eachLine invokes fn once per grid line along axis a, passing the flat
// index of the line's first interior point.
func eachLine(f *grid.Field3, a grid.Axis, fn func(base int)) {
	switch a {
	case grid.X:
		for k := 0; k < f.Nz; k++ {
			for j := 0; j < f.Ny; j++ {
				fn(f.Idx(0, j, k))
			}
		}
	case grid.Y:
		for k := 0; k < f.Nz; k++ {
			for i := 0; i < f.Nx; i++ {
				fn(f.Idx(i, 0, k))
			}
		}
	default:
		for j := 0; j < f.Ny; j++ {
			for i := 0; i < f.Nx; i++ {
				fn(f.Idx(i, j, 0))
			}
		}
	}
}

func zeroInterior(dst *grid.Field3) {
	for k := 0; k < dst.Nz; k++ {
		for j := 0; j < dst.Ny; j++ {
			row := dst.Idx(0, j, k)
			for i := 0; i < dst.Nx; i++ {
				dst.Data[row+i] = 0
			}
		}
	}
}

func copyInterior(dst, src *grid.Field3) {
	for k := 0; k < src.Nz; k++ {
		for j := 0; j < src.Ny; j++ {
			rs := src.Idx(0, j, k)
			rd := dst.Idx(0, j, k)
			copy(dst.Data[rd:rd+src.Nx], src.Data[rs:rs+src.Nx])
		}
	}
}
