package chem

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"github.com/s3dgo/s3d/internal/thermo"
)

// Parse reads a mechanism in a CHEMKIN-like text format:
//
//	! comment
//	ELEMENTS
//	H O N
//	END
//	SPECIES
//	H2 O2 OH ...
//	END
//	REACTIONS
//	H+O2=O+OH            3.547E15  -0.406  16599
//	H2+M=H+H+M           4.577E19  -1.40   104380
//	  H2/2.5/ H2O/12.0/
//	H+O2(+M)=HO2(+M)     1.475E12   0.60   0
//	  LOW /6.366E20 -1.72 524.8/
//	  TROE /0.8 1E-30 1E30/
//	END
//
// Pre-exponential factors are in CHEMKIN cgs units (mol, cm³, s) and
// activation energies in cal/mol, converted to SI internally. "=" and "<=>"
// denote reversible reactions, "=>" irreversible. Species thermodynamic data
// come from the package thermo database.
func Parse(name, text string) (*Mechanism, error) {
	var speciesNames []string
	var reactions []*Reaction
	section := ""
	var last *reactionDraft // pending reaction for auxiliary lines
	var drafts []*reactionDraft

	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "ELEMENTS"):
			section = "elements"
			continue
		case strings.HasPrefix(upper, "SPECIES"):
			section = "species"
			continue
		case strings.HasPrefix(upper, "REACTIONS"):
			section = "reactions"
			continue
		case upper == "END":
			section = ""
			continue
		}
		switch section {
		case "elements":
			// Elements are implicit in the thermo database; accepted and ignored.
		case "species":
			speciesNames = append(speciesNames, strings.Fields(line)...)
		case "reactions":
			if isAuxLine(upper) {
				if last == nil {
					return nil, fmt.Errorf("chem: line %d: auxiliary data before any reaction", lineNo)
				}
				if err := parseAux(last, line); err != nil {
					return nil, fmt.Errorf("chem: line %d: %v", lineNo, err)
				}
				continue
			}
			d, err := parseReactionLine(line)
			if err != nil {
				return nil, fmt.Errorf("chem: line %d: %v", lineNo, err)
			}
			drafts = append(drafts, d)
			last = d
		default:
			return nil, fmt.Errorf("chem: line %d: data outside any section: %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(speciesNames) == 0 {
		return nil, fmt.Errorf("chem: mechanism %q declares no species", name)
	}

	set, err := thermo.NewSet(speciesNames...)
	if err != nil {
		return nil, err
	}
	for _, d := range drafts {
		r, err := d.build(set)
		if err != nil {
			return nil, err
		}
		reactions = append(reactions, r)
	}
	m := NewMechanism(name, set, reactions)
	if err := m.CheckBalance(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustParse is Parse for embedded mechanisms, panicking on error.
func MustParse(name, text string) *Mechanism {
	m, err := Parse(name, text)
	if err != nil {
		panic(err)
	}
	return m
}

func isAuxLine(upper string) bool {
	return strings.HasPrefix(upper, "LOW") || strings.HasPrefix(upper, "TROE") ||
		upper == "DUP" || upper == "DUPLICATE" ||
		(strings.Contains(upper, "/") && !strings.ContainsAny(upper, "=<>"))
}

// reactionDraft carries a parsed line until species indices can be resolved.
type reactionDraft struct {
	equation   string
	reactants  []termDraft
	products   []termDraft
	a, n, e    float64
	reversible bool
	thirdBody  bool
	falloff    bool
	low        *Arrhenius // cgs units, converted in build
	troe       *Troe
	eff        map[string]float64
	duplicate  bool
}

type termDraft struct {
	name string
	nu   int
}

func parseReactionLine(line string) (*reactionDraft, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("reaction line needs equation and 3 rate fields: %q", line)
	}
	// The equation may itself contain no spaces in our format; the last
	// three fields are A, n, E.
	nf := len(fields)
	a, err1 := strconv.ParseFloat(fields[nf-3], 64)
	n, err2 := strconv.ParseFloat(fields[nf-2], 64)
	e, err3 := strconv.ParseFloat(fields[nf-1], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return nil, fmt.Errorf("bad rate constants in %q", line)
	}
	eq := strings.Join(fields[:nf-3], "")

	d := &reactionDraft{equation: eq, a: a, n: n, e: e, eff: map[string]float64{}}
	var lhs, rhs string
	switch {
	case strings.Contains(eq, "<=>"):
		parts := strings.SplitN(eq, "<=>", 2)
		lhs, rhs, d.reversible = parts[0], parts[1], true
	case strings.Contains(eq, "=>"):
		parts := strings.SplitN(eq, "=>", 2)
		lhs, rhs, d.reversible = parts[0], parts[1], false
	case strings.Contains(eq, "="):
		parts := strings.SplitN(eq, "=", 2)
		lhs, rhs, d.reversible = parts[0], parts[1], true
	default:
		return nil, fmt.Errorf("no = in reaction %q", eq)
	}

	// Falloff (+M) markers.
	if strings.Contains(lhs, "(+M)") || strings.Contains(rhs, "(+M)") {
		if !strings.Contains(lhs, "(+M)") || !strings.Contains(rhs, "(+M)") {
			return nil, fmt.Errorf("(+M) must appear on both sides of %q", eq)
		}
		d.falloff = true
		lhs = strings.ReplaceAll(lhs, "(+M)", "")
		rhs = strings.ReplaceAll(rhs, "(+M)", "")
	}

	var err error
	d.reactants, err = parseSide(lhs)
	if err != nil {
		return nil, fmt.Errorf("%v in %q", err, eq)
	}
	d.products, err = parseSide(rhs)
	if err != nil {
		return nil, fmt.Errorf("%v in %q", err, eq)
	}

	// Third-body M terms.
	d.reactants, d.thirdBody = stripM(d.reactants, d.thirdBody)
	var mRHS bool
	d.products, mRHS = stripM(d.products, false)
	if d.thirdBody != mRHS {
		return nil, fmt.Errorf("+M must appear on both sides of %q", eq)
	}
	return d, nil
}

func stripM(terms []termDraft, already bool) ([]termDraft, bool) {
	out := terms[:0]
	found := already
	for _, t := range terms {
		if t.name == "M" {
			found = true
			continue
		}
		out = append(out, t)
	}
	return out, found
}

func parseSide(s string) ([]termDraft, error) {
	var terms []termDraft
	for _, tok := range strings.Split(s, "+") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return nil, fmt.Errorf("empty species term")
		}
		nu := 1
		i := 0
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
		if i > 0 {
			v, err := strconv.Atoi(tok[:i])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad stoichiometric coefficient in %q", tok)
			}
			nu = v
		}
		name := tok[i:]
		if name == "" {
			return nil, fmt.Errorf("missing species name in %q", tok)
		}
		// Merge repeated species (e.g. H+H).
		merged := false
		for k := range terms {
			if terms[k].name == name {
				terms[k].nu += nu
				merged = true
				break
			}
		}
		if !merged {
			terms = append(terms, termDraft{name, nu})
		}
	}
	return terms, nil
}

func parseAux(d *reactionDraft, line string) error {
	upper := strings.ToUpper(strings.TrimSpace(line))
	switch {
	case upper == "DUP" || upper == "DUPLICATE":
		d.duplicate = true
		return nil
	case strings.HasPrefix(upper, "LOW"):
		vals, err := slashValues(line)
		if err != nil || len(vals) != 3 {
			return fmt.Errorf("LOW needs /A n E/: %q", line)
		}
		d.low = &Arrhenius{vals[0], vals[1], vals[2]}
		return nil
	case strings.HasPrefix(upper, "TROE"):
		vals, err := slashValues(line)
		if err != nil || (len(vals) != 3 && len(vals) != 4) {
			return fmt.Errorf("TROE needs 3 or 4 values: %q", line)
		}
		t := &Troe{Alpha: vals[0], T3: vals[1], T1: vals[2]}
		if len(vals) == 4 {
			t.T2 = vals[3]
		}
		d.troe = t
		return nil
	default:
		// Efficiency pairs: NAME/value/ NAME/value/ ...
		for _, pair := range strings.Fields(line) {
			pieces := strings.Split(pair, "/")
			if len(pieces) < 2 {
				return fmt.Errorf("bad efficiency %q", pair)
			}
			v, err := strconv.ParseFloat(pieces[1], 64)
			if err != nil {
				return fmt.Errorf("bad efficiency value %q", pair)
			}
			d.eff[pieces[0]] = v
		}
		return nil
	}
}

func slashValues(line string) ([]float64, error) {
	i := strings.IndexByte(line, '/')
	j := strings.LastIndexByte(line, '/')
	if i < 0 || j <= i {
		return nil, fmt.Errorf("missing / delimiters")
	}
	var vals []float64
	for _, f := range strings.Fields(line[i+1 : j]) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// build resolves names and converts cgs → SI.
func (d *reactionDraft) build(set *thermo.Set) (*Reaction, error) {
	r := &Reaction{
		Equation:   d.equation,
		Reversible: d.reversible,
		ThirdBody:  d.thirdBody,
		Duplicate:  d.duplicate,
	}
	order := 0
	for _, t := range d.reactants {
		idx := set.Index(t.name)
		if idx < 0 {
			return nil, fmt.Errorf("chem: reaction %q uses undeclared species %q", d.equation, t.name)
		}
		r.Reactants = append(r.Reactants, SpecCoef{idx, t.nu})
		order += t.nu
	}
	for _, t := range d.products {
		idx := set.Index(t.name)
		if idx < 0 {
			return nil, fmt.Errorf("chem: reaction %q uses undeclared species %q", d.equation, t.name)
		}
		r.Products = append(r.Products, SpecCoef{idx, t.nu})
	}
	if len(d.eff) > 0 {
		if !d.thirdBody && !d.falloff {
			return nil, fmt.Errorf("chem: efficiencies on non-third-body reaction %q", d.equation)
		}
		r.Eff = map[int]float64{}
		for name, v := range d.eff {
			idx := set.Index(name)
			if idx < 0 {
				return nil, fmt.Errorf("chem: efficiency for undeclared species %q in %q", name, d.equation)
			}
			r.Eff[idx] = v
		}
	}

	// cgs→SI conversion: A in (cm³/mol)^(order−1)/s → ×(10⁻⁶)^(order−1);
	// a non-falloff third body raises the effective order by one.
	fwdOrder := order
	if d.thirdBody && !d.falloff {
		fwdOrder++
		r.ThirdBody = true
	}
	r.Fwd = Arrhenius{d.a * math6(fwdOrder-1), d.n, d.e * CalPerMol}
	if d.falloff {
		if d.low == nil {
			return nil, fmt.Errorf("chem: falloff reaction %q lacks LOW data", d.equation)
		}
		r.Falloff = &Falloff{
			Low:   Arrhenius{d.low.A * math6(order), d.low.N, d.low.E * CalPerMol},
			TroeF: d.troe,
		}
		r.ThirdBody = false
	}
	return r, nil
}

// math6 returns (10⁻⁶)ⁿ.
func math6(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 1e-6
	}
	return v
}
