package chem

// Embedded mechanisms. The paper's lifted-flame simulation used detailed
// hydrogen/air chemistry (9 species, "14 variables" including the 5 flow
// variables) and the Bunsen simulations a reduced methane–air mechanism
// ("18 variables"). The H2/air mechanism below follows the widely used
// Li/Mueller-style detailed scheme; the CH4/air mechanism is a compact
// GRI-derived skeletal scheme carrying the full H2/O2 subsystem plus the
// C1 oxidation path. Rate parameters are standard literature values to
// working precision — adequate for every qualitative result reproduced here
// (see DESIGN.md, substitution table).

// H2AirText is the detailed hydrogen/air mechanism (9 species, 21 steps).
const H2AirText = `
! Detailed H2/air mechanism (Li et al. style), CHEMKIN-like format.
! A in cgs (mol, cm3, s), E in cal/mol.
ELEMENTS
H O N
END
SPECIES
H2 O2 O OH H2O H HO2 H2O2 N2
END
REACTIONS
H+O2=O+OH            3.547E15  -0.406  16599
O+H2=H+OH            0.508E05   2.67    6290
H2+OH=H2O+H          0.216E09   1.51    3430
O+H2O=OH+OH          2.970E06   2.02   13400
H2+M=H+H+M           4.577E19  -1.40  104380
  H2/2.5/ H2O/12.0/
O+O+M=O2+M           6.165E15  -0.50       0
  H2/2.5/ H2O/12.0/
O+H+M=OH+M           4.714E18  -1.00       0
  H2/2.5/ H2O/12.0/
H+OH+M=H2O+M         3.800E22  -2.00       0
  H2/2.5/ H2O/12.0/
H+O2(+M)=HO2(+M)     1.475E12   0.60       0
  LOW /6.366E20 -1.72 524.8/
  TROE /0.8 1E-30 1E30/
  H2/2.0/ H2O/11.0/ O2/0.78/
HO2+H=H2+O2          1.660E13   0.00     823
HO2+H=OH+OH          7.079E13   0.00     295
HO2+O=O2+OH          3.250E13   0.00       0
HO2+OH=H2O+O2        2.890E13   0.00    -497
HO2+HO2=H2O2+O2      4.200E14   0.00   11982
  DUP
HO2+HO2=H2O2+O2      1.300E11   0.00   -1629.3
  DUP
H2O2(+M)=OH+OH(+M)   2.951E14   0.00   48430
  LOW /1.202E17 0.0 45500/
  TROE /0.5 1E-30 1E30/
  H2/2.5/ H2O/12.0/
H2O2+H=H2O+OH        2.410E13   0.00    3970
H2O2+H=HO2+H2        4.820E13   0.00    7950
H2O2+O=OH+HO2        9.550E06   2.00    3970
H2O2+OH=HO2+H2O      1.000E12   0.00       0
  DUP
H2O2+OH=HO2+H2O      5.800E14   0.00    9557
  DUP
END
`

// CH4SkeletalText is a skeletal methane/air mechanism (14 species) built
// from the H2/O2 subsystem plus a C1 path (CH4 → CH3 → CH2O → HCO → CO →
// CO2), the same structural reduction style as the mechanism used for the
// paper's Bunsen runs.
const CH4SkeletalText = `
! Skeletal CH4/air mechanism (GRI-derived C1 path over the H2/O2 core).
ELEMENTS
C H O N
END
SPECIES
CH4 O2 N2 CH3 CH2O HCO CO CO2 H2 H O OH H2O HO2
END
REACTIONS
! --- H2/O2 core ---
H+O2=O+OH            3.547E15  -0.406  16599
O+H2=H+OH            0.508E05   2.67    6290
H2+OH=H2O+H          0.216E09   1.51    3430
O+H2O=OH+OH          2.970E06   2.02   13400
H2+M=H+H+M           4.577E19  -1.40  104380
  H2/2.5/ H2O/12.0/ CO/1.9/ CO2/3.8/ CH4/2.0/
O+O+M=O2+M           6.165E15  -0.50       0
  H2/2.5/ H2O/12.0/ CO/1.9/ CO2/3.8/
O+H+M=OH+M           4.714E18  -1.00       0
  H2/2.5/ H2O/12.0/ CO/1.9/ CO2/3.8/
H+OH+M=H2O+M         3.800E22  -2.00       0
  H2/2.5/ H2O/12.0/ CO/1.9/ CO2/3.8/
H+O2(+M)=HO2(+M)     1.475E12   0.60       0
  LOW /6.366E20 -1.72 524.8/
  TROE /0.8 1E-30 1E30/
  H2/2.0/ H2O/11.0/ O2/0.78/ CO/1.9/ CO2/3.8/
HO2+H=H2+O2          1.660E13   0.00     823
HO2+H=OH+OH          7.079E13   0.00     295
HO2+O=O2+OH          3.250E13   0.00       0
HO2+OH=H2O+O2        2.890E13   0.00    -497
! --- CO oxidation ---
CO+OH=CO2+H          4.760E07   1.228     70
CO+HO2=CO2+OH        1.500E14   0.00   23600
CO+O+M=CO2+M         6.020E14   0.00    3000
  H2/2.0/ H2O/6.0/ CO/1.5/ CO2/3.5/
CO+O2=CO2+O          2.500E12   0.00   47800
! --- C1 path ---
CH4+H=CH3+H2         6.600E08   1.62   10840
CH4+OH=CH3+H2O       1.000E08   1.60    3120
CH4+O=CH3+OH         1.020E09   1.50    8600
CH3+H(+M)=CH4(+M)    1.270E16  -0.63     383
  LOW /2.477E33 -4.76 2440/
  TROE /0.783 74 2941 6964/
  H2O/6.0/ CH4/2.0/ CO/1.5/ CO2/2.0/
CH3+O=CH2O+H         5.060E13   0.00       0
CH3+O2=CH2O+OH       3.600E10   0.00    8940
CH3+HO2=CH4+O2       1.000E12   0.00       0
CH2O+H=HCO+H2        5.740E07   1.90    2742
CH2O+OH=HCO+H2O      3.430E09   1.18    -447
CH2O+O=HCO+OH        3.900E13   0.00    3540
HCO+M=H+CO+M         1.870E17  -1.00   17000
  H2O/12.0/ CO/1.9/ CO2/3.8/ H2/2.5/
HCO+H=CO+H2          7.340E13   0.00       0
HCO+O2=CO+HO2        1.345E13   0.00     400
HCO+OH=CO+H2O        5.000E13   0.00       0
END
`

// H2Air returns a fresh instance of the detailed hydrogen/air mechanism.
func H2Air() *Mechanism { return MustParse("H2/air detailed", H2AirText) }

// CH4Skeletal returns a fresh instance of the skeletal methane/air mechanism.
func CH4Skeletal() *Mechanism { return MustParse("CH4/air skeletal", CH4SkeletalText) }
