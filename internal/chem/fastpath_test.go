package chem

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/s3dgo/s3d/internal/thermo"
)

// The hot-path rate evaluation must agree with the textbook Arrhenius form.
func TestKFastMatchesK(t *testing.T) {
	prop := func(aRaw, nRaw, eRaw uint16, tRaw uint8) bool {
		a := Arrhenius{
			A: 1e5 + float64(aRaw)*1e9,
			N: -2 + float64(nRaw)/65535*4,
			E: float64(eRaw) * 10, // J/mol
		}
		T := 300 + float64(tRaw)*10.0
		want := a.K(T)
		got := a.kFast(math.Log(a.A), math.Log(T), 1/(thermo.R*T))
		return math.Abs(got-want) <= 1e-12*math.Abs(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKFastZeroParamsShortCircuit(t *testing.T) {
	a := Arrhenius{A: 3.5e7}
	if got := a.kFast(math.Log(a.A), math.Log(1500), 1); got != 3.5e7 {
		t.Fatalf("constant-rate fast path = %g", got)
	}
}

// Production rates must be identical whether computed on a fresh mechanism
// or a clone (the precomputed ln A tables must survive cloning).
func TestCloneProductionRatesIdentical(t *testing.T) {
	m := CH4Skeletal()
	c := m.Clone()
	ns := m.NumSpecies()
	conc := make([]float64, ns)
	for i := range conc {
		conc[i] = 1 + float64(i)*0.3
	}
	w1 := make([]float64, ns)
	w2 := make([]float64, ns)
	m.ProductionRates(1600, conc, w1)
	c.ProductionRates(1600, conc, w2)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("clone rates differ at %d: %g vs %g", i, w1[i], w2[i])
		}
	}
}

// Rates must be smooth in T (no branch discontinuities in the fast path).
func TestRatesContinuousInT(t *testing.T) {
	m := H2Air()
	ns := m.NumSpecies()
	conc := make([]float64, ns)
	for i := range conc {
		conc[i] = 2
	}
	w1 := make([]float64, ns)
	w2 := make([]float64, ns)
	for _, T := range []float64{800, 1200, 2000, 3000} {
		m.ProductionRates(T, conc, w1)
		m.ProductionRates(T*(1+1e-9), conc, w2)
		for i := range w1 {
			if math.Abs(w1[i]-w2[i]) > 1e-5*(math.Abs(w1[i])+1e-300) {
				t.Fatalf("rate jump at T=%g species %d: %g vs %g", T, i, w1[i], w2[i])
			}
		}
	}
}

func TestTroeFourParameterParse(t *testing.T) {
	m, err := Parse("troe4", `
SPECIES
H O2 HO2 N2
END
REACTIONS
H+O2(+M)=HO2(+M) 1.475E12 0.60 0
  LOW /6.366E20 -1.72 524.8/
  TROE /0.8 1E-30 1E30 1E25/
END
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Reactions[0].Falloff.TroeF
	if tr == nil || tr.T2 != 1e25 {
		t.Fatalf("four-parameter Troe lost: %+v", tr)
	}
	// Rate still evaluates finitely.
	w := make([]float64, 4)
	m.ProductionRates(1200, []float64{1, 1, 0, 30}, w)
	if math.IsNaN(w[2]) || w[2] <= 0 {
		t.Fatalf("HO2 production = %g", w[2])
	}
}

func TestIrreversibleReaction(t *testing.T) {
	m, err := Parse("irr", `
SPECIES
H2 O2 OH H2O N2 H O
END
REACTIONS
H+O2=>O+OH 3.547E15 -0.406 16599
END
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reactions[0].Reversible {
		t.Fatal("=> parsed as reversible")
	}
	// With only products present the net rate must be zero (no reverse).
	ns := m.NumSpecies()
	conc := make([]float64, ns)
	conc[m.Set.Index("O")] = 5
	conc[m.Set.Index("OH")] = 5
	w := make([]float64, ns)
	m.ProductionRates(2000, conc, w)
	for i, v := range w {
		if v != 0 {
			t.Fatalf("irreversible reaction ran backwards: w[%d]=%g", i, v)
		}
	}
}
