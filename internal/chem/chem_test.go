package chem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/s3dgo/s3d/internal/thermo"
)

func TestH2AirParses(t *testing.T) {
	m := H2Air()
	if got := m.NumSpecies(); got != 9 {
		t.Fatalf("H2/air species = %d, want 9", got)
	}
	if got := len(m.Reactions); got != 21 {
		t.Fatalf("H2/air reactions = %d, want 21", got)
	}
}

func TestCH4SkeletalParses(t *testing.T) {
	m := CH4Skeletal()
	if got := m.NumSpecies(); got != 14 {
		t.Fatalf("CH4 species = %d, want 14", got)
	}
	if len(m.Reactions) < 28 {
		t.Fatalf("CH4 reactions = %d, want ≥ 28", len(m.Reactions))
	}
}

func TestMechanismsBalance(t *testing.T) {
	for _, m := range []*Mechanism{H2Air(), CH4Skeletal()} {
		if err := m.CheckBalance(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// massRate returns Σᵢ ω̇ᵢ·Wᵢ, which must vanish for any balanced mechanism.
func massRate(m *Mechanism, wdot []float64) float64 {
	var s, scale float64
	for i, sp := range m.Set.Species {
		s += wdot[i] * sp.W
		scale += math.Abs(wdot[i]) * sp.W
	}
	if scale == 0 {
		return 0
	}
	return s / scale
}

func TestMassConservationProperty(t *testing.T) {
	for _, m := range []*Mechanism{H2Air(), CH4Skeletal()} {
		ns := m.NumSpecies()
		wdot := make([]float64, ns)
		C := make([]float64, ns)
		rng := rand.New(rand.NewSource(42))
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			T := 600 + 2000*r.Float64()
			for i := range C {
				C[i] = 40 * r.Float64() // mol/m³, around atmospheric magnitudes
			}
			m.ProductionRates(T, C, wdot)
			return math.Abs(massRate(m, wdot)) < 1e-10
		}
		cfg := &quick.Config{MaxCount: 100, Rand: rng}
		if err := quick.Check(prop, cfg); err != nil {
			t.Errorf("%s: mass conservation violated: %v", m.Name, err)
		}
	}
}

func TestElementConservation(t *testing.T) {
	m := CH4Skeletal()
	ns := m.NumSpecies()
	C := make([]float64, ns)
	wdot := make([]float64, ns)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		T := 800 + 1800*rng.Float64()
		for i := range C {
			C[i] = 30 * rng.Float64()
		}
		m.ProductionRates(T, C, wdot)
		for _, el := range []string{"C", "H", "O", "N"} {
			var rate, scale float64
			for i, sp := range m.Set.Species {
				n := float64(sp.Elem[el])
				rate += wdot[i] * n
				scale += math.Abs(wdot[i]) * n
			}
			if scale > 0 && math.Abs(rate/scale) > 1e-10 {
				t.Fatalf("element %s production rate %g (scale %g)", el, rate, scale)
			}
		}
	}
}

func TestEquilibriumIsStationary(t *testing.T) {
	// For a single reversible reaction at its equilibrium composition the
	// net rate must vanish. Use O+O+M=O2+M in isolation.
	set := thermo.MustSet("O2", "O", "N2")
	rxn := &Reaction{
		Equation:   "O+O+M=O2+M",
		Reactants:  []SpecCoef{{1, 2}},
		Products:   []SpecCoef{{0, 1}},
		Fwd:        Arrhenius{6.165e15 * 1e-12, -0.5, 0}, // cgs→SI for order 3
		Reversible: true,
		ThirdBody:  true,
	}
	m := NewMechanism("o2 test", set, []*Reaction{rxn})
	T := 3000.0
	// Find the equilibrium O concentration at fixed O2 by bisecting the
	// net rate; then confirm ProductionRates sees it as stationary.
	cO2 := 5.0
	cN2 := 20.0
	wdot := make([]float64, 3)
	rate := func(cO float64) float64 {
		m.ProductionRates(T, []float64{cO2, cO, cN2}, wdot)
		return wdot[1]
	}
	lo, hi := 1e-12, 10.0
	if rate(lo) < 0 || rate(hi) > 0 {
		t.Fatalf("bisection not bracketed: %g %g", rate(lo), rate(hi))
	}
	for iter := 0; iter < 200; iter++ {
		mid := math.Sqrt(lo * hi)
		if rate(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	ceq := math.Sqrt(lo * hi)
	// Kc consistency: [O]² / [O2] should equal 1/Kc of the written reaction.
	m.ProductionRates(T, []float64{cO2, ceq, cN2}, wdot)
	if math.Abs(wdot[1]) > 1e-7*rxn.Fwd.K(T)*ceq*ceq {
		t.Fatalf("net rate at equilibrium not ~0: %g", wdot[1])
	}
	// O dissociation is strongly endothermic: at 3000 K some O survives but
	// far less than O2.
	if ceq <= 0 || ceq > cO2 {
		t.Fatalf("implausible equilibrium O concentration %g", ceq)
	}
}

func TestForwardRatePositiveAndMonotonicInT(t *testing.T) {
	// H+O2=O+OH has a large activation energy: kf must grow with T.
	m := H2Air()
	r := m.Reactions[0]
	k1 := r.Fwd.K(1000)
	k2 := r.Fwd.K(2000)
	if !(k2 > k1 && k1 > 0) {
		t.Fatalf("chain branching rate not increasing: k(1000)=%g k(2000)=%g", k1, k2)
	}
}

func TestChainBranchingMagnitude(t *testing.T) {
	// k of H+O2=O+OH at 2000 K is ≈ 2.5×10¹² cm³/(mol·s) within a factor of
	// a few — a sanity anchor against unit-conversion mistakes.
	m := H2Air()
	kSI := m.Reactions[0].Fwd.K(2000)
	kCGS := kSI * 1e6
	if kCGS < 5e11 || kCGS > 1e13 {
		t.Fatalf("k(H+O2→O+OH, 2000K) = %g cm³/mol/s, expected O(10¹¹)", kCGS)
	}
}

func TestTroeFalloffLimits(t *testing.T) {
	// H+O2(+M)=HO2(+M): at very low [M] the rate is ~k0[M]; at very high [M]
	// it approaches k∞.
	m := H2Air()
	var r *Reaction
	for _, rr := range m.Reactions {
		if rr.Falloff != nil && rr.Equation == "H+O2(+M)=HO2(+M)" {
			r = rr
		}
	}
	if r == nil {
		t.Fatal("falloff reaction not found")
	}
	T := 1200.0
	ns := m.NumSpecies()
	wdot := make([]float64, ns)
	iH := m.Set.Index("H")
	iO2 := m.Set.Index("O2")
	iN2 := m.Set.Index("N2")
	iHO2 := m.Set.Index("HO2")

	rateAt := func(cm float64) float64 {
		C := make([]float64, ns)
		C[iH] = 1e-6
		C[iO2] = 1e-6
		C[iN2] = cm
		// Keep only this reaction by zeroing competitive channels: easier to
		// construct a one-reaction mechanism instead.
		one := NewMechanism("one", m.Set, []*Reaction{r})
		one.ProductionRates(T, C, wdot)
		return wdot[iHO2]
	}
	low := rateAt(1e-3)
	mid := rateAt(1e3)
	high := rateAt(1e9)
	if !(low < mid && mid < high) {
		t.Fatalf("falloff rate not monotone in [M]: %g %g %g", low, mid, high)
	}
	// High-pressure limit: effective k = rate/([H][O2]) → k∞.
	kEff := high / (1e-6 * 1e-6)
	kInf := r.Fwd.K(T)
	if math.Abs(kEff-kInf)/kInf > 0.05 {
		t.Fatalf("high-pressure limit = %g, want k∞ = %g", kEff, kInf)
	}
}

func TestThirdBodyEfficiencies(t *testing.T) {
	// H2+M=H+H+M with H2O efficiency 12: replacing N2 by H2O at fixed total
	// concentration must raise the dissociation rate.
	m := H2Air()
	ns := m.NumSpecies()
	wdot := make([]float64, ns)
	iH2, iN2, iH2O, iH := m.Set.Index("H2"), m.Set.Index("N2"), m.Set.Index("H2O"), m.Set.Index("H")
	var r *Reaction
	for _, rr := range m.Reactions {
		if rr.Equation == "H2+M=H+H+M" {
			r = rr
		}
	}
	one := NewMechanism("one", m.Set, []*Reaction{r})
	T := 2500.0
	C := make([]float64, ns)
	C[iH2] = 1.0
	C[iN2] = 10.0
	one.ProductionRates(T, C, wdot)
	rateN2 := wdot[iH]
	C[iN2] = 0
	C[iH2O] = 10.0
	one.ProductionRates(T, C, wdot)
	rateH2O := wdot[iH]
	if rateH2O < 5*rateN2 {
		t.Fatalf("H2O efficiency ineffective: %g vs %g", rateH2O, rateN2)
	}
}

func TestDuplicateReactionsBothCounted(t *testing.T) {
	m := H2Air()
	dups := 0
	for _, r := range m.Reactions {
		if r.Duplicate {
			dups++
		}
	}
	if dups != 4 {
		t.Fatalf("duplicate-flagged reactions = %d, want 4", dups)
	}
}

func TestConcentrations(t *testing.T) {
	m := H2Air()
	ns := m.NumSpecies()
	Y := make([]float64, ns)
	Y[m.Set.Index("O2")] = 0.233
	Y[m.Set.Index("N2")] = 0.767
	C := make([]float64, ns)
	m.Concentrations(1.2, Y, C)
	// 1.2 kg/m³ air: total ≈ 41.6 mol/m³.
	var tot float64
	for _, c := range C {
		tot += c
	}
	if math.Abs(tot-41.6) > 1 {
		t.Fatalf("total concentration = %g, want ≈ 41.6", tot)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"no species", "REACTIONS\nH+O2=O+OH 1 0 0\nEND"},
		{"undeclared species", "SPECIES\nH2 O2 N2\nEND\nREACTIONS\nH+O2=O+OH 1 0 0\nEND"},
		{"unbalanced", "SPECIES\nH2 O2 H2O N2\nEND\nREACTIONS\nH2+O2=H2O 1 0 0\nEND"},
		{"missing LOW", "SPECIES\nH O2 HO2 N2\nEND\nREACTIONS\nH+O2(+M)=HO2(+M) 1 0 0\nEND"},
		{"one-sided M", "SPECIES\nH2 H N2\nEND\nREACTIONS\nH2+M=H+H 1 0 0\nEND"},
		{"garbage rate", "SPECIES\nH2\nEND\nREACTIONS\nH2=H2 a b c\nEND"},
	}
	for _, c := range cases {
		if _, err := Parse(c.name, c.text); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestParseStoichiometricCoefficients(t *testing.T) {
	m, err := Parse("test", `
SPECIES
H2 O2 H2O
END
REACTIONS
2H2+O2=2H2O 1.0E12 0 0
END
`)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Reactions[0]
	if r.Reactants[0].Nu != 2 || r.Reactants[1].Nu != 1 || r.Products[0].Nu != 2 {
		t.Fatalf("stoichiometry wrong: %+v", r)
	}
	if r.dNu != -1 {
		t.Fatalf("dNu = %d, want -1", r.dNu)
	}
}

func TestHeatReleaseSignForBurning(t *testing.T) {
	// A hot H2/air pocket with an established radical pool must release heat
	// and consume both reactants. (A radical-free fresh mixture can show
	// slightly negative instantaneous heat release: initiation steps such as
	// H2+M=H+H+M are endothermic.)
	m := H2Air()
	ns := m.NumSpecies()
	Y := make([]float64, ns)
	Y[m.Set.Index("H2")] = 0.028
	Y[m.Set.Index("O2")] = 0.222
	Y[m.Set.Index("OH")] = 0.002
	Y[m.Set.Index("H")] = 0.0005
	Y[m.Set.Index("O")] = 0.001
	Y[m.Set.Index("N2")] = 1 - 0.028 - 0.222 - 0.002 - 0.0005 - 0.001
	T := 1800.0
	rho := m.Set.Density(101325, T, Y)
	C := make([]float64, ns)
	m.Concentrations(rho, Y, C)
	wdot := make([]float64, ns)
	m.ProductionRates(T, C, wdot)
	if q := m.HeatReleaseRate(T, wdot); q <= 0 {
		t.Fatalf("heat release for burning H2/air = %g, want > 0", q)
	}
	// Fuel and oxidiser are consumed.
	if wdot[m.Set.Index("H2")] >= 0 || wdot[m.Set.Index("O2")] >= 0 {
		t.Fatalf("reactants not consumed: wH2=%g wO2=%g",
			wdot[m.Set.Index("H2")], wdot[m.Set.Index("O2")])
	}
	// Water is produced.
	if wdot[m.Set.Index("H2O")] <= 0 {
		t.Fatalf("no water production: %g", wdot[m.Set.Index("H2O")])
	}
}

func TestCloneSharesDataPrivateScratch(t *testing.T) {
	m := H2Air()
	c := m.Clone()
	if &m.Reactions[0] == nil || len(c.Reactions) != len(m.Reactions) {
		t.Fatal("clone lost reactions")
	}
	if &c.gRT[0] == &m.gRT[0] {
		t.Fatal("clone shares scratch")
	}
}

func BenchmarkProductionRatesH2(b *testing.B) {
	m := H2Air()
	ns := m.NumSpecies()
	C := make([]float64, ns)
	for i := range C {
		C[i] = 2.0
	}
	wdot := make([]float64, ns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProductionRates(1500, C, wdot)
	}
}

func BenchmarkProductionRatesCH4(b *testing.B) {
	m := CH4Skeletal()
	ns := m.NumSpecies()
	C := make([]float64, ns)
	for i := range C {
		C[i] = 2.0
	}
	wdot := make([]float64, ns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProductionRates(1500, C, wdot)
	}
}
