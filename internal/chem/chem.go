// Package chem implements the detailed chemical kinetics of S3D: elementary
// reactions with modified-Arrhenius rates, reverse rates from equilibrium
// constants, third-body enhancements, Lindemann/Troe pressure falloff and
// duplicate reactions, together with a CHEMKIN-format-like mechanism parser.
//
// The original S3D evaluates reaction rates through the CHEMKIN library
// (paper §2.6). This package plays that role: a Mechanism owns a
// thermo.Set and a reaction list and evaluates molar production rates
// ω̇ᵢ (mol/(m³·s)) for the species equations (paper eq. 4).
//
// Rate-constant inputs follow CHEMKIN conventions (A in mol/cm³ units, E in
// cal/mol) and are converted to SI at load time.
package chem

import (
	"fmt"
	"math"
	"sort"

	"github.com/s3dgo/s3d/internal/thermo"
)

// CalPerMol converts activation energies from cal/mol to J/mol.
const CalPerMol = 4.184

// P0 is the standard-state pressure (Pa) used in equilibrium constants.
const P0 = 101325.0

// SpecCoef is one species' stoichiometric participation in a reaction side.
type SpecCoef struct {
	Index int
	Nu    int
}

// Arrhenius holds modified-Arrhenius parameters in SI units (concentrations
// in mol/m³, E in J/mol): k = A·Tⁿ·exp(−E/(Ru·T)).
type Arrhenius struct {
	A, N, E float64
}

// K evaluates the rate constant at temperature T.
func (a Arrhenius) K(T float64) float64 {
	return a.A * math.Pow(T, a.N) * math.Exp(-a.E/(thermo.R*T))
}

// kFast evaluates the rate constant with precomputed ln A, ln T and 1/(RuT)
// using a single exponential — the hot path of ProductionRates.
func (a Arrhenius) kFast(lnA, lnT, invRT float64) float64 {
	if a.N == 0 && a.E == 0 {
		return a.A
	}
	return math.Exp(lnA + a.N*lnT - a.E*invRT)
}

// Troe holds the Troe falloff broadening parameters. T2 == 0 disables the
// optional fourth parameter.
type Troe struct {
	Alpha, T3, T1, T2 float64
}

// Falloff describes a pressure-dependent reaction: the high-pressure limit
// lives in Reaction.Fwd, Low is the low-pressure limit, and Troe (optional)
// the broadening function; nil TroeF means Lindemann.
type Falloff struct {
	Low   Arrhenius
	TroeF *Troe
}

// Reaction is one elementary step.
type Reaction struct {
	Equation   string
	Reactants  []SpecCoef
	Products   []SpecCoef
	Fwd        Arrhenius
	Reversible bool
	// ThirdBody marks +M reactions; Eff holds non-unit collision
	// efficiencies by species index.
	ThirdBody bool
	Eff       map[int]float64
	Falloff   *Falloff
	Duplicate bool

	dNu int // Σν_products − Σν_reactants, for Kc
	// effList is Eff flattened in ascending species order, derived in
	// NewMechanism. The hot loop sums collision efficiencies from this
	// slice, never from the map: map iteration order is randomized per run,
	// which would make the third-body concentration — and hence the whole
	// solution — differ in the last bit between otherwise identical runs.
	effList []SpecCoefF
}

// SpecCoefF is one species' real-valued coefficient (collision efficiency).
type SpecCoefF struct {
	Index int
	C     float64
}

// Mechanism is a reaction mechanism bound to a thermodynamic species set.
type Mechanism struct {
	Name      string
	Set       *thermo.Set
	Reactions []*Reaction

	// scratch sized at construction so production-rate evaluation is
	// allocation-free; Mechanism is therefore not safe for concurrent use —
	// each solver rank clones its own (see Clone).
	gRT []float64
	// Precomputed ln A of the forward and low-pressure rate constants.
	lnAf, lnAlow []float64
}

// NewMechanism wires reactions to a species set and finalises derived data.
func NewMechanism(name string, set *thermo.Set, reactions []*Reaction) *Mechanism {
	for _, r := range reactions {
		r.dNu = 0
		for _, p := range r.Products {
			r.dNu += p.Nu
		}
		for _, rc := range r.Reactants {
			r.dNu -= rc.Nu
		}
		r.effList = r.effList[:0]
		for idx, e := range r.Eff {
			r.effList = append(r.effList, SpecCoefF{Index: idx, C: e})
		}
		sort.Slice(r.effList, func(a, b int) bool {
			return r.effList[a].Index < r.effList[b].Index
		})
	}
	m := &Mechanism{
		Name:      name,
		Set:       set,
		Reactions: reactions,
		gRT:       make([]float64, set.Len()),
		lnAf:      make([]float64, len(reactions)),
		lnAlow:    make([]float64, len(reactions)),
	}
	for i, r := range reactions {
		m.lnAf[i] = math.Log(r.Fwd.A)
		if r.Falloff != nil {
			m.lnAlow[i] = math.Log(r.Falloff.Low.A)
		}
	}
	return m
}

// Clone returns a Mechanism sharing the immutable reaction data but owning
// private scratch, for use by concurrent solver ranks.
func (m *Mechanism) Clone() *Mechanism {
	return &Mechanism{
		Name: m.Name, Set: m.Set, Reactions: m.Reactions,
		gRT:  make([]float64, m.Set.Len()),
		lnAf: m.lnAf, lnAlow: m.lnAlow,
	}
}

// NumSpecies returns the species count.
func (m *Mechanism) NumSpecies() int { return m.Set.Len() }

// Concentrations fills C (mol/m³) from density (kg/m³) and mass fractions.
func (m *Mechanism) Concentrations(rho float64, Y, C []float64) {
	for i, sp := range m.Set.Species {
		C[i] = rho * Y[i] / sp.W
	}
}

// ProductionRates evaluates the molar production rate ω̇ᵢ of every species
// at temperature T (K) given concentrations C (mol/m³), accumulating into
// wdot (which is zeroed first). Units: mol/(m³·s).
func (m *Mechanism) ProductionRates(T float64, C, wdot []float64) {
	for i := range wdot {
		wdot[i] = 0
	}
	// Species Gibbs functions, shared by all reverse-rate evaluations.
	for i, sp := range m.Set.Species {
		m.gRT[i] = sp.GRT(T)
	}
	lnT := math.Log(T)
	invRT := 1 / (thermo.R * T)
	logC0 := math.Log(P0/thermo.R) - lnT // ln of standard concentration (mol/m³)

	for ri, r := range m.Reactions {
		kf := r.Fwd.kFast(m.lnAf[ri], lnT, invRT)

		// Third-body concentration.
		cm := 1.0
		if r.ThirdBody || r.Falloff != nil {
			cm = 0
			for i := range C {
				cm += C[i]
			}
			for _, e := range r.effList {
				cm += (e.C - 1) * C[e.Index]
			}
			if cm < 0 {
				cm = 0
			}
		}

		// Pressure falloff blending.
		if r.Falloff != nil {
			k0 := r.Falloff.Low.kFast(m.lnAlow[ri], lnT, invRT)
			pr := k0 * cm / kf
			f := 1.0
			if r.Falloff.TroeF != nil && pr > 0 {
				f = troeF(r.Falloff.TroeF, T, pr)
			}
			kf *= pr / (1 + pr) * f
			cm = 1 // the falloff form already includes [M]
		}

		// Forward and reverse progress.
		qf := kf
		for _, rc := range r.Reactants {
			qf *= powInt(C[rc.Index], rc.Nu)
		}
		var qr float64
		if r.Reversible {
			// ln Kc = −Σνᵢ·gᵢ/(RT) + Δν·ln(c0).
			var dg float64
			for _, p := range r.Products {
				dg += float64(p.Nu) * m.gRT[p.Index]
			}
			for _, rc := range r.Reactants {
				dg -= float64(rc.Nu) * m.gRT[rc.Index]
			}
			lnKc := -dg + float64(r.dNu)*logC0
			// Clamp to avoid overflow for strongly exothermic steps at low T;
			// a Kc this large means the reverse rate is numerically zero.
			if lnKc > 230 {
				lnKc = 230
			}
			kr := kf / math.Exp(lnKc)
			qr = kr
			for _, p := range r.Products {
				qr *= powInt(C[p.Index], p.Nu)
			}
		}

		rate := (qf - qr) * cm
		for _, rc := range r.Reactants {
			wdot[rc.Index] -= float64(rc.Nu) * rate
		}
		for _, p := range r.Products {
			wdot[p.Index] += float64(p.Nu) * rate
		}
	}
}

// HeatReleaseRate returns −Σᵢ ω̇ᵢ·hᵢ(T) in W/m³ (positive for exothermic
// states), the diagnostic used for the flame-thickness measure δ_H.
func (m *Mechanism) HeatReleaseRate(T float64, wdot []float64) float64 {
	var q float64
	for i, sp := range m.Set.Species {
		q -= wdot[i] * sp.HMolar(T)
	}
	return q
}

// troeF evaluates the Troe broadening factor.
func troeF(tr *Troe, T, pr float64) float64 {
	fc := (1-tr.Alpha)*math.Exp(-T/tr.T3) + tr.Alpha*math.Exp(-T/tr.T1)
	if tr.T2 != 0 {
		fc += math.Exp(-tr.T2 / T)
	}
	if fc <= 0 {
		return 1
	}
	logFc := math.Log10(fc)
	c := -0.4 - 0.67*logFc
	n := 0.75 - 1.27*logFc
	const d = 0.14
	logPr := math.Log10(pr)
	x := (logPr + c) / (n - d*(logPr+c))
	logF := logFc / (1 + x*x)
	return math.Pow(10, logF)
}

// powInt computes cⁿ for small positive integer n without math.Pow.
func powInt(c float64, n int) float64 {
	switch n {
	case 1:
		return c
	case 2:
		return c * c
	case 3:
		return c * c * c
	default:
		p := 1.0
		for i := 0; i < n; i++ {
			p *= c
		}
		return p
	}
}

// CheckBalance verifies elemental balance of every reaction; parsers call it
// so a typo in a mechanism is caught at load, as CHEMKIN's interpreter does.
func (m *Mechanism) CheckBalance() error {
	for _, r := range m.Reactions {
		bal := map[string]int{}
		for _, rc := range r.Reactants {
			for el, n := range m.Set.Species[rc.Index].Elem {
				bal[el] -= rc.Nu * n
			}
		}
		for _, p := range r.Products {
			for el, n := range m.Set.Species[p.Index].Elem {
				bal[el] += p.Nu * n
			}
		}
		for el, n := range bal {
			if n != 0 {
				return fmt.Errorf("chem: reaction %q unbalanced in element %s (%+d)", r.Equation, el, n)
			}
		}
	}
	return nil
}
