// Package rk implements the explicit low-storage Runge–Kutta time
// integrators used by S3D. The solution is advanced through a six-stage
// fourth-order explicit Runge–Kutta method in 2N (two-register) form
// (paper §2.6, citing Kennedy & Carpenter's low-storage schemes); the
// classical four-stage RK4 is provided as a cross-check integrator.
package rk

// Scheme holds the 2N-storage coefficients of an explicit Runge–Kutta
// method. Stage s of the update reads
//
//	dq ← A[s]·dq + Δt·F(q, t + C[s]·Δt)
//	q  ← q + B[s]·dq
//
// with dq zeroed before the first stage (A[0] must be 0).
type Scheme struct {
	Name    string
	A, B, C []float64
	Order   int
}

// Stages returns the number of stages.
func (s *Scheme) Stages() int { return len(s.A) }

// RK46NL is the six-stage fourth-order low-storage scheme (Berland, Bogey &
// Bailly's optimised Kennedy–Carpenter-family coefficients), the production
// integrator: fourth-order accurate with an extended stability envelope for
// convective problems.
var RK46NL = &Scheme{
	Name: "RK46-NL six-stage fourth-order (2N)",
	A: []float64{
		0.0,
		-0.737101392796,
		-1.634740794341,
		-0.744739003780,
		-1.469897351522,
		-2.813971388035,
	},
	B: []float64{
		0.032918605146,
		0.823256998200,
		0.381530948900,
		0.200092213184,
		1.718581042715,
		0.27,
	},
	C: []float64{
		0.0,
		0.032918605146,
		0.249351723343,
		0.466911705055,
		0.582030414044,
		0.847252983783,
	},
	Order: 4,
}

// CK45 is the five-stage fourth-order Carpenter–Kennedy 2N-storage scheme,
// kept as an alternative integrator for cross-checks.
var CK45 = &Scheme{
	Name: "Carpenter–Kennedy five-stage fourth-order (2N)",
	A: []float64{
		0.0,
		-567301805773.0 / 1357537059087.0,
		-2404267990393.0 / 2016746695238.0,
		-3550918686646.0 / 2091501179385.0,
		-1275806237668.0 / 842570457699.0,
	},
	B: []float64{
		1432997174477.0 / 9575080441755.0,
		5161836677717.0 / 13612068292357.0,
		1720146321549.0 / 2090206949498.0,
		3134564353537.0 / 4481467310338.0,
		2277821191437.0 / 14882151754819.0,
	},
	C: []float64{
		0.0,
		1432997174477.0 / 9575080441755.0,
		2526269341429.0 / 6820363962896.0,
		2006345519317.0 / 3224310063776.0,
		2802321613138.0 / 2924317926251.0,
	},
	Order: 4,
}

// State is the minimal interface a time-integrated system exposes to the
// scheme: a flat view of the solution register and a matching scratch
// register. The solver's conserved-variable fields satisfy it through thin
// adapters; plain []float64 systems use VecState.
type State interface {
	// Len returns the number of degrees of freedom.
	Len() int
	// Q returns the solution register.
	Q() []float64
	// DQ returns the accumulation register (same length as Q).
	DQ() []float64
}

// RHS evaluates dst = F(q, t). dst aliases nothing in q.
type RHS func(t float64, q []float64, dst []float64)

// VecState is a State over plain slices.
type VecState struct {
	QV, DQV []float64
}

// Len returns the system size.
func (v *VecState) Len() int { return len(v.QV) }

// Q returns the solution register.
func (v *VecState) Q() []float64 { return v.QV }

// DQ returns the accumulation register.
func (v *VecState) DQ() []float64 { return v.DQV }

// NewVecState allocates a VecState of length n.
func NewVecState(n int) *VecState {
	return &VecState{QV: make([]float64, n), DQV: make([]float64, n)}
}

// Step advances the state by one step of size dt using the 2N-storage
// update, allocating a single temporary for the RHS evaluation.
func (s *Scheme) Step(st State, t, dt float64, f RHS) {
	q, dq := st.Q(), st.DQ()
	for i := range dq {
		dq[i] = 0
	}
	tmp := make([]float64, len(q))
	s.StepScratch(st, t, dt, f, tmp)
}

// StepScratch is Step with a caller-provided RHS buffer, so a time loop can
// run allocation-free.
func (s *Scheme) StepScratch(st State, t, dt float64, f RHS, tmp []float64) {
	q, dq := st.Q(), st.DQ()
	for i := range dq {
		dq[i] = 0
	}
	for stage := 0; stage < s.Stages(); stage++ {
		f(t+s.C[stage]*dt, q, tmp)
		a, b := s.A[stage], s.B[stage]
		for i := range q {
			dq[i] = a*dq[i] + dt*tmp[i]
			q[i] += b * dq[i]
		}
	}
}

// StageFunc is the field-based stage update used by the PDE solver, which
// stores its registers as structured fields rather than flat vectors:
// given the stage coefficients it must perform
// dq ← a·dq + dt·rhs and q ← q + b·dq over all degrees of freedom.
type StageFunc func(stage int, a, b, cdt float64)

// Drive runs the 2N stage sequence through a caller-supplied stage update.
// evalRHS must deposit F(q, t+c·dt) wherever the StageFunc expects it.
func (s *Scheme) Drive(t, dt float64, evalRHS func(stageTime float64), apply StageFunc) {
	for stage := 0; stage < s.Stages(); stage++ {
		evalRHS(t + s.C[stage]*dt)
		apply(stage, s.A[stage], s.B[stage], s.C[stage]*dt)
	}
}
