package rk

import (
	"math"
	"testing"
)

// integrate advances y' = f(t, y) from y0 over [0, T] in n steps and
// returns y(T).
func integrate(s *Scheme, y0 []float64, T float64, n int, f RHS) []float64 {
	st := NewVecState(len(y0))
	copy(st.QV, y0)
	dt := T / float64(n)
	tmp := make([]float64, len(y0))
	for i := 0; i < n; i++ {
		s.StepScratch(st, float64(i)*dt, dt, f, tmp)
	}
	return st.QV
}

func TestSchemesAreConsistent(t *testing.T) {
	for _, s := range []*Scheme{RK46NL, CK45} {
		if s.A[0] != 0 {
			t.Errorf("%s: A[0] = %g, want 0", s.Name, s.A[0])
		}
		if len(s.A) != len(s.B) || len(s.B) != len(s.C) {
			t.Errorf("%s: ragged coefficient arrays", s.Name)
		}
		// First-order consistency: Σ b_i·(product telescope) must advance a
		// constant-derivative system by exactly dt. Check directly on y' = 1.
		got := integrate(s, []float64{0}, 1.0, 1, func(_ float64, _ []float64, d []float64) { d[0] = 1 })
		if math.Abs(got[0]-1) > 1e-12 {
			t.Errorf("%s: quadrature of y'=1 gives %g, want 1", s.Name, got[0])
		}
	}
}

func TestExponentialDecayAccuracy(t *testing.T) {
	f := func(_ float64, y []float64, d []float64) { d[0] = -y[0] }
	for _, s := range []*Scheme{RK46NL, CK45} {
		got := integrate(s, []float64{1}, 2.0, 50, f)
		want := math.Exp(-2)
		if err := math.Abs(got[0] - want); err > 1e-8 {
			t.Errorf("%s: exp decay error %g", s.Name, err)
		}
	}
}

func TestFourthOrderConvergence(t *testing.T) {
	// Non-autonomous nonlinear problem y' = y·cos(t), y(0)=1, exact
	// y = exp(sin t), which exposes the C (stage-time) coefficients.
	f := func(tt float64, y []float64, d []float64) { d[0] = y[0] * math.Cos(tt) }
	exact := math.Exp(math.Sin(3.0))
	for _, s := range []*Scheme{RK46NL, CK45} {
		e1 := math.Abs(integrate(s, []float64{1}, 3.0, 40, f)[0] - exact)
		e2 := math.Abs(integrate(s, []float64{1}, 3.0, 80, f)[0] - exact)
		rate := math.Log2(e1 / e2)
		if rate < 3.7 {
			t.Errorf("%s: convergence rate = %.2f, want ≈ 4", s.Name, rate)
		}
	}
}

func TestOscillatorEnergyNearlyConserved(t *testing.T) {
	// Harmonic oscillator: RK4-family schemes should conserve the energy to
	// the scheme's order over a modest horizon.
	f := func(_ float64, y []float64, d []float64) { d[0], d[1] = y[1], -y[0] }
	for _, s := range []*Scheme{RK46NL, CK45} {
		got := integrate(s, []float64{1, 0}, 2*math.Pi, 200, f)
		e := got[0]*got[0] + got[1]*got[1]
		if math.Abs(e-1) > 1e-8 {
			t.Errorf("%s: energy drift %g", s.Name, e-1)
		}
		if math.Abs(got[0]-1) > 1e-7 || math.Abs(got[1]) > 1e-7 {
			t.Errorf("%s: period error (%g, %g)", s.Name, got[0]-1, got[1])
		}
	}
}

func TestDriveMatchesStep(t *testing.T) {
	// The field-style Drive hook must perform the identical update to Step.
	f := func(tt float64, y []float64, d []float64) {
		d[0] = -2*y[0] + math.Sin(tt)
		d[1] = y[0] - y[1]
	}
	s := RK46NL
	a := NewVecState(2)
	a.QV[0], a.QV[1] = 0.3, -0.7
	b := NewVecState(2)
	copy(b.QV, a.QV)
	dt := 0.01
	a.QV = append([]float64(nil), a.QV...)
	s.Step(a, 0.5, dt, f)

	rhs := make([]float64, 2)
	s.Drive(0.5, dt, func(stageTime float64) {
		f(stageTime, b.QV, rhs)
	}, func(stage int, aa, bb, _ float64) {
		for i := range b.QV {
			b.DQV[i] = aa*b.DQV[i] + dt*rhs[i]
			b.QV[i] += bb * b.DQV[i]
		}
	})
	for i := range a.QV {
		if math.Abs(a.QV[i]-b.QV[i]) > 1e-15 {
			t.Fatalf("Drive diverges from Step at %d: %g vs %g", i, a.QV[i], b.QV[i])
		}
	}
}

func TestStabilityOnAdvectionSpectrum(t *testing.T) {
	// RK46-NL is built for convective spectra: a pure-imaginary eigenvalue
	// iλ with |λ·dt| = 1 must not amplify.
	f := func(_ float64, y []float64, d []float64) {
		// (y0 + i·y1)' = i·(y0 + i·y1)
		d[0], d[1] = -y[1], y[0]
	}
	got := integrate(RK46NL, []float64{1, 0}, 1000, 1000, f) // dt = 1 → |λdt| = 1
	mag := math.Hypot(got[0], got[1])
	if mag > 1.0+1e-6 {
		t.Fatalf("amplification %g at |λdt|=1", mag)
	}
}

func BenchmarkStep1M(b *testing.B) {
	n := 1 << 20
	st := NewVecState(n)
	for i := range st.QV {
		st.QV[i] = float64(i%7) * 0.1
	}
	tmp := make([]float64, n)
	f := func(_ float64, y []float64, d []float64) {
		for i := range y {
			d[i] = -y[i]
		}
	}
	b.SetBytes(int64(8 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RK46NL.StepScratch(st, 0, 1e-3, f, tmp)
	}
}
