package workflow

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"github.com/s3dgo/s3d/internal/sdf"
)

// Cluster is the simulated two-site topology of §9: the simulation writes
// on jaguar; the workflow stages data to ewok for morphing/imaging, archives
// to HPSS at ORNL and ships analysis copies to Sandia.
type Cluster struct {
	Root string
	// Directories (created by NewCluster).
	JaguarRestart string
	JaguarNetcdf  string
	JaguarMinMax  string
	Ewok          string
	HPSS          string
	Sandia        string
	Dashboard     string

	// TransferredBytes counts staged bytes (the 100 MB/s multi-stream ssh
	// channel of §9 is modelled by accounting, not sleeping).
	TransferredBytes atomic.Int64
}

// NewCluster builds the directory tree under root.
func NewCluster(root string) (*Cluster, error) {
	c := &Cluster{
		Root:          root,
		JaguarRestart: filepath.Join(root, "jaguar", "restart"),
		JaguarNetcdf:  filepath.Join(root, "jaguar", "netcdf"),
		JaguarMinMax:  filepath.Join(root, "jaguar", "minmax"),
		Ewok:          filepath.Join(root, "ewok"),
		HPSS:          filepath.Join(root, "hpss"),
		Sandia:        filepath.Join(root, "sandia"),
		Dashboard:     filepath.Join(root, "dashboard"),
	}
	for _, d := range []string{
		c.JaguarRestart, c.JaguarNetcdf, c.JaguarMinMax, c.Ewok, c.HPSS, c.Sandia, c.Dashboard,
	} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// transfer copies a file between sites, accounting the bytes.
func (c *Cluster) transfer(src, dstDir string) (string, error) {
	dst := filepath.Join(dstDir, filepath.Base(src))
	in, err := os.Open(src)
	if err != nil {
		return "", err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return "", err
	}
	n, err := io.Copy(out, in)
	if err != nil {
		out.Close()
		return "", err
	}
	if err := out.Close(); err != nil {
		return "", err
	}
	c.TransferredBytes.Add(n)
	return dst, nil
}

// MorphRestart implements the N-files → M-files restart morphing: it merges
// the per-rank variables of a staged restart SDF into a single consolidated
// file ("the workflow morphs these files into a smaller number of files, so
// that the S3D analysis can be done on a smaller number of files").
func MorphRestart(in string) (string, error) {
	f, err := sdf.ReadFile(in)
	if err != nil {
		return "", err
	}
	merged := sdf.New()
	for k, v := range f.Attrs {
		merged.Attrs[k] = v
	}
	merged.Attrs["morphed"] = "true"
	// Concatenate per-rank variables of the same base name.
	groups := map[string][]sdf.Variable{}
	var order []string
	for _, v := range f.Vars {
		base := v.Name
		if i := strings.LastIndexByte(v.Name, '.'); i > 0 {
			base = v.Name[:i]
		}
		if _, seen := groups[base]; !seen {
			order = append(order, base)
		}
		groups[base] = append(groups[base], v)
	}
	for _, base := range order {
		var data []float64
		for _, v := range groups[base] {
			data = append(data, v.Data...)
		}
		if err := merged.AddVar(base, []int{len(data)}, data); err != nil {
			return "", err
		}
	}
	out := strings.TrimSuffix(in, ".sdf") + ".morphed.sdf"
	if err := merged.WriteFile(out); err != nil {
		return "", err
	}
	return out, nil
}

// PlotMinMax extracts each variable's min/max from a staged SDF file and
// appends rows to the dashboard's time-trace table — the data behind the
// figure-17 interactive min/max plots.
func PlotMinMax(in, dashboardDir string) (string, error) {
	f, err := sdf.ReadFile(in)
	if err != nil {
		return "", err
	}
	out := filepath.Join(dashboardDir, "minmax.csv")
	w, err := os.OpenFile(out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	defer w.Close()
	step := f.Attrs["step"]
	for _, v := range f.Vars {
		if len(v.Data) == 0 {
			continue
		}
		lo, hi := v.Data[0], v.Data[0]
		for _, x := range v.Data {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%g\n", step, v.Name, lo, hi); err != nil {
			return "", err
		}
	}
	return out, nil
}

// S3DMonitor assembles the figure-16 workflow: three pipelines run in
// parallel over the cluster —
//
//	restart: watch jaguar/restart → stage to ewok → morph → fan out to
//	         HPSS archive and Sandia transfer;
//	netcdf:  watch jaguar/netcdf → stage to ewok → dashboard plots;
//	minmax:  watch jaguar/minmax → dashboard min/max table.
//
// Checkpoints live under the cluster root so a stopped and restarted
// workflow resumes without repeating completed stages.
func S3DMonitor(c *Cluster) (*Workflow, error) {
	wf := New("s3d-monitor")
	ckpt, err := NewCheckpoint(filepath.Join(c.Root, "workflow.ckpt"))
	if err != nil {
		return nil, err
	}
	errLog := filepath.Join(c.Root, "workflow.errlog")

	// --- Restart/analysis pipeline ---
	restartFiles := NewPort()
	staged := NewPort()
	morphed := NewPort()
	toHPSS := NewPort()
	toSandia := NewPort()

	wf.Add(
		&FileWatcher{ActorName: "watch-restart", Dir: c.JaguarRestart, Glob: "restart-*.sdf",
			Out: restartFiles, RequireDone: true},
		&ProcessFile{ActorName: "stage-ewok", In: restartFiles, Out: staged, Ckpt: ckpt, ErrLog: errLog,
			Op:       func(in string) (string, error) { return c.transfer(in, c.Ewok) },
			OutputOf: func(in string) string { return filepath.Join(c.Ewok, filepath.Base(in)) },
		},
		&ProcessFile{ActorName: "morph", In: staged, Out: morphed, Ckpt: ckpt, ErrLog: errLog,
			Op:       MorphRestart,
			OutputOf: func(in string) string { return strings.TrimSuffix(in, ".sdf") + ".morphed.sdf" },
		},
		&Fan{ActorName: "fan-archive", In: morphed, Out: []Port{toHPSS, toSandia}},
		&ProcessFile{ActorName: "archive-hpss", In: toHPSS, Ckpt: ckpt, ErrLog: errLog,
			Op: func(in string) (string, error) { return c.transfer(in, c.HPSS) },
		},
		&ProcessFile{ActorName: "transfer-sandia", In: toSandia, Ckpt: ckpt, ErrLog: errLog,
			Op: func(in string) (string, error) { return c.transfer(in, c.Sandia) },
		},
	)

	// --- netcdf analysis pipeline ---
	ncFiles := NewPort()
	ncStaged := NewPort()
	wf.Add(
		&FileWatcher{ActorName: "watch-netcdf", Dir: c.JaguarNetcdf, Glob: "analysis-*.sdf", Out: ncFiles},
		&ProcessFile{ActorName: "stage-netcdf", In: ncFiles, Out: ncStaged, Ckpt: ckpt, ErrLog: errLog,
			Op:       func(in string) (string, error) { return c.transfer(in, c.Ewok) },
			OutputOf: func(in string) string { return filepath.Join(c.Ewok, filepath.Base(in)) },
		},
		&ProcessFile{ActorName: "plot", In: ncStaged, Ckpt: ckpt, ErrLog: errLog,
			Op: func(in string) (string, error) { return PlotMinMax(in, c.Dashboard) },
		},
	)

	// --- min/max ASCII pipeline ---
	mmFiles := NewPort()
	wf.Add(
		&FileWatcher{ActorName: "watch-minmax", Dir: c.JaguarMinMax, Glob: "minmax-*.txt", Out: mmFiles},
		&ProcessFile{ActorName: "dashboard-minmax", In: mmFiles, Ckpt: ckpt, ErrLog: errLog,
			Op: func(in string) (string, error) { return c.transfer(in, c.Dashboard) },
		},
	)
	return wf, nil
}

// StopAll drops the STOP sentinel into every watched directory so the
// workflow drains and exits once the simulation is done.
func (c *Cluster) StopAll() error {
	for _, d := range []string{c.JaguarRestart, c.JaguarNetcdf, c.JaguarMinMax} {
		if err := os.WriteFile(filepath.Join(d, "STOP"), nil, 0o644); err != nil {
			return err
		}
	}
	return nil
}
