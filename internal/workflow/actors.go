package workflow

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// FileWatcher is the paper's generic source actor: it "regularly check[s] a
// remote directory for new or modified files, and thus creates an indirect
// connection between the simulation code and the workflow". It emits one
// token per new file matching the glob; emission waits for the file's
// ".done" sentinel when RequireDone is set, mirroring the workflow's
// watching of the S3D log "for an entry indicating that the output for that
// timestep is complete".
type FileWatcher struct {
	ActorName string
	Dir       string
	Glob      string
	Out       Port
	Interval  time.Duration
	// RequireDone gates each file on the existence of path + ".done".
	RequireDone bool
	// Stop ends the watch: when the file Dir/STOP exists and no new files
	// remain, the watcher closes its output.
	StopFile string

	seen map[string]bool
}

// Name implements Actor.
func (w *FileWatcher) Name() string { return w.ActorName }

// Run implements Actor.
func (w *FileWatcher) Run(ctx context.Context, wf *Workflow) error {
	defer close(w.Out)
	if w.seen == nil {
		w.seen = map[string]bool{}
	}
	interval := w.Interval
	if interval == 0 {
		interval = 5 * time.Millisecond
	}
	stop := w.StopFile
	if stop == "" {
		stop = filepath.Join(w.Dir, "STOP")
	}
	for {
		matches, err := filepath.Glob(filepath.Join(w.Dir, w.Glob))
		if err != nil {
			return err
		}
		sort.Strings(matches)
		emitted := 0
		for _, m := range matches {
			if w.seen[m] || strings.HasSuffix(m, ".done") {
				continue
			}
			if w.RequireDone {
				if _, err := os.Stat(m + ".done"); err != nil {
					continue // still being written
				}
			}
			w.seen[m] = true
			emitted++
			wf.Log("watch %s: %s", w.ActorName, filepath.Base(m))
			select {
			case w.Out <- Token{Path: m, Meta: map[string]string{"source": w.ActorName}}:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if emitted == 0 {
			if _, err := os.Stat(stop); err == nil {
				return nil
			}
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Checkpoint persists the set of completed operations so a restarted
// workflow "skip[s] steps that had already been accomplished, while
// retrying the failed ones" (§9). The record format is one key per line.
type Checkpoint struct {
	Path string

	mu   sync.Mutex
	done map[string]bool
}

// NewCheckpoint loads (or initialises) a checkpoint file.
func NewCheckpoint(path string) (*Checkpoint, error) {
	c := &Checkpoint{Path: path, done: map[string]bool{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			c.done[line] = true
		}
	}
	return c, sc.Err()
}

// Done reports whether the key completed in a previous run.
func (c *Checkpoint) Done(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done[key]
}

// Mark records a completed key durably.
func (c *Checkpoint) Mark(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done[key] {
		return nil
	}
	f, err := os.OpenFile(c.Path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, key); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	c.done[key] = true
	return nil
}

// Op is the remote command a ProcessFile stage models: it transforms an
// input file path into an output path (the ssh-executed tar/scp/python of
// §9 becomes an in-process function against the simulated cluster tree).
type Op func(in string) (out string, err error)

// ProcessFile is the paper's workhorse actor: it "models the execution of
// an operation on a remote file", keeps "a checkpoint on the successfully
// executed actions, writes operation errors into log files", and retries
// failures on restart without any extra workflow logic.
type ProcessFile struct {
	ActorName string
	In        Port
	Out       Port // may be nil for terminal stages
	Op        Op
	Ckpt      *Checkpoint
	Retries   int // attempts per token (default 3)
	ErrLog    string

	// OutputOf recomputes the output path for a checkpointed (skipped)
	// token so downstream stages still receive it; nil forwards the input.
	OutputOf func(in string) string
}

// Name implements Actor.
func (p *ProcessFile) Name() string { return p.ActorName }

// Run implements Actor.
func (p *ProcessFile) Run(ctx context.Context, wf *Workflow) error {
	if p.Out != nil {
		defer close(p.Out)
	}
	retries := p.Retries
	if retries == 0 {
		retries = 3
	}
	for {
		var tok Token
		var ok bool
		select {
		case tok, ok = <-p.In:
			if !ok {
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}

		key := p.ActorName + " " + tok.Path
		var outPath string
		if p.Ckpt != nil && p.Ckpt.Done(key) {
			wf.Log("%s: skip (checkpointed) %s", p.ActorName, filepath.Base(tok.Path))
			if p.OutputOf != nil {
				outPath = p.OutputOf(tok.Path)
			} else {
				outPath = tok.Path
			}
		} else {
			var err error
			for attempt := 1; attempt <= retries; attempt++ {
				outPath, err = p.Op(tok.Path)
				if err == nil {
					break
				}
				p.logError(fmt.Sprintf("%s attempt %d on %s: %v", p.ActorName, attempt, tok.Path, err))
			}
			if err != nil {
				// Leave the token unmarked: a restarted workflow retries it.
				wf.Log("%s: FAILED %s", p.ActorName, filepath.Base(tok.Path))
				continue
			}
			if p.Ckpt != nil {
				if err := p.Ckpt.Mark(key); err != nil {
					return err
				}
			}
			wf.Log("%s: done %s", p.ActorName, filepath.Base(tok.Path))
		}
		if p.Out != nil {
			select {
			case p.Out <- tok.WithMeta(p.ActorName, outPath).WithMeta("path", outPath).withPath(outPath):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

func (t Token) withPath(p string) Token {
	t.Path = p
	return t
}

func (p *ProcessFile) logError(msg string) {
	if p.ErrLog == "" {
		return
	}
	f, err := os.OpenFile(p.ErrLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	fmt.Fprintln(f, msg)
	f.Close()
}
