package workflow

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/critpath"
	"github.com/s3dgo/s3d/internal/insitu"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/viz"
)

// The web dashboard of paper §9 (figures 17–18): interactive monitoring of
// simulation min/max time traces, and a jobs view across machines. The
// browser/AJAX/MySQL stack is replaced by static artefacts — per-variable
// PNG trace plots (the gnuplot step) and a JSON status document — produced
// from the same pipeline outputs.

// Job is one entry of the figure-18 jobs view.
type Job struct {
	ID      string `json:"id"`
	Machine string `json:"machine"`
	Name    string `json:"name"`
	State   string `json:"state"`
	Cores   int    `json:"cores"`
}

// DashboardStatus is the JSON document backing the dashboard page.
type DashboardStatus struct {
	Jobs      []Job             `json:"jobs"`
	Variables []string          `json:"variables"`
	Images    map[string]string `json:"images"` // variable → plot path
	Notes     map[string]string `json:"notes"`  // user annotations (§9)

	// Telemetry summarises the run's step trace (dashboard/trace.jsonl,
	// written by a driver's -trace flag) when one is present: step count,
	// simulated time, mean wall time per step, communication volume and
	// pario cache hit rate. Nil when no trace has been copied in.
	Telemetry *obs.TraceSummary `json:"telemetry,omitempty"`

	// Health is the run-health lane: the watchdog's verdict for the traced
	// run, next to the min/max plots. Nil when the trace carried no
	// watchdog records (run without -health).
	Health *HealthLane `json:"health,omitempty"`

	// Fields is the run's field inventory (dashboard/fields.json, the
	// solver-registry /fields document dropped in by the production
	// driver): every field's name, role, halo group and checkpoint
	// membership. Nil when no inventory has been copied in.
	Fields *FieldsLane `json:"fields,omitempty"`

	// Analysis is the in-situ science lane (dashboard/analysis.jsonl, the
	// reduction pipeline's store dropped in by the producer): what was
	// reduced, how often, and the final record's scalar statistics. Nil
	// when no analysis store has been copied in.
	Analysis *AnalysisLane `json:"analysis,omitempty"`

	// Balance is the load-imbalance lane (dashboard/cost.jsonl, the cost
	// sampler's store dropped in by the producer): per-kernel tile-cost
	// imbalance, the greedy re-tiling what-if, and the cross-rank straggler
	// verdict of the final record. Nil when no cost store has been copied
	// in.
	Balance *BalanceLane `json:"balance,omitempty"`

	// CritPath is the wait-state lane (dashboard/critpath.jsonl, the
	// critical-path analyzer's store dropped in by the producer): which rank
	// the critical path ran through, the dominant wait class, and the blamed
	// region of the final record. Nil when no critpath store has been copied
	// in.
	CritPath *CritPathLane `json:"critpath,omitempty"`
}

// FieldEntry mirrors one entry of the fields.json inventory — the field
// registry metadata the solver publishes (see the root package's
// FieldInfo and the monitor's /fields endpoint).
type FieldEntry struct {
	Name       string `json:"name"`
	Role       string `json:"role"`
	Species    string `json:"species,omitempty"`
	HaloGroup  string `json:"halo_group,omitempty"`
	Checkpoint string `json:"checkpoint,omitempty"`
	Derived    bool   `json:"derived,omitempty"`
}

// FieldsLane is the dashboard's registry view: the producing run's grid,
// the full inventory, and the checkpoint subset in on-disk order (the
// restart-file ABI an operator checks before morphing or archiving).
type FieldsLane struct {
	Grid         [3]int         `json:"grid"`
	Count        int            `json:"count"`
	Fields       []FieldEntry   `json:"fields"`
	Checkpointed []string       `json:"checkpointed,omitempty"`
	RoleCounts   map[string]int `json:"role_counts,omitempty"`
}

// readFieldsLane parses fields.json into the dashboard lane.
func readFieldsLane(path string) (*FieldsLane, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Grid   [3]int       `json:"grid"`
		Count  int          `json:"count"`
		Fields []FieldEntry `json:"fields"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("workflow: %s: %v", path, err)
	}
	lane := &FieldsLane{
		Grid:       doc.Grid,
		Count:      doc.Count,
		Fields:     doc.Fields,
		RoleCounts: map[string]int{},
	}
	for _, f := range doc.Fields {
		lane.RoleCounts[f.Role]++
		if f.Checkpoint != "" {
			lane.Checkpointed = append(lane.Checkpointed, f.Checkpoint)
		}
	}
	return lane, nil
}

// AnalysisLane surfaces the in-situ science-reduction pipeline on the
// dashboard page: the record count and span, the product inventory, and
// the final record's scalar statistics — the "is the flame doing what we
// expect" glance without loading the full store.
type AnalysisLane struct {
	Records   int      `json:"records"`
	FirstStep int      `json:"first_step"`
	LastStep  int      `json:"last_step"`
	LastTime  float64  `json:"last_time"`
	Products  []string `json:"products,omitempty"`
	// Scalars flattens the final record's scalar statistics as
	// "<product>.<name>" → value (e.g. "T_favre.mean", "heat_release.watts").
	Scalars map[string]float64 `json:"scalars,omitempty"`
}

// analysisLane builds the lane from a loaded analysis store; nil when the
// store is empty.
func analysisLane(recs []insitu.Record) *AnalysisLane {
	if len(recs) == 0 {
		return nil
	}
	last := recs[len(recs)-1]
	lane := &AnalysisLane{
		Records:   len(recs),
		FirstStep: recs[0].Step,
		LastStep:  last.Step,
		LastTime:  last.Time,
		Scalars:   map[string]float64{},
	}
	for _, pr := range last.Products {
		lane.Products = append(lane.Products, pr.Name)
		for k, v := range pr.Scalars {
			lane.Scalars[pr.Name+"."+k] = v
		}
	}
	return lane
}

// BalanceKernel is one kernel's row in the balance lane.
type BalanceKernel struct {
	Kernel          string  `json:"kernel"`
	Imbalance       float64 `json:"imbalance"`        // max/mean tile cost
	WhatIfReduction float64 `json:"whatif_reduction"` // predicted makespan cut
}

// BalanceLane surfaces the spatial cost sampler on the dashboard page: the
// per-kernel max/mean tile-cost ratios of the final record, the kernel the
// greedy re-tiling what-if would help most, and the cross-rank straggler —
// the "where is the time going, and would re-tiling fix it" glance.
type BalanceLane struct {
	Records       int             `json:"records"`
	LastStep      int             `json:"last_step"`
	RankImbalance float64         `json:"rank_imbalance"`
	Straggler     int             `json:"straggler"`
	Kernels       []BalanceKernel `json:"kernels,omitempty"`
	// WorstKernel is the kernel with the highest tile-cost imbalance;
	// BestReduction the largest predicted makespan reduction any kernel's
	// what-if estimator reports.
	WorstKernel   string  `json:"worst_kernel,omitempty"`
	BestReduction float64 `json:"best_reduction"`
}

// balanceLane builds the lane from a loaded cost store; nil when the store
// is empty.
func balanceLane(recs []cost.Record) *BalanceLane {
	if len(recs) == 0 {
		return nil
	}
	last := recs[len(recs)-1]
	lane := &BalanceLane{
		Records:       len(recs),
		LastStep:      last.Step,
		RankImbalance: last.RankImbalance,
		Straggler:     last.Straggler,
	}
	worst := 0.0
	for _, k := range last.Kernels {
		lane.Kernels = append(lane.Kernels, BalanceKernel{
			Kernel:          k.Kernel,
			Imbalance:       k.Imbalance,
			WhatIfReduction: k.WhatIf.Reduction,
		})
		if k.Imbalance > worst {
			worst = k.Imbalance
			lane.WorstKernel = k.Kernel
		}
		if k.WhatIf.Reduction > lane.BestReduction {
			lane.BestReduction = k.WhatIf.Reduction
		}
	}
	return lane
}

// CritPathLane surfaces the cross-rank wait-state and critical-path
// analyzer on the dashboard page: the final record's verdict sentence, the
// rank the critical path ran through and its share, the dominant wait
// class, the fraction of aggregate step time lost blocked, and the most
// blamed call-path region — the "which rank is making steps slow, and in
// which kernel" glance.
type CritPathLane struct {
	Records      int     `json:"records"`
	LastStep     int     `json:"last_step"`
	CritRank     int     `json:"crit_rank"`
	CritShare    float64 `json:"crit_share"`
	DominantWait string  `json:"dominant_wait"`
	LostFrac     float64 `json:"lost_frac"`
	BlamedRegion string  `json:"blamed_region,omitempty"`
	Verdict      string  `json:"verdict"`
	// MeanLostFrac averages the lost fraction over every record — one bad
	// step vs a chronically imbalanced run.
	MeanLostFrac float64 `json:"mean_lost_frac"`
}

// critPathLane builds the lane from a loaded critpath store; nil when the
// store is empty.
func critPathLane(recs []critpath.Record) *CritPathLane {
	if len(recs) == 0 {
		return nil
	}
	last := recs[len(recs)-1]
	lane := &CritPathLane{
		Records:      len(recs),
		LastStep:     last.Step,
		CritRank:     last.CritRank,
		CritShare:    last.CritShare,
		DominantWait: last.DominantWait,
		LostFrac:     last.LostFrac,
		Verdict:      last.Verdict,
	}
	if len(last.Blame) > 0 {
		lane.BlamedRegion = last.Blame[0].Path
	}
	for _, r := range recs {
		lane.MeanLostFrac += r.LostFrac
	}
	lane.MeanLostFrac /= float64(len(recs))
	return lane
}

// HealthLane surfaces the run-health watchdog on the dashboard page: the
// final level, every check that tripped on any step, and the non-ok
// timeline, so an operator sees a run going bad — and when it started going
// bad — without opening the post-mortem bundle.
type HealthLane struct {
	Level   string   `json:"level"`             // final step's watchdog level
	Tripped []string `json:"tripped,omitempty"` // checks warn/fatal on any step
	// Steps/Levels are the non-ok timeline: the step numbers the watchdog
	// graded warn or fatal, with the matching level per entry.
	Steps  []int    `json:"steps,omitempty"`
	Levels []string `json:"levels,omitempty"`
	// FirstBadStep is the first non-ok step (0 when the run stayed clean).
	FirstBadStep int `json:"first_bad_step,omitempty"`
}

// healthLane builds the lane from parsed trace records; nil when no step
// record carries a watchdog verdict.
func healthLane(recs []obs.Record, sum obs.TraceSummary) *HealthLane {
	lane := &HealthLane{Level: sum.Health, Tripped: sum.HealthTripped}
	seen := false
	for _, r := range recs {
		if r.Kind != obs.KindStep || r.StepData == nil || r.StepData.Health == nil {
			continue
		}
		seen = true
		if h := r.StepData.Health; h.Level != "ok" {
			if lane.FirstBadStep == 0 {
				lane.FirstBadStep = r.StepData.Step
			}
			lane.Steps = append(lane.Steps, r.StepData.Step)
			lane.Levels = append(lane.Levels, h.Level)
		}
	}
	if !seen {
		return nil
	}
	return lane
}

// minmaxRow is one parsed dashboard table row: step, variable, min, max.
type minmaxRow struct {
	step     float64
	variable string
	lo, hi   float64
}

// parseMinMaxCSV reads the table PlotMinMax appends to.
func parseMinMaxCSV(path string) ([]minmaxRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []minmaxRow
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("workflow: %s:%d: want 4 fields, got %d", path, lineNo+1, len(parts))
		}
		step, err1 := strconv.ParseFloat(parts[0], 64)
		lo, err2 := strconv.ParseFloat(parts[2], 64)
		hi, err3 := strconv.ParseFloat(parts[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workflow: %s:%d: bad numbers", path, lineNo+1)
		}
		rows = append(rows, minmaxRow{step, parts[1], lo, hi})
	}
	return rows, nil
}

// BuildDashboard renders the figure-17 min/max trace plots (one PNG per
// variable, min and max series) and writes the figure-18 status JSON.
// It returns the status document.
func BuildDashboard(c *Cluster, jobs []Job) (*DashboardStatus, error) {
	rows, err := parseMinMaxCSV(filepath.Join(c.Dashboard, "minmax.csv"))
	if err != nil {
		return nil, err
	}
	byVar := map[string][]minmaxRow{}
	for _, r := range rows {
		byVar[r.variable] = append(byVar[r.variable], r)
	}
	status := &DashboardStatus{
		Jobs:   jobs,
		Images: map[string]string{},
		Notes:  map[string]string{},
	}
	for name := range byVar {
		status.Variables = append(status.Variables, name)
	}
	sort.Strings(status.Variables)

	// An observability trace dropped next to the CSV enriches the page
	// with solver telemetry and the health lane; its absence is not an
	// error.
	if recs, err := obs.ReadTraceFile(filepath.Join(c.Dashboard, "trace.jsonl")); err == nil {
		sum := obs.Summarize(recs)
		status.Telemetry = &sum
		status.Health = healthLane(recs, sum)
	}

	// Likewise the field inventory: the producer drops the registry's
	// /fields document next to the CSV; its absence is not an error.
	if lane, err := readFieldsLane(filepath.Join(c.Dashboard, "fields.json")); err == nil {
		status.Fields = lane
	}

	// And the in-situ analysis store: the producer drops analysis.jsonl
	// next to the CSV; its absence is not an error.
	if recs, err := insitu.ReadAnalysis(filepath.Join(c.Dashboard, "analysis.jsonl")); err == nil {
		status.Analysis = analysisLane(recs)
	}

	// And the cost sampler's store: the producer drops cost.jsonl next to
	// the CSV; its absence is not an error.
	if recs, err := cost.ReadCost(filepath.Join(c.Dashboard, "cost.jsonl")); err == nil {
		status.Balance = balanceLane(recs)
	}

	// And the critical-path analyzer's store: the producer drops
	// critpath.jsonl next to the CSV; its absence is not an error.
	if recs, err := critpath.ReadCritPath(filepath.Join(c.Dashboard, "critpath.jsonl")); err == nil {
		status.CritPath = critPathLane(recs)
	}

	for _, name := range status.Variables {
		vr := byVar[name]
		sort.Slice(vr, func(i, j int) bool { return vr[i].step < vr[j].step })
		x := make([]float64, len(vr))
		lo := make([]float64, len(vr))
		hi := make([]float64, len(vr))
		for i, r := range vr {
			x[i], lo[i], hi[i] = r.step, r.lo, r.hi
		}
		if len(x) < 2 {
			continue // a single checkpoint cannot plot a trace yet
		}
		lp := &viz.LinePlot{
			Title: name,
			X:     x,
			Series: map[string][]float64{
				"min": lo,
				"max": hi,
			},
		}
		img, err := lp.Render()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(c.Dashboard, "trace_"+sanitize(name)+".png")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := viz.WritePNG(f, img); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		status.Images[name] = path
	}

	out, err := json.MarshalIndent(status, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(c.Dashboard, "status.json"), out, 0o644); err != nil {
		return nil, err
	}
	return status, nil
}

// Annotate records a user note against a dashboard image ("we are allowing
// the users to annotate each image", §9), merged into status.json.
func Annotate(c *Cluster, variable, note string) error {
	path := filepath.Join(c.Dashboard, "status.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var status DashboardStatus
	if err := json.Unmarshal(data, &status); err != nil {
		return err
	}
	if status.Notes == nil {
		status.Notes = map[string]string{}
	}
	status.Notes[variable] = note
	out, err := json.MarshalIndent(&status, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}
