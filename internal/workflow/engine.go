// Package workflow is an actor-oriented scientific workflow engine in the
// style of Kepler/Ptolemy II (paper §9): data-centric actors connected by
// token streams, executed by a process-network director, with the
// checkpointed, retrying ProcessFile stage and the FileWatcher source actor
// the paper built for the S3D monitoring workflow. The package also
// assembles that workflow: three concurrent pipelines (restart/analysis
// morphing and archival, netcdf-style plotting, min/max dashboard feeds)
// over a simulated jaguar → ewok → HPSS/Sandia topology.
package workflow

import (
	"context"
	"fmt"
	"sync"
)

// Token is the unit of data flowing between actors: a file reference plus
// free-form provenance metadata.
type Token struct {
	Path string
	Meta map[string]string
}

// WithMeta returns a copy of the token with an added metadata entry, so
// provenance accumulates as tokens traverse the graph.
func (t Token) WithMeta(k, v string) Token {
	m := make(map[string]string, len(t.Meta)+1)
	for key, val := range t.Meta {
		m[key] = val
	}
	m[k] = v
	return Token{Path: t.Path, Meta: m}
}

// Port is a buffered token stream between actors.
type Port chan Token

// NewPort creates a port with the standard buffering.
func NewPort() Port { return make(Port, 64) }

// Actor is a workflow component. Run consumes inputs and produces outputs
// until its input stream closes or the context is cancelled; it must close
// its output ports (via the provided helper) when done.
type Actor interface {
	Name() string
	Run(ctx context.Context, wf *Workflow) error
}

// Workflow is a graph of actors under a process-network director: every
// actor runs as its own goroutine, synchronised purely by port
// communication (the "actor-oriented modelling" separation of concerns the
// paper highlights).
type Workflow struct {
	Name   string
	actors []Actor

	mu     sync.Mutex
	events []string // coarse execution log, usable as provenance
}

// New creates an empty workflow.
func New(name string) *Workflow { return &Workflow{Name: name} }

// Add registers actors.
func (wf *Workflow) Add(actors ...Actor) {
	wf.actors = append(wf.actors, actors...)
}

// Log records a provenance/progress event.
func (wf *Workflow) Log(format string, args ...any) {
	wf.mu.Lock()
	wf.events = append(wf.events, fmt.Sprintf(format, args...))
	wf.mu.Unlock()
}

// Events returns a snapshot of the execution log.
func (wf *Workflow) Events() []string {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	return append([]string(nil), wf.events...)
}

// Run executes all actors to completion under the PN director, returning
// the first actor error (all actors are always waited for, so no goroutine
// leaks survive a failure).
func (wf *Workflow) Run(ctx context.Context) error {
	errs := make([]error, len(wf.actors))
	var wg sync.WaitGroup
	wg.Add(len(wf.actors))
	for i, a := range wf.actors {
		go func(i int, a Actor) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("workflow: actor %s panicked: %v", a.Name(), p)
				}
			}()
			if err := a.Run(ctx, wf); err != nil {
				errs[i] = fmt.Errorf("workflow: actor %s: %w", a.Name(), err)
			}
		}(i, a)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FuncActor adapts a function into an Actor.
type FuncActor struct {
	ActorName string
	Fn        func(ctx context.Context, wf *Workflow) error
}

// Name implements Actor.
func (f *FuncActor) Name() string { return f.ActorName }

// Run implements Actor.
func (f *FuncActor) Run(ctx context.Context, wf *Workflow) error { return f.Fn(ctx, wf) }

// Fan duplicates one input stream onto several outputs (used where one
// pipeline stage feeds both the archive and the analysis transfer, as in
// figure 16).
type Fan struct {
	ActorName string
	In        Port
	Out       []Port
}

// Name implements Actor.
func (f *Fan) Name() string { return f.ActorName }

// Run implements Actor.
func (f *Fan) Run(ctx context.Context, wf *Workflow) error {
	defer func() {
		for _, o := range f.Out {
			close(o)
		}
	}()
	for {
		select {
		case tok, ok := <-f.In:
			if !ok {
				return nil
			}
			for _, o := range f.Out {
				select {
				case o <- tok:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Collect drains a port into memory (a test/monitoring sink).
type Collect struct {
	ActorName string
	In        Port

	mu     sync.Mutex
	tokens []Token
}

// Name implements Actor.
func (c *Collect) Name() string { return c.ActorName }

// Run implements Actor.
func (c *Collect) Run(ctx context.Context, wf *Workflow) error {
	for {
		select {
		case tok, ok := <-c.In:
			if !ok {
				return nil
			}
			c.mu.Lock()
			c.tokens = append(c.tokens, tok)
			c.mu.Unlock()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Tokens returns the collected tokens.
func (c *Collect) Tokens() []Token {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Token(nil), c.tokens...)
}
