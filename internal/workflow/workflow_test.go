package workflow

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/s3dgo/s3d/internal/sdf"
)

// writeRestart fabricates a per-rank restart SDF on jaguar plus its .done
// sentinel.
func writeRestart(t *testing.T, dir string, step int) string {
	t.Helper()
	f := sdf.New()
	f.Attrs["step"] = fmt.Sprintf("%d", step)
	for rank := 0; rank < 3; rank++ {
		name := fmt.Sprintf("T.%d", rank)
		if err := f.AddVar(name, []int{4}, []float64{1, 2, 3, float64(rank)}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("restart-%04d.sdf", step))
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".done", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeAnalysis(t *testing.T, dir string, step int, val float64) {
	t.Helper()
	f := sdf.New()
	f.Attrs["step"] = fmt.Sprintf("%d", step)
	if err := f.AddVar("temp", []int{3}, []float64{val, val + 1, val + 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile(filepath.Join(dir, fmt.Sprintf("analysis-%04d.sdf", step))); err != nil {
		t.Fatal(err)
	}
}

func TestS3DMonitorEndToEnd(t *testing.T) {
	root := t.TempDir()
	c, err := NewCluster(root)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated run: three restart dumps, two analysis files, one minmax log.
	for s := 1; s <= 3; s++ {
		writeRestart(t, c.JaguarRestart, s)
	}
	writeAnalysis(t, c.JaguarNetcdf, 1, 300)
	writeAnalysis(t, c.JaguarNetcdf, 2, 800)
	if err := os.WriteFile(filepath.Join(c.JaguarMinMax, "minmax-1.txt"), []byte("T 300 2100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.StopAll(); err != nil {
		t.Fatal(err)
	}
	wf, err := S3DMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := wf.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Archived and shipped morphed restarts.
	for s := 1; s <= 3; s++ {
		base := fmt.Sprintf("restart-%04d.morphed.sdf", s)
		for _, dir := range []string{c.HPSS, c.Sandia} {
			if _, err := os.Stat(filepath.Join(dir, base)); err != nil {
				t.Fatalf("missing %s in %s: %v", base, dir, err)
			}
		}
		// Morphing merged the three per-rank variables into one.
		m, err := sdf.ReadFile(filepath.Join(c.HPSS, base))
		if err != nil {
			t.Fatal(err)
		}
		if v := m.Var("T"); v == nil || len(v.Data) != 12 {
			t.Fatalf("morphed variable wrong: %+v", m.Vars)
		}
	}
	// Dashboard has min/max rows for both analysis steps.
	rows, err := os.ReadFile(filepath.Join(c.Dashboard, "minmax.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rows), "1,temp,300") || !strings.Contains(string(rows), "2,temp,800") {
		t.Fatalf("dashboard rows wrong:\n%s", rows)
	}
	// ASCII minmax file staged.
	if _, err := os.Stat(filepath.Join(c.Dashboard, "minmax-1.txt")); err != nil {
		t.Fatal(err)
	}
	if c.TransferredBytes.Load() == 0 {
		t.Fatal("no transfer accounting")
	}
}

func TestWorkflowRestartSkipsCheckpointed(t *testing.T) {
	root := t.TempDir()
	c, err := NewCluster(root)
	if err != nil {
		t.Fatal(err)
	}
	writeRestart(t, c.JaguarRestart, 1)
	if err := c.StopAll(); err != nil {
		t.Fatal(err)
	}
	wf1, err := S3DMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := wf1.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Second run over the same tree: every stage must be skipped.
	wf2, err := S3DMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := wf2.Run(ctx); err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, e := range wf2.Events() {
		if strings.Contains(e, "skip (checkpointed)") {
			skips++
		}
	}
	if skips < 4 { // stage, morph, archive, sandia
		t.Fatalf("expected ≥4 checkpointed skips, got %d: %v", skips, wf2.Events())
	}
}

func TestProcessFileRetriesThenSucceeds(t *testing.T) {
	root := t.TempDir()
	in := NewPort()
	out := NewPort()
	attempts := 0
	p := &ProcessFile{
		ActorName: "flaky",
		In:        in, Out: out,
		Retries: 3,
		ErrLog:  filepath.Join(root, "err.log"),
		Op: func(path string) (string, error) {
			attempts++
			if attempts < 3 {
				return "", errors.New("transient")
			}
			return path + ".out", nil
		},
	}
	sink := &Collect{ActorName: "sink", In: out}
	wf := New("retry-test")
	wf.Add(p, sink)
	in <- Token{Path: "/data/file1"}
	close(in)
	if err := wf.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	toks := sink.Tokens()
	if len(toks) != 1 || toks[0].Path != "/data/file1.out" {
		t.Fatalf("bad output tokens: %+v", toks)
	}
	// Error log recorded the transient failures.
	log, err := os.ReadFile(p.ErrLog)
	if err != nil || strings.Count(string(log), "transient") != 2 {
		t.Fatalf("error log wrong: %s (%v)", log, err)
	}
}

func TestProcessFileGivesUpButContinues(t *testing.T) {
	in := NewPort()
	out := NewPort()
	p := &ProcessFile{
		ActorName: "dead", In: in, Out: out, Retries: 2,
		Op: func(path string) (string, error) {
			if strings.Contains(path, "bad") {
				return "", errors.New("permanent")
			}
			return path, nil
		},
	}
	sink := &Collect{ActorName: "sink", In: out}
	wf := New("failure-test")
	wf.Add(p, sink)
	in <- Token{Path: "/bad"}
	in <- Token{Path: "/good"}
	close(in)
	if err := wf.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	toks := sink.Tokens()
	if len(toks) != 1 || toks[0].Path != "/good" {
		t.Fatalf("failure not isolated: %+v", toks)
	}
}

func TestFileWatcherWaitsForDoneSentinel(t *testing.T) {
	dir := t.TempDir()
	out := NewPort()
	w := &FileWatcher{ActorName: "w", Dir: dir, Glob: "*.sdf", Out: out,
		RequireDone: true, Interval: time.Millisecond}
	sink := &Collect{ActorName: "sink", In: out}
	wf := New("watch-test")
	wf.Add(w, sink)

	path := filepath.Join(dir, "a.sdf")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- wf.Run(context.Background()) }()
	// Without the sentinel nothing must be emitted.
	time.Sleep(20 * time.Millisecond)
	if n := len(sink.Tokens()); n != 0 {
		t.Fatalf("premature emission: %d", n)
	}
	if err := os.WriteFile(path+".done", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := os.WriteFile(filepath.Join(dir, "STOP"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := len(sink.Tokens()); n != 1 {
		t.Fatalf("tokens = %d, want 1", n)
	}
}

func TestTokenProvenanceAccumulates(t *testing.T) {
	tok := Token{Path: "/a", Meta: map[string]string{"source": "sim"}}
	tok2 := tok.WithMeta("stage", "ewok")
	if tok2.Meta["source"] != "sim" || tok2.Meta["stage"] != "ewok" {
		t.Fatalf("provenance lost: %+v", tok2)
	}
	if _, ok := tok.Meta["stage"]; ok {
		t.Fatal("WithMeta mutated the original")
	}
}

func TestCheckpointPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	c1, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Mark("stage fileA"); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Done("stage fileA") || c2.Done("stage fileB") {
		t.Fatal("checkpoint not persisted correctly")
	}
}
