package workflow

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/s3dgo/s3d/internal/critpath"
)

func seedMinMax(t *testing.T, c *Cluster) {
	t.Helper()
	rows := "1,T,300,2000\n2,T,300,2100\n3,T,301,2150\n1,Y_OH,0,0.001\n2,Y_OH,0,0.002\n3,Y_OH,0,0.004\n"
	if err := os.WriteFile(filepath.Join(c.Dashboard, "minmax.csv"), []byte(rows), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBuildDashboard(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	jobs := []Job{
		{ID: "123", Machine: "jaguar", Name: "s3d-lifted", State: "R", Cores: 10000},
		{ID: "77", Machine: "ewok", Name: "morph", State: "Q", Cores: 16},
	}
	status, err := BuildDashboard(c, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Variables) != 2 || status.Variables[0] != "T" || status.Variables[1] != "Y_OH" {
		t.Fatalf("variables = %v", status.Variables)
	}
	for _, v := range status.Variables {
		img := status.Images[v]
		if img == "" {
			t.Fatalf("no image for %s", v)
		}
		if _, err := os.Stat(img); err != nil {
			t.Fatalf("image missing: %v", err)
		}
	}
	// status.json round-trips.
	data, err := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 2 || got.Jobs[0].Machine != "jaguar" {
		t.Fatalf("jobs lost: %+v", got.Jobs)
	}
}

func TestDashboardTelemetrySummary(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	trace := `{"kind":"run_start","time_unix":1,"run":{"case":"liftedflame","config":{"grid":"32x24x1"}}}
{"kind":"step","step":{"step":1,"time":1e-7,"dt":1e-7,"cfl":0.4,"wall_sec":0.5,"stage_wall_sec":[0.1],"t_min":300,"t_max":2100,"p_min":101000,"p_max":102000,"mass_drift":0,"heat_release":1e5,"comm":{"bytes_sent":4096,"msgs_sent":8,"bytes_recv":4096,"msgs_recv":8,"wait_sec":0.01,"coll_sec":0,"allreduces":1,"barriers":0},"pario":{"cache_accesses":10,"cache_misses":2,"cache_evictions":0,"remote_forwards":0,"cache_hit_rate":0.8,"wb_queue_bytes":0,"wb_flushes":0,"wb_flush_sec":0}}}
{"kind":"checkpoint","time_unix":2,"checkpoint":{"step":1,"path":"restart-000001.sdf"}}
{"kind":"run_done","done":{"steps":1,"sim_time":1e-7,"wall_sec":0.6,"exit_message":"completed"}}
`
	if err := os.WriteFile(filepath.Join(c.Dashboard, "trace.jsonl"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status.Telemetry == nil {
		t.Fatal("trace.jsonl present but Telemetry nil")
	}
	if status.Telemetry.Case != "liftedflame" || status.Telemetry.Steps != 1 ||
		status.Telemetry.CommBytes != 4096 || status.Telemetry.CacheHits != 0.8 ||
		status.Telemetry.Checkpoints != 1 || !status.Telemetry.Done {
		t.Fatalf("bad summary: %+v", status.Telemetry)
	}
	// The summary survives the status.json round trip.
	data, err := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Telemetry == nil || got.Telemetry.TMax != 2100 {
		t.Fatalf("telemetry lost in status.json: %+v", got.Telemetry)
	}
	// The trace carried no watchdog records, so there is no health lane.
	if got.Health != nil {
		t.Fatalf("no watchdog in trace, yet Health = %+v", got.Health)
	}
}

// TestDashboardHealthLane feeds a trace from a run that tripped the
// watchdog and checks that the lane names the verdict, the tripped checks
// and the step the run started going bad.
func TestDashboardHealthLane(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	step := func(n int, health string) string {
		return `{"kind":"step","step":{"step":` + strconv.Itoa(n) +
			`,"time":1e-7,"dt":1e-7,"cfl":0.4,"wall_sec":0.5,"stage_wall_sec":[0.1],` +
			`"t_min":300,"t_max":2100,"p_min":101000,"p_max":102000,"mass_drift":0,` +
			`"heat_release":0,"comm":{},"pario":{}` + health + `}}` + "\n"
	}
	trace := `{"kind":"run_start","time_unix":1,"run":{"case":"liftedflame","config":{}}}` + "\n" +
		step(1, `,"health":{"level":"ok"}`) +
		step(2, `,"health":{"level":"warn","tripped":["species_sum"]}`) +
		step(3, `,"health":{"level":"fatal","tripped":["species_sum","temperature"]}`)
	if err := os.WriteFile(filepath.Join(c.Dashboard, "trace.jsonl"), []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status.Health == nil {
		t.Fatal("watchdog trace present but Health lane nil")
	}
	if status.Health.Level != "fatal" {
		t.Fatalf("lane level = %q, want fatal", status.Health.Level)
	}
	if status.Health.FirstBadStep != 2 {
		t.Fatalf("first bad step = %d, want 2", status.Health.FirstBadStep)
	}
	if len(status.Health.Steps) != 2 || status.Health.Steps[0] != 2 || status.Health.Steps[1] != 3 ||
		status.Health.Levels[0] != "warn" || status.Health.Levels[1] != "fatal" {
		t.Fatalf("non-ok timeline wrong: steps=%v levels=%v", status.Health.Steps, status.Health.Levels)
	}
	want := map[string]bool{"species_sum": true, "temperature": true}
	for _, name := range status.Health.Tripped {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("tripped checks missing %v (got %v)", want, status.Health.Tripped)
	}

	// The lane survives the status.json round trip.
	data, err := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Health == nil || got.Health.Level != "fatal" || got.Health.FirstBadStep != 2 {
		t.Fatalf("health lane lost in status.json: %+v", got.Health)
	}
}

func TestDashboardFieldsLane(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	// A trimmed /fields document as the production driver drops it.
	doc := `{"grid":[16,12,1],"ghost":5,"count":4,"fields":[
{"name":"Q_rho","role":"conserved","halo_group":"conserved","checkpoint":"rho"},
{"name":"T","role":"primitive","checkpoint":"T_guess"},
{"name":"Y_OH","role":"primitive","species":"OH"},
{"name":"hrr","role":"derived","derived":true}]}`
	if err := os.WriteFile(filepath.Join(c.Dashboard, "fields.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	lane := status.Fields
	if lane == nil {
		t.Fatal("fields.json present but Fields nil")
	}
	if lane.Grid != [3]int{16, 12, 1} || lane.Count != 4 || len(lane.Fields) != 4 {
		t.Fatalf("lane shape wrong: %+v", lane)
	}
	if len(lane.Checkpointed) != 2 || lane.Checkpointed[0] != "rho" || lane.Checkpointed[1] != "T_guess" {
		t.Fatalf("checkpoint subset %v (order is the on-disk ABI)", lane.Checkpointed)
	}
	if lane.RoleCounts["primitive"] != 2 || lane.RoleCounts["conserved"] != 1 {
		t.Fatalf("role counts %v", lane.RoleCounts)
	}
	if lane.Fields[2].Species != "OH" {
		t.Fatalf("species metadata lost: %+v", lane.Fields[2])
	}
	// The lane survives the status.json round trip.
	data, _ := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Fields == nil || got.Fields.Count != 4 {
		t.Fatalf("fields lane lost in status.json: %+v", got.Fields)
	}
}

func TestDashboardWithoutTraceOmitsTelemetry(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status.Telemetry != nil {
		t.Fatalf("no trace file, yet Telemetry = %+v", status.Telemetry)
	}
}

func TestDashboardAnnotation(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	if _, err := BuildDashboard(c, nil); err != nil {
		t.Fatal(err)
	}
	if err := Annotate(c, "T", "ignition transient visible at step 2"); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Notes["T"] == "" {
		t.Fatal("annotation lost")
	}
}

func TestParseMinMaxCSVErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("1,T,300\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseMinMaxCSV(bad); err == nil {
		t.Fatal("expected field-count error")
	}
	if err := os.WriteFile(bad, []byte("x,T,1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseMinMaxCSV(bad); err == nil {
		t.Fatal("expected number error")
	}
}

func TestDashboardSingleSampleSkipsPlot(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(c.Dashboard, "minmax.csv"),
		[]byte("1,T,300,2000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := status.Images["T"]; ok {
		t.Fatal("single-point trace should not plot")
	}
}

// TestDashboardAnalysisLane drops an in-situ analysis store next to the
// dashboard CSV and checks BuildDashboard surfaces it as the science lane.
func TestDashboardAnalysisLane(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	store := `{"step":2,"time":2e-8,"products":[{"op":"moments","name":"T_favre","scalars":{"mean":350,"rms":40}}]}
{"step":4,"time":4e-8,"products":[{"op":"moments","name":"T_favre","scalars":{"mean":360,"rms":41}},{"op":"scalar","name":"heat_release","scalars":{"watts":1.5e6}}]}
`
	if err := os.WriteFile(filepath.Join(c.Dashboard, "analysis.jsonl"), []byte(store), 0o644); err != nil {
		t.Fatal(err)
	}
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	lane := status.Analysis
	if lane == nil {
		t.Fatal("analysis.jsonl present but Analysis lane nil")
	}
	if lane.Records != 2 || lane.FirstStep != 2 || lane.LastStep != 4 || lane.LastTime != 4e-8 {
		t.Fatalf("lane span wrong: %+v", lane)
	}
	if len(lane.Products) != 2 || lane.Products[0] != "T_favre" || lane.Products[1] != "heat_release" {
		t.Fatalf("product inventory wrong: %v", lane.Products)
	}
	if lane.Scalars["T_favre.mean"] != 360 || lane.Scalars["heat_release.watts"] != 1.5e6 {
		t.Fatalf("scalars not flattened from the final record: %v", lane.Scalars)
	}
	// The lane survives the status.json round trip.
	data, err := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Analysis == nil || got.Analysis.Scalars["T_favre.mean"] != 360 {
		t.Fatalf("analysis lane lost in status.json: %+v", got.Analysis)
	}
}

// TestDashboardWithoutAnalysisOmitsLane: no store, no lane.
func TestDashboardWithoutAnalysisOmitsLane(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status.Analysis != nil {
		t.Fatalf("no analysis.jsonl, yet Analysis = %+v", status.Analysis)
	}
}

// TestDashboardCritPathLane: a critpath.jsonl store dropped next to the CSV
// surfaces the wait-state verdict; its absence omits the lane.
func TestDashboardCritPathLane(t *testing.T) {
	c, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c)
	recs := []critpath.Record{
		{Step: 2, Ranks: 4, CritRank: 2, CritShare: 0.8, DominantWait: "late_sender",
			LostFrac: 0.30, Verdict: "step 2: ..."},
		{Step: 4, Ranks: 4, CritRank: 2, CritShare: 0.83, DominantWait: "late_sender",
			LostFrac: 0.38, Verdict: "step 4: critical path ran through rank 2",
			Blame: []critpath.RegionBlame{{Path: "STEP/RHS/REACTION_RATE_BOUNDS", Ns: 9e6, Frac: 0.6}}},
	}
	var buf []byte
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(filepath.Join(c.Dashboard, "critpath.jsonl"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	status, err := BuildDashboard(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	lane := status.CritPath
	if lane == nil {
		t.Fatal("critpath.jsonl present, yet CritPath lane missing")
	}
	if lane.Records != 2 || lane.LastStep != 4 || lane.CritRank != 2 {
		t.Fatalf("lane = %+v", lane)
	}
	if lane.DominantWait != "late_sender" || lane.BlamedRegion != "STEP/RHS/REACTION_RATE_BOUNDS" {
		t.Fatalf("lane verdict fields = %+v", lane)
	}
	if lane.MeanLostFrac < 0.33 || lane.MeanLostFrac > 0.35 {
		t.Fatalf("mean lost frac %v, want 0.34", lane.MeanLostFrac)
	}
	// The lane survives the status.json round trip.
	data, err := os.ReadFile(filepath.Join(c.Dashboard, "status.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got DashboardStatus
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.CritPath == nil || got.CritPath.CritRank != 2 {
		t.Fatalf("critpath lane lost in status.json: %+v", got.CritPath)
	}

	// No store, no lane.
	c2, err := NewCluster(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedMinMax(t, c2)
	status2, err := BuildDashboard(c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status2.CritPath != nil {
		t.Fatalf("no critpath.jsonl, yet CritPath = %+v", status2.CritPath)
	}
}
