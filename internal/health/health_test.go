package health

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/s3dgo/s3d/internal/obs"
)

// healthySample returns a sample every default band accepts.
func healthySample(step int) Sample {
	return Sample{
		Step: step, Time: F(float64(step) * 1e-8), Dt: 1e-8,
		RhoMin: Extremum{V: 0.5}, RhoMax: Extremum{V: 1.2},
		TMin: Extremum{V: 300}, TMax: Extremum{V: 1800},
		PMin: Extremum{V: 9e4}, PMax: Extremum{V: 1.2e5},
		YMin: Extremum{V: 0}, YMax: Extremum{V: 0.8},
		YClip:       Extremum{V: 0},
		CFLAcoustic: Extremum{V: 0.4}, CFLDiffusive: Extremum{V: 0.1},
		Mass: 1.0, Energy: 2.5e5,
	}
}

func TestBandClassify(t *testing.T) {
	b := Range(150, 3500, 50, 6000)
	cases := []struct {
		v    float64
		want Level
	}{
		{300, OK}, {150, OK}, {3500, OK},
		{100, Warn}, {4000, Warn},
		{40, Fatal}, {7000, Fatal},
		{math.NaN(), OK}, // NaN is the nan check's job
	}
	for _, c := range cases {
		if got := b.Classify(c.v); got != c.want {
			t.Errorf("Classify(%g) = %v, want %v", c.v, got, c.want)
		}
	}
	if (Band{}).Classify(1e30) != OK {
		t.Error("zero band must disable the check")
	}
	if Above(1, 2).Classify(-1e30) != OK {
		t.Error("Above must not grade the low side")
	}
	if Below(1, 0.5).Classify(0.1) != Fatal {
		t.Error("Below must grade the low side")
	}
}

func TestFloatJSONRoundTrip(t *testing.T) {
	in := []F{1.5, F(math.NaN()), F(math.Inf(1)), F(math.Inf(-1)), 0}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []F
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len %d != %d", len(out), len(in))
	}
	if !math.IsNaN(float64(out[1])) || !math.IsInf(float64(out[2]), 1) || !math.IsInf(float64(out[3]), -1) {
		t.Fatalf("non-finite values did not round-trip: %v", out)
	}
	if out[0] != 1.5 || out[4] != 0 {
		t.Fatalf("finite values did not round-trip: %v", out)
	}
}

func TestWarnHysteresis(t *testing.T) {
	w := New(Defaults(), 0) // WarnAfter 3, ClearAfter 5
	w.Arm()
	step := 0
	eval := func(tMax float64) Status {
		step++
		s := healthySample(step)
		s.TMax = Extremum{V: F(tMax), Cell: [3]int{1, 2, 3}}
		if v := w.Evaluate(&s, nil); v != nil {
			t.Fatalf("unexpected violation %v", v)
		}
		return w.Status()
	}
	// Two bad steps: below WarnAfter, still ok.
	for i := 0; i < 2; i++ {
		if st := eval(4000); st.Checks["temperature"].Level != "ok" {
			t.Fatalf("tripped after %d bad steps", i+1)
		}
	}
	// Third consecutive bad step trips WARN.
	st := eval(4000)
	if st.Checks["temperature"].Level != "warn" || st.Level != "warn" {
		t.Fatalf("want warn after 3 bad steps, got %+v", st)
	}
	// Four clean steps: not yet cleared.
	for i := 0; i < 4; i++ {
		if st := eval(1800); st.Checks["temperature"].Level != "warn" {
			t.Fatalf("cleared after only %d good steps", i+1)
		}
	}
	// Fifth clean step clears.
	if st := eval(1800); st.Checks["temperature"].Level != "ok" || st.Level != "ok" {
		t.Fatalf("want ok after ClearAfter good steps, got %+v", st)
	}
}

func TestFatalTripAndStickiness(t *testing.T) {
	w := New(Defaults(), 3)
	w.Arm()
	s := healthySample(1)
	if v := w.Evaluate(&s, nil); v != nil {
		t.Fatalf("healthy sample tripped: %v", v)
	}
	s = healthySample(2)
	s.RhoMin = Extremum{V: F(-0.1), Cell: [3]int{4, 5, 6}}
	v := w.Evaluate(&s, nil)
	if v == nil {
		t.Fatal("fatal density excursion did not trip")
	}
	if v.Check != "density" || v.Rank != 3 || v.Step != 2 || v.Cell != [3]int{4, 5, 6} {
		t.Fatalf("violation misattributed: %+v", v)
	}
	if v.Quantity != "rho" || float64(v.Value) != -0.1 {
		t.Fatalf("violation value wrong: %+v", v)
	}
	if v.Error() == "" {
		t.Fatal("empty error text")
	}
	// Fatal is sticky: a healthy follow-up sample stays fatal and keeps
	// reporting the original cause.
	s = healthySample(3)
	v2 := w.Evaluate(&s, nil)
	if v2 == nil || v2.Check != "density" {
		t.Fatalf("fatal state cleared: %+v", v2)
	}
	if st := w.Status(); st.Level != "fatal" || st.Violation == nil {
		t.Fatalf("status lost the violation: %+v", st)
	}
}

func TestNaNAndFaultPrecedence(t *testing.T) {
	w := New(Defaults(), 0)
	w.Arm()
	s := healthySample(1)
	s.NaNCount = 7
	s.NaNCell = [3]int{1, 1, 1}
	s.NaNQuantity = "rhoE"
	fault := &Violation{Check: "temperature_inversion", Rank: 0, Step: 1, Cell: [3]int{2, 2, 2}}
	v := w.Evaluate(&s, fault)
	if v != fault {
		t.Fatalf("kernel fault must take precedence over rule trips, got %+v", v)
	}
	// Without a fault the nan rule itself trips fatal immediately.
	w2 := New(Defaults(), 0)
	w2.Arm()
	s2 := healthySample(1)
	s2.NaNCount = 1
	s2.NaNCell = [3]int{9, 0, 0}
	v2 := w2.Evaluate(&s2, nil)
	if v2 == nil || v2.Check != "nan" || v2.Cell != [3]int{9, 0, 0} {
		t.Fatalf("nan rule did not trip: %+v", v2)
	}
}

func TestDriftReferenceCapture(t *testing.T) {
	cfg := Defaults()
	cfg.MassDrift = Above(0.01, 0.1)
	w := New(cfg, 0)
	w.Arm()
	s := healthySample(1)
	s.Mass = 2.0
	w.Evaluate(&s, nil)
	if float64(s.MassDrift) != 0 {
		t.Fatalf("first step drift = %g, want 0", float64(s.MassDrift))
	}
	s = healthySample(2)
	s.Mass = 2.3 // +15% → fatal
	v := w.Evaluate(&s, nil)
	if v == nil || v.Check != "mass_drift" {
		t.Fatalf("mass drift did not trip: %+v", v)
	}
}

func TestRecorderRingAndDump(t *testing.T) {
	cfg := Defaults()
	cfg.Frames = 4
	w := New(cfg, 0)
	w.Arm()
	w.SetSliceSource(func() Slice {
		return Slice{Name: "T@z=mid", Nx: 2, Ny: 1, Data: []F{300, F(math.NaN())}}
	})
	for i := 1; i <= 6; i++ {
		s := healthySample(i)
		w.Evaluate(&s, nil)
	}
	fr := w.Recorder().Frames()
	if len(fr) != 4 {
		t.Fatalf("ring kept %d frames, want 4", len(fr))
	}
	for i, f := range fr {
		if f.Step != i+3 {
			t.Fatalf("frame %d is step %d, want %d (oldest-first)", i, f.Step, i+3)
		}
	}

	dir := t.TempDir()
	if err := w.Dump(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlight(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0].Step != 3 || got[3].Step != 6 {
		t.Fatalf("flight.jsonl round-trip wrong: %d frames", len(got))
	}
	if got[0].Slice == nil || !math.IsNaN(float64(got[0].Slice.Data[1])) {
		t.Fatalf("slice with NaN did not survive the dump: %+v", got[0].Slice)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "violation.json"))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("violation.json does not parse: %v", err)
	}
	if st.Level != "ok" || len(st.Checks) == 0 {
		t.Fatalf("status document wrong: %+v", st)
	}
}

func TestHandlerAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	w := New(Defaults(), 0)
	w.AttachMetrics(reg)
	w.Arm()
	s := healthySample(1)
	w.Evaluate(&s, nil)

	srv := httptest.NewServer(w.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || st.Level != "ok" {
		t.Fatalf("healthy run: code %d level %q", resp.StatusCode, st.Level)
	}

	s = healthySample(2)
	s.TMax = Extremum{V: 9000}
	if v := w.Evaluate(&s, nil); v == nil {
		t.Fatal("9000 K did not trip")
	}
	resp, err = srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	st = Status{}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || st.Level != "fatal" || st.Violation == nil {
		t.Fatalf("tripped run: code %d status %+v", resp.StatusCode, st)
	}

	snap := reg.Snapshot()
	if g, ok := snap.Gauges["health.status"]; !ok || g != float64(Fatal) {
		t.Fatalf("health.status gauge = %v (%v)", g, ok)
	}
	if g, ok := snap.Gauges["health.check.temperature"]; !ok || g != float64(Fatal) {
		t.Fatalf("health.check.temperature gauge = %v (%v)", g, ok)
	}
}

func TestObsStatusAndRemote(t *testing.T) {
	w := New(Defaults(), 0)
	w.Arm()
	s := healthySample(1)
	s.TMax = Extremum{V: 9000}
	w.Evaluate(&s, nil)
	hs := w.ObsStatus()
	if hs.Level != "fatal" || len(hs.Tripped) != 1 || hs.Tripped[0] != "temperature" {
		t.Fatalf("ObsStatus = %+v", hs)
	}

	w2 := New(Defaults(), 1)
	w2.Arm()
	rv := Remote(0, 5)
	if rv.Rank != 0 || rv.Step != 5 || rv.Check != "remote" {
		t.Fatalf("Remote = %+v", rv)
	}
	w2.NoteRemote(rv)
	if st := w2.Status(); st.Level != "fatal" || st.Violation != rv {
		t.Fatalf("NoteRemote did not stick: %+v", st)
	}
}

func TestArmedIsCheap(t *testing.T) {
	w := New(Defaults(), 0)
	if w.Armed() {
		t.Fatal("new watchdog must start disarmed")
	}
	w.Arm()
	if !w.Armed() {
		t.Fatal("Arm did not arm")
	}
	w.Disarm()
	if w.Armed() {
		t.Fatal("Disarm did not disarm")
	}
}
