// Package health implements the run-health watchdog: per-step physics
// invariant checks with WARN/FATAL thresholds and hysteresis, a ring-buffer
// flight recorder of recent diagnostics, and structured Violation errors
// that replace the solver's hard panics (paper §6: multi-week runs on
// thousands of cores cannot be babysat — the system itself must detect
// that a simulation is going bad and react, as the Kepler workflow does).
//
// The package is deliberately low in the dependency order: it knows
// nothing about grids, solvers or communicators. The solver fills a
// Sample per step from data its kernels already touch and hands it to
// Watchdog.Evaluate; cross-rank agreement on abort is the solver's job
// (an allreduce'd status word), built from the Level this package returns.
package health

import (
	"encoding/json"
	"fmt"
	"math"
)

// F is a float64 that survives JSON round-trips even when non-finite.
// encoding/json rejects NaN and ±Inf, but a flight recorder's whole job is
// to capture runs where those values appear; they encode as the strings
// "NaN", "+Inf" and "-Inf".
type F float64

// MarshalJSON encodes non-finite values as strings.
func (f F) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both plain numbers and the non-finite strings.
func (f *F) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = F(math.NaN())
		case "+Inf", "Inf":
			*f = F(math.Inf(1))
		case "-Inf":
			*f = F(math.Inf(-1))
		default:
			return fmt.Errorf("health: bad float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = F(v)
	return nil
}

// Level grades a check result.
type Level int

// Check levels, ordered so the worst level of a set is its max.
const (
	OK Level = iota
	Warn
	Fatal
)

// String renders the level for JSON status documents and log lines.
func (l Level) String() string {
	switch l {
	case Warn:
		return "warn"
	case Fatal:
		return "fatal"
	}
	return "ok"
}

// Violation is a structured fatal health error: which check tripped,
// where (rank + global cell), when (step) and on what value. It replaces
// the solver's bare panics so a failing run terminates with a post-mortem
// instead of a one-line message.
type Violation struct {
	Check    string `json:"check"`
	Rank     int    `json:"rank"`
	Step     int    `json:"step"`
	Cell     [3]int `json:"cell"`
	Quantity string `json:"quantity,omitempty"`
	Value    F      `json:"value"`
	Message  string `json:"message,omitempty"`
}

// Error renders the violation; *Violation implements error so it can
// propagate out of the step loop through ordinary returns.
func (v *Violation) Error() string {
	s := fmt.Sprintf("health: %s violation on rank %d at step %d, cell (%d,%d,%d)",
		v.Check, v.Rank, v.Step, v.Cell[0], v.Cell[1], v.Cell[2])
	if v.Quantity != "" {
		s += fmt.Sprintf(": %s = %g", v.Quantity, float64(v.Value))
	}
	if v.Message != "" {
		s += " (" + v.Message + ")"
	}
	return s
}

// Remote builds the violation a non-faulting rank returns when the
// allreduce'd status word reports that another rank tripped FATAL.
func Remote(rank, step int) *Violation {
	return &Violation{
		Check: "remote", Rank: rank, Step: step,
		Message: fmt.Sprintf("aborted by rank %d", rank),
	}
}

// Band is one check's thresholds: values outside [WarnLo, WarnHi] grade
// WARN, outside [FatalLo, FatalHi] grade FATAL. Use ±Inf (or the Above /
// Below / Range constructors) to disable a side. The zero Band disables
// the check entirely.
type Band struct {
	WarnLo, WarnHi   float64
	FatalLo, FatalHi float64
}

// Range builds a two-sided band.
func Range(warnLo, warnHi, fatalLo, fatalHi float64) Band {
	return Band{WarnLo: warnLo, WarnHi: warnHi, FatalLo: fatalLo, FatalHi: fatalHi}
}

// Above builds a high-side band: values above warn grade WARN, above
// fatal grade FATAL.
func Above(warn, fatal float64) Band {
	return Band{WarnLo: math.Inf(-1), WarnHi: warn, FatalLo: math.Inf(-1), FatalHi: fatal}
}

// Below builds a low-side band.
func Below(warn, fatal float64) Band {
	return Band{WarnLo: warn, WarnHi: math.Inf(1), FatalLo: fatal, FatalHi: math.Inf(1)}
}

// Enabled reports whether the band checks anything.
func (b Band) Enabled() bool { return b != Band{} }

// Classify grades a value against the band. NaN grades OK — non-finite
// data is the dedicated nan check's job, and NaN must not silently
// satisfy or violate a threshold comparison.
func (b Band) Classify(v float64) Level {
	if !b.Enabled() || math.IsNaN(v) {
		return OK
	}
	if v < b.FatalLo || v > b.FatalHi {
		return Fatal
	}
	if v < b.WarnLo || v > b.WarnHi {
		return Warn
	}
	return OK
}

// Config is the rule engine: one band per physics check plus the
// hysteresis counts. A zero Band disables its check; zero hysteresis /
// recorder fields take the Defaults() values when the config enters New.
// Start from Defaults() and adjust bands per problem.
type Config struct {
	// Density, Temperature and Pressure band the primitive-state extrema
	// (kg/m³, K, Pa).
	Density     Band
	Temperature Band
	Pressure    Band

	// SpeciesBounds bands the mass-fraction extrema as recovered from the
	// conserved state before any clipping (so the excursions the solver's
	// primitive recovery silently clips are still observed).
	SpeciesBounds Band
	// SpeciesSum bands the per-cell clipped mass fraction — the sum-to-one
	// drift that the recovery's clip-and-renormalise would otherwise hide.
	SpeciesSum Band

	// CFLAcoustic bands dt·(|u|+|v|+|w|+c)/Δx_min; CFLDiffusive bands the
	// explicit-diffusion stability number 2·d·dt·D_max/Δx_min².
	CFLAcoustic  Band
	CFLDiffusive Band

	// MassDrift and EnergyDrift band |relative drift| of the volume-
	// integrated conserved mass and total energy against their values when
	// the watchdog armed. Open (NSCBC) boundaries legitimately exchange
	// mass and energy with the far field, so the defaults are loose;
	// tighten per problem for periodic boxes.
	MassDrift   Band
	EnergyDrift Band

	// Gamma estimates the sound speed in the acoustic-CFL check as
	// √(γ·p/ρ) without a per-cell thermodynamic evaluation (0 → 1.4).
	Gamma float64

	// Hysteresis: a check must grade bad for WarnAfter (FatalAfter)
	// consecutive steps before it trips WARN (FATAL), and good for
	// ClearAfter consecutive steps before a WARN clears. FATAL is sticky.
	// Defaults: WarnAfter 3, FatalAfter 1, ClearAfter 5.
	WarnAfter  int
	FatalAfter int
	ClearAfter int

	// Frames is the flight-recorder depth in steps (0 → 16); SliceMax is
	// the per-axis resolution cap of the recorded field slices (0 → 32).
	Frames   int
	SliceMax int
}

// Defaults returns the production rule set: bands wide enough that any
// healthy reacting case stays silent, tight enough that a run going bad
// trips within a few steps of the first unphysical state.
func Defaults() Config {
	return Config{
		Density:       Range(1e-3, 50, 1e-5, 500),
		Temperature:   Range(150, 3500, 50, 6000),
		Pressure:      Range(1e3, 1e7, 1e2, 1e8),
		// The 8th-order scheme legitimately under/overshoots mass fractions
		// by a few tenths of a percent near sharp fronts before the filter
		// acts, so the bands start beyond that.
		SpeciesBounds: Range(-5e-3, 1+5e-3, -5e-2, 1+5e-2),
		SpeciesSum:    Above(5e-3, 5e-2),
		CFLAcoustic:   Above(1.0, 2.0),
		CFLDiffusive:  Above(1.0, 2.0),
		MassDrift:     Above(0.05, 0.5),
		EnergyDrift:   Above(0.05, 0.5),
		Gamma:         1.4,
		WarnAfter:     3,
		FatalAfter:    1,
		ClearAfter:    5,
		Frames:        16,
		SliceMax:      32,
	}
}

// normalize fills zero-valued fields from Defaults.
func (c Config) normalize() Config {
	d := Defaults()
	if c.Gamma <= 0 {
		c.Gamma = d.Gamma
	}
	if c.WarnAfter <= 0 {
		c.WarnAfter = d.WarnAfter
	}
	if c.FatalAfter <= 0 {
		c.FatalAfter = d.FatalAfter
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = d.ClearAfter
	}
	if c.Frames <= 0 {
		c.Frames = d.Frames
	}
	if c.SliceMax <= 0 {
		c.SliceMax = d.SliceMax
	}
	return c
}
