package health

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/s3dgo/s3d/internal/obs"
)

// Extremum is a field extremum together with the global cell that
// attains it — the paper's min/max monitoring quantities, but locatable.
type Extremum struct {
	V    F      `json:"v"`
	Cell [3]int `json:"cell"`
}

// Sample is one step's worth of physics diagnostics, filled by the solver
// from data its kernels already touch (one fused interior sweep). All
// extrema carry global cell indices; Mass and Energy are the volume
// integrals of the conserved density and total energy (globally reduced
// in decomposed runs before Evaluate).
type Sample struct {
	Step int `json:"step"`
	Time F   `json:"time"`
	Dt   F   `json:"dt"`

	// Non-finite conserved values: count plus the first offending cell
	// and the conserved quantity found there.
	NaNCount    int    `json:"nan_count"`
	NaNCell     [3]int `json:"nan_cell"`
	NaNQuantity string `json:"nan_quantity,omitempty"`

	RhoMin Extremum `json:"rho_min"`
	RhoMax Extremum `json:"rho_max"`
	TMin   Extremum `json:"t_min"`
	TMax   Extremum `json:"t_max"`
	PMin   Extremum `json:"p_min"`
	PMax   Extremum `json:"p_max"`
	// YMin/YMax are mass-fraction extrema recovered from the conserved
	// state before clipping; YClip is the largest per-cell clipped mass
	// fraction (the hidden sum-to-one drift).
	YMin  Extremum `json:"y_min"`
	YMax  Extremum `json:"y_max"`
	YClip Extremum `json:"y_clip"`

	// CFLAcoustic carries the cell of the fastest signal; CFLDiffusive
	// the cell of the stiffest diffusivity.
	CFLAcoustic  Extremum `json:"cfl_acoustic"`
	CFLDiffusive Extremum `json:"cfl_diffusive"`

	Mass   F `json:"mass"`
	Energy F `json:"energy"`
	// Drifts are relative to the reference the watchdog captured on its
	// first Evaluate (filled by Evaluate, not the solver).
	MassDrift   F `json:"mass_drift"`
	EnergyDrift F `json:"energy_drift"`
}

// CheckStatus is one check's state in a status document or frame.
type CheckStatus struct {
	Level string `json:"level"`
	Value F      `json:"value"`
	Cell  [3]int `json:"cell"`
	// BadSteps / GoodSteps are the hysteresis counters: consecutive steps
	// the raw grade has been bad (≥ warn) or clean.
	BadSteps  int `json:"bad_steps,omitempty"`
	GoodSteps int `json:"good_steps,omitempty"`
}

// Status is the live health document served at /health.
type Status struct {
	Level     string                 `json:"level"`
	Step      int                    `json:"step"`
	Time      F                      `json:"time"`
	Checks    map[string]CheckStatus `json:"checks"`
	Violation *Violation             `json:"violation,omitempty"`
}

// checkNames fixes the evaluation (and reporting) order of the rule set.
var checkNames = []string{
	"nan", "density", "temperature", "pressure",
	"species_bounds", "species_sum",
	"cfl_acoustic", "cfl_diffusive",
	"mass_drift", "energy_drift",
}

// checkState is one rule's hysteresis state.
type checkState struct {
	level Level // tripped level (post-hysteresis)
	bad   int   // consecutive steps graded ≥ Warn
	fatal int   // consecutive steps graded Fatal
	good  int   // consecutive clean steps
	last  CheckStatus
}

// Watchdog evaluates the rule engine over per-step samples, keeps the
// flight recorder, and exposes the live status. It has a single owner
// (the goroutine stepping the block); Status, Handler and the metric
// gauges are safe for concurrent readers. Armed costs one atomic load —
// the entire per-step price when the watchdog is disarmed.
type Watchdog struct {
	cfg   Config
	rank  int
	armed atomic.Bool

	slice func() Slice // optional coarse-slice source for the recorder

	mu        sync.Mutex
	states    map[string]*checkState
	rec       *Recorder
	refMass   float64
	refEnergy float64
	refSet    bool
	status    Status
	violation *Violation

	reg *obs.Registry // nil-safe metric sink
}

// New builds a watchdog for one rank. Arm it to start evaluating.
func New(cfg Config, rank int) *Watchdog {
	cfg = cfg.normalize()
	w := &Watchdog{
		cfg:    cfg,
		rank:   rank,
		states: make(map[string]*checkState, len(checkNames)),
		rec:    NewRecorder(cfg.Frames),
		status: Status{Level: OK.String(), Checks: map[string]CheckStatus{}},
	}
	for _, name := range checkNames {
		w.states[name] = &checkState{}
	}
	return w
}

// Config returns the normalized rule set.
func (w *Watchdog) Config() Config { return w.cfg }

// Rank returns the rank this watchdog was built for.
func (w *Watchdog) Rank() int { return w.rank }

// Arm starts evaluation; Disarm stops it. Armed is the one atomic load
// the solver pays per step when health checking is off.
func (w *Watchdog) Arm()        { w.armed.Store(true) }
func (w *Watchdog) Disarm()     { w.armed.Store(false) }
func (w *Watchdog) Armed() bool { return w.armed.Load() }

// AttachMetrics directs the health gauges (health.status, health.nan_cells,
// health.check.<name>) at a registry; they appear in /metrics and
// /metrics.prom as health_status etc.
func (w *Watchdog) AttachMetrics(reg *obs.Registry) {
	w.mu.Lock()
	w.reg = reg
	w.mu.Unlock()
}

// SetSliceSource installs the callback that captures the coarse field
// slice stored in each flight-recorder frame (the solver wires this to a
// downsampled temperature mid-plane; health itself knows no grids).
func (w *Watchdog) SetSliceSource(fn func() Slice) { w.slice = fn }

// Recorder exposes the flight recorder (tests, post-mortem dumps).
func (w *Watchdog) Recorder() *Recorder { return w.rec }

// rules returns the ordered (name, value, cell, band) tuples for a sample.
// Two-sided field checks grade both extrema and report the worse one.
func (w *Watchdog) rules(s *Sample) []ruleEval {
	c := &w.cfg
	return []ruleEval{
		nanRule(s),
		pairRule("density", s.RhoMin, s.RhoMax, c.Density),
		pairRule("temperature", s.TMin, s.TMax, c.Temperature),
		pairRule("pressure", s.PMin, s.PMax, c.Pressure),
		pairRule("species_bounds", s.YMin, s.YMax, c.SpeciesBounds),
		singleRule("species_sum", s.YClip, c.SpeciesSum),
		singleRule("cfl_acoustic", s.CFLAcoustic, c.CFLAcoustic),
		singleRule("cfl_diffusive", s.CFLDiffusive, c.CFLDiffusive),
		singleRule("mass_drift", absRule(s.MassDrift), c.MassDrift),
		singleRule("energy_drift", absRule(s.EnergyDrift), c.EnergyDrift),
	}
}

// ruleEval is one check graded against one step.
type ruleEval struct {
	name  string
	value F
	cell  [3]int
	raw   Level
}

func singleRule(name string, e Extremum, b Band) ruleEval {
	return ruleEval{name: name, value: e.V, cell: e.Cell, raw: b.Classify(float64(e.V))}
}

func absRule(v F) Extremum { return Extremum{V: F(math.Abs(float64(v)))} }

func pairRule(name string, lo, hi Extremum, b Band) ruleEval {
	llo, lhi := b.Classify(float64(lo.V)), b.Classify(float64(hi.V))
	worst := lo
	lvl := llo
	if lhi > llo {
		worst, lvl = hi, lhi
	}
	return ruleEval{name: name, value: worst.V, cell: worst.Cell, raw: lvl}
}

func nanRule(s *Sample) ruleEval {
	r := ruleEval{name: "nan", value: F(s.NaNCount), cell: s.NaNCell}
	if s.NaNCount > 0 {
		r.raw = Fatal
	}
	return r
}

// Evaluate grades one step's sample through the rule engine, records a
// flight-recorder frame, updates the live status and gauges, and returns
// the violation to abort on (nil for a healthy step). fault, when
// non-nil, is a violation the solver's kernels recorded mid-step (a
// would-be panic) — it is always fatal and takes precedence over rule
// trips as the reported cause. Owner-goroutine only.
func (w *Watchdog) Evaluate(s *Sample, fault *Violation) *Violation {
	if !w.refSet {
		w.refMass, w.refEnergy = float64(s.Mass), float64(s.Energy)
		w.refSet = true
	}
	if w.refMass != 0 {
		s.MassDrift = F((float64(s.Mass) - w.refMass) / w.refMass)
	}
	if w.refEnergy != 0 {
		s.EnergyDrift = F((float64(s.Energy) - w.refEnergy) / w.refEnergy)
	}

	w.mu.Lock()
	defer w.mu.Unlock()

	var viol *Violation
	level := OK
	checks := make(map[string]CheckStatus, len(checkNames))
	for _, r := range w.rules(s) {
		st := w.states[r.name]
		w.advanceState(st, r.raw)
		cs := CheckStatus{
			Level: st.level.String(), Value: r.value, Cell: r.cell,
			BadSteps: st.bad, GoodSteps: st.good,
		}
		st.last = cs
		checks[r.name] = cs
		if st.level > level {
			level = st.level
		}
		if st.level == Fatal && viol == nil {
			viol = &Violation{
				Check: r.name, Rank: w.rank, Step: s.Step,
				Cell: r.cell, Quantity: quantityOf(r.name), Value: r.value,
			}
		}
	}
	if fault != nil {
		level = Fatal
		viol = fault
	}
	if w.violation == nil {
		w.violation = viol // first fatal cause is sticky
	} else {
		viol = w.violation
	}
	if level < Fatal && w.violation != nil {
		level = Fatal // fatal state never clears
	}
	if level < Fatal {
		viol = nil
	}

	frame := Frame{
		Step: s.Step, Time: s.Time, Dt: s.Dt,
		Sample: *s, Checks: checks, Level: level.String(),
	}
	if w.slice != nil {
		sl := w.slice()
		frame.Slice = &sl
	}
	w.rec.Add(frame)

	w.status = Status{
		Level: level.String(), Step: s.Step, Time: s.Time,
		Checks: checks, Violation: w.violation,
	}
	w.setGauges(s, level)
	return viol
}

// advanceState applies the hysteresis machine to one check.
func (w *Watchdog) advanceState(st *checkState, raw Level) {
	if st.level == Fatal {
		return // sticky
	}
	if raw >= Warn {
		st.bad++
		st.good = 0
	} else {
		st.good++
		st.bad = 0
	}
	if raw == Fatal {
		st.fatal++
	} else {
		st.fatal = 0
	}
	switch {
	case st.fatal >= w.cfg.FatalAfter:
		st.level = Fatal
	case st.bad >= w.cfg.WarnAfter && st.level < Warn:
		st.level = Warn
	case st.level == Warn && st.good >= w.cfg.ClearAfter:
		st.level = OK
	}
}

// NoteRemote records a remote rank's abort in this rank's status, so a
// non-faulting rank's /health names the culprit instead of showing ok.
func (w *Watchdog) NoteRemote(v *Violation) {
	if v == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.violation == nil {
		w.violation = v
		w.status.Level = Fatal.String()
		w.status.Violation = v
		if w.reg != nil {
			w.reg.Gauge("health.status").Set(float64(Fatal))
		}
	}
}

// setGauges publishes the step's health to the metrics registry (called
// under w.mu).
func (w *Watchdog) setGauges(s *Sample, level Level) {
	reg := w.reg
	if reg == nil {
		return
	}
	reg.Gauge("health.status").Set(float64(level))
	reg.Gauge("health.nan_cells").Set(float64(s.NaNCount))
	for name, cs := range w.status.Checks {
		lvl := OK
		switch cs.Level {
		case "warn":
			lvl = Warn
		case "fatal":
			lvl = Fatal
		}
		reg.Gauge("health.check." + name).Set(float64(lvl))
	}
}

// quantityOf names the physical quantity behind a check for Violation.
func quantityOf(check string) string {
	switch check {
	case "density":
		return "rho"
	case "temperature":
		return "T"
	case "pressure":
		return "p"
	case "species_bounds":
		return "Y"
	case "species_sum":
		return "sum(Y)-1"
	case "cfl_acoustic", "cfl_diffusive":
		return "CFL"
	case "mass_drift":
		return "mass"
	case "energy_drift":
		return "energy"
	case "nan":
		return "nan_cells"
	}
	return check
}

// Status returns a copy of the live health document (concurrency-safe).
func (w *Watchdog) Status() Status {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.status
	checks := make(map[string]CheckStatus, len(st.Checks))
	for k, v := range st.Checks {
		checks[k] = v
	}
	st.Checks = checks
	return st
}

// Violation returns the sticky fatal cause, nil while healthy.
func (w *Watchdog) Violation() *Violation {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.violation
}

// ObsStatus condenses the status into the trace wire type.
func (w *Watchdog) ObsStatus() obs.HealthStatus {
	st := w.Status()
	hs := obs.HealthStatus{Level: st.Level}
	for _, name := range checkNames {
		if cs, ok := st.Checks[name]; ok && cs.Level != "ok" {
			hs.Tripped = append(hs.Tripped, name)
		}
	}
	return hs
}

// Handler serves the live status as JSON: 200 while ok/warn, 503 once
// fatal (so external probes see a failing run without parsing the body).
func (w *Watchdog) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		st := w.Status()
		rw.Header().Set("Content-Type", "application/json")
		if st.Level == Fatal.String() {
			rw.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
}
