package health

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Slice is a coarse 2-D field snapshot stored with each flight-recorder
// frame — enough to see where the run went bad without a full savefile.
type Slice struct {
	Name string `json:"name"` // e.g. "T@z=mid"
	Nx   int    `json:"nx"`
	Ny   int    `json:"ny"`
	Data []F    `json:"data"` // Nx·Ny values, x-fastest
}

// Frame is one step's flight-recorder entry: the full sample, every
// check's post-hysteresis state and an optional field slice.
type Frame struct {
	Step   int                    `json:"step"`
	Time   F                      `json:"time"`
	Dt     F                      `json:"dt"`
	Level  string                 `json:"level"`
	Sample Sample                 `json:"sample"`
	Checks map[string]CheckStatus `json:"checks"`
	Slice  *Slice                 `json:"slice,omitempty"`
}

// Recorder is the ring-buffer flight recorder: it keeps the last N frames
// so a post-mortem shows the steps leading up to a trip, not just the
// step that tripped. Add has a single owner; Frames and Dump are safe for
// concurrent readers.
type Recorder struct {
	mu     sync.Mutex
	frames []Frame
	next   int
	filled bool
}

// NewRecorder builds a recorder holding the last n frames (n ≥ 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{frames: make([]Frame, n)}
}

// Cap returns the ring depth.
func (r *Recorder) Cap() int { return len(r.frames) }

// Add appends a frame, evicting the oldest once the ring is full.
func (r *Recorder) Add(f Frame) {
	r.mu.Lock()
	r.frames[r.next] = f
	r.next++
	if r.next == len(r.frames) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Frames returns the recorded frames oldest-first.
func (r *Recorder) Frames() []Frame {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Frame
	if r.filled {
		out = append(out, r.frames[r.next:]...)
	}
	out = append(out, r.frames[:r.next]...)
	return out
}

// Len returns the number of recorded frames (≤ Cap).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.frames)
	}
	return r.next
}

// Dump writes the post-mortem bundle into dir: flight.jsonl (one frame
// per line, oldest first) and violation.json (the final status document
// including the fatal cause). The solver layer adds the emergency
// checkpoint alongside; health itself has no field state to save.
func (w *Watchdog) Dump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, frame := range w.rec.Frames() {
		b, err := json.Marshal(frame)
		if err != nil {
			f.Close()
			return err
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	st := w.Status()
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "violation.json"), append(b, '\n'), 0o644)
}

// ReadFlight parses a flight.jsonl back into frames (post-mortem tooling
// and tests).
func ReadFlight(path string) ([]Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Frame
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var fr Frame
		if err := json.Unmarshal([]byte(text), &fr); err != nil {
			return out, fmt.Errorf("health: flight line %d: %w", line, err)
		}
		out = append(out, fr)
	}
	return out, sc.Err()
}
