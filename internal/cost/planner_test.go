package cost

import (
	"reflect"
	"testing"
)

func TestPlannerAdoptsFirstProfile(t *testing.T) {
	p := NewPlanner(5, 0.1)
	prof, changed := p.Fold(2, []float64{1, 2, 3})
	if !changed || !reflect.DeepEqual(prof, []float64{1, 2, 3}) {
		t.Fatalf("first Fold: changed=%v prof=%v", changed, prof)
	}
}

func TestPlannerCadenceAndHysteresis(t *testing.T) {
	p := NewPlanner(4, 0.1)
	p.Fold(2, []float64{10, 10, 10})

	// Within the cadence: kept even for a big move.
	if _, changed := p.Fold(4, []float64{100, 0, 0}); changed {
		t.Fatal("profile adopted inside the cadence window")
	}
	// Past the cadence but under hysteresis: kept.
	if _, changed := p.Fold(6, []float64{10.5, 10, 10}); changed {
		t.Fatal("profile adopted under hysteresis")
	}
	// The keep above restarted the cadence clock.
	if _, changed := p.Fold(8, []float64{100, 0, 0}); changed {
		t.Fatal("cadence clock not restarted by hysteresis keep")
	}
	// Past the cadence with a real move: adopted.
	prof, changed := p.Fold(10, []float64{100, 0, 0})
	if !changed || prof[0] != 100 {
		t.Fatalf("profile not adopted past cadence: changed=%v prof=%v", changed, prof)
	}
	installs, keeps := p.Stats()
	if installs != 2 || keeps != 3 {
		t.Fatalf("stats = (%d, %d), want (2, 3)", installs, keeps)
	}
}

func TestPlanSharingBalanced(t *testing.T) {
	if tr := PlanSharing([]float64{100, 100, 100, 100}, 0.05); tr != nil {
		t.Fatalf("balanced totals produced transfers: %v", tr)
	}
	if tr := PlanSharing([]float64{100, 104, 96, 100}, 0.05); tr != nil {
		t.Fatalf("within-slack totals produced transfers: %v", tr)
	}
	if tr := PlanSharing([]float64{0, 0}, 0.05); tr != nil {
		t.Fatalf("zero totals produced transfers: %v", tr)
	}
	if tr := PlanSharing([]float64{42}, 0.05); tr != nil {
		t.Fatalf("single rank produced transfers: %v", tr)
	}
}

func TestPlanSharingStragglerCase(t *testing.T) {
	// The 4-rank straggler shape: two hot ranks, two near-idle ones.
	totals := []float64{990, 10, 990, 10}
	tr := PlanSharing(totals, 0.05)
	if len(tr) == 0 {
		t.Fatal("no transfers for a 2.0x imbalanced case")
	}
	after := append([]float64(nil), totals...)
	for _, x := range tr {
		if x.From == x.To || x.Work <= 0 {
			t.Fatalf("degenerate transfer %+v", x)
		}
		after[x.From] -= x.Work
		after[x.To] += x.Work
	}
	// Donors and recipients must be disjoint sets (bipartite exchange).
	role := map[int]int{}
	for _, x := range tr {
		if role[x.From] == -1 || role[x.To] == +1 {
			t.Fatalf("rank is both donor and recipient: %v", tr)
		}
		role[x.From], role[x.To] = +1, -1
	}
	// Post-transfer totals land within slack of the mean.
	mean := 500.0
	for r, v := range after {
		if v > mean*1.06 || v < mean*0.94 {
			t.Fatalf("rank %d still carries %g after sharing (mean %g): %v", r, v, mean, tr)
		}
	}
	// Determinism: same input, same assignment.
	if !reflect.DeepEqual(tr, PlanSharing(totals, 0.05)) {
		t.Fatal("PlanSharing is not deterministic")
	}
}

func TestMeasuredLabelsLayout(t *testing.T) {
	labels := MeasuredLabels()
	if len(labels) != len(Kernels)+len(MeasuredOnly) {
		t.Fatalf("MeasuredLabels length %d", len(labels))
	}
	for i, k := range Kernels {
		if measuredIndex(k) != i {
			t.Fatalf("kernel %s at measured index %d, want %d", k, measuredIndex(k), i)
		}
	}
	for i, k := range MeasuredOnly {
		if measuredIndex(k) != len(Kernels)+i {
			t.Fatalf("measured-only %s at index %d", k, measuredIndex(k))
		}
	}
	if measuredIndex("NO_SUCH_KERNEL") != -1 {
		t.Fatal("unknown label has a measured index")
	}
}
