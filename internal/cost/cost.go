// Package cost is the spatial cost-attribution and load-imbalance layer:
// the observability substrate the paper's fig. 3 load-balance study — and
// the ROADMAP's chemistry dynamic-load-balancing item — both need. It
// answers "where in the domain does the time go, and what would a better
// tiling buy?" with two complementary signals:
//
//   - A deterministic work proxy. Chemistry dominates S3D's spatially
//     varying cost, and its stiffness is a pure function of the cell state:
//     reactor.SubstepRate yields the per-cell substep demand an adaptive
//     integrator would pay. The solver evaluates it with the species
//     relative-change limit only (dTdt = 0): it reuses the concentrations
//     and production rates the RHS sweep already holds, and the trace-
//     radical species limits dominate the temperature term for stiff
//     cells anyway. Summed per tile (ordered slots) and folded
//     cross-rank in ascending rank order (comm.AllreduceOrdered), the proxy
//     yields per-kernel imbalance ratios, per-rank straggler attribution and
//     a greedy re-tiling what-if estimate that are bitwise identical for any
//     worker count — the property cost.jsonl records and cost-density
//     fields are pinned to.
//
//   - Measured wall-clock. Per-kernel totals come from the solver's
//     always-on region timers (their cost is already paid whether or not
//     cost maps are on), passed in as deltas over the collection window. A
//     par.CostProbe installed on the block's Plan adds per-tile detail
//     (tile max, per-worker split) sampled from the first few runs of each
//     kernel per window; beyond that budget BeginRun declines the run, so
//     kernels that issue hundreds of micro-runs per step (the naive
//     diff-flux statement sweeps) cost the armed probe only a counter
//     bump — clocking each of their tiles would cost more than the tiles
//     do. Timings are real but scheduler-noisy, so they stay out of the
//     deterministic record: they surface in the "measured" section of the
//     GET /cost document and the cost_* gauges, where they corroborate (or
//     indict) the proxy.
//
// Determinism contract: Record and everything derived from it (cost.jsonl,
// cost-density fields) depend only on the solution state and the shape-only
// tile decomposition — never on wall-clock, worker count or tile schedule.
// Measured timings never feed a Record.
package cost

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/par"
)

// Kernels is the curated list of interior-sweep kernels every rank executes
// every step, in the fixed order the cross-rank fold vector is laid out in.
// Boundary-only kernels (NSCBC) and non-spatial item sweeps (GHOST_EXCHANGE,
// RK_UPDATE) are excluded: a label only some ranks run would give ranks
// different fold-vector lengths and break the collective.
var Kernels = []string{
	"COMPUTE_PRIMITIVES",
	"COMPUTE_TRANSPORT",
	"DERIVATIVES",
	"COMPUTESPECIESDIFFFLUX",
	"ASSEMBLE_FLUXES",
	"DIVERGENCE",
	"REACTION_RATE_BOUNDS",
	"FILTER",
}

// ChemKernel is the kernel the chemistry substep proxy attributes spatially
// varying cost to; every other curated kernel is modelled as uniform
// (cost ∝ cells).
const ChemKernel = "REACTION_RATE_BOUNDS"

// AssemblyKernel is the fused flux-assembly sweep — the second kernel the
// load balancer re-tiles (by total work density: uniform base plus the
// chemistry proxy), since it dominates the non-chemistry step time.
const AssemblyKernel = "ASSEMBLE_FLUXES"

// MeasuredOnly lists the non-spatial item-sweep labels the measured
// wall-clock side channel tracks in addition to Kernels. They never enter
// the deterministic fold — their item counts vary per rank and per step, so
// a fold slot would break the collective's fixed vector length — but their
// run counts and sampled timings belong in the /cost measured section all
// the same (halo pack/unpack wait is exactly the kind of time a cost study
// must not lose).
var MeasuredOnly = []string{
	"GHOST_EXCHANGE",
	"RK_UPDATE",
}

// MeasuredLabels returns the full measured-window label list: the curated
// fold kernels followed by the measured-only item sweeps, in window order.
func MeasuredLabels() []string {
	out := make([]string, 0, len(Kernels)+len(MeasuredOnly))
	out = append(out, Kernels...)
	return append(out, MeasuredOnly...)
}

// measuredIndex maps a plan label to its measured-window slot (-1 when the
// label is not tracked).
func measuredIndex(label string) int {
	for i, k := range Kernels {
		if k == label {
			return i
		}
	}
	for i, k := range MeasuredOnly {
		if k == label {
			return len(Kernels) + i
		}
	}
	return -1
}

// DefaultWhatIfWorkers is the reference worker count the what-if estimator
// evaluates at. It is fixed (not the live pool size) so records are
// independent of the machine the run lands on.
const DefaultWhatIfWorkers = 4

// WhatIf is the greedy cost-weighted re-tiling estimate for one kernel:
// Current is the makespan of the shape-only schedule (contiguous
// equal-count plane spans per worker — what uniform re-tiling yields),
// Greedy the makespan after cost-weighted LPT assignment of the same tiles,
// both at the fixed reference worker count. Reduction = 1 − Greedy/Current
// is the predicted step-time fraction a cost-aware balancer would recover.
type WhatIf struct {
	Workers   int     `json:"workers"`
	Current   float64 `json:"current_makespan"`
	Greedy    float64 `json:"greedy_makespan"`
	Reduction float64 `json:"reduction"`
}

// KernelStat is one kernel's deterministic cost statistics for a step,
// folded across ranks.
type KernelStat struct {
	Kernel string `json:"kernel"`
	// Tiles is the global tile count (summed over ranks).
	Tiles int `json:"tiles"`
	// ProxyTotal is the global work-proxy sum: substep demand for the
	// chemistry kernel, swept cells for uniform kernels.
	ProxyTotal float64 `json:"proxy_total"`
	// MaxTile / MeanTile are the global per-tile extremes of the proxy.
	MaxTile  float64 `json:"max_tile"`
	MeanTile float64 `json:"mean_tile"`
	// Imbalance is MaxTile/MeanTile (1.0 = perfectly balanced tiles).
	Imbalance float64 `json:"imbalance"`
	WhatIf    WhatIf  `json:"what_if"`
}

// Record is the deterministic per-step cost document: the unit cost.jsonl
// appends, subscribers receive and the dashboard lane summarises. It never
// contains wall-clock values.
type Record struct {
	Step    int          `json:"step"`
	Time    float64      `json:"time"`
	Kernels []KernelStat `json:"kernels"`
	// RankTotals is each rank's chemistry work-proxy total, in rank order.
	RankTotals []float64 `json:"rank_totals"`
	// RankImbalance is max/mean over RankTotals; Straggler the argmax rank.
	RankImbalance float64 `json:"rank_imbalance"`
	Straggler     int     `json:"straggler"`
}

// MeasuredKernel is one kernel's wall-clock statistics from the last
// collection window — real, monotonic, and deliberately quarantined from
// Record (timings vary run to run; the proxy does not). Runs and Tiles
// count every plan run of the window; RegionS is the kernel's region-timer
// seconds over the window (exact, from the solver's always-on timers —
// zero for DIVERGENCE, whose sweep shares the DERIVATIVES timer). The
// tile-level statistics (MaxTileS, MeanTileS, Imbalance, WorkerS) come
// from the per-window sample: SampledRuns runs spanning SampledS seconds,
// SampledTiles tiles wide.
type MeasuredKernel struct {
	Kernel       string    `json:"kernel"`
	Runs         int       `json:"runs"`
	Tiles        int       `json:"tiles"`
	RegionS      float64   `json:"region_s"`
	SampledRuns  int       `json:"sampled_runs"`
	SampledTiles int       `json:"sampled_tiles"`
	SampledS     float64   `json:"sampled_s"`
	MaxTileS     float64   `json:"max_tile_s"`
	MeanTileS    float64   `json:"mean_tile_s"`
	Imbalance    float64   `json:"imbalance"`
	WorkerS      []float64 `json:"worker_busy_s,omitempty"`
}

// Document is the GET /cost body: the latest deterministic record plus the
// measured side channel.
type Document struct {
	Record   *Record          `json:"record,omitempty"`
	Measured []MeasuredKernel `json:"measured,omitempty"`
}

// Collector owns one block's cost sampling: it is the par.CostProbe wall-
// clock sampler, the fan-out hub for deterministic records, and the holder
// of the measured window. The solver holds one per block; disabled, it
// costs each plan run a single atomic load.
type Collector struct {
	every         int
	whatIfWorkers int

	enabled atomic.Bool
	armed   atomic.Bool // collection window open (due step in flight)

	// Window state, indexed by position in MeasuredLabels(). Arm, BeginRun,
	// EndRun and SnapshotMeasured all execute on the plan's owner goroutine
	// (plan runs never nest), so the probe path touches it without locks.
	window []measAgg

	mu       sync.Mutex
	latest   *Document
	subs     []func(Record)
	reg      *obs.Registry
	measSnap []MeasuredKernel
}

// sampleRuns is how many runs per kernel per window carry the per-tile
// sample. The first runs of a window are as representative as any (the
// window opens at a step boundary, so they span the step's first RK stage),
// and a fixed small count caps the armed probe at a handful of clock reads
// per kernel no matter how many micro-runs it issues.
const sampleRuns = 2

// measAgg accumulates one kernel's wall-clock timings for a window.
type measAgg struct {
	runs      int // every run, timed or not
	tiles     int
	sampRuns  int // the tile-timed sample
	sampSpan  float64
	sampTiles int
	sampTotal float64
	maxTile   float64
	workerS   []float64
}

// NewCollector creates a collector reducing every `every` steps (values
// below 1 select every step) at the default what-if reference worker count.
func NewCollector(every int) *Collector {
	if every < 1 {
		every = 1
	}
	return &Collector{
		every:         every,
		whatIfWorkers: DefaultWhatIfWorkers,
		window:        make([]measAgg, len(Kernels)+len(MeasuredOnly)),
	}
}

// Every returns the reduction cadence in steps.
func (c *Collector) Every() int { return c.every }

// WhatIfWorkers returns the fixed reference worker count of the estimator.
func (c *Collector) WhatIfWorkers() int { return c.whatIfWorkers }

// Enable starts cost reductions; Disable stops them. Enabled is the single
// atomic load the step loop pays when cost maps are off.
func (c *Collector) Enable()       { c.enabled.Store(true) }
func (c *Collector) Disable()      { c.enabled.Store(false) }
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// Due reports whether the collector reduces at the given (completed) step.
func (c *Collector) Due(step int) bool {
	return c.enabled.Load() && step > 0 && step%c.every == 0
}

// Arm opens (true) or closes (false) the wall-clock collection window.
// Opening clears the previous window. The solver arms at the start of a due
// step and disarms after reducing, so off-cadence steps pay only the probe's
// Armed() load.
func (c *Collector) Arm(on bool) {
	if on {
		for i := range c.window {
			c.window[i] = measAgg{}
		}
	}
	c.armed.Store(on)
}

// Armed implements par.CostProbe: the one-atomic-load fast path.
func (c *Collector) Armed() bool { return c.armed.Load() }

// BeginRun implements par.CostProbe. Every tracked run is counted (runs,
// tiles); the first sampleRuns runs of each kernel per window get a
// recorder with lock-free disjoint per-tile slots written by the workers.
// Past that budget BeginRun returns nil — the plan runs the kernel
// unwrapped, so a micro-run kernel costs the armed probe one label scan
// and two counter bumps per run, no clock reads, no allocation.
func (c *Collector) BeginRun(label string, tiles int) par.RunRecorder {
	idx := measuredIndex(label)
	if idx < 0 {
		return nil
	}
	a := &c.window[idx]
	a.runs++
	a.tiles += tiles
	if a.runs > sampleRuns {
		return nil
	}
	return &runRec{
		c: c, idx: idx,
		start:  time.Now(),
		sec:    make([]float64, tiles),
		worker: make([]int, tiles),
	}
}

type runRec struct {
	c      *Collector
	idx    int // position in MeasuredLabels()
	start  time.Time
	sec    []float64
	worker []int
}

// Tile records one tile's wall time; tile indices within a run are
// distinct, so the writes are disjoint.
func (r *runRec) Tile(idx, worker int, seconds float64, cells int) {
	r.sec[idx] = seconds
	r.worker[idx] = worker
}

// EndRun closes the run's span and folds the sample into the collection
// window (owner goroutine, after the run barrier — no lock needed).
func (r *runRec) EndRun() {
	span := time.Since(r.start).Seconds()
	a := &r.c.window[r.idx]
	a.sampRuns++
	a.sampSpan += span
	for i, s := range r.sec {
		a.sampTiles++
		a.sampTotal += s
		if s > a.maxTile {
			a.maxTile = s
		}
		w := r.worker[i]
		for len(a.workerS) <= w {
			a.workerS = append(a.workerS, 0)
		}
		a.workerS[w] += s
	}
}

// SnapshotMeasured renders the current window as the measured section, in
// measured-label order (curated kernels first, then the measured-only item
// sweeps), and retains it for the next Publish. regionS, when non-nil,
// carries each label's region-timer seconds over the window (aligned with
// MeasuredLabels) — the solver's always-on timers, the exact per-kernel
// totals the sampled probe deliberately does not re-measure. Owner
// goroutine only, like the probe path that fills the window.
func (c *Collector) SnapshotMeasured(regionS []float64) []MeasuredKernel {
	var out []MeasuredKernel
	for i, k := range MeasuredLabels() {
		a := &c.window[i]
		if a.tiles == 0 {
			continue
		}
		mk := MeasuredKernel{
			Kernel: k, Runs: a.runs, Tiles: a.tiles,
			SampledRuns:  a.sampRuns,
			SampledTiles: a.sampTiles,
			SampledS:     a.sampSpan,
			MaxTileS:     a.maxTile,
			WorkerS:      append([]float64(nil), a.workerS...),
		}
		if i < len(regionS) {
			mk.RegionS = regionS[i]
		}
		if a.sampTiles > 0 {
			mk.MeanTileS = a.sampTotal / float64(a.sampTiles)
		}
		if mk.MeanTileS > 0 {
			mk.Imbalance = mk.MaxTileS / mk.MeanTileS
		}
		out = append(out, mk)
	}
	c.mu.Lock()
	c.measSnap = out
	c.mu.Unlock()
	return out
}

// Subscribe registers a callback invoked with every deterministic record,
// on the goroutine driving the simulation, in registration order.
func (c *Collector) Subscribe(fn func(Record)) {
	c.mu.Lock()
	c.subs = append(c.subs, fn)
	c.mu.Unlock()
}

// Publish installs the step's deterministic record (paired with the latest
// measured snapshot) as the live document, updates the cost gauges and fans
// the record out to subscribers.
func (c *Collector) Publish(rec Record) {
	c.mu.Lock()
	doc := &Document{Record: &rec, Measured: c.measSnap}
	c.latest = doc
	reg := c.reg
	subs := append(make([]func(Record), 0, len(c.subs)), c.subs...)
	c.mu.Unlock()
	if reg != nil {
		for _, ks := range rec.Kernels {
			reg.Gauge("cost." + ks.Kernel + ".imbalance").Set(ks.Imbalance)
			reg.Gauge("cost." + ks.Kernel + ".whatif_reduction").Set(ks.WhatIf.Reduction)
		}
		reg.Gauge("cost.rank_imbalance").Set(rec.RankImbalance)
		reg.Gauge("cost.straggler").Set(float64(rec.Straggler))
		for _, mk := range doc.Measured {
			reg.Gauge("cost." + mk.Kernel + ".measured_imbalance").Set(mk.Imbalance)
		}
	}
	for _, fn := range subs {
		fn(rec)
	}
}

// Latest returns the most recent document (nil before the first reduction).
// Safe for concurrent readers.
func (c *Collector) Latest() *Document {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest
}

// AttachMetrics directs the cost gauges (cost.<kernel>.imbalance,
// cost.<kernel>.whatif_reduction, cost.rank_imbalance, cost.straggler) at a
// registry; they appear in /metrics.prom as cost_* gauges.
func (c *Collector) AttachMetrics(reg *obs.Registry) {
	c.mu.Lock()
	c.reg = reg
	c.mu.Unlock()
}

// Handler serves the latest document as JSON — the live GET /cost endpoint.
// Before the first reduction it serves an empty object.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		doc := c.Latest()
		if doc == nil {
			_, _ = w.Write([]byte("{}\n"))
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// Estimate runs the re-tiling what-if on one kernel's per-tile costs:
// Current assigns contiguous equal-count tile spans to the reference
// workers (the shape-only schedule); Greedy sorts tiles by cost (descending,
// ties in tile order) and assigns each to the least-loaded worker — the
// classic LPT bound. Pure and deterministic: same costs, same estimate.
func Estimate(costs []float64, workers int) WhatIf {
	if workers < 1 {
		workers = 1
	}
	n := len(costs)
	w := WhatIf{Workers: workers}
	if n == 0 {
		return w
	}
	for g := 0; g < workers; g++ {
		lo, hi := g*n/workers, (g+1)*n/workers
		var s float64
		for _, v := range costs[lo:hi] {
			s += v
		}
		if s > w.Current {
			w.Current = s
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })
	loads := make([]float64, workers)
	for _, i := range order {
		am := 0
		for g := 1; g < workers; g++ {
			if loads[g] < loads[am] {
				am = g
			}
		}
		loads[am] += costs[i]
	}
	for _, l := range loads {
		if l > w.Greedy {
			w.Greedy = l
		}
	}
	if w.Current > 0 {
		w.Reduction = 1 - w.Greedy/w.Current
	}
	return w
}

// FoldLen returns the cross-rank fold-vector length for a run of `ranks`
// ranks: five slots per curated kernel plus one chemistry-total slot per
// rank. Every rank derives the same length, the precondition of
// comm.AllreduceOrdered.
func FoldLen(ranks int) int { return 5*len(Kernels) + ranks }

// Fold slot layout per kernel k at base 5k:
//
//	+0 tiles (sum)   +1 proxy total (sum)   +2 max tile proxy (max)
//	+3 current makespan (max over ranks)    +4 greedy makespan (max)
//
// followed by the per-rank chemistry totals (sum; each rank writes only its
// own slot).
const slotsPerKernel = 5

// PackFold writes one rank's contribution into vec (length FoldLen(ranks)):
// tileCosts maps curated kernel → this rank's per-tile proxies in ascending
// tile order; chemTotal is the rank's chemistry proxy total.
func PackFold(vec []float64, tileCosts map[string][]float64, chemTotal float64, rank, whatIfWorkers int) {
	for i := range vec {
		vec[i] = 0
	}
	for ki, k := range Kernels {
		costs := tileCosts[k]
		base := slotsPerKernel * ki
		vec[base] = float64(len(costs))
		var total, maxTile float64
		for _, v := range costs {
			total += v
			if v > maxTile {
				maxTile = v
			}
		}
		vec[base+1] = total
		vec[base+2] = maxTile
		wi := Estimate(costs, whatIfWorkers)
		vec[base+3] = wi.Current
		vec[base+4] = wi.Greedy
	}
	vec[slotsPerKernel*len(Kernels)+rank] = chemTotal
}

// CombineFold folds src into dst honouring the slot layout — the combine
// function handed to comm.AllreduceOrdered.
func CombineFold(dst, src []float64) {
	for ki := range Kernels {
		base := slotsPerKernel * ki
		dst[base] += src[base]
		dst[base+1] += src[base+1]
		if src[base+2] > dst[base+2] {
			dst[base+2] = src[base+2]
		}
		if src[base+3] > dst[base+3] {
			dst[base+3] = src[base+3]
		}
		if src[base+4] > dst[base+4] {
			dst[base+4] = src[base+4]
		}
	}
	for i := slotsPerKernel * len(Kernels); i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// Unpack converts a fully folded vector into the step's Record.
func Unpack(vec []float64, step int, time float64, whatIfWorkers int) Record {
	rec := Record{Step: step, Time: time, Kernels: make([]KernelStat, 0, len(Kernels))}
	for ki, k := range Kernels {
		base := slotsPerKernel * ki
		ks := KernelStat{
			Kernel:     k,
			Tiles:      int(vec[base]),
			ProxyTotal: vec[base+1],
			MaxTile:    vec[base+2],
		}
		if ks.Tiles > 0 {
			ks.MeanTile = ks.ProxyTotal / float64(ks.Tiles)
		}
		if ks.MeanTile > 0 {
			ks.Imbalance = ks.MaxTile / ks.MeanTile
		}
		ks.WhatIf = WhatIf{
			Workers: whatIfWorkers,
			Current: vec[base+3],
			Greedy:  vec[base+4],
		}
		if ks.WhatIf.Current > 0 {
			ks.WhatIf.Reduction = 1 - ks.WhatIf.Greedy/ks.WhatIf.Current
		}
		rec.Kernels = append(rec.Kernels, ks)
	}
	rec.RankTotals = append([]float64(nil), vec[slotsPerKernel*len(Kernels):]...)
	var sum, max float64
	for r, v := range rec.RankTotals {
		sum += v
		if v > max {
			max = v
			rec.Straggler = r
		}
	}
	if n := len(rec.RankTotals); n > 0 && sum > 0 {
		rec.RankImbalance = max / (sum / float64(n))
	}
	return rec
}

// Substeps converts a reactor substep rate (1/s) into the per-cell substep
// demand over a step of length dt: at least one substep, plus the rate-
// limited count, clamped so a single runaway cell cannot blow up the map.
func Substeps(rate, dt float64) float64 {
	if !(rate > 0) || !(dt > 0) || math.IsInf(rate, 0) {
		return 1
	}
	s := math.Ceil(rate * dt)
	if s < 1 {
		return 1
	}
	if s > 1e6 {
		return 1e6
	}
	return s
}
