package cost

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
)

// TestEstimateTwoHotTiles pins the what-if estimator on the canonical
// synthetic fixture: eight tiles, two hot (cost 10) among six cold (cost 1),
// four reference workers. The shape-only contiguous schedule lands a hot
// tile in each of the two middle spans (makespan 11); LPT separates them and
// reaches the optimum (makespan 10, the max single tile).
func TestEstimateTwoHotTiles(t *testing.T) {
	costs := []float64{1, 1, 10, 1, 1, 10, 1, 1}
	w := Estimate(costs, 4)
	if w.Workers != 4 {
		t.Fatalf("workers = %d, want 4", w.Workers)
	}
	if w.Current != 11 {
		t.Fatalf("current makespan = %g, want 11 (spans [2,11,11,2])", w.Current)
	}
	if w.Greedy != 10 {
		t.Fatalf("greedy makespan = %g, want 10 (hot tiles separated)", w.Greedy)
	}
	want := 1 - 10.0/11.0
	if math.Abs(w.Reduction-want) > 1e-15 {
		t.Fatalf("reduction = %g, want %g", w.Reduction, want)
	}
}

func TestEstimateUniformAndEdgeCases(t *testing.T) {
	if w := Estimate([]float64{3, 3, 3, 3}, 4); w.Current != 3 || w.Greedy != 3 || w.Reduction != 0 {
		t.Fatalf("uniform tiles must be a no-op what-if: %+v", w)
	}
	if w := Estimate(nil, 4); w.Current != 0 || w.Greedy != 0 || w.Reduction != 0 {
		t.Fatalf("empty costs: %+v", w)
	}
	// One worker: both schedules are the serial sum.
	if w := Estimate([]float64{1, 2, 3}, 1); w.Current != 6 || w.Greedy != 6 {
		t.Fatalf("one worker: %+v", w)
	}
	// Non-positive worker counts clamp to 1 rather than panicking.
	if w := Estimate([]float64{1, 2}, 0); w.Workers != 1 || w.Current != 3 {
		t.Fatalf("clamped workers: %+v", w)
	}
}

// TestEstimateDeterministicTies: equal-cost tiles must assign in tile order
// (stable sort), so the estimate cannot depend on map/schedule order.
func TestEstimateDeterministicTies(t *testing.T) {
	costs := []float64{2, 2, 2, 2, 2, 2}
	a := Estimate(costs, 4)
	b := Estimate(costs, 4)
	if a != b {
		t.Fatalf("estimate not deterministic: %+v vs %+v", a, b)
	}
}

// TestFoldRoundtrip drives Pack → Combine → Unpack over two simulated ranks
// and pins every derived statistic of the chemistry kernel.
func TestFoldRoundtrip(t *testing.T) {
	const ranks = 2
	if got, want := FoldLen(ranks), 5*len(Kernels)+ranks; got != want {
		t.Fatalf("FoldLen(%d) = %d, want %d", ranks, got, want)
	}
	vec0 := make([]float64, FoldLen(ranks))
	vec1 := make([]float64, FoldLen(ranks))
	PackFold(vec0, map[string][]float64{ChemKernel: {1, 2, 3}}, 6, 0, 4)
	PackFold(vec1, map[string][]float64{ChemKernel: {5, 4}}, 9, 1, 4)
	CombineFold(vec0, vec1)
	rec := Unpack(vec0, 10, 0.5, 4)

	if rec.Step != 10 || rec.Time != 0.5 {
		t.Fatalf("step/time lost: %+v", rec)
	}
	if len(rec.Kernels) != len(Kernels) {
		t.Fatalf("got %d kernel stats, want %d", len(rec.Kernels), len(Kernels))
	}
	var chem *KernelStat
	for i := range rec.Kernels {
		if rec.Kernels[i].Kernel == ChemKernel {
			chem = &rec.Kernels[i]
		}
	}
	if chem == nil {
		t.Fatal("no chemistry kernel stat")
	}
	if chem.Tiles != 5 || chem.ProxyTotal != 15 || chem.MaxTile != 5 {
		t.Fatalf("chem totals wrong: %+v", chem)
	}
	if chem.MeanTile != 3 || math.Abs(chem.Imbalance-5.0/3.0) > 1e-15 {
		t.Fatalf("chem mean/imbalance wrong: %+v", chem)
	}
	// Per-rank what-ifs fold by max: rank 0 [1,2,3] → 3, rank 1 [5,4] → 5.
	if chem.WhatIf.Current != 5 || chem.WhatIf.Greedy != 5 || chem.WhatIf.Reduction != 0 {
		t.Fatalf("chem what-if wrong: %+v", chem.WhatIf)
	}
	if !reflect.DeepEqual(rec.RankTotals, []float64{6, 9}) {
		t.Fatalf("rank totals = %v", rec.RankTotals)
	}
	if math.Abs(rec.RankImbalance-9/7.5) > 1e-15 || rec.Straggler != 1 {
		t.Fatalf("rank imbalance/straggler wrong: %+v", rec)
	}
}

// TestCombineFoldOrderIndependentForSums: the sum/max slots commute, so the
// record cannot depend on which rank folds first (AllreduceOrdered fixes the
// order anyway; this pins the combine itself).
func TestCombineFoldOrderIndependentForSums(t *testing.T) {
	mk := func() ([]float64, []float64) {
		a := make([]float64, FoldLen(2))
		b := make([]float64, FoldLen(2))
		PackFold(a, map[string][]float64{ChemKernel: {1, 7}}, 8, 0, 4)
		PackFold(b, map[string][]float64{ChemKernel: {2, 2, 2}}, 6, 1, 4)
		return a, b
	}
	a1, b1 := mk()
	CombineFold(a1, b1)
	a2, b2 := mk()
	CombineFold(b2, a2)
	if !reflect.DeepEqual(a1, b2) {
		t.Fatalf("combine not commutative:\n%v\n%v", a1, b2)
	}
}

func TestSubsteps(t *testing.T) {
	cases := []struct {
		rate, dt, want float64
	}{
		{0, 1e-8, 1},           // no stiffness → one substep
		{-5, 1e-8, 1},          // negative guarded
		{math.NaN(), 1e-8, 1},  // NaN guarded
		{math.Inf(1), 1e-8, 1}, // Inf guarded
		{1e9, 0, 1},            // degenerate dt guarded
		{2.5e8, 1e-8, 3},       // ceil(2.5)
		{1, 1e-8, 1},           // sub-unity demand floors at 1
		{1e30, 1, 1e6},         // runaway cell clamped
	}
	for _, c := range cases {
		if got := Substeps(c.rate, c.dt); got != c.want {
			t.Fatalf("Substeps(%g, %g) = %g, want %g", c.rate, c.dt, got, c.want)
		}
	}
}

func TestStoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cost.jsonl")
	st, err := CreateStore(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		Unpack(packOne(t, []float64{1, 2, 3}, 6), 2, 1e-7, 4),
		Unpack(packOne(t, []float64{9, 1, 1}, 11), 4, 2e-7, 4),
	}
	sink := st.Sink()
	for _, r := range recs {
		sink(r)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCost(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, recs)
	}
}

func packOne(t *testing.T, chem []float64, total float64) []float64 {
	t.Helper()
	vec := make([]float64, FoldLen(1))
	PackFold(vec, map[string][]float64{ChemKernel: chem}, total, 0, 4)
	return vec
}

// TestCollectorLifecycle covers the probe contract: cadence, the armed
// window, tracked-vs-untracked labels, the measured snapshot and the live
// handler.
func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector(2)
	if c.Due(2) {
		t.Fatal("due before Enable")
	}
	c.Enable()
	if c.Due(0) || c.Due(1) || !c.Due(2) || c.Due(3) || !c.Due(4) {
		t.Fatal("cadence wrong for every=2")
	}
	if c.Armed() {
		t.Fatal("armed before Arm(true)")
	}

	// Before any reduction the endpoint answers {}, not 404.
	rr := httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/cost", nil))
	if rr.Code != 200 || rr.Body.String() != "{}\n" {
		t.Fatalf("GET /cost before first record = %d %q", rr.Code, rr.Body.String())
	}

	c.Arm(true)
	if !c.Armed() {
		t.Fatal("not armed")
	}
	if rec := c.BeginRun("COST", 4); rec != nil {
		t.Fatal("untracked label must not be timed")
	}
	// The first sampleRuns runs of a kernel carry the per-tile sample;
	// runs past the budget are counted but get no recorder at all.
	run := c.BeginRun(ChemKernel, 2)
	if run == nil {
		t.Fatal("first run must carry the per-tile sample")
	}
	run.Tile(0, 0, 0.25, 100)
	run.Tile(1, 1, 0.75, 100)
	run.EndRun()
	run = c.BeginRun(ChemKernel, 3)
	if run == nil {
		t.Fatal("second run must carry the per-tile sample")
	}
	run.Tile(0, 0, 0.5, 100)
	run.Tile(1, 0, 0.5, 100)
	run.Tile(2, 1, 1.0, 100)
	run.EndRun()
	if rec := c.BeginRun(ChemKernel, 4); rec != nil {
		t.Fatal("run past the sample budget must be count-only (nil recorder)")
	}
	regionS := make([]float64, len(Kernels))
	for i, k := range Kernels {
		if k == ChemKernel {
			regionS[i] = 7.5
		}
	}
	meas := c.SnapshotMeasured(regionS)
	if len(meas) != 1 || meas[0].Kernel != ChemKernel {
		t.Fatalf("measured snapshot wrong: %+v", meas)
	}
	m := meas[0]
	// Runs and Tiles count every run; RegionS passes through from the
	// solver's region timers; the tile statistics come from the two sampled
	// runs — five tiles totalling 3.0 s of synthetic time (SampledS is the
	// real recorder span, so only its sign is pinnable).
	if m.Runs != 3 || m.Tiles != 9 || m.RegionS != 7.5 {
		t.Fatalf("measured run stats wrong: %+v", m)
	}
	if m.SampledRuns != 2 || m.SampledTiles != 5 || m.SampledS <= 0 {
		t.Fatalf("measured sample counts wrong: %+v", m)
	}
	if m.MaxTileS != 1.0 || m.MeanTileS != 0.6 {
		t.Fatalf("measured sample stats wrong: %+v", m)
	}
	if math.Abs(m.Imbalance-1.0/0.6) > 1e-15 || !reflect.DeepEqual(m.WorkerS, []float64{1.25, 1.75}) {
		t.Fatalf("measured imbalance/worker split wrong: %+v", m)
	}
	c.Arm(false)

	var seen []int
	c.Subscribe(func(r Record) { seen = append(seen, r.Step) })
	rec := Unpack(packOne(t, []float64{1, 3}, 4), 2, 1e-7, 4)
	c.Publish(rec)
	if !reflect.DeepEqual(seen, []int{2}) {
		t.Fatalf("subscriber saw %v", seen)
	}
	doc := c.Latest()
	if doc == nil || doc.Record == nil || doc.Record.Step != 2 || len(doc.Measured) != 1 {
		t.Fatalf("latest document wrong: %+v", doc)
	}

	rr = httptest.NewRecorder()
	c.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/cost", nil))
	var live Document
	if err := json.Unmarshal(rr.Body.Bytes(), &live); err != nil {
		t.Fatalf("GET /cost not a document: %v\n%s", err, rr.Body.String())
	}
	if live.Record == nil || live.Record.Step != 2 || len(live.Measured) != 1 {
		t.Fatalf("live document wrong: %+v", live)
	}

	// Re-arming clears the measured window for the next due step.
	c.Arm(true)
	if got := c.SnapshotMeasured(nil); len(got) != 0 {
		t.Fatalf("arm did not clear the window: %+v", got)
	}
}
