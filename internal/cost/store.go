package cost

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Store is the append-only cost.jsonl sink: one deterministic Record per
// line, flushed per append so the file stays live for the dashboard and for
// tail -f while the run is in flight.
type Store struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	err error
}

// CreateStore creates (truncating) the cost store at path.
func CreateStore(path string) (*Store, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Store{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one record as a JSON line and flushes.
func (s *Store) Append(r Record) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return s.w.Flush()
}

// Sink adapts the store to a Collector subscriber. Write failures never
// take the run down; the first one is retained for Err.
func (s *Store) Sink() func(Record) {
	return func(r Record) {
		if err := s.Append(r); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
	}
}

// Err returns the first append failure seen by Sink, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and closes the store file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// ReadCost loads every record of a cost.jsonl store.
func ReadCost(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("cost: %s:%d: %v", path, line, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
