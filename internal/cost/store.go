package cost

import "github.com/s3dgo/s3d/internal/jsonl"

// Store is the append-only cost.jsonl sink: one deterministic Record per
// line, flushed per append so the file stays live for the dashboard and for
// tail -f while the run is in flight. It is the shared jsonl.Store helper
// specialised to cost records.
type Store struct {
	*jsonl.Store[Record]
}

// CreateStore creates (truncating) the cost store at path.
func CreateStore(path string) (*Store, error) {
	st, err := jsonl.Create[Record](path)
	if err != nil {
		return nil, err
	}
	return &Store{st}, nil
}

// ReadCost loads every record of a cost.jsonl store, tolerating a corrupt
// tail (a run killed mid-append) the way obs.ReadTrace does: the valid
// prefix still loads, and only mid-stream corruption reports an error.
func ReadCost(path string) ([]Record, error) {
	return jsonl.Read[Record]("cost", path)
}
