package cost

// The planning side of dynamic load balancing: Planner turns the per-step
// chemistry cost profiles measured by the collector into stable per-plane
// weight profiles for par.Plan.SetWeights, and PlanSharing turns the
// record's per-rank chemistry totals into a deterministic cross-rank
// work-sharing assignment. Both are pure functions of deterministic record
// data — every rank derives bitwise-identical plans from the ordered fold,
// which is what lets donors and recipients agree on bundle sizes without a
// negotiation round and keeps balanced runs bitwise equal to unbalanced
// ones.

import "math"

// Planner folds measured chemistry profiles into a stable active weight
// profile: a fresh profile is adopted only when the re-plan cadence has
// elapsed and the profile moved more than the hysteresis fraction since the
// active plan was installed. Plans therefore change rarely (partitions stay
// cached, tile shapes stay comparable step to step) while still tracking a
// moving flame front.
type Planner struct {
	every      int
	hysteresis float64

	lastStep int
	active   []float64

	installs, keeps int
}

// NewPlanner builds a planner with the given re-plan cadence (steps between
// plan changes; minimum 1) and hysteresis (fractional L1 profile change
// below which the active plan is kept; negative treated as 0).
func NewPlanner(every int, hysteresis float64) *Planner {
	if every < 1 {
		every = 1
	}
	if hysteresis < 0 {
		hysteresis = 0
	}
	return &Planner{every: every, hysteresis: hysteresis, lastStep: math.MinInt32}
}

// Fold offers the profile measured at step and returns the active profile
// plus whether it changed (callers re-install weights only on change). The
// first profile is always adopted; afterwards a profile is adopted when the
// cadence has elapsed since the last decision and the relative L1 distance
// to the active profile is at least the hysteresis.
func (p *Planner) Fold(step int, profile []float64) ([]float64, bool) {
	if p.active != nil {
		if step-p.lastStep < p.every {
			p.keeps++
			return p.active, false
		}
		if len(profile) == len(p.active) {
			var diff, norm float64
			for i, v := range profile {
				d := v - p.active[i]
				if d < 0 {
					d = -d
				}
				diff += d
				norm += p.active[i]
			}
			if norm > 0 && diff/norm < p.hysteresis {
				p.lastStep = step
				p.keeps++
				return p.active, false
			}
		}
	}
	p.active = append(p.active[:0], profile...)
	p.lastStep = step
	p.installs++
	return p.active, true
}

// Stats returns how many profiles were adopted vs kept (diagnostics).
func (p *Planner) Stats() (installs, keeps int) { return p.installs, p.keeps }

// Transfer is one donor→recipient shipment of the cross-rank work-sharing
// assignment: rank From computes Work units less of its own chemistry and
// ships the corresponding cells to rank To. The assignment is derived from
// the ordered-fold rank totals, so every rank computes the identical
// transfer list — there is no racing steal.
type Transfer struct {
	From, To int
	Work     float64
}

// PlanSharing derives the deterministic work-sharing assignment from a
// record's per-rank chemistry totals. slack is the fractional deviation
// from the mean a rank may carry before it participates (donors above
// (1+slack)·mean, recipients below (1−slack)·mean). Greedy max-surplus →
// max-deficit matching with lowest-rank tie-breaks: pure, deterministic,
// and donor/recipient sets are disjoint, so the exchange is bipartite and
// deadlock-free.
func PlanSharing(totals []float64, slack float64) []Transfer {
	n := len(totals)
	if n < 2 {
		return nil
	}
	var sum float64
	for _, v := range totals {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil
		}
		sum += v
	}
	if sum <= 0 {
		return nil
	}
	mean := sum / float64(n)
	if slack < 0 {
		slack = 0
	}
	tol := slack * mean
	surplus := make([]float64, n)
	for i, v := range totals {
		surplus[i] = v - mean
	}
	var out []Transfer
	for iter := 0; iter < 4*n; iter++ {
		d, r := -1, -1
		for i := 0; i < n; i++ {
			if surplus[i] > tol && (d < 0 || surplus[i] > surplus[d]) {
				d = i
			}
			if -surplus[i] > tol && (r < 0 || surplus[i] < surplus[r]) {
				r = i
			}
		}
		if d < 0 || r < 0 {
			break
		}
		amt := surplus[d]
		if -surplus[r] < amt {
			amt = -surplus[r]
		}
		out = append(out, Transfer{From: d, To: r, Work: amt})
		surplus[d] -= amt
		surplus[r] += amt
	}
	return out
}
