// Package sdf is a minimal self-describing data format standing in for the
// netCDF files of the S3D workflow (paper §9): named multi-dimensional
// float64 variables with string attributes in a single binary container.
// The workflow's "netcdf analysis files" pipeline morphs, plots and
// archives these.
package sdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// magic identifies an SDF stream; the version byte follows.
var magic = [4]byte{'S', '3', 'D', 'F'}

const version = 1

// Variable is one named array with its dimensions. Data holds the values
// for materialised variables; a streamed variable (AddVarFunc) carries a
// Rows source instead and produces its values only at Encode time.
type Variable struct {
	Name string
	Dims []int
	Data []float64
	Rows RowSource
}

// RowSource streams a variable's values as consecutive chunks at Encode
// time: the source calls emit once per chunk, in order, and the chunks'
// total length must equal the variable's Size. Emitted slices may alias
// live field storage — Encode copies them into its write buffer
// immediately — so large fields are written without being materialised in
// a contiguous temporary first.
type RowSource func(emit func(chunk []float64) error) error

// Size returns the expected element count of the dims.
func (v *Variable) Size() int {
	n := 1
	for _, d := range v.Dims {
		n *= d
	}
	return n
}

// File is an in-memory SDF dataset.
type File struct {
	Attrs map[string]string
	Vars  []Variable
}

// New creates an empty dataset.
func New() *File { return &File{Attrs: map[string]string{}} }

// AddVar appends a variable after validating its shape.
func (f *File) AddVar(name string, dims []int, data []float64) error {
	v := Variable{Name: name, Dims: append([]int(nil), dims...), Data: data}
	if v.Size() != len(data) {
		return fmt.Errorf("sdf: variable %q dims %v need %d values, got %d",
			name, dims, v.Size(), len(data))
	}
	f.Vars = append(f.Vars, v)
	return nil
}

// AddVarFunc appends a streamed variable: rows supplies the values at
// Encode time (see RowSource). Encode fails if the streamed element count
// does not match the dims.
func (f *File) AddVarFunc(name string, dims []int, rows RowSource) error {
	if rows == nil {
		return fmt.Errorf("sdf: variable %q has a nil row source", name)
	}
	f.Vars = append(f.Vars, Variable{Name: name, Dims: append([]int(nil), dims...), Rows: rows})
	return nil
}

// Var returns the named variable or nil.
func (f *File) Var(name string) *Variable {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i]
		}
	}
	return nil
}

// Encode writes the dataset.
func (f *File) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	writeStr := func(s string) error {
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeU32(uint32(len(f.Attrs))); err != nil {
		return err
	}
	// Deterministic attribute order.
	keys := make([]string, 0, len(f.Attrs))
	for k := range f.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeStr(k); err != nil {
			return err
		}
		if err := writeStr(f.Attrs[k]); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(len(f.Vars))); err != nil {
		return err
	}
	// One scratch byte buffer encodes every chunk of every streamed
	// variable, so writing N fields costs zero per-field allocations.
	var scratch []byte
	writeChunk := func(chunk []float64) error {
		need := 8 * len(chunk)
		if cap(scratch) < need {
			scratch = make([]byte, need)
		}
		buf := scratch[:need]
		for i, x := range chunk {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
		}
		_, err := bw.Write(buf)
		return err
	}
	for i := range f.Vars {
		v := &f.Vars[i]
		if err := writeStr(v.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(len(v.Dims))); err != nil {
			return err
		}
		for _, d := range v.Dims {
			if err := writeU32(uint32(d)); err != nil {
				return err
			}
		}
		if v.Rows != nil {
			n := 0
			if err := v.Rows(func(chunk []float64) error {
				n += len(chunk)
				return writeChunk(chunk)
			}); err != nil {
				return err
			}
			if n != v.Size() {
				return fmt.Errorf("sdf: variable %q dims %v need %d values, streamed %d",
					v.Name, v.Dims, v.Size(), n)
			}
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, v.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a dataset.
func Decode(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("sdf: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("sdf: unsupported version %d", ver)
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("sdf: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	f := New()
	nAttrs, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nAttrs; i++ {
		k, err := readStr()
		if err != nil {
			return nil, err
		}
		v, err := readStr()
		if err != nil {
			return nil, err
		}
		f.Attrs[k] = v
	}
	nVars, err := readU32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nVars; i++ {
		name, err := readStr()
		if err != nil {
			return nil, err
		}
		nd, err := readU32()
		if err != nil {
			return nil, err
		}
		if nd > 8 {
			return nil, fmt.Errorf("sdf: variable %q has %d dims", name, nd)
		}
		dims := make([]int, nd)
		size := 1
		for d := range dims {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			dims[d] = int(v)
			size *= int(v)
		}
		if size > 1<<28 {
			return nil, fmt.Errorf("sdf: variable %q implausibly large (%d)", name, size)
		}
		data := make([]float64, size)
		if err := binary.Read(br, binary.LittleEndian, data); err != nil {
			return nil, err
		}
		f.Vars = append(f.Vars, Variable{Name: name, Dims: dims, Data: data})
	}
	return f, nil
}

// WriteFile encodes to a path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadFile decodes from a path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return Decode(in)
}
