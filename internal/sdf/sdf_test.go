package sdf

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	f := New()
	f.Attrs["step"] = "42"
	f.Attrs["code"] = "s3d"
	if err := f.AddVar("T", []int{2, 3}, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddVar("p", []int{1}, []float64{101325}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attrs["step"] != "42" || got.Attrs["code"] != "s3d" {
		t.Fatalf("attrs lost: %v", got.Attrs)
	}
	v := got.Var("T")
	if v == nil || len(v.Dims) != 2 || v.Dims[0] != 2 || v.Dims[1] != 3 {
		t.Fatalf("dims lost: %+v", v)
	}
	for i, want := range []float64{1, 2, 3, 4, 5, 6} {
		if v.Data[i] != want {
			t.Fatalf("data[%d] = %g", i, v.Data[i])
		}
	}
	if got.Var("missing") != nil {
		t.Fatal("phantom variable")
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(vals []float64, key, val string) bool {
		f := New()
		if key != "" {
			f.Attrs[key] = val
		}
		if err := f.AddVar("x", []int{len(vals)}, vals); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := f.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		v := got.Var("x")
		if v == nil || len(v.Data) != len(vals) {
			return false
		}
		for i := range vals {
			same := v.Data[i] == vals[i] ||
				(math.IsNaN(v.Data[i]) && math.IsNaN(vals[i]))
			if !same {
				return false
			}
		}
		return key == "" || got.Attrs[key] == val
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShapeMismatchRejected(t *testing.T) {
	f := New()
	if err := f.AddVar("bad", []int{4}, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPEx"))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	f := New()
	_ = f.AddVar("x", []int{3}, []float64{1, 2, 3})
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := Decode(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.sdf")
	f := New()
	_ = f.AddVar("u", []int{2}, []float64{3.5, -1})
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Var("u").Data[0] != 3.5 {
		t.Fatal("file round trip corrupt")
	}
}
