package transport

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/s3dgo/s3d/internal/thermo"
)

func airModel(t testing.TB) (*Model, []float64) {
	set := thermo.MustSet("O2", "N2")
	m, err := New(set)
	if err != nil {
		t.Fatal(err)
	}
	return m, []float64{0.233, 0.767}
}

func TestAirViscosity(t *testing.T) {
	m, Y := airModel(t)
	p := &Props{Dmix: make([]float64, 2)}
	m.Mixture(300, 101325, Y, p)
	// Air at 300 K: μ ≈ 1.85×10⁻⁵ Pa·s.
	if math.Abs(p.Mu-1.85e-5)/1.85e-5 > 0.10 {
		t.Fatalf("air viscosity = %g, want ≈ 1.85e-5", p.Mu)
	}
}

func TestAirConductivity(t *testing.T) {
	m, Y := airModel(t)
	p := &Props{Dmix: make([]float64, 2)}
	m.Mixture(300, 101325, Y, p)
	// Air at 300 K: λ ≈ 0.026 W/(m·K).
	if math.Abs(p.Lambda-0.026)/0.026 > 0.15 {
		t.Fatalf("air conductivity = %g, want ≈ 0.026", p.Lambda)
	}
}

func TestViscosityGrowsWithT(t *testing.T) {
	m, Y := airModel(t)
	p1 := &Props{Dmix: make([]float64, 2)}
	p2 := &Props{Dmix: make([]float64, 2)}
	m.Mixture(300, 101325, Y, p1)
	m.Mixture(1500, 101325, Y, p2)
	// Gas viscosity scales roughly as T^0.7: expect ×2.5–4 over 300→1500 K.
	r := p2.Mu / p1.Mu
	if r < 2.0 || r > 5.0 {
		t.Fatalf("viscosity ratio 1500/300 K = %g, want 2–5", r)
	}
}

func TestBinaryDiffusionKnownValue(t *testing.T) {
	// D(H2O–air-ish N2) at 300 K, 1 atm ≈ 0.25 cm²/s; D(O2–N2) ≈ 0.20 cm²/s.
	set := thermo.MustSet("O2", "N2", "H2O", "H2")
	m := MustNew(set)
	d := m.BinaryDiffusion(0, 1, 300, 101325) * 1e4 // m²/s → cm²/s
	if d < 0.12 || d > 0.30 {
		t.Fatalf("D(O2,N2) = %g cm²/s, want ≈ 0.2", d)
	}
	dh2 := m.BinaryDiffusion(3, 1, 300, 101325) * 1e4
	// H2 in N2 ≈ 0.78 cm²/s, far faster than O2 — the differential-diffusion
	// property that matters for hydrogen flames.
	if dh2 < 2*d {
		t.Fatalf("D(H2,N2) = %g not ≫ D(O2,N2) = %g", dh2, d)
	}
}

func TestBinaryDiffusionSymmetric(t *testing.T) {
	set := thermo.MustSet("H2", "O2", "H2O", "CO2", "N2")
	m := MustNew(set)
	for i := 0; i < set.Len(); i++ {
		for j := 0; j < set.Len(); j++ {
			dij := m.BinaryDiffusion(i, j, 800, 101325)
			dji := m.BinaryDiffusion(j, i, 800, 101325)
			if math.Abs(dij-dji) > 1e-15 {
				t.Fatalf("D not symmetric: %g vs %g", dij, dji)
			}
		}
	}
}

func TestDiffusionScalesInverselyWithPressure(t *testing.T) {
	set := thermo.MustSet("O2", "N2")
	m := MustNew(set)
	d1 := m.BinaryDiffusion(0, 1, 500, 101325)
	d2 := m.BinaryDiffusion(0, 1, 500, 2*101325)
	if math.Abs(d1/d2-2) > 1e-12 {
		t.Fatalf("D(p)/D(2p) = %g, want 2", d1/d2)
	}
}

func TestWilkePureSpeciesLimit(t *testing.T) {
	// With Y = pure species the mixture viscosity equals the species value.
	set := thermo.MustSet("O2", "N2")
	m := MustNew(set)
	p := &Props{Dmix: make([]float64, 2)}
	m.Mixture(600, 101325, []float64{1, 0}, p)
	want := m.SpeciesViscosity(0, 600)
	if math.Abs(p.Mu-want)/want > 1e-12 {
		t.Fatalf("pure-species Wilke = %g, want %g", p.Mu, want)
	}
	if math.Abs(p.Lambda-m.SpeciesConductivity(0, 600))/p.Lambda > 1e-12 {
		t.Fatalf("pure-species conductivity = %g", p.Lambda)
	}
	// The pure-species diffusion coefficient falls back to the self value.
	if p.Dmix[0] <= 0 {
		t.Fatalf("pure-species Dmix = %g", p.Dmix[0])
	}
}

func TestMixturePropertiesPositiveProperty(t *testing.T) {
	set := thermo.MustSet("H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2")
	m := MustNew(set)
	n := set.Len()
	p := &Props{Dmix: make([]float64, n)}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		Y := make([]float64, n)
		var s float64
		for i := range Y {
			Y[i] = r.Float64()
			s += Y[i]
		}
		for i := range Y {
			Y[i] /= s
		}
		T := 300 + 2400*r.Float64()
		m.Mixture(T, 101325, Y, p)
		if !(p.Mu > 0) || !(p.Lambda > 0) {
			return false
		}
		for _, d := range p.Dmix {
			if !(d > 0) || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrandtlNumberReasonable(t *testing.T) {
	m, Y := airModel(t)
	p := &Props{Dmix: make([]float64, 2)}
	m.Mixture(300, 101325, Y, p)
	cp := m.Set.CpMass(300, Y)
	pr := p.Mu * cp / p.Lambda
	if pr < 0.6 || pr > 0.85 {
		t.Fatalf("air Prandtl number = %g, want ≈ 0.7", pr)
	}
}

func TestLewisNumberH2Light(t *testing.T) {
	// Le_H2 = λ/(ρ·cp·D_H2) in air should be well below 1 (fast-diffusing
	// fuel), Le_O2 near 1 — the physics behind the lifted-flame lean-ignition
	// finding in paper §6.
	set := thermo.MustSet("H2", "O2", "N2")
	m := MustNew(set)
	Y := []float64{0.01, 0.23, 0.76}
	p := &Props{Dmix: make([]float64, 3)}
	T := 800.0
	m.Mixture(T, 101325, Y, p)
	rho := set.Density(101325, T, Y)
	cp := set.CpMass(T, Y)
	leH2 := p.Lambda / (rho * cp * p.Dmix[0])
	leO2 := p.Lambda / (rho * cp * p.Dmix[1])
	if leH2 > 0.6 {
		t.Fatalf("Le_H2 = %g, want < 0.6", leH2)
	}
	if leO2 < 0.7 || leO2 > 1.6 {
		t.Fatalf("Le_O2 = %g, want ≈ 1", leO2)
	}
}

func TestMissingLJDataError(t *testing.T) {
	// All database species have LJ data, so fabricate a set check by using
	// the full H2 set (should succeed).
	set := thermo.MustSet("H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2")
	if _, err := New(set); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCloneIndependentScratch(t *testing.T) {
	m, Y := airModel(t)
	c := m.Clone()
	p1 := &Props{Dmix: make([]float64, 2)}
	p2 := &Props{Dmix: make([]float64, 2)}
	m.Mixture(300, 101325, Y, p1)
	c.Mixture(300, 101325, Y, p2)
	if p1.Mu != p2.Mu || p1.Lambda != p2.Lambda {
		t.Fatalf("clone disagrees: %g vs %g", p1.Mu, p2.Mu)
	}
	if &m.x[0] == &c.x[0] {
		t.Fatal("clone shares scratch")
	}
}

func BenchmarkMixtureH2Air(b *testing.B) {
	set := thermo.MustSet("H2", "O2", "O", "OH", "H2O", "H", "HO2", "H2O2", "N2")
	m := MustNew(set)
	Y := []float64{0.02, 0.2, 0.001, 0.002, 0.05, 0.0005, 0.0002, 0.0001, 0.7262}
	p := &Props{Dmix: make([]float64, set.Len())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mixture(1200, 101325, Y, p)
	}
}
