// Package transport evaluates mixture-averaged molecular transport
// properties for the S3D solver: pure-species viscosities from
// Chapman–Enskog theory with Neufeld collision-integral fits, the Wilke
// mixture rule, modified-Eucken thermal conductivities with the
// Mathur–Saxena mixture average, binary diffusion coefficients, and the
// mixture-averaged diffusion coefficients of paper eq. (17).
//
// This package plays the role of the CHEMKIN TRANSPORT library linked by
// the original S3D (paper §2.6). Lennard-Jones parameters are standard
// database values. Consistent with the paper (§2.4–2.5), Soret and Dufour
// effects and barodiffusion are not modelled.
package transport

import (
	"fmt"
	"math"

	"github.com/s3dgo/s3d/internal/thermo"
)

// Boltzmann constant (J/K) and Avogadro number used by kinetic theory.
const (
	kB = 1.380649e-23
	nA = 6.02214076e23
)

// ljParams holds Lennard-Jones well depth ε/k_B (K) and collision diameter
// σ (Å) per species.
var ljParams = map[string]struct{ eps, sigma float64 }{
	"H2":   {38.0, 2.920},
	"O2":   {107.4, 3.458},
	"N2":   {97.53, 3.621},
	"H":    {145.0, 2.050},
	"O":    {80.0, 2.750},
	"OH":   {80.0, 2.750},
	"H2O":  {572.4, 2.605},
	"HO2":  {107.4, 3.458},
	"H2O2": {107.4, 3.458},
	"CH4":  {141.4, 3.746},
	"CO":   {98.1, 3.650},
	"CO2":  {244.0, 3.763},
	"CH3":  {144.0, 3.800},
	"CH2O": {498.0, 3.590},
	"HCO":  {498.0, 3.590},
}

// Model evaluates transport properties for a species set. Construct one per
// solver rank (it holds scratch) with New. Following the CHEMKIN TRANSPORT
// design, the kinetic-theory expressions are fitted once at construction to
// cubic polynomials in ln T, so the per-point Mixture evaluation needs one
// exp per species/pair instead of repeated collision-integral fits.
type Model struct {
	Set *thermo.Set

	eps, sigma []float64 // per species
	sqrtW      []float64
	// phiFac caches the constant part of the Wilke interaction factor.
	wRatio [][]float64 // Wj/Wi
	w4     [][]float64 // (Wj/Wi)^(1/4), Wilke prefactor
	wPhi   [][]float64 // 1/√(8(1+Wi/Wj)), Wilke denominator factor
	// dFac caches the constant prefactor of each binary pair.
	dEps  [][]float64 // sqrt(eps_i·eps_j)
	dSig  [][]float64 // (σ_i+σ_j)/2 in m
	dWred [][]float64 // 2/(1/Wi+1/Wj) reduced weight, kg/mol

	// Fitted property polynomials: value = exp(c0 + c1·lnT + c2·lnT² + c3·lnT³).
	muFit [][4]float64   // per species: ln μ(T)
	dFit  [][][4]float64 // per pair: ln D_ij(T) at p = 1 atm

	x, mu, lam []float64 // scratch
}

// New builds a transport model for the species set. Species missing from
// the Lennard-Jones table are an error.
func New(set *thermo.Set) (*Model, error) {
	n := set.Len()
	m := &Model{
		Set:   set,
		eps:   make([]float64, n),
		sigma: make([]float64, n),
		sqrtW: make([]float64, n),
		x:     make([]float64, n),
		mu:    make([]float64, n),
		lam:   make([]float64, n),
	}
	for i, sp := range set.Species {
		lj, ok := ljParams[sp.Name]
		if !ok {
			return nil, fmt.Errorf("transport: no Lennard-Jones data for %q", sp.Name)
		}
		m.eps[i] = lj.eps
		m.sigma[i] = lj.sigma * 1e-10 // Å → m
		m.sqrtW[i] = math.Sqrt(sp.W)
	}
	m.wRatio = sq(n)
	m.w4 = sq(n)
	m.wPhi = sq(n)
	m.dEps = sq(n)
	m.dSig = sq(n)
	m.dWred = sq(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.wRatio[i][j] = set.Species[j].W / set.Species[i].W
			m.w4[i][j] = math.Pow(m.wRatio[i][j], 0.25)
			m.wPhi[i][j] = 1 / math.Sqrt(8*(1+1/m.wRatio[i][j]))
			m.dEps[i][j] = math.Sqrt(m.eps[i] * m.eps[j])
			m.dSig[i][j] = 0.5 * (m.sigma[i] + m.sigma[j])
			m.dWred[i][j] = 2 / (1/set.Species[i].W + 1/set.Species[j].W)
		}
	}
	m.buildFits()
	return m, nil
}

// fitTemps samples the kinetic-theory curves for the ln-T polynomial fits.
var fitTemps = []float64{250, 350, 500, 700, 1000, 1400, 2000, 2800, 3500}

// buildFits fits ln μᵢ(T) and ln D_ij(T) to cubics in ln T (the CHEMKIN
// TRANSPORT fitting step).
func (m *Model) buildFits() {
	n := m.Set.Len()
	m.muFit = make([][4]float64, n)
	m.dFit = make([][][4]float64, n)
	lnT := make([]float64, len(fitTemps))
	vals := make([]float64, len(fitTemps))
	for p, T := range fitTemps {
		lnT[p] = math.Log(T)
	}
	for i := 0; i < n; i++ {
		for p, T := range fitTemps {
			vals[p] = math.Log(m.speciesViscosityExact(i, T))
		}
		m.muFit[i] = fitCubic(lnT, vals)
		m.dFit[i] = make([][4]float64, n)
		for j := 0; j < n; j++ {
			for p, T := range fitTemps {
				vals[p] = math.Log(m.binaryDiffusionExact(i, j, T, 101325))
			}
			m.dFit[i][j] = fitCubic(lnT, vals)
		}
	}
}

// fitCubic least-squares fits y ≈ c0 + c1·x + c2·x² + c3·x³.
func fitCubic(xs, ys []float64) [4]float64 {
	var ata [4][4]float64
	var atb [4]float64
	for p := range xs {
		var row [4]float64
		v := 1.0
		for k := 0; k < 4; k++ {
			row[k] = v
			v *= xs[p]
		}
		for a := 0; a < 4; a++ {
			atb[a] += row[a] * ys[p]
			for b := 0; b < 4; b++ {
				ata[a][b] += row[a] * row[b]
			}
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 4; col++ {
		p := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[p][col]) {
				p = r
			}
		}
		ata[col], ata[p] = ata[p], ata[col]
		atb[col], atb[p] = atb[p], atb[col]
		for r := col + 1; r < 4; r++ {
			f := ata[r][col] / ata[col][col]
			for c := col; c < 4; c++ {
				ata[r][c] -= f * ata[col][c]
			}
			atb[r] -= f * atb[col]
		}
	}
	var out [4]float64
	for r := 3; r >= 0; r-- {
		s := atb[r]
		for c := r + 1; c < 4; c++ {
			s -= ata[r][c] * out[c]
		}
		out[r] = s / ata[r][r]
	}
	return out
}

// evalFit evaluates exp(c0 + c1·x + c2·x² + c3·x³).
func evalFit(c [4]float64, x float64) float64 {
	return math.Exp(c[0] + x*(c[1]+x*(c[2]+x*c[3])))
}

// MustNew is New that panics on error, for statically known species sets.
func MustNew(set *thermo.Set) *Model {
	m, err := New(set)
	if err != nil {
		panic(err)
	}
	return m
}

// Clone returns a model sharing the immutable pair tables but owning
// private scratch, for concurrent solver ranks.
func (m *Model) Clone() *Model {
	n := m.Set.Len()
	c := *m
	c.x = make([]float64, n)
	c.mu = make([]float64, n)
	c.lam = make([]float64, n)
	return &c
}

// sq allocates an n×n matrix.
func sq(n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	return m
}

// omega22 is the Neufeld fit to the (2,2) reduced collision integral.
func omega22(tStar float64) float64 {
	return 1.16145*math.Pow(tStar, -0.14874) +
		0.52487*math.Exp(-0.77320*tStar) +
		2.16178*math.Exp(-2.43787*tStar)
}

// omega11 is the Neufeld fit to the (1,1) reduced collision integral.
func omega11(tStar float64) float64 {
	return 1.06036*math.Pow(tStar, -0.15610) +
		0.19300*math.Exp(-0.47635*tStar) +
		1.03587*math.Exp(-1.52996*tStar) +
		1.76474*math.Exp(-3.89411*tStar)
}

// speciesViscosityExact evaluates the Chapman–Enskog expression
// μ = (5/16)·√(π·m·k_B·T)/(π·σ²·Ω22) directly (used to build the fits).
func (m *Model) speciesViscosityExact(i int, T float64) float64 {
	mass := m.Set.Species[i].W / nA
	om := omega22(T / m.eps[i])
	return 5.0 / 16.0 * math.Sqrt(math.Pi*mass*kB*T) / (math.Pi * m.sigma[i] * m.sigma[i] * om)
}

// SpeciesViscosity returns the pure-species dynamic viscosity (Pa·s) of
// species i at temperature T (fitted evaluation).
func (m *Model) SpeciesViscosity(i int, T float64) float64 {
	return evalFit(m.muFit[i], math.Log(clampFitT(T)))
}

func clampFitT(T float64) float64 {
	if T < fitTemps[0] {
		return fitTemps[0]
	}
	if T > fitTemps[len(fitTemps)-1] {
		return fitTemps[len(fitTemps)-1]
	}
	return T
}

// SpeciesConductivity returns the pure-species thermal conductivity
// (W/(m·K)) via the modified Eucken correction:
// λ = μ·(cp + 1.25·Ru/W).
func (m *Model) SpeciesConductivity(i int, T float64) float64 {
	sp := m.Set.Species[i]
	mu := m.SpeciesViscosity(i, T)
	return mu * (sp.Cp(T) + 1.25*thermo.R/sp.W)
}

// binaryDiffusionExact evaluates the Chapman–Enskog expression
// D = (3/16)·√(2π·k_B³·T³/m_red)/(p·π·σ_ij²·Ω11) directly.
func (m *Model) binaryDiffusionExact(i, j int, T, p float64) float64 {
	mRed := m.dWred[i][j] / (2 * nA) // reduced mass, kg
	sig := m.dSig[i][j]
	om := omega11(T / m.dEps[i][j])
	return 3.0 / 16.0 * math.Sqrt(2*math.Pi*kB*kB*kB*T*T*T/mRed) /
		(p * math.Pi * sig * sig * om)
}

// BinaryDiffusion returns the binary diffusion coefficient D_ij (m²/s) at
// temperature T (K) and pressure p (Pa) (fitted evaluation; D ∝ 1/p).
func (m *Model) BinaryDiffusion(i, j int, T, p float64) float64 {
	return evalFit(m.dFit[i][j], math.Log(clampFitT(T))) * 101325 / p
}

// Props holds the mixture-averaged transport properties at one grid point.
type Props struct {
	Mu     float64   // dynamic viscosity, Pa·s
	Lambda float64   // thermal conductivity, W/(m·K)
	Dmix   []float64 // mixture-averaged diffusion coefficients, m²/s
}

// Mixture evaluates μ, λ and D_i^mix for mass fractions Y at temperature T
// and pressure p, writing D into props.Dmix (which must have species
// length). Not safe for concurrent use on one Model: use Clone per rank.
func (m *Model) Mixture(T, p float64, Y []float64, props *Props) {
	n := m.Set.Len()
	m.Set.MoleFractions(Y, m.x)
	// Guard against round-off negative fractions.
	for i := range m.x {
		if m.x[i] < 0 {
			m.x[i] = 0
		}
	}
	lnT := math.Log(clampFitT(T))
	for i := 0; i < n; i++ {
		m.mu[i] = evalFit(m.muFit[i], lnT)
		m.lam[i] = m.mu[i] * (m.Set.Species[i].Cp(T) + 1.25*thermo.R/m.Set.Species[i].W)
	}

	// Wilke mixture viscosity.
	var muMix float64
	for i := 0; i < n; i++ {
		if m.x[i] == 0 {
			continue
		}
		var denom float64
		for j := 0; j < n; j++ {
			if m.x[j] == 0 {
				continue
			}
			r := math.Sqrt(m.mu[i]/m.mu[j]) * m.w4[i][j]
			denom += m.x[j] * (1 + r) * (1 + r) * m.wPhi[i][j]
		}
		muMix += m.x[i] * m.mu[i] / denom
	}
	props.Mu = muMix

	// Mathur–Saxena conductivity: ½(Σxλ + (Σx/λ)⁻¹).
	var sum, inv float64
	for i := 0; i < n; i++ {
		sum += m.x[i] * m.lam[i]
		if m.x[i] > 0 {
			inv += m.x[i] / m.lam[i]
		}
	}
	props.Lambda = 0.5 * (sum + 1/inv)

	// Mixture-averaged diffusion (paper eq. 17), with the pure-species limit
	// D_i^mix → D_ii' (self/trace value) as X_i → 1. The symmetric fitted
	// pair coefficients are evaluated once.
	pScale := 101325 / p
	for i := 0; i < n; i++ {
		var denom float64
		for j := 0; j < n; j++ {
			if j == i || m.x[j] == 0 {
				continue
			}
			denom += m.x[j] / (evalFit(m.dFit[i][j], lnT) * pScale)
		}
		if denom < 1e-30 {
			// Pure species: use the self-collision estimate.
			props.Dmix[i] = evalFit(m.dFit[i][i], lnT) * pScale
			continue
		}
		props.Dmix[i] = (1 - m.x[i]) / denom
		if props.Dmix[i] <= 0 {
			props.Dmix[i] = evalFit(m.dFit[i][i], lnT) * pScale
		}
	}
}
