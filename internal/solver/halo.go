package solver

import (
	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/grid"
)

// exchangeHalos fills the ghost layers of the given fields along every axis
// that has valid ghost data: halo exchange with neighbouring ranks through
// non-blocking sends/receives (the S3D ghost-zone construction, §2.6), or a
// local periodic wrap when the axis is periodic and undecomposed.
//
// All fields are packed into a single message per face, mirroring S3D's
// aggregated ~80 kB neighbour messages. Axes are exchanged in X→Y→Z order
// over ranges that include the ghost layers of already-exchanged axes, so
// edge and corner ghosts are correct after the sweep (both endpoints of an
// exchange share boundary status on the earlier axes, so their ranges
// agree). Per-field work — the periodic wraps and the slab pack/unpack —
// runs as pool items: each field owns a disjoint ghost region or buffer
// segment, so fields proceed concurrently while the buffer layout stays
// identical to the serial field-major order.
func (b *Block) exchangeHalos(fields []*grid.Field3, tagBase int) {
	defer b.beginRegion("GHOST_EXCHANGE").End()
	for a := 0; a < 3; a++ {
		axis := grid.Axis(a)
		if b.G.Dim(axis) == 1 {
			continue
		}
		if !b.loGhost[a] && !b.hiGhost[a] {
			continue
		}
		if b.cart == nil {
			// Serial: valid ghosts imply a periodic axis.
			b.wrapAll(fields, axis)
			continue
		}
		loNb := b.cart.Neighbor(a, -1)
		hiNb := b.cart.Neighbor(a, +1)
		self := b.cart.Comm.Rank()
		if loNb == self && hiNb == self {
			// Periodic axis not decomposed: wrap locally.
			b.wrapAll(fields, axis)
			continue
		}
		b.exchangeAxis(fields, a, loNb, hiNb, tagBase)
	}
}

// PackHaloGroupOnly serialises the low-face ghost-depth slab of a registry
// halo group ("conserved" or "flux") along axis a into the reusable halo
// buffer and returns the packed float count — the benchmark hook behind
// BenchmarkHaloPackGroup, timing exactly the pack kernel of one exchange
// message.
func (b *Block) PackHaloGroupOnly(group string, a int) int {
	fields := b.haloQ
	if group == haloGroupFlux {
		fields = b.haloFlux
	}
	per := b.slabSize(a) * grid.Ghost
	buf := b.haloBuffer(2, per*len(fields))
	b.packSlab(fields, a, 0, grid.Ghost, per, buf)
	return len(buf)
}

// wrapAll applies the periodic wrap to every field, one pool item per field
// (each field's ghost layers are disjoint storage).
func (b *Block) wrapAll(fields []*grid.Field3, axis grid.Axis) {
	b.plan.RunItems("GHOST_EXCHANGE", len(fields), func(item, _ int) {
		fields[item].WrapPeriodic(axis)
	})
}

// otherRange returns the loop range along axis o during the exchange of
// axis a: extended into ghosts when o was already exchanged (o < a) and has
// valid ghost layers.
func (b *Block) otherRange(a, o int) (lo, hi int) {
	lo, hi = 0, b.dimOf(o)
	if o < a && b.dimOf(o) > 1 {
		if b.loGhost[o] {
			lo = -grid.Ghost
		}
		if b.hiGhost[o] {
			hi += grid.Ghost
		}
	}
	return lo, hi
}

// haloBuffer returns the idx-th reusable slab buffer with length n, growing
// it on demand (hoisted allocation: steady-state exchanges allocate nothing).
func (b *Block) haloBuffer(idx, n int) []float64 {
	if cap(b.haloBuf[idx]) < n {
		b.haloBuf[idx] = make([]float64, n)
	}
	return b.haloBuf[idx][:n]
}

// exchangeAxis performs the two-sided slab exchange along one axis.
func (b *Block) exchangeAxis(fields []*grid.Field3, a, loNb, hiNb, tagBase int) {
	c := b.cart.Comm
	g := grid.Ghost
	per := b.slabSize(a) * g // per-field slab points
	slab := per * len(fields)
	tagLo := tagBase + a*2     // message arriving at a low face
	tagHi := tagBase + a*2 + 1 // message arriving at a high face

	// At most two receives and two sends; a fixed array keeps the
	// steady-state exchange allocation-free.
	var reqs [4]*comm.Request
	nr := 0
	var recvLo, recvHi []float64
	if loNb >= 0 {
		recvLo = b.haloBuffer(0, slab)
		reqs[nr] = c.Irecv(loNb, tagLo, recvLo)
		nr++
	}
	if hiNb >= 0 {
		recvHi = b.haloBuffer(1, slab)
		reqs[nr] = c.Irecv(hiNb, tagHi, recvHi)
		nr++
	}
	if loNb >= 0 {
		buf := b.haloBuffer(2, slab)
		b.packSlab(fields, a, 0, g, per, buf) // my low interior → neighbour's high ghosts
		reqs[nr] = c.Isend(loNb, tagHi, buf)
		nr++
	}
	if hiNb >= 0 {
		buf := b.haloBuffer(3, slab)
		b.packSlab(fields, a, b.dimOf(a)-g, g, per, buf) // my high interior → neighbour's low ghosts
		reqs[nr] = c.Isend(hiNb, tagLo, buf)
		nr++
	}
	b.Timers.Start("MPI_WAIT")
	comm.WaitAll(reqs[:nr]...)
	b.Timers.Stop("MPI_WAIT")
	if loNb >= 0 {
		b.unpackSlab(fields, a, -g, g, per, recvLo)
	}
	if hiNb >= 0 {
		b.unpackSlab(fields, a, b.dimOf(a), g, per, recvHi)
	}
}

func (b *Block) dimOf(a int) int {
	switch a {
	case 0:
		return b.G.Nx
	case 1:
		return b.G.Ny
	default:
		return b.G.Nz
	}
}

// slabSize returns the number of points in one ghost layer of the axis,
// the product of the other two axes' exchange ranges.
func (b *Block) slabSize(a int) int {
	size := 1
	for o := 0; o < 3; o++ {
		if o == a {
			continue
		}
		lo, hi := b.otherRange(a, o)
		size *= hi - lo
	}
	return size
}

// eachSlabPoint visits every (i, j, k) of layers [start, start+depth) along
// axis a, over the exchange ranges of the other axes, in a fixed order
// shared by pack and unpack.
func (b *Block) eachSlabPoint(a, start, depth int, fn func(i, j, k int)) {
	var lo, hi [3]int
	for o := 0; o < 3; o++ {
		if o == a {
			lo[o], hi[o] = start, start+depth
		} else {
			lo[o], hi[o] = b.otherRange(a, o)
		}
	}
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			for i := lo[0]; i < hi[0]; i++ {
				fn(i, j, k)
			}
		}
	}
}

// packSlab serialises layers [start, start+depth) along axis a for every
// field in order, one pool item per field writing its own buffer segment of
// per points (the field-major layout of the serial pack, unchanged).
func (b *Block) packSlab(fields []*grid.Field3, a, start, depth, per int, buf []float64) {
	b.plan.RunItems("GHOST_EXCHANGE", len(fields), func(item, _ int) {
		f := fields[item]
		pos := item * per
		b.eachSlabPoint(a, start, depth, func(i, j, k int) {
			buf[pos] = f.At(i, j, k)
			pos++
		})
	})
}

// unpackSlab is the inverse of packSlab.
func (b *Block) unpackSlab(fields []*grid.Field3, a, start, depth, per int, buf []float64) {
	b.plan.RunItems("GHOST_EXCHANGE", len(fields), func(item, _ int) {
		f := fields[item]
		pos := item * per
		b.eachSlabPoint(a, start, depth, func(i, j, k int) {
			f.Set(i, j, k, buf[pos])
			pos++
		})
	})
}
