package solver

import (
	"math"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/kernels"
	"github.com/s3dgo/s3d/internal/par"
)

// extent returns the loop bounds for a region that includes ghost layers on
// faces with valid ghost data.
func (b *Block) extent() (lo, hi [3]int) {
	dims := [3]int{b.G.Nx, b.G.Ny, b.G.Nz}
	for a := 0; a < 3; a++ {
		lo[a] = 0
		hi[a] = dims[a]
		if b.loGhost[a] && dims[a] > 1 {
			lo[a] = -grid.Ghost
		}
		if b.hiGhost[a] && dims[a] > 1 {
			hi[a] = dims[a] + grid.Ghost
		}
	}
	return lo, hi
}

// computePrimitives recovers ρ, u, v, w, Y, T, p, W from the conserved
// fields over the interior plus valid ghost layers. Temperature Newton
// iteration warm-starts from the previous value stored in b.T. Each point's
// recovery is independent, so the sweep tiles over the worker pool with a
// per-worker species scratch vector.
//
// An unrecoverable state (non-positive density, failed temperature
// inversion) is recorded as a structured health fault and the cell is
// skipped, leaving its primitives stale: pool workers have no panic
// recovery, so a worker panic would kill the process with the owner's
// WaitGroup still waiting. After the barrier the owner re-raises the fault
// as a panic unless an armed watchdog will turn it into a health.Violation
// at the end of the step (see health.go).
func (b *Block) computePrimitives() {
	defer b.beginRegion("COMPUTE_PRIMITIVES").End()

	lo, hi := b.extent()
	blocked := b.sel.Blocked(kernels.Primitives)
	b.plan.Run("COMPUTE_PRIMITIVES", par.Box(lo, hi), func(t par.Tile, worker int) {
		if blocked {
			b.primitivesTileBlocked(t, worker)
		} else {
			b.primitivesTile(t, worker)
		}
	})
	// The WaitGroup barrier inside plan.Run orders every worker's fault
	// write before this read — no atomics on the healthy path.
	if b.fault != nil && !b.watchArmed() {
		panic(b.fault)
	}
}

// primitivesTile is the reference (generic-backend) recovery tile.
func (b *Block) primitivesTile(t par.Tile, worker int) {
	set := b.mech.Set
	ns := b.ns
	yw := b.ws[worker].yw
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			for i := t.Lo[0]; i < t.Hi[0]; i++ {
				rho := b.Q[iRho].At(i, j, k)
				if !(rho > 0) || math.IsNaN(rho) {
					b.recordFault("density", "rho", rho, i, j, k, "non-positive density")
					continue
				}
				inv := 1 / rho
				u := b.Q[iRhoU].At(i, j, k) * inv
				v := b.Q[iRhoV].At(i, j, k) * inv
				w := b.Q[iRhoW].At(i, j, k) * inv
				var sum float64
				for n := 0; n < ns-1; n++ {
					y := b.Q[iY0+n].At(i, j, k) * inv
					// Clip round-off excursions; the filter keeps these tiny.
					if y < 0 {
						y = 0
					}
					yw[n] = y
					sum += y
				}
				yLast := 1 - sum
				if yLast < 0 {
					// Renormalise pathological states rather than carrying a
					// negative inert fraction.
					scale := 1 / sum
					for n := 0; n < ns-1; n++ {
						yw[n] *= scale
					}
					yLast = 0
				}
				yw[ns-1] = yLast

				e0 := b.Q[iRhoE].At(i, j, k) * inv
				eInt := e0 - 0.5*(u*u+v*v+w*w)
				T, ok := set.TFromE(eInt, yw, b.T.At(i, j, k))
				if !ok {
					b.recordFault("temperature_inversion", "e_int", eInt, i, j, k,
						"temperature inversion failed")
					continue
				}
				Wm := set.MeanW(yw)
				b.Rho.Set(i, j, k, rho)
				b.U.Set(i, j, k, u)
				b.V.Set(i, j, k, v)
				b.W.Set(i, j, k, w)
				b.T.Set(i, j, k, T)
				b.P.Set(i, j, k, rho*gasR*T/Wm)
				b.Wmix.Set(i, j, k, Wm)
				for n := 0; n < ns; n++ {
					b.Y[n].Set(i, j, k, yw[n])
				}
			}
		}
	}
}

// primitivesTileBlocked is the hand-tiled recovery: every field's backing
// slice is hoisted out of the cell loops and addressed through one flat
// index per cell instead of an At/Set header walk per operand (~20 of them).
// The per-point arithmetic — including the clip/renormalise control flow and
// the Newton warm start — is exactly primitivesTile's, so results (and
// recorded faults) are bitwise identical.
func (b *Block) primitivesTileBlocked(t par.Tile, worker int) {
	set := b.mech.Set
	ns := b.ns
	yw := b.ws[worker].yw
	rhoQ, ruQ, rvQ, rwQ, reQ := b.qD[iRho], b.qD[iRhoU], b.qD[iRhoV], b.qD[iRhoW], b.qD[iRhoE]
	rhoP, uP, vP, wP := b.Rho.Data, b.U.Data, b.V.Data, b.W.Data
	tP, pP, wmP := b.T.Data, b.P.Data, b.Wmix.Data
	qD, yD := b.qD, b.yD
	n0 := t.Hi[0] - t.Lo[0]
	if n0 <= 0 {
		return
	}
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			row := b.Rho.Idx(t.Lo[0], j, k)
			for x := 0; x < n0; x++ {
				p0 := row + x
				rho := rhoQ[p0]
				if !(rho > 0) || math.IsNaN(rho) {
					b.recordFault("density", "rho", rho, t.Lo[0]+x, j, k, "non-positive density")
					continue
				}
				inv := 1 / rho
				u := ruQ[p0] * inv
				v := rvQ[p0] * inv
				w := rwQ[p0] * inv
				var sum float64
				for n := 0; n < ns-1; n++ {
					y := qD[iY0+n][p0] * inv
					if y < 0 {
						y = 0
					}
					yw[n] = y
					sum += y
				}
				yLast := 1 - sum
				if yLast < 0 {
					scale := 1 / sum
					for n := 0; n < ns-1; n++ {
						yw[n] *= scale
					}
					yLast = 0
				}
				yw[ns-1] = yLast

				e0 := reQ[p0] * inv
				eInt := e0 - 0.5*(u*u+v*v+w*w)
				T, ok := set.TFromE(eInt, yw, tP[p0])
				if !ok {
					b.recordFault("temperature_inversion", "e_int", eInt, t.Lo[0]+x, j, k,
						"temperature inversion failed")
					continue
				}
				Wm := set.MeanW(yw)
				rhoP[p0] = rho
				uP[p0] = u
				vP[p0] = v
				wP[p0] = w
				tP[p0] = T
				pP[p0] = rho * gasR * T / Wm
				wmP[p0] = Wm
				for n := 0; n < ns; n++ {
					yD[n][p0] = yw[n]
				}
			}
		}
	}
}

// computeTransport evaluates μ, λ and D over the interior plus valid ghosts,
// tiled over the pool. The transport model carries internal scratch, so each
// worker evaluates through its own clone.
func (b *Block) computeTransport() {
	defer b.beginRegion("COMPUTE_TRANSPORT").End()

	lo, hi := b.extent()
	ns := b.ns
	le := b.cfg.ConstLewis
	b.plan.Run("COMPUTE_TRANSPORT", par.Box(lo, hi), func(t par.Tile, worker int) {
		ws := &b.ws[worker]
		for k := t.Lo[2]; k < t.Hi[2]; k++ {
			for j := t.Lo[1]; j < t.Hi[1]; j++ {
				for i := t.Lo[0]; i < t.Hi[0]; i++ {
					b.gatherYInto(ws.yw, i, j, k)
					T := b.T.At(i, j, k)
					ws.trans.Mixture(T, b.P.At(i, j, k), ws.yw, &ws.props)
					b.Mu.Set(i, j, k, ws.props.Mu)
					b.Lambda.Set(i, j, k, ws.props.Lambda)
					if le > 0 {
						// Constant-Lewis ablation: D = λ/(ρ·cp·Le) for every
						// species (no differential diffusion).
						d := ws.props.Lambda / (b.Rho.At(i, j, k) * ws.mech.Set.CpMass(T, ws.yw) * le)
						for n := 0; n < ns; n++ {
							b.D[n].Set(i, j, k, d)
						}
						continue
					}
					for n := 0; n < ns; n++ {
						b.D[n].Set(i, j, k, ws.props.Dmix[n])
					}
				}
			}
		}
	})
}
