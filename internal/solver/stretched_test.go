package solver

import (
	"math"
	"sync"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/transport"
)

// The jet configurations of the paper use "an algebraically stretched mesh
// ... in the transverse direction" (§6.2, §7.2). These tests exercise the
// solver on a stretched y mesh.

func stretchedConfig(t *testing.T) *Config {
	t.Helper()
	mech := chem.H2Air()
	return &Config{
		Mech:  mech,
		Trans: transport.MustNew(mech.Set),
		Grid: grid.New(grid.Spec{
			Nx: 12, Ny: 32, Nz: 1,
			Lx: 0.01, Ly: 0.02, Lz: 0.01,
			StretchY: true, Beta: 1.5,
		}),
		PInf:         101325,
		ChemistryOff: true,
	}
}

func airYFor(cfg *Config) []float64 {
	y := make([]float64, cfg.Mech.NumSpecies())
	y[cfg.Mech.Set.Index("O2")] = 0.233
	y[cfg.Mech.Set.Index("N2")] = 0.767
	return y
}

func TestStretchedMeshQuiescentSteady(t *testing.T) {
	cfg := stretchedConfig(t)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	y := airYFor(cfg)
	b.SetState(func(x, yy, z float64, s *InflowState) {
		s.T = 500
		copy(s.Y, y)
	}, nil)
	b.computeRHS(0)
	for v := 0; v < b.nvar; v++ {
		lo, hi := b.rhs[v].MinMax()
		if math.Max(math.Abs(lo), math.Abs(hi)) > 1e-3 {
			t.Fatalf("var %d: stretched-mesh quiescent RHS = [%g, %g]", v, lo, hi)
		}
	}
}

func TestStretchedMeshAdvectionConsistent(t *testing.T) {
	// A smooth temperature bump advected in y must move at the flow speed
	// regardless of the stretching (the metric terms must be right).
	cfg := stretchedConfig(t)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	yAir := airYFor(cfg)
	v0 := 10.0
	b.SetState(func(x, yy, z float64, s *InflowState) {
		s.V = v0
		d := yy / 0.003 // bump centred at the (clustered) domain centre
		s.T = 400 + 40*math.Exp(-d*d)
		copy(s.Y, yAir)
	}, nil)
	b.RefreshPrimitives()
	// Bump peak position before.
	peakY := func() float64 {
		best, bestY := -1.0, 0.0
		for j := 0; j < b.G.Ny; j++ {
			if v := b.T.At(6, j, 0); v > best {
				best, bestY = v, b.G.Yc[j]
			}
		}
		return bestY
	}
	y0 := peakY()
	dt := 0.4 * b.AcousticDt()
	steps := 40
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	y1 := peakY()
	moved := y1 - y0
	want := v0 * float64(steps) * dt
	// Within two (local, fine) cells.
	cell := b.G.Yc[b.G.Ny/2+1] - b.G.Yc[b.G.Ny/2]
	if math.Abs(moved-want) > 2*cell+1e-9 {
		t.Fatalf("bump moved %g m, want %g (cell %g)", moved, want, cell)
	}
}

func TestFixedDtConfig(t *testing.T) {
	// The paper advances at a constant 4 ns step (§6.2); FixedDt is carried
	// through the config for drivers that honour it.
	cfg := stretchedConfig(t)
	cfg.FixedDt = 4e-9
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.cfg.FixedDt != 4e-9 {
		t.Fatal("FixedDt lost")
	}
}

func TestParallelStretchedMatchesSerial(t *testing.T) {
	mkcfg := func() *Config { return stretchedConfig(t) }
	ic := func(b *Block) {
		y := airYFor(b.cfg)
		b.SetState(func(x, yy, z float64, s *InflowState) {
			s.U = 4 * math.Sin(2*math.Pi*x/0.01)
			s.T = 450 + 20*math.Exp(-(yy/0.004)*(yy/0.004))
			copy(s.Y, y)
		}, nil)
	}
	ser, err := NewSerial(mkcfg())
	if err != nil {
		t.Fatal(err)
	}
	ic(ser)
	ser.Advance(3, 3e-7)
	ser.RefreshPrimitives()

	var mu sync.Mutex
	worst := 0.0
	err = RunParallel(mkcfg(), [3]int{1, 2, 1}, func(b *Block) {
		ic(b)
		b.Advance(3, 3e-7)
		b.RefreshPrimitives()
		_, j0, _ := b.GlobalOffset()
		local := 0.0
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				if d := math.Abs(b.T.At(i, j, 0) - ser.T.At(i, j0+j, 0)); d > local {
					local = d
				}
			}
		}
		mu.Lock()
		if local > worst {
			worst = local
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-10 {
		t.Fatalf("stretched parallel/serial mismatch %g K", worst)
	}
}
