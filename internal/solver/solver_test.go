package solver

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/transport"
)

// airConfig builds an inert periodic-box configuration over the H2/air
// species set (used as "air" with zero fuel).
func airConfig(nx, ny, nz int, l float64) *Config {
	mech := chem.H2Air()
	return &Config{
		Mech:         mech,
		Trans:        transport.MustNew(mech.Set),
		Grid:         grid.New(grid.Spec{Nx: nx, Ny: ny, Nz: nz, Lx: l, Ly: l, Lz: l}),
		PInf:         101325,
		ChemistryOff: true,
	}
}

// airY returns air mass fractions on the H2/air species set.
func airY(cfg *Config) []float64 {
	Y := make([]float64, cfg.Mech.NumSpecies())
	Y[cfg.Mech.Set.Index("O2")] = 0.233
	Y[cfg.Mech.Set.Index("N2")] = 0.767
	return Y
}

func quiescent(cfg *Config, b *Block, T float64) {
	Y := airY(cfg)
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U, s.V, s.W = 0, 0, 0
		s.T = T
		copy(s.Y, Y)
	}, nil)
}

func TestQuiescentStateIsSteady(t *testing.T) {
	cfg := airConfig(12, 12, 8, 0.01)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiescent(cfg, b, 300)
	b.computeRHS(0)
	for v := 0; v < b.nvar; v++ {
		_, maxAbs := b.rhs[v].MinMax()
		min, _ := b.rhs[v].MinMax()
		m := math.Max(math.Abs(maxAbs), math.Abs(min))
		// Scale: ρe₀ ~ 2.6e5 J/m³ over dt ~ µs; roundoff-level RHS is tiny.
		if m > 1e-3 {
			t.Fatalf("var %d: quiescent RHS max |dQ/dt| = %g", v, m)
		}
	}
}

func TestQuiescentStepsStayUniform(t *testing.T) {
	cfg := airConfig(10, 10, 5, 0.01)
	cfg.FilterEvery = 2
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiescent(cfg, b, 500)
	b.RefreshPrimitives()
	dt := b.AcousticDt()
	b.Advance(6, dt)
	b.RefreshPrimitives()
	minT, maxT := b.MinMaxT()
	if maxT-minT > 1e-6 {
		t.Fatalf("uniform state drifted: T ∈ [%g, %g]", minT, maxT)
	}
}

func TestMassConservationPeriodic(t *testing.T) {
	cfg := airConfig(16, 12, 8, 0.02)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	Y := airY(cfg)
	// Smooth velocity + temperature perturbation.
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U = 5 * math.Sin(2*math.Pi*x/0.02) * math.Cos(2*math.Pi*y/0.02)
		s.V = -5 * math.Cos(2*math.Pi*x/0.02) * math.Sin(2*math.Pi*y/0.02)
		s.W = 2 * math.Sin(2*math.Pi*z/0.02)
		s.T = 400 + 20*math.Sin(2*math.Pi*x/0.02)
		copy(s.Y, Y)
	}, nil)
	b.RefreshPrimitives()
	m0 := b.TotalMass()
	dt := b.AcousticDt()
	b.Advance(10, dt)
	m1 := b.TotalMass()
	// Periodic + conservative scheme: mass conserved to roundoff.
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Fatalf("mass drift %g relative", rel)
	}
}

func TestEnergyConservationPeriodicInviscidScale(t *testing.T) {
	// Total energy in a periodic adiabatic box is conserved by the
	// conservative formulation (viscosity only redistributes it).
	cfg := airConfig(16, 12, 8, 0.02)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	Y := airY(cfg)
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U = 10 * math.Sin(2*math.Pi*x/0.02)
		s.T = 350
		copy(s.Y, Y)
	}, nil)
	b.RefreshPrimitives()
	e0 := b.Q[iRhoE].SumInterior()
	dt := b.AcousticDt()
	b.Advance(10, dt)
	e1 := b.Q[iRhoE].SumInterior()
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 1e-11 {
		t.Fatalf("energy drift %g relative", rel)
	}
}

func TestSpeciesSumPreserved(t *testing.T) {
	cfg := airConfig(12, 8, 6, 0.02)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Non-uniform composition: an H2 blob in air.
	b.SetState(func(x, y, z float64, s *InflowState) {
		f := 0.05 * math.Exp(-((x-0.01)*(x-0.01)+(y-0.01)*(y-0.01))/(4e-6))
		s.T = 300
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[b.mech.Set.Index("H2")] = f
		s.Y[b.mech.Set.Index("O2")] = 0.233 * (1 - f)
		s.Y[b.mech.Set.Index("N2")] = 1 - f - 0.233*(1-f)
	}, nil)
	b.RefreshPrimitives()
	dt := b.AcousticDt()
	b.Advance(5, dt)
	b.RefreshPrimitives()
	// Mass fractions remain in [0,1] and sum to 1.
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				var sum float64
				for n := 0; n < b.ns; n++ {
					y := b.Y[n].At(i, j, k)
					if y < -1e-9 || y > 1+1e-9 {
						t.Fatalf("Y[%d] = %g out of bounds", n, y)
					}
					sum += y
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Fatalf("ΣY = %g at (%d,%d,%d)", sum, i, j, k)
				}
			}
		}
	}
}

func TestAcousticPulseSpeed(t *testing.T) {
	// A small pressure pulse must split into two waves travelling at ±c.
	nx := 128
	L := 1.0
	cfg := airConfig(nx, 1, 1, L)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	Y := airY(cfg)
	T0 := 300.0
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.T = T0
		copy(s.Y, Y)
	}, func(x, y, z float64) float64 {
		d := (x - 0.5) / 0.04
		return 101325 * (1 + 1e-3*math.Exp(-d*d))
	})
	b.RefreshPrimitives()
	c := cfg.Mech.Set.SoundSpeed(T0, Y)
	dt := 0.25 * (L / float64(nx-1)) / c
	steps := 60
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	elapsed := float64(steps) * dt
	wantX := 0.5 + c*elapsed

	// Locate the right-going pulse peak.
	bestX, bestP := 0.0, 0.0
	for i := nx / 2; i < nx; i++ {
		p := b.P.At(i, 0, 0) - 101325
		if p > bestP {
			bestP = p
			bestX = b.G.Xc[i]
		}
	}
	h := L / float64(nx-1)
	if math.Abs(bestX-wantX) > 3*h {
		t.Fatalf("pulse at x=%g, want %g (±%g)", bestX, wantX, 3*h)
	}
	if bestP < 101325*1e-4*0.3 {
		t.Fatalf("pulse amplitude lost: %g", bestP)
	}
}

func TestDiffFluxKernelsAgree(t *testing.T) {
	cfg := airConfig(12, 10, 6, 0.02)
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A composition and temperature gradient so J is non-trivial.
	b.SetState(func(x, y, z float64, s *InflowState) {
		f := 0.02 * (1 + math.Sin(2*math.Pi*x/0.02)*math.Cos(2*math.Pi*y/0.02))
		s.T = 400 + 50*math.Sin(2*math.Pi*y/0.02)
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[b.mech.Set.Index("H2")] = f
		s.Y[b.mech.Set.Index("H2O")] = 0.05
		s.Y[b.mech.Set.Index("O2")] = 0.2
		s.Y[b.mech.Set.Index("N2")] = 1 - f - 0.25
	}, nil)
	b.exchangeHalos(b.Q, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	b.computeGradients()

	b.computeDiffFluxNaive()
	naive := make([][3][]float64, b.ns)
	for n := 0; n < b.ns; n++ {
		for d := 0; d < 3; d++ {
			naive[n][d] = append([]float64(nil), b.J[d][n].Data...)
		}
	}
	b.computeDiffFluxOptimized()
	var maxJ float64
	for n := 0; n < b.ns; n++ {
		for d := 0; d < 3; d++ {
			for idx, v := range b.J[d][n].Data {
				if a := math.Abs(v); a > maxJ {
					maxJ = a
				}
				if diff := math.Abs(v - naive[n][d][idx]); diff > 1e-18+1e-12*math.Abs(v) {
					t.Fatalf("kernels disagree: species %d dir %d idx %d: %g vs %g",
						n, d, idx, v, naive[n][d][idx])
				}
			}
		}
	}
	if maxJ == 0 {
		t.Fatal("diffusive flux identically zero — test vacuous")
	}
	// Correction property: Σₙ Jₙ = 0 at every point.
	for d := 0; d < 3; d++ {
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				for i := 0; i < b.G.Nx; i++ {
					var s float64
					for n := 0; n < b.ns; n++ {
						s += b.J[d][n].At(i, j, k)
					}
					if math.Abs(s) > 1e-12*maxJ {
						t.Fatalf("ΣJ = %g at (%d,%d,%d) dir %d", s, i, j, k, d)
					}
				}
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	mkcfg := func() *Config { return airConfig(16, 12, 8, 0.02) }
	ic := func(b *Block) {
		Y := airY(b.cfg)
		b.SetState(func(x, y, z float64, s *InflowState) {
			s.U = 8 * math.Sin(2*math.Pi*x/0.02) * math.Cos(2*math.Pi*z/0.02)
			s.V = 3 * math.Cos(2*math.Pi*y/0.02)
			s.T = 380 + 15*math.Cos(2*math.Pi*x/0.02)
			copy(s.Y, Y)
		}, nil)
	}
	steps, dt := 4, 5e-7

	cfgS := mkcfg()
	ser, err := NewSerial(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	ic(ser)
	ser.Advance(steps, dt)
	ser.RefreshPrimitives()

	cfgP := mkcfg()
	type result struct {
		i0, j0, k0 int
		nx, ny, nz int
		T          []float64
	}
	results := make(chan result, 4)
	err = RunParallel(cfgP, [3]int{2, 2, 1}, func(b *Block) {
		ic(b)
		b.Advance(steps, dt)
		b.RefreshPrimitives()
		r := result{i0: b.i0, j0: b.j0, k0: b.k0, nx: b.G.Nx, ny: b.G.Ny, nz: b.G.Nz}
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				for i := 0; i < b.G.Nx; i++ {
					r.T = append(r.T, b.T.At(i, j, k))
				}
			}
		}
		results <- r
	})
	if err != nil {
		t.Fatal(err)
	}
	close(results)
	var worst float64
	for r := range results {
		idx := 0
		for k := 0; k < r.nz; k++ {
			for j := 0; j < r.ny; j++ {
				for i := 0; i < r.nx; i++ {
					want := ser.T.At(r.i0+i, r.j0+j, r.k0+k)
					if d := math.Abs(r.T[idx] - want); d > worst {
						worst = d
					}
					idx++
				}
			}
		}
	}
	if worst > 1e-10 {
		t.Fatalf("parallel/serial temperature mismatch: %g K", worst)
	}
}

func TestOutflowNSCBCPulseExits(t *testing.T) {
	// A pressure pulse must leave through non-reflecting outflows with small
	// residual reflection.
	nx := 96
	L := 0.5
	cfg := airConfig(nx, 1, 1, L)
	cfg.BC[0][0] = OutflowNSCBC
	cfg.BC[0][1] = OutflowNSCBC
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	Y := airY(cfg)
	amp := 2000.0 // Pa
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.T = 300
		copy(s.Y, Y)
	}, func(x, y, z float64) float64 {
		d := (x - 0.25) / 0.03
		return 101325 + amp*math.Exp(-d*d)
	})
	b.RefreshPrimitives()
	c := cfg.Mech.Set.SoundSpeed(300, Y)
	dt := 0.3 * (L / float64(nx-1)) / c
	// Run long enough for both half-pulses to reach and cross the faces.
	steps := int(1.2 * (L / 2) / c / dt)
	b.Advance(steps, dt)
	b.RefreshPrimitives()
	var maxDev float64
	for i := 0; i < nx; i++ {
		if d := math.Abs(b.P.At(i, 0, 0) - 101325); d > maxDev {
			maxDev = d
		}
	}
	if maxDev > 0.15*amp {
		t.Fatalf("residual after outflow = %g Pa (%.1f%% of pulse)", maxDev, 100*maxDev/amp)
	}
}

func TestInflowOutflowChannelHoldsTarget(t *testing.T) {
	// Subsonic inflow at x-min relaxing to 30 m/s, outflow at x-max: after a
	// transient the inlet-plane velocity must sit near the target.
	nx := 64
	L := 0.25
	cfg := airConfig(nx, 1, 1, L)
	cfg.BC[0][0] = InflowNSCBC
	cfg.BC[0][1] = OutflowNSCBC
	Yair := []float64{0, 0.233, 0, 0, 0, 0, 0, 0, 0.767} // H2 O2 O OH H2O H HO2 H2O2 N2
	cfg.Inflow = func(y, z, t float64, tgt *InflowState) {
		tgt.U, tgt.V, tgt.W = 30, 0, 0
		tgt.T = 300
		copy(tgt.Y, Yair)
	}
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U = 30
		s.T = 300
		copy(s.Y, Yair)
	}, nil)
	b.RefreshPrimitives()
	c := cfg.Mech.Set.SoundSpeed(300, Yair)
	dt := 0.3 * (L / float64(nx-1)) / (c + 30)
	b.Advance(300, dt)
	b.RefreshPrimitives()
	if u := b.U.At(0, 0, 0); math.Abs(u-30) > 3 {
		t.Fatalf("inflow velocity drifted to %g, want ≈ 30", u)
	}
	// Pressure stays near ambient.
	if p := b.P.At(nx/2, 0, 0); math.Abs(p-101325) > 2000 {
		t.Fatalf("channel pressure drifted to %g", p)
	}
	// No NaNs anywhere.
	minT, maxT := b.MinMaxT()
	if math.IsNaN(minT) || maxT > 400 || minT < 250 {
		t.Fatalf("temperature out of range [%g, %g]", minT, maxT)
	}
}

func TestFilterStabilisesNoisyField(t *testing.T) {
	cfg := airConfig(24, 1, 1, 0.1)
	cfg.FilterEvery = 1
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	Y := airY(cfg)
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.T = 300
		copy(s.Y, Y)
	}, func(x, y, z float64) float64 {
		// Odd-even pressure noise on top of ambient.
		i := int(math.Round(x / (0.1 / 23)))
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		return 101325 * (1 + 1e-4*sign)
	})
	b.RefreshPrimitives()
	dt := 0.2 * b.AcousticDt()
	b.Advance(5, dt)
	b.RefreshPrimitives()
	// The filter must have crushed the odd-even mode.
	var rough float64
	for i := 1; i < 23; i++ {
		rough += math.Abs(b.P.At(i+1, 0, 0) - 2*b.P.At(i, 0, 0) + b.P.At(i-1, 0, 0))
	}
	if rough > 0.4*101325*1e-4*4*23 {
		t.Fatalf("odd-even noise survives filter: roughness %g", rough)
	}
}

func TestValidateErrors(t *testing.T) {
	mech := chem.H2Air()
	tr := transport.MustNew(mech.Set)
	g := grid.New(grid.Spec{Nx: 8, Ny: 8, Nz: 1, Lx: 1, Ly: 1, Lz: 1})
	// Missing inflow function.
	cfg := &Config{Mech: mech, Trans: tr, Grid: g, PInf: 101325}
	cfg.BC[0][0] = InflowNSCBC
	cfg.BC[0][1] = OutflowNSCBC
	if _, err := NewSerial(cfg); err == nil {
		t.Fatal("expected error for missing Inflow")
	}
	// One-sided periodic.
	cfg2 := &Config{Mech: mech, Trans: tr, Grid: g, PInf: 101325}
	cfg2.BC[1][0] = Periodic
	cfg2.BC[1][1] = OutflowNSCBC
	if _, err := NewSerial(cfg2); err == nil {
		t.Fatal("expected error for one-sided periodic")
	}
}
