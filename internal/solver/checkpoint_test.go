package solver

import (
	"bytes"
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/transport"
)

func checkpointConfig() *Config {
	mech := chem.H2Air()
	return &Config{
		Mech:  mech,
		Trans: transport.MustNew(mech.Set),
		Grid:  grid.New(grid.Spec{Nx: 14, Ny: 10, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01}),
		PInf:  101325,
	}
}

func seedCheckpointState(b *Block) {
	y := make([]float64, b.ns)
	y[b.mech.Set.Index("O2")] = 0.233
	y[b.mech.Set.Index("N2")] = 0.767
	b.SetState(func(x, yy, z float64, s *InflowState) {
		s.U = 6 * math.Sin(2*math.Pi*x/0.01)
		s.T = 900 + 300*math.Exp(-((x-0.005)/(0.002))*((x-0.005)/0.002))
		copy(s.Y, y)
	}, nil)
}

// TestRestartBitExact: a run split by checkpoint/restore must match an
// uninterrupted run exactly — the §9 restart-file contract.
func TestRestartBitExact(t *testing.T) {
	dt := 3e-7
	// Continuous run: 8 steps.
	cont, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedCheckpointState(cont)
	cont.Advance(8, dt)

	// Split run: 4 steps, checkpoint, restore into a fresh block, 4 more.
	first, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedCheckpointState(first)
	first.Advance(4, dt)
	var buf bytes.Buffer
	if err := first.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	second, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := second.LoadCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if second.Step != 4 || second.Time != first.Time {
		t.Fatalf("bookkeeping not restored: step %d time %g", second.Step, second.Time)
	}
	second.Advance(4, dt)

	for v := 0; v < cont.nvar; v++ {
		for k := 0; k < cont.G.Nz; k++ {
			for j := 0; j < cont.G.Ny; j++ {
				for i := 0; i < cont.G.Nx; i++ {
					a := cont.Q[v].At(i, j, k)
					b := second.Q[v].At(i, j, k)
					if a != b {
						t.Fatalf("restart diverges: var %d at (%d,%d,%d): %g vs %g",
							v, i, j, k, a, b)
					}
				}
			}
		}
	}
}

func TestCheckpointRejectsMismatchedGrid(t *testing.T) {
	b1, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedCheckpointState(b1)
	var buf bytes.Buffer
	if err := b1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cfg := checkpointConfig()
	cfg.Grid = grid.New(grid.Spec{Nx: 16, Ny: 10, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01})
	b2, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.LoadCheckpoint(&buf); err == nil {
		t.Fatal("expected grid-mismatch error")
	}
}

func TestCheckpointRejectsMismatchedMechanism(t *testing.T) {
	b1, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedCheckpointState(b1)
	var buf bytes.Buffer
	if err := b1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	mech := chem.CH4Skeletal()
	cfg := &Config{
		Mech:  mech,
		Trans: transport.MustNew(mech.Set),
		Grid:  grid.New(grid.Spec{Nx: 14, Ny: 10, Nz: 1, Lx: 0.01, Ly: 0.01, Lz: 0.01}),
		PInf:  101325,
	}
	b2, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.LoadCheckpoint(&buf); err == nil {
		t.Fatal("expected mechanism-mismatch error")
	}
}

func TestCheckpointTruncatedRejected(t *testing.T) {
	b1, err := NewSerial(checkpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	seedCheckpointState(b1)
	var buf bytes.Buffer
	if err := b1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	b2, _ := NewSerial(checkpointConfig())
	if err := b2.LoadCheckpoint(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}
