package solver

// Telemetry hooks for the observability layer (internal/obs). The solver
// keeps instrumentation off the hot path: per-stage wall clocks are two
// time.Now calls per RK stage, and the heat-release integral piggybacks on
// the production rates chemSource already computes, accumulating only
// during the final RK stage of a step. Everything here is sampled "as the
// final stage left it" — the diagnostics describe the step that just
// completed without forcing an extra primitive-recovery or chemistry sweep.

import (
	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/obs"
)

// EnableTelemetry switches on the per-step physics diagnostics (heat
// release, step/physics gauges) and attaches an optional metrics registry.
// reg may be nil: the obs metric handles are nil-receiver safe, so the
// physics diagnostics still accumulate and only the registry export is
// inert. Call before the first StepOnce.
func (b *Block) EnableTelemetry(reg *obs.Registry) {
	b.telemetryOn = true
	b.Metrics = reg
	if reg != nil {
		// Export the execution layer too: pool utilization gauges and the
		// per-kernel tile counters (par.workers, par.workers_busy,
		// par.tiles_total, par.tiles.<kernel>).
		b.plan.Pool().AttachMetrics(reg)
		b.plan.AttachMetrics(reg)
	}
}

// TelemetryEnabled reports whether EnableTelemetry was called.
func (b *Block) TelemetryEnabled() bool { return b.telemetryOn }

// HeatRelease returns the heat-release integral ∫(−Σ ω̇ᵢhᵢ) dV over the
// block interior in W, accumulated during the final RK stage of the most
// recent step. Zero until telemetry is enabled (or when chemistry is off).
func (b *Block) HeatRelease() float64 { return b.hrrAcc }

// MinMaxP returns the interior pressure extrema as left by the final RK
// stage of the last step (monitoring; pair of MinMaxT).
func (b *Block) MinMaxP() (float64, float64) { return b.P.MinMax() }

// CommStats returns this rank's cumulative message-passing counters, or a
// zero value for serial blocks.
func (b *Block) CommStats() comm.RankStats {
	if b.cart == nil {
		return comm.RankStats{}
	}
	return b.cart.Comm.Stats()
}

// stepWallBuckets bounds the step wall-clock histogram: 100 µs … 30 s.
var stepWallBuckets = []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 30}

// recordStepMetrics publishes the per-step gauges and counters after a
// completed StepOnce. Called only when telemetry is on.
func (b *Block) recordStepMetrics(dt, wall float64) {
	m := b.Metrics
	m.Counter("solver.steps").Inc()
	m.Gauge("solver.dt").Set(dt)
	m.Gauge("solver.sim_time").Set(b.Time)
	m.Gauge("solver.heat_release_w").Set(b.hrrAcc)
	m.Histogram("solver.step_wall_sec", stepWallBuckets).Observe(wall)
	tMin, tMax := b.MinMaxT()
	m.Gauge("solver.t_min").Set(tMin)
	m.Gauge("solver.t_max").Set(tMax)
}

// cellVol returns the quadrature volume of interior cell (i, j, k): the
// product of per-axis trapezoidal widths of the block's coordinate lines.
// Degenerate axes (a single point, the quasi-2D z direction) take the full
// spec extent so integrals keep their physical dimensions. The width tables
// are built at block construction (a lazy init here would race the tiled
// chemistry kernel).
func (b *Block) cellVol(i, j, k int) float64 {
	return b.volW[0][i] * b.volW[1][j] * b.volW[2][k]
}

// lineWidths returns trapezoidal quadrature widths for one coordinate
// line: interior points own half the gap to each neighbour, end points own
// half of their single gap, and a one-point line owns the full extent l.
func lineWidths(coord []float64, l float64) []float64 {
	n := len(coord)
	w := make([]float64, n)
	if n == 1 {
		w[0] = l
		return w
	}
	w[0] = 0.5 * (coord[1] - coord[0])
	w[n-1] = 0.5 * (coord[n-1] - coord[n-2])
	for i := 1; i < n-1; i++ {
		w[i] = 0.5 * (coord[i+1] - coord[i-1])
	}
	return w
}
