package solver

import (
	"math"
	"runtime"
	"testing"
	"time"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/health"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/transport"
)

// newReactiveSerial builds a serial block on the reactive periodic case.
func newReactiveSerial(t *testing.T) *Block {
	t.Helper()
	b, err := NewSerial(reactiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	hotSpotIC(b)
	return b
}

// mustViolation recovers a panic and asserts it carries a *health.Violation.
func mustViolation(t *testing.T, fn func()) *health.Violation {
	t.Helper()
	var v *health.Violation
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("expected a panic")
			}
			var ok bool
			if v, ok = r.(*health.Violation); !ok {
				t.Fatalf("panic value is %T (%v), want *health.Violation", r, r)
			}
		}()
		fn()
	}()
	return v
}

// TestPrimitivesPanicWithoutWatchdog pins the historical contract: with no
// armed watchdog an unrecoverable state still panics — but now with a
// structured violation naming the cell, raised by the owner after the tile
// barrier rather than inside a pool worker.
func TestPrimitivesPanicWithoutWatchdog(t *testing.T) {
	t.Run("density", func(t *testing.T) {
		b := newReactiveSerial(t)
		b.Q[iRho].Set(3, 2, 1, -1.0)
		v := mustViolation(t, func() { b.RefreshPrimitives() })
		if v.Check != "density" || v.Cell != [3]int{3, 2, 1} || v.Quantity != "rho" {
			t.Fatalf("violation = %+v", v)
		}
	})
	t.Run("temperature_inversion", func(t *testing.T) {
		b := newReactiveSerial(t)
		b.Q[iRhoE].Set(5, 4, 3, math.NaN())
		v := mustViolation(t, func() { b.RefreshPrimitives() })
		if v.Check != "temperature_inversion" || v.Cell != [3]int{5, 4, 3} {
			t.Fatalf("violation = %+v", v)
		}
	})
	t.Run("step_once", func(t *testing.T) {
		b := newReactiveSerial(t)
		b.InjectNaNAt(1, 8, 6, 4)
		v := mustViolation(t, func() { b.Advance(2, 2e-8) })
		if v.Check != "temperature_inversion" || v.Cell != [3]int{8, 6, 4} || v.Step != 1 {
			t.Fatalf("violation = %+v", v)
		}
	})
}

// TestStepCheckedSerialTrip drives the armed serial path: healthy steps
// return nil (a true untyped nil, not a typed-nil error), the injected NaN
// turns into a returned violation at the right step, and the flight
// recorder holds every step up to the trip.
func TestStepCheckedSerialTrip(t *testing.T) {
	b := newReactiveSerial(t)
	w := health.New(health.Defaults(), b.Rank())
	b.InstallWatchdog(w)
	w.Arm()
	b.InjectNaNAt(3, 8, 6, 4)

	var tripErr error
	for i := 0; i < 6; i++ {
		err := b.StepChecked(2e-8)
		if err != nil {
			tripErr = err
			break
		}
		if b.Step >= 3 {
			t.Fatalf("step %d completed without tripping", b.Step)
		}
	}
	if tripErr == nil {
		t.Fatal("injected NaN never tripped")
	}
	v, ok := tripErr.(*health.Violation)
	if !ok {
		t.Fatalf("error is %T, want *health.Violation", tripErr)
	}
	if v.Check != "temperature_inversion" || v.Rank != 0 || v.Step != 3 || v.Cell != [3]int{8, 6, 4} {
		t.Fatalf("violation = %+v", v)
	}
	if st := w.Status(); st.Level != "fatal" || st.Violation == nil {
		t.Fatalf("watchdog status = %+v", st)
	}
	if got := w.Recorder().Len(); got != 3 {
		t.Fatalf("flight recorder holds %d frames, want 3", got)
	}
	frames := w.Recorder().Frames()
	last := frames[len(frames)-1]
	if last.Step != 3 || last.Level != "fatal" {
		t.Fatalf("last frame = step %d level %q", last.Step, last.Level)
	}
	if last.Slice == nil || last.Slice.Nx == 0 || len(last.Slice.Data) != last.Slice.Nx*last.Slice.Ny {
		t.Fatalf("last frame slice = %+v", last.Slice)
	}
	// The sample that tripped carries the NaN census of the conserved state.
	if last.Sample.NaNCount == 0 || last.Sample.NaNQuantity != "rhoE" {
		t.Fatalf("fatal sample NaN census = %+v", last.Sample)
	}
}

// TestStepCheckedHealthySteps verifies an armed watchdog on a healthy run
// stays quiet and records a frame per step with finite diagnostics.
func TestStepCheckedHealthySteps(t *testing.T) {
	b := newReactiveSerial(t)
	w := health.New(health.Defaults(), b.Rank())
	b.InstallWatchdog(w)
	w.Arm()
	for i := 0; i < 4; i++ {
		if err := b.StepChecked(2e-8); err != nil {
			t.Fatalf("healthy step %d tripped: %v", i+1, err)
		}
	}
	if st := w.Status(); st.Level != "ok" || st.Step != 4 {
		t.Fatalf("status = %+v", st)
	}
	fr := w.Recorder().Frames()
	if len(fr) != 4 {
		t.Fatalf("recorded %d frames, want 4", len(fr))
	}
	s := fr[3].Sample
	if !(s.RhoMin.V > 0) || !(s.TMax.V >= s.TMin.V) || !(s.Mass > 0) {
		t.Fatalf("diagnostics not sane: %+v", s)
	}
	if !(s.CFLAcoustic.V > 0) || !(s.CFLDiffusive.V > 0) {
		t.Fatalf("CFL estimates missing: %+v", s)
	}
	if math.IsNaN(float64(s.Energy)) || s.NaNCount != 0 {
		t.Fatalf("NaN census wrong on healthy run: %+v", s)
	}
}

// TestCrossRankAbort is the decomposed abort gate: one rank trips FATAL on
// an injected NaN and every rank returns a structured violation from the
// same step — the faulting rank naming the cell, the neighbour naming the
// culprit rank — with no goroutine left behind.
func TestCrossRankAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-rank reacting case")
	}
	base := runtime.NumGoroutine()

	// Slabs wide enough that the injected NaN — which spreads ±4 cells per
	// RK stage through the (ρE+p)u flux — cannot reach the neighbour's
	// halo layers within the step that trips, so the neighbour's violation
	// exercises the remote-abort path rather than a local fault.
	pool := par.NewPool(4)
	mech := chem.H2Air()
	cfg := &Config{
		Mech:        mech,
		Trans:       transport.MustNew(mech.Set),
		Grid:        grid.New(grid.Spec{Nx: 112, Ny: 12, Nz: 8, Lx: 0.028, Ly: 0.003, Lz: 0.002}),
		PInf:        101325,
		FilterEvery: 4,
		Pool:        pool,
	}
	type rankResult struct {
		rank, step int
		v          *health.Violation
	}
	results := make(chan rankResult, 2)
	err := RunParallel(cfg, [3]int{2, 1, 1}, func(b *Block) {
		w := health.New(health.Defaults(), b.Rank())
		b.InstallWatchdog(w)
		hotSpotIC(b)
		w.Arm()
		if b.Rank() == 1 {
			// Centre of rank 1's 56-wide slab, injected on a non-filter
			// step so the trip is clean.
			b.InjectNaNAt(2, 28, 6, 4)
		}
		res := rankResult{rank: b.Rank()}
		for i := 0; i < 6; i++ {
			if err := b.StepChecked(2e-8); err != nil {
				res.v = err.(*health.Violation)
				break
			}
		}
		res.step = b.Step
		results <- res
	})
	pool.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]rankResult{}
	for i := 0; i < 2; i++ {
		r := <-results
		got[r.rank] = r
	}

	for rank, r := range got {
		if r.v == nil {
			t.Fatalf("rank %d never tripped (stopped at step %d)", rank, r.step)
		}
		if r.step != 2 || r.v.Step != 2 {
			t.Fatalf("rank %d tripped at step %d (violation step %d), want 2", rank, r.step, r.v.Step)
		}
	}
	faulter := got[1].v
	if faulter.Check != "temperature_inversion" || faulter.Rank != 1 {
		t.Fatalf("faulting rank violation = %+v", faulter)
	}
	// Global cell: rank 1 owns x ∈ [56, 112).
	if faulter.Cell != [3]int{56 + 28, 6, 4} {
		t.Fatalf("faulting cell = %v, want global (84,6,4)", faulter.Cell)
	}
	remote := got[0].v
	if remote.Check != "remote" || remote.Rank != 1 {
		t.Fatalf("neighbour violation = %+v, want remote blame on rank 1", remote)
	}

	// Every rank goroutine and pool worker must be gone.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("goroutine leak after abort: %d running, baseline %d", g, base)
	}
}
