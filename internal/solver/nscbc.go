package solver

import (
	"math"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/par"
)

// Navier–Stokes characteristic boundary conditions (paper §2.6, citing
// Poinsot-Lele-style non-reflecting inflow/outflow as refined by Yoo et
// al.). The interior discretisation already used one-sided stencils at
// physical faces; applyNSCBC replaces the *normal inviscid* part of the
// right-hand side on each boundary plane with its characteristic (LODI)
// form, in which outgoing wave amplitudes are taken from the interior and
// incoming ones are prescribed:
//
//   - non-reflecting outflow: incoming acoustic wave relaxes pressure to
//     p∞ with strength σ·c·(1−M²)/L;
//   - non-reflecting inflow: incoming acoustic, entropy, shear and species
//     waves relax u, T, (v,w) and Y toward the target inflow state.
func (b *Block) applyNSCBC(t float64) {
	defer b.beginRegion("NSCBC").End()
	for a := 0; a < 3; a++ {
		for side := 0; side < 2; side++ {
			if b.interiorF[a][side] || b.faceBC[a][side] == Periodic {
				continue
			}
			if b.G.Dim(grid.Axis(a)) == 1 {
				continue
			}
			b.charFace(a, side, t)
		}
	}
}

// sigmaOut returns the outflow relaxation strength.
func (b *Block) sigmaOut() float64 {
	if b.cfg.SigmaOut > 0 {
		return b.cfg.SigmaOut
	}
	return 0.25
}

// etaIn returns the inflow relaxation strength.
func (b *Block) etaIn() float64 {
	if b.cfg.EtaIn > 0 {
		return b.cfg.EtaIn
	}
	return 0.3
}

// domainLength returns the global physical extent along the axis, the L in
// the relaxation coefficients.
func (b *Block) domainLength(a int) float64 {
	switch a {
	case 0:
		return b.cfg.Grid.Lx
	case 1:
		return b.cfg.Grid.Ly
	default:
		return b.cfg.Grid.Lz
	}
}

// charFace applies the characteristic treatment on one boundary plane. The
// plane tiles over the pool like any other kernel: every point updates only
// its own rhs entries, and each worker carries its own wave-amplitude and
// stencil scratch.
func (b *Block) charFace(a, side int, t float64) {
	axis := grid.Axis(a)
	n := b.G.Dim(axis) // points along the normal axis
	bi := 0            // boundary index along the axis
	if side == 1 {
		bi = n - 1
	}
	bc := b.faceBC[a][side]
	L := b.domainLength(a)
	set := b.mech.Set
	ns := b.ns
	species := set.Species
	t1a := (a + 1) % 3 // first tangential axis
	t2a := (a + 2) % 3
	vel := [3]*grid.Field3{b.U, b.V, b.W}
	dvelN := [3]*grid.Field3{b.dU[0][a], b.dU[1][a], b.dU[2][a]}

	// The plane box: unit extent along the normal axis, full interior on the
	// two tangential axes (the tiler never splits a unit axis).
	plane := b.interior()
	plane.Lo[a], plane.Hi[a] = bi, bi+1
	b.plan.Run("NSCBC", plane, func(tl par.Tile, worker int) {
		ws := &b.ws[worker]
		b.eachTilePoint(tl, func(i, j, k int) {
			rho := b.Rho.At(i, j, k)
			p := b.P.At(i, j, k)
			T := b.T.At(i, j, k)
			b.gatherYInto(ws.yw, i, j, k)
			c := set.SoundSpeed(T, ws.yw)
			un := vel[a].At(i, j, k)
			ut1 := vel[t1a].At(i, j, k)
			ut2 := vel[t2a].At(i, j, k)
			mach := math.Abs(un) / c
			oneM2 := 1 - mach*mach
			if oneM2 < 0.05 {
				oneM2 = 0.05
			}

			// One-sided normal derivatives from the gradient fields.
			dp := b.dP[a].At(i, j, k)
			drho := b.dRho[a].At(i, j, k)
			dun := dvelN[a].At(i, j, k)
			dut1 := dvelN[t1a].At(i, j, k)
			dut2 := dvelN[t2a].At(i, j, k)

			// Wave amplitudes from the interior (outgoing values).
			l1 := (un - c) * (dp - rho*c*dun)
			l2 := un * (c*c*drho - dp)
			l3 := un * dut1
			l4 := un * dut2
			l5 := (un + c) * (dp + rho*c*dun)
			lY := ws.hw // scratch: species wave amplitudes
			for sp := 0; sp < ns; sp++ {
				lY[sp] = un * b.dY[sp][a].At(i, j, k)
			}

			// Override incoming amplitudes per boundary type.
			switch bc {
			case OutflowNSCBC:
				kp := b.sigmaOut() * c * oneM2 / L
				if side == 0 {
					l5 = kp * (p - b.cfg.PInf) // incoming at a low face travels +n
				} else {
					l1 = kp * (p - b.cfg.PInf)
				}
			case InflowNSCBC:
				tgt := b.inflowTarget(ws, a, side, j, k, t)
				eta := b.etaIn()
				ku := eta * rho * c * c * oneM2 / L
				kt := eta * c / L
				if side == 0 {
					l5 = ku * (un - tgt.U)
				} else {
					l1 = -ku * (un - tgt.U)
				}
				l2 = -eta * (c / L) * rho * c * c * (T - tgt.T) / T
				tgtT1, tgtT2 := tangentialTargets(a, tgt)
				l3 = kt * (ut1 - tgtT1)
				l4 = kt * (ut2 - tgtT2)
				for sp := 0; sp < ns; sp++ {
					lY[sp] = kt * (ws.yw[sp] - tgt.Y[sp])
				}
			}

			// LODI d-vector.
			d1 := (l2 + 0.5*(l5+l1)) / (c * c)
			d2 := 0.5 * (l5 + l1)
			d3 := (l5 - l1) / (2 * rho * c)
			d4 := l3
			d5 := l4

			// Primitive time derivatives from the characteristic normal terms.
			drhoDt := -d1
			dpDt := -d2
			duDt := [3]float64{}
			duDt[a] = -d3
			duDt[t1a] = -d4
			duDt[t2a] = -d5
			dYDt := ws.cw // scratch
			for sp := 0; sp < ns; sp++ {
				dYDt[sp] = -lY[sp]
			}

			// Mixture quantities for the energy conversion.
			W := b.Wmix.At(i, j, k)
			cp := set.CpMass(T, ws.yw)
			var dWDt float64
			for sp := 0; sp < ns; sp++ {
				dWDt += dYDt[sp] / species[sp].W
			}
			dWDt *= -W * W
			dTDt := T * (dpDt/p - drhoDt/rho + dWDt/W)
			var dhDt float64
			var hMix float64
			for sp := 0; sp < ns; sp++ {
				hsp := species[sp].H(T)
				hMix += ws.yw[sp] * hsp
				dhDt += hsp * dYDt[sp]
			}
			dhDt += cp * dTDt

			uVec := [3]float64{b.U.At(i, j, k), b.V.At(i, j, k), b.W.At(i, j, k)}
			ke := 0.5 * (uVec[0]*uVec[0] + uVec[1]*uVec[1] + uVec[2]*uVec[2])
			dRhoE := hMix*drhoDt + rho*dhDt - dpDt + ke*drhoDt +
				rho*(uVec[0]*duDt[0]+uVec[1]*duDt[1]+uVec[2]*duDt[2])

			// Conventional normal inviscid flux derivative at this point, to
			// be removed from the RHS (the divergence already subtracted it).
			dphi := b.normalInviscidDeriv(ws, a, side, i, j, k)

			// rhs_new = rhs_old + ∂φ_inv/∂n + ddt_char.
			b.rhs[iRho].Add(i, j, k, dphi[iRho]+drhoDt)
			for comp := 0; comp < 3; comp++ {
				b.rhs[iRhoU+comp].Add(i, j, k,
					dphi[iRhoU+comp]+uVec[comp]*drhoDt+rho*duDt[comp])
			}
			b.rhs[iRhoE].Add(i, j, k, dphi[iRhoE]+dRhoE)
			for sp := 0; sp < ns-1; sp++ {
				b.rhs[iY0+sp].Add(i, j, k,
					dphi[iY0+sp]+ws.yw[sp]*drhoDt+rho*dYDt[sp])
			}
		})
	})
}

// tangentialTargets maps the inflow target velocity vector onto the face's
// tangential axes.
func tangentialTargets(a int, tgt *InflowState) (float64, float64) {
	v := [3]float64{tgt.U, tgt.V, tgt.W}
	return v[(a+1)%3], v[(a+2)%3]
}

// inflowTarget returns the relaxation target at a face point. The normal
// component of the target is stored in U regardless of the face axis. The
// x-min face uses the per-(j,k) cache (distinct slots, safe under tiling);
// other faces evaluate into the worker's scratch target. Either way the
// user's InflowFunc may be called from several workers at once for
// different points, so it must be safe for concurrent use (pure functions
// of their arguments are; closures over read-only captured data are too).
func (b *Block) inflowTarget(ws *kernScratch, a, side, j, k int, t float64) *InflowState {
	if a == 0 && side == 0 && b.inflowTargets != nil {
		tgt := &b.inflowTargets[k*b.G.Ny+j]
		b.cfg.Inflow(b.G.Yc[j], b.G.Zc[k], t, tgt)
		return tgt
	}
	b.cfg.Inflow(b.G.Yc[j], b.G.Zc[k], t, &ws.tgt)
	return &ws.tgt
}

// eachTilePoint visits every point of the tile's box in k-j-i order.
func (b *Block) eachTilePoint(t par.Tile, fn func(i, j, k int)) {
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			for i := t.Lo[0]; i < t.Hi[0]; i++ {
				fn(i, j, k)
			}
		}
	}
}

// oneSided4 are the fully one-sided fourth-order derivative weights used at
// the boundary point itself (must match deriv's closure so the conventional
// term is removed exactly).
var oneSided4 = [5]float64{-25.0 / 12.0, 4.0, -3.0, 4.0 / 3.0, -1.0 / 4.0}

// normalInviscidDeriv computes ∂φ_inv/∂n for every conserved variable at a
// boundary point with the same one-sided stencil the divergence used, where
// φ_inv is the inviscid part of the normal flux (convection + pressure).
// Results land in the worker's nvOut buffer (valid until its next call), so
// the per-point hot path allocates nothing.
func (b *Block) normalInviscidDeriv(ws *kernScratch, a, side, i, j, k int) []float64 {
	met := b.G.Metric(grid.Axis(a))
	nvar := b.nvar
	out := ws.nvOut
	for v := 0; v < nvar; v++ {
		out[v] = 0
	}
	flux := ws.nvFlux
	idx := [3]int{i, j, k}
	bi := idx[a]
	for m := 0; m < 5; m++ {
		off := m
		w := oneSided4[m]
		if side == 1 {
			off = -m
			w = -w
		}
		pt := idx
		pt[a] = bi + off
		b.inviscidNormalFlux(a, pt[0], pt[1], pt[2], flux)
		for v := 0; v < nvar; v++ {
			out[v] += w * flux[v]
		}
	}
	for v := 0; v < nvar; v++ {
		out[v] *= met[bi]
	}
	return out
}

// inviscidNormalFlux fills flux with the inviscid normal flux components at
// a point: mass ρu_n; momentum ρu_c·u_n + δ_cn·p; energy u_n(ρe₀+p);
// species ρY·u_n.
func (b *Block) inviscidNormalFlux(a, i, j, k int, flux []float64) {
	rho := b.Rho.At(i, j, k)
	p := b.P.At(i, j, k)
	u := [3]float64{b.U.At(i, j, k), b.V.At(i, j, k), b.W.At(i, j, k)}
	un := u[a]
	flux[iRho] = rho * un
	for c := 0; c < 3; c++ {
		f := rho * u[c] * un
		if c == a {
			f += p
		}
		flux[iRhoU+c] = f
	}
	flux[iRhoE] = un * (b.Q[iRhoE].At(i, j, k) + p)
	for n := 0; n < b.ns-1; n++ {
		flux[iY0+n] = rho * b.Y[n].At(i, j, k) * un
	}
}
