package solver

// Dynamic load balancing (the ROADMAP's "chemistry dynamic load balancing"
// item): every cost record — already bitwise identical on all ranks via the
// ordered fold — is folded into (a) per-plane weight profiles that re-tile
// the chemistry and fused-assembly sweeps through par.Plan.SetWeights, and
// (b) a deterministic cross-rank work-sharing assignment for the final RK
// stage's reaction sweep. Overloaded ranks export packed cell bundles
// (rho, T, Y rows) to underloaded peers over the existing Isend/Irecv
// interface; importers run the identical per-cell kernel and ship the
// production-rate terms back; the donor applies them in the exact cell and
// reduction-slot order the local sweep would have used. Because every input
// to every decision is deterministic record data, and the per-cell
// arithmetic is unchanged, a balanced run's solution is bitwise identical
// to the unbalanced one at any worker count and rank count.

import (
	"fmt"

	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/reactor"
)

// tagLB is the message-tag base of the work-sharing rounds: each transfer
// gi uses tagLB+3*gi for its size/flags header, +1 for the cell bundle and
// +2 for the rate reply — disjoint from the halo rounds (tagConserved,
// tagFlux span single digits and the 100s).
const tagLB = 200

func lbTagHeader(gi int) int { return tagLB + 3*gi }
func lbTagBundle(gi int) int { return tagLB + 3*gi + 1 }
func lbTagReply(gi int) int  { return tagLB + 3*gi + 2 }

// lbState is the block's balancer: the planner that stabilises weight
// profiles, the current sharing assignment (identical on every rank) and
// this rank's materialised role in it.
type lbState struct {
	planner *cost.Planner
	slack   float64

	profile []float64 // per-plane chemistry proxy sums (scratch)
	density []float64 // per-plane total work density (scratch)

	transfers []cost.Transfer // current assignment, all ranks identical
	exports   []lbExport      // this rank's outgoing bundles, transfer order
	imports   []lbImport      // this rank's incoming bundles, transfer order
	local     []par.Tile      // retained prefix of the chem partition

	hrr  []float64 // ordered per-tile heat-release slots (shared path)
	pack []float64 // bundle pack scratch (Isend copies at post time)
	recv []float64 // bundle receive scratch
	repl []float64 // reply scratch

	exported, imported int64 // cells shipped out / computed for peers

	cExp, cImp *obs.Counter
}

// lbExport is one outgoing transfer: a contiguous suffix segment of the
// chemistry partition whose cells the peer computes this stage.
type lbExport struct {
	gi    int // index into transfers (tag disambiguation)
	to    int
	tiles []par.Tile
	cells int
}

// lbImport is one incoming transfer; sizes arrive in the bundle header.
type lbImport struct {
	gi   int
	from int
}

// InstallLoadBalance attaches the dynamic load balancer: every `every`
// steps (at cost-record cadence) the weight profiles and the cross-rank
// sharing assignment are re-derived, with the given hysteresis (fractional
// profile change below which the active plan is kept; <=0 selects 0.10) and
// slack (fractional rank imbalance tolerated before work-sharing; <=0
// selects 0.05). Requires an installed cost collector — the balancer is
// driven entirely by its deterministic records, so in decomposed runs every
// rank must install identical settings (the decisions are collective in
// effect, though they add no new collectives).
func (b *Block) InstallLoadBalance(every int, hysteresis, slack float64) error {
	if b.costC == nil {
		return fmt.Errorf("solver: load balancing requires an installed cost collector")
	}
	if every < 1 {
		every = 1
	}
	if hysteresis <= 0 {
		hysteresis = 0.10
	}
	if slack <= 0 {
		slack = 0.05
	}
	b.lb = &lbState{planner: cost.NewPlanner(every, hysteresis), slack: slack}
	return nil
}

// LoadBalance reports whether the balancer is installed.
func (b *Block) LoadBalance() bool { return b.lb != nil }

// LoadBalanceStats returns the cells this rank shipped to peers and the
// cells it computed on behalf of peers since installation.
func (b *Block) LoadBalanceStats() (exported, imported int64) {
	if b.lb == nil {
		return 0, 0
	}
	return b.lb.exported, b.lb.imported
}

// lbPlan folds a fresh cost record into the balancer. Runs on every rank
// with the identical record (costStep's ordered fold), so the weight
// profiles each rank installs for itself and the transfer list all ranks
// share are consistent without further communication.
func (b *Block) lbPlan(rec *cost.Record) {
	lb := b.lb
	if lb == nil {
		return
	}
	r := b.interior()
	ax := par.SweepAxis(r)
	if ax < 0 {
		return
	}
	ext := r.Ext(ax)
	cells := r.Ext(0) * r.Ext(1) * r.Ext(2)
	planeCells := float64(cells / ext)

	// Fold cost_chem into the per-plane chemistry profile.
	if cap(lb.profile) < ext {
		lb.profile = make([]float64, ext)
		lb.density = make([]float64, ext)
	}
	lb.profile = lb.profile[:ext]
	lb.density = lb.density[:ext]
	for p := range lb.profile {
		lb.profile[p] = 0
	}
	for k := r.Lo[2]; k < r.Hi[2]; k++ {
		for j := r.Lo[1]; j < r.Hi[1]; j++ {
			for i := r.Lo[0]; i < r.Hi[0]; i++ {
				idx := [3]int{i, j, k}
				lb.profile[idx[ax]-r.Lo[ax]] += b.costChemF.At(i, j, k)
			}
		}
	}

	if install, changed := lb.planner.Fold(rec.Step, lb.profile); changed {
		// Chemistry: weight by the proxy, with the global mean plane weight
		// as budget so near-idle ranks merge their cheap planes instead of
		// emitting many near-empty tiles (the global record makes the
		// budget identical in meaning on every rank).
		var budget float64
		if chem := chemStat(rec); chem != nil && len(rec.RankTotals) > 0 {
			budget = chem.ProxyTotal / float64(len(rec.RankTotals)*ext)
		}
		b.plan.SetWeights(cost.ChemKernel, install, budget)
		// Fused assembly: weight by total work density (uniform base plus
		// chemistry), no global budget — its base cost is real on every
		// rank, so cheap ranks must keep enough tiles for their own pool.
		base := float64(len(cost.Kernels) - 1)
		for p, v := range install {
			lb.density[p] = base*planeCells + v
		}
		b.plan.SetWeights(cost.AssemblyKernel, lb.density, 0)
	}

	// Cross-rank sharing assignment (decomposed runs only).
	lb.transfers, lb.exports, lb.imports, lb.local = nil, lb.exports[:0], lb.imports[:0], nil
	if b.cart == nil || len(rec.RankTotals) < 2 {
		return
	}
	lb.transfers = cost.PlanSharing(rec.RankTotals, lb.slack)
	if len(lb.transfers) == 0 {
		return
	}
	me := b.Rank()
	part := b.plan.PartitionFor(cost.ChemKernel, r, -1)
	idx := part.Len()
	for gi, t := range lb.transfers {
		if t.To == me {
			lb.imports = append(lb.imports, lbImport{gi: gi, from: t.From})
		}
		if t.From != me {
			continue
		}
		// Donor: peel tiles off the end of the partition until their
		// planned weight best matches the transfer (closest-rule stop,
		// always retaining at least the first tile).
		var tiles []par.Tile
		var acc float64
		tcells := 0
		for idx > 1 {
			w := part.Weight(idx - 1)
			if acc+w-t.Work > t.Work-acc {
				break
			}
			idx--
			tl := part.Tile(idx)
			tiles = append(tiles, tl)
			acc += w
			tcells += tl.Ext(0) * tl.Ext(1) * tl.Ext(2)
		}
		lb.exports = append(lb.exports, lbExport{gi: gi, to: t.To, tiles: tiles, cells: tcells})
	}
	if len(lb.exports) > 0 {
		lb.local = part.Tiles()[:idx]
	}
}

// chemStat returns the record's chemistry kernel entry.
func chemStat(rec *cost.Record) *cost.KernelStat {
	for i := range rec.Kernels {
		if rec.Kernels[i].Kernel == cost.ChemKernel {
			return &rec.Kernels[i]
		}
	}
	return nil
}

// lbGrow returns buf resized to n (reallocating only on growth).
func lbGrow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// chemSourceShared is the final-RK-stage reaction sweep under an active
// work-sharing assignment. Protocol per transfer gi (donor d → recipient r,
// sizes fixed by d's deterministic partition):
//
//	d → r  header  [cells, flags]           (flags: bit0 heat release, bit1 cost proxy)
//	d → r  bundle  cells × (rho, T, Y[ns])  (skipped when cells == 0)
//	r → d  reply   cells × (W·wdot[0..ns-2], [hrr], [substeps])
//
// Isend copies at post time, so donors post all bundles first, compute
// their retained tiles while the recipients work, then block on replies;
// recipients compute their own (underloaded) sweep first, then serve
// bundles. Donor and recipient sets are disjoint (PlanSharing), so the
// exchange is deadlock-free. The donor applies the returned terms in the
// identical cell order and reduction slots the local sweep would have used:
// the solution, the heat-release integral and the cost maps are bitwise
// equal to local execution.
func (b *Block) chemSourceShared() {
	lb := b.lb
	c := b.cart.Comm
	ns := b.ns
	species := b.mech.Set.Species
	r := b.interior()
	part := b.plan.PartitionFor(cost.ChemKernel, r, -1)
	n := part.Len()
	doCost := b.collectCost
	collect := b.collectHRR

	if collect {
		lb.hrr = lbGrow(lb.hrr, n)
		for i := range lb.hrr {
			lb.hrr[i] = 0
		}
	}
	var flags float64
	if collect {
		flags++
	}
	if doCost {
		flags += 2
	}
	vals := ns + 2  // bundle doubles per cell
	rvals := ns - 1 // reply doubles per cell
	if collect {
		rvals++
	}
	if doCost {
		rvals++
	}
	var stageExp, stageImp int64

	// 1) Post all export bundles (buffered sends complete immediately).
	for ei := range lb.exports {
		ex := &lb.exports[ei]
		c.Isend(ex.to, lbTagHeader(ex.gi), []float64{float64(ex.cells), flags})
		if ex.cells == 0 {
			continue
		}
		lb.pack = lbGrow(lb.pack, ex.cells*vals)
		o := 0
		for _, t := range ex.tiles {
			for k := t.Lo[2]; k < t.Hi[2]; k++ {
				for j := t.Lo[1]; j < t.Hi[1]; j++ {
					for i := t.Lo[0]; i < t.Hi[0]; i++ {
						lb.pack[o] = b.Rho.At(i, j, k)
						lb.pack[o+1] = b.T.At(i, j, k)
						for s := 0; s < ns; s++ {
							lb.pack[o+2+s] = b.Y[s].At(i, j, k)
						}
						o += vals
					}
				}
			}
		}
		c.Isend(ex.to, lbTagBundle(ex.gi), lb.pack)
		stageExp += int64(ex.cells)
	}
	lb.exported += stageExp

	// 2) Local compute over the retained partition prefix (or, on a pure
	// recipient, the full partition).
	localTiles := part.Tiles()
	if len(lb.exports) > 0 {
		localTiles = lb.local
	}
	b.plan.RunTiles("REACTION_RATE_BOUNDS", localTiles, func(t par.Tile, w int) {
		hrr, tc := b.chemTileSweep(t, w, collect, doCost)
		if collect {
			lb.hrr[t.Index] = hrr
		}
		if doCost {
			b.cSlots[t.Index] = tc
		}
	})
	if doCost {
		b.lbFillOwner(lb.exports)
	}

	// 3) Serve imports: compute the donors' cells with the identical kernel
	// and ship the terms back.
	var hdr [2]float64
	for ii := range lb.imports {
		im := &lb.imports[ii]
		c.Irecv(im.from, lbTagHeader(im.gi), hdr[:]).Wait()
		cells := int(hdr[0])
		if cells == 0 {
			continue
		}
		fl := int(hdr[1])
		wantHRR := fl&1 != 0
		wantCost := fl&2 != 0
		rv := ns - 1
		if wantHRR {
			rv++
		}
		if wantCost {
			rv++
		}
		lb.recv = lbGrow(lb.recv, cells*vals)
		c.Irecv(im.from, lbTagBundle(im.gi), lb.recv).Wait()
		lb.repl = lbGrow(lb.repl, cells*rv)
		in, out := lb.recv, lb.repl
		// Fixed-size chunks over the pool: every cell's reply slot is
		// disjoint, so the chunking never affects the returned bits.
		const chunk = 64
		nch := (cells + chunk - 1) / chunk
		b.plan.RunItems("REACTION_RATE_BOUNDS", nch, func(ci, w int) {
			ws := &b.ws[w]
			lo, hi := ci*chunk, (ci+1)*chunk
			if hi > cells {
				hi = cells
			}
			for cell := lo; cell < hi; cell++ {
				p := cell * vals
				rho, T := in[p], in[p+1]
				for s := 0; s < ns; s++ {
					ws.cw[s] = rho * in[p+2+s] / species[s].W
				}
				ws.mech.ProductionRates(T, ws.cw, ws.wdot)
				q := cell * rv
				for s := 0; s < ns-1; s++ {
					out[q+s] = species[s].W * ws.wdot[s]
				}
				q += ns - 1
				if wantHRR {
					out[q] = ws.mech.HeatReleaseRate(T, ws.wdot)
					q++
				}
				if wantCost {
					inv := 1 / rho
					for s := 0; s < ns; s++ {
						ws.yw[s] = ws.cw[s] * species[s].W * inv
						ws.hw[s] = species[s].W * ws.wdot[s] * inv
					}
					out[q] = cost.Substeps(reactor.SubstepRate(T, ws.yw, ws.hw, 0, 0), b.costDt)
				}
			}
		})
		c.Isend(im.from, lbTagReply(im.gi), out)
		stageImp += int64(cells)
	}
	lb.imported += stageImp

	// 4) Apply replies in the identical cell order the local sweep uses.
	for ei := range lb.exports {
		ex := &lb.exports[ei]
		if ex.cells == 0 {
			continue
		}
		lb.repl = lbGrow(lb.repl, ex.cells*rvals)
		c.Irecv(ex.to, lbTagReply(ex.gi), lb.repl).Wait()
		o := 0
		for _, t := range ex.tiles {
			var hrr, tc float64
			for k := t.Lo[2]; k < t.Hi[2]; k++ {
				for j := t.Lo[1]; j < t.Hi[1]; j++ {
					for i := t.Lo[0]; i < t.Hi[0]; i++ {
						for s := 0; s < ns-1; s++ {
							b.rhs[iY0+s].Add(i, j, k, lb.repl[o+s])
						}
						q := o + ns - 1
						if collect {
							hrr += lb.repl[q] * b.cellVol(i, j, k)
							q++
						}
						if doCost {
							s := lb.repl[q]
							b.costChemF.Set(i, j, k, s)
							tc += s
						}
						o += rvals
					}
				}
			}
			if collect {
				lb.hrr[t.Index] = hrr
			}
			if doCost {
				b.cSlots[t.Index] = tc
			}
		}
	}

	// 5) Ordered reduction over the full partition's slots — the same
	// ascending-index sum RunReduce performs locally.
	if collect {
		var sum float64
		for _, v := range lb.hrr {
			sum += v
		}
		b.hrrAcc = sum
	}
	b.lbBump(stageExp, stageImp)
}

// lbBump adds the stage's shipped/served cell counts to the balancer's
// metric counters (no-op without an attached registry).
func (b *Block) lbBump(exported, imported int64) {
	if b.Metrics == nil {
		return
	}
	lb := b.lb
	if lb.cExp == nil {
		lb.cExp = b.Metrics.Counter("par.steal.exported")
		lb.cImp = b.Metrics.Counter("par.steal.imported")
	}
	lb.cExp.Add(exported)
	lb.cImp.Add(imported)
}

// lbFillOwner stamps the cost_owner map for the stage: every interior cell
// was computed by this rank except the exported tiles, which carry the
// recipient's rank. Runs only on cost-due stages with the balancer
// installed, so the map always pairs with the step's cost_chem.
func (b *Block) lbFillOwner(exports []lbExport) {
	if b.costOwnF == nil {
		return
	}
	me := float64(b.Rank())
	r := b.interior()
	for k := r.Lo[2]; k < r.Hi[2]; k++ {
		for j := r.Lo[1]; j < r.Hi[1]; j++ {
			for i := r.Lo[0]; i < r.Hi[0]; i++ {
				b.costOwnF.Set(i, j, k, me)
			}
		}
	}
	for ei := range exports {
		ex := &exports[ei]
		owner := float64(ex.to)
		for _, t := range ex.tiles {
			for k := t.Lo[2]; k < t.Hi[2]; k++ {
				for j := t.Lo[1]; j < t.Hi[1]; j++ {
					for i := t.Lo[0]; i < t.Hi[0]; i++ {
						b.costOwnF.Set(i, j, k, owner)
					}
				}
			}
		}
	}
}
