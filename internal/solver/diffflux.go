package solver

import (
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/par"
)

// The diffusive-flux computation (paper figure 4) evaluates, for every
// direction m and species n, the mixture-averaged species diffusive flux
//
//	J*ₙₘ = −ρ·Dₙ·(∂Yₙ/∂xₘ + (Yₙ/W)·∂W/∂xₘ)        (paper eq. 19)
//
// followed by the correction flux that enforces Σₙ Jₙₘ = 0 (paper eq. 15):
//
//	Jₙₘ = J*ₙₘ − Yₙ·Σₖ J*ₖₘ.
//
// This 5-D loop nest was the most costly kernel in S3D (11.3% of runtime at
// 4% of peak). Two implementations are provided; both produce bit-identical
// results and differ only in their memory-access structure, reproducing the
// figure 4/5 optimisation study:
//
//   - computeDiffFluxNaive mirrors the original Fortran-90 array-syntax
//     code: one full-grid array statement at a time, per direction and
//     species, with temporary arrays and shared subexpressions re-read from
//     memory on every sweep — the version that evicts every 50³ slice from
//     cache before it can be reused.
//   - computeDiffFluxOptimized is the LoopTool-transformed equivalent:
//     conditionals unswitched, array statements scalarised and fused into a
//     single triply-nested loop, species loop unroll-and-jammed, so loaded
//     values (ρ, W-gradient terms, Yₙ) are reused from registers.
func (b *Block) computeDiffFlux() {
	defer b.beginRegion("COMPUTESPECIESDIFFFLUX").End()
	switch b.cfg.DiffFlux {
	case DiffFluxOptimized:
		b.computeDiffFluxOptimized()
	default:
		b.computeDiffFluxNaive()
	}
}

// PrepareDiffFluxInputs runs exactly the RHS stages the diffusive-flux
// kernel depends on (ghost fill, primitives, transport, gradients), so
// benchmarks can time the kernel in isolation (the figure-4 methodology:
// HPCToolkit pinned this loop nest alone).
func (b *Block) PrepareDiffFluxInputs() {
	b.exchangeHalos(b.haloQ, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	b.computeGradients()
}

// DiffFluxKernelOnly invokes just the configured diffusive-flux kernel;
// inputs must have been prepared by PrepareDiffFluxInputs.
func (b *Block) DiffFluxKernelOnly() { b.computeDiffFlux() }

// naiveScratch returns the temporary arrays the array-syntax code relies
// on; they are registered in the block's field arena ("naive_t1"/"naive_t2").
func (b *Block) naiveScratch() (*grid.Field3, *grid.Field3) {
	return b.naiveT1, b.naiveT2
}

// eachRowTile invokes fn with the flat start index of every interior row in
// the tile, so the array statements below run over contiguous unit-stride
// spans (as the compiled Fortran 90 array syntax did) — the naive version's
// cost is its memory traffic, not its indexing. Each array statement is a
// separate tiled sweep with a barrier between statements, preserving the
// statement-at-a-time structure whose cache behaviour figure 4 dissects.
func (b *Block) eachRowTile(t par.Tile, fn func(row int)) {
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			fn(b.Rho.Idx(0, j, k))
		}
	}
}

// naiveSweep runs one array statement over the interior, row-parallel. The
// interior is tiled with the i axis frozen so fn always spans whole rows.
func (b *Block) naiveSweep(fn func(row int)) {
	r := par.Interior(b.G.Nx, b.G.Ny, b.G.Nz)
	b.plan.RunFrozen("COMPUTESPECIESDIFFFLUX", r, 0, func(t par.Tile, _ int) {
		b.eachRowTile(t, fn)
	})
}

// computeDiffFluxNaive: per (direction, species) full-grid array sweeps.
// Each array statement re-reads its operands from memory; every 50³ slice
// of the 5-D diffFlux array "almost completely fills the 1 MB secondary
// cache", so nothing is reused between sweeps (paper §4.1, figure 4).
// Generic over the storage width of the gradient/transport operands (the
// fields the mixed policy demotes); the arithmetic is float64 throughout.
func (b *Block) computeDiffFluxNaive() {
	if b.g32 != nil {
		diffFluxNaive(b, b.g32)
	} else {
		diffFluxNaive(b, b.g64)
	}
}

func diffFluxNaive[F grid.Float](b *Block, g *gradView[F]) {
	ns := b.ns
	t1, t2 := b.naiveScratch()
	nx := b.G.Nx
	for m := 0; m < 3; m++ {
		dw := g.dW[m]
		for n := 0; n < ns; n++ {
			yn := b.Y[n].Data
			wmix := b.Wmix.Data
			dy := g.dY[n][m]
			dn := g.d[n]
			rho := b.Rho.Data
			jmn := b.J[m][n].Data
			// tmp1 = Y_n/W · dW_m        (array statement 1)
			b.naiveSweep(func(row int) {
				for i := row; i < row+nx; i++ {
					t1.Data[i] = yn[i] / wmix[i] * float64(dw[i])
				}
			})
			// tmp2 = dY_nm + tmp1        (array statement 2)
			b.naiveSweep(func(row int) {
				for i := row; i < row+nx; i++ {
					t2.Data[i] = float64(dy[i]) + t1.Data[i]
				}
			})
			// J*_nm = −ρ·D_n·tmp2        (array statement 3)
			b.naiveSweep(func(row int) {
				for i := row; i < row+nx; i++ {
					jmn[i] = -rho[i] * float64(dn[i]) * t2.Data[i]
				}
			})
		}
		// Correction: sum over species (array reduction), then subtract —
		// two more passes over the full 4-D slab.
		b.naiveSweep(func(row int) {
			for i := row; i < row+nx; i++ {
				t1.Data[i] = 0
			}
		})
		for n := 0; n < ns; n++ {
			jmn := b.J[m][n].Data
			b.naiveSweep(func(row int) {
				for i := row; i < row+nx; i++ {
					t1.Data[i] += jmn[i]
				}
			})
		}
		for n := 0; n < ns; n++ {
			jmn := b.J[m][n].Data
			yn := b.Y[n].Data
			b.naiveSweep(func(row int) {
				for i := row; i < row+nx; i++ {
					jmn[i] -= yn[i] * t1.Data[i]
				}
			})
		}
	}
}

// computeDiffFluxOptimized: fused single pass with register reuse and a
// two-way unroll-and-jam over species, tiled over the pool with per-worker
// ρD and J* scratch vectors.
func (b *Block) computeDiffFluxOptimized() {
	r := par.Interior(b.G.Nx, b.G.Ny, b.G.Nz)
	b.plan.Run("COMPUTESPECIESDIFFFLUX", r, func(t par.Tile, worker int) {
		if b.g32 != nil {
			diffFluxOptimizedTile(b, b.g32, t, &b.ws[worker])
		} else {
			diffFluxOptimizedTile(b, b.g64, t, &b.ws[worker])
		}
	})
}

func diffFluxOptimizedTile[F grid.Float](b *Block, g *gradView[F], t par.Tile, ws *kernScratch) {
	ns := b.ns
	rhoD := ws.hw // per-point scratch: ρ·D_n
	jstar := ws.cw
	for k := t.Lo[2]; k < t.Hi[2]; k++ {
		for j := t.Lo[1]; j < t.Hi[1]; j++ {
			rowRho := b.Rho.Idx(0, j, k)
			rowW := b.Wmix.Idx(0, j, k)
			for i := t.Lo[0]; i < t.Hi[0]; i++ {
				rho := b.Rho.Data[rowRho+i]
				invW := 1 / b.Wmix.Data[rowW+i]
				// ρDₙ loaded once, reused across the three directions.
				nEven := ns - ns%2
				for n := 0; n < nEven; n += 2 {
					rhoD[n] = rho * float64(g.d[n][rowRho+i])
					rhoD[n+1] = rho * float64(g.d[n+1][rowRho+i])
				}
				for n := nEven; n < ns; n++ {
					rhoD[n] = rho * float64(g.d[n][rowRho+i])
				}
				for m := 0; m < 3; m++ {
					dw := float64(g.dW[m][rowW+i]) * invW
					var sum float64
					for n := 0; n < nEven; n += 2 {
						j0 := -rhoD[n] * (float64(g.dY[n][m][rowRho+i]) + b.Y[n].Data[rowRho+i]*dw)
						j1 := -rhoD[n+1] * (float64(g.dY[n+1][m][rowRho+i]) + b.Y[n+1].Data[rowRho+i]*dw)
						jstar[n], jstar[n+1] = j0, j1
						sum += j0
						sum += j1
					}
					for n := nEven; n < ns; n++ {
						j0 := -rhoD[n] * (float64(g.dY[n][m][rowRho+i]) + b.Y[n].Data[rowRho+i]*dw)
						jstar[n] = j0
						sum += j0
					}
					for n := 0; n < ns; n++ {
						b.J[m][n].Data[rowRho+i] = jstar[n] - b.Y[n].Data[rowRho+i]*sum
					}
				}
			}
		}
	}
}
