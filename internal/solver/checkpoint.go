package solver

import (
	"fmt"
	"io"
	"strconv"

	"github.com/s3dgo/s3d/internal/sdf"
)

// Checkpointing: S3D "restart files contain the bulk of the analysis data"
// (paper §9) — the full conserved state, sufficient to continue the run
// bit-exactly. Each rank writes its own block (the N-files layout the
// workflow later morphs); a serial run writes one file.

// checkpointVarNames maps conserved indices to stable variable names.
func (b *Block) checkpointVarNames() []string {
	names := []string{"rho", "rhou", "rhov", "rhow", "rhoE"}
	for n := 0; n < b.ns-1; n++ {
		names = append(names, "rhoY_"+b.mech.Set.Species[n].Name)
	}
	return names
}

// SaveCheckpoint writes the block's conserved state and time bookkeeping.
func (b *Block) SaveCheckpoint(w io.Writer) error {
	f := sdf.New()
	f.Attrs["step"] = strconv.Itoa(b.Step)
	f.Attrs["time"] = strconv.FormatFloat(b.Time, 'x', -1, 64) // hex: exact
	f.Attrs["nx"] = strconv.Itoa(b.G.Nx)
	f.Attrs["ny"] = strconv.Itoa(b.G.Ny)
	f.Attrs["nz"] = strconv.Itoa(b.G.Nz)
	f.Attrs["mechanism"] = b.mech.Name
	i0, j0, k0 := b.GlobalOffset()
	f.Attrs["offset"] = fmt.Sprintf("%d %d %d", i0, j0, k0)

	names := b.checkpointVarNames()
	for v := 0; v < b.nvar; v++ {
		data := make([]float64, 0, b.G.Nx*b.G.Ny*b.G.Nz)
		q := b.Q[v]
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				row := q.Idx(0, j, k)
				data = append(data, q.Data[row:row+b.G.Nx]...)
			}
		}
		if err := f.AddVar(names[v], []int{b.G.Nx, b.G.Ny, b.G.Nz}, data); err != nil {
			return err
		}
	}
	// The temperature field seeds the Newton inversion on restart, keeping
	// the restarted trajectory bit-identical.
	tdata := make([]float64, 0, b.G.Nx*b.G.Ny*b.G.Nz)
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			row := b.T.Idx(0, j, k)
			tdata = append(tdata, b.T.Data[row:row+b.G.Nx]...)
		}
	}
	if err := f.AddVar("T_guess", []int{b.G.Nx, b.G.Ny, b.G.Nz}, tdata); err != nil {
		return err
	}
	return f.Encode(w)
}

// LoadCheckpoint restores a state written by SaveCheckpoint into a block
// built with a matching configuration.
func (b *Block) LoadCheckpoint(r io.Reader) error {
	f, err := sdf.Decode(r)
	if err != nil {
		return err
	}
	for _, dim := range []struct {
		key  string
		want int
	}{{"nx", b.G.Nx}, {"ny", b.G.Ny}, {"nz", b.G.Nz}} {
		got, err := strconv.Atoi(f.Attrs[dim.key])
		if err != nil || got != dim.want {
			return fmt.Errorf("solver: checkpoint %s = %q, block has %d", dim.key, f.Attrs[dim.key], dim.want)
		}
	}
	if m := f.Attrs["mechanism"]; m != b.mech.Name {
		return fmt.Errorf("solver: checkpoint mechanism %q, block uses %q", m, b.mech.Name)
	}
	step, err := strconv.Atoi(f.Attrs["step"])
	if err != nil {
		return fmt.Errorf("solver: bad checkpoint step: %v", err)
	}
	tme, err := strconv.ParseFloat(f.Attrs["time"], 64)
	if err != nil {
		return fmt.Errorf("solver: bad checkpoint time: %v", err)
	}

	names := b.checkpointVarNames()
	for v := 0; v < b.nvar; v++ {
		vr := f.Var(names[v])
		if vr == nil {
			return fmt.Errorf("solver: checkpoint missing variable %q", names[v])
		}
		if len(vr.Data) != b.G.Nx*b.G.Ny*b.G.Nz {
			return fmt.Errorf("solver: checkpoint variable %q has %d values", names[v], len(vr.Data))
		}
		q := b.Q[v]
		idx := 0
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				row := q.Idx(0, j, k)
				copy(q.Data[row:row+b.G.Nx], vr.Data[idx:idx+b.G.Nx])
				idx += b.G.Nx
			}
		}
	}
	if tg := f.Var("T_guess"); tg != nil {
		idx := 0
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				row := b.T.Idx(0, j, k)
				copy(b.T.Data[row:row+b.G.Nx], tg.Data[idx:idx+b.G.Nx])
				idx += b.G.Nx
			}
		}
	}
	b.Step = step
	b.Time = tme
	return nil
}
