package solver

import (
	"fmt"
	"io"
	"strconv"

	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/sdf"
)

// Checkpointing: S3D "restart files contain the bulk of the analysis data"
// (paper §9) — the full conserved state, sufficient to continue the run
// bit-exactly. Each rank writes its own block (the N-files layout the
// workflow later morphs); a serial run writes one file.
//
// The variable set and on-disk order come from the field registry: every
// field registered with a Ckpt name is written, in registration order —
// the conserved bank (rho, rhou, rhov, rhow, rhoE, rhoY_*) followed by
// T_guess, the Newton seed that keeps a restarted trajectory bit-identical.

// interiorRows streams a field's interior as contiguous per-row slices in
// k-then-j order. Checkpoints are always float64 regardless of the storage
// policy: float64 fields emit views straight into the arena (one copy, field
// row → encoder buffer); float32 fields widen each row through a single
// reused buffer.
func interiorRows(q *grid.Field3) sdf.RowSource {
	var buf []float64
	if q.Data32 != nil {
		buf = make([]float64, q.Nx)
	}
	return func(emit func(chunk []float64) error) error {
		for k := 0; k < q.Nz; k++ {
			for j := 0; j < q.Ny; j++ {
				if err := emit(q.RowInto(buf, j, k)); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// SaveCheckpoint writes the block's conserved state and time bookkeeping.
func (b *Block) SaveCheckpoint(w io.Writer) error {
	f := sdf.New()
	f.Attrs["step"] = strconv.Itoa(b.Step)
	f.Attrs["time"] = strconv.FormatFloat(b.Time, 'x', -1, 64) // hex: exact
	f.Attrs["nx"] = strconv.Itoa(b.G.Nx)
	f.Attrs["ny"] = strconv.Itoa(b.G.Ny)
	f.Attrs["nz"] = strconv.Itoa(b.G.Nz)
	f.Attrs["mechanism"] = b.mech.Name
	i0, j0, k0 := b.GlobalOffset()
	f.Attrs["offset"] = fmt.Sprintf("%d %d %d", i0, j0, k0)

	dims := []int{b.G.Nx, b.G.Ny, b.G.Nz}
	for _, id := range b.fs.Checkpointed() {
		m := b.fs.Meta(id)
		if err := f.AddVarFunc(m.Ckpt, dims, interiorRows(b.fs.Field(id))); err != nil {
			return err
		}
	}
	// The Newton warm start is cross-step state on the full storage, not
	// just the interior: ghost-cell temperatures seed the next step's
	// primitive recovery over the halo regions, so a bit-exact decomposed
	// restart needs them restored too. Written as one auxiliary flat
	// variable after the registry entries; readers without it (or files
	// without it) still work, with ghost seeds starting from the initial
	// fill as before.
	td := b.T.Data
	if err := f.AddVarFunc("T_guess_halo", []int{len(td)},
		func(emit func(chunk []float64) error) error { return emit(td) }); err != nil {
		return err
	}
	return f.Encode(w)
}

// LoadCheckpoint restores a state written by SaveCheckpoint into a block
// built with a matching configuration. Variables are matched by their
// registry checkpoint names, so the on-disk order is free to evolve;
// conserved registers are required, auxiliary entries (the T_guess Newton
// seed) are restored when present.
func (b *Block) LoadCheckpoint(r io.Reader) error {
	f, err := sdf.Decode(r)
	if err != nil {
		return err
	}
	for _, dim := range []struct {
		key  string
		want int
	}{{"nx", b.G.Nx}, {"ny", b.G.Ny}, {"nz", b.G.Nz}} {
		got, err := strconv.Atoi(f.Attrs[dim.key])
		if err != nil || got != dim.want {
			return fmt.Errorf("solver: checkpoint %s = %q, block has %d", dim.key, f.Attrs[dim.key], dim.want)
		}
	}
	if m := f.Attrs["mechanism"]; m != b.mech.Name {
		return fmt.Errorf("solver: checkpoint mechanism %q, block uses %q", m, b.mech.Name)
	}
	step, err := strconv.Atoi(f.Attrs["step"])
	if err != nil {
		return fmt.Errorf("solver: bad checkpoint step: %v", err)
	}
	tme, err := strconv.ParseFloat(f.Attrs["time"], 64)
	if err != nil {
		return fmt.Errorf("solver: bad checkpoint time: %v", err)
	}

	for _, id := range b.fs.Checkpointed() {
		m := b.fs.Meta(id)
		vr := f.Var(m.Ckpt)
		if vr == nil {
			if m.Role != grid.RoleConserved {
				continue // optional auxiliary entry (e.g. T_guess)
			}
			return fmt.Errorf("solver: checkpoint missing variable %q", m.Ckpt)
		}
		if len(vr.Data) != b.G.Nx*b.G.Ny*b.G.Nz {
			return fmt.Errorf("solver: checkpoint variable %q has %d values", m.Ckpt, len(vr.Data))
		}
		q := b.fs.Field(id)
		idx := 0
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				q.SetRow(j, k, vr.Data[idx:idx+b.G.Nx])
				idx += b.G.Nx
			}
		}
	}
	if vr := f.Var("T_guess_halo"); vr != nil && len(vr.Data) == len(b.T.Data) {
		copy(b.T.Data, vr.Data)
	}
	b.Step = step
	b.Time = tme
	return nil
}
