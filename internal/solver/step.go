package solver

import (
	"math"
	"time"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/deriv"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/kernels"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/rk"
)

// Advance integrates the block forward by nSteps steps of size dt using the
// six-stage fourth-order low-storage Runge–Kutta scheme (paper §2.6) and
// applies the tenth-order filter at the configured cadence.
func (b *Block) Advance(nSteps int, dt float64) {
	for s := 0; s < nSteps; s++ {
		b.StepOnce(dt)
	}
}

// StepOnce advances a single time step, panicking on an unrecoverable
// state (the historical contract; StepChecked returns it as an error).
func (b *Block) StepOnce(dt float64) {
	if err := b.StepChecked(dt); err != nil {
		panic(err)
	}
}

// StepChecked advances a single time step and, when a health watchdog is
// armed, evaluates the physics invariants at the end of the step,
// returning a *health.Violation instead of panicking when the run has
// gone bad. A kernel fault mid-step (NaN density, failed temperature
// inversion) does not interrupt the step: the faulting rank completes the
// step's full communication pattern with the faulted cells skipped, so in
// decomposed runs no neighbour deadlocks, and all ranks agree on the
// abort through the end-of-step status-word allreduce. Without an armed
// watchdog the per-step health cost is a nil check plus at most one
// atomic load.
func (b *Block) StepChecked(dt float64) error {
	if inj := b.inj; inj != nil && b.Step+1 >= inj.step {
		b.Q[iRhoE].Set(inj.i, inj.j, inj.k, math.NaN())
		b.inj = nil
	}
	b.inStep = true
	// One atomic load per step when analysis is installed but disabled.
	b.aDue = b.analysis != nil && b.analysis.Due(b.Step+1)
	// Likewise for the cost sampler; a due step opens the wall-clock
	// collection window so the plan's probe samples this step's tiles.
	b.costDue = b.costC != nil && b.costC.Due(b.Step+1)
	if b.costDue {
		b.costArm(dt)
	}
	// And for the critpath analyzer: a due step records comm envelopes and
	// ends in a cross-rank deposit barrier.
	b.critDue = b.critA != nil && b.critA.Due(b.Step+1)
	if b.critDue {
		b.critArm()
	}
	scheme := rk.RK46NL
	nStages := scheme.Stages()
	if len(b.StageWall) != nStages {
		b.StageWall = make([]float64, nStages)
	}
	stepStart := time.Now()
	stageStart := stepStart
	rhsCall := 0
	stepSpan := b.profT.Begin("STEP")
	stepOpen := true
	defer func() {
		if stepOpen {
			stepSpan.End()
		}
	}()
	// Zero the 2N accumulation registers: the dQ bank is one contiguous
	// arena run, so this is a single stride-1 sweep through the selected
	// reset backend.
	b.sel.Impl(kernels.Reset).ZeroBank(b.dqBank)
	scheme.Drive(b.Time, dt, func(stageTime float64) {
		stageStart = time.Now()
		rhsCall++
		b.critStage(rhsCall)
		// The heat-release integral piggybacks on the final stage's
		// chemistry sweep (see telemetry.go); a due analysis step needing
		// heat release requests the same collection.
		b.collectHRR = (b.telemetryOn || (b.aDue && b.analysis.WantHeatRelease())) &&
			rhsCall == nStages
		if b.collectHRR {
			b.hrrAcc = 0
		}
		// The chemistry work proxy piggybacks on the same final-stage sweep.
		b.collectCost = b.costDue && rhsCall == nStages
		// Cross-rank chemistry work-sharing applies to the final stage's
		// reaction sweep only (the assignment was fixed at the last cost
		// record, identically on every rank).
		b.lbShare = b.lb != nil && rhsCall == nStages
		rhsSpan := b.profT.Begin("RHS")
		b.computeRHS(stageTime)
		rhsSpan.End()
	}, func(stage int, a, bb, _ float64) {
		reg := b.beginRegion("RK_UPDATE")
		b.rkUpdateBank(a, bb, dt)
		reg.End()
		b.StageWall[stage] = time.Since(stageStart).Seconds()
	})
	b.collectHRR = false
	b.collectCost = false
	b.lbShare = false
	b.Step++
	b.Time += dt
	if fe := b.cfg.FilterEvery; fe > 0 && b.Step%fe == 0 {
		b.ApplyFilter()
	}
	if b.telemetryOn {
		b.recordStepMetrics(dt, time.Since(stepStart).Seconds())
	}
	b.inStep = false
	// Close the STEP span before the end-of-step reductions: the critpath
	// deposit snapshots the track, and an event records only at End, so a
	// still-open STEP would vanish from blame's top-level coverage.
	stepOpen = false
	stepSpan.End()
	if w := b.watch; w != nil && w.Armed() {
		if err := b.healthCheck(dt); err != nil {
			return err
		}
	}
	// Analysis reduces only after a clean health check: healthCheck's
	// status word guarantees every rank returns from the same step, so the
	// reduction's collective matches across ranks. The cost reduction
	// follows for the same reason.
	b.analysisStep()
	b.costStep()
	// The critpath deposit barrier runs last: its published record then
	// reflects the step's full communication pattern, reductions included.
	b.critStep()
	return nil
}

// rkUpdateBank advances the RK 2N registers: dq ← a·dq + dt·rhs and
// q ← q + bb·dq. The Q/dQ/rhs banks are per-register arena runs, so the
// update is one stride-1 loop per register over the full storage — no tile
// bookkeeping, no per-field indexing — executed by the selected backend
// (bitwise-equal across backends by the kernels contract). Covering the
// ghost layers is bitwise safe: rhs ghosts are never written (they hold
// exact zeros from allocation), so dq stays zero there and q is unchanged;
// interior points see exactly the per-point arithmetic of the former
// interior-tiled update, which no chunking can alter.
func (b *Block) rkUpdateBank(a, bb, dt float64) {
	per := b.fs.FieldLen()
	im := b.sel.Impl(kernels.RKUpdate)
	b.plan.RunItems("RK_UPDATE", b.nvar, func(v, _ int) {
		lo := v * per
		im.RKUpdateBank(b.qBank[lo:lo+per], b.dqBank[lo:lo+per], b.rhsBank[lo:lo+per], a, bb, dt)
	})
}

// RKUpdateBankOnly runs one register update with representative RK46NL
// coefficients (benchmark hook for BenchmarkRKUpdateBank).
func (b *Block) RKUpdateBankOnly(dt float64) { b.rkUpdateBank(-0.7, 0.5, dt) }

// ApplyFilter applies the tenth-order low-pass filter to every conserved
// field along every axis (paper §2.6: an eleven-point explicit filter
// removes spurious high-frequency fluctuations).
func (b *Block) ApplyFilter() {
	defer b.beginRegion("FILTER").End()
	sigma := b.cfg.FilterStrength
	if sigma <= 0 {
		sigma = 1
	}
	r := b.interior()
	im := b.sel.Impl(kernels.Filter)
	for d := 0; d < 3; d++ {
		a := grid.Axis(d)
		if b.G.Dim(a) == 1 {
			continue
		}
		b.exchangeHalos(b.haloQ, tagConserved)
		lo, hi := b.lohi(a)
		for v := 0; v < b.nvar; v++ {
			// Two tiled passes with a barrier between: the filter reads Q
			// while writing scratchF, then the copy-back writes Q. Fusing
			// them would let one tile overwrite Q values a neighbouring
			// tile's stencil still needs.
			b.plan.Run("FILTER", r, func(t par.Tile, _ int) {
				deriv.FilterRangeOn(im, b.scratchF, b.Q[v], a, sigma, lo, hi, t.Lo, t.Hi, deriv.OpSet)
			})
			b.plan.Run("FILTER", r, func(t par.Tile, _ int) {
				b.Q[v].CopyRange(b.scratchF, t.Lo, t.Hi)
			})
		}
	}
}

// RefreshPrimitives recomputes the primitive fields from the current
// conserved state (for diagnostics between steps).
func (b *Block) RefreshPrimitives() {
	b.exchangeHalos(b.haloQ, tagConserved)
	b.computePrimitives()
}

// GlobalDt returns the acoustic time step reduced across all ranks (the
// serial block returns its own).
func (b *Block) GlobalDt() float64 {
	dt := b.AcousticDt()
	if b.cart != nil {
		v := []float64{dt}
		b.cart.Comm.Allreduce(comm.Min, v)
		dt = v[0]
	}
	return dt
}

// RunParallel decomposes the configuration over a dims[0]×dims[1]×dims[2]
// process grid and runs body on every rank's freshly constructed block.
// Periodicity of the process topology follows the physical BCs.
func RunParallel(cfg *Config, dims [3]int, body func(b *Block)) error {
	w := comm.NewWorld(dims[0] * dims[1] * dims[2])
	periodic := [3]bool{
		cfg.BC[0][0] == Periodic,
		cfg.BC[1][0] == Periodic,
		cfg.BC[2][0] == Periodic,
	}
	return w.Run(func(c *comm.Comm) {
		cart, err := comm.NewCart(c, dims, periodic)
		if err != nil {
			panic(err)
		}
		blk, err := NewParallel(cfg, cart)
		if err != nil {
			panic(err)
		}
		body(blk)
	})
}
