package solver

import (
	"time"

	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/deriv"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/rk"
)

// Advance integrates the block forward by nSteps steps of size dt using the
// six-stage fourth-order low-storage Runge–Kutta scheme (paper §2.6) and
// applies the tenth-order filter at the configured cadence.
func (b *Block) Advance(nSteps int, dt float64) {
	for s := 0; s < nSteps; s++ {
		b.StepOnce(dt)
	}
}

// StepOnce advances a single time step.
func (b *Block) StepOnce(dt float64) {
	scheme := rk.RK46NL
	nStages := scheme.Stages()
	if len(b.StageWall) != nStages {
		b.StageWall = make([]float64, nStages)
	}
	stepStart := time.Now()
	stageStart := stepStart
	rhsCall := 0
	// Zero the 2N accumulation registers.
	for v := 0; v < b.nvar; v++ {
		b.dQ[v].Fill(0)
	}
	scheme.Drive(b.Time, dt, func(stageTime float64) {
		stageStart = time.Now()
		rhsCall++
		// The heat-release integral piggybacks on the final stage's
		// chemistry sweep (see telemetry.go).
		b.collectHRR = b.telemetryOn && rhsCall == nStages
		if b.collectHRR {
			b.hrrAcc = 0
		}
		b.computeRHS(stageTime)
	}, func(stage int, a, bb, _ float64) {
		b.Timers.Start("RK_UPDATE")
		for v := 0; v < b.nvar; v++ {
			dq, q, r := b.dQ[v].Data, b.Q[v].Data, b.rhs[v].Data
			// Update interior points only; ghosts are refreshed by exchange.
			for k := 0; k < b.G.Nz; k++ {
				for j := 0; j < b.G.Ny; j++ {
					row := b.Q[v].Idx(0, j, k)
					for i := row; i < row+b.G.Nx; i++ {
						dq[i] = a*dq[i] + dt*r[i]
						q[i] += bb * dq[i]
					}
				}
			}
		}
		b.Timers.Stop("RK_UPDATE")
		b.StageWall[stage] = time.Since(stageStart).Seconds()
	})
	b.collectHRR = false
	b.Step++
	b.Time += dt
	if fe := b.cfg.FilterEvery; fe > 0 && b.Step%fe == 0 {
		b.ApplyFilter()
	}
	if b.telemetryOn {
		b.recordStepMetrics(dt, time.Since(stepStart).Seconds())
	}
}

// ApplyFilter applies the tenth-order low-pass filter to every conserved
// field along every axis (paper §2.6: an eleven-point explicit filter
// removes spurious high-frequency fluctuations).
func (b *Block) ApplyFilter() {
	b.Timers.Start("FILTER")
	defer b.Timers.Stop("FILTER")
	sigma := b.cfg.FilterStrength
	if sigma <= 0 {
		sigma = 1
	}
	for d := 0; d < 3; d++ {
		a := grid.Axis(d)
		if b.G.Dim(a) == 1 {
			continue
		}
		b.exchangeHalos(b.Q, tagConserved)
		lo, hi := b.lohi(a)
		for v := 0; v < b.nvar; v++ {
			deriv.Filter(b.scratchF, b.Q[v], a, sigma, lo, hi)
			b.copyInterior(b.Q[v], b.scratchF)
		}
	}
}

func (b *Block) copyInterior(dst, src *grid.Field3) {
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			rs := src.Idx(0, j, k)
			rd := dst.Idx(0, j, k)
			copy(dst.Data[rd:rd+b.G.Nx], src.Data[rs:rs+b.G.Nx])
		}
	}
}

// RefreshPrimitives recomputes the primitive fields from the current
// conserved state (for diagnostics between steps).
func (b *Block) RefreshPrimitives() {
	b.exchangeHalos(b.Q, tagConserved)
	b.computePrimitives()
}

// GlobalDt returns the acoustic time step reduced across all ranks (the
// serial block returns its own).
func (b *Block) GlobalDt() float64 {
	dt := b.AcousticDt()
	if b.cart != nil {
		v := []float64{dt}
		b.cart.Comm.Allreduce(comm.Min, v)
		dt = v[0]
	}
	return dt
}

// RunParallel decomposes the configuration over a dims[0]×dims[1]×dims[2]
// process grid and runs body on every rank's freshly constructed block.
// Periodicity of the process topology follows the physical BCs.
func RunParallel(cfg *Config, dims [3]int, body func(b *Block)) error {
	w := comm.NewWorld(dims[0] * dims[1] * dims[2])
	periodic := [3]bool{
		cfg.BC[0][0] == Periodic,
		cfg.BC[1][0] == Periodic,
		cfg.BC[2][0] == Periodic,
	}
	return w.Run(func(c *comm.Comm) {
		cart, err := comm.NewCart(c, dims, periodic)
		if err != nil {
			panic(err)
		}
		blk, err := NewParallel(cfg, cart)
		if err != nil {
			panic(err)
		}
		body(blk)
	})
}
