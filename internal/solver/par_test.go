package solver

import (
	"math"
	"os"
	"strconv"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/transport"
)

// TestMain lets CI force every solver test through a multi-worker pool:
// S3D_WORKERS=4 go test -race ./internal/solver exercises the tiled kernels
// with real concurrency even on small CI machines where NumCPU would
// otherwise select the single-worker inline path.
func TestMain(m *testing.M) {
	if s := os.Getenv("S3D_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			par.SetDefaultWorkers(n)
		}
	}
	os.Exit(m.Run())
}

// reactiveConfig builds a 3-D periodic H2/air box with chemistry on.
func reactiveConfig() *Config {
	mech := chem.H2Air()
	return &Config{
		Mech:        mech,
		Trans:       transport.MustNew(mech.Set),
		Grid:        grid.New(grid.Spec{Nx: 16, Ny: 12, Nz: 8, Lx: 0.004, Ly: 0.003, Lz: 0.002}),
		PInf:        101325,
		FilterEvery: 4,
	}
}

// hotSpotIC sets a lean premixed H2/air charge with a hot kernel, so the
// chemistry source and heat-release integral are active from step one.
func hotSpotIC(b *Block) {
	set := b.cfg.Mech.Set
	Y := make([]float64, b.cfg.Mech.NumSpecies())
	Y[set.Index("H2")] = 0.015
	Y[set.Index("O2")] = 0.23
	Y[set.Index("N2")] = 1 - 0.015 - 0.23
	b.SetState(func(x, y, z float64, s *InflowState) {
		s.U = 2 * math.Sin(2*math.Pi*x/0.004)
		s.V = 1 * math.Cos(2*math.Pi*y/0.003)
		s.W = 0.5 * math.Sin(2*math.Pi*z/0.002)
		r2 := (x-0.002)*(x-0.002) + (y-0.0015)*(y-0.0015) + (z-0.001)*(z-0.001)
		s.T = 700 + 500*math.Exp(-r2/(0.0005*0.0005))
		copy(s.Y, Y)
	}, nil)
}

// rankState is one rank's bit-exact solution record.
type rankState struct {
	i0, j0, k0 int
	q          [][]uint64 // [var][interior point] bit patterns
	hrr        uint64
	mass       uint64
}

// runDecomposed advances the reactive case for ten steps on a 2×2×1 rank
// grid whose blocks all share a dedicated pool of the given size, and
// returns every rank's solution bits.
func runDecomposed(t *testing.T, workers int) []rankState {
	t.Helper()
	pool := par.NewPool(workers)
	defer pool.Close()
	cfg := reactiveConfig()
	cfg.Pool = pool
	results := make(chan rankState, 4)
	err := RunParallel(cfg, [3]int{2, 2, 1}, func(b *Block) {
		b.EnableTelemetry(nil) // activates the heat-release reduction
		hotSpotIC(b)
		b.Advance(10, 2e-8)
		st := rankState{i0: b.i0, j0: b.j0, k0: b.k0,
			hrr:  math.Float64bits(b.HeatRelease()),
			mass: math.Float64bits(b.TotalMass()),
		}
		st.q = make([][]uint64, b.nvar)
		for v := 0; v < b.nvar; v++ {
			for k := 0; k < b.G.Nz; k++ {
				for j := 0; j < b.G.Ny; j++ {
					for i := 0; i < b.G.Nx; i++ {
						st.q[v] = append(st.q[v], math.Float64bits(b.Q[v].At(i, j, k)))
					}
				}
			}
		}
		results <- st
	})
	if err != nil {
		t.Fatal(err)
	}
	close(results)
	var out []rankState
	for r := range results {
		out = append(out, r)
	}
	return out
}

// TestWorkerCountDeterminism is the tier-1 determinism gate: ten steps of
// the decomposed reactive periodic case must produce bitwise-identical
// conserved fields, heat-release integrals and total masses with one worker
// and with eight — the pool only reorders work whose results are
// order-independent, and reductions run through ordered tile slots.
func TestWorkerCountDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reacting case")
	}
	base := runDecomposed(t, 1)
	for _, workers := range []int{4, 8} {
		got := runDecomposed(t, workers)
		for _, g := range got {
			var ref *rankState
			for idx := range base {
				if base[idx].i0 == g.i0 && base[idx].j0 == g.j0 && base[idx].k0 == g.k0 {
					ref = &base[idx]
					break
				}
			}
			if ref == nil {
				t.Fatalf("workers=%d: no matching rank for offset (%d,%d,%d)", workers, g.i0, g.j0, g.k0)
			}
			for v := range g.q {
				for p := range g.q[v] {
					if g.q[v][p] != ref.q[v][p] {
						t.Fatalf("workers=%d rank(%d,%d,%d): Q[%d] differs at flat %d: %x vs %x",
							workers, g.i0, g.j0, g.k0, v, p, g.q[v][p], ref.q[v][p])
					}
				}
			}
			if g.hrr != ref.hrr {
				t.Errorf("workers=%d rank(%d,%d,%d): heat release %x vs %x",
					workers, g.i0, g.j0, g.k0, g.hrr, ref.hrr)
			}
			if g.mass != ref.mass {
				t.Errorf("workers=%d rank(%d,%d,%d): total mass %x vs %x",
					workers, g.i0, g.j0, g.k0, g.mass, ref.mass)
			}
		}
	}
}

// TestWorkerCountDeterminismNSCBC covers the boundary path: a serial
// inflow/outflow channel must also be bitwise independent of the pool size
// (the NSCBC planes tile over the pool with per-worker scratch).
func TestWorkerCountDeterminismNSCBC(t *testing.T) {
	run := func(workers int) ([]uint64, func()) {
		pool := par.NewPool(workers)
		mech := chem.H2Air()
		cfg := &Config{
			Mech:  mech,
			Trans: transport.MustNew(mech.Set),
			Grid:  grid.New(grid.Spec{Nx: 24, Ny: 8, Nz: 1, Lx: 0.01, Ly: 0.004, Lz: 0.004}),
			BC: [3][2]BCType{
				{InflowNSCBC, OutflowNSCBC},
				{OutflowNSCBC, OutflowNSCBC},
				{Periodic, Periodic},
			},
			PInf:         101325,
			ChemistryOff: true,
			Pool:         pool,
		}
		Yin := airY(cfg)
		cfg.Inflow = func(y, z, t float64, tgt *InflowState) {
			tgt.U, tgt.V, tgt.W = 10, 0, 0
			tgt.T = 320
			copy(tgt.Y, Yin)
		}
		b, err := NewSerial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b.SetState(func(x, y, z float64, s *InflowState) {
			s.U = 10
			s.T = 320 + 30*math.Exp(-((x-0.005)*(x-0.005))/(0.001*0.001))
			copy(s.Y, Yin)
		}, nil)
		b.Advance(8, 5e-8)
		var bits []uint64
		for v := 0; v < b.nvar; v++ {
			for k := 0; k < b.G.Nz; k++ {
				for j := 0; j < b.G.Ny; j++ {
					for i := 0; i < b.G.Nx; i++ {
						bits = append(bits, math.Float64bits(b.Q[v].At(i, j, k)))
					}
				}
			}
		}
		return bits, pool.Close
	}
	ref, cl1 := run(1)
	defer cl1()
	got, cl8 := run(8)
	defer cl8()
	for p := range ref {
		if ref[p] != got[p] {
			t.Fatalf("NSCBC channel: bit mismatch at flat %d: %x vs %x", p, ref[p], got[p])
		}
	}
}
