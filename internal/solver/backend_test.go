package solver

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/par"
)

// runDecomposedOn is runDecomposed with an explicit kernel backend and
// precision policy, so the determinism and parity gates can sweep the
// (backend, policy) matrix on the same decomposed reacting case.
func runDecomposedOn(t *testing.T, workers int, backend, precision string) []rankState {
	t.Helper()
	pool := par.NewPool(workers)
	defer pool.Close()
	cfg := reactiveConfig()
	cfg.Pool = pool
	cfg.Backend = backend
	cfg.Precision = precision
	results := make(chan rankState, 4)
	err := RunParallel(cfg, [3]int{2, 2, 1}, func(b *Block) {
		b.EnableTelemetry(nil)
		hotSpotIC(b)
		b.Advance(10, 2e-8)
		st := rankState{i0: b.i0, j0: b.j0, k0: b.k0,
			hrr:  math.Float64bits(b.HeatRelease()),
			mass: math.Float64bits(b.TotalMass()),
		}
		st.q = make([][]uint64, b.nvar)
		for v := 0; v < b.nvar; v++ {
			for k := 0; k < b.G.Nz; k++ {
				for j := 0; j < b.G.Ny; j++ {
					for i := 0; i < b.G.Nx; i++ {
						st.q[v] = append(st.q[v], math.Float64bits(b.Q[v].At(i, j, k)))
					}
				}
			}
		}
		results <- st
	})
	if err != nil {
		t.Fatal(err)
	}
	close(results)
	var out []rankState
	for r := range results {
		out = append(out, r)
	}
	return out
}

// TestBlockedBackendBitwiseParity pins the blocked backend against the seed
// solution hash: re-tiling, bounds-check hoisting and row-window addressing
// must not change a single bit of the trajectory, with one worker and four.
func TestBlockedBackendBitwiseParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reacting case")
	}
	for _, workers := range []int{1, 4} {
		if h := solutionHash(runDecomposedOn(t, workers, "blocked", "")); h != seedSolutionHash {
			t.Fatalf("blocked backend, workers=%d: hash %#016x, generic/seed gave %#016x",
				workers, h, seedSolutionHash)
		}
	}
}

// TestMixedPolicyDeterminismAndBackendParity: under the mixed precision
// policy the trajectory legitimately differs from float64, but it must stay
// (a) bitwise reproducible across worker counts and (b) bitwise identical
// between the generic and blocked backends — the policy changes storage, the
// backend changes addressing, and neither may interact with scheduling.
func TestMixedPolicyDeterminismAndBackendParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reacting case")
	}
	hashes := map[string]uint64{}
	for _, backend := range []string{"generic", "blocked"} {
		h1 := solutionHash(runDecomposedOn(t, 1, backend, "mixed"))
		h4 := solutionHash(runDecomposedOn(t, 4, backend, "mixed"))
		if h1 != h4 {
			t.Fatalf("backend %s under mixed policy: workers=1 hash %#016x != workers=4 hash %#016x",
				backend, h1, h4)
		}
		hashes[backend] = h4
	}
	if hashes["generic"] != hashes["blocked"] {
		t.Fatalf("mixed-policy backends disagree: generic %#016x vs blocked %#016x",
			hashes["generic"], hashes["blocked"])
	}
}

// TestMixedPolicySolutionTolerance compares the mixed-precision trajectory
// against the strict float64 baseline after ten steps of the reacting case.
// Demoting transport and gradients to float32 storage perturbs only the
// diffusive terms, so the conserved state must track the baseline to a
// float32-commensurate relative tolerance — and must not match it bitwise,
// or the demotion silently failed to engage.
func TestMixedPolicySolutionTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run reacting case")
	}
	key := func(r rankState) [3]int { return [3]int{r.i0, r.j0, r.k0} }
	base := map[[3]int]rankState{}
	for _, r := range runDecomposedOn(t, 4, "", "") {
		base[key(r)] = r
	}
	const relTol = 1e-4
	identical := true
	for _, r := range runDecomposedOn(t, 4, "", "mixed") {
		ref, ok := base[key(r)]
		if !ok {
			t.Fatalf("no baseline rank at offset (%d,%d,%d)", r.i0, r.j0, r.k0)
		}
		for v := range r.q {
			for p := range r.q[v] {
				if r.q[v][p] != ref.q[v][p] {
					identical = false
				}
				got := math.Float64frombits(r.q[v][p])
				want := math.Float64frombits(ref.q[v][p])
				scale := math.Abs(want)
				if scale < 1e-30 {
					scale = 1e-30
				}
				if math.Abs(got-want) > relTol*scale {
					t.Fatalf("rank(%d,%d,%d) Q[%d] flat %d: mixed %g vs strict %g (rel %g > %g)",
						r.i0, r.j0, r.k0, v, p, got, want,
						math.Abs(got-want)/scale, relTol)
				}
			}
		}
		hrrGot := math.Float64frombits(r.hrr)
		hrrWant := math.Float64frombits(ref.hrr)
		if math.Abs(hrrGot-hrrWant) > relTol*math.Abs(hrrWant) {
			t.Fatalf("heat release drifted: mixed %g vs strict %g", hrrGot, hrrWant)
		}
		massGot := math.Float64frombits(r.mass)
		massWant := math.Float64frombits(ref.mass)
		if math.Abs(massGot-massWant) > relTol*math.Abs(massWant) {
			t.Fatalf("total mass drifted: mixed %g vs strict %g", massGot, massWant)
		}
	}
	if identical {
		t.Fatal("mixed policy reproduced strict bitwise — float32 demotion never engaged")
	}
}

// TestDiffFluxKernelsAgreeMixed re-runs the naive/optimized diffusive-flux
// cross-check with float32 transport and gradient storage: both kernels read
// the same rounded inputs and accumulate in float64, so they must still
// agree to float64 roundoff, and the Σⱼ correction must still cancel.
func TestDiffFluxKernelsAgreeMixed(t *testing.T) {
	cfg := airConfig(12, 10, 6, 0.02)
	cfg.Precision = "mixed"
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Mu.Data32 == nil || b.dT[0].Data32 == nil {
		t.Fatal("mixed policy must demote transport and gradient fields")
	}
	b.SetState(func(x, y, z float64, s *InflowState) {
		f := 0.02 * (1 + math.Sin(2*math.Pi*x/0.02)*math.Cos(2*math.Pi*y/0.02))
		s.T = 400 + 50*math.Sin(2*math.Pi*y/0.02)
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[b.mech.Set.Index("H2")] = f
		s.Y[b.mech.Set.Index("H2O")] = 0.05
		s.Y[b.mech.Set.Index("O2")] = 0.2
		s.Y[b.mech.Set.Index("N2")] = 1 - f - 0.25
	}, nil)
	b.exchangeHalos(b.Q, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	b.computeGradients()

	b.computeDiffFluxNaive()
	naive := make([][3][]float64, b.ns)
	for n := 0; n < b.ns; n++ {
		for d := 0; d < 3; d++ {
			naive[n][d] = append([]float64(nil), b.J[d][n].Data...)
		}
	}
	b.computeDiffFluxOptimized()
	var maxJ float64
	for n := 0; n < b.ns; n++ {
		for d := 0; d < 3; d++ {
			for idx, v := range b.J[d][n].Data {
				if a := math.Abs(v); a > maxJ {
					maxJ = a
				}
				if diff := math.Abs(v - naive[n][d][idx]); diff > 1e-18+1e-9*math.Abs(v) {
					t.Fatalf("mixed kernels disagree: species %d dir %d idx %d: %g vs %g",
						n, d, idx, v, naive[n][d][idx])
				}
			}
		}
	}
	if maxJ == 0 {
		t.Fatal("diffusive flux identically zero — test vacuous")
	}
	for d := 0; d < 3; d++ {
		for k := 0; k < b.G.Nz; k++ {
			for j := 0; j < b.G.Ny; j++ {
				for i := 0; i < b.G.Nx; i++ {
					var s float64
					for n := 0; n < b.ns; n++ {
						s += b.J[d][n].At(i, j, k)
					}
					if math.Abs(s) > 1e-12*maxJ {
						t.Fatalf("ΣJ = %g at (%d,%d,%d) dir %d under mixed policy", s, i, j, k, d)
					}
				}
			}
		}
	}
}
