package solver

import (
	"math"
	"testing"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/transport"
)

// h2BlobConfig builds an inert box with an H2 blob so species diffusion is
// active, with the given transport model selection.
func h2BlobConfig(t *testing.T, constLewis float64) *Block {
	t.Helper()
	mech := chem.H2Air()
	cfg := &Config{
		Mech:         mech,
		Trans:        transport.MustNew(mech.Set),
		Grid:         grid.New(grid.Spec{Nx: 24, Ny: 8, Nz: 1, Lx: 0.004, Ly: 0.002, Lz: 0.001}),
		PInf:         101325,
		ChemistryOff: true,
		ConstLewis:   constLewis,
	}
	b, err := NewSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	iH2 := mech.Set.Index("H2")
	iN2 := mech.Set.Index("N2")
	iO2 := mech.Set.Index("O2")
	b.SetState(func(x, y, z float64, s *InflowState) {
		blob := 0.05 * math.Exp(-((x-0.002)/(0.0004))*((x-0.002)/0.0004))
		s.T = 600
		for i := range s.Y {
			s.Y[i] = 0
		}
		s.Y[iH2] = blob
		s.Y[iO2] = 0.233 * (1 - blob)
		s.Y[iN2] = 1 - blob - 0.233*(1-blob)
	}, nil)
	return b
}

// h2SpreadRate measures the initial diffusive spreading rate of the H2 blob
// by the species-equation RHS magnitude at the blob flank.
func h2SpreadRate(b *Block) float64 {
	b.computeRHS(0)
	iH2 := b.mech.Set.Index("H2")
	var m float64
	for i := 0; i < b.G.Nx; i++ {
		if v := math.Abs(b.rhs[iY0+iH2].At(i, b.G.Ny/2, 0)); v > m {
			m = v
		}
	}
	return m
}

func TestConstLewisSuppressesDifferentialDiffusion(t *testing.T) {
	// H2 is a fast-diffusing species (Le ≈ 0.3): with mixture-averaged
	// transport its diffusive source term is markedly larger than under a
	// unity-Lewis model, the differential-diffusion effect behind the
	// lean-ignition physics of §6.3.
	bMix := h2BlobConfig(t, 0)
	bLe := h2BlobConfig(t, 1.0)
	mixAvg := h2SpreadRate(bMix)
	leOne := h2SpreadRate(bLe)
	// The net species RHS also carries the ΣJ = 0 correction flux, which
	// moderates the difference; the effect must still be clearly visible.
	if !(mixAvg > 1.15*leOne) {
		t.Fatalf("mixture-averaged H2 diffusion %g not above unity-Lewis %g", mixAvg, leOne)
	}
	// The coefficient itself is ≈3× thermal diffusivity for H2 in air.
	iH2 := bMix.mech.Set.Index("H2")
	dMix := bMix.D[iH2].At(6, 4, 0)
	dLe := bLe.D[iH2].At(6, 4, 0)
	if !(dMix > 2*dLe) {
		t.Fatalf("D_H2 mixture-averaged %g not ≫ unity-Lewis %g", dMix, dLe)
	}
}

func TestConstLewisScalesInversely(t *testing.T) {
	// Doubling Le must halve the diffusion coefficient field.
	b1 := h2BlobConfig(t, 1.0)
	b2 := h2BlobConfig(t, 2.0)
	for _, b := range []*Block{b1, b2} {
		b.exchangeHalos(b.Q, tagConserved)
		b.computePrimitives()
		b.computeTransport()
	}
	iH2 := b1.mech.Set.Index("H2")
	d1 := b1.D[iH2].At(5, 4, 0)
	d2 := b2.D[iH2].At(5, 4, 0)
	if math.Abs(d1/d2-2) > 1e-9 {
		t.Fatalf("D(Le=1)/D(Le=2) = %g, want 2", d1/d2)
	}
}

func TestConstLewisAllSpeciesEqual(t *testing.T) {
	b := h2BlobConfig(t, 1.0)
	b.exchangeHalos(b.Q, tagConserved)
	b.computePrimitives()
	b.computeTransport()
	d0 := b.D[0].At(3, 3, 0)
	for n := 1; n < b.ns; n++ {
		if b.D[n].At(3, 3, 0) != d0 {
			t.Fatalf("species %d has different D under constant Lewis", n)
		}
	}
	if d0 <= 0 {
		t.Fatalf("non-positive D %g", d0)
	}
}

func BenchmarkTransportMixtureAveraged(b *testing.B) {
	blk := h2BlobConfig(&testing.T{}, 0)
	blk.exchangeHalos(blk.Q, tagConserved)
	blk.computePrimitives()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.computeTransport()
	}
}

func BenchmarkTransportConstLewis(b *testing.B) {
	blk := h2BlobConfig(&testing.T{}, 1.0)
	blk.exchangeHalos(blk.Q, tagConserved)
	blk.computePrimitives()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.computeTransport()
	}
}
