// Package solver implements the S3D core: the fully compressible reacting
// Navier–Stokes equations in conservative form (paper eqs. 1–4) on a
// structured Cartesian mesh, discretised with eighth-order central
// differences and a tenth-order filter (§2.6), advanced by a six-stage
// fourth-order low-storage Runge–Kutta scheme, with detailed chemistry,
// mixture-averaged transport and Navier–Stokes characteristic boundary
// conditions (NSCBC). The domain is decomposed into equal blocks over a 3-D
// Cartesian process topology with nearest-neighbour ghost-zone exchange.
package solver

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/s3dgo/s3d/internal/chem"
	"github.com/s3dgo/s3d/internal/comm"
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/critpath"
	"github.com/s3dgo/s3d/internal/grid"
	"github.com/s3dgo/s3d/internal/health"
	"github.com/s3dgo/s3d/internal/insitu"
	"github.com/s3dgo/s3d/internal/kernels"
	"github.com/s3dgo/s3d/internal/obs"
	"github.com/s3dgo/s3d/internal/par"
	"github.com/s3dgo/s3d/internal/perf"
	"github.com/s3dgo/s3d/internal/prof"
	"github.com/s3dgo/s3d/internal/transport"
)

// BCType selects the physical boundary treatment of one domain face.
type BCType int

// Boundary-condition kinds. The jet configurations of the paper use a
// non-reflecting characteristic inflow at x-min, non-reflecting outflows at
// x-max and the y faces, and a periodic spanwise z direction.
const (
	Periodic BCType = iota
	InflowNSCBC
	OutflowNSCBC
)

// InflowState is the target state a characteristic inflow relaxes toward.
type InflowState struct {
	U, V, W float64
	T       float64
	Y       []float64
}

// InflowFunc returns the inflow target at transverse position (y, z) and
// time t. The returned Y slice must have species length and sum to one.
// The boundary planes run tiled over the worker pool, so the function may
// be called concurrently for different (y, z) points; it must be safe for
// concurrent use (pure functions of their arguments qualify, as do closures
// over data that is read-only during the run).
type InflowFunc func(y, z, t float64, target *InflowState)

// DiffFluxKernel selects the diffusive-flux implementation (the figure 4/5
// optimisation study).
type DiffFluxKernel int

// The two diffusive-flux kernel variants.
const (
	// DiffFluxNaive mirrors the original Fortran-90 array-syntax code:
	// separate full-grid sweeps per species and direction with temporary
	// arrays, recomputing shared subexpressions — the "as naturally written"
	// version whose cache behaviour figure 4 dissects.
	DiffFluxNaive DiffFluxKernel = iota
	// DiffFluxOptimized is the LoopTool-transformed equivalent: conditionals
	// unswitched, array statements scalarised and fused into one loop nest,
	// species loop unroll-and-jammed, so every dYdx/W/ρD value is reused in
	// registers.
	DiffFluxOptimized
)

// Config assembles a simulation.
type Config struct {
	Mech  *chem.Mechanism
	Trans *transport.Model
	Grid  *grid.Grid // global grid

	// BC[axis][side]: side 0 = low, 1 = high. Periodic axes must be
	// periodic on both sides.
	BC [3][2]BCType

	Inflow InflowFunc // required when any face is InflowNSCBC
	PInf   float64    // far-field pressure for outflow relaxation (Pa)

	// NSCBC relaxation strengths (dimensionless); zero selects defaults
	// (σ = 0.25 outflow, η = 0.3 inflow).
	SigmaOut float64
	EtaIn    float64

	// FilterEvery applies the tenth-order filter every N steps (0 disables;
	// S3D filters periodically to remove spurious high-frequency content).
	FilterEvery    int
	FilterStrength float64 // σ in (0,1]; 0 selects 1.0

	CFL          float64 // acoustic CFL number; 0 selects 0.8
	FixedDt      float64 // overrides CFL when > 0 (the paper uses fixed 4 ns steps)
	DiffFlux     DiffFluxKernel
	ChemistryOff bool // inert runs (pressure-wave tests, figure 4/5 kernel study)

	// Backend selects the kernel backend for the hot loops (see
	// internal/kernels): "" or "generic" for the reference code, "blocked"
	// for the hand-tiled variants, "auto" for per-kernel microbenchmark
	// winners, or a "kernel=impl,..." list. Every backend is bitwise-equal
	// by contract, so this is a performance knob, never a physics one.
	Backend string

	// Precision names the per-field storage policy (see grid.ParsePolicy):
	// "" or "strict" stores every field in float64; "mixed" demotes
	// transport coefficients and stored gradients to float32 storage while
	// all computation and accumulation stays float64.
	Precision string

	// ConstLewis, when positive, replaces the mixture-averaged diffusion
	// coefficients by the constant-Lewis-number model Dᵢ = λ/(ρ·cp·Le) —
	// the classical simplification the paper's mixture-averaged transport
	// improves upon (an ablation: it suppresses the differential diffusion
	// of light species like H and H2 that drives the lean-ignition finding
	// of §6.3).
	ConstLewis float64

	// Pool is the worker pool the block's kernels are scheduled on; nil
	// selects the process-wide default (par.Default, sized by the drivers'
	// -workers flag). All in-process ranks of a decomposed run normally
	// share one pool so the worker budget is divided fairly. Tests and
	// benchmarks pass dedicated pools to pin the worker count.
	Pool *par.Pool
}

// nVar returns the number of conserved variables: ρ, ρu, ρv, ρw, ρe₀ and
// Ns−1 species partial densities (the last species is recovered from
// ΣYᵢ = 1, paper eq. 6).
func (c *Config) nVar() int { return 5 + c.Mech.NumSpecies() - 1 }

// Conserved-variable indices.
const (
	iRho  = 0
	iRhoU = 1
	iRhoV = 2
	iRhoW = 3
	iRhoE = 4
	iY0   = 5 // first species partial density
)

// Block is the state owned by one rank: a subdomain with ghost layers, the
// conserved and primitive fields, transport properties and scratch space.
// A serial run is a single Block with no communicator.
type Block struct {
	cfg   *Config
	G     *grid.Grid // local grid
	mech  *chem.Mechanism
	trans *transport.Model

	// fs is the block's field registry: every Field3 below is carved from
	// its per-width contiguous arenas, in registration order (see
	// registerFields). Consumers resolve fields by registered name or halo
	// group; the named struct fields are hoisted views into the same storage.
	fs *grid.FieldSet

	// sel maps each hot kernel to its backend implementation (Config.Backend)
	// and pol is the storage policy the registry was built under
	// (Config.Precision). Both are fixed at construction.
	sel *kernels.Selection
	pol grid.Policy

	// Exactly one of g64/g32 is non-nil: raw-slice views of the fields the
	// fused kernels read without At (gradients and transport coefficients),
	// at the width the precision policy gave them. Kernels that touch these
	// fields are generic over the view's element type and always compute in
	// float64.
	g64 *gradView[float64]
	g32 *gradView[float32]

	cart *comm.Cart // nil for serial runs
	// offset of the local block in the global grid
	i0, j0, k0 int

	ns, nvar int

	// Q and dQ are the RK 2N registers of conserved fields.
	Q, dQ []*grid.Field3
	// rhs receives the time derivative each stage.
	rhs []*grid.Field3

	// Primitive fields (valid on interior plus ghost layers on connected
	// faces after computePrimitives).
	Rho, U, V, W, T, P, Wmix *grid.Field3
	Y                        []*grid.Field3

	// Transport property fields.
	Mu, Lambda *grid.Field3
	D          []*grid.Field3

	// Gradient fields (interior only).
	dU   [3][3]*grid.Field3 // dU[comp][dir]
	dT   [3]*grid.Field3
	dW   [3]*grid.Field3
	dY   [][3]*grid.Field3 // [species][dir]
	dRho [3]*grid.Field3
	dP   [3]*grid.Field3

	// Species diffusive fluxes J[dir][species] and total fluxes
	// flux[var][dir].
	J    [3][]*grid.Field3
	flux [][3]*grid.Field3

	// Raw float64 views of Q/flux/J/Y, hoisted once so the blocked tiles
	// load each backing slice once per tile instead of re-deriving it from
	// the Field3 header at every cell (these roles are always float64).
	qD    [][]float64
	fluxD [][3][]float64
	jD    [3][][]float64
	yD    [][]float64

	// Per-face boundary condition resolved for this block: interior faces
	// (with a neighbouring rank) behave like UseGhosts.
	faceBC    [3][2]BCType
	interiorF [3][2]bool // true when the face adjoins another rank

	// ghostValid[axis] reports whether ghost layers along the axis hold
	// valid data (periodic wrap or halo exchange); when false, one-sided
	// stencils are used at that face.
	loGhost, hiGhost [3]bool

	// plan schedules the block's kernels over the worker pool; ws holds the
	// per-worker scratch (indexed by the worker id the plan passes to each
	// tile closure), including per-worker clones of the stateful chemistry
	// and transport models.
	plan *par.Plan
	ws   []kernScratch

	// pointwise scratch for the serial helper paths (AcousticDt, SetState);
	// tiled kernels use the per-worker sets in ws instead.
	yw, cw, wdot, hw []float64
	props            transport.Props
	scratchF         *grid.Field3
	naiveT1, naiveT2 *grid.Field3 // temporaries of the naive diff-flux kernel

	// The Q/dQ/rhs registers are registered consecutively, so each bank is
	// one contiguous arena run: the RK 2N update and register zeroing are
	// single stride-1 loops over these spans instead of per-field calls.
	qBank, dqBank, rhsBank []float64

	// Halo-exchange field lists resolved from the registry groups
	// ("conserved", "flux"), hoisted so computeRHS does not rebuild them
	// every stage. Group order is registration order, which fixes the
	// packed-slab message layout.
	haloQ, haloFlux []*grid.Field3

	// haloBuf holds the four slab buffers of an axis exchange (recv lo/hi,
	// send lo/hi), grown on demand and reused across steps.
	haloBuf [4][]float64

	// inflow target cache per (j,k) on the x-min face
	inflowTargets []InflowState

	Timers *perf.Timers
	Step   int
	Time   float64

	// Telemetry (see telemetry.go). Metrics may stay nil: the obs metric
	// handles are nil-receiver safe, so the instrumented paths need no
	// checks. StageWall holds the wall-clock seconds of each RK stage of
	// the most recent StepOnce.
	Metrics     *obs.Registry
	StageWall   []float64
	profT       *prof.Track // call-path profiler track (see region.go); may stay nil
	telemetryOn bool
	collectHRR  bool         // true during the final RK stage when telemetry is on
	hrrAcc      float64      // heat-release integral of the last step (W)
	volW        [3][]float64 // per-axis quadrature widths (see cellVol)

	// Run-health watchdog (see health.go). watch may stay nil; the only
	// per-step cost of a disarmed watchdog is one atomic load. Tiled
	// kernels record the first would-be panic into fault under faultMu;
	// the owner reads it lock-free after the kernel's WaitGroup barrier.
	watch   *health.Watchdog
	faultMu sync.Mutex
	fault   *health.Violation
	hSlots  []hAcc  // ordered per-tile health accumulators
	hMin    float64 // cached minimum grid spacing for the CFL checks
	inStep  bool    // true while StepChecked is advancing (fault step index)
	inj     *nanInjection

	// In-situ analysis pipeline (see analysis.go). analysis may stay nil;
	// a disabled pipeline costs StepChecked one atomic load per step.
	analysis *insitu.Pipeline
	aSlots   [][]float64   // ordered per-tile accumulator rows
	aSub     [][][]float64 // aSub[tile][op] = that op's slot window in the row
	aAcc     []float64     // merged vector (+1 trailing heat-release slot)
	aDue     bool          // this step ends in an analysis reduction

	// Cost-attribution sampler (see cost.go). costC may stay nil; a
	// disabled collector costs StepChecked one atomic load per step. The
	// deterministic chemistry work proxy piggybacks on the final RK stage's
	// chemistry sweep into ordered per-tile slots (cSlots) and the cost_chem
	// field; costStep folds them cross-rank and publishes.
	costC       *cost.Collector
	cSlots      []float64 // ordered per-tile chemistry proxy sums
	cFold       []float64 // cross-rank fold vector (cost.FoldLen)
	cRegionBase []float64 // region-timer seconds at window open, per kernel
	costDue     bool      // this step ends in a cost reduction
	collectCost bool      // true during the final RK stage of a due step
	costDt      float64   // dt of the step being sampled (substep conversion)
	cTiles      int       // chem partition tile count of the last collection

	// Spatial cost-density fields (registered unconditionally; zero unless
	// cost maps are enabled). cost_owner records which rank computed each
	// cell's chemistry (zero unless load balancing is enabled).
	costChemF, costDensF, costOwnF *grid.Field3

	// Dynamic load balancer (see lb.go). lb may stay nil; installed, it
	// folds each cost record into weight profiles for the chemistry and
	// flux-assembly sweeps and a cross-rank work-sharing assignment for the
	// final RK stage's reaction sweep.
	lb      *lbState
	lbShare bool // work-sharing eligible for the in-flight RK stage

	// Cross-rank wait-state and critical-path analyzer (see critpath.go in
	// this package). critA may stay nil; a disabled analyzer costs
	// StepChecked one atomic load per step. A due step arms the comm event
	// trace and ends in a deposit barrier at the shared analyzer.
	critA     *critpath.Analyzer
	critDue   bool  // this step ends in a critpath deposit
	critStart int64 // step-window open on the analyzer clock

	// stragglerDelay artificially slows this rank's chemistry sweep (one
	// sleep per RK stage) — the injection hook for critpath validation.
	stragglerDelay time.Duration
}

// kernScratch is one worker's private scratch for the tiled kernels: the
// pointwise work arrays plus clones of the stateful chemistry and transport
// models (Mechanism and Model carry internal buffers and are not safe for
// concurrent use).
type kernScratch struct {
	yw, cw, wdot, hw []float64
	props            transport.Props
	mech             *chem.Mechanism
	trans            *transport.Model

	// Row scratch of the blocked flux-assembly kernel (length Nx): heat-flux
	// accumulators per direction, per-species enthalpy, velocity divergence
	// and the six distinct components of the symmetric stress tensor.
	rowQ   [3][]float64
	rowH   []float64
	rowDiv []float64
	rowTau [6][]float64

	// NSCBC per-point buffers (normalInviscidDeriv result and flux stencil).
	nvOut, nvFlux []float64
	// inflow target for faces without the per-(j,k) cache
	tgt InflowState
}

// NewSerial builds a single-block (serial) simulation over the whole grid.
func NewSerial(cfg *Config) (*Block, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	b := newBlock(cfg, cfg.Grid, nil, 0, 0, 0)
	return b, nil
}

// NewParallel builds the rank-local block for a decomposed run. The cart
// topology supplies the block's position; the global grid is split with
// comm.Decompose1D along each axis.
func NewParallel(cfg *Config, cart *comm.Cart) (*Block, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	co := cart.Coords()
	i0, nx := comm.Decompose1D(cfg.Grid.Nx, cart.Dims[0], co[0])
	j0, ny := comm.Decompose1D(cfg.Grid.Ny, cart.Dims[1], co[1])
	k0, nz := comm.Decompose1D(cfg.Grid.Nz, cart.Dims[2], co[2])
	local := cfg.Grid.Sub(i0, nx, j0, ny, k0, nz)
	return newBlock(cfg, local, cart, i0, j0, k0), nil
}

func validate(cfg *Config) error {
	if cfg.Mech == nil || cfg.Trans == nil || cfg.Grid == nil {
		return fmt.Errorf("solver: config requires Mech, Trans and Grid")
	}
	if cfg.Trans.Set != cfg.Mech.Set {
		return fmt.Errorf("solver: transport model and mechanism use different species sets")
	}
	for a := 0; a < 3; a++ {
		if (cfg.BC[a][0] == Periodic) != (cfg.BC[a][1] == Periodic) {
			return fmt.Errorf("solver: axis %d periodic on one side only", a)
		}
		hasInflow := cfg.BC[a][0] == InflowNSCBC || cfg.BC[a][1] == InflowNSCBC
		if hasInflow && cfg.Inflow == nil {
			return fmt.Errorf("solver: inflow BC requires Config.Inflow")
		}
	}
	if cfg.PInf <= 0 {
		outflow := false
		for a := 0; a < 3; a++ {
			for s := 0; s < 2; s++ {
				if cfg.BC[a][s] == OutflowNSCBC || cfg.BC[a][s] == InflowNSCBC {
					outflow = true
				}
			}
		}
		if outflow {
			return fmt.Errorf("solver: NSCBC boundaries require Config.PInf")
		}
	}
	if _, err := kernels.Select(cfg.Backend); err != nil {
		return err
	}
	if _, err := grid.ParsePolicy(cfg.Precision); err != nil {
		return err
	}
	return nil
}

func newBlock(cfg *Config, local *grid.Grid, cart *comm.Cart, i0, j0, k0 int) *Block {
	ns := cfg.Mech.NumSpecies()
	b := &Block{
		cfg: cfg, G: local,
		mech:  cfg.Mech.Clone(),
		trans: cfg.Trans.Clone(),
		cart:  cart,
		i0:    i0, j0: j0, k0: k0,
		ns: ns, nvar: cfg.nVar(),
		Timers: perf.NewTimers(),
	}
	// Backend and policy were validated before newBlock runs.
	b.sel = kernels.MustSelect(cfg.Backend)
	b.pol, _ = grid.ParsePolicy(cfg.Precision)
	b.registerFields()
	b.yw = make([]float64, ns)
	b.cw = make([]float64, ns)
	b.wdot = make([]float64, ns)
	b.hw = make([]float64, ns)
	b.props = transport.Props{Dmix: make([]float64, ns)}
	// T initial guess for Newton inversion.
	b.T.Fill(300)

	b.plan = par.NewPlan(cfg.Pool)
	b.ws = make([]kernScratch, b.plan.Workers())
	for w := range b.ws {
		b.ws[w] = kernScratch{
			yw: make([]float64, ns), cw: make([]float64, ns),
			wdot: make([]float64, ns), hw: make([]float64, ns),
			props:  transport.Props{Dmix: make([]float64, ns)},
			mech:   cfg.Mech.Clone(),
			trans:  cfg.Trans.Clone(),
			nvOut:  make([]float64, b.nvar),
			nvFlux: make([]float64, b.nvar),
			tgt:    InflowState{Y: make([]float64, ns)},
		}
		s := &b.ws[w]
		s.rowH = make([]float64, b.G.Nx)
		s.rowDiv = make([]float64, b.G.Nx)
		for d := range s.rowQ {
			s.rowQ[d] = make([]float64, b.G.Nx)
		}
		for m := range s.rowTau {
			s.rowTau[m] = make([]float64, b.G.Nx)
		}
	}

	// Quadrature widths for volume integrals, built here so the tiled
	// chemistry kernel never races a lazy initialisation.
	b.volW[0] = lineWidths(local.Xc, local.Lx)
	b.volW[1] = lineWidths(local.Yc, local.Ly)
	b.volW[2] = lineWidths(local.Zc, local.Lz)

	// Resolve per-face treatment.
	for a := 0; a < 3; a++ {
		for s := 0; s < 2; s++ {
			b.faceBC[a][s] = cfg.BC[a][s]
		}
	}
	if cart != nil {
		for a := 0; a < 3; a++ {
			if !cart.OnLowBoundary(a) {
				b.interiorF[a][0] = true
			}
			if !cart.OnHighBoundary(a) {
				b.interiorF[a][1] = true
			}
		}
	}
	for a := 0; a < 3; a++ {
		perio := cfg.BC[a][0] == Periodic
		b.loGhost[a] = perio || b.interiorF[a][0]
		b.hiGhost[a] = perio || b.interiorF[a][1]
	}
	if b.faceBC[0][0] == InflowNSCBC && !b.interiorF[0][0] {
		b.inflowTargets = make([]InflowState, b.G.Ny*b.G.Nz)
		for i := range b.inflowTargets {
			b.inflowTargets[i].Y = make([]float64, ns)
		}
	}
	return b
}

// haloGroupConserved and haloGroupFlux name the two registry halo groups:
// the conserved state exchanged before each RHS evaluation, and the
// assembled fluxes exchanged before the divergence.
const (
	haloGroupConserved = "conserved"
	haloGroupFlux      = "flux"
)

// conservedNames returns the stable conserved-register names in variable
// order: ρ, momentum, total energy, then the Ns−1 transported partial
// densities. These double as the on-disk checkpoint variable names (the
// restart-file ABI) and as the quantity names in health violations.
func (b *Block) conservedNames() []string {
	names := []string{"rho", "rhou", "rhov", "rhow", "rhoE"}
	for n := 0; n < b.ns-1; n++ {
		names = append(names, "rhoY_"+b.mech.Set.Species[n].Name)
	}
	return names
}

// registerFields declares every field of the block in the registry and
// carves their storage from one arena. Registration order is ABI:
//
//   - Q, dQ and rhs are registered as three consecutive per-register banks,
//     so the RK 2N update and register zeroing run as stride-1 loops over
//     contiguous arena spans (the S3D "small number of big arrays" layout);
//   - the flux components follow in (var, dir) order, fixing the packed
//     field-major layout of the flux halo-exchange messages;
//   - checkpoint inclusion (Ckpt) follows registration order, pinning the
//     on-disk variable order to Q then T_guess — the pre-registry layout,
//     so old restart files keep loading.
//
// Primitive, transport, gradient and scratch fields carry the names the
// viz/in-situ pickers resolve ("rho", "u", "T", "Y_OH", …).
func (b *Block) registerFields() {
	ns := b.ns
	fs := grid.NewFieldSetPolicy(b.G.Nx, b.G.Ny, b.G.Nz, grid.Ghost, b.pol)
	b.fs = fs

	qNames := b.conservedNames()
	spOf := func(v int) int {
		if v >= iY0 {
			return v - iY0
		}
		return -1
	}
	dir := [3]string{"x", "y", "z"}

	qID := make([]int, b.nvar)
	dqID := make([]int, b.nvar)
	rhsID := make([]int, b.nvar)
	for v := 0; v < b.nvar; v++ {
		qID[v] = fs.Register(grid.FieldMeta{Name: "Q_" + qNames[v], Role: grid.RoleConserved,
			Species: spOf(v), Group: haloGroupConserved, Ckpt: qNames[v]})
	}
	for v := 0; v < b.nvar; v++ {
		dqID[v] = fs.Register(grid.FieldMeta{Name: "dQ_" + qNames[v], Role: grid.RoleRegister, Species: spOf(v)})
	}
	for v := 0; v < b.nvar; v++ {
		rhsID[v] = fs.Register(grid.FieldMeta{Name: "rhs_" + qNames[v], Role: grid.RoleRegister, Species: spOf(v)})
	}
	fluxID := make([][3]int, b.nvar)
	for v := 0; v < b.nvar; v++ {
		for d := 0; d < 3; d++ {
			fluxID[v][d] = fs.Register(grid.FieldMeta{Name: "flux_" + qNames[v] + "_" + dir[d],
				Role: grid.RoleFlux, Species: spOf(v), Group: haloGroupFlux})
		}
	}

	prim := func(name string) int {
		return fs.Register(grid.FieldMeta{Name: name, Role: grid.RolePrimitive, Species: -1})
	}
	rhoID, uID, vID, wID := prim("rho"), prim("u"), prim("v"), prim("w")
	// The temperature primitive seeds the restart Newton inversion, so it
	// is the one non-conserved checkpoint entry (on-disk name T_guess).
	tID := fs.Register(grid.FieldMeta{Name: "T", Role: grid.RolePrimitive, Species: -1, Ckpt: "T_guess"})
	pID, wmixID := prim("p"), prim("Wmix")
	yID := make([]int, ns)
	for n := 0; n < ns; n++ {
		yID[n] = fs.Register(grid.FieldMeta{Name: "Y_" + b.mech.Set.Species[n].Name,
			Role: grid.RolePrimitive, Species: n})
	}

	muID := fs.Register(grid.FieldMeta{Name: "mu", Role: grid.RoleTransport, Species: -1})
	lamID := fs.Register(grid.FieldMeta{Name: "lambda", Role: grid.RoleTransport, Species: -1})
	dID := make([]int, ns)
	for n := 0; n < ns; n++ {
		dID[n] = fs.Register(grid.FieldMeta{Name: "D_" + b.mech.Set.Species[n].Name,
			Role: grid.RoleTransport, Species: n})
	}

	grad := func(name string, sp int) int {
		return fs.Register(grid.FieldMeta{Name: name, Role: grid.RoleGradient, Species: sp})
	}
	vel := [3]string{"u", "v", "w"}
	var dUID [3][3]int
	var dTID, dWID, dRhoID, dPID [3]int
	dYID := make([][3]int, ns)
	JID := make([][]int, 3)
	for c := 0; c < 3; c++ {
		for d := 0; d < 3; d++ {
			dUID[c][d] = grad("d"+vel[c]+"_d"+dir[d], -1)
		}
		dTID[c] = grad("dT_d"+dir[c], -1)
		dWID[c] = grad("dWmix_d"+dir[c], -1)
		dRhoID[c] = grad("drho_d"+dir[c], -1)
		dPID[c] = grad("dp_d"+dir[c], -1)
	}
	for n := 0; n < ns; n++ {
		for d := 0; d < 3; d++ {
			dYID[n][d] = grad("dY_"+b.mech.Set.Species[n].Name+"_d"+dir[d], n)
		}
	}
	for c := 0; c < 3; c++ {
		JID[c] = make([]int, ns)
		for n := 0; n < ns; n++ {
			JID[c][n] = fs.Register(grid.FieldMeta{Name: "J_" + b.mech.Set.Species[n].Name + "_" + dir[c],
				Role: grid.RoleFlux, Species: n})
		}
	}

	scratchID := fs.Register(grid.FieldMeta{Name: "filter_scratch", Role: grid.RoleScratch, Species: -1})
	// The naive diff-flux kernel's array-statement temporaries, registered
	// eagerly so the kernel never lazily allocates outside the arena.
	nt1ID := fs.Register(grid.FieldMeta{Name: "naive_t1", Role: grid.RoleScratch, Species: -1})
	nt2ID := fs.Register(grid.FieldMeta{Name: "naive_t2", Role: grid.RoleScratch, Species: -1})

	// Spatial cost-density maps (see cost.go), registered unconditionally so
	// the registry ABI — and with it the checkpoint and halo layouts, which
	// exclude them — is identical whether or not cost maps are enabled.
	costChemID := fs.Register(grid.FieldMeta{Name: "cost_chem", Role: grid.RoleCost, Species: -1})
	costDensID := fs.Register(grid.FieldMeta{Name: "cost_density", Role: grid.RoleCost, Species: -1})
	costOwnID := fs.Register(grid.FieldMeta{Name: "cost_owner", Role: grid.RoleCost, Species: -1})

	fs.Build()

	b.Q = make([]*grid.Field3, b.nvar)
	b.dQ = make([]*grid.Field3, b.nvar)
	b.rhs = make([]*grid.Field3, b.nvar)
	b.flux = make([][3]*grid.Field3, b.nvar)
	for v := 0; v < b.nvar; v++ {
		b.Q[v], b.dQ[v], b.rhs[v] = fs.Field(qID[v]), fs.Field(dqID[v]), fs.Field(rhsID[v])
		for d := 0; d < 3; d++ {
			b.flux[v][d] = fs.Field(fluxID[v][d])
		}
	}
	b.qBank = fs.Span(qID[0], b.nvar)
	b.dqBank = fs.Span(dqID[0], b.nvar)
	b.rhsBank = fs.Span(rhsID[0], b.nvar)
	b.haloQ = fs.Group(haloGroupConserved)
	b.haloFlux = fs.Group(haloGroupFlux)

	b.Rho, b.U, b.V, b.W = fs.Field(rhoID), fs.Field(uID), fs.Field(vID), fs.Field(wID)
	b.T, b.P, b.Wmix = fs.Field(tID), fs.Field(pID), fs.Field(wmixID)
	b.Mu, b.Lambda = fs.Field(muID), fs.Field(lamID)
	b.Y = make([]*grid.Field3, ns)
	b.D = make([]*grid.Field3, ns)
	b.dY = make([][3]*grid.Field3, ns)
	for n := 0; n < ns; n++ {
		b.Y[n], b.D[n] = fs.Field(yID[n]), fs.Field(dID[n])
		for d := 0; d < 3; d++ {
			b.dY[n][d] = fs.Field(dYID[n][d])
		}
	}
	for c := 0; c < 3; c++ {
		for d := 0; d < 3; d++ {
			b.dU[c][d] = fs.Field(dUID[c][d])
		}
		b.dT[c], b.dW[c] = fs.Field(dTID[c]), fs.Field(dWID[c])
		b.dRho[c], b.dP[c] = fs.Field(dRhoID[c]), fs.Field(dPID[c])
		b.J[c] = make([]*grid.Field3, ns)
		for n := 0; n < ns; n++ {
			b.J[c][n] = fs.Field(JID[c][n])
		}
	}
	b.scratchF = fs.Field(scratchID)
	b.naiveT1, b.naiveT2 = fs.Field(nt1ID), fs.Field(nt2ID)
	b.costChemF, b.costDensF = fs.Field(costChemID), fs.Field(costDensID)
	b.costOwnF = fs.Field(costOwnID)

	b.qD = make([][]float64, b.nvar)
	b.fluxD = make([][3][]float64, b.nvar)
	for v := 0; v < b.nvar; v++ {
		b.qD[v] = b.Q[v].Data
		for d := 0; d < 3; d++ {
			b.fluxD[v][d] = b.flux[v][d].Data
		}
	}
	b.yD = make([][]float64, ns)
	for d := 0; d < 3; d++ {
		b.jD[d] = make([][]float64, ns)
		for n := 0; n < ns; n++ {
			b.jD[d][n] = b.J[d][n].Data
		}
	}
	for n := 0; n < ns; n++ {
		b.yD[n] = b.Y[n].Data
	}

	// Hoist the raw-slice views of the policy-width fields once; the fused
	// kernels pick the matching instantiation by which view is non-nil.
	if b.pol.StorageFor(grid.RoleGradient) == grid.StorageFloat32 {
		b.g32 = newGradView[float32](b)
	} else {
		b.g64 = newGradView[float64](b)
	}
}

// gradView is the raw-slice view of the fields the fused kernels read
// without going through At: the stored gradients and transport coefficients,
// which are the fields the mixed precision policy demotes. The element type
// is the storage width; every consumer widens on load and computes in
// float64.
type gradView[F grid.Float] struct {
	dU  [3][3][]F // dU[comp][dir]
	dT  [3][]F
	dW  [3][]F
	dY  [][3][]F // [species][dir]
	mu  []F
	lam []F
	d   [][]F // [species]
}

// fdata returns f's backing slice at width F, panicking when the field's
// storage width disagrees — a registration/policy bug, not a runtime state.
func fdata[F grid.Float](f *grid.Field3) []F {
	if s, ok := any(f.Data).([]F); ok && s != nil {
		return s
	}
	if s, ok := any(f.Data32).([]F); ok && s != nil {
		return s
	}
	panic("solver: field storage width does not match requested view")
}

func newGradView[F grid.Float](b *Block) *gradView[F] {
	g := &gradView[F]{
		mu:  fdata[F](b.Mu),
		lam: fdata[F](b.Lambda),
		dY:  make([][3][]F, b.ns),
		d:   make([][]F, b.ns),
	}
	for c := 0; c < 3; c++ {
		for d := 0; d < 3; d++ {
			g.dU[c][d] = fdata[F](b.dU[c][d])
		}
		g.dT[c] = fdata[F](b.dT[c])
		g.dW[c] = fdata[F](b.dW[c])
	}
	for n := 0; n < b.ns; n++ {
		g.d[n] = fdata[F](b.D[n])
		for d := 0; d < 3; d++ {
			g.dY[n][d] = fdata[F](b.dY[n][d])
		}
	}
	return g
}

// KernelBackends maps each backend-selectable profiler region to the name of
// the implementation serving it (the roofline Impl column).
func (b *Block) KernelBackends() map[string]string {
	return map[string]string{
		"RK_UPDATE":          b.sel.Name(kernels.RKUpdate),
		"DERIVATIVES":        b.sel.Name(kernels.Diff),
		"DIVERGENCE":         b.sel.Name(kernels.Divergence),
		"FILTER":             b.sel.Name(kernels.Filter),
		"ASSEMBLE_FLUXES":    b.sel.Name(kernels.FluxAssembly),
		"COMPUTE_PRIMITIVES": b.sel.Name(kernels.Primitives),
	}
}

// BackendSpec renders the block's kernel selection as a flag spec.
func (b *Block) BackendSpec() string { return b.sel.String() }

// PrecisionPolicy returns the storage policy name the registry was built
// under ("strict", "mixed").
func (b *Block) PrecisionPolicy() string { return b.pol.String() }

// Fields returns the block's field registry: the single source of truth for
// field identity (names, roles, halo groups, checkpoint inclusion) and the
// owner of the backing arena.
func (b *Block) Fields() *grid.FieldSet { return b.fs }

// FieldByName resolves a registered field by name (nil when absent).
func (b *Block) FieldByName(name string) *grid.Field3 { return b.fs.ByName(name) }

// NumSpecies returns the species count.
func (b *Block) NumSpecies() int { return b.ns }

// GlobalOffset returns the block's origin in the global grid.
func (b *Block) GlobalOffset() (i0, j0, k0 int) { return b.i0, b.j0, b.k0 }

// SetState initialises the conserved fields from primitive profiles:
// fn(x, y, z) must fill the state with velocity, temperature and
// composition; pressure is prescribed uniform at cfg.PInf unless pFn is
// non-nil.
func (b *Block) SetState(fn func(x, y, z float64, s *InflowState), pFn func(x, y, z float64) float64) {
	ns := b.ns
	st := InflowState{Y: make([]float64, ns)}
	set := b.mech.Set
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				x, y, z := b.G.Xc[i], b.G.Yc[j], b.G.Zc[k]
				fn(x, y, z, &st)
				p := b.cfg.PInf
				if pFn != nil {
					p = pFn(x, y, z)
				}
				rho := set.Density(p, st.T, st.Y)
				e0 := set.EMass(st.T, st.Y) + 0.5*(st.U*st.U+st.V*st.V+st.W*st.W)
				b.Q[iRho].Set(i, j, k, rho)
				b.Q[iRhoU].Set(i, j, k, rho*st.U)
				b.Q[iRhoV].Set(i, j, k, rho*st.V)
				b.Q[iRhoW].Set(i, j, k, rho*st.W)
				b.Q[iRhoE].Set(i, j, k, rho*e0)
				for n := 0; n < ns-1; n++ {
					b.Q[iY0+n].Set(i, j, k, rho*st.Y[n])
				}
				b.T.Set(i, j, k, st.T) // Newton guess
			}
		}
	}
}

// bcFor returns the derivative closure for the axis given ghost validity.
func (b *Block) bcLo(a grid.Axis) bool { return b.loGhost[a] }
func (b *Block) bcHi(a grid.Axis) bool { return b.hiGhost[a] }

// MinMaxT returns the interior temperature extrema (monitoring).
func (b *Block) MinMaxT() (float64, float64) { return b.T.MinMax() }

// TotalMass integrates ρ over the block interior (uniform-spacing measure
// per cell; used by conservation tests on uniform grids).
func (b *Block) TotalMass() float64 { return b.Q[iRho].SumInterior() }

// AcousticDt returns the acoustic CFL time-step limit for the block.
func (b *Block) AcousticDt() float64 {
	h := b.G.MinSpacing()
	maxSpeed := 0.0
	set := b.mech.Set
	for k := 0; k < b.G.Nz; k++ {
		for j := 0; j < b.G.Ny; j++ {
			for i := 0; i < b.G.Nx; i++ {
				b.gatherY(i, j, k)
				c := set.SoundSpeed(b.T.At(i, j, k), b.yw)
				s := math.Abs(b.U.At(i, j, k)) + math.Abs(b.V.At(i, j, k)) + math.Abs(b.W.At(i, j, k)) + c
				if s > maxSpeed {
					maxSpeed = s
				}
			}
		}
	}
	if maxSpeed == 0 {
		return math.Inf(1)
	}
	cfl := b.cfg.CFL
	if cfl <= 0 {
		cfl = 0.8
	}
	return cfl * h / maxSpeed
}

// gatherY copies the full species vector at a point into b.yw.
func (b *Block) gatherY(i, j, k int) { b.gatherYInto(b.yw, i, j, k) }

// gatherYInto copies the full species vector at a point into dst (the
// worker-private variant used by tiled kernels).
func (b *Block) gatherYInto(dst []float64, i, j, k int) {
	for n := 0; n < b.ns; n++ {
		dst[n] = b.Y[n].At(i, j, k)
	}
}

// Plan returns the block's kernel execution plan (pool size, tile metrics).
func (b *Block) Plan() *par.Plan { return b.plan }
