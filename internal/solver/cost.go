package solver

// The solver side of the cost-attribution sampler (internal/cost): the
// chemistry work proxy collected by chemSource lands in ordered per-tile
// slots and the cost_chem field; costStep turns them into the per-step cost
// record — canonical per-kernel tile-cost vectors, a cross-rank ordered
// fold, the greedy re-tiling what-if — and refreshes the cost_density map.
// Everything in the record derives from the solution state and the
// shape-only tile decomposition, so cost.jsonl is bitwise identical for any
// worker count; the wall-clock timings the plan's probe gathered stay in
// the measured side channel of the GET /cost document.

import (
	"github.com/s3dgo/s3d/internal/cost"
	"github.com/s3dgo/s3d/internal/par"
)

// InstallCost attaches a cost collector to the block and its kernel plan
// (pass nil to detach). In decomposed runs every rank must install an
// identically configured collector: a due step adds one collective, which
// must match across ranks.
func (b *Block) InstallCost(c *cost.Collector) {
	b.costC = c
	b.cSlots, b.cFold, b.cRegionBase = nil, nil, nil
	b.cTiles = 0
	if c == nil {
		// The balancer cannot outlive its record source: detach it and the
		// weight profiles it installed.
		b.lb = nil
		b.plan.SetWeights(cost.ChemKernel, nil, 0)
		b.plan.SetWeights(cost.AssemblyKernel, nil, 0)
		b.plan.SetCost(nil)
		return
	}
	b.plan.SetCost(c)
	b.cSlots = make([]float64, b.healthTiles(b.interior()))
	b.cFold = make([]float64, cost.FoldLen(b.Ranks()))
	b.cRegionBase = make([]float64, len(cost.MeasuredLabels()))
}

// costArm opens the collection window for the step about to run: it arms
// the plan probe and baselines the always-on region timers, so the reduce
// can hand the collector exact per-kernel wall totals for the window
// without the probe re-measuring them.
func (b *Block) costArm(dt float64) {
	b.costDt = dt
	b.costC.Arm(true)
	for i, k := range cost.MeasuredLabels() {
		b.cRegionBase[i] = 0
		if r := b.Timers.Region(k); r != nil {
			b.cRegionBase[i] = r.Inclusive.Seconds()
		}
	}
}

// costRegionDeltas returns the per-label region-timer seconds accumulated
// since costArm, aligned with cost.MeasuredLabels. DIVERGENCE shares the
// DERIVATIVES timer, so its slot stays zero and its time lands in the
// DERIVATIVES entry.
func (b *Block) costRegionDeltas() []float64 {
	labels := cost.MeasuredLabels()
	out := make([]float64, len(labels))
	for i, k := range labels {
		if r := b.Timers.Region(k); r != nil {
			out[i] = r.Inclusive.Seconds() - b.cRegionBase[i]
		}
	}
	return out
}

// Cost returns the installed collector (nil when none).
func (b *Block) Cost() *cost.Collector { return b.costC }

// costStep runs the cost reduction for a due step: refresh the cost_density
// map from the chemistry proxy, build the canonical per-kernel tile-cost
// vectors, fold them cross-rank in ascending rank order and publish the
// record plus the measured wall-clock snapshot. Runs after the health check
// passed, so all ranks reach it on the same step.
func (b *Block) costStep() {
	if !b.costDue {
		return
	}
	b.costDue = false
	c := b.costC
	reg := b.beginRegion("COST")
	r := b.interior()
	n := b.healthTiles(r)

	// cost_density: the per-cell total work proxy. Each uniform kernel
	// contributes one unit per cell; chemistry contributes its substep
	// demand from cost_chem (zero on inert runs).
	base := float64(len(cost.Kernels) - 1)
	b.plan.Run("COST", r, func(t par.Tile, _ int) {
		for k := t.Lo[2]; k < t.Hi[2]; k++ {
			for j := t.Lo[1]; j < t.Hi[1]; j++ {
				for i := t.Lo[0]; i < t.Hi[0]; i++ {
					b.costDensF.Set(i, j, k, base+b.costChemF.At(i, j, k))
				}
			}
		}
	})

	// Canonical per-kernel tile costs: the chemistry kernel carries the
	// per-tile proxy sums over its current partition (ascending tile order —
	// the slots were written by disjoint tiles); every other curated kernel
	// is modelled as uniform, one unit per swept cell, so its per-tile cost
	// is its tile cell count — equal plane tiles on the unweighted split,
	// the partition's variable extents when the balancer re-tiled it.
	nChem := b.cTiles
	if nChem <= 0 || nChem > len(b.cSlots) {
		nChem = n // inert runs: chemSource never sized the partition
	}
	chemCosts := append([]float64(nil), b.cSlots[:nChem]...)
	var uniform []float64
	tileCosts := make(map[string][]float64, len(cost.Kernels))
	for _, k := range cost.Kernels {
		switch {
		case k == cost.ChemKernel:
			tileCosts[k] = chemCosts
		case b.plan.HasWeights(k):
			p := b.plan.PartitionFor(k, r, -1)
			v := make([]float64, p.Len())
			for i := range v {
				v[i] = float64(p.Cells(i))
			}
			tileCosts[k] = v
		default:
			if uniform == nil {
				cellsPerTile := float64(r.Ext(0)*r.Ext(1)*r.Ext(2)) / float64(n)
				uniform = make([]float64, n)
				for i := range uniform {
					uniform[i] = cellsPerTile
				}
			}
			tileCosts[k] = uniform
		}
	}
	var chemTotal float64
	for _, v := range chemCosts {
		chemTotal += v
	}

	cost.PackFold(b.cFold, tileCosts, chemTotal, b.Rank(), c.WhatIfWorkers())
	if b.cart != nil {
		// Ascending rank order — unlike Allreduce's arrival-order fold —
		// so decomposed records are run-to-run reproducible too.
		if err := b.cart.Comm.AllreduceOrdered(b.cFold, cost.CombineFold); err != nil {
			panic(err) // converted to a Run error by comm's rank recovery
		}
	}
	rec := cost.Unpack(b.cFold, b.Step, b.Time, c.WhatIfWorkers())

	// Close the wall-clock window before publishing so the measured section
	// pairs with this record.
	c.SnapshotMeasured(b.costRegionDeltas())
	c.Arm(false)
	c.Publish(rec)
	// Feed the balancer last: every rank holds the identical record, so the
	// weight profiles and the sharing assignment it derives are identical
	// too — the next final-stage exchange needs no negotiation.
	b.lbPlan(&rec)
	reg.End()
}
